// Simulation fuzzer: hundreds of random fault plans against random
// scenarios, checking the chaos oracles (work conservation, ticket
// conservation, currency-graph acyclicity, compensation bounds) after every
// run. Failures are minimized by greedily dropping plan specs and reported
// as a ready-to-paste `faultctl` command line, so any CI hit reproduces
// locally from the seed alone.
//
// Environment knobs:
//   LOTTERY_FUZZ_PLANS       number of random plans (default 500)
//   LOTTERY_FUZZ_SEED        master seed (default 20260806)
//   LOTTERY_FUZZ_REPRO_FILE  append failing repro commands to this file

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "src/sim/chaos.h"
#include "src/sim/fault.h"
#include "src/util/fastrand.h"

namespace lottery {
namespace {

uint64_t EnvOr(const char* name, uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') {
    return fallback;
  }
  return std::strtoull(value, nullptr, 10);
}

// Greedily drops plan specs while the scenario still fails, returning the
// smallest failing variant found. Purely deterministic: each probe is a full
// re-run from the scenario seed.
chaos::Scenario Minimize(chaos::Scenario scenario) {
  FaultPlan plan = FaultPlan::Parse(scenario.plan);
  bool shrunk = true;
  while (shrunk && plan.specs.size() > 1) {
    shrunk = false;
    for (size_t i = 0; i < plan.specs.size(); ++i) {
      FaultPlan candidate;
      for (size_t j = 0; j < plan.specs.size(); ++j) {
        if (j != i) {
          candidate.specs.push_back(plan.specs[j]);
        }
      }
      chaos::Scenario probe = scenario;
      probe.plan = candidate.ToString();
      if (!chaos::RunScenario(probe).ok()) {
        plan = candidate;
        shrunk = true;
        break;
      }
    }
  }
  scenario.plan = plan.ToString();
  return scenario;
}

TEST(SimFuzz, RandomFaultPlansHoldAllOracles) {
  const uint64_t num_plans = EnvOr("LOTTERY_FUZZ_PLANS", 500);
  const uint64_t master_seed = EnvOr("LOTTERY_FUZZ_SEED", 20260806);
  const char* repro_path = std::getenv("LOTTERY_FUZZ_REPRO_FILE");

  FastRand master(static_cast<uint32_t>(master_seed ^ (master_seed >> 32)));
  uint64_t failures = 0;
  uint64_t total_injections = 0;

  for (uint64_t i = 0; i < num_plans; ++i) {
    const uint64_t seed = master.Next() | 1;  // odd, never zero
    const chaos::Scenario scenario = chaos::RandomScenario(master, seed);
    const chaos::ScenarioResult result = chaos::RunScenario(scenario);
    total_injections += result.injections;

    if (!result.ok()) {
      ++failures;
      const chaos::Scenario minimal = Minimize(scenario);
      const chaos::ScenarioResult replay = chaos::RunScenario(minimal);
      std::ostringstream report;
      report << "fuzz plan " << i << " violated "
             << (replay.ok() ? result : replay).violations.size()
             << " oracle(s):\n";
      for (const std::string& violation :
           (replay.ok() ? result : replay).violations) {
        report << "  " << violation << "\n";
      }
      report << "repro (minimized): " << minimal.ReproCommand() << "\n";
      report << "repro (original):  " << scenario.ReproCommand() << "\n";
      ADD_FAILURE() << report.str();
      std::cerr << report.str();
      if (repro_path != nullptr) {
        std::ofstream out(repro_path, std::ios::app);
        out << minimal.ReproCommand() << "\n";
      }
      if (failures >= 5) {
        GTEST_FAIL() << "aborting after 5 failing plans";
      }
    }

    // Periodic determinism spot-check: a re-run of the same scenario must
    // produce a bit-identical trace.
    if (i % 50 == 49) {
      const chaos::ScenarioResult again = chaos::RunScenario(scenario);
      ASSERT_EQ(result.trace_hash, again.trace_hash)
          << "non-deterministic replay; " << scenario.ReproCommand();
    }
  }

  EXPECT_EQ(failures, 0u);
  // The sweep must actually exercise the fault machinery: with ~45% of the
  // classes armed per plan, injections number in the thousands.
  EXPECT_GT(total_injections, num_plans);
  std::cout << "[ fuzz ] " << num_plans << " plans, " << total_injections
            << " injections, " << failures << " failures\n";
}

}  // namespace
}  // namespace lottery
