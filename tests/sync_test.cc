// Tests for the lottery-scheduled mutex (Section 6.1, Figures 10/11).

#include "src/sim/sync.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/sched/round_robin.h"
#include "src/workloads/mutex_workload.h"

namespace lottery {
namespace {

Kernel::Options KOpts() {
  Kernel::Options o;
  o.quantum = SimDuration::Millis(100);
  return o;
}

TEST(SimMutexFifo, UncontendedAcquireRelease) {
  RoundRobinScheduler sched;
  Kernel kernel(&sched, KOpts());
  SimMutex mutex(&kernel, "m");

  class Once : public ThreadBody {
   public:
    explicit Once(SimMutex* m) : m_(m) {}
    void Run(RunContext& ctx) override {
      EXPECT_TRUE(m_->Acquire(ctx));
      // Re-establishes the static lock session the EXPECT_TRUE wrapper
      // hides from the analysis; runtime-checks ownership too.
      m_->AssertHeld(ctx.self());
      EXPECT_EQ(m_->owner(), ctx.self());
      ctx.Consume(SimDuration::Millis(5));
      m_->Release(ctx);
      EXPECT_EQ(m_->owner(), kInvalidThreadId);
      ctx.ExitThread();
    }
    SimMutex* m_;
  };
  kernel.Spawn("once", std::make_unique<Once>(&mutex));
  kernel.RunFor(SimDuration::Seconds(1));
  EXPECT_EQ(mutex.acquisitions(), 1u);
}

TEST(SimMutexFifo, ContendedHandoffUnderRoundRobin) {
  RoundRobinScheduler sched;
  Kernel kernel(&sched, KOpts());
  SimMutex mutex(&kernel, "m");
  MutexTask::Options opts;
  opts.hold = SimDuration::Millis(10);
  opts.compute = SimDuration::Millis(10);
  auto a = std::make_unique<MutexTask>(&mutex, opts);
  auto b = std::make_unique<MutexTask>(&mutex, opts);
  MutexTask* ra = a.get();
  MutexTask* rb = b.get();
  kernel.Spawn("a", std::move(a));
  kernel.Spawn("b", std::move(b));
  kernel.RunFor(SimDuration::Seconds(10));
  EXPECT_GT(ra->cycles(), 100);
  EXPECT_GT(rb->cycles(), 100);
  // FIFO handoff: symmetric threads make near-equal progress.
  EXPECT_NEAR(static_cast<double>(ra->cycles()) /
                  static_cast<double>(rb->cycles()),
              1.0, 0.1);
}

class LotteryMutexTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LotteryScheduler::Options opts;
    opts.seed = 20260707;
    sched_ = std::make_unique<LotteryScheduler>(opts);
    tracer_ = std::make_unique<Tracer>(SimDuration::Seconds(1));
    kernel_ = std::make_unique<Kernel>(sched_.get(), KOpts(), tracer_.get());
  }

  ThreadId SpawnFunded(const std::string& name, int64_t base_tickets,
                       std::unique_ptr<ThreadBody> body) {
    const ThreadId tid = kernel_->Spawn(name, std::move(body));
    sched_->FundThread(tid, sched_->table().base(), base_tickets);
    return tid;
  }

  std::unique_ptr<LotteryScheduler> sched_;
  std::unique_ptr<Tracer> tracer_;
  std::unique_ptr<Kernel> kernel_;
};

TEST_F(LotteryMutexTest, CreatesMutexCurrency) {
  SimMutex mutex(kernel_.get(), "lock1");
  EXPECT_NE(sched_->table().FindCurrency("mutex:lock1"), nullptr);
}

TEST_F(LotteryMutexTest, DestructorRetiresCurrency) {
  {
    SimMutex mutex(kernel_.get(), "tmp");
  }
  EXPECT_EQ(sched_->table().FindCurrency("mutex:tmp"), nullptr);
}

TEST_F(LotteryMutexTest, OwnerInheritsWaiterFunding) {
  // Figure 10: owner executes with own funding plus all waiters' funding.
  SimMutex mutex(kernel_.get(), "m");

  class HoldForever : public ThreadBody {
   public:
    explicit HoldForever(SimMutex* m) : m_(m) {}
    void Run(RunContext& ctx) override {
      if (!held_) {
        EXPECT_TRUE(m_->Acquire(ctx));
        held_ = true;
      }
      m_->AssertHeld(ctx.self());
      ctx.Consume(ctx.remaining());
      m_->NoteHeldAcrossSlice(ctx.self());  // held into the next slice
    }
    SimMutex* m_;
    bool held_ = false;
  };
  class WantLock : public ThreadBody {
   public:
    explicit WantLock(SimMutex* m) : m_(m) {}
    void Run(RunContext& ctx) override {
      ctx.Consume(SimDuration::Millis(1));
      if (!m_->Acquire(ctx)) {
        ctx.Block();
        return;
      }
      m_->Release(ctx);
      ctx.ExitThread();
    }
    SimMutex* m_;
  };

  // Spawn the owner alone first so it deterministically takes the lock.
  const ThreadId owner =
      SpawnFunded("owner", 100, std::make_unique<HoldForever>(&mutex));
  kernel_->RunFor(SimDuration::Millis(200));
  ASSERT_EQ(mutex.owner(), owner);
  const ThreadId waiter =
      SpawnFunded("waiter", 900, std::make_unique<WantLock>(&mutex));
  kernel_->RunFor(SimDuration::Seconds(2));
  ASSERT_EQ(mutex.owner(), owner);
  EXPECT_EQ(mutex.num_waiters(), 1u);
  // Owner is runnable and holds the lock; waiter is blocked. Owner's value
  // = its 100 + waiter's 900 routed through the mutex currency.
  EXPECT_EQ(sched_->ThreadValue(owner).base_units(), 1000);
  (void)waiter;
}

TEST_F(LotteryMutexTest, AcquisitionRatioTracksFunding) {
  // Figure 11's setup, scaled down: two groups of four threads with 2:1
  // funding competing for one mutex; acquisition counts should approach
  // the paper's measured 1.8:1.
  SimMutex mutex(kernel_.get(), "m");
  MutexTask::Options opts;
  opts.hold = SimDuration::Millis(50);
  opts.compute = SimDuration::Millis(50);
  std::vector<MutexTask*> group_a, group_b;
  for (int i = 0; i < 4; ++i) {
    auto a = std::make_unique<MutexTask>(&mutex, opts);
    group_a.push_back(a.get());
    SpawnFunded("A" + std::to_string(i), 2000, std::move(a));
    auto b = std::make_unique<MutexTask>(&mutex, opts);
    group_b.push_back(b.get());
    SpawnFunded("B" + std::to_string(i), 1000, std::move(b));
  }
  kernel_->RunFor(SimDuration::Seconds(600));
  int64_t a_cycles = 0, b_cycles = 0;
  for (const auto* t : group_a) {
    a_cycles += t->cycles();
  }
  for (const auto* t : group_b) {
    b_cycles += t->cycles();
  }
  ASSERT_GT(b_cycles, 0);
  const double ratio =
      static_cast<double>(a_cycles) / static_cast<double>(b_cycles);
  EXPECT_GT(ratio, 1.4);
  EXPECT_LT(ratio, 2.4);
}

TEST_F(LotteryMutexTest, WaitTimesRecordedInTracer) {
  SimMutex mutex(kernel_.get(), "m");
  MutexTask::Options opts;
  // Hold+compute must not divide the quantum evenly, or cycles align with
  // quantum boundaries and the lock is (deterministically) never contended.
  opts.hold = SimDuration::Millis(30);
  opts.compute = SimDuration::Millis(30);
  SpawnFunded("A", 100, std::make_unique<MutexTask>(&mutex, opts));
  SpawnFunded("B", 100, std::make_unique<MutexTask>(&mutex, opts));
  kernel_->RunFor(SimDuration::Seconds(30));
  EXPECT_TRUE(tracer_->HasSeries("mutex_wait:A") ||
              tracer_->HasSeries("mutex_wait:B"));
}

TEST_F(LotteryMutexTest, RecursiveAcquireThrows) {
  SimMutex mutex(kernel_.get(), "m");
  class Recursive : public ThreadBody {
   public:
    explicit Recursive(SimMutex* m) : m_(m) {}
    void Run(RunContext& ctx) override {
      EXPECT_TRUE(m_->Acquire(ctx));
      m_->AssertHeld(ctx.self());
      EXPECT_THROW(m_->Acquire(ctx), std::logic_error);
      m_->Release(ctx);
      ctx.ExitThread();
    }
    SimMutex* m_;
  };
  SpawnFunded("rec", 100, std::make_unique<Recursive>(&mutex));
  kernel_->RunFor(SimDuration::Seconds(1));
}

TEST_F(LotteryMutexTest, ReleaseByNonOwnerThrows) {
  SimMutex mutex(kernel_.get(), "m");
  class BadRelease : public ThreadBody {
   public:
    explicit BadRelease(SimMutex* m) : m_(m) {}
    // Deliberately releases without holding (the throw is the assertion);
    // opt out of the static analysis that would reject exactly this.
    NO_THREAD_SAFETY_ANALYSIS void Run(RunContext& ctx) override {
      EXPECT_THROW(m_->Release(ctx), std::logic_error);
      ctx.ExitThread();
    }
    SimMutex* m_;
  };
  SpawnFunded("bad", 100, std::make_unique<BadRelease>(&mutex));
  kernel_->RunFor(SimDuration::Seconds(1));
}

}  // namespace
}  // namespace lottery
