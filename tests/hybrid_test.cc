// Tests for the hybrid fixed-priority + lottery scheduler (the Section 4
// co-existence arrangement).

#include "src/sched/hybrid.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/sim/kernel.h"
#include "src/workloads/compute.h"

namespace lottery {
namespace {

const SimTime kT0 = SimTime::Zero();

Kernel::Options KOpts() {
  Kernel::Options o;
  o.quantum = SimDuration::Millis(100);
  return o;
}

TEST(Hybrid, FixedBeatsLottery) {
  HybridScheduler sched;
  sched.AddThread(1, kT0);
  sched.AddThread(2, kT0);
  sched.lottery().FundThread(1, sched.lottery().table().base(), 1000000);
  sched.SetFixedPriority(2, 5);
  sched.OnReady(1, kT0);
  sched.OnReady(2, kT0);
  // The driver-style thread always wins, regardless of lottery funding.
  EXPECT_EQ(sched.PickNext(kT0), 2u);
  EXPECT_EQ(sched.PickNext(kT0), 1u);
}

TEST(Hybrid, PromotionWhileReadyMovesBands) {
  HybridScheduler sched;
  sched.AddThread(1, kT0);
  sched.AddThread(2, kT0);
  sched.lottery().FundThread(1, sched.lottery().table().base(), 100);
  sched.lottery().FundThread(2, sched.lottery().table().base(), 100);
  sched.OnReady(1, kT0);
  sched.OnReady(2, kT0);
  sched.SetFixedPriority(1, 3);
  EXPECT_TRUE(sched.IsFixedPriority(1));
  EXPECT_EQ(sched.PickNext(kT0), 1u);
  // Demote back: thread 1 rejoins the lottery.
  sched.OnReady(1, kT0);
  sched.ClearFixedPriority(1);
  EXPECT_FALSE(sched.IsFixedPriority(1));
  const ThreadId first = sched.PickNext(kT0);
  EXPECT_TRUE(first == 1u || first == 2u);
}

TEST(Hybrid, LotteryShareUnaffectedByIdleFixedThread) {
  // A fixed-priority thread that is mostly blocked (a driver) steals only
  // the cycles it uses; the lottery world splits the rest by funding.
  HybridScheduler sched;
  Kernel kernel(&sched, KOpts());
  const ThreadId a = kernel.Spawn("a", std::make_unique<ComputeTask>());
  sched.lottery().FundThread(a, sched.lottery().table().base(), 300);
  const ThreadId b = kernel.Spawn("b", std::make_unique<ComputeTask>());
  sched.lottery().FundThread(b, sched.lottery().table().base(), 100);
  const ThreadId driver = kernel.Spawn(
      "driver", std::make_unique<InteractiveTask>(SimDuration::Millis(2),
                                                  SimDuration::Millis(98)));
  sched.SetFixedPriority(driver, 10);
  kernel.RunFor(SimDuration::Seconds(120));
  // Driver runs its 2% promptly.
  EXPECT_NEAR(kernel.CpuTime(driver).ToSecondsF(), 2.4, 0.3);
  // The rest splits 3:1.
  const double ratio =
      kernel.CpuTime(a).ToSecondsF() / kernel.CpuTime(b).ToSecondsF();
  EXPECT_NEAR(ratio, 3.0, 0.4);
}

TEST(Hybrid, FixedThreadCanStarveLotteryWorld) {
  // The hazard the paper accepted: an always-runnable fixed thread owns the
  // machine. Documented behaviour, so pinned by a test.
  HybridScheduler sched;
  Kernel kernel(&sched, KOpts());
  const ThreadId hog = kernel.Spawn("hog", std::make_unique<ComputeTask>());
  sched.SetFixedPriority(hog, 1);
  const ThreadId victim =
      kernel.Spawn("victim", std::make_unique<ComputeTask>());
  sched.lottery().FundThread(victim, sched.lottery().table().base(), 1000);
  kernel.RunFor(SimDuration::Seconds(10));
  EXPECT_EQ(kernel.CpuTime(victim).nanos(), 0);
}

TEST(Hybrid, RemoveThreadFromEitherBand) {
  HybridScheduler sched;
  sched.AddThread(1, kT0);
  sched.AddThread(2, kT0);
  sched.SetFixedPriority(1, 1);
  sched.OnReady(1, kT0);
  sched.OnReady(2, kT0);
  sched.RemoveThread(1, kT0);
  sched.RemoveThread(2, kT0);
  EXPECT_EQ(sched.PickNext(kT0), kInvalidThreadId);
}

TEST(Hybrid, TickForwardsToLottery) {
  HybridScheduler sched;
  sched.Tick(kT0);  // must not throw
  EXPECT_EQ(sched.name(), "hybrid");
}

}  // namespace
}  // namespace lottery
