#include "src/sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace lottery {
namespace {

SimTime At(int64_t ms) { return SimTime::Zero() + SimDuration::Millis(ms); }

TEST(EventQueue, RunsInTimeOrder) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(At(30), [&](SimTime) { order.push_back(3); });
  q.Schedule(At(10), [&](SimTime) { order.push_back(1); });
  q.Schedule(At(20), [&](SimTime) { order.push_back(2); });
  EXPECT_EQ(q.RunUntil(At(100)), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, FifoTieBreak) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(At(10), [&](SimTime) { order.push_back(1); });
  q.Schedule(At(10), [&](SimTime) { order.push_back(2); });
  q.Schedule(At(10), [&](SimTime) { order.push_back(3); });
  q.RunUntil(At(10));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, RespectsLimit) {
  EventQueue q;
  int ran = 0;
  q.Schedule(At(10), [&](SimTime) { ++ran; });
  q.Schedule(At(20), [&](SimTime) { ++ran; });
  EXPECT_EQ(q.RunUntil(At(15)), 1u);
  EXPECT_EQ(ran, 1);
  EXPECT_FALSE(q.empty());
  EXPECT_EQ(q.next_time(), At(20));
}

TEST(EventQueue, HandlerReceivesItsTimestamp) {
  EventQueue q;
  SimTime seen;
  q.Schedule(At(42), [&](SimTime when) { seen = when; });
  q.RunUntil(At(100));
  EXPECT_EQ(seen, At(42));
}

TEST(EventQueue, HandlersMayScheduleWithinLimit) {
  EventQueue q;
  std::vector<int> order;
  q.Schedule(At(10), [&](SimTime) {
    order.push_back(1);
    q.Schedule(At(15), [&](SimTime) { order.push_back(2); });
  });
  q.RunUntil(At(20));
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(EventQueue, CancelPreventsExecution) {
  EventQueue q;
  int ran = 0;
  const auto id = q.Schedule(At(10), [&](SimTime) { ++ran; });
  q.Schedule(At(20), [&](SimTime) { ++ran; });
  q.Cancel(id);
  EXPECT_EQ(q.RunUntil(At(100)), 1u);
  EXPECT_EQ(ran, 1);
}

TEST(EventQueue, CancelledHeadDoesNotBlockEmptyAndNextTime) {
  EventQueue q;
  const auto id = q.Schedule(At(10), [](SimTime) {});
  q.Schedule(At(20), [](SimTime) {});
  q.Cancel(id);
  EXPECT_FALSE(q.empty());
  EXPECT_EQ(q.next_time(), At(20));
}

TEST(EventQueue, CancelUnknownIsNoOp) {
  EventQueue q;
  q.Cancel(9999);
  EXPECT_TRUE(q.empty());
}

TEST(EventQueue, EmptyAfterDraining) {
  EventQueue q;
  q.Schedule(At(5), [](SimTime) {});
  q.RunUntil(At(5));
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.RunUntil(At(100)), 0u);
}

}  // namespace
}  // namespace lottery
