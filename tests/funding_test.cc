#include "src/core/funding.h"

#include <gtest/gtest.h>

namespace lottery {
namespace {

TEST(Funding, BaseRoundTrip) {
  const Funding f = Funding::FromBase(1234);
  EXPECT_EQ(f.base_units(), 1234);
  EXPECT_DOUBLE_EQ(f.ToBaseF(), 1234.0);
  EXPECT_EQ(f.raw(), 1234 * Funding::kOne);
}

TEST(Funding, ZeroAndComparisons) {
  EXPECT_TRUE(Funding::Zero().IsZero());
  EXPECT_LT(Funding::FromBase(1), Funding::FromBase(2));
  EXPECT_EQ(Funding::FromBase(5), Funding::FromBase(5));
  EXPECT_GT(Funding::FromBase(-1), Funding::FromBase(-2));
}

TEST(Funding, AdditionSubtraction) {
  Funding a = Funding::FromBase(10);
  const Funding b = Funding::FromBase(4);
  EXPECT_EQ((a + b).base_units(), 14);
  EXPECT_EQ((a - b).base_units(), 6);
  a += b;
  EXPECT_EQ(a.base_units(), 14);
  a -= b;
  EXPECT_EQ(a.base_units(), 10);
}

TEST(Funding, ScaleByExactRatios) {
  const Funding f = Funding::FromBase(3000);
  EXPECT_EQ(f.ScaleBy(200, 300).base_units(), 2000);
  EXPECT_EQ(f.ScaleBy(1, 3).raw(), 3000 * Funding::kOne / 3);
}

TEST(Funding, ScaleByPreservesFractions) {
  // 1 base unit split 3 ways then re-summed loses < 3 raw ulps, not whole
  // units (the reason Funding exists).
  const Funding f = Funding::FromBase(1);
  const Funding third = f.ScaleBy(1, 3);
  const Funding rebuilt = third + third + third;
  EXPECT_GE(rebuilt.raw(), f.raw() - 3);
  EXPECT_LE(rebuilt.raw(), f.raw());
}

TEST(Funding, ScaleByLargeValuesNoOverflow) {
  // 10^9 base units scaled by a big ratio uses 128-bit intermediates.
  const Funding f = Funding::FromBase(1000000000);
  const Funding scaled = f.ScaleBy(999999, 1000000);
  EXPECT_NEAR(scaled.ToBaseF(), 999999000.0, 1.0);
}

TEST(Funding, CompensationStyleInflation) {
  // Section 4.5 example: 400 base units at 1/5 quantum use -> 2000.
  const Funding f = Funding::FromBase(400);
  EXPECT_EQ(f.ScaleBy(100, 20).base_units(), 2000);
}

TEST(Funding, ToStringMentionsBase) {
  EXPECT_EQ(Funding::FromBase(2).ToString(), "2.000 base");
}

}  // namespace
}  // namespace lottery
