// Tests for the user-level command interface (Section 4.7).

#include "src/ctl/interpreter.h"

#include <gtest/gtest.h>

namespace lottery {
namespace {

const SimTime kT0 = SimTime::Zero();

class CtlTest : public ::testing::Test {
 protected:
  CtlTest() : ctl_(&sched_) {}
  LotteryScheduler sched_;
  CommandInterpreter ctl_;
};

TEST_F(CtlTest, EmptyAndCommentLinesAreNoOps) {
  EXPECT_EQ(ctl_.Execute(""), "");
  EXPECT_EQ(ctl_.Execute("   "), "");
  EXPECT_EQ(ctl_.Execute("# a comment"), "");
  EXPECT_EQ(ctl_.Execute("mkcur alice # trailing comment"), "");
  EXPECT_NE(sched_.table().FindCurrency("alice"), nullptr);
}

TEST_F(CtlTest, UnknownCommandThrows) {
  EXPECT_THROW(ctl_.Execute("frobnicate"), CommandError);
}

TEST_F(CtlTest, HelpMentionsEveryCommand) {
  const std::string help = ctl_.Execute("help");
  for (const char* cmd : {"mkcur", "rmcur", "mktkt", "rmtkt", "fund",
                          "unfund", "setamt", "fundthread", "lscur",
                          "lstkt"}) {
    EXPECT_NE(help.find(cmd), std::string::npos) << cmd;
  }
}

TEST_F(CtlTest, MkcurRmcurRoundTrip) {
  ctl_.Execute("mkcur alice");
  EXPECT_NE(sched_.table().FindCurrency("alice"), nullptr);
  ctl_.Execute("rmcur alice");
  EXPECT_EQ(sched_.table().FindCurrency("alice"), nullptr);
}

TEST_F(CtlTest, MkcurUsageErrors) {
  EXPECT_THROW(ctl_.Execute("mkcur"), CommandError);
  EXPECT_THROW(ctl_.Execute("mkcur a b c"), CommandError);
  ctl_.Execute("mkcur dup");
  EXPECT_THROW(ctl_.Execute("mkcur dup"), CommandError);
}

TEST_F(CtlTest, MktktPrintsIdAndRmtktDestroys) {
  const std::string out = ctl_.Execute("mktkt base 100");
  ASSERT_EQ(out.rfind("ticket ", 0), 0u);
  const std::string id = out.substr(7, out.size() - 8);
  EXPECT_NE(sched_.table().FindTicket(std::stoull(id)), nullptr);
  ctl_.Execute("rmtkt " + id);
  EXPECT_EQ(sched_.table().FindTicket(std::stoull(id)), nullptr);
}

TEST_F(CtlTest, FundAndUnfund) {
  ctl_.Execute("mkcur alice");
  const std::string out = ctl_.Execute("mktkt base 500");
  const std::string id = out.substr(7, out.size() - 8);
  ctl_.Execute("fund alice " + id);
  Currency* alice = sched_.table().FindCurrency("alice");
  ASSERT_EQ(alice->backing().size(), 1u);
  EXPECT_EQ(alice->backing()[0]->amount(), 500);
  ctl_.Execute("unfund " + id);
  EXPECT_TRUE(alice->backing().empty());
}

TEST_F(CtlTest, FundRejectsCycles) {
  ctl_.Execute("mkcur a");
  ctl_.Execute("mkcur b");
  const std::string t1 = ctl_.Execute("mktkt b 10");
  ctl_.Execute("fund a " + t1.substr(7, t1.size() - 8));
  const std::string t2 = ctl_.Execute("mktkt a 10");
  EXPECT_THROW(ctl_.Execute("fund b " + t2.substr(7, t2.size() - 8)),
               CommandError);
}

TEST_F(CtlTest, SetamtInflates) {
  const std::string out = ctl_.Execute("mktkt base 100");
  const std::string id = out.substr(7, out.size() - 8);
  ctl_.Execute("setamt " + id + " 900");
  EXPECT_EQ(sched_.table().FindTicket(std::stoull(id))->amount(), 900);
  EXPECT_THROW(ctl_.Execute("setamt " + id + " 0"), CommandError);
  EXPECT_THROW(ctl_.Execute("setamt " + id + " banana"), CommandError);
}

TEST_F(CtlTest, AclEnforcedByPrincipal) {
  ctl_.Execute("mkcur alice alice");
  EXPECT_THROW(ctl_.Execute("mktkt alice 100", "mallory"), CommandError);
  EXPECT_NO_THROW(ctl_.Execute("mktkt alice 100", "alice"));
}

TEST_F(CtlTest, FundthreadFundsARealThread) {
  sched_.AddThread(7, kT0);
  ctl_.Execute("fundthread 7 base 300");
  sched_.OnReady(7, kT0);
  EXPECT_EQ(sched_.ThreadValue(7).base_units(), 300);
  EXPECT_THROW(ctl_.Execute("fundthread 99 base 1"), CommandError);
  EXPECT_THROW(ctl_.Execute("fundthread x base 1"), CommandError);
}

TEST_F(CtlTest, LscurShowsGraph) {
  ctl_.ExecuteScript(R"(
    mkcur alice bob
    mktkt base 1000
    fund alice 1
  )");
  const std::string out = ctl_.Execute("lscur");
  EXPECT_NE(out.find("base"), std::string::npos);
  EXPECT_NE(out.find("alice"), std::string::npos);
  EXPECT_NE(out.find("1000.base"), std::string::npos);
  // Filtered form.
  const std::string filtered = ctl_.Execute("lscur alice");
  EXPECT_EQ(filtered.find("base  "), std::string::npos);
  EXPECT_THROW(ctl_.Execute("lscur nosuch"), CommandError);
}

TEST_F(CtlTest, LstktShowsAttachmentAndState) {
  ctl_.Execute("mkcur alice");
  ctl_.ExecuteScript("mktkt base 1000\nfund alice 1\nmktkt alice 25\n");
  const std::string out = ctl_.Execute("lstkt");
  EXPECT_NE(out.find("funds alice"), std::string::npos);
  EXPECT_NE(out.find("unattached"), std::string::npos);
  EXPECT_NE(out.find("inactive"), std::string::npos);
  // Filter by currency.
  const std::string filtered = ctl_.Execute("lstkt alice");
  EXPECT_EQ(filtered.find("1000"), std::string::npos);
  EXPECT_NE(filtered.find("25"), std::string::npos);
  EXPECT_THROW(ctl_.Execute("lstkt nosuch"), CommandError);
}

TEST_F(CtlTest, DotDumpsGraphviz) {
  ctl_.Execute("mkcur alice");
  ctl_.ExecuteScript("mktkt base 500\nfund alice 1\n");
  const std::string dot = ctl_.Execute("dot");
  EXPECT_NE(dot.find("digraph currencies"), std::string::npos);
  EXPECT_NE(dot.find("\"alice\" -> \"base\""), std::string::npos);
}

TEST_F(CtlTest, LscurShowsExchangeRate) {
  sched_.AddThread(1, kT0);  // allocates the thread's self ticket first
  ctl_.Execute("mkcur alice");
  const std::string out_id = ctl_.Execute("mktkt base 600");
  ctl_.Execute("fund alice " + out_id.substr(7, out_id.size() - 8));
  ctl_.Execute("fundthread 1 alice 300");
  sched_.OnReady(1, kT0);
  const std::string out = ctl_.Execute("lscur alice");
  EXPECT_NE(out.find("2.000"), std::string::npos);  // 600 base / 300 active
}

TEST_F(CtlTest, ScriptStopsAtFirstError) {
  EXPECT_THROW(ctl_.ExecuteScript("mkcur ok\nbogus command\nmkcur never"),
               CommandError);
  EXPECT_NE(sched_.table().FindCurrency("ok"), nullptr);
  EXPECT_EQ(sched_.table().FindCurrency("never"), nullptr);
}

TEST_F(CtlTest, EndToEndSessionMatchesPaperWorkflow) {
  // The paper's Figure 3 organization, driven entirely via commands.
  // (Thread creation allocates self tickets, so ids are parsed from the
  // mktkt output rather than assumed.)
  sched_.AddThread(1, kT0);
  sched_.AddThread(2, kT0);
  auto make_ticket = [&](const std::string& cmd) {
    const std::string out = ctl_.Execute(cmd);
    return out.substr(7, out.size() - 8);
  };
  ctl_.Execute("mkcur alice");
  ctl_.Execute("mkcur bob");
  ctl_.Execute("fund alice " + make_ticket("mktkt base 2000"));
  ctl_.Execute("fund bob " + make_ticket("mktkt base 1000"));
  ctl_.Execute("fundthread 1 alice 100");
  ctl_.Execute("fundthread 2 bob 100");
  sched_.OnReady(1, kT0);
  sched_.OnReady(2, kT0);
  EXPECT_EQ(sched_.ThreadValue(1).base_units(), 2000);
  EXPECT_EQ(sched_.ThreadValue(2).base_units(), 1000);
}

}  // namespace
}  // namespace lottery
