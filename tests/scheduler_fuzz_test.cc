// Fuzzing the Scheduler protocol: random valid call sequences against every
// policy implementation, checking structural invariants (picked threads are
// ready; no duplicates; removal works from any state) rather than policy
// outcomes.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>

#include "src/core/lottery_scheduler.h"
#include "src/sched/decay_usage.h"
#include "src/sched/hybrid.h"
#include "src/sched/priority.h"
#include "src/sched/round_robin.h"
#include "src/sched/stride.h"
#include "src/util/fastrand.h"

namespace lottery {
namespace {

const SimDuration kQuantum = SimDuration::Millis(100);

enum class State { kBlocked, kReady, kRunning };

struct FuzzCase {
  std::string policy;
  uint32_t seed;
};

std::unique_ptr<Scheduler> MakeScheduler(const std::string& policy,
                                         uint32_t seed) {
  if (policy == "lottery-list" || policy == "lottery-tree") {
    LotteryScheduler::Options o;
    o.seed = seed;
    o.backend = policy == "lottery-tree" ? RunQueueBackend::kTree
                                         : RunQueueBackend::kList;
    return std::make_unique<LotteryScheduler>(o);
  }
  if (policy == "stride") {
    return std::make_unique<StrideScheduler>();
  }
  if (policy == "decay-usage") {
    return std::make_unique<DecayUsageScheduler>();
  }
  if (policy == "priority") {
    return std::make_unique<PriorityScheduler>();
  }
  if (policy == "hybrid") {
    return std::make_unique<HybridScheduler>();
  }
  return std::make_unique<RoundRobinScheduler>();
}

class SchedulerFuzz : public ::testing::TestWithParam<FuzzCase> {};

TEST_P(SchedulerFuzz, RandomProtocolSequences) {
  const FuzzCase param = GetParam();
  auto sched = MakeScheduler(param.policy, param.seed);
  auto* lottery = dynamic_cast<LotteryScheduler*>(sched.get());
  auto* hybrid = dynamic_cast<HybridScheduler*>(sched.get());
  FastRand rng(param.seed);
  SimTime now = SimTime::Zero();
  std::map<ThreadId, State> state;
  ThreadId running = kInvalidThreadId;
  ThreadId next_id = 1;

  for (int step = 0; step < 3000; ++step) {
    const uint32_t op = rng.NextBelow(10);
    switch (op) {
      case 0:  // add a thread
        if (state.size() < 12) {
          const ThreadId id = next_id++;
          sched->AddThread(id, now);
          if (lottery != nullptr) {
            lottery->FundThread(id, lottery->table().base(),
                                1 + rng.NextBelow(500));
          }
          if (hybrid != nullptr && rng.NextBelow(4) == 0) {
            hybrid->SetFixedPriority(id, static_cast<int>(rng.NextBelow(3)));
          }
          state[id] = State::kBlocked;
        }
        break;
      case 1: {  // remove a non-running thread
        for (auto it = state.begin(); it != state.end(); ++it) {
          if (it->second != State::kRunning && rng.NextBelow(3) == 0) {
            sched->RemoveThread(it->first, now);
            state.erase(it);
            break;
          }
        }
        break;
      }
      case 2:
      case 3: {  // wake a blocked thread
        for (auto& [id, s] : state) {
          if (s == State::kBlocked && rng.NextBelow(2) == 0) {
            sched->OnReady(id, now);
            s = State::kReady;
            break;
          }
        }
        break;
      }
      case 4: {  // block a ready (queued) thread
        for (auto& [id, s] : state) {
          if (s == State::kReady && rng.NextBelow(2) == 0) {
            sched->OnBlocked(id, now);
            s = State::kBlocked;
            break;
          }
        }
        break;
      }
      default: {  // dispatch cycle
        if (running == kInvalidThreadId) {
          const ThreadId picked = sched->PickNext(now);
          if (picked == kInvalidThreadId) {
            // Valid only if nothing was ready.
            for (const auto& [id, s] : state) {
              ASSERT_NE(s, State::kReady)
                  << param.policy << ": empty pick with thread " << id
                  << " ready";
            }
            break;
          }
          ASSERT_EQ(state.at(picked), State::kReady)
              << param.policy << " picked a non-ready thread";
          state[picked] = State::kRunning;
          running = picked;
        } else {
          const SimDuration used =
              SimDuration::Millis(1 + rng.NextBelow(100));
          now += used;
          sched->OnQuantumEnd(running, used, kQuantum, now);
          if (rng.NextBelow(3) == 0) {
            sched->OnBlocked(running, now);
            state[running] = State::kBlocked;
          } else {
            sched->OnReady(running, now);
            state[running] = State::kReady;
          }
          running = kInvalidThreadId;
        }
        if (rng.NextBelow(50) == 0) {
          sched->Tick(now);
        }
        break;
      }
    }
  }
  // Drain: everything ready must eventually be picked exactly once.
  if (running != kInvalidThreadId) {
    sched->OnQuantumEnd(running, kQuantum, kQuantum, now);
    sched->OnBlocked(running, now);
    state[running] = State::kBlocked;
  }
  std::set<ThreadId> drained;
  for (;;) {
    const ThreadId picked = sched->PickNext(now);
    if (picked == kInvalidThreadId) {
      break;
    }
    ASSERT_TRUE(drained.insert(picked).second)
        << param.policy << " picked " << picked << " twice while draining";
    ASSERT_EQ(state.at(picked), State::kReady);
    state[picked] = State::kRunning;
    sched->OnQuantumEnd(picked, kQuantum, kQuantum, now);
    sched->OnBlocked(picked, now);
    state[picked] = State::kBlocked;
  }
  for (const auto& [id, s] : state) {
    EXPECT_NE(s, State::kReady) << param.policy << ": thread " << id
                                << " stranded in the run queue";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, SchedulerFuzz,
    ::testing::Values(FuzzCase{"lottery-list", 1}, FuzzCase{"lottery-list", 2},
                      FuzzCase{"lottery-tree", 3}, FuzzCase{"lottery-tree", 4},
                      FuzzCase{"stride", 5}, FuzzCase{"stride", 6},
                      FuzzCase{"decay-usage", 7}, FuzzCase{"priority", 8},
                      FuzzCase{"round-robin", 9}, FuzzCase{"hybrid", 10},
                      FuzzCase{"hybrid", 11}));

TEST(HybridEquivalence, NoFixedThreadsMatchesPureLottery) {
  // With no fixed-priority members, HybridScheduler must draw the same
  // winners as a bare LotteryScheduler from the same seed.
  LotteryScheduler::Options opts;
  opts.seed = 99;
  HybridScheduler hybrid(opts);
  LotteryScheduler pure(opts);
  const SimTime t0 = SimTime::Zero();
  for (ThreadId id = 1; id <= 4; ++id) {
    hybrid.AddThread(id, t0);
    pure.AddThread(id, t0);
    hybrid.lottery().FundThread(id, hybrid.lottery().table().base(),
                                static_cast<int64_t>(100 * id));
    pure.FundThread(id, pure.table().base(), static_cast<int64_t>(100 * id));
  }
  for (int round = 0; round < 2000; ++round) {
    for (ThreadId id = 1; id <= 4; ++id) {
      hybrid.OnReady(id, t0);
      pure.OnReady(id, t0);
    }
    ASSERT_EQ(hybrid.PickNext(t0), pure.PickNext(t0)) << "round " << round;
    for (ThreadId id = 1; id <= 4; ++id) {
      hybrid.OnBlocked(id, t0);
      pure.OnBlocked(id, t0);
    }
  }
}

}  // namespace
}  // namespace lottery
