// Unit tests for the observability layer: counters, log-bucket latency
// histograms (including the saturating overflow bucket and 1-in-N sampled
// recording), the named registry, and the streaming JSON writer.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <string>

#include "src/obs/counter.h"
#include "src/obs/histogram.h"
#include "src/obs/json_writer.h"
#include "src/obs/registry.h"

namespace lottery {
namespace obs {
namespace {

// Several expectations depend on whether the hooks are compiled in; the
// suite runs in both CI configurations, so scale them by the switch.
constexpr uint64_t Hooked(uint64_t n) { return kObsEnabled ? n : 0; }

TEST(Counter, StartsAtZeroAndCounts) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.Inc();
  c.Inc(5);
  EXPECT_EQ(c.value(), Hooked(6));
  c.Reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Counter, DebugString) {
  Counter c;
  c.Inc(3);
  EXPECT_EQ(c.DebugString("lottery.draws"),
            "lottery.draws=" + std::to_string(Hooked(3)));
}

TEST(Histogram, BucketPlacement) {
  // Bucket 0 holds the value 0; bucket i holds [2^(i-1), 2^i - 1].
  EXPECT_EQ(LatencyHistogram::BucketIndex(0), 0u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(1), 1u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(2), 2u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(3), 2u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(4), 3u);
  EXPECT_EQ(LatencyHistogram::BucketIndex((uint64_t{1} << 20) - 1), 20u);
  EXPECT_EQ(LatencyHistogram::BucketIndex(uint64_t{1} << 20), 21u);
  for (size_t bucket = 1; bucket < LatencyHistogram::kNumBuckets - 1;
       ++bucket) {
    EXPECT_EQ(LatencyHistogram::BucketIndex(LatencyHistogram::BucketLo(bucket)),
              bucket);
    EXPECT_EQ(LatencyHistogram::BucketIndex(LatencyHistogram::BucketHi(bucket)),
              bucket);
  }
}

TEST(Histogram, OverflowBucketSaturates) {
  LatencyHistogram h;
  h.RecordAlways(std::numeric_limits<uint64_t>::max());
  h.RecordAlways(uint64_t{1} << 63);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_EQ(h.max(), std::numeric_limits<uint64_t>::max());
}

TEST(Histogram, BasicStats) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.min(), 0u);  // empty histogram reports 0, not UINT64_MAX
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  h.RecordAlways(10);
  h.RecordAlways(20);
  h.RecordAlways(30);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 60u);
  EXPECT_EQ(h.min(), 10u);
  EXPECT_EQ(h.max(), 30u);
  EXPECT_DOUBLE_EQ(h.mean(), 20.0);
}

TEST(Histogram, PercentilesInterpolate) {
  LatencyHistogram h;
  for (uint64_t v = 1; v <= 1000; ++v) {
    h.RecordAlways(v);
  }
  // Uniform 1..1000: log buckets plus linear interpolation land close to
  // the exact order statistics, clamped to [min, max].
  EXPECT_NEAR(h.Percentile(0.50), 500.0, 40.0);
  EXPECT_NEAR(h.Percentile(0.90), 900.0, 40.0);
  EXPECT_NEAR(h.Percentile(0.99), 990.0, 40.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.Percentile(1.0), 1000.0);
}

TEST(Histogram, PercentileOfSingleValue) {
  LatencyHistogram h;
  h.RecordAlways(42);
  EXPECT_DOUBLE_EQ(h.Percentile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(h.Percentile(0.99), 42.0);
}

TEST(Histogram, MergeAddsBucketsAndExtremes) {
  LatencyHistogram a, b;
  a.RecordAlways(5);
  a.RecordAlways(100);
  b.RecordAlways(1);
  b.RecordAlways(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.sum(), 1106u);
  EXPECT_EQ(a.min(), 1u);
  EXPECT_EQ(a.max(), 1000u);
}

TEST(Histogram, ResetClearsEverything) {
  LatencyHistogram h;
  h.RecordAlways(7);
  h.RecordSampled(7);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.events(), 0u);
  EXPECT_EQ(h.sum(), 0u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 0u);
}

TEST(Histogram, SampledRecordingCountsEveryEvent) {
  LatencyHistogram h;
  constexpr uint64_t kEvents = 100;
  for (uint64_t i = 0; i < kEvents; ++i) {
    h.RecordSampled(8);
  }
  EXPECT_EQ(h.events(), Hooked(kEvents));
  // First call records, then every kSamplePeriod-th: ceil(events / period).
  const uint64_t expected =
      (Hooked(kEvents) + LatencyHistogram::kSamplePeriod - 1) /
      LatencyHistogram::kSamplePeriod;
  EXPECT_EQ(h.count(), expected);
  if (kObsEnabled) {
    EXPECT_EQ(h.min(), 8u);
    EXPECT_EQ(h.max(), 8u);
  }
}

TEST(Registry, CreateOrGetReturnsStablePointers) {
  Registry reg;
  Counter* c1 = reg.counter("a.events");
  Counter* c2 = reg.counter("a.events");
  EXPECT_EQ(c1, c2);
  LatencyHistogram* h1 = reg.histogram("a.wait_us");
  LatencyHistogram* h2 = reg.histogram("a.wait_us");
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(reg.num_counters(), 1u);
  EXPECT_EQ(reg.num_histograms(), 1u);
  EXPECT_EQ(reg.FindCounter("a.events"), c1);
  EXPECT_EQ(reg.FindCounter("missing"), nullptr);
  EXPECT_EQ(reg.FindHistogram("missing"), nullptr);
}

TEST(Registry, SnapshotsAreNameOrdered) {
  Registry reg;
  reg.counter("z.last")->Inc(2);
  reg.counter("a.first")->Inc(1);
  reg.histogram("m.mid")->RecordAlways(5);
  const auto counters = reg.CounterValues();
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters[0].first, "a.first");
  EXPECT_EQ(counters[0].second, Hooked(1));
  EXPECT_EQ(counters[1].first, "z.last");
  EXPECT_EQ(counters[1].second, Hooked(2));
  const auto histograms = reg.Histograms();
  ASSERT_EQ(histograms.size(), 1u);
  EXPECT_EQ(histograms[0].first, "m.mid");
  EXPECT_EQ(histograms[0].second->count(), 1u);
}

TEST(Registry, ResetZeroesButKeepsRegistrations) {
  Registry reg;
  Counter* c = reg.counter("k.n");
  LatencyHistogram* h = reg.histogram("k.us");
  c->Inc(9);
  h->RecordAlways(9);
  reg.Reset();
  EXPECT_EQ(reg.counter("k.n"), c);  // same node after reset
  EXPECT_EQ(reg.histogram("k.us"), h);
  EXPECT_EQ(c->value(), 0u);
  EXPECT_EQ(h->count(), 0u);
}

TEST(Registry, ToJsonContainsMetrics) {
  Registry reg;
  reg.counter("lottery.draws")->Inc(4);
  reg.histogram("lottery.draw_cost")->RecordAlways(3);
  const std::string json = reg.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"lottery.draws\":" + std::to_string(Hooked(4))),
            std::string::npos);
  EXPECT_NE(json.find("\"lottery.draw_cost\""), std::string::npos);
}

TEST(JsonWriter, NestedDocument) {
  JsonWriter w;
  w.BeginObject();
  w.Key("schema_version").Int(1);
  w.Key("metrics").BeginObject();
  w.Key("ratio").Double(2.5);
  w.Key("count").Uint(7);
  w.EndObject();
  w.Key("tags").BeginArray().String("a").String("b").EndArray();
  w.Key("ok").Bool(true);
  w.Key("none").Null();
  w.EndObject();
  EXPECT_EQ(w.str(),
            "{\"schema_version\":1,"
            "\"metrics\":{\"ratio\":2.5,\"count\":7},"
            "\"tags\":[\"a\",\"b\"],"
            "\"ok\":true,"
            "\"none\":null}");
}

TEST(JsonWriter, EscapesStrings) {
  JsonWriter w;
  w.BeginArray().String("quote\" slash\\ tab\t nl\n bell\x01").EndArray();
  EXPECT_EQ(w.str(), "[\"quote\\\" slash\\\\ tab\\t nl\\n bell\\u0001\"]");
}

TEST(JsonWriter, NonFiniteDoublesBecomeNull) {
  JsonWriter w;
  w.BeginArray()
      .Double(std::nan(""))
      .Double(std::numeric_limits<double>::infinity())
      .Double(1.5)
      .EndArray();
  EXPECT_EQ(w.str(), "[null,null,1.5]");
}

TEST(JsonWriter, MisuseThrows) {
  {
    JsonWriter w;
    w.BeginObject();
    EXPECT_THROW(w.Int(1), std::logic_error);  // value without key
  }
  {
    JsonWriter w;
    w.BeginArray();
    EXPECT_THROW(w.Key("k"), std::logic_error);  // key inside array
  }
  {
    JsonWriter w;
    w.BeginObject();
    EXPECT_THROW(w.EndArray(), std::logic_error);  // mismatched close
  }
}

TEST(WriteFileFn, FailsLoudlyOnBadPath) {
  EXPECT_THROW(WriteFile("/nonexistent-dir/x/y.json", "{}"),
               std::runtime_error);
}

}  // namespace
}  // namespace obs
}  // namespace lottery
