// Tests for ListLottery (Figure 1, Section 4.2) and TreeLottery.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "src/core/client.h"
#include "src/core/currency.h"
#include "src/core/list_lottery.h"
#include "src/core/tree_lottery.h"
#include "src/util/stats.h"

namespace lottery {
namespace {

// Builds active clients with base-denominated holdings.
class ListLotteryTest : public ::testing::Test {
 protected:
  Client* MakeClient(const std::string& name, int64_t amount) {
    clients_.push_back(std::make_unique<Client>(&table_, name));
    Client* c = clients_.back().get();
    c->HoldTicket(table_.CreateTicket(table_.base(), amount));
    c->SetActive(true);
    return c;
  }

  CurrencyTable table_;
  std::vector<std::unique_ptr<Client>> clients_;
};

TEST_F(ListLotteryTest, EmptyDrawsNull) {
  ListLottery lot;
  FastRand rng(1);
  EXPECT_EQ(lot.Draw(rng), nullptr);
  EXPECT_TRUE(lot.empty());
}

TEST_F(ListLotteryTest, AddRemoveContains) {
  ListLottery lot;
  Client* a = MakeClient("a", 10);
  lot.Add(a);
  EXPECT_TRUE(lot.Contains(a));
  EXPECT_EQ(lot.size(), 1u);
  EXPECT_THROW(lot.Add(a), std::invalid_argument);
  lot.Remove(a);
  EXPECT_FALSE(lot.Contains(a));
  EXPECT_THROW(lot.Remove(a), std::invalid_argument);
}

TEST_F(ListLotteryTest, TotalSumsValues) {
  ListLottery lot;
  lot.Add(MakeClient("a", 10));
  lot.Add(MakeClient("b", 2));
  lot.Add(MakeClient("c", 5));
  lot.Add(MakeClient("d", 1));
  lot.Add(MakeClient("e", 2));
  EXPECT_EQ(lot.Total().base_units(), 20);  // Figure 1's 20-ticket example
}

TEST_F(ListLotteryTest, SingleClientAlwaysWins) {
  ListLottery lot;
  Client* a = MakeClient("a", 7);
  lot.Add(a);
  FastRand rng(99);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(lot.Draw(rng), a);
  }
}

TEST_F(ListLotteryTest, ZeroTotalDrawsNull) {
  ListLottery lot;
  Client* a = MakeClient("a", 10);
  a->SetActive(false);  // worth zero
  lot.Add(a);
  FastRand rng(1);
  EXPECT_EQ(lot.Draw(rng), nullptr);
}

TEST_F(ListLotteryTest, ProportionsMatchTicketsChiSquare) {
  // Figure 1's allocation: 10, 2, 5, 1, 2 of 20 total.
  ListLottery lot(/*move_to_front=*/false);
  std::vector<Client*> cs = {MakeClient("a", 10), MakeClient("b", 2),
                             MakeClient("c", 5), MakeClient("d", 1),
                             MakeClient("e", 2)};
  for (Client* c : cs) {
    lot.Add(c);
  }
  FastRand rng(424242);
  constexpr int kDraws = 200000;
  std::map<Client*, int64_t> wins;
  for (int i = 0; i < kDraws; ++i) {
    ++wins[lot.Draw(rng)];
  }
  std::vector<int64_t> observed;
  std::vector<double> expected;
  const double weights[] = {10, 2, 5, 1, 2};
  for (size_t i = 0; i < cs.size(); ++i) {
    observed.push_back(wins[cs[i]]);
    expected.push_back(kDraws * weights[i] / 20.0);
  }
  EXPECT_LT(ChiSquareStatistic(observed, expected),
            ChiSquareCritical(4, 0.001));
}

TEST_F(ListLotteryTest, MoveToFrontDoesNotChangeDistribution) {
  ListLottery lot(/*move_to_front=*/true);
  Client* a = MakeClient("a", 3);
  Client* b = MakeClient("b", 1);
  lot.Add(a);
  lot.Add(b);
  FastRand rng(7);
  int64_t a_wins = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    if (lot.Draw(rng) == a) {
      ++a_wins;
    }
  }
  EXPECT_NEAR(static_cast<double>(a_wins) / kDraws, 0.75, 0.01);
}

TEST_F(ListLotteryTest, MoveToFrontShortensScans) {
  // One dominant client among many: with move-to-front the dominant client
  // sits at the head, so mean scan length approaches 1.
  auto run = [&](bool mtf) {
    ListLottery lot(mtf);
    lot.Add(MakeClient(mtf ? "big1" : "big0", 1000));
    for (int i = 0; i < 49; ++i) {
      lot.Add(MakeClient((mtf ? "m" : "n") + std::to_string(i), 1));
    }
    FastRand rng(5);
    for (int i = 0; i < 20000; ++i) {
      lot.Draw(rng);
    }
    return static_cast<double>(lot.total_scanned()) /
           static_cast<double>(lot.num_draws());
  };
  // Note: the dominant client is added first in both runs, so the plain
  // list also finds it quickly; shuffle it to the back instead.
  ListLottery plain(false), mtf(true);
  std::vector<Client*> small;
  for (int i = 0; i < 49; ++i) {
    small.push_back(MakeClient("s" + std::to_string(i), 1));
  }
  Client* big = MakeClient("big", 1000);
  for (Client* c : small) {
    plain.Add(c);
    mtf.Add(c);
  }
  plain.Add(big);  // dominant client last
  mtf.Add(big);
  FastRand rng1(5), rng2(5);
  for (int i = 0; i < 20000; ++i) {
    plain.Draw(rng1);
    mtf.Draw(rng2);
  }
  const double plain_scan = static_cast<double>(plain.total_scanned()) /
                            static_cast<double>(plain.num_draws());
  const double mtf_scan = static_cast<double>(mtf.total_scanned()) /
                          static_cast<double>(mtf.num_draws());
  EXPECT_LT(mtf_scan, plain_scan / 4.0);
  (void)run;
}

TEST_F(ListLotteryTest, WinnerMovesToFront) {
  ListLottery lot(/*move_to_front=*/true);
  Client* a = MakeClient("a", 1);
  Client* b = MakeClient("b", 1000000);
  lot.Add(a);
  lot.Add(b);
  FastRand rng(3);
  lot.Draw(rng);  // b wins almost surely
  EXPECT_EQ(lot.ClientsInOrder().front(), b);
}

TEST_F(ListLotteryTest, DynamicMembershipStaysFair) {
  // The lottery "operates fairly when the number of clients or tickets
  // varies dynamically" (Section 2): add/remove mid-stream.
  ListLottery lot;
  Client* a = MakeClient("a", 1);
  Client* b = MakeClient("b", 1);
  lot.Add(a);
  lot.Add(b);
  FastRand rng(17);
  for (int i = 0; i < 1000; ++i) {
    lot.Draw(rng);
  }
  Client* c = MakeClient("c", 2);
  lot.Add(c);
  int64_t c_wins = 0;
  constexpr int kDraws = 40000;
  for (int i = 0; i < kDraws; ++i) {
    if (lot.Draw(rng) == c) {
      ++c_wins;
    }
  }
  EXPECT_NEAR(static_cast<double>(c_wins) / kDraws, 0.5, 0.02);
}

TEST_F(ListLotteryTest, CachedTotalTracksValueChanges) {
  ListLottery lot;
  Client* a = MakeClient("a", 10);
  Client* b = MakeClient("b", 30);
  lot.Add(a);
  lot.Add(b);
  EXPECT_EQ(lot.Total().base_units(), 40);
  // Inflation, deactivation, compensation, and removal must all be folded
  // into the cached total via the observer notifications.
  table_.SetAmount(a->tickets()[0], 25);
  EXPECT_EQ(lot.Total().base_units(), 55);
  b->SetActive(false);
  EXPECT_EQ(lot.Total().base_units(), 25);
  b->SetActive(true);
  EXPECT_EQ(lot.Total().base_units(), 55);
  a->SetCompensation(2, 1);
  EXPECT_EQ(lot.Total().base_units(), 80);
  a->ClearCompensation();
  lot.Remove(b);
  EXPECT_EQ(lot.Total().base_units(), 25);
  lot.Add(b);
  EXPECT_EQ(lot.Total().base_units(), 55);
}

TEST_F(ListLotteryTest, CachedTotalSeesMutationsWhileMemberIsInactive) {
  // A member whose funding changes *while it is worth zero* must surface
  // the new value as soon as it reactivates.
  ListLottery lot;
  Client* a = MakeClient("a", 10);
  lot.Add(a);
  a->SetActive(false);
  EXPECT_EQ(lot.Total().base_units(), 0);
  table_.SetAmount(a->tickets()[0], 70);
  a->SetActive(true);
  EXPECT_EQ(lot.Total().base_units(), 70);
}

TEST_F(ListLotteryTest, CachedTotalExactAcrossCurrencyGraph) {
  // Fixed-point currency-graph values (not just whole base units) must sum
  // exactly: 1000 base split 3 ways leaves no rounding drift in the total.
  ListLottery lot;
  Currency* shared = table_.CreateCurrency("shared");
  table_.Fund(shared, table_.CreateTicket(table_.base(), 1000));
  std::vector<Client*> cs;
  for (int i = 0; i < 3; ++i) {
    clients_.push_back(
        std::make_unique<Client>(&table_, "g" + std::to_string(i)));
    Client* c = clients_.back().get();
    c->HoldTicket(table_.CreateTicket(shared, 1));
    c->SetActive(true);
    lot.Add(c);
    cs.push_back(c);
  }
  Funding manual = Funding::Zero();
  for (Client* c : cs) {
    manual += c->Value();
  }
  EXPECT_EQ(lot.Total().raw(), manual.raw());
  table_.SetAmount(cs[1]->tickets()[0], 5);
  manual = Funding::Zero();
  for (Client* c : cs) {
    manual += c->Value();
  }
  EXPECT_EQ(lot.Total().raw(), manual.raw());
}

TEST_F(ListLotteryTest, RejectsClientsFromAnotherTable) {
  ListLottery lot;
  lot.Add(MakeClient("a", 1));
  CurrencyTable other;
  Client foreign(&other, "foreign");
  EXPECT_THROW(lot.Add(&foreign), std::invalid_argument);
}

TEST_F(ListLotteryTest, HeavyChurnCompactsTombstones) {
  // Add/remove churn far past the live count: draws stay correct and the
  // order semantics match the paper's list (spot-checked via Front()).
  ListLottery lot;
  std::vector<Client*> cs;
  for (int i = 0; i < 64; ++i) {
    cs.push_back(MakeClient("c" + std::to_string(i), 1 + (i % 5)));
  }
  FastRand rng(123);
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 64; ++i) {
      lot.Add(cs[static_cast<size_t>(i)]);
    }
    for (int i = 0; i < 60; ++i) {
      lot.Remove(cs[static_cast<size_t>(i)]);
    }
    Funding manual = Funding::Zero();
    for (int i = 60; i < 64; ++i) {
      manual += cs[static_cast<size_t>(i)]->Value();
    }
    ASSERT_EQ(lot.Total().raw(), manual.raw());
    Client* w = lot.Draw(rng);
    ASSERT_NE(w, nullptr);
    ASSERT_TRUE(lot.Contains(w));
    ASSERT_EQ(lot.ClientsInOrder().front(), w);  // move-to-front applied
    for (int i = 60; i < 64; ++i) {
      lot.Remove(cs[static_cast<size_t>(i)]);
    }
    ASSERT_TRUE(lot.empty());
    ASSERT_TRUE(lot.Total().IsZero());
  }
}

// --- TreeLottery ------------------------------------------------------------

TEST(TreeLottery, EmptyDrawsNullopt) {
  TreeLottery tree;
  FastRand rng(1);
  EXPECT_FALSE(tree.Draw(rng).has_value());
  EXPECT_TRUE(tree.empty());
}

TEST(TreeLottery, SlotForValueExactBoundaries) {
  TreeLottery tree;
  const size_t a = tree.Add(10);
  const size_t b = tree.Add(2);
  const size_t c = tree.Add(5);
  EXPECT_EQ(tree.total(), 17u);
  EXPECT_EQ(tree.SlotForValue(0), a);
  EXPECT_EQ(tree.SlotForValue(9), a);
  EXPECT_EQ(tree.SlotForValue(10), b);
  EXPECT_EQ(tree.SlotForValue(11), b);
  EXPECT_EQ(tree.SlotForValue(12), c);
  EXPECT_EQ(tree.SlotForValue(16), c);
  EXPECT_THROW(tree.SlotForValue(17), std::out_of_range);
}

TEST(TreeLottery, SetWeightMovesBoundaries) {
  TreeLottery tree;
  const size_t a = tree.Add(4);
  const size_t b = tree.Add(4);
  tree.SetWeight(a, 1);
  EXPECT_EQ(tree.total(), 5u);
  EXPECT_EQ(tree.SlotForValue(0), a);
  EXPECT_EQ(tree.SlotForValue(1), b);
}

TEST(TreeLottery, RemoveFreesAndRecyclesSlots) {
  TreeLottery tree;
  const size_t a = tree.Add(3);
  const size_t b = tree.Add(7);
  tree.Remove(a);
  EXPECT_EQ(tree.total(), 7u);
  EXPECT_EQ(tree.size(), 1u);
  const size_t c = tree.Add(5);
  EXPECT_EQ(c, a);  // recycled
  EXPECT_EQ(tree.total(), 12u);
  (void)b;
}

TEST(TreeLottery, GrowsPastInitialCapacity) {
  TreeLottery tree(2);
  std::vector<size_t> slots;
  for (int i = 0; i < 100; ++i) {
    slots.push_back(tree.Add(static_cast<uint64_t>(i + 1)));
  }
  EXPECT_EQ(tree.size(), 100u);
  uint64_t expected_total = 0;
  for (int i = 0; i < 100; ++i) {
    expected_total += static_cast<uint64_t>(i + 1);
    EXPECT_EQ(tree.Weight(slots[static_cast<size_t>(i)]),
              static_cast<uint64_t>(i + 1));
  }
  EXPECT_EQ(tree.total(), expected_total);
}

TEST(TreeLottery, ZeroWeightSlotNeverWins) {
  TreeLottery tree;
  tree.Add(0);
  const size_t b = tree.Add(5);
  FastRand rng(2);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_EQ(tree.Draw(rng).value(), b);
  }
}

TEST(TreeLottery, DistributionMatchesWeights) {
  TreeLottery tree;
  const size_t a = tree.Add(10);
  const size_t b = tree.Add(2);
  const size_t c = tree.Add(5);
  const size_t d = tree.Add(1);
  const size_t e = tree.Add(2);
  FastRand rng(31337);
  std::map<size_t, int64_t> wins;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    ++wins[tree.Draw(rng).value()];
  }
  const std::vector<int64_t> observed = {wins[a], wins[b], wins[c], wins[d],
                                         wins[e]};
  const std::vector<double> expected = {kDraws * 10 / 20.0, kDraws * 2 / 20.0,
                                        kDraws * 5 / 20.0, kDraws * 1 / 20.0,
                                        kDraws * 2 / 20.0};
  EXPECT_LT(ChiSquareStatistic(observed, expected),
            ChiSquareCritical(4, 0.001));
}

TEST(TreeLottery, LargeWeightsUse64Bits) {
  TreeLottery tree;
  const uint64_t big = uint64_t{1} << 40;
  const size_t a = tree.Add(big);
  const size_t b = tree.Add(big * 3);
  FastRand rng(11);
  int64_t b_wins = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    if (tree.Draw(rng).value() == b) {
      ++b_wins;
    }
  }
  EXPECT_NEAR(static_cast<double>(b_wins) / kDraws, 0.75, 0.02);
  (void)a;
}

// Property sweep: for any size, SlotForValue partitions [0, total) into
// intervals whose lengths equal the weights.
class TreePartitionSweep : public ::testing::TestWithParam<int> {};

TEST_P(TreePartitionSweep, PartitionLengthsEqualWeights) {
  const int n = GetParam();
  TreeLottery tree;
  FastRand rng(static_cast<uint32_t>(100 + n));
  std::vector<size_t> slots;
  std::vector<uint64_t> weights;
  for (int i = 0; i < n; ++i) {
    const uint64_t w = rng.NextBelow(20);  // zero weights allowed
    slots.push_back(tree.Add(w));
    weights.push_back(w);
  }
  std::map<size_t, uint64_t> hits;
  for (uint64_t v = 0; v < tree.total(); ++v) {
    ++hits[tree.SlotForValue(v)];
  }
  for (int i = 0; i < n; ++i) {
    EXPECT_EQ(hits[slots[static_cast<size_t>(i)]],
              weights[static_cast<size_t>(i)])
        << "slot " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, TreePartitionSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 16, 17, 33, 64, 100));

}  // namespace
}  // namespace lottery
