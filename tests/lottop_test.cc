// Tests for the lottop library (tools/lottop): strict TsFile parsing, the
// canned fairness scenarios against their acceptance bounds, check/diff
// semantics, and deterministic frame rendering.

#include "tools/lottop/lottop.h"

#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

namespace lottery {
namespace lottop {
namespace {

// A minimal valid document for parser unit tests.
std::string MinimalDoc() {
  return R"({"anomalies":[{"bound":2.0,"kind":"lag","t_ns":1500,"tid":7,"value":3.5}],)"
         R"("anomalies_dropped":0,)"
         R"("clients":[{"label":"a","tid":7}],)"
         R"("kind":"timeseries",)"
         R"("metadata":{"interval_ns":500,"lag_sigma":6,"num_cpus":1,)"
         R"("quantum_ns":100,"samples":2,"seed":42,"share_err_bound":0.35,)"
         R"("share_window_samples":16,"starvation_bound_ns":10000},)"
         R"("schema_version":1,)"
         R"("series":{"client.a.lag_ms":{"count":[1,1],"max":[0.5,1.5],)"
         R"("mean":[0.5,1.5],"min":[0.5,1.5],"stride":1,"t_ns":[500,1000]}},)"
         R"("source":"unit"})";
}

TEST(TsFileParse, AcceptsMinimalDocument) {
  const TsFile file = TsFile::Parse(MinimalDoc());
  EXPECT_EQ(file.source, "unit");
  EXPECT_EQ(file.seed, 42u);
  EXPECT_EQ(file.interval_ns, 500);
  EXPECT_EQ(file.samples, 2);
  ASSERT_EQ(file.clients.size(), 1u);
  EXPECT_EQ(file.clients[0].label, "a");
  EXPECT_EQ(file.clients[0].tid, 7u);
  ASSERT_EQ(file.anomalies.size(), 1u);
  EXPECT_EQ(file.anomalies[0].kind, "lag");
  EXPECT_EQ(file.anomalies[0].t_ns, 1500);
  const SeriesData* lag = file.ClientSeries("a", "lag_ms");
  ASSERT_NE(lag, nullptr);
  EXPECT_EQ(lag->t_ns.size(), 2u);
  EXPECT_DOUBLE_EQ(lag->LastMean(), 1.5);
  EXPECT_DOUBLE_EQ(lag->GlobalMin(), 0.5);
  EXPECT_DOUBLE_EQ(lag->GlobalMax(), 1.5);
  EXPECT_EQ(file.Find("no.such.series"), nullptr);
}

TEST(TsFileParse, RejectsMalformedDocuments) {
  // Wrong kind.
  std::string doc = MinimalDoc();
  size_t pos = doc.find("\"timeseries\"");
  EXPECT_THROW(TsFile::Parse(doc.replace(pos, 12, "\"telemetry\" ")),
               std::runtime_error);
  // Wrong schema version.
  doc = MinimalDoc();
  pos = doc.find("\"schema_version\":1");
  EXPECT_THROW(TsFile::Parse(doc.replace(pos, 18, "\"schema_version\":2")),
               std::runtime_error);
  // Non-monotone time axis.
  doc = MinimalDoc();
  pos = doc.find("\"t_ns\":[500,1000]");
  EXPECT_THROW(TsFile::Parse(doc.replace(pos, 17, "\"t_ns\":[1000,500]")),
               std::runtime_error);
  // Mismatched array lengths.
  doc = MinimalDoc();
  pos = doc.find("\"count\":[1,1]");
  EXPECT_THROW(TsFile::Parse(doc.replace(pos, 13, "\"count\":[1]  ")),
               std::runtime_error);
  // Non-finite values never parse (the writer would have emitted null).
  doc = MinimalDoc();
  pos = doc.find("\"mean\":[0.5,1.5]");
  EXPECT_THROW(TsFile::Parse(doc.replace(pos, 16, "\"mean\":[0.5,null]")),
               std::runtime_error);
  // Truncated text.
  EXPECT_THROW(TsFile::Parse(MinimalDoc().substr(0, 100)),
               std::runtime_error);
}

TEST(Check, CountsAnomaliesByKind) {
  const TsFile file = TsFile::Parse(MinimalDoc());
  const CheckResult result = Check(file);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.lag, 1u);
  EXPECT_EQ(result.starvation, 0u);
  EXPECT_EQ(result.share_error, 0u);
}

// --- Scenarios (the PR's acceptance bounds) --------------------------------

TEST(Scenario, FairMixAuditsClean) {
  const ScenarioResult result = RunScenario("fair", 42, 60);
  EXPECT_EQ(result.lag_anomalies, 0u);
  EXPECT_EQ(result.starvation_anomalies, 0u);
  EXPECT_EQ(result.share_anomalies, 0u);
  EXPECT_EQ(result.first_anomaly_t_ns, -1);
  EXPECT_TRUE(Check(TsFile::Parse(result.json)).ok());
}

TEST(Scenario, MonopolyTripsWithinOneWindow) {
  // One window = share_window_samples x interval = 16 x 500 ms = 8 s.
  const ScenarioResult result = RunScenario("monopoly", 42, 60);
  EXPECT_GT(result.lag_anomalies + result.share_anomalies, 0u);
  ASSERT_GE(result.first_anomaly_t_ns, 0);
  EXPECT_LE(result.first_anomaly_t_ns, 8'000'000'000);
  const TsFile file = TsFile::Parse(result.json);
  EXPECT_FALSE(Check(file).ok());
  // The monopolist's delivered share sits far under its 80% entitlement.
  const SeriesData* share = file.ClientSeries("monopolist", "share");
  ASSERT_NE(share, nullptr);
  EXPECT_LT(share->LastMean(), 0.4);
}

TEST(Scenario, StarvationFiresAtTheBound) {
  const ScenarioResult result = RunScenario("starvation", 42, 60);
  EXPECT_GE(result.starvation_anomalies, 1u);
  const TsFile file = TsFile::Parse(result.json);
  bool saw_starvation = false;
  for (const AnomalyRow& a : file.anomalies) {
    if (a.kind == "starvation") {
      saw_starvation = true;
      // Not before the 10 s watermark.
      EXPECT_GE(a.t_ns, 10'000'000'000);
    }
  }
  EXPECT_TRUE(saw_starvation);
}

TEST(Scenario, SameSeedRecordingsAreIdentical) {
  const ScenarioResult a = RunScenario("fair", 7, 30);
  const ScenarioResult b = RunScenario("fair", 7, 30);
  EXPECT_EQ(a.json, b.json);
  const TsDiffResult diff = Diff(TsFile::Parse(a.json), TsFile::Parse(b.json));
  EXPECT_TRUE(diff.identical) << diff.detail;
}

TEST(Scenario, UnknownNameThrows) {
  EXPECT_THROW(RunScenario("coinflip", 1, 1), std::invalid_argument);
}

// --- Diff -------------------------------------------------------------------

TEST(Diff, ReportsFirstDivergence) {
  const ScenarioResult a = RunScenario("fair", 7, 30);
  const ScenarioResult b = RunScenario("fair", 8, 30);
  const TsDiffResult diff = Diff(TsFile::Parse(a.json), TsFile::Parse(b.json));
  EXPECT_FALSE(diff.identical);
  EXPECT_FALSE(diff.detail.empty());
}

// --- Rendering --------------------------------------------------------------

TEST(Render, FrameIsDeterministicAndNamesClients) {
  const ScenarioResult result = RunScenario("fair", 42, 60);
  const TsFile file = TsFile::Parse(result.json);
  const FrameData frame = BuildFrame(file);
  EXPECT_EQ(frame.source, "lottop_fair");
  ASSERT_EQ(frame.clients.size(), 3u);

  RenderOptions opts;
  opts.ascii = true;
  const std::string text = RenderFrame(frame, opts);
  EXPECT_EQ(text, RenderFrame(BuildFrame(file), opts));
  for (const char* label : {"a", "b", "c"}) {
    EXPECT_NE(text.find(label), std::string::npos);
  }
  // ASCII mode stays 7-bit for CI logs.
  for (const char c : text) {
    EXPECT_GE(static_cast<unsigned char>(c), 0x09);
    EXPECT_LT(static_cast<unsigned char>(c), 0x80);
  }
  // Summary text is likewise a pure function of the document.
  EXPECT_EQ(SummaryText(file), SummaryText(TsFile::Parse(result.json)));
}

}  // namespace
}  // namespace lottop
}  // namespace lottery
