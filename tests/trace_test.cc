// Tests for the Tracer metric collector and its CSV export.

#include "src/sim/trace.h"

#include <gtest/gtest.h>

namespace lottery {
namespace {

SimTime At(int64_t ms) { return SimTime::Zero() + SimDuration::Millis(ms); }

TEST(Tracer, RejectsNonPositiveWindow) {
  EXPECT_THROW(Tracer(SimDuration::Nanos(0)), std::invalid_argument);
}

TEST(Tracer, ProgressBucketsByWindow) {
  Tracer tracer(SimDuration::Seconds(1));
  tracer.AddProgress(1, At(100), 5);
  tracer.AddProgress(1, At(900), 5);
  tracer.AddProgress(1, At(1100), 7);
  EXPECT_EQ(tracer.WindowProgress(1, 0), 10);
  EXPECT_EQ(tracer.WindowProgress(1, 1), 7);
  EXPECT_EQ(tracer.TotalProgress(1), 17);
  EXPECT_EQ(tracer.num_windows(), 2u);
}

TEST(Tracer, UnknownThreadsAndWindowsAreZero) {
  Tracer tracer(SimDuration::Seconds(1));
  EXPECT_EQ(tracer.TotalProgress(42), 0);
  EXPECT_EQ(tracer.WindowProgress(42, 0), 0);
  tracer.AddProgress(1, At(0), 1);
  EXPECT_EQ(tracer.WindowProgress(1, 5), 0);
}

TEST(Tracer, CumulativeThroughSumsPrefix) {
  Tracer tracer(SimDuration::Seconds(1));
  tracer.AddProgress(1, At(500), 1);
  tracer.AddProgress(1, At(1500), 2);
  tracer.AddProgress(1, At(2500), 4);
  EXPECT_EQ(tracer.CumulativeThrough(1, 0), 1);
  EXPECT_EQ(tracer.CumulativeThrough(1, 1), 3);
  EXPECT_EQ(tracer.CumulativeThrough(1, 2), 7);
  EXPECT_EQ(tracer.CumulativeThrough(1, 9), 7);
}

TEST(Tracer, SamplesAndStats) {
  Tracer tracer(SimDuration::Seconds(1));
  tracer.RecordSample("lat", At(100), 1.0);
  tracer.RecordSample("lat", At(200), 3.0);
  EXPECT_TRUE(tracer.HasSeries("lat"));
  EXPECT_FALSE(tracer.HasSeries("nope"));
  EXPECT_EQ(tracer.Samples("lat").size(), 2u);
  EXPECT_DOUBLE_EQ(tracer.SampleStats("lat").mean(), 2.0);
  EXPECT_TRUE(tracer.Samples("nope").empty());
}

TEST(Tracer, WindowsCsvShape) {
  Tracer tracer(SimDuration::Seconds(1));
  tracer.AddProgress(1, At(100), 3);
  tracer.AddProgress(2, At(1200), 4);
  const std::string csv = tracer.WindowsCsv({1, 2}, {"a", "b"});
  EXPECT_EQ(csv,
            "window_start_sec,a,b\n"
            "0,3,0\n"
            "1,0,4\n");
  EXPECT_THROW(tracer.WindowsCsv({1}, {"a", "b"}), std::invalid_argument);
}

TEST(Tracer, SeriesCsvShape) {
  Tracer tracer(SimDuration::Seconds(1));
  tracer.RecordSample("lat", At(500), 2.5);
  const std::string csv = tracer.SeriesCsv("lat");
  EXPECT_EQ(csv, "time_sec,value\n0.5,2.5\n");
}

TEST(Tracer, DispatchLogOffByDefault) {
  Tracer tracer(SimDuration::Seconds(1));
  tracer.RecordDispatch(1, 0, At(0), SimDuration::Millis(100));
  EXPECT_TRUE(tracer.dispatches().empty());
}

TEST(Tracer, DispatchLogRecordsAndCaps) {
  Tracer tracer(SimDuration::Seconds(1));
  tracer.EnableDispatchLog(/*cap=*/2);
  tracer.RecordDispatch(1, 0, At(0), SimDuration::Millis(100));
  tracer.RecordDispatch(2, 1, At(100), SimDuration::Millis(50));
  tracer.RecordDispatch(3, 0, At(150), SimDuration::Millis(50));  // dropped
  ASSERT_EQ(tracer.dispatches().size(), 2u);
  EXPECT_EQ(tracer.dispatches()[1].tid, 2u);
  EXPECT_EQ(tracer.dispatches()[1].cpu, 1);
  EXPECT_EQ(tracer.dropped(), 1u);
  const std::string csv = tracer.DispatchesCsv();
  EXPECT_EQ(csv,
            "# dropped=1 dispatches past the log cap of 2\n"
            "tid,cpu,start_sec,duration_sec\n"
            "1,0,0,0.1\n"
            "2,1,0.1,0.05\n");
}

TEST(Tracer, DispatchLogNoDropComment) {
  Tracer tracer(SimDuration::Seconds(1));
  tracer.EnableDispatchLog(/*cap=*/2);
  tracer.RecordDispatch(1, 0, At(0), SimDuration::Millis(100));
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_EQ(tracer.DispatchesCsv(),
            "tid,cpu,start_sec,duration_sec\n"
            "1,0,0,0.1\n");
}

}  // namespace
}  // namespace lottery
