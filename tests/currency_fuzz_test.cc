// Property/fuzz tests for the currency graph: random operation sequences
// must preserve the Section 4.4 bookkeeping invariants at every step.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/core/client.h"
#include "src/core/currency.h"
#include "src/util/fastrand.h"

namespace lottery {
namespace {

// Checks every structural invariant the activation/value machinery relies
// on. Called after every mutation in the fuzz loop.
void CheckInvariants(const CurrencyTable& table,
                     const std::vector<std::unique_ptr<Client>>& clients) {
  for (const Currency* c : table.Currencies()) {
    int64_t active_sum = 0;
    int64_t issued_sum = 0;
    for (const Ticket* t : c->issued()) {
      issued_sum += t->amount();
      if (t->active()) {
        active_sum += t->amount();
      }
      // Issued tickets must point back at their denomination.
      ASSERT_EQ(t->denomination(), c);
    }
    ASSERT_EQ(c->active_amount(), active_sum) << "currency " << c->name();
    ASSERT_EQ(c->issued_amount(), issued_sum) << "currency " << c->name();
    ASSERT_GE(c->active_amount(), 0);
    // Backing tickets' activation matches the currency's activity.
    for (const Ticket* b : c->backing()) {
      ASSERT_EQ(b->funds(), c);
      ASSERT_EQ(b->active(), c->active_amount() > 0)
          << "backing of " << c->name();
    }
    // Values are non-negative and memoization is consistent with a fresh
    // computation (second call must agree with the first).
    const Funding v1 = table.CurrencyValue(c);
    const Funding v2 = table.CurrencyValue(c);
    ASSERT_EQ(v1, v2);
    ASSERT_GE(v1.raw(), 0);
  }
  // Held tickets follow their holder's activity; unattached are inactive.
  for (const Ticket* t : table.Tickets()) {
    if (t->holder() != nullptr) {
      ASSERT_EQ(t->active(), t->holder()->active());
      ASSERT_EQ(t->funds(), nullptr);
    } else if (t->funds() == nullptr) {
      ASSERT_FALSE(t->active());
    }
  }
  // Conservation: total client value never exceeds the base currency's
  // active funding (truncation only loses value, never creates it).
  __int128 total_client_raw = 0;
  for (const auto& c : clients) {
    total_client_raw += c->Value().raw();
  }
  const __int128 base_raw =
      static_cast<__int128>(table.base()->active_amount()) * Funding::kOne;
  ASSERT_LE(total_client_raw, base_raw);
}

class CurrencyFuzz : public ::testing::TestWithParam<uint32_t> {};

TEST_P(CurrencyFuzz, RandomOperationSequencePreservesInvariants) {
  FastRand rng(GetParam());
  CurrencyTable table;
  std::vector<std::unique_ptr<Client>> clients;
  int name_counter = 0;

  auto random_currency = [&]() -> Currency* {
    const auto all = table.Currencies();
    return all[rng.NextBelow(static_cast<uint32_t>(all.size()))];
  };
  auto random_ticket = [&]() -> Ticket* {
    const auto all = table.Tickets();
    if (all.empty()) {
      return nullptr;
    }
    return all[rng.NextBelow(static_cast<uint32_t>(all.size()))];
  };

  for (int step = 0; step < 600; ++step) {
    const uint32_t op = rng.NextBelow(10);
    try {
      switch (op) {
        case 0:  // create currency
          if (table.num_currencies() < 12) {
            table.CreateCurrency("cur" + std::to_string(name_counter++));
          }
          break;
        case 1:  // create ticket
          if (table.num_tickets() < 60) {
            table.CreateTicket(random_currency(),
                               1 + rng.NextBelow(1000));
          }
          break;
        case 2: {  // fund (may be rejected: cycle / attached / base)
          Ticket* t = random_ticket();
          if (t != nullptr) {
            table.Fund(random_currency(), t);
          }
          break;
        }
        case 3: {  // unfund
          Ticket* t = random_ticket();
          if (t != nullptr && t->funds() != nullptr) {
            table.Unfund(t);
          }
          break;
        }
        case 4: {  // destroy ticket
          Ticket* t = random_ticket();
          if (t != nullptr) {
            table.DestroyTicket(t);
          }
          break;
        }
        case 5: {  // inflate/deflate
          Ticket* t = random_ticket();
          if (t != nullptr) {
            table.SetAmount(t, 1 + rng.NextBelow(2000));
          }
          break;
        }
        case 6:  // create client
          if (clients.size() < 16) {
            clients.push_back(std::make_unique<Client>(
                &table, "client" + std::to_string(name_counter++)));
          }
          break;
        case 7: {  // hold a ticket
          Ticket* t = random_ticket();
          if (t != nullptr && !clients.empty() && t->holder() == nullptr &&
              t->funds() == nullptr) {
            clients[rng.NextBelow(static_cast<uint32_t>(clients.size()))]
                ->HoldTicket(t);
          }
          break;
        }
        case 8: {  // release a held ticket
          if (!clients.empty()) {
            Client* c = clients[rng.NextBelow(
                                    static_cast<uint32_t>(clients.size()))]
                            .get();
            if (!c->tickets().empty()) {
              c->ReleaseTicket(c->tickets()[rng.NextBelow(
                  static_cast<uint32_t>(c->tickets().size()))]);
            }
          }
          break;
        }
        case 9: {  // toggle a client's activity
          if (!clients.empty()) {
            Client* c = clients[rng.NextBelow(
                                    static_cast<uint32_t>(clients.size()))]
                            .get();
            c->SetActive(!c->active());
          }
          break;
        }
      }
    } catch (const std::invalid_argument&) {
      // Legitimately rejected operation (cycle, double-attach, base fund);
      // the table must still be fully consistent.
    }
    CheckInvariants(table, clients);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CurrencyFuzz,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u, 13u, 21u, 34u,
                                           55u, 89u));

// Deep chains: activation and valuation through a linear chain of N
// currencies stay exact.
class DeepChain : public ::testing::TestWithParam<int> {};

TEST_P(DeepChain, ValueSurvivesDepth) {
  const int depth = GetParam();
  CurrencyTable table;
  Currency* parent = table.base();
  Currency* leaf = nullptr;
  for (int i = 0; i < depth; ++i) {
    leaf = table.CreateCurrency("level" + std::to_string(i));
    Ticket* backing = (i == 0)
                          ? table.CreateTicket(table.base(), 4096)
                          : table.CreateTicket(parent, 100);
    table.Fund(leaf, backing);
    parent = leaf;
  }
  Client client(&table, "deep");
  client.HoldTicket(table.CreateTicket(leaf, 7));
  client.SetActive(true);
  // Sole chain: every level passes 100% of its funding down.
  EXPECT_EQ(client.Value().base_units(), 4096);
  client.SetActive(false);
  EXPECT_EQ(table.base()->active_amount(), 0);
}

INSTANTIATE_TEST_SUITE_P(Depths, DeepChain,
                         ::testing::Values(1, 2, 3, 5, 10, 20, 40));

// Wide fan-out: N siblings share a currency exactly.
class WideFanout : public ::testing::TestWithParam<int> {};

TEST_P(WideFanout, SharesSumToWhole) {
  const int n = GetParam();
  CurrencyTable table;
  Currency* cur = table.CreateCurrency("shared");
  table.Fund(cur, table.CreateTicket(table.base(), 1 << 20));
  std::vector<std::unique_ptr<Client>> clients;
  for (int i = 0; i < n; ++i) {
    clients.push_back(
        std::make_unique<Client>(&table, "c" + std::to_string(i)));
    clients.back()->HoldTicket(table.CreateTicket(cur, 1 + (i % 7)));
    clients.back()->SetActive(true);
  }
  __int128 sum = 0;
  for (const auto& c : clients) {
    sum += c->Value().raw();
  }
  const __int128 whole = static_cast<__int128>(1 << 20) * Funding::kOne;
  // Truncation may lose at most one raw unit per client.
  EXPECT_LE(sum, whole);
  EXPECT_GE(sum, whole - n);
}

INSTANTIATE_TEST_SUITE_P(Sizes, WideFanout,
                         ::testing::Values(1, 2, 3, 10, 50, 200));

}  // namespace
}  // namespace lottery
