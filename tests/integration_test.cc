// Integration tests: scaled-down versions of the paper's Section 5
// experiments running end-to-end through kernel + scheduler + workloads.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "src/core/lottery_scheduler.h"
#include "src/sim/kernel.h"
#include "src/workloads/compute.h"
#include "src/workloads/query_server.h"
#include "src/workloads/video.h"

namespace lottery {
namespace {

Kernel::Options KOpts(int64_t quantum_ms = 100) {
  Kernel::Options o;
  o.quantum = SimDuration::Millis(quantum_ms);
  return o;
}

LotteryScheduler::Options LOpts(uint32_t seed) {
  LotteryScheduler::Options o;
  o.seed = seed;
  return o;
}

ThreadId SpawnCompute(Kernel& kernel, LotteryScheduler& sched,
                      const std::string& name, Currency* denom,
                      int64_t amount) {
  const ThreadId tid = kernel.Spawn(name, std::make_unique<ComputeTask>());
  sched.FundThread(tid, denom, amount);
  return tid;
}

TEST(Integration, TwoToOneThroughputRatio) {
  // Figure 4's core claim at ratio 2: throughput tracks tickets.
  LotteryScheduler sched(LOpts(1));
  Tracer tracer(SimDuration::Seconds(1));
  Kernel kernel(&sched, KOpts(), &tracer);
  const ThreadId a =
      SpawnCompute(kernel, sched, "a", sched.table().base(), 200);
  const ThreadId b =
      SpawnCompute(kernel, sched, "b", sched.table().base(), 100);
  kernel.RunFor(SimDuration::Seconds(60));
  const double ratio = static_cast<double>(tracer.TotalProgress(a)) /
                       static_cast<double>(tracer.TotalProgress(b));
  EXPECT_NEAR(ratio, 2.0, 0.25);
}

TEST(Integration, TenToOneRatioHasHigherVariance) {
  // Figure 4 shows larger ratios converge more slowly; check a 10:1 run
  // lands in a loose band around 10.
  LotteryScheduler sched(LOpts(2));
  Tracer tracer(SimDuration::Seconds(1));
  Kernel kernel(&sched, KOpts(), &tracer);
  const ThreadId a =
      SpawnCompute(kernel, sched, "a", sched.table().base(), 1000);
  const ThreadId b =
      SpawnCompute(kernel, sched, "b", sched.table().base(), 100);
  kernel.RunFor(SimDuration::Seconds(60));
  const double ratio = static_cast<double>(tracer.TotalProgress(a)) /
                       static_cast<double>(tracer.TotalProgress(b));
  EXPECT_GT(ratio, 7.0);
  EXPECT_LT(ratio, 14.0);
}

TEST(Integration, ShorterQuantaImproveAccuracy) {
  // Section 2: with more lotteries per second, observed shares converge
  // faster. Compare 2:1 error with 100 ms vs 10 ms quanta over 30 s.
  auto observed_error = [](int64_t quantum_ms, uint32_t seed) {
    LotteryScheduler sched(LOpts(seed));
    Tracer tracer(SimDuration::Seconds(1));
    Kernel kernel(&sched, KOpts(quantum_ms), &tracer);
    const ThreadId a =
        kernel.Spawn("a", std::make_unique<ComputeTask>());
    sched.FundThread(a, sched.table().base(), 200);
    const ThreadId b =
        kernel.Spawn("b", std::make_unique<ComputeTask>());
    sched.FundThread(b, sched.table().base(), 100);
    kernel.RunFor(SimDuration::Seconds(30));
    const double ratio = static_cast<double>(tracer.TotalProgress(a)) /
                         static_cast<double>(tracer.TotalProgress(b));
    return std::abs(ratio - 2.0);
  };
  double coarse = 0.0, fine = 0.0;
  for (uint32_t seed = 10; seed < 15; ++seed) {
    coarse += observed_error(100, seed);
    fine += observed_error(10, seed);
  }
  EXPECT_LT(fine, coarse);
}

TEST(Integration, CurrencyInsulationFigure9Shape) {
  // Currencies A and B identically funded; A1:A2 = 1:2 within A; adding
  // B3 = 300.B halfway must not change A's tasks' aggregate share.
  LotteryScheduler sched(LOpts(3));
  Tracer tracer(SimDuration::Seconds(1));
  Kernel kernel(&sched, KOpts(), &tracer);
  CurrencyTable& table = sched.table();
  Currency* a_cur = table.CreateCurrency("A");
  Currency* b_cur = table.CreateCurrency("B");
  table.Fund(a_cur, table.CreateTicket(table.base(), 1000));
  table.Fund(b_cur, table.CreateTicket(table.base(), 1000));

  const ThreadId a1 = SpawnCompute(kernel, sched, "A1", a_cur, 100);
  const ThreadId a2 = SpawnCompute(kernel, sched, "A2", a_cur, 200);
  const ThreadId b1 = SpawnCompute(kernel, sched, "B1", b_cur, 100);
  const ThreadId b2 = SpawnCompute(kernel, sched, "B2", b_cur, 200);

  kernel.RunFor(SimDuration::Seconds(100));
  const int64_t a_total_before =
      tracer.TotalProgress(a1) + tracer.TotalProgress(a2);

  // Start B3 with 300.B: inflates currency B's issued amount 300 -> 600.
  const ThreadId b3 = SpawnCompute(kernel, sched, "B3", b_cur, 300);
  kernel.RunFor(SimDuration::Seconds(100));

  const int64_t a_total_after =
      tracer.TotalProgress(a1) + tracer.TotalProgress(a2) - a_total_before;
  // A's aggregate rate in both halves should be ~50% of the machine.
  EXPECT_NEAR(static_cast<double>(a_total_after) /
                  static_cast<double>(a_total_before),
              1.0, 0.1);
  // Within B, B3 should get ~half of B's share after inflation.
  const int64_t b_total = tracer.TotalProgress(b1) + tracer.TotalProgress(b2) +
                          tracer.TotalProgress(b3);
  EXPECT_NEAR(static_cast<double>(tracer.TotalProgress(b3)) /
                  static_cast<double>(b_total),
              0.33, 0.12);
}

TEST(Integration, ClientServerThroughputFollowsTransfers) {
  // Figure 7 in miniature: three clients 8:3:1, three unfunded workers.
  LotteryScheduler sched(LOpts(4));
  Tracer tracer(SimDuration::Seconds(1));
  Kernel kernel(&sched, KOpts(), &tracer);
  RpcPort port(&kernel, "db");

  QueryClient::Options copts;
  copts.num_queries = -1;
  copts.query_cost = SimDuration::Millis(430);  // not quantum-aligned: a worker that
  // replies mid-slice dequeues the next parked message in the same slice
  std::vector<QueryClient*> clients;
  const int64_t funds[] = {800, 300, 100};
  for (int i = 0; i < 3; ++i) {
    auto c = std::make_unique<QueryClient>(&port, copts);
    clients.push_back(c.get());
    const ThreadId tid =
        kernel.Spawn("client" + std::to_string(i), std::move(c));
    sched.FundThread(tid, sched.table().base(), funds[i]);
  }
  for (int i = 0; i < 3; ++i) {
    port.RegisterServer(kernel.Spawn("worker" + std::to_string(i),
                                     std::make_unique<QueryWorker>(&port)));
  }
  kernel.RunFor(SimDuration::Seconds(600));
  ASSERT_GT(clients[2]->completed(), 20);
  const double r01 = static_cast<double>(clients[0]->completed()) /
                     static_cast<double>(clients[1]->completed());
  const double r12 = static_cast<double>(clients[1]->completed()) /
                     static_cast<double>(clients[2]->completed());
  EXPECT_NEAR(r01, 8.0 / 3.0, 0.7);
  EXPECT_NEAR(r12, 3.0, 0.8);
  // Response times scale inversely with funding.
  const double l0 = tracer.SampleStats("rpc_latency:client0").mean();
  const double l2 = tracer.SampleStats("rpc_latency:client2").mean();
  EXPECT_LT(l0 * 3.0, l2);
}

TEST(Integration, VideoRatiosChangeOnReallocation) {
  // Figure 8 in miniature: 3:2:1 then 3:1:2 midway.
  LotteryScheduler sched(LOpts(5));
  Tracer tracer(SimDuration::Seconds(1));
  Kernel kernel(&sched, KOpts(), &tracer);
  VideoViewer::Options vopts;
  vopts.frame_cost = SimDuration::Millis(40);
  std::vector<ThreadId> tids;
  std::vector<Ticket*> tickets;
  const int64_t initial[] = {300, 200, 100};
  for (int i = 0; i < 3; ++i) {
    const ThreadId tid = kernel.Spawn("viewer" + std::to_string(i),
                                      std::make_unique<VideoViewer>(vopts));
    tids.push_back(tid);
    tickets.push_back(
        sched.FundThread(tid, sched.table().base(), initial[i]));
  }
  kernel.RunFor(SimDuration::Seconds(120));
  std::vector<int64_t> first_half;
  for (const ThreadId tid : tids) {
    first_half.push_back(tracer.TotalProgress(tid));
  }
  // Reallocate to 3:1:2 (the paper swaps B and C).
  sched.table().SetAmount(tickets[1], 100);
  sched.table().SetAmount(tickets[2], 200);
  kernel.RunFor(SimDuration::Seconds(120));

  const double b_second =
      static_cast<double>(tracer.TotalProgress(tids[1]) - first_half[1]);
  const double c_second =
      static_cast<double>(tracer.TotalProgress(tids[2]) - first_half[2]);
  EXPECT_NEAR(static_cast<double>(first_half[1]) /
                  static_cast<double>(first_half[2]),
              2.0, 0.4);
  EXPECT_NEAR(c_second / b_second, 2.0, 0.4);
}

TEST(Integration, CompensationKeepsFractionalConsumerOnAllocation) {
  // Section 4.5: equal funding; B uses 20 ms of each 100 ms quantum. With
  // compensation, A and B consume CPU 1:1 over time... except B can only
  // use what it asks for; the paper's claim is B gets its 50% *of its
  // demand pattern* — i.e. B wins ~5x as often. Measure CPU ratio ~1:1.
  LotteryScheduler sched(LOpts(6));
  Kernel kernel(&sched, KOpts(), nullptr);
  const ThreadId a = kernel.Spawn("A", std::make_unique<ComputeTask>());
  sched.FundThread(a, sched.table().base(), 100);
  const ThreadId b =
      kernel.Spawn("B", std::make_unique<YieldingTask>(SimDuration::Millis(20)));
  sched.FundThread(b, sched.table().base(), 100);
  kernel.RunFor(SimDuration::Seconds(300));
  const double ratio =
      kernel.CpuTime(a).ToSecondsF() / kernel.CpuTime(b).ToSecondsF();
  EXPECT_NEAR(ratio, 1.0, 0.15);
}

TEST(Integration, WithoutCompensationFractionalConsumerFallsBehind) {
  // Ablation: compensation off, same setup: B gets ~1/5 of A.
  LotteryScheduler::Options lopts = LOpts(7);
  lopts.compensation.enabled = false;
  LotteryScheduler sched(lopts);
  Kernel kernel(&sched, KOpts(), nullptr);
  const ThreadId a = kernel.Spawn("A", std::make_unique<ComputeTask>());
  sched.FundThread(a, sched.table().base(), 100);
  const ThreadId b =
      kernel.Spawn("B", std::make_unique<YieldingTask>(SimDuration::Millis(20)));
  sched.FundThread(b, sched.table().base(), 100);
  kernel.RunFor(SimDuration::Seconds(300));
  const double ratio =
      kernel.CpuTime(a).ToSecondsF() / kernel.CpuTime(b).ToSecondsF();
  EXPECT_GT(ratio, 3.5);  // ~5:1 in expectation
}

TEST(Integration, DynamicTicketChangesTakeEffectImmediately) {
  LotteryScheduler sched(LOpts(8));
  Tracer tracer(SimDuration::Seconds(1));
  Kernel kernel(&sched, KOpts(), &tracer);
  const ThreadId a = SpawnCompute(kernel, sched, "a", sched.table().base(), 100);
  const ThreadId b = SpawnCompute(kernel, sched, "b", sched.table().base(), 100);
  kernel.RunFor(SimDuration::Seconds(50));
  const int64_t a_before = tracer.TotalProgress(a);
  const int64_t b_before = tracer.TotalProgress(b);
  // Inflate a's funding 1 -> 9x.
  sched.FundThread(a, sched.table().base(), 800);
  kernel.RunFor(SimDuration::Seconds(50));
  const double a_delta =
      static_cast<double>(tracer.TotalProgress(a) - a_before);
  const double b_delta =
      static_cast<double>(tracer.TotalProgress(b) - b_before);
  EXPECT_NEAR(a_delta / b_delta, 9.0, 2.0);
}

TEST(Integration, NoStarvationAtExtremeRatios) {
  // "Any client with a non-zero number of tickets will eventually win."
  LotteryScheduler sched(LOpts(9));
  Tracer tracer(SimDuration::Seconds(1));
  Kernel kernel(&sched, KOpts(), &tracer);
  const ThreadId rich =
      SpawnCompute(kernel, sched, "rich", sched.table().base(), 10000);
  const ThreadId poor =
      SpawnCompute(kernel, sched, "poor", sched.table().base(), 1);
  kernel.RunFor(SimDuration::Seconds(3000));
  EXPECT_GT(tracer.TotalProgress(poor), 0);
  EXPECT_GT(tracer.TotalProgress(rich), tracer.TotalProgress(poor) * 1000);
}

TEST(Integration, FairnessOverSubsecondWindowsWithShortQuanta)  {
  // Section 2: 10 ms quanta -> reasonable fairness over subsecond windows.
  LotteryScheduler sched(LOpts(10));
  Tracer tracer(SimDuration::Millis(500));
  Kernel kernel(&sched, KOpts(10), &tracer);
  const ThreadId a = SpawnCompute(kernel, sched, "a", sched.table().base(), 200);
  const ThreadId b = SpawnCompute(kernel, sched, "b", sched.table().base(), 100);
  kernel.RunFor(SimDuration::Seconds(20));
  int windows_in_band = 0;
  int windows_total = 0;
  for (size_t w = 0; w < tracer.num_windows(); ++w) {
    const int64_t pa = tracer.WindowProgress(a, w);
    const int64_t pb = tracer.WindowProgress(b, w);
    if (pa + pb == 0) {
      continue;
    }
    ++windows_total;
    const double share =
        static_cast<double>(pa) / static_cast<double>(pa + pb);
    if (share > 0.5 && share < 0.8) {
      ++windows_in_band;
    }
  }
  ASSERT_GT(windows_total, 30);
  EXPECT_GT(static_cast<double>(windows_in_band) /
                static_cast<double>(windows_total),
            0.8);
}

}  // namespace
}  // namespace lottery
