#include "src/core/client.h"

#include <gtest/gtest.h>

#include "src/core/currency.h"

namespace lottery {
namespace {

class ClientTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ticket_ = table_.CreateTicket(table_.base(), 400);
  }
  CurrencyTable table_;
  Ticket* ticket_ = nullptr;
};

TEST_F(ClientTest, HoldAndRelease) {
  Client c(&table_, "c");
  c.HoldTicket(ticket_);
  EXPECT_EQ(ticket_->holder(), &c);
  ASSERT_EQ(c.tickets().size(), 1u);
  c.ReleaseTicket(ticket_);
  EXPECT_EQ(ticket_->holder(), nullptr);
  EXPECT_TRUE(c.tickets().empty());
}

TEST_F(ClientTest, CannotHoldAttachedTicket) {
  Client a(&table_, "a");
  Client b(&table_, "b");
  a.HoldTicket(ticket_);
  EXPECT_THROW(b.HoldTicket(ticket_), std::invalid_argument);
  Currency* cur = table_.CreateCurrency("cur");
  Ticket* backing = table_.CreateTicket(table_.base(), 10);
  table_.Fund(cur, backing);
  EXPECT_THROW(b.HoldTicket(backing), std::invalid_argument);
}

TEST_F(ClientTest, CannotReleaseForeignTicket) {
  Client a(&table_, "a");
  Client b(&table_, "b");
  a.HoldTicket(ticket_);
  EXPECT_THROW(b.ReleaseTicket(ticket_), std::invalid_argument);
}

TEST_F(ClientTest, ValueZeroWhileInactive) {
  Client c(&table_, "c");
  c.HoldTicket(ticket_);
  EXPECT_TRUE(c.Value().IsZero());
  c.SetActive(true);
  EXPECT_EQ(c.Value().base_units(), 400);
  c.SetActive(false);
  EXPECT_TRUE(c.Value().IsZero());
}

TEST_F(ClientTest, HoldingWhileActiveActivatesImmediately) {
  Client c(&table_, "c");
  c.SetActive(true);
  c.HoldTicket(ticket_);
  EXPECT_TRUE(ticket_->active());
  EXPECT_EQ(c.Value().base_units(), 400);
}

TEST_F(ClientTest, ReleasingActiveTicketDeactivatesIt) {
  Client c(&table_, "c");
  c.SetActive(true);
  c.HoldTicket(ticket_);
  c.ReleaseTicket(ticket_);
  EXPECT_FALSE(ticket_->active());
  EXPECT_EQ(table_.base()->active_amount(), 0);
}

TEST_F(ClientTest, MultipleTicketsSum) {
  Client c(&table_, "c");
  c.HoldTicket(ticket_);
  Ticket* more = table_.CreateTicket(table_.base(), 100);
  c.HoldTicket(more);
  c.SetActive(true);
  EXPECT_EQ(c.Value().base_units(), 500);
}

TEST_F(ClientTest, CompensationMultipliesValue) {
  Client c(&table_, "c");
  c.HoldTicket(ticket_);
  c.SetActive(true);
  // Section 4.5's example: 400 base at 1/5 usage -> 2000 base.
  c.SetCompensation(5, 1);
  EXPECT_TRUE(c.has_compensation());
  EXPECT_DOUBLE_EQ(c.compensation_factor(), 5.0);
  EXPECT_EQ(c.Value().base_units(), 2000);
  c.ClearCompensation();
  EXPECT_FALSE(c.has_compensation());
  EXPECT_EQ(c.Value().base_units(), 400);
}

TEST_F(ClientTest, CompensationRejectsNonPositive) {
  Client c(&table_, "c");
  EXPECT_THROW(c.SetCompensation(0, 1), std::invalid_argument);
  EXPECT_THROW(c.SetCompensation(1, -2), std::invalid_argument);
}

TEST_F(ClientTest, ValueCacheTracksCompensationChanges) {
  Client c(&table_, "c");
  c.HoldTicket(ticket_);
  c.SetActive(true);
  EXPECT_EQ(c.Value().base_units(), 400);
  c.SetCompensation(2, 1);
  EXPECT_EQ(c.Value().base_units(), 800);  // cache must not serve stale 400
  c.SetCompensation(3, 2);
  EXPECT_EQ(c.Value().base_units(), 600);
}

TEST_F(ClientTest, DestructorDetachesTickets) {
  {
    Client c(&table_, "c");
    c.HoldTicket(ticket_);
    c.SetActive(true);
  }
  EXPECT_EQ(ticket_->holder(), nullptr);
  EXPECT_FALSE(ticket_->active());
  // Ticket still exists and can be reused.
  Client d(&table_, "d");
  d.HoldTicket(ticket_);
  SUCCEED();
}

TEST_F(ClientTest, DestroyingHeldTicketDetachesFromClient) {
  Client c(&table_, "c");
  c.HoldTicket(ticket_);
  c.SetActive(true);
  table_.DestroyTicket(ticket_);
  EXPECT_TRUE(c.tickets().empty());
  EXPECT_TRUE(c.Value().IsZero());
}

}  // namespace
}  // namespace lottery
