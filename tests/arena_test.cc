// Tests for the allocation substrate behind the million-thread scale work:
// SlabPool (typed slab allocator with intrusive free list), ChunkedVector
// (stable-address chunked array), and SmallFn (inline-storage callable used
// for event handlers).

#include <cstddef>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/util/arena.h"
#include "src/util/small_fn.h"

namespace lottery {
namespace {

struct Probe {
  static int live;
  int value;
  explicit Probe(int v) : value(v) { ++live; }
  ~Probe() { --live; }
};
int Probe::live = 0;

TEST(SlabPool, NewRunsConstructorDeleteRunsDestructor) {
  Probe::live = 0;
  util::SlabPool<Probe, 4> pool;
  Probe* a = pool.New(7);
  EXPECT_EQ(a->value, 7);
  EXPECT_EQ(Probe::live, 1);
  EXPECT_EQ(pool.live(), 1u);
  pool.Delete(a);
  EXPECT_EQ(Probe::live, 0);
  EXPECT_EQ(pool.live(), 0u);
}

TEST(SlabPool, ReusesFreedSlotsWithoutGrowing) {
  Probe::live = 0;
  util::SlabPool<Probe, 4> pool;
  Probe* a = pool.New(1);
  EXPECT_EQ(pool.slabs(), 1u);
  pool.Delete(a);
  Probe* b = pool.New(2);
  EXPECT_EQ(b, a) << "freed slot should be reused before the pool grows";
  EXPECT_EQ(b->value, 2);
  pool.Delete(b);
  EXPECT_EQ(pool.slabs(), 1u);
}

TEST(SlabPool, GrowsByWholeSlabsWithStableAddresses) {
  Probe::live = 0;
  util::SlabPool<Probe, 4> pool;
  std::vector<Probe*> objs;
  for (int i = 0; i < 9; ++i) {
    objs.push_back(pool.New(i));
  }
  EXPECT_EQ(pool.slabs(), 3u);
  EXPECT_EQ(pool.capacity(), 12u);
  EXPECT_EQ(pool.live(), 9u);
  for (int i = 0; i < 9; ++i) {
    EXPECT_EQ(objs[static_cast<size_t>(i)]->value, i);
  }
  for (Probe* p : objs) {
    pool.Delete(p);
  }
  EXPECT_EQ(Probe::live, 0);
}

TEST(SlabPool, WorksWithNonTrivialTypes) {
  util::SlabPool<std::string, 2> pool;
  std::string* s = pool.New(size_t{1000}, 'x');
  EXPECT_EQ(s->size(), 1000u);
  pool.Delete(s);
}

TEST(ChunkedVector, ElementsKeepTheirAddressesAcrossGrowth) {
  util::ChunkedVector<int, 4> v;
  int* first = &v.EmplaceBack(42);
  for (int i = 0; i < 100; ++i) {
    v.EmplaceBack(i);
  }
  EXPECT_EQ(v.size(), 101u);
  EXPECT_EQ(first, &v[0]) << "chunked storage must never relocate";
  EXPECT_EQ(v[0], 42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(v[static_cast<size_t>(i) + 1], i);
  }
}

TEST(ChunkedVector, ClearDestroysEverythingAndIsReusable) {
  Probe::live = 0;
  util::ChunkedVector<Probe, 4> v;
  for (int i = 0; i < 10; ++i) {
    v.EmplaceBack(i);
  }
  EXPECT_EQ(Probe::live, 10);
  v.clear();
  EXPECT_EQ(Probe::live, 0);
  EXPECT_EQ(v.size(), 0u);
  v.EmplaceBack(5);
  EXPECT_EQ(v[0].value, 5);
}

TEST(ChunkedVector, DestructorReleasesElements) {
  Probe::live = 0;
  {
    util::ChunkedVector<Probe, 4> v;
    for (int i = 0; i < 6; ++i) {
      v.EmplaceBack(i);
    }
    EXPECT_EQ(Probe::live, 6);
  }
  EXPECT_EQ(Probe::live, 0);
}

TEST(SmallFn, InvokesInlineCallableWithArgsAndResult) {
  util::SmallFn<int(int, int)> fn = [](int a, int b) { return a * 10 + b; };
  ASSERT_TRUE(static_cast<bool>(fn));
  EXPECT_EQ(fn(3, 4), 34);
}

TEST(SmallFn, DefaultConstructedIsEmpty) {
  util::SmallFn<void()> fn;
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(SmallFn, MoveTransfersOwnershipAndEmptiesSource) {
  int hits = 0;
  util::SmallFn<void()> a = [&hits] { ++hits; };
  util::SmallFn<void()> b = std::move(a);
  EXPECT_FALSE(static_cast<bool>(a));
  ASSERT_TRUE(static_cast<bool>(b));
  b();
  EXPECT_EQ(hits, 1);

  util::SmallFn<void()> c;
  c = std::move(b);
  EXPECT_FALSE(static_cast<bool>(b));
  c();
  EXPECT_EQ(hits, 2);
}

TEST(SmallFn, DestroysCaptureExactlyOnce) {
  // The shared_ptr use-count tracks how many copies of the capture exist.
  auto token = std::make_shared<int>(1);
  {
    util::SmallFn<void()> fn = [token] {};
    EXPECT_EQ(token.use_count(), 2);
    util::SmallFn<void()> moved = std::move(fn);
    EXPECT_EQ(token.use_count(), 2) << "move must not copy the capture";
    moved();
  }
  EXPECT_EQ(token.use_count(), 1);
}

TEST(SmallFn, MoveOnlyCapturesWork) {
  auto owned = std::make_unique<int>(99);
  util::SmallFn<int()> fn = [p = std::move(owned)] { return *p; };
  EXPECT_EQ(fn(), 99);
}

}  // namespace
}  // namespace lottery
