// Tests for the lottery-scheduled counting semaphore.

#include "src/sim/semaphore.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/sched/round_robin.h"
#include "src/workloads/compute.h"

namespace lottery {
namespace {

Kernel::Options KOpts() {
  Kernel::Options o;
  o.quantum = SimDuration::Millis(100);
  return o;
}

// Producer: computes `cost` then Signals, forever.
class Producer : public ThreadBody {
 public:
  Producer(SimSemaphore* sem, SimDuration cost) : sem_(sem), cost_(cost) {}
  void Run(RunContext& ctx) override {
    for (;;) {
      left_ -= ctx.Consume(left_ < ctx.remaining() ? left_ : ctx.remaining());
      if (left_.nanos() > 0) {
        return;
      }
      sem_->Signal(ctx);
      ++produced_;
      left_ = cost_;
      if (ctx.remaining().nanos() == 0) {
        return;
      }
    }
  }
  int64_t produced() const { return produced_; }

 private:
  SimSemaphore* sem_;
  SimDuration cost_;
  SimDuration left_ = cost_;
  int64_t produced_ = 0;
};

// Consumer: Waits, then consumes `cost` of CPU per item.
class Consumer : public ThreadBody {
 public:
  Consumer(SimSemaphore* sem, SimDuration cost) : sem_(sem), cost_(cost) {}
  void Run(RunContext& ctx) override {
    for (;;) {
      if (waiting_) {
        waiting_ = false;  // woken holding a permit
        left_ = cost_;
      } else if (left_.nanos() == 0) {
        if (!sem_->Wait(ctx)) {
          waiting_ = true;
          ctx.Block();
          return;
        }
        left_ = cost_;
      }
      left_ -= ctx.Consume(left_ < ctx.remaining() ? left_ : ctx.remaining());
      if (left_.nanos() > 0) {
        return;
      }
      ++consumed_;
      ctx.AddProgress(1);
      if (ctx.remaining().nanos() == 0) {
        return;
      }
    }
  }
  int64_t consumed() const { return consumed_; }

 private:
  SimSemaphore* sem_;
  SimDuration cost_;
  SimDuration left_{};
  bool waiting_ = false;
  int64_t consumed_ = 0;
};

TEST(SimSemaphore, RejectsNegativePermits) {
  RoundRobinScheduler sched;
  Kernel kernel(&sched, KOpts());
  EXPECT_THROW(SimSemaphore(&kernel, "s", -1), std::invalid_argument);
}

TEST(SimSemaphore, InitialPermitsConsumedWithoutBlocking) {
  RoundRobinScheduler sched;
  Kernel kernel(&sched, KOpts());
  SimSemaphore sem(&kernel, "s", 2);
  class TakeTwo : public ThreadBody {
   public:
    explicit TakeTwo(SimSemaphore* s) : s_(s) {}
    void Run(RunContext& ctx) override {
      EXPECT_TRUE(s_->Wait(ctx));
      EXPECT_TRUE(s_->Wait(ctx));
      EXPECT_EQ(s_->permits(), 0);
      ctx.Consume(SimDuration::Millis(1));
      ctx.ExitThread();
    }
    SimSemaphore* s_;
  };
  kernel.Spawn("t", std::make_unique<TakeTwo>(&sem));
  kernel.RunFor(SimDuration::Seconds(1));
  EXPECT_EQ(sem.total_waits(), 2u);
}

TEST(SimSemaphore, FifoProducerConsumerUnderRoundRobin) {
  RoundRobinScheduler sched;
  Kernel kernel(&sched, KOpts());
  SimSemaphore sem(&kernel, "queue", 0);
  auto producer =
      std::make_unique<Producer>(&sem, SimDuration::Millis(20));
  auto consumer =
      std::make_unique<Consumer>(&sem, SimDuration::Millis(5));
  Producer* p = producer.get();
  Consumer* c = consumer.get();
  kernel.Spawn("producer", std::move(producer));
  kernel.Spawn("consumer", std::move(consumer));
  kernel.RunFor(SimDuration::Seconds(30));
  EXPECT_GT(p->produced(), 500);
  // The consumer keeps up (items are cheaper than production).
  EXPECT_NEAR(static_cast<double>(c->consumed()),
              static_cast<double>(p->produced()), 20.0);
}

TEST(SimSemaphore, CreatesAndRetiresCurrency) {
  LotteryScheduler sched;
  Kernel kernel(&sched, KOpts());
  {
    SimSemaphore sem(&kernel, "tmp", 0);
    EXPECT_NE(sched.table().FindCurrency("sem:tmp"), nullptr);
  }
  EXPECT_EQ(sched.table().FindCurrency("sem:tmp"), nullptr);
}

TEST(SimSemaphore, BeneficiaryInheritsWaiterFunding) {
  LotteryScheduler::Options lopts;
  lopts.seed = 3;
  LotteryScheduler sched(lopts);
  Kernel kernel(&sched, KOpts());
  SimSemaphore sem(&kernel, "queue", 0);

  // Slow producer with little funding; consumer with a lot.
  auto producer = std::make_unique<Producer>(&sem, SimDuration::Millis(50));
  const ThreadId ptid = kernel.Spawn("producer", std::move(producer));
  sched.FundThread(ptid, sched.table().base(), 100);
  sem.SetBeneficiary(ptid);

  auto consumer = std::make_unique<Consumer>(&sem, SimDuration::Millis(1));
  const ThreadId ctid = kernel.Spawn("consumer", std::move(consumer));
  sched.FundThread(ctid, sched.table().base(), 900);

  // A compute hog competes with the producer.
  const ThreadId hog = kernel.Spawn("hog", std::make_unique<ComputeTask>());
  sched.FundThread(hog, sched.table().base(), 500);

  kernel.RunFor(SimDuration::Seconds(5));
  // While the consumer blocks on the empty queue, its 900 flows to the
  // producer: producer value = own 100 + consumer 900.
  if (sem.num_waiters() == 1) {
    EXPECT_EQ(sched.ThreadValue(ptid).base_units(), 1000);
  }
  kernel.RunFor(SimDuration::Seconds(115));
  // With inheritance the producer runs at ~1000/1500 of the CPU despite its
  // own 100 tickets: it completes far more items than its bare share
  // (100/600 of the CPU -> ~400 items in 120 s) would allow.
  const SimDuration producer_cpu = kernel.CpuTime(ptid);
  EXPECT_GT(producer_cpu.ToSecondsF(), 60.0);
}

TEST(SimSemaphore, WeightedWakeupPrefersFundedWaiters) {
  LotteryScheduler::Options lopts;
  lopts.seed = 9;
  LotteryScheduler sched(lopts);
  Kernel kernel(&sched, KOpts());
  SimSemaphore sem(&kernel, "queue", 0);

  // One item per ~2.3 quanta: each Signal then finds both consumers back
  // in the wait queue, so (almost) every item goes through a weighted draw.
  // (A fast producer that signals several times per slice hands the later
  // items to whichever single waiter remains, diluting the ratio.)
  auto producer = std::make_unique<Producer>(&sem, SimDuration::Millis(230));
  const ThreadId ptid = kernel.Spawn("producer", std::move(producer));
  sched.FundThread(ptid, sched.table().base(), 1000);
  sem.SetBeneficiary(ptid);

  // Two consumers with 3:1 funding competing for scarce items.
  auto rich = std::make_unique<Consumer>(&sem, SimDuration::Millis(1));
  auto poor = std::make_unique<Consumer>(&sem, SimDuration::Millis(1));
  Consumer* rc = rich.get();
  Consumer* pc = poor.get();
  const ThreadId rtid = kernel.Spawn("rich", std::move(rich));
  sched.FundThread(rtid, sched.table().base(), 750);
  const ThreadId ptid2 = kernel.Spawn("poor", std::move(poor));
  sched.FundThread(ptid2, sched.table().base(), 250);

  kernel.RunFor(SimDuration::Seconds(240));
  ASSERT_GT(pc->consumed(), 0);
  const double ratio = static_cast<double>(rc->consumed()) /
                       static_cast<double>(pc->consumed());
  // Items are handed out ~3:1 by the wakeup lottery.
  EXPECT_GT(ratio, 2.0);
  EXPECT_LT(ratio, 4.5);
}

}  // namespace
}  // namespace lottery
