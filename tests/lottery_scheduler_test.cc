#include "src/core/lottery_scheduler.h"

#include <gtest/gtest.h>

#include <map>

#include "src/obs/histogram.h"
#include "src/obs/registry.h"

namespace lottery {
namespace {

const SimTime kT0 = SimTime::Zero();
const SimDuration kQuantum = SimDuration::Millis(100);

TEST(LotteryScheduler, EmptyPicksInvalid) {
  LotteryScheduler sched;
  EXPECT_EQ(sched.PickNext(kT0), kInvalidThreadId);
}

TEST(LotteryScheduler, AddCreatesThreadCurrencyAndClient) {
  LotteryScheduler sched;
  sched.AddThread(1, kT0);
  EXPECT_NE(sched.thread_currency(1), nullptr);
  EXPECT_NE(sched.client(1), nullptr);
  EXPECT_EQ(sched.thread_currency(1)->name(), "thread:1");
  EXPECT_THROW(sched.AddThread(1, kT0), std::invalid_argument);
}

TEST(LotteryScheduler, UnknownThreadThrows) {
  LotteryScheduler sched;
  EXPECT_THROW(sched.OnReady(9, kT0), std::invalid_argument);
  EXPECT_THROW(sched.thread_currency(9), std::invalid_argument);
}

TEST(LotteryScheduler, SingleReadyThreadAlwaysPicked) {
  LotteryScheduler sched;
  sched.AddThread(1, kT0);
  sched.FundThread(1, sched.table().base(), 100);
  sched.OnReady(1, kT0);
  EXPECT_EQ(sched.PickNext(kT0), 1u);
  // Picked thread is dequeued.
  EXPECT_EQ(sched.PickNext(kT0), kInvalidThreadId);
}

TEST(LotteryScheduler, ProportionsFollowFunding) {
  LotteryScheduler::Options opts;
  opts.seed = 777;
  LotteryScheduler sched(opts);
  sched.AddThread(1, kT0);
  sched.AddThread(2, kT0);
  sched.FundThread(1, sched.table().base(), 300);
  sched.FundThread(2, sched.table().base(), 100);
  std::map<ThreadId, int> wins;
  constexpr int kRounds = 20000;
  for (int i = 0; i < kRounds; ++i) {
    sched.OnReady(1, kT0);
    sched.OnReady(2, kT0);
    const ThreadId w = sched.PickNext(kT0);
    ++wins[w];
    // Clean up queue for next round.
    sched.OnBlocked(1, kT0);
    sched.OnBlocked(2, kT0);
  }
  EXPECT_NEAR(static_cast<double>(wins[1]) / kRounds, 0.75, 0.02);
  EXPECT_EQ(sched.num_lotteries(), static_cast<uint64_t>(kRounds));
}

TEST(LotteryScheduler, BlockedThreadValueIsZero) {
  LotteryScheduler sched;
  sched.AddThread(1, kT0);
  sched.FundThread(1, sched.table().base(), 500);
  EXPECT_TRUE(sched.ThreadValue(1).IsZero());
  sched.OnReady(1, kT0);
  EXPECT_EQ(sched.ThreadValue(1).base_units(), 500);
  sched.OnBlocked(1, kT0);
  EXPECT_TRUE(sched.ThreadValue(1).IsZero());
}

TEST(LotteryScheduler, CompensationGrantedAndClearedOnDispatch) {
  LotteryScheduler sched;
  sched.AddThread(1, kT0);
  sched.FundThread(1, sched.table().base(), 400);
  sched.OnReady(1, kT0);
  ASSERT_EQ(sched.PickNext(kT0), 1u);
  // Used 1/5 of the quantum.
  sched.OnQuantumEnd(1, SimDuration::Millis(20), kQuantum, kT0);
  sched.OnReady(1, kT0);
  EXPECT_EQ(sched.ThreadValue(1).base_units(), 2000);
  // Dispatch clears it ("starts its next quantum").
  ASSERT_EQ(sched.PickNext(kT0), 1u);
  EXPECT_EQ(sched.ThreadValue(1).base_units(), 400);
}

TEST(LotteryScheduler, CompensationCanBeDisabled) {
  LotteryScheduler::Options opts;
  opts.compensation.enabled = false;
  LotteryScheduler sched(opts);
  sched.AddThread(1, kT0);
  sched.FundThread(1, sched.table().base(), 400);
  sched.OnReady(1, kT0);
  ASSERT_EQ(sched.PickNext(kT0), 1u);
  sched.OnQuantumEnd(1, SimDuration::Millis(20), kQuantum, kT0);
  sched.OnReady(1, kT0);
  EXPECT_EQ(sched.ThreadValue(1).base_units(), 400);
}

TEST(LotteryScheduler, ZeroFundingFallsBackToRoundRobin) {
  LotteryScheduler sched;
  sched.AddThread(1, kT0);
  sched.AddThread(2, kT0);
  // No funding beyond self tickets in unfunded thread currencies: all
  // values are zero.
  sched.OnReady(1, kT0);
  sched.OnReady(2, kT0);
  const ThreadId first = sched.PickNext(kT0);
  sched.OnReady(first, kT0);
  const ThreadId second = sched.PickNext(kT0);
  EXPECT_NE(first, second);  // rotation, not starvation
  EXPECT_GE(sched.num_zero_fallbacks(), 2u);
}

TEST(LotteryScheduler, RemoveThreadCleansUpCurrencyGraph) {
  LotteryScheduler sched;
  sched.AddThread(1, kT0);
  Currency* user = sched.table().CreateCurrency("user");
  sched.table().Fund(user, sched.table().CreateTicket(sched.table().base(),
                                                      1000));
  sched.FundThread(1, user, 100);
  const size_t tickets_before = sched.table().num_tickets();
  sched.OnReady(1, kT0);
  sched.RemoveThread(1, kT0);
  EXPECT_EQ(sched.table().FindCurrency("thread:1"), nullptr);
  // Self ticket + funding ticket retired.
  EXPECT_EQ(sched.table().num_tickets(), tickets_before - 2);
  EXPECT_THROW(sched.client(1), std::invalid_argument);
}

TEST(LotteryScheduler, HierarchicalFundingIsProportional) {
  // Two users with 2:1 base funding; each runs one thread.
  LotteryScheduler::Options opts;
  opts.seed = 31;
  LotteryScheduler sched(opts);
  Currency* alice = sched.table().CreateCurrency("alice");
  Currency* bob = sched.table().CreateCurrency("bob");
  sched.table().Fund(alice,
                     sched.table().CreateTicket(sched.table().base(), 200));
  sched.table().Fund(bob,
                     sched.table().CreateTicket(sched.table().base(), 100));
  sched.AddThread(1, kT0);
  sched.AddThread(2, kT0);
  sched.FundThread(1, alice, 50);
  sched.FundThread(2, bob, 50);
  int wins1 = 0;
  constexpr int kRounds = 30000;
  for (int i = 0; i < kRounds; ++i) {
    sched.OnReady(1, kT0);
    sched.OnReady(2, kT0);
    if (sched.PickNext(kT0) == 1u) {
      ++wins1;
    }
    sched.OnBlocked(1, kT0);
    sched.OnBlocked(2, kT0);
  }
  EXPECT_NEAR(static_cast<double>(wins1) / kRounds, 2.0 / 3.0, 0.02);
}

TEST(LotteryScheduler, NameIsLottery) {
  LotteryScheduler sched;
  EXPECT_EQ(sched.name(), "lottery");
}

TEST(LotteryScheduler, MetricsMatchGroundTruth) {
  // Scripted run against an isolated registry: the obs counters must agree
  // exactly with what the script did.
  obs::Registry metrics;
  LotteryScheduler::Options opts;
  opts.seed = 123;
  opts.metrics = &metrics;
  LotteryScheduler sched(opts);
  sched.AddThread(1, kT0);
  sched.AddThread(2, kT0);
  sched.FundThread(1, sched.table().base(), 300);
  sched.FundThread(2, sched.table().base(), 100);

  constexpr uint64_t kRounds = 50;
  uint64_t fractional_rounds = 0;
  for (uint64_t i = 0; i < kRounds; ++i) {
    sched.OnReady(1, kT0);
    sched.OnReady(2, kT0);
    const ThreadId w = sched.PickNext(kT0);
    ASSERT_NE(w, kInvalidThreadId);
    // Alternate full and fractional quanta; only fractional ones earn a
    // compensation ticket.
    const bool fractional = (i % 2) == 1;
    if (fractional) {
      ++fractional_rounds;
    }
    sched.OnQuantumEnd(w, fractional ? SimDuration::Millis(20) : kQuantum,
                       kQuantum, kT0);
    sched.OnBlocked(1, kT0);
    sched.OnBlocked(2, kT0);
  }

  const auto hooked = [](uint64_t n) { return obs::kObsEnabled ? n : 0; };
  ASSERT_NE(metrics.FindCounter("lottery.draws"), nullptr);
  EXPECT_EQ(metrics.FindCounter("lottery.draws")->value(), hooked(kRounds));
  EXPECT_EQ(metrics.FindCounter("lottery.compensation_grants")->value(),
            hooked(fractional_rounds));
  EXPECT_EQ(metrics.FindCounter("lottery.zero_fallbacks")->value(), 0u);
  EXPECT_EQ(metrics.FindCounter("lottery.transfers")->value(), 0u);
  // The draw-cost histogram sees every draw (sampled 1-in-kSamplePeriod
  // into the buckets, first event always recorded).
  const obs::LatencyHistogram* cost =
      metrics.FindHistogram("lottery.draw_cost");
  ASSERT_NE(cost, nullptr);
  EXPECT_EQ(cost->events(), hooked(kRounds));
  EXPECT_EQ(cost->count(),
            (hooked(kRounds) + obs::LatencyHistogram::kSamplePeriod - 1) /
                obs::LatencyHistogram::kSamplePeriod);
  // num_lotteries is the scheduler's own (unhooked) tally of the same event.
  EXPECT_EQ(sched.num_lotteries(), kRounds);
}

TEST(LotteryScheduler, TransferCounterTracksNotes) {
  obs::Registry metrics;
  LotteryScheduler::Options opts;
  opts.metrics = &metrics;
  LotteryScheduler sched(opts);
  sched.NoteTransfer();
  sched.NoteTransfer();
  EXPECT_EQ(metrics.FindCounter("lottery.transfers")->value(),
            obs::kObsEnabled ? 2u : 0u);
}

TEST(LotteryScheduler, ListBackendRefusesPastThreadLimit) {
  // The list's O(n) draw is ~280x the tree's at 10k clients; past the
  // limit AddThread must throw rather than silently degrade.
  LotteryScheduler::Options opts;
  opts.backend = RunQueueBackend::kList;
  opts.list_max_threads = 8;
  LotteryScheduler sched(opts);
  for (int i = 0; i < 8; ++i) {
    sched.AddThread(static_cast<ThreadId>(i + 1), SimTime::Zero());
  }
  EXPECT_THROW(sched.AddThread(9, SimTime::Zero()), std::length_error);
  // Existing threads keep working.
  sched.OnReady(1, SimTime::Zero());
  EXPECT_EQ(sched.PickNext(SimTime::Zero()), 1u);
}

TEST(LotteryScheduler, ListBackendUnlimitedWhenDisabled) {
  LotteryScheduler::Options opts;
  opts.backend = RunQueueBackend::kList;
  opts.list_max_threads = 0;  // escape hatch for list-scaling benches
  LotteryScheduler sched(opts);
  for (int i = 0; i < 40; ++i) {
    sched.AddThread(static_cast<ThreadId>(i + 1), SimTime::Zero());
  }
  sched.OnReady(3, SimTime::Zero());
  EXPECT_EQ(sched.PickNext(SimTime::Zero()), 3u);
}

TEST(LotteryScheduler, ListBackendUpgradesToTreeUnderFlag) {
  obs::Registry metrics;
  LotteryScheduler::Options opts;
  opts.backend = RunQueueBackend::kList;
  opts.list_max_threads = 8;
  opts.list_upgrade_to_tree = true;
  opts.metrics = &metrics;
  LotteryScheduler sched(opts);
  for (int i = 0; i < 8; ++i) {
    const ThreadId id = static_cast<ThreadId>(i + 1);
    sched.AddThread(id, SimTime::Zero());
    sched.OnReady(id, SimTime::Zero());
  }
  EXPECT_EQ(sched.backend(), RunQueueBackend::kList);
  sched.AddThread(9, SimTime::Zero());  // crosses the limit: upgrades
  sched.OnReady(9, SimTime::Zero());
  EXPECT_EQ(sched.backend(), RunQueueBackend::kTree);
  EXPECT_EQ(metrics.FindCounter("lottery.list_upgrades")->value(),
            obs::kObsEnabled ? 1u : 0u);
  // All queued threads migrated: every one is dispatchable and proportions
  // still follow funding (equal self-funding here -> everyone wins).
  std::map<ThreadId, int> wins;
  for (int i = 0; i < 900; ++i) {
    const ThreadId winner = sched.PickNext(SimTime::Zero());
    ASSERT_NE(winner, kInvalidThreadId);
    ++wins[winner];
    sched.OnReady(winner, SimTime::Zero());
  }
  EXPECT_EQ(wins.size(), 9u);
}

TEST(LotteryScheduler, AliasBackendProportionsFollowFunding) {
  obs::Registry metrics;
  LotteryScheduler::Options opts;
  opts.backend = RunQueueBackend::kAlias;
  opts.seed = 777;
  opts.metrics = &metrics;
  LotteryScheduler sched(opts);
  sched.AddThread(1, SimTime::Zero());
  sched.AddThread(2, SimTime::Zero());
  sched.FundThread(1, sched.table().base(), 300);
  sched.FundThread(2, sched.table().base(), 100);
  int first = 0;
  constexpr int kRounds = 8000;
  for (int i = 0; i < kRounds; ++i) {
    sched.OnReady(1, SimTime::Zero());
    sched.OnReady(2, SimTime::Zero());
    if (sched.PickNext(SimTime::Zero()) == 1u) {
      ++first;
    }
  }
  EXPECT_NEAR(static_cast<double>(first) / kRounds, 0.75, 0.03);
  // The steady phase must actually be served by the alias table.
  EXPECT_GT(metrics.FindCounter("alias.table_draws")->value(),
            obs::kObsEnabled ? uint64_t{kRounds} / 2 : 0u);
  EXPECT_GT(sched.alias_queue().rebuilds(), 0u);
}

}  // namespace
}  // namespace lottery
