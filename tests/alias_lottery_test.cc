// AliasLottery: Walker alias-table backend — table lifecycle (stability
// threshold, invalidation, hysteresis under churn), draw exactness vs
// weights, the integer construction's edge cases, and the overflow guard
// that keeps the tree serving when n*total would exceed the RNG range.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/core/alias_lottery.h"
#include "src/util/fastrand.h"
#include "src/util/stats.h"

namespace lottery {
namespace {

AliasLottery::Options FastRebuild() {
  AliasLottery::Options opts;
  opts.min_stable_draws = 1;
  opts.rebuild_cost_divisor = 1000000;  // threshold stays at the floor
  return opts;
}

TEST(AliasLottery, EmptyDrawsNothing) {
  AliasLottery alias;
  FastRand rng(1);
  EXPECT_FALSE(alias.Draw(rng).has_value());
  EXPECT_TRUE(alias.empty());
  EXPECT_EQ(alias.total(), 0u);
}

TEST(AliasLottery, TableFormsAfterStableDraws) {
  AliasLottery::Options opts;
  opts.min_stable_draws = 8;
  opts.rebuild_cost_divisor = 8;
  AliasLottery alias(opts);
  alias.Add(10);
  alias.Add(20);
  FastRand rng(7);
  for (int i = 0; i < 7; ++i) {
    EXPECT_TRUE(alias.Draw(rng).has_value());
    EXPECT_FALSE(alias.table_valid()) << "draw " << i;
  }
  // The 8th mutation-free draw crosses the threshold and is served O(1).
  bool used_table = false;
  EXPECT_TRUE(alias.Draw(rng, nullptr, &used_table).has_value());
  EXPECT_TRUE(used_table);
  EXPECT_TRUE(alias.table_valid());
  EXPECT_EQ(alias.rebuilds(), 1u);
  EXPECT_EQ(alias.tree_draws(), 7u);
  EXPECT_EQ(alias.table_draws(), 1u);
  EXPECT_EQ(alias.draw_depth(), 1u);
}

TEST(AliasLottery, MutationInvalidatesTable) {
  AliasLottery alias(FastRebuild());
  const size_t a = alias.Add(10);
  alias.Add(20);
  FastRand rng(7);
  alias.Draw(rng);
  ASSERT_TRUE(alias.table_valid());
  alias.SetWeight(a, 11);
  EXPECT_FALSE(alias.table_valid());
  // A same-value write is a no-op and must keep the table.
  alias.Draw(rng);
  ASSERT_TRUE(alias.table_valid());
  alias.SetWeight(a, 11);
  EXPECT_TRUE(alias.table_valid());
}

TEST(AliasLottery, ChurnNeverRebuilds) {
  // Hysteresis: a mutation per draw keeps the stability counter at zero,
  // so the backend degenerates to the tree with no rebuild storms.
  AliasLottery::Options opts;
  opts.min_stable_draws = 2;
  AliasLottery alias(opts);
  const size_t a = alias.Add(10);
  alias.Add(20);
  FastRand rng(13);
  for (int i = 0; i < 200; ++i) {
    alias.SetWeight(a, static_cast<uint64_t>(10 + (i % 5)));
    ASSERT_TRUE(alias.Draw(rng).has_value());
  }
  EXPECT_EQ(alias.rebuilds(), 0u);
  EXPECT_EQ(alias.table_draws(), 0u);
  EXPECT_EQ(alias.tree_draws(), 200u);
}

TEST(AliasLottery, RebuildThresholdScalesWithPopulation) {
  AliasLottery::Options opts;
  opts.min_stable_draws = 8;
  opts.rebuild_cost_divisor = 8;
  AliasLottery alias(opts);
  for (int i = 0; i < 1000; ++i) {
    alias.Add(static_cast<uint64_t>(1 + i % 7));
  }
  FastRand rng(99);
  // Threshold is max(8, 1000/8) = 125 stable draws.
  for (int i = 0; i < 124; ++i) {
    alias.Draw(rng);
  }
  EXPECT_FALSE(alias.table_valid());
  alias.Draw(rng);
  EXPECT_TRUE(alias.table_valid());
  EXPECT_EQ(alias.rebuilds(), 1u);
}

TEST(AliasLottery, TableDistributionMatchesWeights) {
  AliasLottery alias(FastRebuild());
  const size_t a = alias.Add(10);
  const size_t b = alias.Add(2);
  const size_t c = alias.Add(5);
  const size_t d = alias.Add(1);
  const size_t e = alias.Add(2);
  FastRand rng(31337);
  std::map<size_t, int64_t> wins;
  constexpr int kDraws = 200000;
  for (int i = 0; i < kDraws; ++i) {
    ++wins[alias.Draw(rng).value()];
  }
  // All but the first draw came from the table.
  EXPECT_GE(alias.table_draws(), static_cast<uint64_t>(kDraws - 1));
  const std::vector<int64_t> observed = {wins[a], wins[b], wins[c], wins[d],
                                         wins[e]};
  const std::vector<double> expected = {kDraws * 10 / 20.0, kDraws * 2 / 20.0,
                                        kDraws * 5 / 20.0, kDraws * 1 / 20.0,
                                        kDraws * 2 / 20.0};
  EXPECT_LT(ChiSquareStatistic(observed, expected),
            ChiSquareCritical(4, 0.001));
}

TEST(AliasLottery, ZeroWeightSlotNeverWinsFromTable) {
  AliasLottery alias(FastRebuild());
  alias.Add(0);
  const size_t b = alias.Add(5);
  alias.Add(0);
  FastRand rng(2);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_EQ(alias.Draw(rng).value(), b);
  }
  EXPECT_TRUE(alias.table_valid());
}

TEST(AliasLottery, SingleEntryAndUniformEntriesBuildExactTables) {
  // Degenerate Vose inputs: one entry (everything self-aliased) and all
  // residuals exactly equal to the column capacity.
  AliasLottery one(FastRebuild());
  const size_t only = one.Add(42);
  FastRand rng(5);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(one.Draw(rng).value(), only);
  }
  EXPECT_TRUE(one.table_valid());

  AliasLottery uniform(FastRebuild());
  std::vector<size_t> slots;
  for (int i = 0; i < 8; ++i) {
    slots.push_back(uniform.Add(3));
  }
  std::map<size_t, int> wins;
  for (int i = 0; i < 80000; ++i) {
    ++wins[uniform.Draw(rng).value()];
  }
  for (size_t slot : slots) {
    EXPECT_NEAR(wins[slot] / 80000.0, 1.0 / 8.0, 0.01);
  }
}

TEST(AliasLottery, RemoveRecyclesSlotsLikeTree) {
  AliasLottery alias(FastRebuild());
  const size_t a = alias.Add(1);
  const size_t b = alias.Add(2);
  alias.Remove(a);
  const size_t c = alias.Add(3);
  EXPECT_EQ(c, a);  // LIFO recycle, same contract as TreeLottery
  EXPECT_EQ(alias.Weight(b), 2u);
  EXPECT_EQ(alias.total(), 5u);
  EXPECT_EQ(alias.size(), 2u);
}

TEST(AliasLottery, OverflowGuardKeepsTreeServing) {
  // n * total would exceed the RNG's 62-bit draw range: the rebuild must
  // refuse and every draw keeps coming from the tree, still correctly
  // weighted.
  AliasLottery alias(FastRebuild());
  // total = 4*big = 2^61 is fine for the tree's NextBelow64, but
  // n*total = 2^62 exceeds the (2^31-2)^2 draw range.
  const uint64_t big = uint64_t{1} << 59;
  const size_t a = alias.Add(big);
  const size_t b = alias.Add(big * 3);
  FastRand rng(11);
  int64_t b_wins = 0;
  constexpr int kDraws = 20000;
  for (int i = 0; i < kDraws; ++i) {
    if (alias.Draw(rng).value() == b) {
      ++b_wins;
    }
  }
  EXPECT_FALSE(alias.table_valid());
  EXPECT_EQ(alias.rebuilds(), 0u);
  EXPECT_EQ(alias.table_draws(), 0u);
  EXPECT_NEAR(static_cast<double>(b_wins) / kDraws, 0.75, 0.02);
  (void)a;
}

TEST(AliasLottery, StatsSurviveRepeatedRebuildCycles) {
  AliasLottery alias(FastRebuild());
  const size_t a = alias.Add(7);
  alias.Add(9);
  FastRand rng(21);
  for (int cycle = 0; cycle < 10; ++cycle) {
    alias.SetWeight(a, static_cast<uint64_t>(7 + cycle));
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(alias.Draw(rng).has_value());
    }
    EXPECT_TRUE(alias.table_valid());
  }
  EXPECT_EQ(alias.rebuilds(), 10u);
}

}  // namespace
}  // namespace lottery
