#include "src/util/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace lottery {
namespace {

TEST(RunningStat, EmptyIsZero) {
  RunningStat s;
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.cv(), 0.0);
}

TEST(RunningStat, SingleValue) {
  RunningStat s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 5.0);
  EXPECT_DOUBLE_EQ(s.max(), 5.0);
}

TEST(RunningStat, KnownMoments) {
  RunningStat s;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic population-variance example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_NEAR(s.sample_variance(), 32.0 / 7.0, 1e-12);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.cv(), 0.4);
}

TEST(RunningStat, MergeMatchesSequential) {
  RunningStat all, a, b;
  for (int i = 0; i < 100; ++i) {
    const double x = std::sin(i) * 10.0;
    all.Add(x);
    (i % 2 == 0 ? a : b).Add(x);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStat, MergeWithEmptySides) {
  RunningStat a, b;
  a.Add(1.0);
  a.Add(3.0);
  RunningStat empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 2);
  b.Merge(a);
  EXPECT_EQ(b.count(), 2);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(RunningStat, ResetClearsEverything) {
  RunningStat s;
  s.Add(4.0);
  s.Reset();
  EXPECT_EQ(s.count(), 0);
  EXPECT_DOUBLE_EQ(s.sum(), 0.0);
}

TEST(Histogram, RejectsEmptyRange) {
  EXPECT_THROW(Histogram(1.0, 1.0, 4), std::invalid_argument);
  EXPECT_THROW(Histogram(0.0, 1.0, 0), std::invalid_argument);
}

TEST(Histogram, BucketsAndEdges) {
  Histogram h(0.0, 10.0, 5);
  EXPECT_EQ(h.num_buckets(), 5u);
  EXPECT_DOUBLE_EQ(h.bucket_lo(0), 0.0);
  EXPECT_DOUBLE_EQ(h.bucket_hi(0), 2.0);
  EXPECT_DOUBLE_EQ(h.bucket_lo(4), 8.0);
  h.Add(0.0);   // bucket 0
  h.Add(1.99);  // bucket 0
  h.Add(2.0);   // bucket 1
  h.Add(9.99);  // bucket 4
  EXPECT_EQ(h.bucket_count(0), 2);
  EXPECT_EQ(h.bucket_count(1), 1);
  EXPECT_EQ(h.bucket_count(4), 1);
}

TEST(Histogram, UnderAndOverflow) {
  Histogram h(0.0, 1.0, 2);
  h.Add(-0.5);
  h.Add(1.0);
  h.Add(7.0);
  EXPECT_EQ(h.underflow(), 1);
  EXPECT_EQ(h.overflow(), 2);
  EXPECT_EQ(h.total(), 3);
}

TEST(Histogram, PercentileInterpolates) {
  Histogram h(0.0, 100.0, 100);
  for (int i = 0; i < 100; ++i) {
    h.Add(static_cast<double>(i) + 0.5);
  }
  EXPECT_NEAR(h.Percentile(0.5), 50.0, 1.5);
  EXPECT_NEAR(h.Percentile(0.9), 90.0, 1.5);
  EXPECT_NEAR(h.Percentile(0.0), 0.0, 1.5);
}

TEST(Histogram, StatTracksAllValuesIncludingOutOfRange) {
  Histogram h(0.0, 1.0, 2);
  h.Add(-1.0);
  h.Add(3.0);
  EXPECT_DOUBLE_EQ(h.stat().mean(), 1.0);
}

TEST(Histogram, AsciiHasOneLinePerBucket) {
  Histogram h(0.0, 4.0, 4);
  h.Add(1.0);
  const std::string art = h.ToAscii();
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 4);
}

TEST(BinomialStats, MatchesSectionTwoFormulas) {
  // Paper Section 2: n lotteries, win probability p: E = np,
  // Var = np(1-p), cv = sqrt((1-p)/np).
  const auto m = BinomialStats(100.0, 0.25);
  EXPECT_DOUBLE_EQ(m.mean, 25.0);
  EXPECT_DOUBLE_EQ(m.variance, 18.75);
  EXPECT_DOUBLE_EQ(m.stddev, std::sqrt(18.75));
  EXPECT_DOUBLE_EQ(m.cv, std::sqrt(0.75 / 25.0));
}

TEST(BinomialStats, CvShrinksWithSqrtN) {
  const auto small = BinomialStats(100.0, 0.5);
  const auto large = BinomialStats(10000.0, 0.5);
  EXPECT_NEAR(small.cv / large.cv, 10.0, 1e-9);
}

TEST(GeometricStats, MatchesSectionTwoFormulas) {
  // E[lotteries until first win] = 1/p, Var = (1-p)/p^2.
  const auto m = GeometricStats(0.2);
  EXPECT_DOUBLE_EQ(m.mean, 5.0);
  EXPECT_DOUBLE_EQ(m.variance, 0.8 / 0.04);
}

TEST(GeometricStats, ZeroProbabilityMeansInfiniteWait) {
  const auto m = GeometricStats(0.0);
  EXPECT_TRUE(std::isinf(m.mean));
}

TEST(ChiSquare, StatisticKnownValue) {
  // Observed {10, 20, 30}, expected {20, 20, 20}:
  // (100 + 0 + 100) / 20 = 10.
  EXPECT_DOUBLE_EQ(
      ChiSquareStatistic({10, 20, 30}, {20.0, 20.0, 20.0}), 10.0);
}

TEST(ChiSquare, StatisticRejectsBadInput) {
  EXPECT_THROW(ChiSquareStatistic({1}, {1.0, 2.0}), std::invalid_argument);
  EXPECT_THROW(ChiSquareStatistic({1}, {0.0}), std::invalid_argument);
}

TEST(ChiSquare, CriticalValuesNearTables) {
  // Standard table: chi2(df=10, alpha=0.05) = 18.307;
  // chi2(df=5, 0.01) = 15.086; chi2(df=30, 0.05) = 43.773.
  EXPECT_NEAR(ChiSquareCritical(10, 0.05), 18.307, 0.25);
  EXPECT_NEAR(ChiSquareCritical(5, 0.01), 15.086, 0.35);
  EXPECT_NEAR(ChiSquareCritical(30, 0.05), 43.773, 0.5);
}

TEST(ChiSquare, CriticalRejectsBadDf) {
  EXPECT_THROW(ChiSquareCritical(0, 0.05), std::invalid_argument);
}

TEST(KolmogorovSmirnov, PerfectlyUniformGridScoresLow) {
  // Midpoints of n equal buckets: the empirical CDF straddles the uniform
  // CDF symmetrically, so the statistic is exactly 1/(2n).
  std::vector<double> samples;
  const int n = 100;
  for (int i = 0; i < n; ++i) {
    samples.push_back((i + 0.5) / n);
  }
  EXPECT_NEAR(KsStatisticUniform(samples, 0.0, 1.0), 1.0 / (2.0 * n), 1e-12);
  EXPECT_LT(KsStatisticUniform(samples, 0.0, 1.0), KsCritical(n, 0.01));
}

TEST(KolmogorovSmirnov, BunchedSamplesScoreHigh) {
  // Everything in the first tenth of the range: D is nearly 0.9.
  std::vector<double> samples;
  for (int i = 0; i < 50; ++i) {
    samples.push_back(0.1 * (i + 0.5) / 50.0);
  }
  const double d = KsStatisticUniform(samples, 0.0, 1.0);
  EXPECT_GT(d, 0.85);
  EXPECT_GT(d, KsCritical(samples.size(), 0.01));
}

TEST(KolmogorovSmirnov, UnsortedInputAndCustomRange) {
  // Samples at 10/20/30 of [0,40]: the largest gap is the 1/4 between
  // F(10-) = 0 and the uniform CDF 0.25 (and symmetrically at 30).
  const std::vector<double> samples = {30.0, 10.0, 20.0};
  EXPECT_NEAR(KsStatisticUniform(samples, 0.0, 40.0), 0.25, 1e-12);
}

TEST(KolmogorovSmirnov, CriticalMatchesLargeSampleTable) {
  // c(0.01) = 1.6276, c(0.05) = 1.3581 (classic large-n table values).
  EXPECT_NEAR(KsCritical(100, 0.01), 1.6276 / 10.0, 1e-3);
  EXPECT_NEAR(KsCritical(400, 0.05), 1.3581 / 20.0, 1e-3);
  EXPECT_GT(KsCritical(10, 0.01), KsCritical(1000, 0.01));
}

TEST(KolmogorovSmirnov, RejectsBadInput) {
  EXPECT_THROW(KsStatisticUniform({}, 0.0, 1.0), std::invalid_argument);
  EXPECT_THROW(KsStatisticUniform({0.5}, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(KsCritical(0, 0.01), std::invalid_argument);
  EXPECT_THROW(KsCritical(10, 0.0), std::invalid_argument);
  EXPECT_THROW(KsCritical(10, 1.0), std::invalid_argument);
}

TEST(BinomialConfidence, WilsonIntervalBracketsTruthAndShrinks) {
  // 700 of 1000 at 99%: the interval must bracket 0.7 tightly.
  const ProportionInterval i1 = BinomialConfidence(700, 1000, 0.99);
  EXPECT_LT(i1.lo, 0.7);
  EXPECT_GT(i1.hi, 0.7);
  EXPECT_LT(i1.hi - i1.lo, 0.08);
  // Ten times the data: strictly narrower.
  const ProportionInterval i2 = BinomialConfidence(7000, 10000, 0.99);
  EXPECT_LT(i2.hi - i2.lo, i1.hi - i1.lo);
  // Wilson handles the boundary gracefully (no NaN, stays inside [0,1]).
  const ProportionInterval edge = BinomialConfidence(0, 20, 0.99);
  EXPECT_GE(edge.lo, 0.0);
  EXPECT_GT(edge.hi, 0.0);
  EXPECT_LT(edge.hi, 0.4);
}

TEST(BinomialConfidence, RejectsBadInput) {
  EXPECT_THROW(BinomialConfidence(5, 0, 0.99), std::invalid_argument);
  EXPECT_THROW(BinomialConfidence(-1, 10, 0.99), std::invalid_argument);
  EXPECT_THROW(BinomialConfidence(11, 10, 0.99), std::invalid_argument);
  EXPECT_THROW(BinomialConfidence(5, 10, 1.0), std::invalid_argument);
}

TEST(FitLine, ExactLine) {
  const auto fit = FitLine({1.0, 2.0, 3.0, 4.0}, {3.0, 5.0, 7.0, 9.0});
  EXPECT_NEAR(fit.slope, 2.0, 1e-12);
  EXPECT_NEAR(fit.intercept, 1.0, 1e-12);
  EXPECT_NEAR(fit.r2, 1.0, 1e-12);
}

TEST(FitLine, NoisyLineStillCloseAndR2Sane) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 * i + ((i % 2 == 0) ? 0.5 : -0.5));
  }
  const auto fit = FitLine(xs, ys);
  EXPECT_NEAR(fit.slope, 3.0, 0.01);
  EXPECT_GT(fit.r2, 0.999);
}

TEST(FitLine, RejectsDegenerateInput) {
  EXPECT_THROW(FitLine({1.0}, {1.0}), std::invalid_argument);
  EXPECT_THROW(FitLine({2.0, 2.0}, {1.0, 3.0}), std::invalid_argument);
  EXPECT_THROW(FitLine({1.0, 2.0}, {1.0}), std::invalid_argument);
}

}  // namespace
}  // namespace lottery
