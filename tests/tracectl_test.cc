// Tests for tracectl's analysis library (tools/tracectl/): the decision
// audit (ground-truth replay + chi-square), the drift table, event-by-event
// diff with first-divergence localization, and the record/convert pipeline
// driven through the same entry points the binary dispatches to.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/obs/etrace/event.h"
#include "src/obs/etrace/export.h"
#include "src/obs/etrace/trace_buffer.h"
#include "src/obs/registry.h"
#include "src/util/flags.h"
#include "tools/tracectl/tracectl.h"

namespace lottery {
namespace tracectl {
namespace {

using etrace::Event;
using etrace::EventType;
using etrace::TraceFile;

// Runs a tracectl subcommand exactly as the binary would: argv[0] is the
// program name (skipped by Flags), argv[1] the subcommand.
int RunArgs(std::vector<std::string> args) {
  std::vector<char*> argv;
  argv.push_back(const_cast<char*>("tracectl"));
  for (std::string& a : args) argv.push_back(a.data());
  return Run(static_cast<int>(argv.size()), argv.data());
}

std::string TempPath(const std::string& name) {
  return testing::TempDir() + "/" + name;
}

std::string Slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

Event Candidate(uint32_t tid, uint32_t index, uint64_t value) {
  Event e;
  e.type = static_cast<uint16_t>(EventType::kCandidate);
  e.a = tid;
  e.b = index;
  e.v1 = value;
  return e;
}

Event Decision(uint32_t winner, uint64_t drawn, uint64_t total,
               uint64_t winner_value, uint16_t flags = 0) {
  Event e;
  e.type = static_cast<uint16_t>(EventType::kDecision);
  e.a = winner;
  e.v1 = drawn;
  e.v2 = total;
  e.v3 = winner_value;
  e.flags = flags;
  return e;
}

// Synthetic traces let the audit logic be tested without a scheduler and
// regardless of whether obs hooks are compiled in.
TEST(AuditDecisions, ReplaysWinnersFromSnapshots) {
  TraceFile trace;
  // Candidates 3:2:1 (tids 1..3); drawn value 3 lands in tid 2's
  // [3, 5) range (first prefix sum strictly greater than 3).
  trace.events = {Candidate(1, 0, 3), Candidate(2, 1, 2), Candidate(3, 2, 1),
                  Decision(2, 3, 6, 2)};
  const DecisionAudit audit = AuditDecisions(trace);
  EXPECT_EQ(audit.decisions, 1u);
  EXPECT_EQ(audit.replay_checked, 1u);
  EXPECT_EQ(audit.replay_mismatches, 0u);
  EXPECT_EQ(audit.fallbacks, 0u);
}

TEST(AuditDecisions, FlagsWrongWinner) {
  TraceFile trace;
  trace.events = {Candidate(1, 0, 3), Candidate(2, 1, 2), Candidate(3, 2, 1),
                  Decision(/*winner=*/3, /*drawn=*/3, 6, 2)};
  const DecisionAudit audit = AuditDecisions(trace);
  EXPECT_EQ(audit.replay_checked, 1u);
  EXPECT_EQ(audit.replay_mismatches, 1u);
}

TEST(AuditDecisions, FallbackWinnerIsIndexedByV1) {
  TraceFile trace;
  trace.events = {
      Candidate(8, 0, 0), Candidate(9, 1, 0),
      Decision(/*winner=*/9, /*drawn=*/1, 0, 0, etrace::kDecisionFallback)};
  const DecisionAudit audit = AuditDecisions(trace);
  EXPECT_EQ(audit.fallbacks, 1u);
  EXPECT_EQ(audit.replay_mismatches, 0u);
}

TEST(AuditDecisions, ChiSquareUsesStationaryPhaseOnly) {
  // 60 decisions at total 6 (shares 3:2:1) in exact proportion, plus two
  // startup decisions at a different total that must be excluded.
  TraceFile trace;
  trace.events.push_back(Decision(1, 0, 3, 3));
  trace.events.push_back(Decision(1, 1, 3, 3));
  for (int i = 0; i < 30; ++i) trace.events.push_back(Decision(1, 0, 6, 3));
  for (int i = 0; i < 20; ++i) trace.events.push_back(Decision(2, 3, 6, 2));
  for (int i = 0; i < 10; ++i) trace.events.push_back(Decision(3, 5, 6, 1));
  const DecisionAudit audit = AuditDecisions(trace);
  EXPECT_EQ(audit.stationary_decisions, 60u);
  EXPECT_EQ(audit.stationary_total, 6u);
  EXPECT_EQ(audit.df, 2);
  EXPECT_NEAR(audit.chi_square, 0.0, 1e-9);  // perfectly proportional
  EXPECT_TRUE(audit.chi_ok);
}

TEST(DiffTraces, LocalizesFirstDivergence) {
  TraceFile a;
  a.version = 1;
  a.mask = etrace::kDefaultCategories;
  a.seed = 42;
  a.strings = {"", "t0"};
  a.events = {Candidate(1, 0, 3), Decision(1, 0, 3, 3)};
  TraceFile b = a;
  EXPECT_TRUE(DiffTraces(a, b).identical);

  b.events[1].v1 = 99;
  const DiffResult diff = DiffTraces(a, b);
  EXPECT_FALSE(diff.identical);
  EXPECT_EQ(diff.field, "events");
  EXPECT_EQ(diff.index, 1u);
  EXPECT_NE(diff.lhs, diff.rhs);

  TraceFile c = a;
  c.seed = 43;
  EXPECT_EQ(DiffTraces(a, c).field, "seed");

  TraceFile d = a;
  d.strings[1] = "t1";
  EXPECT_EQ(DiffTraces(a, d).field, "strings");
  EXPECT_EQ(DiffTraces(a, d).index, 1u);
}

TEST(RenderEvent, NamesTheTypeAndResolvesStrings) {
  TraceFile trace;
  trace.strings = {"", "worker"};
  Event e = Candidate(5, 0, 7);
  e.name = 1;
  const std::string line = RenderEvent(trace, e);
  EXPECT_NE(line.find("candidate"), std::string::npos);
  EXPECT_NE(line.find("worker"), std::string::npos);
}

// --- End-to-end through the CLI entry points -------------------------------

TEST(Cli, RecordIsDeterministicAndAuditsClean) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "no events with obs off";
  const std::string path_a = TempPath("tracectl_a.bin");
  const std::string path_b = TempPath("tracectl_b.bin");
  for (const std::string& path : {path_a, path_b}) {
    ASSERT_EQ(RunArgs({"record", "--out=" + path, "--seed=42",
                       "--tickets=3:2:1", "--seconds=60", "--snapshots"}),
              0);
  }
  // Same seed, same configuration: byte-identical files.
  const std::string bytes_a = Slurp(path_a);
  ASSERT_FALSE(bytes_a.empty());
  EXPECT_EQ(bytes_a, Slurp(path_b));
  EXPECT_EQ(RunArgs({"diff", path_a, path_b}), 0);

  const TraceFile trace = TraceFile::Load(path_a);
  const DecisionAudit audit = AuditDecisions(trace);
  EXPECT_GT(audit.decisions, 100u);
  EXPECT_EQ(audit.replay_checked, audit.decisions);
  EXPECT_EQ(audit.replay_mismatches, 0u);
  // 3:2:1 shares at alpha = 0.01 over the stationary phase.
  EXPECT_GE(audit.df, 2);
  EXPECT_TRUE(audit.chi_ok)
      << "chi^2 " << audit.chi_square << " >= " << audit.chi_critical;

  // Drift table: shares sum to ~1 and no thread drifts past 5 points.
  const std::vector<DriftRow> drift = ComputeDrift(trace);
  ASSERT_EQ(drift.size(), 3u);
  double cpu_total = 0.0;
  for (const DriftRow& row : drift) {
    cpu_total += row.cpu_share;
    EXPECT_LT(std::abs(row.drift), 0.05) << row.name;
  }
  EXPECT_NEAR(cpu_total, 1.0, 1e-6);

  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(Cli, ListAndTreeBackendsDivergeInTheEventStream) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "no events with obs off";
  const std::string path_list = TempPath("tracectl_list.bin");
  const std::string path_tree = TempPath("tracectl_tree.bin");
  ASSERT_EQ(RunArgs({"record", "--out=" + path_list, "--seed=42",
                     "--backend=list", "--seconds=30"}),
            0);
  ASSERT_EQ(RunArgs({"record", "--out=" + path_tree, "--seed=42",
                     "--backend=tree", "--seconds=30"}),
            0);
  const DiffResult diff =
      DiffTraces(TraceFile::Load(path_list), TraceFile::Load(path_tree));
  EXPECT_FALSE(diff.identical);
  // Header fields match (same seed/mask); the divergence is an event.
  EXPECT_EQ(diff.field, "events");
  // And the binary exit code mirrors it.
  EXPECT_EQ(RunArgs({"diff", path_list, path_tree}), 1);
  std::remove(path_list.c_str());
  std::remove(path_tree.c_str());
}

TEST(Cli, ConvertWritesChromeTraceJson) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "no events with obs off";
  const std::string bin = TempPath("tracectl_conv.bin");
  const std::string json_path = TempPath("tracectl_conv.json");
  ASSERT_EQ(RunArgs({"record", "--out=" + bin, "--seed=7", "--seconds=10"}),
            0);
  ASSERT_EQ(RunArgs({"convert", bin, "--out=" + json_path}), 0);
  const std::string json = Slurp(json_path);
  ASSERT_FALSE(json.empty());
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"thread_name\""), std::string::npos);
  // Conversion is a pure function of the bytes (WriteFile adds a newline).
  EXPECT_EQ(json, ToChromeTraceJson(TraceFile::Load(bin)) + "\n");
  std::remove(bin.c_str());
  std::remove(json_path.c_str());
}

TEST(Cli, UsageAndUnknownCommandsExitTwo) {
  EXPECT_EQ(RunArgs({}), 2);
  EXPECT_EQ(RunArgs({"--help"}), 0);
  EXPECT_EQ(RunArgs({"no-such-command"}), 2);
  EXPECT_EQ(RunArgs({"record"}), 2);  // --out is required
}

}  // namespace
}  // namespace tracectl
}  // namespace lottery
