// Differential test: the timing-wheel EventQueue vs the preserved binary-heap
// ReferenceEventQueue.
//
// Both queues are driven through identical randomized traces of Schedule /
// Cancel / RunUntil operations (including handlers that re-schedule and
// cancel from inside the run loop), and must execute the same events in the
// same order at the same times. The generator deliberately stresses the
// wheel's distinct regimes: sub-tick deltas (due-heap ties), slot-boundary
// deltas, multi-level cascades, and far-future times beyond the 2^32-tick
// horizon (overflow heap).

#include <cstdint>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/sim/event_queue.h"
#include "src/sim/event_queue_ref.h"
#include "src/util/fastrand.h"

namespace lottery {
namespace {

SimTime At(int64_t ns) { return SimTime::FromNanos(ns); }

// Time deltas spanning every wheel regime. With 2^16 ns ticks and 8-bit
// levels: <65536 ns stays in the current tick (due-heap ties), ~16M ns
// crosses level-0 slots, larger values climb levels, and 2^48+ ns lands
// beyond the wheel horizon in the overflow heap.
int64_t RandomDelta(FastRand& rng) {
  switch (rng.NextBelow(8)) {
    case 0:
      return static_cast<int64_t>(rng.NextBelow(4));  // dense ties
    case 1:
      return static_cast<int64_t>(rng.NextBelow(1u << 16));  // same tick
    case 2:
      return static_cast<int64_t>(rng.NextBelow(1u << 24));  // level 0/1
    case 3:
      // NextBelow64: 2^31 exceeds the 31-bit generator's single-draw range.
      return static_cast<int64_t>(rng.NextBelow64(uint64_t{1} << 31));
    case 4:
      return static_cast<int64_t>(rng.NextBelow64(uint64_t{1} << 44));  // 3
    case 5:
      return (int64_t{1} << 48) +
             static_cast<int64_t>(rng.NextBelow64(uint64_t{1} << 49));
    default:
      return static_cast<int64_t>(rng.NextBelow(1u << 20));
  }
}

TEST(EventQueueDiff, RandomizedTracesMatchReferenceHeap) {
  for (const uint32_t seed : {1u, 7u, 42u, 1234u, 987654321u}) {
    EventQueue wheel;
    ReferenceEventQueue heap;
    std::vector<std::pair<int, int64_t>> log_a;
    std::vector<std::pair<int, int64_t>> log_b;
    std::vector<EventQueue::EventId> ids_a;
    std::vector<ReferenceEventQueue::EventId> ids_b;

    // One generator drives both queues with identical operations; the two
    // id vectors stay index-aligned because every Schedule is mirrored.
    FastRand rng(seed);
    int64_t now = 0;
    int label = 0;

    for (int step = 0; step < 2000; ++step) {
      const uint32_t op = rng.NextBelow(100);
      if (op < 55) {
        const SimTime when = At(now + RandomDelta(rng));
        const int this_label = label++;
        ids_a.push_back(wheel.Schedule(when, [&log_a, this_label](SimTime t) {
          log_a.emplace_back(this_label, t.nanos());
        }));
        ids_b.push_back(heap.Schedule(when, [&log_b, this_label](SimTime t) {
          log_b.emplace_back(this_label, t.nanos());
        }));
      } else if (op < 70 && !ids_a.empty()) {
        // Cancel a random id — often one that already ran (stale no-op).
        const size_t victim =
            rng.NextBelow(static_cast<uint32_t>(ids_a.size()));
        wheel.Cancel(ids_a[victim]);
        heap.Cancel(ids_b[victim]);
      } else if (op < 85) {
        ASSERT_EQ(wheel.empty(), heap.empty()) << "seed " << seed;
        if (!wheel.empty()) {
          ASSERT_EQ(wheel.next_time(), heap.next_time()) << "seed " << seed;
          now = wheel.next_time().nanos();
        }
      } else {
        const SimTime limit = At(now + RandomDelta(rng) * 4);
        const size_t ran_a = wheel.RunUntil(limit);
        const size_t ran_b = heap.RunUntil(limit);
        ASSERT_EQ(ran_a, ran_b) << "seed " << seed << " step " << step;
        now = limit.nanos();
      }
    }

    // Drain everything left and compare the complete execution logs.
    wheel.RunUntil(At(INT64_MAX));
    heap.RunUntil(At(INT64_MAX));
    EXPECT_TRUE(wheel.empty());
    ASSERT_EQ(log_a.size(), log_b.size()) << "seed " << seed;
    for (size_t i = 0; i < log_a.size(); ++i) {
      ASSERT_EQ(log_a[i], log_b[i]) << "seed " << seed << " pos " << i;
    }
  }
}

// Handlers that schedule and cancel from inside RunUntil, exercising node
// reuse (the wheel recycles an event record before invoking its handler).
template <typename Queue>
struct ChainRig {
  Queue queue;
  FastRand rng;
  std::vector<uint64_t> pending;
  std::vector<std::pair<int, int64_t>> log;
  int label = 0;

  explicit ChainRig(uint32_t seed) : rng(seed) {}

  // Each firing logs itself, may spawn up to two successors, and sometimes
  // cancels a pending (or stale) sibling id.
  void Fire(int my_label, SimTime t) {
    log.emplace_back(my_label, t.nanos());
    const uint32_t spawn = rng.NextBelow(3);
    for (uint32_t i = 0; i < spawn; ++i) {
      const int64_t delta = RandomDelta(rng);
      const int child = label++;
      pending.push_back(
          queue.Schedule(t + SimDuration::Nanos(delta),
                         [this, child](SimTime ct) { Fire(child, ct); }));
    }
    if (!pending.empty() && rng.NextBelow(4) == 0) {
      const size_t victim =
          rng.NextBelow(static_cast<uint32_t>(pending.size()));
      queue.Cancel(pending[victim]);
    }
  }

  void Drive() {
    for (int i = 0; i < 50; ++i) {
      const int root = label++;
      pending.push_back(queue.Schedule(
          At(RandomDelta(rng)), [this, root](SimTime t) { Fire(root, t); }));
    }
    queue.RunUntil(At(int64_t{1} << 52));
  }
};

TEST(EventQueueDiff, ReentrantHandlersMatchReferenceHeap) {
  for (const uint32_t seed : {3u, 99u, 2026u}) {
    ChainRig<EventQueue> wheel(seed);
    ChainRig<ReferenceEventQueue> heap(seed);
    wheel.Drive();
    heap.Drive();

    EXPECT_GT(wheel.log.size(), 50u) << "chains never propagated";
    ASSERT_EQ(wheel.log.size(), heap.log.size()) << "seed " << seed;
    for (size_t i = 0; i < wheel.log.size(); ++i) {
      ASSERT_EQ(wheel.log[i], heap.log[i]) << "seed " << seed << " pos " << i;
    }
  }
}

// The Cancel-id-leak regression: cancelling ids after their events ran (or
// repeatedly) must not grow any internal structure. The old heap queue kept
// every such id in a tombstone set forever; the wheel rejects stale
// generations in O(1) and reuses arena slots.
TEST(EventQueueDiff, StaleCancelsDoNotAccumulateState) {
  EventQueue q;
  std::vector<EventQueue::EventId> ids;
  for (int64_t round = 0; round < 1000; ++round) {
    ids.clear();
    for (int64_t i = 0; i < 8; ++i) {
      ids.push_back(q.Schedule(At(round * 100 + i), [](SimTime) {}));
    }
    q.RunUntil(At(round * 100 + 100));
    // All already ran: every Cancel is a stale no-op.
    for (const auto id : ids) {
      q.Cancel(id);
      q.Cancel(id);
    }
  }
  EXPECT_TRUE(q.empty());
  EXPECT_EQ(q.pending(), 0u);
  // 8000 events flowed through, but the arena only ever held one round's
  // worth of records: slots were recycled, not leaked.
  EXPECT_LE(q.capacity(), 64u);
}

// Far-future events overflow the wheel horizon and must still fire in exact
// order once the cursor jumps to them, interleaved with near events.
TEST(EventQueueDiff, OverflowHorizonOrdering) {
  EventQueue q;
  std::vector<int> order;
  const int64_t far = int64_t{1} << 50;  // beyond the 2^48 ns wheel span
  q.Schedule(At(far + 5), [&](SimTime) { order.push_back(4); });
  q.Schedule(At(10), [&](SimTime) { order.push_back(1); });
  q.Schedule(At(far), [&](SimTime) { order.push_back(3); });
  q.Schedule(At(far), [&](SimTime) { order.push_back(5); });  // loses FIFO tie
  q.Schedule(At(20), [&](SimTime) { order.push_back(2); });
  EXPECT_EQ(q.next_time(), At(10));
  q.RunUntil(At(far + 100));
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 5, 4}));
}

}  // namespace
}  // namespace lottery
