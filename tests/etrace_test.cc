// Unit tests for the structured event trace (src/obs/etrace/): the bounded
// ring with explicit overwrite accounting, string interning, category
// gating, binary round-trips, and — the load-bearing one — a ground-truth
// replay of the lottery decision stream against the per-decision candidate
// snapshots, for both run-queue backends.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <stdexcept>
#include <string>
#include <vector>

#include "src/core/lottery_scheduler.h"
#include "src/obs/etrace/event.h"
#include "src/obs/etrace/export.h"
#include "src/obs/etrace/trace_buffer.h"
#include "src/obs/registry.h"
#include "src/sim/kernel.h"
#include "src/util/sim_time.h"
#include "src/workloads/compute.h"

namespace lottery {
namespace etrace {
namespace {

Event MakeEvent(uint16_t type, uint32_t a, int64_t t_ns) {
  Event e;
  e.type = type;
  e.a = a;
  e.t_ns = t_ns;
  return e;
}

TEST(TraceBuffer, RingOverwritesOldestAndCountsEveryLoss) {
  TraceBuffer trace(/*capacity=*/4, kAllCategories);
  for (uint32_t i = 0; i < 6; ++i) {
    trace.Append(MakeEvent(/*type=*/1, /*a=*/i, /*t_ns=*/i));
  }
  if (!obs::kObsEnabled) {
    EXPECT_EQ(trace.size(), 0u);
    EXPECT_EQ(trace.overwritten(), 0u);
    return;
  }
  EXPECT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace.capacity(), 4u);
  EXPECT_EQ(trace.overwritten(), 2u);
  // Oldest retained is event 2; chronological order is preserved.
  for (size_t i = 0; i < trace.size(); ++i) {
    EXPECT_EQ(trace.At(i).a, static_cast<uint32_t>(i + 2));
  }
  trace.Clear();
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_EQ(trace.overwritten(), 0u);
}

TEST(TraceBuffer, InternIsStableAndIdZeroIsReserved) {
  TraceBuffer trace(/*capacity=*/8);
  const uint32_t alice = trace.Intern("alice");
  const uint32_t bob = trace.Intern("bob");
  EXPECT_NE(alice, 0u);
  EXPECT_NE(bob, 0u);
  EXPECT_NE(alice, bob);
  EXPECT_EQ(trace.Intern("alice"), alice);
  EXPECT_EQ(trace.Name(alice), "alice");
  EXPECT_EQ(trace.Name(bob), "bob");
  EXPECT_EQ(trace.Name(0), "");
  EXPECT_EQ(trace.Name(9999), "");
}

TEST(TraceBuffer, OnGatesOnNullAndMask) {
  EXPECT_FALSE(On(nullptr, kCatSched));
  TraceBuffer trace(/*capacity=*/8, kCatSched | kCatLottery);
  EXPECT_EQ(On(&trace, kCatSched), obs::kObsEnabled);
  EXPECT_EQ(On(&trace, kCatLottery), obs::kObsEnabled);
  EXPECT_FALSE(On(&trace, kCatRpc));
  trace.set_mask(0);
  EXPECT_FALSE(On(&trace, kCatSched));
  SetNow(nullptr, 123);  // must be null-safe
  SetNow(&trace, 123);
  if (obs::kObsEnabled) {
    EXPECT_EQ(trace.now(), 123);
  }
}

TEST(TraceBuffer, SpanIdsAreMonotonicAndNeverZero) {
  TraceBuffer trace(/*capacity=*/8);
  uint64_t last = 0;
  for (int i = 0; i < 5; ++i) {
    const uint64_t span = trace.NextSpanId();
    EXPECT_GT(span, last);
    last = span;
  }
}

TEST(TraceBuffer, BinaryRoundTripPreservesEverything) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "Append folds away with obs off";
  TraceBuffer trace(/*capacity=*/8, kDefaultCategories);
  trace.set_seed(987654321);
  const uint32_t name = trace.Intern("worker");
  Event e = MakeEvent(static_cast<uint16_t>(EventType::kSlice), 7, 1000);
  e.b = 1;
  e.name = name;
  e.v1 = 11;
  e.v2 = 22;
  e.v3 = 33;
  e.flags = kSliceYield;
  trace.Append(e);
  trace.Append(MakeEvent(static_cast<uint16_t>(EventType::kWake), 9, 2000));

  const TraceFile loaded = TraceFile::Parse(trace.Serialize());
  EXPECT_EQ(loaded.mask, kDefaultCategories);
  EXPECT_EQ(loaded.seed, 987654321u);
  EXPECT_EQ(loaded.overwritten, 0u);
  ASSERT_EQ(loaded.events.size(), 2u);
  const Event& r = loaded.events[0];
  EXPECT_EQ(r.t_ns, 1000);
  EXPECT_EQ(r.v1, 11u);
  EXPECT_EQ(r.v2, 22u);
  EXPECT_EQ(r.v3, 33u);
  EXPECT_EQ(r.a, 7u);
  EXPECT_EQ(r.b, 1u);
  EXPECT_EQ(r.name, name);
  EXPECT_EQ(r.type, static_cast<uint16_t>(EventType::kSlice));
  EXPECT_EQ(r.flags, kSliceYield);
  EXPECT_EQ(loaded.Name(loaded.events[0].name), "worker");
  EXPECT_EQ(loaded.events[1].a, 9u);

  // Serialization is a pure function of contents.
  EXPECT_EQ(trace.Serialize(), trace.Serialize());
}

TEST(TraceFile, ParseRejectsGarbageAndTruncation) {
  EXPECT_THROW(TraceFile::Parse(""), std::runtime_error);
  EXPECT_THROW(TraceFile::Parse("not a trace"), std::runtime_error);
  TraceBuffer trace(/*capacity=*/4);
  trace.Append(MakeEvent(1, 1, 1));
  const std::string bytes = trace.Serialize();
  EXPECT_THROW(TraceFile::Parse(bytes.substr(0, bytes.size() / 2)),
               std::runtime_error);
  EXPECT_THROW(TraceFile::Load("/nonexistent/path/trace.bin"),
               std::runtime_error);
}

TEST(Event, EveryTypeHasANameAndACategory) {
  for (uint16_t t = 1; t < kNumEventTypes; ++t) {
    EXPECT_STRNE(EventTypeName(t), "unknown") << "type " << t;
    EXPECT_NE(CategoryOf(static_cast<EventType>(t)), 0u) << "type " << t;
  }
  EXPECT_STREQ(EventTypeName(kNumEventTypes), "unknown");
}

// --- Decision-stream ground truth -----------------------------------------
//
// Runs a seeded 3-thread compute workload with candidate snapshots enabled
// and re-derives every lottery winner from the recorded (drawn value,
// candidate snapshot) pairs: the winner must be the first candidate whose
// running ticket sum exceeds the drawn value, or candidates[v1] for a
// zero-funding fallback. This is the paper's Section 2 selection rule and
// the one contract both run-queue backends must share.

struct Replay {
  uint64_t decisions = 0;
  uint64_t checked = 0;
  uint64_t mismatches = 0;
};

Replay ReplayDecisions(const TraceBuffer& trace) {
  Replay out;
  std::vector<Event> candidates;
  for (const Event& e : trace.Events()) {
    if (e.type == static_cast<uint16_t>(EventType::kCandidate)) {
      candidates.push_back(e);
      continue;
    }
    if (e.type != static_cast<uint16_t>(EventType::kDecision)) continue;
    ++out.decisions;
    if (!candidates.empty()) {
      ++out.checked;
      uint32_t derived = kInvalidThreadId;
      if ((e.flags & kDecisionFallback) != 0) {
        if (e.v1 < candidates.size()) derived = candidates[e.v1].a;
      } else {
        uint64_t sum = 0;
        uint64_t total = 0;
        for (const Event& candidate : candidates) {
          total += candidate.v1;
          if (sum <= e.v1 && sum + candidate.v1 > e.v1) {
            derived = candidate.a;
          }
          sum += candidate.v1;
        }
        // The recorded total must agree with the snapshot's sum.
        EXPECT_EQ(total, e.v2);
      }
      if (derived != e.a) ++out.mismatches;
    }
    candidates.clear();
  }
  return out;
}

Replay RunAndReplay(RunQueueBackend backend) {
  TraceBuffer trace(/*capacity=*/1u << 18,
                    kCatSched | kCatLottery | kCatLotterySnapshot);
  obs::Registry metrics;
  LotteryScheduler::Options sopts;
  sopts.seed = 20260806;
  sopts.backend = backend;
  sopts.metrics = &metrics;
  sopts.trace = &trace;
  LotteryScheduler sched(sopts);
  Kernel::Options kopts;
  kopts.metrics = &metrics;
  kopts.trace = &trace;
  Kernel kernel(&sched, kopts);
  const int64_t funding[] = {300, 200, 100};
  for (int i = 0; i < 3; ++i) {
    const ThreadId tid = kernel.Spawn(
        "t" + std::to_string(i), std::make_unique<ComputeTask>());
    sched.FundThread(tid, sched.table().base(), funding[i]);
  }
  kernel.RunFor(SimDuration::Seconds(200));
  EXPECT_EQ(trace.overwritten(), 0u) << "ring sized too small for the test";
  return ReplayDecisions(trace);
}

TEST(DecisionReplay, ListBackendWinnersMatchSnapshots) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "no events with obs off";
  const Replay replay = RunAndReplay(RunQueueBackend::kList);
  EXPECT_GT(replay.decisions, 1000u);
  EXPECT_EQ(replay.checked, replay.decisions);
  EXPECT_EQ(replay.mismatches, 0u);
}

TEST(DecisionReplay, TreeBackendWinnersMatchSnapshots) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "no events with obs off";
  const Replay replay = RunAndReplay(RunQueueBackend::kTree);
  EXPECT_GT(replay.decisions, 1000u);
  EXPECT_EQ(replay.checked, replay.decisions);
  EXPECT_EQ(replay.mismatches, 0u);
}

TEST(DecisionReplay, SameSeedTracesAreByteIdentical) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "no events with obs off";
  auto record = [] {
    TraceBuffer trace(/*capacity=*/1u << 16, kDefaultCategories);
    obs::Registry metrics;
    LotteryScheduler::Options sopts;
    sopts.seed = 42;
    sopts.metrics = &metrics;
    sopts.trace = &trace;
    LotteryScheduler sched(sopts);
    Kernel::Options kopts;
    kopts.metrics = &metrics;
    kopts.trace = &trace;
    Kernel kernel(&sched, kopts);
    for (int i = 0; i < 3; ++i) {
      const ThreadId tid = kernel.Spawn(
          "t" + std::to_string(i), std::make_unique<ComputeTask>());
      sched.FundThread(tid, sched.table().base(), 100 * (i + 1));
    }
    kernel.RunFor(SimDuration::Seconds(30));
    return trace.Serialize();
  };
  EXPECT_EQ(record(), record());
}

TEST(Export, ChromeJsonIsDeterministicAndNonTrivial) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "no events with obs off";
  TraceBuffer trace(/*capacity=*/64, kAllCategories);
  const uint32_t name = trace.Intern("t0");
  Event tn = MakeEvent(static_cast<uint16_t>(EventType::kThreadName), 1, 0);
  tn.name = name;
  trace.Append(tn);
  Event slice = MakeEvent(static_cast<uint16_t>(EventType::kSlice), 1, 1000);
  slice.v1 = 500;
  trace.Append(slice);
  const TraceFile file = TraceFile::Parse(trace.Serialize());
  const std::string json = ToChromeTraceJson(file);
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
  EXPECT_EQ(json, ToChromeTraceJson(file));
}

// Late attach via SetTrace: names interned while detached still resolve,
// the kernel re-emits kThreadName for every live thread, and the RNG
// sequence (and so the schedule) is unaffected by toggling.
TEST(SetTrace, LateAttachReEmitsNamesAndKeepsScheduleIdentical) {
  if (!obs::kObsEnabled) GTEST_SKIP() << "no events with obs off";
  auto run = [](bool toggle) {
    TraceBuffer trace(/*capacity=*/1u << 16, kDefaultCategories);
    obs::Registry metrics;
    LotteryScheduler::Options sopts;
    sopts.seed = 7;
    sopts.metrics = &metrics;
    LotteryScheduler sched(sopts);
    Kernel::Options kopts;
    kopts.metrics = &metrics;
    Kernel kernel(&sched, kopts);
    for (int i = 0; i < 3; ++i) {
      const ThreadId tid = kernel.Spawn(
          "late" + std::to_string(i), std::make_unique<ComputeTask>());
      sched.FundThread(tid, sched.table().base(), 100);
    }
    kernel.RunFor(SimDuration::Seconds(5));
    if (toggle) {
      kernel.SetTrace(&trace);
      sched.SetTrace(&trace);
    }
    kernel.RunFor(SimDuration::Seconds(5));
    uint64_t names = 0;
    for (const auto& e : trace.Events()) {
      if (e.type == static_cast<uint16_t>(EventType::kThreadName)) {
        ++names;
        EXPECT_FALSE(trace.Name(e.name).empty());
      }
    }
    struct Out {
      uint64_t names;
      uint64_t events;
      uint64_t draws;
    };
    return Out{names, trace.size(),
               metrics.FindCounter("lottery.draws")->value()};
  };
  const auto traced = run(true);
  const auto untraced = run(false);
  EXPECT_EQ(traced.names, 3u);
  EXPECT_GT(traced.events, traced.names);
  EXPECT_EQ(untraced.events, 0u);
  // Toggling tracing never perturbs the schedule.
  EXPECT_EQ(traced.draws, untraced.draws);
}

}  // namespace
}  // namespace etrace
}  // namespace lottery
