// Tests for SimTime/SimDuration, TextTable, and Flags.

#include <gtest/gtest.h>

#include "src/util/flags.h"
#include "src/util/sim_time.h"
#include "src/util/table.h"

namespace lottery {
namespace {

TEST(SimDuration, Constructors) {
  EXPECT_EQ(SimDuration::Nanos(5).nanos(), 5);
  EXPECT_EQ(SimDuration::Micros(2).nanos(), 2000);
  EXPECT_EQ(SimDuration::Millis(3).nanos(), 3000000);
  EXPECT_EQ(SimDuration::Seconds(1).nanos(), 1000000000);
  EXPECT_EQ(SimDuration::SecondsF(0.5).nanos(), 500000000);
}

TEST(SimDuration, Arithmetic) {
  const auto a = SimDuration::Millis(100);
  const auto b = SimDuration::Millis(30);
  EXPECT_EQ((a + b).nanos(), SimDuration::Millis(130).nanos());
  EXPECT_EQ((a - b).nanos(), SimDuration::Millis(70).nanos());
  EXPECT_EQ((a * 3).nanos(), SimDuration::Millis(300).nanos());
  EXPECT_EQ((a / 4).nanos(), SimDuration::Millis(25).nanos());
  EXPECT_EQ((-b).nanos(), -SimDuration::Millis(30).nanos());
}

TEST(SimDuration, RatioAndConversions) {
  EXPECT_DOUBLE_EQ(SimDuration::Millis(20).Ratio(SimDuration::Millis(100)),
                   0.2);
  EXPECT_DOUBLE_EQ(SimDuration::Millis(1500).ToSecondsF(), 1.5);
  EXPECT_DOUBLE_EQ(SimDuration::Micros(2500).ToMillisF(), 2.5);
}

TEST(SimDuration, Comparisons) {
  EXPECT_LT(SimDuration::Millis(1), SimDuration::Millis(2));
  EXPECT_EQ(SimDuration::Seconds(1), SimDuration::Millis(1000));
  EXPECT_GE(SimDuration::Micros(1), SimDuration::Nanos(1000));
}

TEST(SimDuration, ToStringPicksUnits) {
  EXPECT_EQ(SimDuration::Seconds(2).ToString(), "2s");
  EXPECT_EQ(SimDuration::Millis(15).ToString(), "15ms");
  EXPECT_EQ(SimDuration::Micros(7).ToString(), "7us");
  EXPECT_EQ(SimDuration::Nanos(3).ToString(), "3ns");
}

TEST(SimTime, PointArithmetic) {
  const SimTime t0 = SimTime::Zero();
  const SimTime t1 = t0 + SimDuration::Seconds(2);
  EXPECT_EQ((t1 - t0).nanos(), SimDuration::Seconds(2).nanos());
  EXPECT_EQ((t1 - SimDuration::Seconds(1)).nanos(),
            SimTime::FromNanos(1000000000).nanos());
  EXPECT_LT(t0, t1);
}

TEST(SimTime, CompoundAdd) {
  SimTime t;
  t += SimDuration::Millis(250);
  EXPECT_DOUBLE_EQ(t.ToSecondsF(), 0.25);
}

TEST(TextTable, RejectsEmptyHeaderAndBadRows) {
  EXPECT_THROW(TextTable({}), std::invalid_argument);
  TextTable t({"a", "b"});
  EXPECT_THROW(t.AddRow({"only-one"}), std::invalid_argument);
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.AddRow({"x", "1"});
  t.AddRow({"longer-name", "22"});
  const std::string s = t.ToString();
  // Header, separator, two rows.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 4);
  EXPECT_NE(s.find("longer-name"), std::string::npos);
}

TEST(TextTable, AddValuesFormatsMixedTypes) {
  TextTable t({"s", "i", "d"});
  t.AddValues("row", 42, 2.5);
  const std::string csv = t.ToCsv();
  EXPECT_NE(csv.find("row,42,2.500"), std::string::npos);
}

TEST(TextTable, CsvRoundTrip) {
  TextTable t({"a", "b"});
  t.AddRow({"1", "2"});
  EXPECT_EQ(t.ToCsv(), "a,b\n1,2\n");
}

TEST(FormatHelpers, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
}

TEST(FormatHelpers, FormatRatioNormalizesByLast) {
  EXPECT_EQ(FormatRatio({8.0, 4.0, 2.0}, 1), "4.0 : 2.0 : 1.0");
  EXPECT_EQ(FormatRatio({}, 2), "");
}

TEST(Flags, ParsesAllForms) {
  const char* argv[] = {"prog", "--seed=42", "--name=abc", "--verbose",
                        "pos1"};
  Flags flags(5, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("seed", 0), 42);
  EXPECT_EQ(flags.GetString("name", ""), "abc");
  EXPECT_TRUE(flags.GetBool("verbose", false));
  ASSERT_EQ(flags.positional().size(), 1u);
  EXPECT_EQ(flags.positional()[0], "pos1");
}

TEST(Flags, DefaultsWhenAbsent) {
  const char* argv[] = {"prog"};
  Flags flags(1, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("missing", 7), 7);
  EXPECT_DOUBLE_EQ(flags.GetDouble("missing", 1.5), 1.5);
  EXPECT_FALSE(flags.GetBool("missing", false));
  EXPECT_FALSE(flags.Has("missing"));
}

TEST(Flags, ExplicitFalse) {
  const char* argv[] = {"prog", "--flag=false", "--zero=0"};
  Flags flags(3, const_cast<char**>(argv));
  EXPECT_FALSE(flags.GetBool("flag", true));
  EXPECT_FALSE(flags.GetBool("zero", true));
}

TEST(Flags, DoubleParsing) {
  const char* argv[] = {"prog", "--ratio=2.5"};
  Flags flags(2, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(flags.GetDouble("ratio", 0.0), 2.5);
}

}  // namespace
}  // namespace lottery
