// Property sweeps over schedulers and the kernel: conservation of CPU time
// and convergence of shares to funding, across random configurations.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numeric>
#include <vector>

#include "src/core/lottery_scheduler.h"
#include "src/sched/stride.h"
#include "src/sim/kernel.h"
#include "src/sim/rpc.h"
#include "src/sim/sync.h"
#include "src/workloads/compute.h"
#include "src/workloads/query_server.h"

namespace lottery {
namespace {

struct SweepCase {
  uint32_t seed;
  int threads;
  RunQueueBackend backend;
};

class LotterySweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(LotterySweep, CpuConservedAndSharesConverge) {
  const SweepCase param = GetParam();
  LotteryScheduler::Options sopts;
  sopts.seed = param.seed;
  sopts.backend = param.backend;
  LotteryScheduler sched(sopts);
  Kernel::Options kopts;
  kopts.quantum = SimDuration::Millis(100);
  Kernel kernel(&sched, kopts);

  FastRand rng(param.seed * 7 + 1);
  std::vector<ThreadId> tids;
  std::vector<int64_t> funds;
  int64_t total_funding = 0;
  for (int i = 0; i < param.threads; ++i) {
    const ThreadId tid = kernel.Spawn("t" + std::to_string(i),
                                      std::make_unique<ComputeTask>());
    const int64_t amount = 50 + rng.NextBelow(950);
    sched.FundThread(tid, sched.table().base(), amount);
    tids.push_back(tid);
    funds.push_back(amount);
    total_funding += amount;
  }

  const SimDuration horizon = SimDuration::Seconds(600);
  kernel.RunFor(horizon);

  // Conservation: CPU time over all threads + idle == elapsed exactly.
  SimDuration used{};
  for (const ThreadId tid : tids) {
    used += kernel.CpuTime(tid);
  }
  EXPECT_EQ((used + kernel.idle_time()).nanos(), horizon.nanos());
  EXPECT_EQ(kernel.idle_time().nanos(), 0);  // all threads compute-bound

  // Convergence: each thread's share within a binomial-noise band of its
  // funding share. 6000 quanta; 4-sigma band per thread.
  for (size_t i = 0; i < tids.size(); ++i) {
    const double p = static_cast<double>(funds[i]) /
                     static_cast<double>(total_funding);
    const double observed =
        kernel.CpuTime(tids[i]).ToSecondsF() / horizon.ToSecondsF();
    const double sigma = std::sqrt(p * (1 - p) / 6000.0);
    EXPECT_NEAR(observed, p, 4.0 * sigma + 0.005)
        << "thread " << i << " of " << param.threads;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cases, LotterySweep,
    ::testing::Values(SweepCase{1, 2, RunQueueBackend::kList},
                      SweepCase{2, 3, RunQueueBackend::kList},
                      SweepCase{3, 5, RunQueueBackend::kList},
                      SweepCase{4, 8, RunQueueBackend::kList},
                      SweepCase{5, 13, RunQueueBackend::kList},
                      SweepCase{6, 2, RunQueueBackend::kTree},
                      SweepCase{7, 5, RunQueueBackend::kTree},
                      SweepCase{8, 13, RunQueueBackend::kTree}));

// Stride gets exact long-run shares for arbitrary ticket vectors.
class StrideSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(StrideSweep, SharesMatchTicketsWithinOneQuantum) {
  FastRand rng(GetParam());
  StrideScheduler sched;
  Kernel::Options kopts;
  kopts.quantum = SimDuration::Millis(100);
  Kernel kernel(&sched, kopts);
  const int threads = 2 + static_cast<int>(rng.NextBelow(6));
  std::vector<ThreadId> tids;
  std::vector<int64_t> tickets;
  int64_t total = 0;
  for (int i = 0; i < threads; ++i) {
    const ThreadId tid = kernel.Spawn("t" + std::to_string(i),
                                      std::make_unique<ComputeTask>());
    tids.push_back(tid);
    const int64_t amount = 1 + rng.NextBelow(9);
    sched.SetTickets(tid, amount);
    tickets.push_back(amount);
    total += amount;
  }
  const SimDuration horizon = SimDuration::Seconds(300);
  kernel.RunFor(horizon);
  for (size_t i = 0; i < tids.size(); ++i) {
    const double expect = horizon.ToSecondsF() *
                          static_cast<double>(tickets[i]) /
                          static_cast<double>(total);
    EXPECT_NEAR(kernel.CpuTime(tids[i]).ToSecondsF(), expect, 0.5)
        << "thread " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrideSweep,
                         ::testing::Values(10u, 20u, 30u, 40u, 50u));

// Quantum sweep: Section 2 — at a fixed horizon, shorter quanta mean more
// lotteries, so the observed share's deviation shrinks like 1/sqrt(q).
class QuantumSweep : public ::testing::TestWithParam<int64_t> {};

TEST_P(QuantumSweep, DeviationWithinBinomialBand) {
  const int64_t quantum_ms = GetParam();
  double total_abs_err = 0.0;
  constexpr int kRuns = 5;
  for (uint32_t seed = 1; seed <= kRuns; ++seed) {
    LotteryScheduler::Options sopts;
    sopts.seed = seed * 100 + static_cast<uint32_t>(quantum_ms);
    LotteryScheduler sched(sopts);
    Kernel::Options kopts;
    kopts.quantum = SimDuration::Millis(quantum_ms);
    Kernel kernel(&sched, kopts);
    const ThreadId a = kernel.Spawn("a", std::make_unique<ComputeTask>());
    sched.FundThread(a, sched.table().base(), 200);
    const ThreadId b = kernel.Spawn("b", std::make_unique<ComputeTask>());
    sched.FundThread(b, sched.table().base(), 100);
    kernel.RunFor(SimDuration::Seconds(60));
    const double share = kernel.CpuTime(a).ToSecondsF() / 60.0;
    total_abs_err += std::abs(share - 2.0 / 3.0);
  }
  // Binomial: sd of the share over n = 60s/q draws is sqrt(p(1-p)/n).
  const double n = 60000.0 / static_cast<double>(quantum_ms);
  const double sigma = std::sqrt((2.0 / 3.0) * (1.0 / 3.0) / n);
  // Mean |error| of kRuns runs stays within ~3 sigma comfortably.
  EXPECT_LT(total_abs_err / kRuns, 3.0 * sigma) << "quantum " << quantum_ms;
}

INSTANTIATE_TEST_SUITE_P(Quanta, QuantumSweep,
                         ::testing::Values(10, 25, 50, 100, 200));

// --- Failure injection / teardown paths -------------------------------------

TEST(Teardown, RpcPortDestructionReleasesParkedTransfers) {
  LotteryScheduler sched;
  Kernel::Options kopts;
  kopts.quantum = SimDuration::Millis(100);
  Kernel kernel(&sched, kopts);
  {
    RpcPort port(&kernel, "doomed");
    QueryClient::Options copts;
    copts.num_queries = 1;
    auto client = std::make_unique<QueryClient>(&port, copts);
    const ThreadId tid = kernel.Spawn("client", std::move(client));
    sched.FundThread(tid, sched.table().base(), 500);
    port.RegisterServer(kernel.Spawn("worker",
                                     std::make_unique<QueryWorker>(&port),
                                     /*start_ready=*/false));
    // Run briefly: the client calls; with the worker parked the message
    // stays pending, its transfer funding the port currency.
    kernel.RunFor(SimDuration::Seconds(1));
    EXPECT_EQ(port.pending_requests(), 1u);
  }
  // Port destroyed with a parked message: its currency and all transfer /
  // server tickets must be gone, and the graph must stay destroyable.
  EXPECT_EQ(sched.table().FindCurrency("port:doomed"), nullptr);
}

TEST(Teardown, MutexDestructionWithWaiters) {
  LotteryScheduler sched;
  Kernel::Options kopts;
  kopts.quantum = SimDuration::Millis(100);
  Kernel kernel(&sched, kopts);
  class Grabby : public ThreadBody {
   public:
    explicit Grabby(SimMutex* m) : m_(m) {}
    // Acquires and never releases, across slices — runtime territory.
    NO_THREAD_SAFETY_ANALYSIS void Run(RunContext& ctx) override {
      if (!held_) {
        ctx.Consume(SimDuration::Millis(1));
        if (!m_->Acquire(ctx)) {
          ctx.Block();
          return;  // once granted we stay blocked: the lock is never free
        }
        held_ = true;
      }
      ctx.Consume(ctx.remaining());  // hold forever
    }
    SimMutex* m_;
    bool held_ = false;
  };
  {
    SimMutex mutex(&kernel, "doomed");
    for (int i = 0; i < 3; ++i) {
      const ThreadId tid = kernel.Spawn(
          "t" + std::to_string(i), std::make_unique<Grabby>(&mutex));
      sched.FundThread(tid, sched.table().base(), 100);
    }
    kernel.RunFor(SimDuration::Seconds(2));
    EXPECT_EQ(mutex.num_waiters(), 2u);
  }
  EXPECT_EQ(sched.table().FindCurrency("mutex:doomed"), nullptr);
}

TEST(Teardown, SchedulerDestructionAfterKernelThreadsExit) {
  // Threads that exit remove their currencies; a full teardown leaves only
  // the base currency and experiment tickets.
  LotteryScheduler sched;
  Kernel::Options kopts;
  kopts.quantum = SimDuration::Millis(100);
  Kernel kernel(&sched, kopts);
  class OneShot : public ThreadBody {
   public:
    void Run(RunContext& ctx) override {
      ctx.Consume(SimDuration::Millis(10));
      ctx.ExitThread();
    }
  };
  for (int i = 0; i < 5; ++i) {
    kernel.Spawn("o" + std::to_string(i), std::make_unique<OneShot>());
  }
  kernel.RunFor(SimDuration::Seconds(1));
  EXPECT_EQ(kernel.num_live_threads(), 0u);
  EXPECT_EQ(sched.table().num_currencies(), 1u);  // just base
  EXPECT_EQ(sched.table().num_tickets(), 0u);
}

}  // namespace
}  // namespace lottery
