// Tests for the currency graph: creation, funding edges, activation
// propagation, value computation (Section 4.4), ACLs, and error handling.

#include "src/core/currency.h"

#include <gtest/gtest.h>

#include "src/core/client.h"

namespace lottery {
namespace {

TEST(CurrencyTable, StartsWithBaseCurrency) {
  CurrencyTable table;
  ASSERT_NE(table.base(), nullptr);
  EXPECT_TRUE(table.base()->is_base());
  EXPECT_EQ(table.base()->name(), "base");
  EXPECT_EQ(table.num_currencies(), 1u);
  EXPECT_EQ(table.FindCurrency("base"), table.base());
}

TEST(CurrencyTable, CreateAndFindCurrency) {
  CurrencyTable table;
  Currency* alice = table.CreateCurrency("alice");
  EXPECT_EQ(table.FindCurrency("alice"), alice);
  EXPECT_EQ(table.FindCurrency("bob"), nullptr);
  EXPECT_FALSE(alice->is_base());
  EXPECT_EQ(table.num_currencies(), 2u);
}

TEST(CurrencyTable, RejectsDuplicateNames) {
  CurrencyTable table;
  table.CreateCurrency("alice");
  EXPECT_THROW(table.CreateCurrency("alice"), std::invalid_argument);
}

TEST(CurrencyTable, CannotDestroyBase) {
  CurrencyTable table;
  EXPECT_THROW(table.DestroyCurrency(table.base()), std::invalid_argument);
}

TEST(CurrencyTable, TicketBookkeeping) {
  CurrencyTable table;
  Currency* alice = table.CreateCurrency("alice");
  Ticket* t = table.CreateTicket(alice, 100);
  EXPECT_EQ(t->amount(), 100);
  EXPECT_EQ(t->denomination(), alice);
  EXPECT_EQ(alice->issued_amount(), 100);
  EXPECT_EQ(alice->active_amount(), 0);  // unattached tickets are inactive
  EXPECT_EQ(table.num_tickets(), 1u);
  table.DestroyTicket(t);
  EXPECT_EQ(alice->issued_amount(), 0);
  EXPECT_EQ(table.num_tickets(), 0u);
}

TEST(CurrencyTable, RejectsNonPositiveAmounts) {
  CurrencyTable table;
  EXPECT_THROW(table.CreateTicket(table.base(), 0), std::invalid_argument);
  EXPECT_THROW(table.CreateTicket(table.base(), -5), std::invalid_argument);
  Ticket* t = table.CreateTicket(table.base(), 5);
  EXPECT_THROW(table.SetAmount(t, 0), std::invalid_argument);
}

TEST(CurrencyTable, FundAndUnfund) {
  CurrencyTable table;
  Currency* alice = table.CreateCurrency("alice");
  Ticket* backing = table.CreateTicket(table.base(), 1000);
  table.Fund(alice, backing);
  EXPECT_EQ(backing->funds(), alice);
  ASSERT_EQ(alice->backing().size(), 1u);
  table.Unfund(backing);
  EXPECT_EQ(backing->funds(), nullptr);
  EXPECT_TRUE(alice->backing().empty());
}

TEST(CurrencyTable, CannotFundBase) {
  CurrencyTable table;
  Currency* alice = table.CreateCurrency("alice");
  Ticket* t = table.CreateTicket(alice, 10);
  EXPECT_THROW(table.Fund(table.base(), t), std::invalid_argument);
}

TEST(CurrencyTable, CannotDoubleAttach) {
  CurrencyTable table;
  Currency* a = table.CreateCurrency("a");
  Currency* b = table.CreateCurrency("b");
  Ticket* t = table.CreateTicket(table.base(), 10);
  table.Fund(a, t);
  EXPECT_THROW(table.Fund(b, t), std::invalid_argument);
}

TEST(CurrencyTable, RejectsSelfCycle) {
  CurrencyTable table;
  Currency* a = table.CreateCurrency("a");
  Ticket* t = table.CreateTicket(a, 10);
  EXPECT_THROW(table.Fund(a, t), std::invalid_argument);
}

TEST(CurrencyTable, RejectsTwoStepCycle) {
  CurrencyTable table;
  Currency* a = table.CreateCurrency("a");
  Currency* b = table.CreateCurrency("b");
  Ticket* a_in_b = table.CreateTicket(b, 10);
  table.Fund(a, a_in_b);  // a depends on b
  Ticket* b_in_a = table.CreateTicket(a, 10);
  EXPECT_THROW(table.Fund(b, b_in_a), std::invalid_argument);
}

TEST(CurrencyTable, AllowsDiamondGraph) {
  // Acyclic but not a tree: two currencies funded from base, one child
  // funded from both (the paper allows arbitrary acyclic graphs).
  CurrencyTable table;
  Currency* left = table.CreateCurrency("left");
  Currency* right = table.CreateCurrency("right");
  Currency* child = table.CreateCurrency("child");
  table.Fund(left, table.CreateTicket(table.base(), 100));
  table.Fund(right, table.CreateTicket(table.base(), 300));
  table.Fund(child, table.CreateTicket(left, 10));
  table.Fund(child, table.CreateTicket(right, 10));
  SUCCEED();
}

TEST(CurrencyTable, CycleCheckSurvivesDeepDiamondGraph) {
  // A 32-layer ladder of 2 currencies per layer, each funded by tickets
  // from both currencies of the layer below, has 2^32 root-to-base paths.
  // The Reaches visited set makes the Fund cycle check linear in edges, so
  // this test finishes instantly instead of effectively hanging.
  CurrencyTable table;
  Currency* prev[2] = {table.CreateCurrency("l0a"), table.CreateCurrency("l0b")};
  table.Fund(prev[0], table.CreateTicket(table.base(), 10));
  table.Fund(prev[1], table.CreateTicket(table.base(), 10));
  for (int layer = 1; layer < 32; ++layer) {
    Currency* cur[2] = {
        table.CreateCurrency("l" + std::to_string(layer) + "a"),
        table.CreateCurrency("l" + std::to_string(layer) + "b")};
    for (Currency* c : cur) {
      table.Fund(c, table.CreateTicket(prev[0], 5));
      table.Fund(c, table.CreateTicket(prev[1], 5));
    }
    prev[0] = cur[0];
    prev[1] = cur[1];
  }
  // Legal edge into the top layer is accepted...
  Currency* top = table.CreateCurrency("top");
  table.Fund(top, table.CreateTicket(prev[0], 1));
  // ...and a back edge from the bottom to the top is still rejected.
  Currency* bottom = table.FindCurrency("l0a");
  Ticket* back = table.CreateTicket(top, 1);
  EXPECT_THROW(table.Fund(bottom, back), std::invalid_argument);
}

TEST(CurrencyTable, DestroyCurrencyRequiresNoIssuedTickets) {
  CurrencyTable table;
  Currency* a = table.CreateCurrency("a");
  Ticket* t = table.CreateTicket(a, 10);
  EXPECT_THROW(table.DestroyCurrency(a), std::logic_error);
  table.DestroyTicket(t);
  table.DestroyCurrency(a);
  EXPECT_EQ(table.FindCurrency("a"), nullptr);
}

TEST(CurrencyTable, DestroyCurrencyRetiresBackingTickets) {
  CurrencyTable table;
  Currency* a = table.CreateCurrency("a");
  table.Fund(a, table.CreateTicket(table.base(), 100));
  table.Fund(a, table.CreateTicket(table.base(), 200));
  EXPECT_EQ(table.num_tickets(), 2u);
  table.DestroyCurrency(a);
  EXPECT_EQ(table.num_tickets(), 0u);
}

// --- Activation propagation (Section 4.4) ---------------------------------

class ActivationTest : public ::testing::Test {
 protected:
  // base -> alice(1000 base) -> task(200 alice) held by client.
  void SetUp() override {
    alice_ = table_.CreateCurrency("alice");
    task_ = table_.CreateCurrency("task");
    alice_backing_ = table_.CreateTicket(table_.base(), 1000);
    table_.Fund(alice_, alice_backing_);
    task_backing_ = table_.CreateTicket(alice_, 200);
    table_.Fund(task_, task_backing_);
    held_ = table_.CreateTicket(task_, 100);
    client_ = std::make_unique<Client>(&table_, "c");
    client_->HoldTicket(held_);
  }

  CurrencyTable table_;
  Currency* alice_ = nullptr;
  Currency* task_ = nullptr;
  Ticket* alice_backing_ = nullptr;
  Ticket* task_backing_ = nullptr;
  Ticket* held_ = nullptr;
  std::unique_ptr<Client> client_;
};

TEST_F(ActivationTest, InactiveByDefault) {
  EXPECT_FALSE(held_->active());
  EXPECT_FALSE(task_backing_->active());
  EXPECT_FALSE(alice_backing_->active());
  EXPECT_EQ(task_->active_amount(), 0);
  EXPECT_EQ(alice_->active_amount(), 0);
}

TEST_F(ActivationTest, ActivationCascadesToBase) {
  client_->SetActive(true);
  EXPECT_TRUE(held_->active());
  EXPECT_TRUE(task_backing_->active());
  EXPECT_TRUE(alice_backing_->active());
  EXPECT_EQ(task_->active_amount(), 100);
  EXPECT_EQ(alice_->active_amount(), 200);
  EXPECT_EQ(table_.base()->active_amount(), 1000);
}

TEST_F(ActivationTest, DeactivationCascadesBack) {
  client_->SetActive(true);
  client_->SetActive(false);
  EXPECT_FALSE(held_->active());
  EXPECT_FALSE(task_backing_->active());
  EXPECT_FALSE(alice_backing_->active());
  EXPECT_EQ(alice_->active_amount(), 0);
}

TEST_F(ActivationTest, SecondActiveTicketDoesNotReActivateBacking) {
  client_->SetActive(true);
  Ticket* second = table_.CreateTicket(task_, 50);
  Client other(&table_, "other");
  other.HoldTicket(second);
  other.SetActive(true);
  EXPECT_EQ(task_->active_amount(), 150);
  // alice's active amount is unchanged: task's backing ticket was already
  // active (its amount doesn't scale with task activity).
  EXPECT_EQ(alice_->active_amount(), 200);
  other.SetActive(false);
  EXPECT_EQ(task_->active_amount(), 100);
  EXPECT_TRUE(task_backing_->active());
  table_.DestroyTicket(second);
}

TEST_F(ActivationTest, SetAmountAdjustsActiveSum) {
  client_->SetActive(true);
  table_.SetAmount(held_, 300);
  EXPECT_EQ(task_->active_amount(), 300);
  EXPECT_EQ(task_->issued_amount(), 300);
  table_.SetAmount(held_, 100);
  EXPECT_EQ(task_->active_amount(), 100);
}

// --- Value computation (Section 4.4) ---------------------------------------

TEST_F(ActivationTest, ValuesFollowTheShareFormula) {
  client_->SetActive(true);
  // held = 100/100 of task; task = 200/200 of alice = 1000 base.
  EXPECT_EQ(table_.TicketValue(held_).base_units(), 1000);
  EXPECT_EQ(table_.CurrencyValue(task_).base_units(), 1000);
  EXPECT_EQ(table_.CurrencyValue(alice_).base_units(), 1000);
}

TEST_F(ActivationTest, InactiveTicketsAreWorthless) {
  EXPECT_TRUE(table_.TicketValue(held_).IsZero());
}

TEST_F(ActivationTest, SharesSplitAcrossActiveSiblings) {
  client_->SetActive(true);
  Ticket* second = table_.CreateTicket(task_, 300);
  Client other(&table_, "other");
  other.HoldTicket(second);
  other.SetActive(true);
  // Active amount in task = 400; held is 100/400 of 1000 base.
  EXPECT_EQ(table_.TicketValue(held_).base_units(), 250);
  EXPECT_EQ(table_.TicketValue(second).base_units(), 750);
  other.SetActive(false);
  // Inactive siblings do not dilute (the paper's inactive task1 case).
  EXPECT_EQ(table_.TicketValue(held_).base_units(), 1000);
  table_.DestroyTicket(second);
}

TEST(CurrencyValues, Figure3Example) {
  // Figure 3 of the paper: alice funded 2000 base + (via bob's 100) etc.
  // We reproduce the stated thread values: thread2 = 400, thread3 = 600,
  // thread4 = 2000 when thread1's task1 is inactive.
  CurrencyTable table;
  Currency* alice = table.CreateCurrency("alice");
  Currency* bob = table.CreateCurrency("bob");
  Currency* task1 = table.CreateCurrency("task1");
  Currency* task2 = table.CreateCurrency("task2");
  Currency* task3 = table.CreateCurrency("task3");

  table.Fund(alice, table.CreateTicket(table.base(), 2000));
  table.Fund(bob, table.CreateTicket(table.base(), 1000));
  // alice: task1 gets 100, task2 gets 200 (total issued 300).
  table.Fund(task1, table.CreateTicket(alice, 100));
  table.Fund(task2, table.CreateTicket(alice, 200));
  // bob: task3 gets 100 (all of bob).
  table.Fund(task3, table.CreateTicket(bob, 100));

  // Threads: thread1 holds 100.task1 (inactive); thread2 and thread3 hold
  // 300 and 200 of task2's 500; thread4 holds all of task3.
  Client thread1(&table, "t1"), thread2(&table, "t2"), thread3(&table, "t3"),
      thread4(&table, "t4");
  Ticket* h1 = table.CreateTicket(task1, 100);
  Ticket* h2 = table.CreateTicket(task2, 300);
  Ticket* h3 = table.CreateTicket(task2, 200);
  Ticket* h4 = table.CreateTicket(task3, 100);
  thread1.HoldTicket(h1);
  thread2.HoldTicket(h2);
  thread3.HoldTicket(h3);
  thread4.HoldTicket(h4);

  thread2.SetActive(true);
  thread3.SetActive(true);
  thread4.SetActive(true);
  // thread1 stays inactive -> task1's claim on alice is inactive, so
  // task2's 200 is alice's entire active amount: task2 = 2000 base.
  EXPECT_EQ(table.CurrencyValue(task2).base_units(), 2000);
  EXPECT_EQ(thread2.Value().base_units(), 1200);  // 300/500 of 2000
  EXPECT_EQ(thread3.Value().base_units(), 800);   // 200/500 of 2000
  EXPECT_EQ(thread4.Value().base_units(), 1000);  // all of bob

  // Waking thread1 dilutes alice between task1 and task2.
  thread1.SetActive(true);
  EXPECT_EQ(table.CurrencyValue(task1).base_units(), 2000 * 100 / 300);
  EXPECT_EQ(table.CurrencyValue(task2).base_units(), 2000 * 200 / 300);
}

TEST(CurrencyValues, EpochMemoizationInvalidatesOnChange) {
  CurrencyTable table;
  Currency* a = table.CreateCurrency("a");
  Ticket* backing = table.CreateTicket(table.base(), 100);
  table.Fund(a, backing);
  Client c(&table, "c");
  Ticket* held = table.CreateTicket(a, 10);
  c.HoldTicket(held);
  c.SetActive(true);
  EXPECT_EQ(c.Value().base_units(), 100);
  const uint64_t epoch_before = table.epoch();
  table.SetAmount(backing, 500);
  EXPECT_GT(table.epoch(), epoch_before);
  EXPECT_EQ(c.Value().base_units(), 500);
}

TEST(CurrencyValues, PotentialValueForInactiveTicket) {
  CurrencyTable table;
  Currency* a = table.CreateCurrency("a");
  table.Fund(a, table.CreateTicket(table.base(), 900));
  Client active(&table, "active");
  Ticket* held = table.CreateTicket(a, 100);
  active.HoldTicket(held);
  active.SetActive(true);
  Ticket* parked = table.CreateTicket(a, 200);
  // If parked joined, active amount would be 300.
  EXPECT_EQ(table.PotentialTicketValue(parked).base_units(), 600);
  // Base-denominated tickets are worth face value regardless.
  Ticket* base_ticket = table.CreateTicket(table.base(), 42);
  EXPECT_EQ(table.PotentialTicketValue(base_ticket).base_units(), 42);
}

// --- Exchange rates (Section 3.3) --------------------------------------------

TEST(ExchangeRate, BaseIsAlwaysUnity) {
  CurrencyTable table;
  EXPECT_DOUBLE_EQ(table.ExchangeRate(table.base()), 1.0);
}

TEST(ExchangeRate, InactiveCurrencyIsZero) {
  CurrencyTable table;
  Currency* a = table.CreateCurrency("a");
  table.Fund(a, table.CreateTicket(table.base(), 100));
  EXPECT_DOUBLE_EQ(table.ExchangeRate(a), 0.0);
}

TEST(ExchangeRate, TracksValuePerActiveUnit) {
  CurrencyTable table;
  Currency* a = table.CreateCurrency("a");
  table.Fund(a, table.CreateTicket(table.base(), 600));
  Client c(&table, "c");
  Ticket* held = table.CreateTicket(a, 300);
  c.HoldTicket(held);
  c.SetActive(true);
  EXPECT_DOUBLE_EQ(table.ExchangeRate(a), 2.0);  // 600 base / 300 units
}

TEST(ExchangeRate, InflationLoweredLocallyOnly) {
  // Section 3.3: inflation inside one currency changes its own exchange
  // rate but no one else's.
  CurrencyTable table;
  Currency* a = table.CreateCurrency("a");
  Currency* b = table.CreateCurrency("b");
  table.Fund(a, table.CreateTicket(table.base(), 400));
  table.Fund(b, table.CreateTicket(table.base(), 400));
  Client ca(&table, "ca"), cb(&table, "cb");
  ca.HoldTicket(table.CreateTicket(a, 100));
  cb.HoldTicket(table.CreateTicket(b, 100));
  ca.SetActive(true);
  cb.SetActive(true);
  EXPECT_DOUBLE_EQ(table.ExchangeRate(a), 4.0);
  EXPECT_DOUBLE_EQ(table.ExchangeRate(b), 4.0);
  // Inflate a: another active 300-unit claim appears in it.
  Client intruder(&table, "more-a");
  intruder.HoldTicket(table.CreateTicket(a, 300));
  intruder.SetActive(true);
  EXPECT_DOUBLE_EQ(table.ExchangeRate(a), 1.0);  // 400 / 400
  EXPECT_DOUBLE_EQ(table.ExchangeRate(b), 4.0);  // untouched
}

// --- ACLs (Section 4.7's protection note) -----------------------------------

TEST(CurrencyAcl, UnownedCurrencyIsOpen) {
  CurrencyTable table;
  Currency* a = table.CreateCurrency("a");
  EXPECT_TRUE(a->MayInflate("anyone"));
  EXPECT_NO_THROW(table.CreateTicket(a, 5, "anyone"));
}

TEST(CurrencyAcl, OwnedCurrencyRestrictsIssuance) {
  CurrencyTable table;
  Currency* a = table.CreateCurrency("a", "alice");
  EXPECT_TRUE(a->MayInflate("alice"));
  EXPECT_FALSE(a->MayInflate("mallory"));
  EXPECT_THROW(table.CreateTicket(a, 5, "mallory"), std::invalid_argument);
  EXPECT_NO_THROW(table.CreateTicket(a, 5, "alice"));
}

TEST(CurrencyAcl, SuperuserBypassesAcls) {
  // The paper's commands were setuid root; "root" passes every ACL.
  CurrencyTable table;
  Currency* a = table.CreateCurrency("a", "alice");
  EXPECT_NO_THROW(table.CreateTicket(a, 5, "root"));
  table.set_superuser("");
  EXPECT_THROW(table.CreateTicket(a, 5, "root"), std::invalid_argument);
  table.set_superuser("admin");
  EXPECT_NO_THROW(table.CreateTicket(a, 5, "admin"));
}

TEST(CurrencyAcl, InflatorsCanBeGranted) {
  CurrencyTable table;
  Currency* a = table.CreateCurrency("a", "alice");
  a->AllowInflator("bob");
  EXPECT_TRUE(a->MayInflate("bob"));
  EXPECT_NO_THROW(table.CreateTicket(a, 5, "bob"));
}

TEST(CurrencyTable, ToDotRendersGraph) {
  CurrencyTable table;
  Currency* a = table.CreateCurrency("a");
  table.Fund(a, table.CreateTicket(table.base(), 100));
  Client c(&table, "worker");
  c.HoldTicket(table.CreateTicket(a, 10));
  c.SetActive(true);
  const std::string dot = table.ToDot();
  EXPECT_NE(dot.find("digraph currencies"), std::string::npos);
  EXPECT_NE(dot.find("\"a\" -> \"base\" [label=\"100\"]"),
            std::string::npos);
  EXPECT_NE(dot.find("\"worker\" -> \"a\" [label=\"10\"]"),
            std::string::npos);
  // Inactive edges are dashed.
  c.SetActive(false);
  EXPECT_NE(table.ToDot().find("style=dashed"), std::string::npos);
}

TEST(CurrencyTable, DebugStringListsCurrencies) {
  CurrencyTable table;
  Currency* a = table.CreateCurrency("a");
  table.Fund(a, table.CreateTicket(table.base(), 100));
  const std::string s = table.DebugString();
  EXPECT_NE(s.find("a:"), std::string::npos);
  EXPECT_NE(s.find("100.base"), std::string::npos);
}

}  // namespace
}  // namespace lottery
