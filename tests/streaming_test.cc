// Tests for the O(1)-memory streaming moment accumulator used by the scale
// bench to summarise per-thread share error without per-thread storage.

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/streaming.h"
#include "src/util/fastrand.h"

namespace lottery {
namespace {

TEST(StreamingStats, EmptyIsAllZeros) {
  obs::StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(StreamingStats, SingleValue) {
  obs::StreamingStats s;
  s.Add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(StreamingStats, MatchesClosedFormMoments) {
  // 1..100: mean 50.5, population variance (n^2 - 1)/12 = 833.25.
  obs::StreamingStats s;
  for (int i = 1; i <= 100; ++i) {
    s.Add(static_cast<double>(i));
  }
  EXPECT_EQ(s.count(), 100u);
  EXPECT_NEAR(s.mean(), 50.5, 1e-9);
  EXPECT_NEAR(s.variance(), 833.25, 1e-6);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
}

TEST(StreamingStats, MergeEqualsSingleAccumulator) {
  FastRand rng(12345);
  std::vector<double> values;
  for (int i = 0; i < 10000; ++i) {
    values.push_back(rng.NextUnit() * 2000.0 - 1000.0);
  }

  obs::StreamingStats whole;
  for (double v : values) {
    whole.Add(v);
  }

  // Shard into uneven pieces (including an empty shard) and merge.
  obs::StreamingStats merged;
  obs::StreamingStats shard;
  size_t i = 0;
  for (size_t shard_size : {size_t{1}, size_t{0}, size_t{9}, size_t{4990},
                            size_t{5000}}) {
    shard.Reset();
    for (size_t k = 0; k < shard_size; ++k) {
      shard.Add(values[i++]);
    }
    merged.Merge(shard);
  }
  ASSERT_EQ(i, values.size());

  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_NEAR(merged.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(merged.variance(), whole.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(merged.min(), whole.min());
  EXPECT_DOUBLE_EQ(merged.max(), whole.max());
}

TEST(StreamingStats, MergeIntoEmptyCopiesOther) {
  obs::StreamingStats a;
  a.Add(1.0);
  a.Add(2.0);
  obs::StreamingStats b;
  b.Merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
  // Merging an empty accumulator is a no-op.
  obs::StreamingStats empty;
  b.Merge(empty);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(StreamingStats, VarianceIsNumericallyStableForLargeOffsets) {
  // Naive sum-of-squares accumulation loses all precision here; Welford
  // keeps the exact answer. Values: 1e9 + {1, 2, 3}.
  obs::StreamingStats s;
  s.Add(1e9 + 1.0);
  s.Add(1e9 + 2.0);
  s.Add(1e9 + 3.0);
  EXPECT_NEAR(s.mean(), 1e9 + 2.0, 1e-3);
  EXPECT_NEAR(s.variance(), 2.0 / 3.0, 1e-6);
}

TEST(StreamingStats, ResetClears) {
  obs::StreamingStats s;
  s.Add(10.0);
  s.Reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
}

}  // namespace
}  // namespace lottery
