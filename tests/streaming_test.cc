// Tests for the O(1)-memory streaming moment accumulator used by the scale
// bench to summarise per-thread share error without per-thread storage.

#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/obs/streaming.h"
#include "src/util/fastrand.h"

namespace lottery {
namespace {

TEST(StreamingStats, EmptyIsAllZeros) {
  obs::StreamingStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.stddev(), 0.0);
  EXPECT_EQ(s.min(), 0.0);
  EXPECT_EQ(s.max(), 0.0);
}

TEST(StreamingStats, SingleValue) {
  obs::StreamingStats s;
  s.Add(3.5);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_DOUBLE_EQ(s.mean(), 3.5);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_DOUBLE_EQ(s.min(), 3.5);
  EXPECT_DOUBLE_EQ(s.max(), 3.5);
}

TEST(StreamingStats, MatchesClosedFormMoments) {
  // 1..100: mean 50.5, population variance (n^2 - 1)/12 = 833.25.
  obs::StreamingStats s;
  for (int i = 1; i <= 100; ++i) {
    s.Add(static_cast<double>(i));
  }
  EXPECT_EQ(s.count(), 100u);
  EXPECT_NEAR(s.mean(), 50.5, 1e-9);
  EXPECT_NEAR(s.variance(), 833.25, 1e-6);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 100.0);
}

TEST(StreamingStats, MergeEqualsSingleAccumulator) {
  FastRand rng(12345);
  std::vector<double> values;
  for (int i = 0; i < 10000; ++i) {
    values.push_back(rng.NextUnit() * 2000.0 - 1000.0);
  }

  obs::StreamingStats whole;
  for (double v : values) {
    whole.Add(v);
  }

  // Shard into uneven pieces (including an empty shard) and merge.
  obs::StreamingStats merged;
  obs::StreamingStats shard;
  size_t i = 0;
  for (size_t shard_size : {size_t{1}, size_t{0}, size_t{9}, size_t{4990},
                            size_t{5000}}) {
    shard.Reset();
    for (size_t k = 0; k < shard_size; ++k) {
      shard.Add(values[i++]);
    }
    merged.Merge(shard);
  }
  ASSERT_EQ(i, values.size());

  EXPECT_EQ(merged.count(), whole.count());
  EXPECT_NEAR(merged.mean(), whole.mean(), 1e-9);
  EXPECT_NEAR(merged.variance(), whole.variance(), 1e-6);
  EXPECT_DOUBLE_EQ(merged.min(), whole.min());
  EXPECT_DOUBLE_EQ(merged.max(), whole.max());
}

TEST(StreamingStats, MergeIntoEmptyCopiesOther) {
  obs::StreamingStats a;
  a.Add(1.0);
  a.Add(2.0);
  obs::StreamingStats b;
  b.Merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
  // Merging an empty accumulator is a no-op.
  obs::StreamingStats empty;
  b.Merge(empty);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.5);
}

TEST(StreamingStats, VarianceIsNumericallyStableForLargeOffsets) {
  // Naive sum-of-squares accumulation loses all precision here; Welford
  // keeps the exact answer. Values: 1e9 + {1, 2, 3}.
  obs::StreamingStats s;
  s.Add(1e9 + 1.0);
  s.Add(1e9 + 2.0);
  s.Add(1e9 + 3.0);
  EXPECT_NEAR(s.mean(), 1e9 + 2.0, 1e-3);
  EXPECT_NEAR(s.variance(), 2.0 / 3.0, 1e-6);
}

TEST(StreamingStats, ResetClears) {
  obs::StreamingStats s;
  s.Add(10.0);
  s.Reset();
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
}

TEST(StreamingStats, MergeEmptyIntoEmptyStaysEmpty) {
  obs::StreamingStats a;
  obs::StreamingStats b;
  a.Merge(b);
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean(), 0.0);
  EXPECT_EQ(a.variance(), 0.0);
  EXPECT_EQ(a.min(), 0.0);
  EXPECT_EQ(a.max(), 0.0);
  // Still usable as a fresh accumulator afterwards.
  a.Add(7.0);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.mean(), 7.0);
}

TEST(StreamingStats, SingleSampleMergesBothDirections) {
  // Chan's combination formula divides by the combined count; n=1 shards
  // are the degenerate case the timeseries downsampler hits on every
  // compaction boundary.
  obs::StreamingStats one;
  one.Add(5.0);
  obs::StreamingStats many;
  many.Add(1.0);
  many.Add(3.0);

  obs::StreamingStats a = many;
  a.Merge(one);
  obs::StreamingStats b = one;
  b.Merge(many);

  for (const obs::StreamingStats* s : {&a, &b}) {
    EXPECT_EQ(s->count(), 3u);
    EXPECT_DOUBLE_EQ(s->mean(), 3.0);
    EXPECT_NEAR(s->variance(), 8.0 / 3.0, 1e-12);
    EXPECT_EQ(s->min(), 1.0);
    EXPECT_EQ(s->max(), 5.0);
  }

  obs::StreamingStats c;
  c.Add(2.0);
  obs::StreamingStats d;
  d.Add(4.0);
  c.Merge(d);  // single merged into single
  EXPECT_EQ(c.count(), 2u);
  EXPECT_DOUBLE_EQ(c.mean(), 3.0);
  EXPECT_NEAR(c.variance(), 1.0, 1e-12);
}

TEST(StreamingStats, VarianceStableAtLargeCounts) {
  // A million near-identical observations around a large offset: the M2
  // update must not let rounding in the running mean swamp the tiny true
  // variance. Values alternate 1e6 ± 0.5, so variance is exactly 0.25.
  obs::StreamingStats s;
  for (int i = 0; i < 1'000'000; ++i) {
    s.Add(1e6 + ((i & 1) != 0 ? 0.5 : -0.5));
  }
  EXPECT_EQ(s.count(), 1'000'000u);
  EXPECT_NEAR(s.mean(), 1e6, 1e-6);
  EXPECT_NEAR(s.variance(), 0.25, 1e-9);
  EXPECT_NEAR(s.stddev(), 0.5, 1e-9);
}

TEST(StreamingStats, MergeIsCommutativeUpToRounding) {
  // Shards of very different sizes and magnitudes merged in both orders
  // must agree to tight tolerance (Chan's formula is symmetric; only
  // floating-point rounding differs).
  FastRand rng(0xc0ffee42u);
  obs::StreamingStats big;
  for (int i = 0; i < 10'000; ++i) {
    big.Add(static_cast<double>(rng.Next() % 1000u));
  }
  obs::StreamingStats small;
  for (int i = 0; i < 3; ++i) {
    small.Add(1e7 + static_cast<double>(i));
  }

  obs::StreamingStats ab = big;
  ab.Merge(small);
  obs::StreamingStats ba = small;
  ba.Merge(big);

  EXPECT_EQ(ab.count(), ba.count());
  EXPECT_NEAR(ab.mean(), ba.mean(), 1e-9 * ab.mean());
  EXPECT_NEAR(ab.variance(), ba.variance(), 1e-9 * ab.variance());
  EXPECT_EQ(ab.min(), ba.min());
  EXPECT_EQ(ab.max(), ba.max());
}

}  // namespace
}  // namespace lottery
