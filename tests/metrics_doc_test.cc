// Metric-name hygiene and docs-drift gate.
//
// Runs the metricsdoc inventory over the real source tree: every metric name
// must use the [a-z0-9_.]+ alphabet, be unique across kinds, every dynamic
// creation site must be covered by the documented family table, and the
// committed docs/METRICS.md must byte-match what the generator produces.

#include "tools/metricsdoc/metricsdoc.h"

#include <fstream>
#include <set>
#include <sstream>

#include "gtest/gtest.h"

namespace lottery {
namespace metricsdoc {
namespace {

Inventory TheInventory() {
  static const Inventory inventory = CollectInventory(METRICS_SRC_ROOT);
  return inventory;
}

TEST(HygienicNameTest, Alphabet) {
  EXPECT_TRUE(HygienicName("kernel.dispatches"));
  EXPECT_TRUE(HygienicName("a_b.c_0"));
  EXPECT_TRUE(HygienicName("cpu<i>.util"));
  EXPECT_TRUE(HygienicName("client.<label>.lag_ms"));
  EXPECT_FALSE(HygienicName(""));
  EXPECT_FALSE(HygienicName("decay-usage.picks"));  // hyphens banned
  EXPECT_FALSE(HygienicName("Kernel.dispatches"));  // uppercase banned
  EXPECT_FALSE(HygienicName("kernel dispatches"));
  EXPECT_FALSE(HygienicName("cpu<i.util"));  // unclosed placeholder
}

TEST(MetricsDocTest, InventoryClean) {
  const Inventory inventory = TheInventory();
  for (const std::string& error : inventory.errors) {
    ADD_FAILURE() << error;
  }
  EXPECT_TRUE(inventory.ok());
  // The scan actually saw the tree: the core scheduler counters alone put
  // the floor well above this.
  EXPECT_GE(inventory.metrics.size(), 40u);
  EXPECT_GE(inventory.files_scanned, 50u);
  EXPECT_GE(inventory.dynamic_sites, 14u);
}

TEST(MetricsDocTest, NamesUniqueAcrossKinds) {
  const Inventory inventory = TheInventory();
  std::set<std::string> seen;
  for (const Metric& metric : inventory.metrics) {
    EXPECT_TRUE(seen.insert(metric.name).second)
        << "duplicate metric name: " << metric.name;
  }
  for (const Family& family : inventory.families) {
    EXPECT_TRUE(seen.insert(family.name).second)
        << "family name collides with a static metric: " << family.name;
  }
}

TEST(MetricsDocTest, KnownSitesPresent) {
  const Inventory inventory = TheInventory();
  const auto has = [&](const char* kind, const char* name) {
    for (const Metric& metric : inventory.metrics) {
      if (metric.kind == kind && metric.name == name) {
        return true;
      }
    }
    return false;
  };
  EXPECT_TRUE(has("counter", "kernel.dispatches"));
  EXPECT_TRUE(has("counter", "lottery.draws"));
  EXPECT_TRUE(has("counter", "sched.decay_usage.picks"));
  EXPECT_TRUE(has("histogram", "kernel.slice_us"));
  EXPECT_TRUE(has("series", "kernel.util"));
  EXPECT_TRUE(has("series", "sched.starve_max_ms"));
}

TEST(MetricsDocTest, CommittedDocIsCurrent) {
  const Inventory inventory = TheInventory();
  ASSERT_TRUE(inventory.ok());
  std::ifstream in(METRICS_DOC_PATH, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing " << METRICS_DOC_PATH;
  std::ostringstream committed;
  committed << in.rdbuf();
  EXPECT_EQ(committed.str(), GenerateMarkdown(inventory))
      << "docs/METRICS.md is stale — regenerate with "
         "`metricsdoc --root=. --out=docs/METRICS.md`";
}

}  // namespace
}  // namespace metricsdoc
}  // namespace lottery
