// Section 2's probabilistic claims, validated empirically against the
// actual lottery implementation, plus golden-sequence regression tests
// that pin the exact deterministic behaviour for fixed seeds.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "src/core/client.h"
#include "src/core/currency.h"
#include "src/core/list_lottery.h"
#include "src/util/fastrand.h"
#include "src/util/stats.h"

namespace lottery {
namespace {

// Builds a two-client lottery with win probability p = t/T for client A.
struct TwoClientLottery {
  TwoClientLottery(int64_t a_tickets, int64_t b_tickets) {
    a = std::make_unique<Client>(&table, "a");
    b = std::make_unique<Client>(&table, "b");
    a->HoldTicket(table.CreateTicket(table.base(), a_tickets));
    b->HoldTicket(table.CreateTicket(table.base(), b_tickets));
    a->SetActive(true);
    b->SetActive(true);
    lotto.Add(a.get());
    lotto.Add(b.get());
  }
  CurrencyTable table;
  std::unique_ptr<Client> a;
  std::unique_ptr<Client> b;
  ListLottery lotto;
};

TEST(SectionTwoTheory, ExpectedWinsAreNP) {
  // "After n identical lotteries, the expected number of wins is np."
  TwoClientLottery rig(1, 3);  // p = 1/4
  FastRand rng(101);
  constexpr int kN = 100000;
  int wins = 0;
  for (int i = 0; i < kN; ++i) {
    if (rig.lotto.Draw(rng) == rig.a.get()) {
      ++wins;
    }
  }
  const auto expect = BinomialStats(kN, 0.25);
  EXPECT_NEAR(static_cast<double>(wins), expect.mean, 4 * expect.stddev);
}

TEST(SectionTwoTheory, WinVarianceIsBinomial) {
  // Var = np(1-p): measure the variance of win counts over many blocks of
  // n = 400 lotteries and compare with the binomial prediction.
  TwoClientLottery rig(1, 1);  // p = 1/2
  FastRand rng(202);
  constexpr int kBlock = 400;
  constexpr int kBlocks = 2000;
  RunningStat block_wins;
  for (int b = 0; b < kBlocks; ++b) {
    int wins = 0;
    for (int i = 0; i < kBlock; ++i) {
      if (rig.lotto.Draw(rng) == rig.a.get()) {
        ++wins;
      }
    }
    block_wins.Add(wins);
  }
  const auto expect = BinomialStats(kBlock, 0.5);
  EXPECT_NEAR(block_wins.mean(), expect.mean, 1.0);
  // Sample variance of a variance estimate: allow 10%.
  EXPECT_NEAR(block_wins.sample_variance(), expect.variance,
              expect.variance * 0.10);
}

TEST(SectionTwoTheory, CoefficientOfVariationShrinksAsSqrtN) {
  // cv = sqrt((1-p)/np): doubling n four-fold halves the cv.
  TwoClientLottery rig(1, 3);  // p = 1/4
  FastRand rng(303);
  auto measure_cv = [&](int block, int blocks) {
    RunningStat stat;
    for (int b = 0; b < blocks; ++b) {
      int wins = 0;
      for (int i = 0; i < block; ++i) {
        if (rig.lotto.Draw(rng) == rig.a.get()) {
          ++wins;
        }
      }
      stat.Add(static_cast<double>(wins) / block);
    }
    return stat.stddev() / stat.mean();
  };
  const double cv_small = measure_cv(100, 2000);
  const double cv_large = measure_cv(1600, 2000);
  EXPECT_NEAR(cv_small / cv_large, 4.0, 0.6);
  EXPECT_NEAR(cv_small, BinomialStats(100, 0.25).cv, 0.02);
}

TEST(SectionTwoTheory, FirstWinWaitIsGeometric) {
  // "The number of lotteries required for a client's first win has a
  // geometric distribution" with mean 1/p and variance (1-p)/p^2.
  TwoClientLottery rig(1, 4);  // p = 1/5
  FastRand rng(404);
  RunningStat waits;
  for (int trial = 0; trial < 20000; ++trial) {
    int draws = 0;
    do {
      ++draws;
    } while (rig.lotto.Draw(rng) != rig.a.get());
    waits.Add(draws);
  }
  const auto expect = GeometricStats(0.2);
  EXPECT_NEAR(waits.mean(), expect.mean, 0.1);
  EXPECT_NEAR(waits.sample_variance(), expect.variance,
              expect.variance * 0.08);
}

TEST(SectionTwoTheory, GeometricTailMemoryless) {
  // P(wait > k) = (1-p)^k: check a few tail points at p = 1/3.
  TwoClientLottery rig(1, 2);
  FastRand rng(505);
  constexpr int kTrials = 30000;
  std::vector<int> waits;
  waits.reserve(kTrials);
  for (int trial = 0; trial < kTrials; ++trial) {
    int draws = 0;
    do {
      ++draws;
    } while (rig.lotto.Draw(rng) != rig.a.get());
    waits.push_back(draws);
  }
  for (const int k : {1, 2, 5, 10}) {
    const double observed =
        static_cast<double>(std::count_if(waits.begin(), waits.end(),
                                          [k](int w) { return w > k; })) /
        kTrials;
    const double predicted = std::pow(2.0 / 3.0, k);
    EXPECT_NEAR(observed, predicted, 0.012) << "k=" << k;
  }
}

TEST(SectionTwoTheory, ThroughputProportionalAndResponseInverse) {
  // "a client's throughput is proportional to its ticket allocation and its
  // average response time is inversely proportional to it."
  FastRand rng(606);
  for (const int64_t tickets : {1, 2, 4}) {
    TwoClientLottery rig(tickets, 8 - tickets);
    RunningStat waits;
    int wins = 0;
    constexpr int kDraws = 80000;
    int since_last = 0;
    for (int i = 0; i < kDraws; ++i) {
      ++since_last;
      if (rig.lotto.Draw(rng) == rig.a.get()) {
        ++wins;
        waits.Add(since_last);
        since_last = 0;
      }
    }
    const double p = static_cast<double>(tickets) / 8.0;
    EXPECT_NEAR(static_cast<double>(wins) / kDraws, p, 0.01);
    EXPECT_NEAR(waits.mean(), 1.0 / p, 0.2 / p);
  }
}

// --- Golden sequences ---------------------------------------------------------
// Pin the exact outputs for fixed seeds so refactorings cannot silently
// change scheduling behaviour (reproducibility is a design guarantee).

TEST(GoldenSequence, FastRandFromSeed42) {
  FastRand rng(42);
  const uint32_t expected[] = {705894u,     1126542223u, 1579310009u,
                               565444343u,  807934826u,  421520601u};
  for (const uint32_t want : expected) {
    EXPECT_EQ(rng.Next(), want);
  }
}

TEST(GoldenSequence, ListLotteryWinnersFromSeed7) {
  TwoClientLottery rig(2, 1);
  FastRand rng(7);
  std::string sequence;
  for (int i = 0; i < 20; ++i) {
    sequence += (rig.lotto.Draw(rng) == rig.a.get()) ? 'a' : 'b';
  }
  // Deterministic for seed 7; 2:1 mix.
  EXPECT_EQ(sequence.size(), 20u);
  const auto a_count = std::count(sequence.begin(), sequence.end(), 'a');
  EXPECT_EQ(sequence, "aabbaaaaaabbbaabaaaa");
  EXPECT_EQ(a_count, 14);
}

TEST(GoldenSequence, SameSeedSameSimulationTwice) {
  auto run = []() {
    TwoClientLottery rig(3, 2);
    FastRand rng(99);
    std::string s;
    for (int i = 0; i < 1000; ++i) {
      s += (rig.lotto.Draw(rng) == rig.a.get()) ? 'a' : 'b';
    }
    return s;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace lottery
