// Tests for the lottery-matched crossbar switch.

#include "src/sim/crossbar.h"

#include <gtest/gtest.h>

namespace lottery {
namespace {

SimTime At(int64_t us) { return SimTime::Zero() + SimDuration::Micros(us); }

CrossbarSwitch::Options Opts(int ports, int rounds = 1) {
  CrossbarSwitch::Options o;
  o.num_ports = ports;
  o.cell_time = SimDuration::Micros(1);
  o.buffer_cells = 4096;
  o.matching_rounds = rounds;
  return o;
}

TEST(Crossbar, RejectsBadConfig) {
  FastRand rng(1);
  CrossbarSwitch::Options bad = Opts(0);
  EXPECT_THROW(CrossbarSwitch(bad, &rng), std::invalid_argument);
  bad = Opts(2);
  bad.matching_rounds = 0;
  EXPECT_THROW(CrossbarSwitch(bad, &rng), std::invalid_argument);
  CrossbarSwitch sw(Opts(2), &rng);
  EXPECT_THROW(sw.AddCircuit(2, 0, 1), std::invalid_argument);
  EXPECT_THROW(sw.AddCircuit(0, -1, 1), std::invalid_argument);
}

TEST(Crossbar, SingleCircuitFullThroughput) {
  FastRand rng(2);
  CrossbarSwitch sw(Opts(2), &rng);
  const auto vc = sw.AddCircuit(0, 1, 10);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(sw.Enqueue(vc, At(0)));
  }
  sw.AdvanceTo(At(1000));
  EXPECT_EQ(sw.CellsSent(vc), 1000u);
  EXPECT_EQ(sw.Backlog(vc), 0u);
}

TEST(Crossbar, ConservationSentPlusBacklog) {
  FastRand rng(3);
  CrossbarSwitch sw(Opts(4), &rng);
  std::vector<CrossbarSwitch::CircuitId> vcs;
  for (int i = 0; i < 4; ++i) {
    vcs.push_back(sw.AddCircuit(i, (i + 1) % 4, 5));
  }
  uint64_t enqueued = 0;
  for (int i = 0; i < 500; ++i) {
    for (const auto vc : vcs) {
      if (sw.Enqueue(vc, At(0))) {
        ++enqueued;
      }
    }
  }
  sw.AdvanceTo(At(300));
  uint64_t accounted = 0;
  for (const auto vc : vcs) {
    accounted += sw.CellsSent(vc) + sw.Backlog(vc);
  }
  EXPECT_EQ(accounted, enqueued);
}

TEST(Crossbar, OutputContentionSharesByTickets) {
  // Two inputs feed one output 3:1; no other traffic, so the output is the
  // only bottleneck.
  FastRand rng(4);
  CrossbarSwitch sw(Opts(2), &rng);
  const auto rich = sw.AddCircuit(0, 0, 300);
  const auto poor = sw.AddCircuit(1, 0, 100);
  SimTime now = At(0);
  for (int step = 0; step < 200; ++step) {
    while (sw.Backlog(rich) < 512) {
      sw.Enqueue(rich, now);
    }
    while (sw.Backlog(poor) < 512) {
      sw.Enqueue(poor, now);
    }
    now = now + SimDuration::Micros(100);
    sw.AdvanceTo(now);
  }
  const double ratio = static_cast<double>(sw.CellsSent(rich)) /
                       static_cast<double>(sw.CellsSent(poor));
  EXPECT_NEAR(ratio, 3.0, 0.4);
  // Output fully utilized: one cell per slot.
  EXPECT_EQ(sw.CellsSent(rich) + sw.CellsSent(poor), sw.slots_elapsed());
}

TEST(Crossbar, InputContentionSharesByTickets) {
  // One input feeds two outputs 2:1: the input can send only one cell per
  // slot, so its capacity splits by tickets.
  FastRand rng(5);
  CrossbarSwitch sw(Opts(2), &rng);
  const auto big = sw.AddCircuit(0, 0, 200);
  const auto small = sw.AddCircuit(0, 1, 100);
  SimTime now = At(0);
  for (int step = 0; step < 200; ++step) {
    while (sw.Backlog(big) < 512) {
      sw.Enqueue(big, now);
    }
    while (sw.Backlog(small) < 512) {
      sw.Enqueue(small, now);
    }
    now = now + SimDuration::Micros(100);
    sw.AdvanceTo(now);
  }
  EXPECT_EQ(sw.CellsSent(big) + sw.CellsSent(small), sw.slots_elapsed());
  const double ratio = static_cast<double>(sw.CellsSent(big)) /
                       static_cast<double>(sw.CellsSent(small));
  EXPECT_NEAR(ratio, 2.0, 0.3);
}

TEST(Crossbar, DropsWhenBufferFull) {
  FastRand rng(6);
  CrossbarSwitch::Options o = Opts(2);
  o.buffer_cells = 4;
  CrossbarSwitch sw(o, &rng);
  const auto vc = sw.AddCircuit(0, 0, 1);
  for (int i = 0; i < 6; ++i) {
    sw.Enqueue(vc, At(0));
  }
  EXPECT_EQ(sw.Backlog(vc), 4u);
  EXPECT_EQ(sw.CellsDropped(vc), 2u);
}

// The classic randomized-matching result: with uniform saturated traffic,
// one proposal round achieves ~(1 - 1/e) ~ 0.63 of the bisection
// bandwidth; more rounds approach 1.
class MatchingRounds : public ::testing::TestWithParam<int> {};

TEST_P(MatchingRounds, SaturationThroughput) {
  const int rounds = GetParam();
  FastRand rng(static_cast<uint32_t>(100 + rounds));
  constexpr int kPorts = 8;
  CrossbarSwitch sw(Opts(kPorts, rounds), &rng);
  std::vector<CrossbarSwitch::CircuitId> vcs;
  for (int in = 0; in < kPorts; ++in) {
    for (int out = 0; out < kPorts; ++out) {
      vcs.push_back(sw.AddCircuit(in, out, 10));
    }
  }
  SimTime now = At(0);
  for (int step = 0; step < 50; ++step) {
    for (const auto vc : vcs) {
      while (sw.Backlog(vc) < 64) {
        sw.Enqueue(vc, now);
      }
    }
    now = now + SimDuration::Micros(100);
    sw.AdvanceTo(now);
  }
  const double throughput =
      static_cast<double>(sw.total_cells_sent()) /
      (static_cast<double>(sw.slots_elapsed()) * kPorts);
  if (rounds == 1) {
    EXPECT_NEAR(throughput, 0.63, 0.05);
  } else if (rounds == 2) {
    EXPECT_GT(throughput, 0.75);
  } else {
    EXPECT_GT(throughput, 0.9);
  }
}

INSTANTIATE_TEST_SUITE_P(Rounds, MatchingRounds, ::testing::Values(1, 2, 4));

}  // namespace
}  // namespace lottery
