// Golden-file tests for lotlint (tools/lotlint). Each fixture in
// tests/lotlint_fixtures/ carries known violations; the tests pin the
// exact rule/line sets so any analyzer change that adds false positives or
// loses true positives fails here before it fails on the real tree.
//
// Fixtures use a .txt suffix so the repo-wide `lotlint src bench tests`
// run (which the static-analysis CI job keeps at zero findings) never
// scans them; the tests re-map them to virtual src/core/ paths to put them
// in rule scope.

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "tools/lotlint/lotlint.h"

namespace {

std::string ReadFixture(const std::string& name) {
  const std::string path = std::string(LOTLINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// (rule, line) pairs for compact golden comparison.
std::multiset<std::pair<std::string, int>> RuleLines(
    const lotlint::Report& report) {
  std::multiset<std::pair<std::string, int>> out;
  for (const lotlint::Finding& f : report.findings) {
    out.insert({f.rule, f.line});
  }
  return out;
}

TEST(LotlintNondet, FlagsRngAndClocksSuppressesAudited) {
  const lotlint::Report report =
      lotlint::AnalyzeFile("src/core/nondet.cc", ReadFixture("nondet.cc.txt"));
  const std::multiset<std::pair<std::string, int>> expected = {
      {"D1-nondet", 12},     // std::random_device
      {"D1-nondet", 13},     // srand
      {"D1-nondet", 14},     // rand
      {"D1-wallclock", 18},  // time(nullptr)
      {"D1-wallclock", 19},  // system_clock
      {"D1-wallclock", 20},  // steady_clock (src/core scope)
  };
  EXPECT_EQ(RuleLines(report), expected);
  EXPECT_EQ(report.suppressed, 1);  // the wallclock-ok line
}

TEST(LotlintNondet, BenchScopeAllowsSteadyClock) {
  const lotlint::Report report =
      lotlint::AnalyzeFile("bench/nondet.cc", ReadFixture("nondet.cc.txt"));
  // steady_clock is legal in bench harness code; rand/srand/random_device,
  // time() and system_clock stay banned everywhere — the line-20
  // steady_clock finding from the src/core scan must be the only one gone.
  EXPECT_EQ(RuleLines(report),
            (std::multiset<std::pair<std::string, int>>{{"D1-nondet", 12},
                                                        {"D1-nondet", 13},
                                                        {"D1-nondet", 14},
                                                        {"D1-wallclock", 18},
                                                        {"D1-wallclock", 19}}));
}

TEST(LotlintUnordered, CrossFileDeclThenIterate) {
  const lotlint::Report report = lotlint::Analyze(
      {{"src/core/unordered.h", ReadFixture("unordered.h.txt")},
       {"src/core/unordered.cc", ReadFixture("unordered.cc.txt")}});
  const std::multiset<std::pair<std::string, int>> expected = {
      {"D2-unordered-iter", 7},   // by_id_ (unordered_map)
      {"D2-unordered-iter", 10},  // dirty_ (unordered_set)
      {"D2-unordered-iter", 13},  // by_ptr_ (pointer-keyed std::map)
  };
  EXPECT_EQ(RuleLines(report), expected);
  EXPECT_EQ(report.suppressed, 1);  // the ordered-ok annotated loop
}

TEST(LotlintUnordered, StemScopingKeepsUnrelatedFilesClean) {
  // Same iteration code, but the declaring header has a different stem:
  // the decls must not leak onto unrelated files.
  const lotlint::Report report = lotlint::Analyze(
      {{"src/core/other.h", ReadFixture("unordered.h.txt")},
       {"src/core/unordered.cc", ReadFixture("unordered.cc.txt")}});
  EXPECT_TRUE(report.findings.empty())
      << report.findings.front().file << ":" << report.findings.front().line;
}

TEST(LotlintUnordered, OutOfScopeDirUnflagged) {
  const lotlint::Report report = lotlint::Analyze(
      {{"src/obs/unordered.h", ReadFixture("unordered.h.txt")},
       {"src/obs/unordered.cc", ReadFixture("unordered.cc.txt")}});
  EXPECT_TRUE(report.findings.empty());
}

TEST(LotlintFloat, FlagsTicketPathDoubles) {
  const lotlint::Report report = lotlint::AnalyzeFile(
      "src/core/floatmath.cc", ReadFixture("floatmath.cc.txt"));
  const std::multiset<std::pair<std::string, int>> expected = {
      {"D3-float-ticket", 6},
      {"D3-float-ticket", 7},
      {"D3-float-ticket", 10},
      {"D3-float-ticket", 11},
  };
  EXPECT_EQ(RuleLines(report), expected);
  EXPECT_EQ(report.suppressed, 2);  // float-ok signature + its cast line
}

TEST(LotlintFloat, BenchScopeIsExempt) {
  const lotlint::Report report = lotlint::AnalyzeFile(
      "bench/floatmath.cc", ReadFixture("floatmath.cc.txt"));
  EXPECT_TRUE(report.findings.empty());
}

TEST(LotlintMutator, RequiresInvariantCheckInDefinitions) {
  const lotlint::Report report = lotlint::AnalyzeFile(
      "src/core/mutator.cc", ReadFixture("mutator.cc.txt"));
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule, "S1-mutator-invariant");
  EXPECT_EQ(report.findings[0].line, 6);  // CurrencyTable::Fund
  EXPECT_NE(report.findings[0].message.find("CurrencyTable::Fund"),
            std::string::npos);
  EXPECT_EQ(report.suppressed, 1);  // invariant-ok DestroyTicket
}

TEST(LotlintClean, CleanFileHasNoFindings) {
  const lotlint::Report report =
      lotlint::AnalyzeFile("src/core/clean.cc", ReadFixture("clean.cc.txt"));
  EXPECT_TRUE(report.findings.empty());
  EXPECT_EQ(report.suppressed, 0);
}

TEST(LotlintWaivers, FileWideWaiverSuppressesWholeFile) {
  const std::string content =
      "// lotlint: file float-ok — fixture\n"
      "double a;\n"
      "double b;\n";
  const lotlint::Report report =
      lotlint::AnalyzeFile("src/core/waived.cc", content);
  EXPECT_TRUE(report.findings.empty());
  EXPECT_EQ(report.suppressed, 2);
}

TEST(LotlintWaivers, WrongKeywordDoesNotSuppress) {
  const std::string content = "double a;  // lotlint: ordered-ok\n";
  const lotlint::Report report =
      lotlint::AnalyzeFile("src/core/waived.cc", content);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule, "D3-float-ticket");
  EXPECT_EQ(report.suppressed, 0);
}

TEST(LotlintLexer, IgnoresCommentsAndStrings) {
  const std::string content =
      "// rand() in a comment\n"
      "/* std::random_device in a block comment */\n"
      "const char* s = \"rand() time(0) system_clock\";\n"
      "const char* r = R\"(rand() inside a raw string)\";\n";
  const lotlint::Report report =
      lotlint::AnalyzeFile("src/core/comments.cc", content);
  EXPECT_TRUE(report.findings.empty());
}

TEST(LotlintJson, SchemaStableOutput) {
  lotlint::Report report = lotlint::AnalyzeFile(
      "src/core/floatmath.cc", ReadFixture("floatmath.cc.txt"));
  const std::string json = lotlint::ReportToJson(report);
  // Key order and shape are part of the contract: CI diffs this output.
  EXPECT_EQ(json.find("{\n  \"findings\": ["), 0u);
  EXPECT_NE(json.find("\"count\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"suppressed\": 2"), std::string::npos);
  EXPECT_NE(
      json.find("\"file\": \"src/core/floatmath.cc\", \"line\": 6, "
                "\"rule\": \"D3-float-ticket\""),
      std::string::npos);
  // Empty report: stable empty shape.
  const std::string empty = lotlint::ReportToJson(lotlint::Report{});
  EXPECT_EQ(empty,
            "{\n  \"findings\": [],\n  \"count\": 0,\n  \"suppressed\": 0,\n"
            "  \"baselined\": 0,\n  \"stale\": []\n}\n");
}

TEST(LotlintUnordered, IncludeGraphReachesSubdirHeaders) {
  // The decl lives in src/core/detail/ptr_map.h; the iterating file is
  // src/core/user.cc — different stems, matched only through the quoted
  // include. stranger.cc iterates the same name without the include and
  // must stay clean.
  const lotlint::Report report = lotlint::Analyze(
      {{"src/core/detail/ptr_map.h", ReadFixture("detail_ptr_map.h.txt")},
       {"src/core/user.cc", ReadFixture("detail_user.cc.txt")},
       {"src/core/stranger.cc", ReadFixture("detail_stranger.cc.txt")}});
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule, "D2-unordered-iter");
  EXPECT_EQ(report.findings[0].file, "src/core/user.cc");
  EXPECT_EQ(report.findings[0].line, 10);
}

TEST(LotlintCallGraph, TransitiveRulesReachHelpersAcrossTus) {
  const lotlint::Report report = lotlint::Analyze(
      {{"src/sched/cg1_entry.cc", ReadFixture("cg1_entry.cc.txt")},
       {"src/obs/cg1_helper.cc", ReadFixture("cg1_helper.cc.txt")}});
  // ObserveLatency (reached from PickNext) uses a wall clock and iterates
  // an unordered_map; MixWeights (reached from Draw, a ticket-math root)
  // uses double. NotReached uses steady_clock but is never called — the
  // rules must stay quiet about it.
  const std::multiset<std::pair<std::string, int>> expected = {
      {"CG1-wallclock", 13},
      {"CG1-unordered-iter", 14},
      {"CG1-float", 21},
  };
  EXPECT_EQ(RuleLines(report), expected);
  for (const lotlint::Finding& f : report.findings) {
    EXPECT_EQ(f.file, "src/obs/cg1_helper.cc");
  }
}

TEST(LotlintCallGraph, ExportsFunctionsAndEdges) {
  const lotlint::Report report = lotlint::Analyze(
      {{"src/sched/cg1_entry.cc", ReadFixture("cg1_entry.cc.txt")},
       {"src/obs/cg1_helper.cc", ReadFixture("cg1_helper.cc.txt")}});
  bool saw_observe = false, saw_not_reached = false;
  for (const lotlint::FunctionNode& f : report.functions) {
    if (f.name == "ObserveLatency") {
      saw_observe = true;
      EXPECT_TRUE(f.reachable);
      EXPECT_EQ(f.root, "PickNext");
    }
    if (f.name == "NotReached") {
      saw_not_reached = true;
      EXPECT_FALSE(f.reachable);
      EXPECT_EQ(f.root, "");
    }
  }
  EXPECT_TRUE(saw_observe);
  EXPECT_TRUE(saw_not_reached);
  bool saw_edge = false;
  for (const lotlint::CallEdge& e : report.edges) {
    if (e.caller == "PickNext" && e.callee == "ObserveLatency") {
      saw_edge = true;
      EXPECT_EQ(e.file, "src/sched/cg1_entry.cc");
      EXPECT_EQ(e.line, 10);
    }
  }
  EXPECT_TRUE(saw_edge);
  const std::string json = lotlint::CallGraphToJson(report);
  EXPECT_EQ(json.find("{\n  \"functions\": ["), 0u);
  EXPECT_NE(json.find("\"edges\": ["), std::string::npos);
  EXPECT_NE(json.find("\"root\": \"PickNext\""), std::string::npos);
}

TEST(LotlintRng, SeedAndStreamDiscipline) {
  const lotlint::Report report = lotlint::AnalyzeFile(
      "src/core/rngstream.cc", ReadFixture("rngstream.cc.txt"));
  const std::multiset<std::pair<std::string, int>> expected = {
      {"R2-rng-stream", 18},  // bad_ draws without a stream annotation
      {"R1-rng-seed", 21},    // default-constructed temporary
      {"R2-rng-stream", 21},  // ...and its draw is unattributable
      {"R1-rng-seed", 24},    // FastRand local; never seeded
      {"R2-rng-stream", 25},
  };
  EXPECT_EQ(RuleLines(report), expected);
  // legacy_'s rng-seed-ok + DrawWaived's stream-ok; the stream(lottery)
  // annotation is a declaration, not a waiver, and counts for neither.
  EXPECT_EQ(report.suppressed, 2);
  EXPECT_TRUE(report.stale.empty());
}

TEST(LotlintRng, SmpBalanceStreamDiscipline) {
  // The SMP balancer's contract: every steal/price draw must ride a named
  // stream (balance for steal decisions, device for crossbar jitter) so
  // per-CPU dispatch sequences stay bit-identical under rebalance churn.
  // The fixture models the smp_scheduler idiom — annotated balance_rng_ /
  // xbar_rng_ draws pass; a migrant pick from an unannotated scratch RNG
  // and an unseeded temporary are the leaks R1/R2 must flag.
  const lotlint::Report report = lotlint::AnalyzeFile(
      "src/sched/smp/smp_steal.cc", ReadFixture("smp_balance_stream.cc.txt"));
  const std::multiset<std::pair<std::string, int>> expected = {
      {"R2-rng-stream", 29},  // scratch_rng_ draw has no stream annotation
      {"R1-rng-seed", 31},    // default-constructed FastRand temporary
      {"R2-rng-stream", 31},  // ...whose draw is unattributable
  };
  EXPECT_EQ(RuleLines(report), expected);
  // stream(balance)/stream(device) are declarations, not waivers.
  EXPECT_EQ(report.suppressed, 0);
  EXPECT_TRUE(report.stale.empty());
}

TEST(LotlintLockOrder, FlagsDirectAndInterproceduralCycles) {
  const lotlint::Report report = lotlint::AnalyzeFile(
      "src/sim/lockorder.cc", ReadFixture("lockorder.cc.txt"));
  // mu_a_/mu_b_ inverted directly (TakeAB vs TakeBA); mu_c_/mu_d_ inverted
  // through HelperTakesD while TakeCThenHelper holds mu_c_.
  const std::multiset<std::pair<std::string, int>> expected = {
      {"L1-lock-order", 14},
      {"L1-lock-order", 28},
  };
  EXPECT_EQ(RuleLines(report), expected);
}

TEST(LotlintTsa, FullyAnnotatedHeaderIsClean) {
  const lotlint::Report report =
      lotlint::AnalyzeFile("src/sim/tsa_good.h", ReadFixture("tsa_good.h.txt"));
  EXPECT_TRUE(report.findings.empty())
      << report.findings.front().rule << "@" << report.findings.front().line;
}

TEST(LotlintTsa, CatchesStrippedAnnotations) {
  const lotlint::Report report =
      lotlint::AnalyzeFile("src/sim/tsa_bad.h", ReadFixture("tsa_bad.h.txt"));
  const std::multiset<std::pair<std::string, int>> expected = {
      {"L2-tsa", 8},   // CAPABILITY class without RELEASE-family methods
      {"L2-tsa", 14},  // Seq member with no GUARDED_BY(seq_)
  };
  EXPECT_EQ(RuleLines(report), expected);
}

TEST(LotlintFingerprint, StableAcrossLineChurn) {
  const std::string content = ReadFixture("floatmath.cc.txt");
  const lotlint::Report before =
      lotlint::AnalyzeFile("src/core/floatmath.cc", content);
  ASSERT_EQ(before.findings.size(), 4u);
  std::multiset<std::string> fps_before;
  for (const lotlint::Finding& f : before.findings) {
    ASSERT_EQ(f.fingerprint.size(), 16u);
    EXPECT_EQ(f.fingerprint.find_first_not_of("0123456789abcdef"),
              std::string::npos);
    fps_before.insert(f.fingerprint);
  }
  // Shift every finding down three lines: fingerprints hash the rule, the
  // enclosing function and the normalized snippet, not the line number.
  const lotlint::Report after = lotlint::AnalyzeFile(
      "src/core/floatmath.cc", "//\n//\n//\n" + content);
  std::multiset<std::string> fps_after;
  for (const lotlint::Finding& f : after.findings) {
    fps_after.insert(f.fingerprint);
  }
  EXPECT_EQ(fps_before, fps_after);
}

TEST(LotlintBaseline, RoundTripSuppressesKnownFindings) {
  const std::vector<std::pair<std::string, std::string>> files = {
      {"src/core/floatmath.cc", ReadFixture("floatmath.cc.txt")}};
  const lotlint::Report first = lotlint::Analyze(files);
  ASSERT_EQ(first.findings.size(), 4u);
  lotlint::Options options;
  options.baseline = lotlint::ParseBaseline(lotlint::BaselineToJson(first));
  const lotlint::Report second = lotlint::Analyze(files, options);
  EXPECT_TRUE(second.findings.empty());
  EXPECT_EQ(second.baselined, 4);
  const std::string json = lotlint::ReportToJson(second);
  EXPECT_NE(json.find("\"baselined\": 4"), std::string::npos);
}

TEST(LotlintStale, ReportsWaiversThatSuppressNothing) {
  const lotlint::Report report = lotlint::AnalyzeFile(
      "src/core/stale.cc", "int x = 1;  // lotlint: nondet-ok\n");
  EXPECT_TRUE(report.findings.empty());
  ASSERT_EQ(report.stale.size(), 1u);
  EXPECT_EQ(report.stale[0].file, "src/core/stale.cc");
  EXPECT_EQ(report.stale[0].line, 1);
  EXPECT_EQ(report.stale[0].keyword, "nondet-ok");
  // A waiver that fires is not stale.
  const lotlint::Report used = lotlint::AnalyzeFile(
      "src/core/used.cc", "double a;  // lotlint: float-ok audited\n");
  EXPECT_TRUE(used.findings.empty());
  EXPECT_EQ(used.suppressed, 1);
  EXPECT_TRUE(used.stale.empty());
}

// The timeseries sampler contract: Sample() runs inside RunUntil, so a wall
// clock anywhere in the sample path is a CG1 finding even though
// src/obs/timeseries/ is outside the D1-wallclock base scope — and the
// clean, sim-time-only shape must stay rule-silent despite being reachable.
TEST(LotlintSampler, WallClockInSamplePathIsCaught) {
  const lotlint::Report report = lotlint::Analyze(
      {{"src/sim/sampler_entry.cc", ReadFixture("sampler_entry.cc.txt")},
       {"src/obs/timeseries/sampler_fix.cc",
        ReadFixture("sampler_dirty.cc.txt")}});
  const std::multiset<std::pair<std::string, int>> expected = {
      {"CG1-wallclock", 15},  // steady_clock::now() inside Sample()
  };
  EXPECT_EQ(RuleLines(report), expected);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].file, "src/obs/timeseries/sampler_fix.cc");
}

TEST(LotlintSampler, SimTimeOnlySamplePathIsClean) {
  const lotlint::Report report = lotlint::Analyze(
      {{"src/sim/sampler_entry.cc", ReadFixture("sampler_entry.cc.txt")},
       {"src/obs/timeseries/sampler_fix.cc",
        ReadFixture("sampler_clean.cc.txt")}});
  EXPECT_TRUE(report.findings.empty()) << report.findings.size();
  // Sample is genuinely on the RunUntil path — the clean result must come
  // from the code being clean, not from the call graph missing the edge.
  bool saw_sample = false;
  for (const lotlint::FunctionNode& f : report.functions) {
    if (f.name == "Sample") {
      saw_sample = true;
      EXPECT_TRUE(f.reachable);
      EXPECT_EQ(f.root, "RunUntil");
    }
  }
  EXPECT_TRUE(saw_sample);
}

}  // namespace
