// Golden-file tests for lotlint (tools/lotlint). Each fixture in
// tests/lotlint_fixtures/ carries known violations; the tests pin the
// exact rule/line sets so any analyzer change that adds false positives or
// loses true positives fails here before it fails on the real tree.
//
// Fixtures use a .txt suffix so the repo-wide `lotlint src bench tests`
// run (which the static-analysis CI job keeps at zero findings) never
// scans them; the tests re-map them to virtual src/core/ paths to put them
// in rule scope.

#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "tools/lotlint/lotlint.h"

namespace {

std::string ReadFixture(const std::string& name) {
  const std::string path = std::string(LOTLINT_FIXTURE_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.is_open()) << "missing fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

// (rule, line) pairs for compact golden comparison.
std::multiset<std::pair<std::string, int>> RuleLines(
    const lotlint::Report& report) {
  std::multiset<std::pair<std::string, int>> out;
  for (const lotlint::Finding& f : report.findings) {
    out.insert({f.rule, f.line});
  }
  return out;
}

TEST(LotlintNondet, FlagsRngAndClocksSuppressesAudited) {
  const lotlint::Report report =
      lotlint::AnalyzeFile("src/core/nondet.cc", ReadFixture("nondet.cc.txt"));
  const std::multiset<std::pair<std::string, int>> expected = {
      {"D1-nondet", 12},     // std::random_device
      {"D1-nondet", 13},     // srand
      {"D1-nondet", 14},     // rand
      {"D1-wallclock", 18},  // time(nullptr)
      {"D1-wallclock", 19},  // system_clock
      {"D1-wallclock", 20},  // steady_clock (src/core scope)
  };
  EXPECT_EQ(RuleLines(report), expected);
  EXPECT_EQ(report.suppressed, 1);  // the wallclock-ok line
}

TEST(LotlintNondet, BenchScopeAllowsSteadyClock) {
  const lotlint::Report report =
      lotlint::AnalyzeFile("bench/nondet.cc", ReadFixture("nondet.cc.txt"));
  // steady_clock is legal in bench harness code; rand/srand/random_device,
  // time() and system_clock stay banned everywhere — the line-20
  // steady_clock finding from the src/core scan must be the only one gone.
  EXPECT_EQ(RuleLines(report),
            (std::multiset<std::pair<std::string, int>>{{"D1-nondet", 12},
                                                        {"D1-nondet", 13},
                                                        {"D1-nondet", 14},
                                                        {"D1-wallclock", 18},
                                                        {"D1-wallclock", 19}}));
}

TEST(LotlintUnordered, CrossFileDeclThenIterate) {
  const lotlint::Report report = lotlint::Analyze(
      {{"src/core/unordered.h", ReadFixture("unordered.h.txt")},
       {"src/core/unordered.cc", ReadFixture("unordered.cc.txt")}});
  const std::multiset<std::pair<std::string, int>> expected = {
      {"D2-unordered-iter", 7},   // by_id_ (unordered_map)
      {"D2-unordered-iter", 10},  // dirty_ (unordered_set)
      {"D2-unordered-iter", 13},  // by_ptr_ (pointer-keyed std::map)
  };
  EXPECT_EQ(RuleLines(report), expected);
  EXPECT_EQ(report.suppressed, 1);  // the ordered-ok annotated loop
}

TEST(LotlintUnordered, StemScopingKeepsUnrelatedFilesClean) {
  // Same iteration code, but the declaring header has a different stem:
  // the decls must not leak onto unrelated files.
  const lotlint::Report report = lotlint::Analyze(
      {{"src/core/other.h", ReadFixture("unordered.h.txt")},
       {"src/core/unordered.cc", ReadFixture("unordered.cc.txt")}});
  EXPECT_TRUE(report.findings.empty())
      << report.findings.front().file << ":" << report.findings.front().line;
}

TEST(LotlintUnordered, OutOfScopeDirUnflagged) {
  const lotlint::Report report = lotlint::Analyze(
      {{"src/obs/unordered.h", ReadFixture("unordered.h.txt")},
       {"src/obs/unordered.cc", ReadFixture("unordered.cc.txt")}});
  EXPECT_TRUE(report.findings.empty());
}

TEST(LotlintFloat, FlagsTicketPathDoubles) {
  const lotlint::Report report = lotlint::AnalyzeFile(
      "src/core/floatmath.cc", ReadFixture("floatmath.cc.txt"));
  const std::multiset<std::pair<std::string, int>> expected = {
      {"D3-float-ticket", 6},
      {"D3-float-ticket", 7},
      {"D3-float-ticket", 10},
      {"D3-float-ticket", 11},
  };
  EXPECT_EQ(RuleLines(report), expected);
  EXPECT_EQ(report.suppressed, 2);  // float-ok signature + its cast line
}

TEST(LotlintFloat, BenchScopeIsExempt) {
  const lotlint::Report report = lotlint::AnalyzeFile(
      "bench/floatmath.cc", ReadFixture("floatmath.cc.txt"));
  EXPECT_TRUE(report.findings.empty());
}

TEST(LotlintMutator, RequiresInvariantCheckInDefinitions) {
  const lotlint::Report report = lotlint::AnalyzeFile(
      "src/core/mutator.cc", ReadFixture("mutator.cc.txt"));
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule, "S1-mutator-invariant");
  EXPECT_EQ(report.findings[0].line, 6);  // CurrencyTable::Fund
  EXPECT_NE(report.findings[0].message.find("CurrencyTable::Fund"),
            std::string::npos);
  EXPECT_EQ(report.suppressed, 1);  // invariant-ok DestroyTicket
}

TEST(LotlintClean, CleanFileHasNoFindings) {
  const lotlint::Report report =
      lotlint::AnalyzeFile("src/core/clean.cc", ReadFixture("clean.cc.txt"));
  EXPECT_TRUE(report.findings.empty());
  EXPECT_EQ(report.suppressed, 0);
}

TEST(LotlintWaivers, FileWideWaiverSuppressesWholeFile) {
  const std::string content =
      "// lotlint: file float-ok — fixture\n"
      "double a;\n"
      "double b;\n";
  const lotlint::Report report =
      lotlint::AnalyzeFile("src/core/waived.cc", content);
  EXPECT_TRUE(report.findings.empty());
  EXPECT_EQ(report.suppressed, 2);
}

TEST(LotlintWaivers, WrongKeywordDoesNotSuppress) {
  const std::string content = "double a;  // lotlint: ordered-ok\n";
  const lotlint::Report report =
      lotlint::AnalyzeFile("src/core/waived.cc", content);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].rule, "D3-float-ticket");
  EXPECT_EQ(report.suppressed, 0);
}

TEST(LotlintLexer, IgnoresCommentsAndStrings) {
  const std::string content =
      "// rand() in a comment\n"
      "/* std::random_device in a block comment */\n"
      "const char* s = \"rand() time(0) system_clock\";\n"
      "const char* r = R\"(rand() inside a raw string)\";\n";
  const lotlint::Report report =
      lotlint::AnalyzeFile("src/core/comments.cc", content);
  EXPECT_TRUE(report.findings.empty());
}

TEST(LotlintJson, SchemaStableOutput) {
  lotlint::Report report = lotlint::AnalyzeFile(
      "src/core/floatmath.cc", ReadFixture("floatmath.cc.txt"));
  const std::string json = lotlint::ReportToJson(report);
  // Key order and shape are part of the contract: CI diffs this output.
  EXPECT_EQ(json.find("{\n  \"findings\": ["), 0u);
  EXPECT_NE(json.find("\"count\": 4"), std::string::npos);
  EXPECT_NE(json.find("\"suppressed\": 2"), std::string::npos);
  EXPECT_NE(
      json.find("\"file\": \"src/core/floatmath.cc\", \"line\": 6, "
                "\"rule\": \"D3-float-ticket\""),
      std::string::npos);
  // Empty report: stable empty shape.
  const std::string empty = lotlint::ReportToJson(lotlint::Report{});
  EXPECT_EQ(empty,
            "{\n  \"findings\": [],\n  \"count\": 0,\n  \"suppressed\": 0\n}\n");
}

}  // namespace
