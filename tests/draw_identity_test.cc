// Differential proof that speculative draw batching is invisible: batched
// draws must produce the exact winner sequence — and leave the RNG in the
// exact state — of unbatched draws, across 32 seeds, at both the
// TreeLottery layer (DrawBatch vs k Draw calls) and the scheduler layer
// (batch_window=8 vs batching disabled), including runs with mid-stream
// ticket mutations and external consumers of the scheduler's RNG.

#include <gtest/gtest.h>

#include <vector>

#include "src/core/lottery_scheduler.h"
#include "src/core/tree_lottery.h"
#include "src/util/fastrand.h"

namespace lottery {
namespace {

const SimTime kT0 = SimTime::Zero();
const SimDuration kQuantum = SimDuration::Millis(100);

TEST(DrawIdentity, TreeBatchEqualsSequentialDraws) {
  for (uint32_t seed = 1; seed <= 32; ++seed) {
    TreeLottery tree;
    FastRand shape(seed * 977u);
    const size_t n = 3 + shape.NextBelow(200);
    for (size_t i = 0; i < n; ++i) {
      tree.Add(1 + shape.NextBelow(5000));
    }
    for (size_t k : {size_t{1}, size_t{2}, size_t{7}, size_t{8}, size_t{33},
                     size_t{64}}) {
      FastRand batched(seed);
      FastRand unbatched(seed);
      std::vector<uint64_t> values(k);
      std::vector<size_t> slots(k);
      ASSERT_EQ(tree.DrawBatch(batched, k, values.data(), slots.data()), k);
      for (size_t i = 0; i < k; ++i) {
        uint64_t value = 0;
        const auto slot = tree.Draw(unbatched, &value);
        ASSERT_TRUE(slot.has_value());
        EXPECT_EQ(slots[i], *slot) << "seed " << seed << " draw " << i;
        EXPECT_EQ(values[i], value) << "seed " << seed << " draw " << i;
      }
      EXPECT_EQ(batched.state(), unbatched.state()) << "seed " << seed;
    }
  }
}

TEST(DrawIdentity, ResolveValuesMatchesSlotForValue) {
  for (uint32_t seed = 1; seed <= 32; ++seed) {
    TreeLottery tree;
    FastRand shape(seed * 31u + 7u);
    const size_t n = 1 + shape.NextBelow(60);
    for (size_t i = 0; i < n; ++i) {
      tree.Add(shape.NextBelow(40));  // zero weights allowed
    }
    if (tree.total() == 0) {
      continue;
    }
    std::vector<uint64_t> values;
    for (int i = 0; i < 100; ++i) {
      values.push_back(shape.NextBelow64(tree.total()));
    }
    std::vector<size_t> slots(values.size());
    tree.ResolveValues(values.size(), values.data(), slots.data());
    for (size_t i = 0; i < values.size(); ++i) {
      EXPECT_EQ(slots[i], tree.SlotForValue(values[i]));
    }
  }
}

// Drives one scheduler through `picks` dispatch cycles and returns the
// winner sequence. `mutate_every` > 0 reprices a thread's funding ticket on
// that cadence (forcing batch flushes); `poke_rng_every` > 0 draws from the
// scheduler's own RNG between picks on that cadence (the kernel services
// do this for jitter), which must invalidate — never corrupt — a batch.
std::vector<ThreadId> RunSchedule(uint32_t seed, uint32_t batch_window,
                                  int threads, int picks, int mutate_every,
                                  int poke_rng_every) {
  obs::Registry registry;
  LotteryScheduler::Options opts;
  opts.seed = seed;
  opts.backend = RunQueueBackend::kTree;
  opts.batch_window = batch_window;
  opts.metrics = &registry;
  LotteryScheduler sched(opts);
  std::vector<Ticket*> funding;
  for (int i = 0; i < threads; ++i) {
    const ThreadId id = static_cast<ThreadId>(i + 1);
    sched.AddThread(id, kT0);
    funding.push_back(sched.FundThread(id, sched.table().base(),
                                       100 + (i % 13) * 50));
    sched.OnReady(id, kT0);
  }
  std::vector<ThreadId> winners;
  for (int i = 0; i < picks; ++i) {
    if (mutate_every > 0 && i % mutate_every == mutate_every - 1) {
      Ticket* t = funding[static_cast<size_t>(i) % funding.size()];
      sched.table().SetAmount(t, 100 + (i % 29) * 10);
    }
    if (poke_rng_every > 0 && i % poke_rng_every == poke_rng_every - 1) {
      sched.rng().Next();
    }
    const ThreadId winner = sched.PickNext(kT0);
    EXPECT_NE(winner, kInvalidThreadId);
    winners.push_back(winner);
    // Full quantum: no compensation ticket, the steady state that lets
    // batches form and survive.
    sched.OnQuantumEnd(winner, kQuantum, kQuantum, kT0);
    sched.OnReady(winner, kT0);
  }
  return winners;
}

TEST(DrawIdentity, SchedulerBatchedEqualsUnbatchedSteadyState) {
  for (uint32_t seed = 1; seed <= 32; ++seed) {
    const auto batched = RunSchedule(seed, 8, 12, 400, 0, 0);
    const auto unbatched = RunSchedule(seed, 0, 12, 400, 0, 0);
    ASSERT_EQ(batched, unbatched) << "seed " << seed;
  }
}

TEST(DrawIdentity, SchedulerBatchedEqualsUnbatchedUnderMutations) {
  for (uint32_t seed = 1; seed <= 32; ++seed) {
    // Reprices land mid-batch (every 11 picks vs a window of 8): every
    // flush path must leave the stream exactly where unbatched draws do.
    const auto batched = RunSchedule(seed, 8, 12, 400, 11, 0);
    const auto unbatched = RunSchedule(seed, 0, 12, 400, 11, 0);
    ASSERT_EQ(batched, unbatched) << "seed " << seed;
  }
}

TEST(DrawIdentity, SchedulerBatchedEqualsUnbatchedWithExternalRngDraws) {
  for (uint32_t seed = 1; seed <= 32; ++seed) {
    const auto batched = RunSchedule(seed, 8, 12, 400, 0, 13);
    const auto unbatched = RunSchedule(seed, 0, 12, 400, 0, 13);
    ASSERT_EQ(batched, unbatched) << "seed " << seed;
  }
}

TEST(DrawIdentity, SchedulerBatchingActuallyEngages) {
  // Guard against the identity tests passing vacuously: in the steady
  // state the batch counters must show real batched serves.
  obs::Registry registry;
  LotteryScheduler::Options opts;
  opts.seed = 4242;
  opts.backend = RunQueueBackend::kTree;
  opts.batch_window = 8;
  opts.metrics = &registry;
  LotteryScheduler sched(opts);
  for (int i = 0; i < 16; ++i) {
    const ThreadId id = static_cast<ThreadId>(i + 1);
    sched.AddThread(id, kT0);
    sched.FundThread(id, sched.table().base(), 100 + i * 10);
    sched.OnReady(id, kT0);
  }
  for (int i = 0; i < 400; ++i) {
    const ThreadId winner = sched.PickNext(kT0);
    ASSERT_NE(winner, kInvalidThreadId);
    sched.OnQuantumEnd(winner, kQuantum, kQuantum, kT0);
    sched.OnReady(winner, kT0);
  }
  const obs::Counter* formed = registry.FindCounter("lottery.batch_formed");
  const obs::Counter* served = registry.FindCounter("lottery.batch_draws");
  ASSERT_NE(formed, nullptr);
  ASSERT_NE(served, nullptr);
  EXPECT_GT(formed->value(), 10u);
  // 400 picks, streak gate of 4, window 8: the large majority of picks
  // must be served without a descent.
  EXPECT_GT(served->value(), 300u);
}

}  // namespace
}  // namespace lottery
