// Tests for TraceSpec parsing and ReplayTask execution.

#include "src/workloads/replay.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/core/lottery_scheduler.h"
#include "src/sched/round_robin.h"
#include "src/sched/stride.h"
#include "src/workloads/compute.h"

namespace lottery {
namespace {

Kernel::Options KOpts() {
  Kernel::Options o;
  o.quantum = SimDuration::Millis(100);
  return o;
}

TEST(TraceSpec, ParsesBasicTokens) {
  const TraceSpec spec = TraceSpec::Parse("c25 s75 y e");
  ASSERT_EQ(spec.segments().size(), 4u);
  EXPECT_EQ(spec.segments()[0].kind, TraceSegment::Kind::kCompute);
  EXPECT_EQ(spec.segments()[0].duration, SimDuration::Millis(25));
  EXPECT_EQ(spec.segments()[1].kind, TraceSegment::Kind::kSleep);
  EXPECT_EQ(spec.segments()[2].kind, TraceSegment::Kind::kYield);
  EXPECT_EQ(spec.segments()[3].kind, TraceSegment::Kind::kExit);
  EXPECT_TRUE(spec.terminates());
  EXPECT_EQ(spec.ComputePerPass(), SimDuration::Millis(25));
}

TEST(TraceSpec, ParsesRepeatGroups) {
  const TraceSpec spec = TraceSpec::Parse("3x( c10 s5 ) c100");
  ASSERT_EQ(spec.segments().size(), 7u);
  EXPECT_EQ(spec.ComputePerPass(), SimDuration::Millis(130));
  EXPECT_FALSE(spec.terminates());
}

TEST(TraceSpec, ParsesNestedGroups) {
  const TraceSpec spec = TraceSpec::Parse("2x( 2x( c1 ) s2 )");
  EXPECT_EQ(spec.segments().size(), 6u);
  EXPECT_EQ(spec.ComputePerPass(), SimDuration::Millis(4));
}

TEST(TraceSpec, RoundTripsThroughText) {
  const std::string text = "c25 s75 y c10 e";
  EXPECT_EQ(TraceSpec::Parse(text).ToString(), text);
}

TEST(TraceSpec, RejectsBadInput) {
  EXPECT_THROW(TraceSpec::Parse(""), std::invalid_argument);
  EXPECT_THROW(TraceSpec::Parse("q10"), std::invalid_argument);
  EXPECT_THROW(TraceSpec::Parse("c"), std::invalid_argument);
  EXPECT_THROW(TraceSpec::Parse("c-5"), std::invalid_argument);
  EXPECT_THROW(TraceSpec::Parse("cat"), std::invalid_argument);
  EXPECT_THROW(TraceSpec::Parse("3x( c1"), std::invalid_argument);
  EXPECT_THROW(TraceSpec::Parse("c1 )"), std::invalid_argument);
  EXPECT_THROW(TraceSpec::Parse("0x( c1 )"), std::invalid_argument);
  EXPECT_THROW(TraceSpec::Parse("yy"), std::invalid_argument);
  EXPECT_THROW(TraceSpec::Parse("ee"), std::invalid_argument);
}

TEST(ReplayTask, ExecutesPeriodicTraceExactly) {
  RoundRobinScheduler sched;
  Kernel kernel(&sched, KOpts());
  auto body = std::make_unique<ReplayTask>(TraceSpec::Parse("c25 s75"));
  ReplayTask* raw = body.get();
  const ThreadId tid = kernel.Spawn("replay", std::move(body));
  kernel.RunFor(SimDuration::Seconds(10));
  // One 100 ms cycle per pass, alone on the machine.
  EXPECT_NEAR(static_cast<double>(raw->passes()), 100.0, 1.0);
  EXPECT_NEAR(kernel.CpuTime(tid).ToSecondsF(), 2.5, 0.05);
}

TEST(ReplayTask, ExitSegmentTerminates) {
  RoundRobinScheduler sched;
  Kernel kernel(&sched, KOpts());
  auto body =
      std::make_unique<ReplayTask>(TraceSpec::Parse("2x( c10 ) e"));
  ReplayTask* raw = body.get();
  const ThreadId tid = kernel.Spawn("finite", std::move(body));
  kernel.RunFor(SimDuration::Seconds(1));
  EXPECT_FALSE(kernel.Alive(tid));
  EXPECT_EQ(raw->segments_done(), 2);
  EXPECT_EQ(kernel.CpuTime(tid), SimDuration::Millis(20));
}

TEST(ReplayTask, IdenticalDemandDifferentSchedulers) {
  // The point of replay: run the same trace mix under two policies and
  // compare. Total demand is identical; the division of CPU differs.
  auto run = [](Scheduler* sched, LotteryScheduler* ls, StrideScheduler* ss) {
    Kernel kernel(sched, KOpts());
    auto heavy = std::make_unique<ReplayTask>(TraceSpec::Parse("c90 s10"));
    auto light = std::make_unique<ReplayTask>(TraceSpec::Parse("c10 s10"));
    ReplayTask* rh = heavy.get();
    const ThreadId th = kernel.Spawn("heavy", std::move(heavy));
    const ThreadId tl = kernel.Spawn("light", std::move(light));
    if (ls != nullptr) {
      ls->FundThread(th, ls->table().base(), 100);
      ls->FundThread(tl, ls->table().base(), 300);
    }
    if (ss != nullptr) {
      ss->SetTickets(th, 100);
      ss->SetTickets(tl, 300);
    }
    kernel.RunFor(SimDuration::Seconds(60));
    (void)tl;
    return rh->passes();
  };
  LotteryScheduler::Options lopts;
  lopts.seed = 3;
  LotteryScheduler lottery(lopts);
  StrideScheduler stride;
  const int64_t lottery_passes = run(&lottery, &lottery, nullptr);
  const int64_t stride_passes = run(&stride, nullptr, &stride);
  // Both policies serve the same trace; results are in the same regime
  // (the light task's demand is small, so heavy gets most of the machine).
  EXPECT_GT(lottery_passes, 400);
  EXPECT_GT(stride_passes, 400);
  EXPECT_NEAR(static_cast<double>(lottery_passes),
              static_cast<double>(stride_passes),
              static_cast<double>(stride_passes) * 0.15);
}

TEST(ReplayTask, YieldGivesUpRemainderButStaysRunnable) {
  RoundRobinScheduler sched;
  Kernel kernel(&sched, KOpts());
  auto body = std::make_unique<ReplayTask>(TraceSpec::Parse("c20 y"));
  ReplayTask* raw = body.get();
  const ThreadId tid = kernel.Spawn("yielder", std::move(body));
  const ThreadId spin = kernel.Spawn("spin", std::make_unique<ComputeTask>());
  kernel.RunFor(SimDuration::Seconds(12));
  // Alternation: 20 ms (yield) + 100 ms (spin) per round.
  EXPECT_NEAR(kernel.CpuTime(tid).ToSecondsF(), 2.0, 0.1);
  EXPECT_NEAR(kernel.CpuTime(spin).ToSecondsF(), 10.0, 0.1);
  EXPECT_GT(raw->passes(), 90);
}

}  // namespace
}  // namespace lottery
