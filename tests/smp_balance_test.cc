// Unit tests for the SMP balancing machinery in src/sched/smp/: the domain
// topology, forced migration (funding, value, and compensation carried
// across per-CPU currency tables), idle-pull stealing, and the periodic
// ticket-weighted balance steal converging toward equal per-CPU totals.

#include <gtest/gtest.h>

#include <cstdint>
#include <stdexcept>
#include <vector>

#include "src/obs/registry.h"
#include "src/sched/smp/balance_domains.h"
#include "src/sched/smp/smp_scheduler.h"

namespace lottery {
namespace {

using smp::Domain;
using smp::DomainMap;
using smp::SmpScheduler;

TEST(DomainMap, UniprocessorHasNoLevels) {
  const DomainMap map(1);
  EXPECT_EQ(map.num_levels(), 0);
}

TEST(DomainMap, TwoCpusCollapseToOneLevel) {
  const DomainMap map(2);
  ASSERT_EQ(map.num_levels(), 1);
  const Domain d = map.At(1, 0);
  EXPECT_EQ(d.first, 0);
  EXPECT_EQ(d.count, 2);
}

TEST(DomainMap, FourCpusPairThenSystem) {
  const DomainMap map(4);
  ASSERT_EQ(map.num_levels(), 2);
  EXPECT_EQ(map.At(3, 0).first, 2);
  EXPECT_EQ(map.At(3, 0).count, 2);
  EXPECT_EQ(map.At(3, 1).first, 0);
  EXPECT_EQ(map.At(3, 1).count, 4);
}

TEST(DomainMap, SixteenCpusPairPackageSystem) {
  const DomainMap map(16);
  ASSERT_EQ(map.num_levels(), 3);
  EXPECT_EQ(map.At(5, 0).first, 4);
  EXPECT_EQ(map.At(5, 0).count, 2);
  EXPECT_EQ(map.At(5, 1).first, 0);
  EXPECT_EQ(map.At(5, 1).count, 8);
  EXPECT_EQ(map.At(13, 1).first, 8);
  EXPECT_EQ(map.At(13, 1).count, 8);
  EXPECT_EQ(map.At(13, 2).first, 0);
  EXPECT_EQ(map.At(13, 2).count, 16);
}

TEST(DomainMap, UnevenTrailingPackageIsSmaller) {
  const DomainMap map(12);
  ASSERT_EQ(map.num_levels(), 3);  // 2, 8, 12
  EXPECT_EQ(map.At(9, 1).first, 8);
  EXPECT_EQ(map.At(9, 1).count, 4);
}

TEST(DomainMap, RejectsBadArguments) {
  EXPECT_THROW(DomainMap(0), std::invalid_argument);
  const DomainMap map(4);
  EXPECT_THROW(map.At(4, 0), std::out_of_range);
  EXPECT_THROW(map.At(0, 2), std::out_of_range);
}

SmpScheduler::Options BalanceOpts(int cpus, obs::Registry* reg) {
  SmpScheduler::Options o;
  o.num_cpus = cpus;
  o.seed = 7001;
  o.metrics = reg;
  return o;
}

// Spawns `n` threads (round-robin homes), funds thread i with fund(i), and
// readies everything.
std::vector<ThreadId> Populate(SmpScheduler& sched, int n,
                               const std::vector<int64_t>& amounts) {
  std::vector<ThreadId> tids;
  for (int i = 0; i < n; ++i) {
    const ThreadId tid = static_cast<ThreadId>(i + 1);
    sched.AddThread(tid, SimTime::Zero());
    sched.FundThread(tid, amounts[static_cast<size_t>(i)]);
    sched.OnReady(tid, SimTime::Zero());
    tids.push_back(tid);
  }
  return tids;
}

TEST(SmpMigrate, CarriesFundingValueAndCompensation) {
  obs::Registry reg;
  SmpScheduler sched(BalanceOpts(2, &reg));
  const auto tids = Populate(sched, 2, {100, 100});
  const ThreadId mover = tids[0];  // homed on CPU 0
  ASSERT_EQ(sched.HomeCpu(mover), 0);
  // Grant a compensation boost as an under-consuming quantum would.
  sched.cpu(0).client(mover)->SetCompensation(5, 1);
  const uint64_t value_before = sched.cpu(0).ThreadValue(mover).raw_unsigned();
  const int64_t funded_before = sched.FundedAmount(mover);

  sched.Migrate(mover, 1, SimTime::Zero());

  EXPECT_EQ(sched.HomeCpu(mover), 1);
  EXPECT_EQ(sched.ThreadMigrations(mover), 1u);
  EXPECT_EQ(sched.FundedAmount(mover), funded_before);
  EXPECT_EQ(sched.cpu(1).ThreadValue(mover).raw_unsigned(), value_before);
  EXPECT_EQ(sched.cpu(1).client(mover)->compensation_num(), 5);
  EXPECT_EQ(sched.cpu(1).client(mover)->compensation_den(), 1);
  EXPECT_FALSE(sched.cpu(0).HasThread(mover));
  EXPECT_TRUE(sched.cpu(1).IsQueued(mover));
  sched.CheckIntegrity();
}

TEST(SmpMigrate, RejectsRunningBlockedAndResidentThreads) {
  obs::Registry reg;
  SmpScheduler sched(BalanceOpts(2, &reg));
  const auto tids = Populate(sched, 4, {100, 100, 100, 100});
  // Already on the destination.
  EXPECT_THROW(sched.Migrate(tids[1], 1, SimTime::Zero()),
               std::invalid_argument);
  // Running threads are pinned until their slice resolves.
  const ThreadId running = sched.PickNextOnCpu(0, SimTime::Zero());
  ASSERT_NE(running, kInvalidThreadId);
  EXPECT_THROW(sched.Migrate(running, 1, SimTime::Zero()),
               std::invalid_argument);
  // Blocked threads left the queue; they migrate by re-homing on wake, not
  // by stealing.
  sched.OnBlocked(tids[3], SimTime::Zero());
  EXPECT_THROW(sched.Migrate(tids[3], 0, SimTime::Zero()),
               std::invalid_argument);
  // Unknown thread.
  EXPECT_THROW(sched.Migrate(999, 1, SimTime::Zero()), std::invalid_argument);
}

TEST(SmpSteal, IdleCpuPullsFromNearestBusyDomain) {
  obs::Registry reg;
  SmpScheduler::Options o = BalanceOpts(4, &reg);
  SmpScheduler sched(o);
  // Two threads, both homed on CPU 0 (then 1): CPUs 2/3 start empty.
  sched.AddThread(1, SimTime::Zero());
  sched.FundThread(1, 300);
  sched.OnReady(1, SimTime::Zero());
  sched.AddThread(2, SimTime::Zero());  // home 1, stays blocked
  // CPU 3 is idle; its pair sibling (CPU 2) is empty too, so the pull
  // widens to the system level and takes CPU 0's queued thread.
  const ThreadId got = sched.PickNextOnCpu(3, SimTime::Zero());
  EXPECT_EQ(got, 1u);
  EXPECT_EQ(sched.steals(), 1u);
  EXPECT_EQ(sched.HomeCpu(1), 3);
  EXPECT_EQ(sched.FundedAmount(1), 300);
  sched.CheckIntegrity();
}

TEST(SmpSteal, NothingToStealIsQuietlyIdle) {
  obs::Registry reg;
  SmpScheduler sched(BalanceOpts(4, &reg));
  const uint32_t balance_state = sched.balance_rng().state();
  EXPECT_EQ(sched.PickNextOnCpu(2, SimTime::Zero()), kInvalidThreadId);
  EXPECT_EQ(sched.steals(), 0u);
  EXPECT_EQ(sched.balance_rng().state(), balance_state);
}

TEST(SmpBalance, PeriodicStealsEqualizeTicketValue) {
  obs::Registry reg;
  SmpScheduler::Options o = BalanceOpts(2, &reg);
  o.balance_period = 1;  // check on every dispatch
  SmpScheduler sched(o);
  // Round-robin homing puts the rich threads (even spawn order) on CPU 0
  // and the poor ones on CPU 1: totals start 4000 vs 40.
  const auto tids = Populate(sched, 8, {1000, 10, 1000, 10,
                                        1000, 10, 1000, 10});
  const SimDuration quantum = SimDuration::Millis(10);
  SimTime now = SimTime::Zero();
  for (int round = 0; round < 300; ++round) {
    for (int cpu = 0; cpu < 2; ++cpu) {
      const ThreadId tid = sched.PickNextOnCpu(cpu, now);
      if (tid != kInvalidThreadId) {
        sched.OnQuantumEnd(tid, quantum, quantum, now + quantum);
        sched.OnReady(tid, now + quantum);
      }
    }
    now = now + quantum;
  }
  sched.CheckIntegrity();
  EXPECT_GT(sched.migrations(), 0u);
  // Every thread is queued again; per-CPU runnable totals must be near
  // equal — the balancer chased ticket value, not thread counts.
  const uint64_t a = sched.cpu(0).RunnableTickets();
  const uint64_t b = sched.cpu(1).RunnableTickets();
  const uint64_t diff = a > b ? a - b : b - a;
  EXPECT_LT(diff * 4, a + b)
      << "per-CPU totals " << a << " vs " << b << " still skewed";
  // Global funding is conserved across however many migrations happened.
  int64_t funded = 0;
  for (const ThreadId tid : tids) {
    funded += sched.FundedAmount(tid);
  }
  EXPECT_EQ(funded, 4 * 1000 + 4 * 10);
}

TEST(SmpBalance, DeterministicAcrossIdenticalRuns) {
  auto run = [] {
    obs::Registry reg;
    SmpScheduler::Options o;
    o.num_cpus = 4;
    o.seed = 4242;
    o.balance_period = 2;
    o.metrics = &reg;
    SmpScheduler sched(o);
    std::vector<int64_t> amounts;
    for (int i = 0; i < 12; ++i) {
      amounts.push_back(50 + 125 * (i % 4));
    }
    Populate(sched, 12, amounts);
    const SimDuration quantum = SimDuration::Millis(10);
    SimTime now = SimTime::Zero();
    std::vector<ThreadId> winners;
    for (int round = 0; round < 200; ++round) {
      for (int cpu = 0; cpu < 4; ++cpu) {
        const ThreadId tid = sched.PickNextOnCpu(cpu, now);
        winners.push_back(tid);
        if (tid != kInvalidThreadId) {
          sched.OnQuantumEnd(tid, quantum, quantum, now + quantum);
          sched.OnReady(tid, now + quantum);
        }
      }
      now = now + quantum;
    }
    winners.push_back(static_cast<ThreadId>(sched.migrations()));
    winners.push_back(static_cast<ThreadId>(sched.steals()));
    return winners;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace lottery
