// Tests for multi-CPU operation (the Section 4.2 "distributed lottery
// scheduler" direction): work conservation, per-thread single-CPU
// occupancy, proportional sharing of aggregate capacity, and the
// cross-CPU wakeup race (pending_wake) paths.

#include <gtest/gtest.h>

#include <memory>

#include "src/core/lottery_scheduler.h"
#include "src/sched/hybrid.h"
#include "src/sched/round_robin.h"
#include "src/sched/smp/smp_scheduler.h"
#include "src/sim/fault.h"
#include "src/sim/kernel.h"
#include "src/sim/sync.h"
#include "src/workloads/compute.h"
#include "src/workloads/mutex_workload.h"

namespace lottery {
namespace {

Kernel::Options SmpOpts(int cpus) {
  Kernel::Options o;
  o.quantum = SimDuration::Millis(100);
  o.num_cpus = cpus;
  return o;
}

TEST(Smp, RejectsZeroCpus) {
  RoundRobinScheduler sched;
  EXPECT_THROW(Kernel(&sched, SmpOpts(0)), std::invalid_argument);
}

TEST(Smp, TwoThreadsTwoCpusRunInParallel) {
  RoundRobinScheduler sched;
  Kernel kernel(&sched, SmpOpts(2));
  const ThreadId a = kernel.Spawn("a", std::make_unique<ComputeTask>());
  const ThreadId b = kernel.Spawn("b", std::make_unique<ComputeTask>());
  kernel.RunFor(SimDuration::Seconds(10));
  // Each thread has a whole CPU: full progress for both, zero idle.
  EXPECT_EQ(kernel.CpuTime(a), SimDuration::Seconds(10));
  EXPECT_EQ(kernel.CpuTime(b), SimDuration::Seconds(10));
  EXPECT_EQ(kernel.idle_time().nanos(), 0);
}

TEST(Smp, WorkConservationAcrossCpus) {
  RoundRobinScheduler sched;
  Kernel kernel(&sched, SmpOpts(4));
  std::vector<ThreadId> tids;
  for (int i = 0; i < 6; ++i) {
    tids.push_back(
        kernel.Spawn("t" + std::to_string(i), std::make_unique<ComputeTask>()));
  }
  kernel.RunFor(SimDuration::Seconds(60));
  SimDuration total{};
  for (const ThreadId tid : tids) {
    total += kernel.CpuTime(tid);
  }
  // 4 CPUs, always runnable work: used + idle == 4 * horizon.
  EXPECT_EQ((total + kernel.idle_time()).nanos(),
            SimDuration::Seconds(240).nanos());
  EXPECT_EQ(kernel.idle_time().nanos(), 0);
  // Per-CPU busy sums agree.
  SimDuration busy{};
  for (int cpu = 0; cpu < 4; ++cpu) {
    busy += kernel.CpuBusy(cpu);
  }
  EXPECT_EQ(busy.nanos(), total.nanos());
}

TEST(Smp, IdleCpusWhenUnderloaded) {
  RoundRobinScheduler sched;
  Kernel kernel(&sched, SmpOpts(3));
  kernel.Spawn("only", std::make_unique<ComputeTask>());
  kernel.RunFor(SimDuration::Seconds(10));
  // One busy CPU, two idle: 20 s of idle time accumulated.
  EXPECT_EQ(kernel.idle_time(), SimDuration::Seconds(20));
}

TEST(Smp, ThreadNeverExceedsOneCpu) {
  // A single thread on many CPUs can use at most wall-clock time.
  LotteryScheduler sched;
  Kernel kernel(&sched, SmpOpts(8));
  const ThreadId t = kernel.Spawn("solo", std::make_unique<ComputeTask>());
  sched.FundThread(t, sched.table().base(), 1000);
  kernel.RunFor(SimDuration::Seconds(30));
  EXPECT_EQ(kernel.CpuTime(t), SimDuration::Seconds(30));
}

TEST(Smp, RoundRobinSplitsEvenly) {
  RoundRobinScheduler sched;
  Kernel kernel(&sched, SmpOpts(2));
  std::vector<ThreadId> tids;
  for (int i = 0; i < 4; ++i) {
    tids.push_back(
        kernel.Spawn("t" + std::to_string(i), std::make_unique<ComputeTask>()));
  }
  kernel.RunFor(SimDuration::Seconds(40));
  for (const ThreadId tid : tids) {
    EXPECT_NEAR(kernel.CpuTime(tid).ToSecondsF(), 20.0, 0.2);
  }
}

TEST(Smp, LotterySharesAggregateCapacity) {
  LotteryScheduler::Options lopts;
  lopts.seed = 13;
  LotteryScheduler sched(lopts);
  Kernel kernel(&sched, SmpOpts(2));
  std::vector<ThreadId> tids;
  const int64_t funds[] = {300, 300, 200, 100, 100};
  for (int i = 0; i < 5; ++i) {
    const ThreadId tid = kernel.Spawn("t" + std::to_string(i),
                                      std::make_unique<ComputeTask>());
    sched.FundThread(tid, sched.table().base(), funds[i]);
    tids.push_back(tid);
  }
  kernel.RunFor(SimDuration::Seconds(600));
  // 1200 s of capacity split roughly by funding (no thread's fair share
  // exceeds one CPU here, so proportionality should hold).
  const double capacity = 1200.0;
  for (int i = 0; i < 5; ++i) {
    const double expect = capacity * static_cast<double>(funds[i]) / 1000.0;
    EXPECT_NEAR(kernel.CpuTime(tids[static_cast<size_t>(i)]).ToSecondsF(),
                expect, expect * 0.15)
        << "thread " << i;
  }
}

TEST(Smp, MutexAcrossCpusNoLostWakeups) {
  // Heavy mutex contention on 2 CPUs exercises the pending_wake path (a
  // release on one CPU waking a thread whose blocking slice is still in
  // flight on the other).
  LotteryScheduler::Options lopts;
  lopts.seed = 21;
  LotteryScheduler sched(lopts);
  Kernel kernel(&sched, SmpOpts(2));
  SimMutex mutex(&kernel, "m");
  MutexTask::Options mopts;
  mopts.hold = SimDuration::Millis(30);
  mopts.compute = SimDuration::Millis(30);
  mopts.jitter = 0.1;
  std::vector<MutexTask*> tasks;
  for (int i = 0; i < 4; ++i) {
    mopts.jitter_seed = static_cast<uint32_t>(50 + i);
    auto body = std::make_unique<MutexTask>(&mutex, mopts);
    tasks.push_back(body.get());
    const ThreadId tid =
        kernel.Spawn("m" + std::to_string(i), std::move(body));
    sched.FundThread(tid, sched.table().base(), 100);
  }
  kernel.RunFor(SimDuration::Seconds(120));
  int64_t total = 0;
  for (const auto* t : tasks) {
    EXPECT_GT(t->cycles(), 100) << "a task starved (lost wakeup?)";
    total += t->cycles();
  }
  // The mutex serializes holds (30 ms each): at most ~4000 cycles/120 s.
  EXPECT_GT(total, 2000);
}

TEST(Smp, SleepWakeTimingUnaffectedByCpuCount) {
  RoundRobinScheduler sched;
  Kernel kernel(&sched, SmpOpts(4));
  auto t = std::make_unique<InteractiveTask>(SimDuration::Millis(10),
                                             SimDuration::Millis(90));
  InteractiveTask* raw = t.get();
  kernel.Spawn("interactive", std::move(t));
  kernel.Spawn("spin1", std::make_unique<ComputeTask>());
  kernel.Spawn("spin2", std::make_unique<ComputeTask>());
  kernel.RunFor(SimDuration::Seconds(10));
  // A free CPU always exists, so the 100 ms cycle holds exactly.
  EXPECT_NEAR(static_cast<double>(raw->interactions()), 100.0, 2.0);
}

TEST(Smp, HybridSchedulerOnTwoCpus) {
  // The fixed-priority band and lottery world coexist across CPUs. Three
  // compute threads on two CPUs keep the lottery side contended (with
  // threads <= CPUs everyone runs in parallel and funding is moot). The
  // driver's wakeups land while both CPUs are mid-slice, so its cycle
  // stretches to roughly the dispatch granularity.
  HybridScheduler sched;
  Kernel kernel(&sched, SmpOpts(2));
  const ThreadId driver = kernel.Spawn(
      "driver", std::make_unique<InteractiveTask>(SimDuration::Millis(5),
                                                  SimDuration::Millis(45)));
  sched.SetFixedPriority(driver, 9);
  const int64_t funds[] = {300, 100, 100};
  std::vector<ThreadId> tids;
  for (int i = 0; i < 3; ++i) {
    const ThreadId tid = kernel.Spawn("t" + std::to_string(i),
                                      std::make_unique<ComputeTask>());
    sched.lottery().FundThread(tid, sched.lottery().table().base(), funds[i]);
    tids.push_back(tid);
  }
  kernel.RunFor(SimDuration::Seconds(120));
  // Driver burst per cycle is 5 ms; cycles stretch toward ~100 ms because
  // a wakeup must wait for a slice boundary: several seconds of CPU, far
  // more than its lottery-funding-free status would earn it otherwise.
  EXPECT_GT(kernel.CpuTime(driver).ToSecondsF(), 4.0);
  EXPECT_LT(kernel.CpuTime(driver).ToSecondsF(), 13.0);
  // Thread 0's funding share (2 x 300/500 = 1.2 CPUs) exceeds what one
  // thread can occupy: it saturates near a full CPU and the surplus flows
  // to the equal-funded pair, which stays balanced.
  const double t0 = kernel.CpuTime(tids[0]).ToSecondsF();
  const double t1 = kernel.CpuTime(tids[1]).ToSecondsF();
  const double t2 = kernel.CpuTime(tids[2]).ToSecondsF();
  EXPECT_GT(t0, 95.0);
  EXPECT_LT(t0, 120.0);
  EXPECT_NEAR(t1 / t2, 1.0, 0.25);
  // Work conservation across both CPUs.
  const double all = kernel.CpuTime(driver).ToSecondsF() + t0 + t1 + t2 +
                     kernel.idle_time().ToSecondsF();
  EXPECT_NEAR(all, 240.0, 0.5);
}

TEST(Smp, SingleCpuMatchesLegacyBehaviourExactly) {
  // num_cpus = 1 must reproduce the original kernel path bit-for-bit.
  auto run = [](int cpus) {
    LotteryScheduler::Options lopts;
    lopts.seed = 5;
    LotteryScheduler sched(lopts);
    Kernel kernel(&sched, SmpOpts(cpus));
    const ThreadId a = kernel.Spawn("a", std::make_unique<ComputeTask>());
    sched.FundThread(a, sched.table().base(), 200);
    const ThreadId b = kernel.Spawn("b", std::make_unique<ComputeTask>());
    sched.FundThread(b, sched.table().base(), 100);
    kernel.RunFor(SimDuration::Seconds(100));
    return kernel.CpuTime(a).nanos();
  };
  EXPECT_EQ(run(1), run(1));  // deterministic
}

// --- Partitioned (SmpScheduler) property tests ------------------------------
//
// These drive the per-CPU partitioned facade through the real kernel and
// assert the invariants that must hold no matter what the balancer does:
// funding is conserved across migrations, no thread is ever lost or
// double-enqueued (even under injected faults), and compensation ratios
// ride along with a migrating thread.

smp::SmpScheduler::Options PartOpts(int cpus, uint32_t seed,
                                    obs::Registry* reg) {
  smp::SmpScheduler::Options o;
  o.num_cpus = cpus;
  o.seed = seed;
  o.metrics = reg;
  return o;
}

TEST(SmpPartitioned, FundingConservedUnderStealAndMigrationChurn) {
  obs::Registry reg;
  smp::SmpScheduler sched(PartOpts(4, 90210, &reg));
  Kernel::Options ko = SmpOpts(4);
  ko.quantum = SimDuration::Millis(10);
  ko.metrics = &reg;
  Kernel kernel(&sched, ko);
  // Mixed load: compute hogs plus interactive sleepers whose think time
  // empties queues (idle pulls) and whose uneven funding skews per-CPU
  // totals (periodic balance steals).
  std::vector<ThreadId> tids;
  int64_t granted = 0;
  for (int i = 0; i < 10; ++i) {
    const bool interactive = (i % 3 == 2);
    std::unique_ptr<ThreadBody> body;
    if (interactive) {
      body = std::make_unique<InteractiveTask>(SimDuration::Millis(5),
                                               SimDuration::Millis(40));
    } else {
      body = std::make_unique<ComputeTask>();
    }
    const ThreadId tid =
        kernel.Spawn("churn" + std::to_string(i), std::move(body));
    const int64_t amount = interactive ? 100 : 400 + 100 * (i % 4);
    sched.FundThread(tid, amount);
    granted += amount;
    tids.push_back(tid);
  }
  // Step the run and re-check the invariants at every step boundary: the
  // facade's books must balance at all times, not just at the end.
  for (int step = 0; step < 10; ++step) {
    kernel.RunFor(SimDuration::Seconds(3));
    sched.CheckIntegrity();
    int64_t funded = 0;
    for (const ThreadId tid : tids) {
      funded += sched.FundedAmount(tid);
    }
    EXPECT_EQ(funded, granted) << "funding leaked by step " << step;
  }
  // The mix must actually have exercised cross-CPU movement.
  EXPECT_GT(sched.steals() + sched.migrations(), 0u);
  for (const ThreadId tid : tids) {
    EXPECT_TRUE(kernel.Alive(tid));
  }
}

TEST(SmpPartitioned, NoThreadLostOrDuplicatedUnderFaultInjection) {
  const FaultPlan plan = FaultPlan::Parse(
      "crash:p=0.001;spurious-wake:p=0.3;delayed-unblock:p=0.5,delay_ms=5");
  FaultInjector faults(plan, 777);
  obs::Registry reg;
  smp::SmpScheduler sched(PartOpts(4, 31337, &reg));
  Kernel::Options ko = SmpOpts(4);
  ko.quantum = SimDuration::Millis(10);
  ko.metrics = &reg;
  ko.faults = &faults;
  Kernel kernel(&sched, ko);
  std::vector<ThreadId> tids;
  for (int i = 0; i < 12; ++i) {
    std::unique_ptr<ThreadBody> body;
    if (i % 2 == 0) {
      body = std::make_unique<ComputeTask>();
    } else {
      body = std::make_unique<InteractiveTask>(SimDuration::Millis(5),
                                               SimDuration::Millis(30));
    }
    const ThreadId tid =
        kernel.Spawn("faulty" + std::to_string(i), std::move(body));
    sched.FundThread(tid, 100 + 50 * (i % 5));
    tids.push_back(tid);
  }
  // Crashes retire threads (the kernel calls RemoveThread); wake faults
  // shake the ready/blocked transitions the balancer races against. The
  // structural invariant — every live thread on exactly one CPU table,
  // never queued while running — must survive all of it.
  for (int step = 0; step < 15; ++step) {
    kernel.RunFor(SimDuration::Seconds(2));
    sched.CheckIntegrity();
    for (const ThreadId tid : tids) {
      if (kernel.Alive(tid)) {
        EXPECT_GE(sched.HomeCpu(tid), 0);
        EXPECT_LT(sched.HomeCpu(tid), 4);
      } else {
        // Crashed threads must be fully forgotten by every per-CPU table.
        EXPECT_THROW(sched.HomeCpu(tid), std::invalid_argument);
      }
    }
  }
  EXPECT_GT(faults.injections(FaultClass::kThreadCrash) +
                faults.injections(FaultClass::kSpuriousWakeup) +
                faults.injections(FaultClass::kDelayedUnblock),
            0u);
}

TEST(SmpPartitioned, CompensationSurvivesAMigrationChain) {
  obs::Registry reg;
  smp::SmpScheduler sched(PartOpts(4, 4711, &reg));
  sched.AddThread(1, SimTime::Zero());
  sched.FundThread(1, 360);
  sched.OnReady(1, SimTime::Zero());
  // An interactive thread that consumed 1/7 of its quantum holds a 7:1
  // compensation boost; chain it across every CPU and the ratio (and the
  // thread's ticket value) must arrive intact each hop.
  sched.cpu(0).client(1)->SetCompensation(7, 1);
  const uint64_t value = sched.cpu(0).ThreadValue(1).raw_unsigned();
  for (int dst = 1; dst < 4; ++dst) {
    sched.Migrate(1, dst, SimTime::Zero());
    EXPECT_EQ(sched.cpu(dst).client(1)->compensation_num(), 7);
    EXPECT_EQ(sched.cpu(dst).client(1)->compensation_den(), 1);
    EXPECT_EQ(sched.cpu(dst).ThreadValue(1).raw_unsigned(), value);
    sched.CheckIntegrity();
  }
  EXPECT_EQ(sched.ThreadMigrations(1), 3u);
  EXPECT_EQ(sched.FundedAmount(1), 360);
}

}  // namespace
}  // namespace lottery
