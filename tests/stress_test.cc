// Long-horizon stress: hours of simulated time with thread churn, mixed
// workloads, and shared services. The assertions are conservation laws and
// table consistency — anything that drifts over millions of events shows
// up here.

#include <gtest/gtest.h>

#include <memory>

#include "src/core/lottery_scheduler.h"
#include "src/sim/kernel.h"
#include "src/sim/sync.h"
#include "src/workloads/compute.h"
#include "src/workloads/mutex_workload.h"

namespace lottery {
namespace {

// Computes for a random total amount, then exits.
class FiniteJob : public ThreadBody {
 public:
  explicit FiniteJob(SimDuration total) : left_(total) {}
  void Run(RunContext& ctx) override {
    left_ -= ctx.Consume(left_ < ctx.remaining() ? left_ : ctx.remaining());
    if (left_.nanos() == 0) {
      ctx.ExitThread();
    }
  }

 private:
  SimDuration left_;
};

TEST(Stress, HoursOfChurnStayConsistent) {
  LotteryScheduler::Options lopts;
  lopts.seed = 1234;
  LotteryScheduler sched(lopts);
  Kernel::Options kopts;
  kopts.quantum = SimDuration::Millis(100);
  Kernel kernel(&sched, kopts);

  FastRand rng(777);
  // A long-lived backbone so the machine is never empty.
  const ThreadId backbone =
      kernel.Spawn("backbone", std::make_unique<ComputeTask>());
  sched.FundThread(backbone, sched.table().base(), 50);

  // One simulated hour in 60 s steps; each step launches a wave of
  // finite jobs with random funding and lifetime.
  std::vector<ThreadId> all;
  for (int step = 0; step < 60; ++step) {
    const int jobs = 1 + static_cast<int>(rng.NextBelow(4));
    for (int j = 0; j < jobs; ++j) {
      const auto lifetime =
          SimDuration::Millis(500 + rng.NextBelow(20000));
      const ThreadId tid = kernel.Spawn(
          "job" + std::to_string(step) + "_" + std::to_string(j),
          std::make_unique<FiniteJob>(lifetime));
      sched.FundThread(tid, sched.table().base(),
                       1 + rng.NextBelow(500));
      all.push_back(tid);
    }
    kernel.RunFor(SimDuration::Seconds(60));
  }
  kernel.RunFor(SimDuration::Seconds(120));  // drain stragglers

  // Conservation: one CPU fully used (backbone never blocks).
  SimDuration used = kernel.CpuTime(backbone);
  for (const ThreadId tid : all) {
    used += kernel.CpuTime(tid);
    EXPECT_FALSE(kernel.Alive(tid));  // every finite job exited
  }
  EXPECT_EQ((used + kernel.idle_time()).nanos(),
            kernel.now().nanos());

  // Table consistency: only the backbone's objects remain.
  EXPECT_EQ(kernel.num_live_threads(), 1u);
  EXPECT_EQ(sched.table().num_currencies(), 2u);  // base + thread:backbone
  EXPECT_EQ(sched.table().num_tickets(), 2u);     // self + funding
  EXPECT_EQ(sched.table().base()->active_amount(), 50);
}

TEST(Stress, MutexChurnOverHours) {
  LotteryScheduler::Options lopts;
  lopts.seed = 555;
  LotteryScheduler sched(lopts);
  Kernel::Options kopts;
  kopts.quantum = SimDuration::Millis(100);
  Kernel kernel(&sched, kopts);
  SimMutex mutex(&kernel, "shared");
  MutexTask::Options mopts;
  mopts.hold = SimDuration::Millis(7);
  mopts.compute = SimDuration::Millis(13);
  mopts.jitter = 0.2;
  std::vector<MutexTask*> tasks;
  for (int i = 0; i < 6; ++i) {
    mopts.jitter_seed = static_cast<uint32_t>(900 + i);
    auto body = std::make_unique<MutexTask>(&mutex, mopts);
    tasks.push_back(body.get());
    const ThreadId tid = kernel.Spawn("m" + std::to_string(i),
                                      std::move(body));
    sched.FundThread(tid, sched.table().base(),
                     static_cast<int64_t>(100 * (i + 1)));
  }
  kernel.RunFor(SimDuration::Seconds(3600));  // one simulated hour
  int64_t total = 0;
  for (const auto* t : tasks) {
    EXPECT_GT(t->cycles(), 1000);  // nobody starves over an hour
    total += t->cycles();
  }
  // Cycles cost >= 20 ms of CPU each; one CPU bounds the total.
  EXPECT_LT(total, 3600 * 50 + 100);
  EXPECT_GT(total, 100000);
  EXPECT_EQ(mutex.owner() == kInvalidThreadId || mutex.num_waiters() < 6,
            true);
}

TEST(Stress, SmpChurn) {
  LotteryScheduler::Options lopts;
  lopts.seed = 31415;
  LotteryScheduler sched(lopts);
  Kernel::Options kopts;
  kopts.quantum = SimDuration::Millis(100);
  kopts.num_cpus = 4;
  Kernel kernel(&sched, kopts);
  FastRand rng(161);
  std::vector<ThreadId> all;
  for (int step = 0; step < 20; ++step) {
    for (int j = 0; j < 6; ++j) {
      const ThreadId tid = kernel.Spawn(
          "j" + std::to_string(step) + "_" + std::to_string(j),
          std::make_unique<FiniteJob>(
              SimDuration::Millis(1000 + rng.NextBelow(30000))));
      sched.FundThread(tid, sched.table().base(), 1 + rng.NextBelow(300));
      all.push_back(tid);
    }
    kernel.RunFor(SimDuration::Seconds(30));
  }
  kernel.RunFor(SimDuration::Seconds(300));
  SimDuration used{};
  for (const ThreadId tid : all) {
    EXPECT_FALSE(kernel.Alive(tid));
    used += kernel.CpuTime(tid);
  }
  // 4 CPUs: used + idle accounts for every CPU-second the clock covered.
  EXPECT_EQ((used + kernel.idle_time()).nanos(), kernel.now().nanos() * 4);
  EXPECT_EQ(sched.table().num_currencies(), 1u);
  EXPECT_EQ(sched.table().num_tickets(), 0u);
}

TEST(Stress, DispatchLogFromRealRun) {
  LotteryScheduler sched;
  Tracer tracer(SimDuration::Seconds(1));
  tracer.EnableDispatchLog();
  Kernel::Options kopts;
  kopts.quantum = SimDuration::Millis(100);
  Kernel kernel(&sched, kopts, &tracer);
  const ThreadId a = kernel.Spawn("a", std::make_unique<ComputeTask>());
  sched.FundThread(a, sched.table().base(), 100);
  kernel.RunFor(SimDuration::Seconds(5));
  ASSERT_EQ(tracer.dispatches().size(), 50u);
  for (size_t i = 0; i < tracer.dispatches().size(); ++i) {
    const auto& d = tracer.dispatches()[i];
    EXPECT_EQ(d.tid, a);
    EXPECT_EQ(d.cpu, 0);
    EXPECT_NEAR(d.start_sec, 0.1 * static_cast<double>(i), 1e-9);
    EXPECT_DOUBLE_EQ(d.duration_sec, 0.1);
  }
}

}  // namespace
}  // namespace lottery
