// Tests for the baseline schedulers: round-robin, fixed priority,
// decay-usage timesharing, and stride.

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/sched/decay_usage.h"
#include "src/sched/priority.h"
#include "src/sched/round_robin.h"
#include "src/sched/stride.h"

namespace lottery {
namespace {

const SimTime kT0 = SimTime::Zero();
const SimDuration kQuantum = SimDuration::Millis(100);

// Runs `rounds` full-quantum rounds where every thread in `ids` is kept
// runnable; returns dispatch counts.
template <typename Sched>
std::map<ThreadId, int> RunRounds(Sched& sched,
                                  const std::vector<ThreadId>& ids,
                                  int rounds) {
  SimTime now = kT0;
  for (ThreadId id : ids) {
    sched.OnReady(id, now);
  }
  std::map<ThreadId, int> counts;
  for (int i = 0; i < rounds; ++i) {
    const ThreadId id = sched.PickNext(now);
    if (id == kInvalidThreadId) {
      break;
    }
    now += kQuantum;
    sched.OnQuantumEnd(id, kQuantum, kQuantum, now);
    sched.OnReady(id, now);
    ++counts[id];
    if (i % 10 == 9) {
      sched.Tick(now);
    }
  }
  return counts;
}

// --- RoundRobin --------------------------------------------------------------

TEST(RoundRobin, FifoOrder) {
  RoundRobinScheduler rr;
  rr.AddThread(1, kT0);
  rr.AddThread(2, kT0);
  rr.AddThread(3, kT0);
  rr.OnReady(1, kT0);
  rr.OnReady(2, kT0);
  rr.OnReady(3, kT0);
  EXPECT_EQ(rr.PickNext(kT0), 1u);
  EXPECT_EQ(rr.PickNext(kT0), 2u);
  rr.OnReady(1, kT0);
  EXPECT_EQ(rr.PickNext(kT0), 3u);
  EXPECT_EQ(rr.PickNext(kT0), 1u);
  EXPECT_EQ(rr.PickNext(kT0), kInvalidThreadId);
}

TEST(RoundRobin, EqualSharesOverTime) {
  RoundRobinScheduler rr;
  for (ThreadId id : {1u, 2u, 3u}) {
    rr.AddThread(id, kT0);
  }
  const auto counts = RunRounds(rr, {1u, 2u, 3u}, 300);
  EXPECT_EQ(counts.at(1), 100);
  EXPECT_EQ(counts.at(2), 100);
  EXPECT_EQ(counts.at(3), 100);
}

TEST(RoundRobin, BlockedThreadLeavesQueue) {
  RoundRobinScheduler rr;
  rr.AddThread(1, kT0);
  rr.AddThread(2, kT0);
  rr.OnReady(1, kT0);
  rr.OnReady(2, kT0);
  rr.OnBlocked(1, kT0);
  EXPECT_EQ(rr.PickNext(kT0), 2u);
  EXPECT_EQ(rr.PickNext(kT0), kInvalidThreadId);
}

TEST(RoundRobin, DuplicateReadyIsIdempotent) {
  RoundRobinScheduler rr;
  rr.AddThread(1, kT0);
  rr.OnReady(1, kT0);
  rr.OnReady(1, kT0);
  EXPECT_EQ(rr.PickNext(kT0), 1u);
  EXPECT_EQ(rr.PickNext(kT0), kInvalidThreadId);
}

TEST(RoundRobin, RemoveThreadPurgesQueue) {
  RoundRobinScheduler rr;
  rr.AddThread(1, kT0);
  rr.OnReady(1, kT0);
  rr.RemoveThread(1, kT0);
  EXPECT_EQ(rr.PickNext(kT0), kInvalidThreadId);
}

TEST(RoundRobin, UnknownThreadThrows) {
  RoundRobinScheduler rr;
  EXPECT_THROW(rr.OnReady(42, kT0), std::invalid_argument);
  rr.AddThread(1, kT0);
  EXPECT_THROW(rr.AddThread(1, kT0), std::invalid_argument);
}

// --- Priority ----------------------------------------------------------------

TEST(Priority, HigherPriorityWins) {
  PriorityScheduler ps;
  ps.AddThread(1, kT0);
  ps.AddThread(2, kT0);
  ps.SetPriority(1, 5);
  ps.SetPriority(2, 10);
  ps.OnReady(1, kT0);
  ps.OnReady(2, kT0);
  EXPECT_EQ(ps.PickNext(kT0), 2u);
}

TEST(Priority, StarvationUnderLoad) {
  // The pathology lottery scheduling fixes: a lower-priority thread never
  // runs while a higher-priority one stays runnable.
  PriorityScheduler ps;
  ps.AddThread(1, kT0);
  ps.AddThread(2, kT0);
  ps.SetPriority(1, 1);
  ps.SetPriority(2, 2);
  const auto counts = RunRounds(ps, {1u, 2u}, 100);
  EXPECT_EQ(counts.count(1), 0u);
  EXPECT_EQ(counts.at(2), 100);
}

TEST(Priority, EqualPrioritiesRoundRobin) {
  PriorityScheduler ps;
  ps.AddThread(1, kT0);
  ps.AddThread(2, kT0);
  const auto counts = RunRounds(ps, {1u, 2u}, 100);
  EXPECT_EQ(counts.at(1), 50);
  EXPECT_EQ(counts.at(2), 50);
}

TEST(Priority, SetPriorityWhileQueuedRequeues) {
  PriorityScheduler ps;
  ps.AddThread(1, kT0);
  ps.AddThread(2, kT0);
  ps.OnReady(1, kT0);
  ps.OnReady(2, kT0);
  ps.SetPriority(1, 100);
  EXPECT_EQ(ps.PickNext(kT0), 1u);
  EXPECT_EQ(ps.GetPriority(1), 100);
}

TEST(Priority, UnknownThreadThrows) {
  PriorityScheduler ps;
  EXPECT_THROW(ps.SetPriority(9, 1), std::invalid_argument);
  EXPECT_THROW(ps.GetPriority(9), std::invalid_argument);
  EXPECT_THROW(ps.OnReady(9, kT0), std::invalid_argument);
}

// --- DecayUsage ---------------------------------------------------------------

TEST(DecayUsage, EqualNiceRoughlyEqualShares) {
  DecayUsageScheduler du;
  du.AddThread(1, kT0);
  du.AddThread(2, kT0);
  const auto counts = RunRounds(du, {1u, 2u}, 1000);
  EXPECT_NEAR(counts.at(1), 500, 50);
  EXPECT_NEAR(counts.at(2), 500, 50);
}

TEST(DecayUsage, UsageRaisesPriorityValue) {
  DecayUsageScheduler du;
  du.AddThread(1, kT0);
  du.OnReady(1, kT0);
  ASSERT_EQ(du.PickNext(kT0), 1u);
  du.OnQuantumEnd(1, kQuantum, kQuantum, kT0);
  // Usage is charged in 10 ms ticks: a full 100 ms quantum is 10 ticks.
  EXPECT_DOUBLE_EQ(du.EstCpu(1), 10.0);
}

TEST(DecayUsage, TickDecaysUsage) {
  DecayUsageScheduler du;
  du.AddThread(1, kT0);
  du.OnReady(1, kT0);
  ASSERT_EQ(du.PickNext(kT0), 1u);
  du.OnQuantumEnd(1, kQuantum, kQuantum, kT0);
  du.OnReady(1, kT0);
  const double before = du.EstCpu(1);
  du.Tick(kT0 + SimDuration::Seconds(1));
  EXPECT_LT(du.EstCpu(1), before);
}

TEST(DecayUsage, NiceBiasesShares) {
  DecayUsageScheduler du;
  du.AddThread(1, kT0);
  du.AddThread(2, kT0);
  du.SetNice(1, 0);
  du.SetNice(2, 5);  // penalized
  const auto counts = RunRounds(du, {1u, 2u}, 1000);
  EXPECT_GT(counts.at(1), counts.at(2));
}

TEST(DecayUsage, NiceGivesNoPreciseRatioControl) {
  // The paper's core criticism: nice moves shares, but there is no nice
  // delta that yields a *specific* ratio like 2:1 — document by measuring
  // that nice=4 produces a lopsided split nowhere near 2:1.
  DecayUsageScheduler du;
  du.AddThread(1, kT0);
  du.AddThread(2, kT0);
  du.SetNice(2, 4);
  const auto counts = RunRounds(du, {1u, 2u}, 2000);
  const double ratio =
      static_cast<double>(counts.at(1)) / static_cast<double>(counts.at(2));
  EXPECT_TRUE(ratio < 1.7 || ratio > 2.4)
      << "nice happened to hit 2:1 (ratio=" << ratio
      << "); decay-usage offers no dial for that";
}

// --- Stride --------------------------------------------------------------------

TEST(Stride, ExactProportionsOverWindow) {
  StrideScheduler st;
  st.AddThread(1, kT0);
  st.AddThread(2, kT0);
  st.SetTickets(1, 3);
  st.SetTickets(2, 1);
  const auto counts = RunRounds(st, {1u, 2u}, 400);
  // Stride is deterministic: exactly 300/100 up to rounding at the window
  // edge.
  EXPECT_NEAR(counts.at(1), 300, 2);
  EXPECT_NEAR(counts.at(2), 100, 2);
}

TEST(Stride, ThreeWayProportions) {
  StrideScheduler st;
  for (ThreadId id : {1u, 2u, 3u}) {
    st.AddThread(id, kT0);
  }
  st.SetTickets(1, 3);
  st.SetTickets(2, 2);
  st.SetTickets(3, 1);
  const auto counts = RunRounds(st, {1u, 2u, 3u}, 600);
  EXPECT_NEAR(counts.at(1), 300, 3);
  EXPECT_NEAR(counts.at(2), 200, 3);
  EXPECT_NEAR(counts.at(3), 100, 3);
}

TEST(Stride, InterleavingIsSmooth) {
  // 2:1 must alternate A A B-ish, never long runs of the low-ticket thread.
  StrideScheduler st;
  st.AddThread(1, kT0);
  st.AddThread(2, kT0);
  st.SetTickets(1, 2);
  st.SetTickets(2, 1);
  st.OnReady(1, kT0);
  st.OnReady(2, kT0);
  SimTime now = kT0;
  int consecutive_b = 0, max_consecutive_b = 0;
  for (int i = 0; i < 300; ++i) {
    const ThreadId id = st.PickNext(now);
    now += kQuantum;
    st.OnQuantumEnd(id, kQuantum, kQuantum, now);
    st.OnReady(id, now);
    if (id == 2u) {
      max_consecutive_b = std::max(max_consecutive_b, ++consecutive_b);
    } else {
      consecutive_b = 0;
    }
  }
  EXPECT_LE(max_consecutive_b, 1);
}

TEST(Stride, BlockedThreadKeepsCredit) {
  StrideScheduler st;
  st.AddThread(1, kT0);
  st.AddThread(2, kT0);
  st.OnReady(1, kT0);
  st.OnReady(2, kT0);
  ASSERT_EQ(st.PickNext(kT0), 1u);
  st.OnQuantumEnd(1, kQuantum, kQuantum, kT0);
  st.OnBlocked(1, kT0);  // blocks with a full pass advance outstanding
  // Thread 2 runs alone for a while.
  for (int i = 0; i < 10; ++i) {
    ASSERT_EQ(st.PickNext(kT0), 2u);
    st.OnQuantumEnd(2, kQuantum, kQuantum, kT0);
    st.OnReady(2, kT0);
  }
  // Rejoin: thread 1 must not get 10 quanta of back-pay...
  st.OnReady(1, kT0);
  int wins1 = 0;
  for (int i = 0; i < 20; ++i) {
    const ThreadId id = st.PickNext(kT0);
    st.OnQuantumEnd(id, kQuantum, kQuantum, kT0);
    st.OnReady(id, kT0);
    if (id == 1u) {
      ++wins1;
    }
  }
  EXPECT_NEAR(wins1, 10, 2);  // ...just its fair half share going forward
}

TEST(Stride, PartialQuantumChargesProportionally) {
  StrideScheduler st;
  st.AddThread(1, kT0);
  st.AddThread(2, kT0);
  st.OnReady(1, kT0);
  st.OnReady(2, kT0);
  // Thread 1 uses only 1/4 of each quantum; with equal tickets it should be
  // dispatched ~4x as often to consume equal CPU.
  std::map<ThreadId, int> dispatches;
  SimTime now = kT0;
  for (int i = 0; i < 500; ++i) {
    const ThreadId id = st.PickNext(now);
    const SimDuration used =
        (id == 1u) ? SimDuration::Millis(25) : kQuantum;
    now += used;
    st.OnQuantumEnd(id, used, kQuantum, now);
    st.OnReady(id, now);
    ++dispatches[id];
  }
  const double ratio = static_cast<double>(dispatches[1]) /
                       static_cast<double>(dispatches[2]);
  EXPECT_NEAR(ratio, 4.0, 0.3);
}

TEST(Stride, SetTicketsRejectsNonPositive) {
  StrideScheduler st;
  st.AddThread(1, kT0);
  EXPECT_THROW(st.SetTickets(1, 0), std::invalid_argument);
  EXPECT_THROW(st.SetTickets(1, -3), std::invalid_argument);
  st.SetTickets(1, 5);
  EXPECT_EQ(st.GetTickets(1), 5);
}

}  // namespace
}  // namespace lottery
