// Tests for the lottery-scheduled reader-writer lock.

#include "src/sim/rwlock.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/sched/round_robin.h"
#include "src/workloads/compute.h"

namespace lottery {
namespace {

Kernel::Options KOpts() {
  Kernel::Options o;
  o.quantum = SimDuration::Millis(100);
  return o;
}

// Repeatedly: acquire (read or write), hold for `hold`, release, compute
// for `gap`. Counts completed critical sections.
class RwTask : public ThreadBody {
 public:
  RwTask(SimRwLock* lock, bool writer, SimDuration hold, SimDuration gap)
      : lock_(lock), writer_(writer), hold_(hold), gap_(gap) {}

  // Cross-slice state machine: the lock is held across Run invocations;
  // ownership is runtime-checked (AssertHeld/NoteHeldAcrossSlice) instead
  // of statically analyzed.
  NO_THREAD_SAFETY_ANALYSIS void Run(RunContext& ctx) override {
    if (waiting_) {
      waiting_ = false;
      phase_ = Phase::kHold;
      left_ = hold_;
      AssertMine(ctx);
    } else if (phase_ == Phase::kHold) {
      AssertMine(ctx);  // preempted mid-hold last slice
    }
    for (;;) {
      switch (phase_) {
        case Phase::kAcquire: {
          const bool got = writer_ ? lock_->AcquireWrite(ctx)
                                   : lock_->AcquireRead(ctx);
          if (!got) {
            waiting_ = true;
            ctx.Block();
            return;
          }
          phase_ = Phase::kHold;
          left_ = hold_;
          break;
        }
        case Phase::kHold:
          left_ -= ctx.Consume(left_ < ctx.remaining() ? left_
                                                       : ctx.remaining());
          if (left_.nanos() > 0) {
            NoteMineAcrossSlice(ctx);
            return;
          }
          if (writer_) {
            lock_->ReleaseWrite(ctx);
          } else {
            lock_->ReleaseRead(ctx);
          }
          ++sections_;
          ctx.AddProgress(1);
          phase_ = Phase::kGap;
          left_ = gap_;
          break;
        case Phase::kGap:
          left_ -= ctx.Consume(left_ < ctx.remaining() ? left_
                                                       : ctx.remaining());
          if (left_.nanos() > 0) {
            return;
          }
          phase_ = Phase::kAcquire;
          break;
      }
      if (ctx.remaining().nanos() == 0) {
        return;
      }
    }
  }

  int64_t sections() const { return sections_; }

 private:
  void AssertMine(RunContext& ctx) NO_THREAD_SAFETY_ANALYSIS {
    if (writer_) {
      lock_->AssertWriteHeld(ctx.self());
    } else {
      lock_->AssertReadHeld(ctx.self());
    }
  }
  void NoteMineAcrossSlice(RunContext& ctx) NO_THREAD_SAFETY_ANALYSIS {
    if (writer_) {
      lock_->NoteWriteHeldAcrossSlice(ctx.self());
    } else {
      lock_->NoteReadHeldAcrossSlice(ctx.self());
    }
  }

  enum class Phase { kAcquire, kHold, kGap };
  SimRwLock* lock_;
  bool writer_;
  SimDuration hold_;
  SimDuration gap_;
  Phase phase_ = Phase::kAcquire;
  bool waiting_ = false;
  SimDuration left_{};
  int64_t sections_ = 0;
};

TEST(SimRwLock, ReadersShareWritersExclude) {
  LotteryScheduler sched;
  Kernel kernel(&sched, KOpts());
  SimRwLock lock(&kernel, "l");
  class Checker : public ThreadBody {
   public:
    explicit Checker(SimRwLock* lock) : lock_(lock) {}
    // Deliberately misuses the lock (the throws are the assertions), so the
    // static analysis — which would reject exactly that — is off here;
    // AssertReadHeld/AssertWriteHeld keep the runtime checks.
    NO_THREAD_SAFETY_ANALYSIS void Run(RunContext& ctx) override {
      EXPECT_TRUE(lock_->AcquireRead(ctx));
      lock_->AssertReadHeld(ctx.self());
      EXPECT_EQ(lock_->num_readers(), 1u);
      // A second reader by another thread would also be admitted; a writer
      // must not be (simulated here by direct state checks).
      EXPECT_FALSE(lock_->write_held());
      lock_->ReleaseRead(ctx);
      EXPECT_TRUE(lock_->AcquireWrite(ctx));
      lock_->AssertWriteHeld(ctx.self());
      EXPECT_TRUE(lock_->write_held());
      EXPECT_THROW(lock_->AcquireWrite(ctx), std::logic_error);
      lock_->ReleaseWrite(ctx);
      EXPECT_THROW(lock_->ReleaseWrite(ctx), std::logic_error);
      EXPECT_THROW(lock_->ReleaseRead(ctx), std::logic_error);
      ctx.Consume(SimDuration::Millis(1));
      ctx.ExitThread();
    }
    SimRwLock* lock_;
  };
  const ThreadId tid = kernel.Spawn("check", std::make_unique<Checker>(&lock));
  sched.FundThread(tid, sched.table().base(), 100);
  kernel.RunFor(SimDuration::Seconds(1));
  EXPECT_EQ(kernel.num_live_threads(), 0u);
}

TEST(SimRwLock, CurrencyLifecycle) {
  LotteryScheduler sched;
  Kernel kernel(&sched, KOpts());
  {
    SimRwLock lock(&kernel, "tmp");
    EXPECT_NE(sched.table().FindCurrency("rwlock:tmp"), nullptr);
  }
  EXPECT_EQ(sched.table().FindCurrency("rwlock:tmp"), nullptr);
}

TEST(SimRwLock, ConcurrentReadersAllProgress) {
  LotteryScheduler::Options lopts;
  lopts.seed = 4;
  LotteryScheduler sched(lopts);
  Kernel kernel(&sched, KOpts());
  SimRwLock lock(&kernel, "l");
  std::vector<RwTask*> readers;
  for (int i = 0; i < 4; ++i) {
    auto r = std::make_unique<RwTask>(&lock, false, SimDuration::Millis(33),
                                      SimDuration::Millis(17));
    readers.push_back(r.get());
    const ThreadId tid = kernel.Spawn("r" + std::to_string(i), std::move(r));
    sched.FundThread(tid, sched.table().base(), 100);
  }
  kernel.RunFor(SimDuration::Seconds(60));
  for (const auto* r : readers) {
    EXPECT_GT(r->sections(), 200);  // pure readers barely contend
  }
}

TEST(SimRwLock, WriterNotStarvedByReaderStream) {
  LotteryScheduler::Options lopts;
  lopts.seed = 6;
  LotteryScheduler sched(lopts);
  Kernel kernel(&sched, KOpts());
  SimRwLock lock(&kernel, "l");
  std::vector<RwTask*> readers;
  for (int i = 0; i < 3; ++i) {
    auto r = std::make_unique<RwTask>(&lock, false, SimDuration::Millis(29),
                                      SimDuration::Millis(7));
    readers.push_back(r.get());
    const ThreadId tid = kernel.Spawn("r" + std::to_string(i), std::move(r));
    sched.FundThread(tid, sched.table().base(), 200);
  }
  auto w = std::make_unique<RwTask>(&lock, true, SimDuration::Millis(13),
                                    SimDuration::Millis(23));
  RwTask* writer = w.get();
  const ThreadId wt = kernel.Spawn("writer", std::move(w));
  sched.FundThread(wt, sched.table().base(), 200);
  kernel.RunFor(SimDuration::Seconds(120));
  EXPECT_GT(writer->sections(), 100);
  EXPECT_GT(lock.write_admissions(), 100u);
  for (const auto* r : readers) {
    EXPECT_GT(r->sections(), 100);
  }
}

TEST(SimRwLock, WorksUnderRoundRobin) {
  RoundRobinScheduler sched;
  Kernel kernel(&sched, KOpts());
  SimRwLock lock(&kernel, "l");
  auto r = std::make_unique<RwTask>(&lock, false, SimDuration::Millis(31),
                                    SimDuration::Millis(11));
  auto w = std::make_unique<RwTask>(&lock, true, SimDuration::Millis(13),
                                    SimDuration::Millis(29));
  RwTask* reader = r.get();
  RwTask* writer = w.get();
  kernel.Spawn("r", std::move(r));
  kernel.Spawn("w", std::move(w));
  kernel.RunFor(SimDuration::Seconds(60));
  EXPECT_GT(reader->sections(), 100);
  EXPECT_GT(writer->sections(), 100);
}

TEST(SimRwLock, FundedWritersAdmittedMoreOften) {
  // Three writers, 800:200:200. With two writers always waiting at each
  // release, the admission lottery runs weighted draws (with exactly two
  // writers the queue never holds both, so no draw would happen).
  LotteryScheduler::Options lopts;
  lopts.seed = 12;
  LotteryScheduler sched(lopts);
  Kernel kernel(&sched, KOpts());
  SimRwLock lock(&kernel, "l");
  auto make_writer = [&](const std::string& name, int64_t tickets) {
    auto body = std::make_unique<RwTask>(&lock, true, SimDuration::Millis(37),
                                         SimDuration::Millis(3));
    RwTask* raw = body.get();
    const ThreadId tid = kernel.Spawn(name, std::move(body));
    sched.FundThread(tid, sched.table().base(), tickets);
    return raw;
  };
  RwTask* rich = make_writer("rich", 800);
  RwTask* poor1 = make_writer("poor1", 200);
  RwTask* poor2 = make_writer("poor2", 200);
  kernel.RunFor(SimDuration::Seconds(240));
  ASSERT_GT(poor1->sections(), 0);
  ASSERT_GT(poor2->sections(), 0);
  const double poor_avg =
      static_cast<double>(poor1->sections() + poor2->sections()) / 2.0;
  const double ratio = static_cast<double>(rich->sections()) / poor_avg;
  EXPECT_GT(ratio, 1.5);
}

}  // namespace
}  // namespace lottery
