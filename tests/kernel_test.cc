// Tests for the simulated kernel: dispatch, accounting, sleep, exit,
// idle handling, tick delivery, and the livelock guard.

#include "src/sim/kernel.h"

#include <gtest/gtest.h>

#include "src/sched/round_robin.h"
#include "src/workloads/compute.h"

namespace lottery {
namespace {

Kernel::Options DefaultOptions() {
  Kernel::Options opts;
  opts.quantum = SimDuration::Millis(100);
  return opts;
}

// Consumes the full budget every slice.
class Spinner : public ThreadBody {
 public:
  void Run(RunContext& ctx) override { ctx.Consume(ctx.remaining()); }
};

// Runs for `burst` then sleeps for `nap`, `cycles` times, then exits.
class Napper : public ThreadBody {
 public:
  Napper(SimDuration burst, SimDuration nap, int cycles)
      : burst_(burst), nap_(nap), cycles_(cycles) {}
  void Run(RunContext& ctx) override {
    ctx.Consume(burst_);
    if (--cycles_ <= 0) {
      ctx.ExitThread();
      return;
    }
    ctx.SleepFor(nap_);
  }

 private:
  SimDuration burst_;
  SimDuration nap_;
  int cycles_;
};

// Stays runnable but consumes nothing (to trip the livelock guard).
class Lazy : public ThreadBody {
 public:
  void Run(RunContext& ctx) override { ctx.Yield(); }
};

TEST(Kernel, AdvancesClockByConsumedCpu) {
  RoundRobinScheduler sched;
  Kernel kernel(&sched, DefaultOptions());
  kernel.Spawn("spin", std::make_unique<Spinner>());
  kernel.RunFor(SimDuration::Seconds(1));
  EXPECT_EQ(kernel.now(), SimTime::Zero() + SimDuration::Seconds(1));
}

TEST(Kernel, CpuTimeAccountedPerThread) {
  RoundRobinScheduler sched;
  Kernel kernel(&sched, DefaultOptions());
  const ThreadId a = kernel.Spawn("a", std::make_unique<Spinner>());
  const ThreadId b = kernel.Spawn("b", std::make_unique<Spinner>());
  kernel.RunFor(SimDuration::Seconds(10));
  EXPECT_EQ(kernel.CpuTime(a), SimDuration::Seconds(5));
  EXPECT_EQ(kernel.CpuTime(b), SimDuration::Seconds(5));
  EXPECT_EQ(kernel.Dispatches(a), 50u);
}

TEST(Kernel, ProgressReachesTracer) {
  RoundRobinScheduler sched;
  Tracer tracer(SimDuration::Seconds(1));
  Kernel kernel(&sched, DefaultOptions(), &tracer);
  const ThreadId a = kernel.Spawn(
      "a", std::make_unique<ComputeTask>(
               ComputeTask::Options{SimDuration::Millis(1)}));
  kernel.RunFor(SimDuration::Seconds(2));
  // 1 ms per iteration, sole thread: 1000 iterations per second. A unit
  // finishing exactly on a window edge is attributed to the next window.
  EXPECT_EQ(tracer.TotalProgress(a), 2000);
  EXPECT_NEAR(static_cast<double>(tracer.WindowProgress(a, 0)), 1000.0, 1.0);
  EXPECT_NEAR(static_cast<double>(tracer.WindowProgress(a, 1)), 1000.0, 1.0);
}

TEST(Kernel, SleepWakesAtTheRightTime) {
  RoundRobinScheduler sched;
  Kernel kernel(&sched, DefaultOptions());
  kernel.Spawn("nap", std::make_unique<Napper>(SimDuration::Millis(10),
                                               SimDuration::Millis(90), 3));
  kernel.RunFor(SimDuration::Seconds(1));
  // Three 10 ms bursts + two 90 ms naps = 210 ms of activity; the thread
  // exited afterwards, and the kernel idles to the horizon.
  EXPECT_EQ(kernel.num_live_threads(), 0u);
  EXPECT_EQ(kernel.idle_time(),
            SimDuration::Seconds(1) - SimDuration::Millis(30));
}

TEST(Kernel, IdleTimeWhenNoThreads) {
  RoundRobinScheduler sched;
  Kernel kernel(&sched, DefaultOptions());
  kernel.RunFor(SimDuration::Seconds(3));
  // Nothing to run: the clock idles forward to the horizon.
  EXPECT_DOUBLE_EQ(kernel.now().ToSecondsF(), 3.0);
  EXPECT_EQ(kernel.idle_time(), SimDuration::Seconds(3));
}

TEST(Kernel, MixedLoadSleeperGetsCpuPromptly) {
  RoundRobinScheduler sched;
  Kernel kernel(&sched, DefaultOptions());
  const ThreadId spin = kernel.Spawn("spin", std::make_unique<Spinner>());
  const ThreadId nap = kernel.Spawn(
      "nap", std::make_unique<Napper>(SimDuration::Millis(10),
                                      SimDuration::Millis(200), 1000));
  kernel.RunFor(SimDuration::Seconds(10));
  EXPECT_GT(kernel.CpuTime(nap).ToSecondsF(), 0.2);
  EXPECT_GT(kernel.CpuTime(spin).ToSecondsF(), 8.0);
}

TEST(Kernel, ExitRemovesFromScheduler) {
  RoundRobinScheduler sched;
  Kernel kernel(&sched, DefaultOptions());
  const ThreadId t = kernel.Spawn(
      "short", std::make_unique<Napper>(SimDuration::Millis(10),
                                        SimDuration::Millis(10), 1));
  kernel.Spawn("spin", std::make_unique<Spinner>());
  kernel.RunFor(SimDuration::Seconds(1));
  EXPECT_FALSE(kernel.Alive(t));
  EXPECT_EQ(kernel.num_live_threads(), 1u);
  EXPECT_THROW(kernel.Wake(t, kernel.now()), std::logic_error);
}

TEST(Kernel, ContextSwitchesCounted) {
  RoundRobinScheduler sched;
  Kernel kernel(&sched, DefaultOptions());
  kernel.Spawn("a", std::make_unique<Spinner>());
  kernel.Spawn("b", std::make_unique<Spinner>());
  kernel.RunFor(SimDuration::Seconds(1));
  // Alternating every quantum: ~10 switches in 10 quanta.
  EXPECT_GE(kernel.context_switches(), 9u);
}

TEST(Kernel, TickDeliveredOncePerInterval) {
  class CountingSched : public RoundRobinScheduler {
   public:
    void Tick(SimTime) override { ++ticks; }
    int ticks = 0;
  };
  CountingSched sched;
  Kernel kernel(&sched, DefaultOptions());
  kernel.Spawn("spin", std::make_unique<Spinner>());
  kernel.RunFor(SimDuration::Seconds(5));
  EXPECT_EQ(sched.ticks, 5);
}

TEST(Kernel, LivelockGuardThrows) {
  RoundRobinScheduler sched;
  Kernel kernel(&sched, DefaultOptions());
  kernel.Spawn("lazy", std::make_unique<Lazy>());
  EXPECT_THROW(kernel.RunFor(SimDuration::Seconds(1)), std::logic_error);
}

TEST(Kernel, SpawnNotReadyStaysParkedUntilWoken) {
  RoundRobinScheduler sched;
  Kernel kernel(&sched, DefaultOptions());
  const ThreadId t = kernel.Spawn("parked", std::make_unique<Spinner>(),
                                  /*start_ready=*/false);
  kernel.Spawn("spin", std::make_unique<Spinner>());
  kernel.RunFor(SimDuration::Seconds(1));
  EXPECT_EQ(kernel.CpuTime(t).nanos(), 0);
  kernel.Wake(t, kernel.now());
  kernel.RunFor(SimDuration::Seconds(1));
  EXPECT_GT(kernel.CpuTime(t).nanos(), 0);
}

TEST(Kernel, ThreadNamesAreKept) {
  RoundRobinScheduler sched;
  Kernel kernel(&sched, DefaultOptions());
  const ThreadId t = kernel.Spawn("alice", std::make_unique<Spinner>());
  EXPECT_EQ(kernel.ThreadName(t), "alice");
  EXPECT_THROW(kernel.ThreadName(999), std::invalid_argument);
}

TEST(Kernel, SpawnFromInsideARunningBody) {
  // Forking: a body may spawn children mid-slice through ctx.kernel().
  RoundRobinScheduler sched;
  Kernel kernel(&sched, DefaultOptions());
  // The child id is written through an external pointer: the forker's body
  // object is destroyed when the thread exits.
  class Forker : public ThreadBody {
   public:
    explicit Forker(ThreadId* child_out) : child_out_(child_out) {}
    void Run(RunContext& ctx) override {
      ctx.Consume(SimDuration::Millis(10));
      *child_out_ = ctx.kernel().Spawn("child", std::make_unique<Spinner>());
      ctx.ExitThread();
    }
    ThreadId* child_out_;
  };
  ThreadId child = kInvalidThreadId;
  kernel.Spawn("forker", std::make_unique<Forker>(&child));
  kernel.RunFor(SimDuration::Seconds(1));
  ASSERT_NE(child, kInvalidThreadId);
  EXPECT_TRUE(kernel.Alive(child));
  EXPECT_GT(kernel.CpuTime(child).ToSecondsF(), 0.9);
}

TEST(Kernel, RunUntilQuiescentDrainsFiniteWork) {
  RoundRobinScheduler sched;
  Kernel kernel(&sched, DefaultOptions());
  kernel.Spawn("nap", std::make_unique<Napper>(SimDuration::Millis(10),
                                               SimDuration::Millis(90), 5));
  EXPECT_TRUE(kernel.RunUntilQuiescent());
  EXPECT_EQ(kernel.num_live_threads(), 0u);
  // 5 bursts + 4 naps = 410 ms of activity; quiescence is detected at
  // quantum granularity, so the clock stops within one quantum of that.
  EXPECT_GE(kernel.now().ToSecondsF(), 0.41);
  EXPECT_LE(kernel.now().ToSecondsF(), 0.52);
}

TEST(Kernel, RunUntilQuiescentHitsHorizonOnEndlessWork) {
  RoundRobinScheduler sched;
  Kernel kernel(&sched, DefaultOptions());
  kernel.Spawn("spin", std::make_unique<Spinner>());
  EXPECT_FALSE(kernel.RunUntilQuiescent(SimDuration::Seconds(2)));
  EXPECT_GE(kernel.now().ToSecondsF(), 2.0);
}

TEST(Kernel, RejectsBadQuantum) {
  RoundRobinScheduler sched;
  Kernel::Options opts;
  opts.quantum = SimDuration::Nanos(0);
  EXPECT_THROW(Kernel(&sched, opts), std::invalid_argument);
}

TEST(RunContextTest, ConsumeClampsToBudget) {
  RoundRobinScheduler sched;
  Kernel kernel(&sched, DefaultOptions());
  class Greedy : public ThreadBody {
   public:
    void Run(RunContext& ctx) override {
      const SimDuration got = ctx.Consume(SimDuration::Seconds(10));
      EXPECT_EQ(got, SimDuration::Millis(100));
      EXPECT_EQ(ctx.remaining().nanos(), 0);
      EXPECT_THROW(ctx.Consume(SimDuration::Nanos(-1)), std::invalid_argument);
      ctx.ExitThread();
    }
  };
  kernel.Spawn("greedy", std::make_unique<Greedy>());
  kernel.RunFor(SimDuration::Seconds(1));
  EXPECT_EQ(kernel.num_live_threads(), 0u);
}

TEST(RunContextTest, DoubleDispositionThrows) {
  RoundRobinScheduler sched;
  Kernel kernel(&sched, DefaultOptions());
  class Confused : public ThreadBody {
   public:
    void Run(RunContext& ctx) override {
      ctx.Consume(SimDuration::Millis(1));
      ctx.Yield();
      EXPECT_THROW(ctx.Block(), std::logic_error);
      exercised = true;
    }
    bool exercised = false;
  };
  auto body = std::make_unique<Confused>();
  Confused* raw = body.get();
  kernel.Spawn("confused", std::move(body));
  kernel.RunFor(SimDuration::Millis(1));
  EXPECT_TRUE(raw->exercised);
}

}  // namespace
}  // namespace lottery
