// Ground-truth suite for incremental pricing (dirty propagation).
//
// Every mutation kind — SetAmount, Fund/Unfund, activate/deactivate,
// DestroyTicket, compensation grants, ticket transfers — is mirrored
// against a brute-force full-graph reprice that reads only the structural
// state (amounts, active flags, edges) and never the caches. The cached
// values must be bit-identical to the brute-force ones after every step.
// A second family of tests asserts the *point* of the exercise via the obs
// counters: mutations in one subtree must not reprice the other, and the
// scheduler's tree backend must stay at zero full syncs in steady state.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/core/client.h"
#include "src/core/currency.h"
#include "src/core/lottery_scheduler.h"
#include "src/core/transfer.h"
#include "src/obs/registry.h"
#include "src/util/fastrand.h"

namespace lottery {
namespace {

// --- Brute-force repricing (no caches) -------------------------------------

Funding BruteCurrencyValue(const Currency* currency);

Funding BruteTicketValue(const Ticket* ticket) {
  if (!ticket->active()) {
    return Funding::Zero();
  }
  const Currency* denom = ticket->denomination();
  if (denom->is_base()) {
    return Funding::FromBase(ticket->amount());
  }
  if (denom->active_amount() <= 0) {
    return Funding::Zero();
  }
  return BruteCurrencyValue(denom).ScaleBy(ticket->amount(),
                                           denom->active_amount());
}

Funding BruteCurrencyValue(const Currency* currency) {
  Funding sum = Funding::Zero();
  for (const Ticket* t : currency->backing()) {
    sum += BruteTicketValue(t);
  }
  return sum;
}

Funding BruteClientValue(const Client& client) {
  if (!client.active()) {
    return Funding::Zero();
  }
  Funding sum = Funding::Zero();
  for (const Ticket* t : client.tickets()) {
    sum += BruteTicketValue(t);
  }
  if (client.compensation_num() != client.compensation_den()) {
    sum = sum.ScaleBy(client.compensation_num(), client.compensation_den());
  }
  return sum;
}

// Asserts the incremental caches agree with brute force for every currency
// and every client — the caches are read first so a stale cache cannot be
// repaired by the brute-force walk.
void ExpectMatchesBruteForce(const CurrencyTable& table,
                             const std::vector<Client*>& clients,
                             const std::string& context) {
  for (const Currency* c : table.Currencies()) {
    if (c->is_base()) {
      continue;
    }
    const Funding cached = table.CurrencyValue(c);
    ASSERT_EQ(cached.raw(), BruteCurrencyValue(c).raw())
        << context << ": stale value for currency " << c->name();
  }
  for (const Client* c : clients) {
    const Funding cached = c->Value();
    ASSERT_EQ(cached.raw(), BruteClientValue(*c).raw())
        << context << ": stale value for client " << c->name();
  }
}

// --- Every mutation kind against ground truth -------------------------------

// Figure 3-shaped fixture: base -> alice (3000), base -> bob (2000);
// alice -> {task1 (100), task2 (200)}; task2 -> {thread2 (300)};
// bob -> {thread3 (100)}; plus per-thread clients.
class InvalidationGroundTruth : public ::testing::Test {
 protected:
  void SetUp() override {
    alice_ = table_.CreateCurrency("alice");
    bob_ = table_.CreateCurrency("bob");
    task1_ = table_.CreateCurrency("task1");
    task2_ = table_.CreateCurrency("task2");
    alice_base_ = table_.CreateTicket(table_.base(), 3000);
    table_.Fund(alice_, alice_base_);
    bob_base_ = table_.CreateTicket(table_.base(), 2000);
    table_.Fund(bob_, bob_base_);
    task1_ticket_ = table_.CreateTicket(alice_, 100);
    table_.Fund(task1_, task1_ticket_);
    task2_ticket_ = table_.CreateTicket(alice_, 200);
    table_.Fund(task2_, task2_ticket_);

    c1_ = std::make_unique<Client>(&table_, "thread1");
    c1_->HoldTicket(table_.CreateTicket(task1_, 500));
    c2_ = std::make_unique<Client>(&table_, "thread2");
    c2_->HoldTicket(table_.CreateTicket(task2_, 300));
    c3_ = std::make_unique<Client>(&table_, "thread3");
    c3_->HoldTicket(table_.CreateTicket(bob_, 100));
    c1_->SetActive(true);
    c2_->SetActive(true);
    c3_->SetActive(true);
    clients_ = {c1_.get(), c2_.get(), c3_.get()};
  }

  void Check(const std::string& context) {
    ExpectMatchesBruteForce(table_, clients_, context);
  }

  CurrencyTable table_;
  Currency* alice_ = nullptr;
  Currency* bob_ = nullptr;
  Currency* task1_ = nullptr;
  Currency* task2_ = nullptr;
  Ticket* alice_base_ = nullptr;
  Ticket* bob_base_ = nullptr;
  Ticket* task1_ticket_ = nullptr;
  Ticket* task2_ticket_ = nullptr;
  std::unique_ptr<Client> c1_, c2_, c3_;
  std::vector<Client*> clients_;
};

TEST_F(InvalidationGroundTruth, SetAmountOnEveryLevel) {
  Check("initial");
  table_.SetAmount(task1_ticket_, 400);  // mid-graph inflation
  Check("after inflating task1's funding");
  table_.SetAmount(alice_base_, 1000);  // root-level deflation
  Check("after deflating alice's base funding");
  table_.SetAmount(c2_->tickets()[0], 50);  // leaf (held ticket)
  Check("after deflating thread2's held ticket");
  table_.SetAmount(task1_ticket_, 400);  // no-op SetAmount
  Check("after no-op SetAmount");
}

TEST_F(InvalidationGroundTruth, SetAmountOnInactiveTicket) {
  c1_->SetActive(false);
  Check("after deactivating thread1");
  // thread1's chain is inactive; inflating its held ticket must not corrupt
  // anyone's cache, and the value must be right once it reactivates.
  table_.SetAmount(c1_->tickets()[0], 900);
  Check("after inflating an inactive ticket");
  c1_->SetActive(true);
  Check("after reactivating thread1");
}

TEST_F(InvalidationGroundTruth, FundAndUnfund) {
  Ticket* extra = table_.CreateTicket(table_.base(), 700);
  Check("after creating an unattached ticket");
  table_.Fund(alice_, extra);
  Check("after funding alice with new base ticket");
  table_.Unfund(extra);
  Check("after unfunding it again");
  // Re-route the same ticket to the other user's subtree.
  table_.Fund(bob_, extra);
  Check("after funding bob instead");
  table_.DestroyTicket(extra);
  Check("after destroying the routed ticket");
}

TEST_F(InvalidationGroundTruth, ActivationCascades) {
  c2_->SetActive(false);
  Check("after thread2 blocks");
  // task2 is now fully inactive; its backing deactivated up the chain.
  EXPECT_EQ(task2_->active_amount(), 0);
  c2_->SetActive(true);
  Check("after thread2 unblocks");
  // Blocking both of alice's consumers deactivates alice herself.
  c1_->SetActive(false);
  c2_->SetActive(false);
  Check("after both of alice's threads block");
  EXPECT_EQ(alice_->active_amount(), 0);
  c1_->SetActive(true);
  Check("after thread1 unblocks alone");
}

TEST_F(InvalidationGroundTruth, HoldAndReleaseAndDestroy) {
  Ticket* second = table_.CreateTicket(task1_, 250);
  c1_->HoldTicket(second);
  Check("after thread1 holds a second task1 ticket");
  c1_->ReleaseTicket(second);
  Check("after releasing it");
  c2_->HoldTicket(second);
  Check("after thread2 holds it instead");
  table_.DestroyTicket(second);  // destroys while held: detaches first
  Check("after destroying the held ticket");
}

TEST_F(InvalidationGroundTruth, CompensationGrantAndClear) {
  c1_->SetCompensation(5, 1);
  Check("after 5x compensation on thread1");
  c1_->SetCompensation(10, 7);
  Check("after adjusting the factor");
  c1_->ClearCompensation();
  Check("after clearing compensation");
  c1_->ClearCompensation();  // second clear is a no-op
  Check("after redundant clear");
}

TEST_F(InvalidationGroundTruth, TicketTransfers) {
  Currency* server = table_.CreateCurrency("server");
  Client worker(&table_, "worker");
  worker.HoldTicket(table_.CreateTicket(server, 1));
  worker.SetActive(true);
  clients_.push_back(&worker);
  {
    // thread3 blocks on the server: its funding flows through the transfer.
    TicketTransfer transfer(&table_, bob_, server, 1000);
    Check("after creating the transfer");
    c3_->SetActive(false);
    Check("after the transferring client blocks");
    transfer.Retarget(task1_);
    Check("after retargeting the transfer");
    transfer.Retarget(server);
    c3_->SetActive(true);
    Check("after the client unblocks with the transfer live");
  }
  Check("after the transfer is destroyed");
  clients_.pop_back();
}

TEST_F(InvalidationGroundTruth, DestroyCurrencySubtree) {
  // Drain task1: release the held ticket, destroy issued tickets, then the
  // currency itself (which retires its backing).
  c1_->ReleaseTicket(c1_->tickets()[0]);
  Check("after thread1 releases its ticket");
  Ticket* issued = table_.Tickets().front();
  for (Ticket* t : table_.Tickets()) {
    if (t->denomination() == task1_ && t->holder() == nullptr &&
        t->funds() == nullptr) {
      issued = t;
      table_.DestroyTicket(t);
    }
  }
  Check("after destroying task1's detached issued ticket");
  (void)issued;
  table_.DestroyCurrency(task1_);
  Check("after destroying the task1 currency");
}

// --- Randomized sweep: every value exact after every random mutation --------

class InvalidationFuzz : public ::testing::TestWithParam<uint32_t> {};

TEST_P(InvalidationFuzz, RandomMutationsStayGroundTrue) {
  FastRand rng(GetParam());
  CurrencyTable table;
  std::vector<std::unique_ptr<Client>> owned;
  int name_counter = 0;

  auto random_currency = [&]() -> Currency* {
    const auto all = table.Currencies();
    return all[rng.NextBelow(static_cast<uint32_t>(all.size()))];
  };
  auto random_ticket = [&]() -> Ticket* {
    const auto all = table.Tickets();
    return all.empty()
               ? nullptr
               : all[rng.NextBelow(static_cast<uint32_t>(all.size()))];
  };

  for (int step = 0; step < 400; ++step) {
    const uint32_t op = rng.NextBelow(12);
    try {
      switch (op) {
        case 0:
          if (table.num_currencies() < 10) {
            table.CreateCurrency("cur" + std::to_string(name_counter++));
          }
          break;
        case 1:
          if (table.num_tickets() < 50) {
            table.CreateTicket(random_currency(), 1 + rng.NextBelow(1000));
          }
          break;
        case 2: {
          Ticket* t = random_ticket();
          if (t != nullptr) {
            table.Fund(random_currency(), t);
          }
          break;
        }
        case 3: {
          Ticket* t = random_ticket();
          if (t != nullptr && t->funds() != nullptr) {
            table.Unfund(t);
          }
          break;
        }
        case 4: {
          Ticket* t = random_ticket();
          if (t != nullptr) {
            table.DestroyTicket(t);
          }
          break;
        }
        case 5: {
          Ticket* t = random_ticket();
          if (t != nullptr) {
            table.SetAmount(t, 1 + rng.NextBelow(2000));
          }
          break;
        }
        case 6:
          if (owned.size() < 12) {
            owned.push_back(std::make_unique<Client>(
                &table, "client" + std::to_string(name_counter++)));
          }
          break;
        case 7: {
          Ticket* t = random_ticket();
          if (t != nullptr && !owned.empty() && t->holder() == nullptr &&
              t->funds() == nullptr) {
            owned[rng.NextBelow(static_cast<uint32_t>(owned.size()))]
                ->HoldTicket(t);
          }
          break;
        }
        case 8: {
          if (!owned.empty()) {
            Client* c =
                owned[rng.NextBelow(static_cast<uint32_t>(owned.size()))]
                    .get();
            if (!c->tickets().empty()) {
              c->ReleaseTicket(c->tickets()[rng.NextBelow(
                  static_cast<uint32_t>(c->tickets().size()))]);
            }
          }
          break;
        }
        case 9: {
          if (!owned.empty()) {
            Client* c =
                owned[rng.NextBelow(static_cast<uint32_t>(owned.size()))]
                    .get();
            c->SetActive(!c->active());
          }
          break;
        }
        case 10: {  // compensation grant (the per-quantum hot mutation)
          if (!owned.empty()) {
            Client* c =
                owned[rng.NextBelow(static_cast<uint32_t>(owned.size()))]
                    .get();
            c->SetCompensation(1 + rng.NextBelow(20), 1 + rng.NextBelow(5));
          }
          break;
        }
        case 11: {
          if (!owned.empty()) {
            owned[rng.NextBelow(static_cast<uint32_t>(owned.size()))]
                ->ClearCompensation();
          }
          break;
        }
      }
    } catch (const std::invalid_argument&) {
      // Legitimately rejected operation; values must still be exact.
    }
    std::vector<Client*> clients;
    for (const auto& c : owned) {
      clients.push_back(c.get());
    }
    ExpectMatchesBruteForce(table, clients,
                            "seed " + std::to_string(GetParam()) + " step " +
                                std::to_string(step));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, InvalidationFuzz,
                         ::testing::Values(7u, 11u, 23u, 42u, 1994u));

// --- Cache retention: untouched subtrees stay cached ------------------------

TEST(CacheRetention, MutationInOneSubtreeDoesNotRepriceTheOther) {
  if (!obs::kObsEnabled) {
    GTEST_SKIP() << "obs hooks compiled out";
  }
  obs::Registry reg;
  CurrencyTable table(&reg);
  // Two disjoint user subtrees, two levels deep each.
  struct Subtree {
    Currency* user;
    Currency* task;
    Ticket* funding;
    std::unique_ptr<Client> client;
  };
  auto build = [&](const std::string& name) {
    Subtree s;
    s.user = table.CreateCurrency(name);
    table.Fund(s.user, table.CreateTicket(table.base(), 1000));
    s.task = table.CreateCurrency(name + ".task");
    s.funding = table.CreateTicket(s.user, 100);
    table.Fund(s.task, s.funding);
    s.client = std::make_unique<Client>(&table, name + ".thread");
    s.client->HoldTicket(table.CreateTicket(s.task, 10));
    s.client->SetActive(true);
    return s;
  };
  Subtree a = build("a");
  Subtree b = build("b");

  // Prime every cache.
  (void)a.client->Value();
  (void)b.client->Value();
  for (const Currency* c : table.Currencies()) {
    (void)table.CurrencyValue(c);
  }

  const uint64_t reprices_before = reg.counter("currency.reprices")->value();
  const uint64_t client_reprices_before =
      reg.counter("client.reprices")->value();

  // Inflate a's task funding: dirties a.task and a's client — nothing in b.
  table.SetAmount(a.funding, 250);
  const uint64_t dirty_after = reg.counter("currency.dirty_marks")->value();

  // Re-query *everything*; only a's chain may reprice.
  (void)a.client->Value();
  (void)b.client->Value();
  for (const Currency* c : table.Currencies()) {
    (void)table.CurrencyValue(c);
  }
  const uint64_t reprices = reg.counter("currency.reprices")->value() -
                            reprices_before;
  const uint64_t client_reprices =
      reg.counter("client.reprices")->value() - client_reprices_before;
  EXPECT_EQ(reprices, 1u) << "only a.task should reprice";
  EXPECT_EQ(client_reprices, 1u) << "only a's client should reprice";
  EXPECT_GT(dirty_after, 0u);

  // And the repriced values are right.
  EXPECT_EQ(a.client->Value().raw(), BruteClientValue(*a.client).raw());
  EXPECT_EQ(b.client->Value().raw(), BruteClientValue(*b.client).raw());
}

TEST(CacheRetention, CompensationDirtiesOnlyTheGrantedClient) {
  if (!obs::kObsEnabled) {
    GTEST_SKIP() << "obs hooks compiled out";
  }
  obs::Registry reg;
  CurrencyTable table(&reg);
  Currency* shared = table.CreateCurrency("shared");
  table.Fund(shared, table.CreateTicket(table.base(), 1000));
  Client x(&table, "x");
  x.HoldTicket(table.CreateTicket(shared, 1));
  x.SetActive(true);
  Client y(&table, "y");
  y.HoldTicket(table.CreateTicket(shared, 1));
  y.SetActive(true);
  (void)x.Value();
  (void)y.Value();
  (void)table.CurrencyValue(shared);

  const uint64_t reprices_before = reg.counter("currency.reprices")->value();
  x.SetCompensation(3, 1);
  (void)x.Value();
  (void)y.Value();
  EXPECT_EQ(reg.counter("currency.reprices")->value(), reprices_before)
      << "a compensation grant must not reprice any currency";
  EXPECT_EQ(x.Value().raw(), BruteClientValue(x).raw());
  EXPECT_EQ(y.Value().raw(), BruteClientValue(y).raw());
}

// --- Observer notifications -------------------------------------------------

class RecordingObserver : public ValueObserver {
 public:
  void OnClientValueDirty(Client* client) override {
    notified.push_back(client);
  }
  std::vector<Client*> notified;
};

TEST(ValueObserverTest, NotifiedOnEveryValueAffectingMutation) {
  CurrencyTable table;
  RecordingObserver obs;
  table.AddObserver(&obs);
  Currency* cur = table.CreateCurrency("cur");
  Ticket* backing = table.CreateTicket(table.base(), 100);
  table.Fund(cur, backing);
  Client c(&table, "c");
  c.HoldTicket(table.CreateTicket(cur, 10));

  obs.notified.clear();
  c.SetActive(true);
  EXPECT_FALSE(obs.notified.empty());

  // A refreshed observer must be re-notified by the next mutation even
  // though the client's own dirty flag was already consumed.
  (void)c.Value();
  obs.notified.clear();
  table.SetAmount(backing, 900);
  ASSERT_FALSE(obs.notified.empty());
  EXPECT_EQ(obs.notified.front(), &c);
  (void)c.Value();
  obs.notified.clear();
  table.SetAmount(backing, 901);
  EXPECT_FALSE(obs.notified.empty());

  table.RemoveObserver(&obs);
  obs.notified.clear();
  table.SetAmount(backing, 500);
  EXPECT_TRUE(obs.notified.empty());
}

// --- Scheduler steady state: no full syncs under compensation churn ---------

TEST(TreeBackendSteadyState, CompensationChurnCostsNoFullSyncs) {
  if (!obs::kObsEnabled) {
    GTEST_SKIP() << "obs hooks compiled out";
  }
  obs::Registry reg;
  LotteryScheduler::Options opts;
  opts.backend = RunQueueBackend::kTree;
  opts.metrics = &reg;
  opts.seed = 42;
  LotteryScheduler sched(opts);
  const SimTime t0 = SimTime::Zero();
  for (ThreadId id = 1; id <= 32; ++id) {
    sched.AddThread(id, t0);
    sched.FundThread(id, sched.table().base(), 50 + int64_t(id) * 10);
    sched.OnReady(id, t0);
  }
  // Warm up: first dispatches absorb the arrival burst.
  for (int i = 0; i < 64; ++i) {
    const ThreadId id = sched.PickNext(t0);
    ASSERT_NE(id, kInvalidThreadId);
    sched.OnQuantumEnd(id, SimDuration::Millis(100), SimDuration::Millis(100),
                       t0);
    sched.OnReady(id, t0);
  }
  reg.Reset();
  // Steady state with compensation churn: every quantum under-consumes, so
  // every dispatch grants a compensation ticket — and still no dispatch may
  // fall back to a full tree resync.
  for (int i = 0; i < 1000; ++i) {
    const ThreadId id = sched.PickNext(t0);
    ASSERT_NE(id, kInvalidThreadId);
    sched.OnQuantumEnd(id, SimDuration::Millis(20), SimDuration::Millis(100),
                       t0);
    sched.OnReady(id, t0);
  }
  EXPECT_EQ(reg.counter("tree.full_syncs")->value(), 0u);
  // The churned thread re-enters the queue with a fresh weight, so even
  // leaf updates stay rare (only clients dirtied while queued need one).
  EXPECT_LE(reg.counter("tree.leaf_updates")->value(), 2000u);
  EXPECT_EQ(reg.counter("lottery.draws")->value(), 1000u);
}

TEST(TreeBackendSteadyState, InflationOnQueuedThreadUpdatesOneLeaf) {
  if (!obs::kObsEnabled) {
    GTEST_SKIP() << "obs hooks compiled out";
  }
  obs::Registry reg;
  LotteryScheduler::Options opts;
  opts.backend = RunQueueBackend::kTree;
  opts.metrics = &reg;
  LotteryScheduler sched(opts);
  const SimTime t0 = SimTime::Zero();
  std::vector<Ticket*> funding;
  for (ThreadId id = 1; id <= 16; ++id) {
    sched.AddThread(id, t0);
    funding.push_back(sched.FundThread(id, sched.table().base(), 100));
    sched.OnReady(id, t0);
  }
  // Drain the arrival burst and leave every thread sitting in the queue.
  for (int i = 0; i < 2; ++i) {
    const ThreadId running = sched.PickNext(t0);
    sched.OnQuantumEnd(running, SimDuration::Millis(100),
                       SimDuration::Millis(100), t0);
    sched.OnReady(running, t0);
  }

  reg.Reset();
  // Inflate one queued thread's funding: exactly one leaf must be re-pushed
  // on the next dispatch.
  sched.table().SetAmount(funding[7], 900);
  (void)sched.PickNext(t0);
  EXPECT_EQ(reg.counter("tree.leaf_updates")->value(), 1u);
  EXPECT_EQ(reg.counter("tree.full_syncs")->value(), 0u);
}

}  // namespace
}  // namespace lottery
