// Tests for lottery-scheduled disk bandwidth and link (virtual circuit)
// scheduling (Section 6's generalization to diverse resources).

#include <gtest/gtest.h>

#include "src/sim/disk.h"
#include "src/sim/link.h"

namespace lottery {
namespace {

SimTime At(int64_t ms) { return SimTime::Zero() + SimDuration::Millis(ms); }

// --- DiskScheduler ------------------------------------------------------------

DiskScheduler::Options DiskOpts() {
  DiskScheduler::Options o;
  o.bytes_per_second = 1000000;  // 1 MB/s
  o.seek_overhead = SimDuration::Millis(1);
  return o;
}

TEST(Disk, RejectsBadConfig) {
  FastRand rng(1);
  DiskScheduler::Options bad;
  bad.bytes_per_second = 0;
  EXPECT_THROW(DiskScheduler(bad, &rng), std::invalid_argument);
}

TEST(Disk, ServesSingleRequest) {
  FastRand rng(1);
  DiskScheduler disk(DiskOpts(), &rng);
  disk.RegisterClient(1, 10);
  disk.Submit(1, 100000, At(0));  // 100 KB: 100 ms transfer + 1 ms seek
  disk.AdvanceTo(At(500));
  EXPECT_EQ(disk.BytesServed(1), 100000);
  EXPECT_EQ(disk.RequestsServed(1), 1u);
  EXPECT_TRUE(disk.idle());
}

TEST(Disk, RejectsBadSubmissions) {
  FastRand rng(1);
  DiskScheduler disk(DiskOpts(), &rng);
  disk.RegisterClient(1, 10);
  EXPECT_THROW(disk.Submit(1, 0, At(0)), std::invalid_argument);
  EXPECT_THROW(disk.Submit(2, 10, At(0)), std::invalid_argument);
}

TEST(Disk, FutureSubmissionsWaitForTheirTime) {
  FastRand rng(1);
  DiskScheduler disk(DiskOpts(), &rng);
  disk.RegisterClient(1, 10);
  disk.Submit(1, 1000, At(100));
  disk.AdvanceTo(At(50));
  EXPECT_EQ(disk.RequestsServed(1), 0u);
  disk.AdvanceTo(At(200));
  EXPECT_EQ(disk.RequestsServed(1), 1u);
}

TEST(Disk, BandwidthSharesFollowTickets) {
  // Two permanently backlogged clients with 3:1 tickets split the
  // device's bytes roughly 3:1.
  FastRand rng(4242);
  DiskScheduler disk(DiskOpts(), &rng);
  disk.RegisterClient(1, 300);
  disk.RegisterClient(2, 100);
  // Enough work that neither queue drains within the horizon (each request
  // takes 11 ms; 40000 requests is 440 s of demand for a 200 s run).
  for (int i = 0; i < 20000; ++i) {
    disk.Submit(1, 10000, At(0));
    disk.Submit(2, 10000, At(0));
  }
  disk.AdvanceTo(At(200000));  // 200 s
  EXPECT_GT(disk.QueueDepth(1), 0u);
  EXPECT_GT(disk.QueueDepth(2), 0u);
  ASSERT_GT(disk.BytesServed(2), 0);
  const double ratio = static_cast<double>(disk.BytesServed(1)) /
                       static_cast<double>(disk.BytesServed(2));
  EXPECT_NEAR(ratio, 3.0, 0.35);
}

TEST(Disk, QueueDelayLowerForFundedClient) {
  FastRand rng(7);
  DiskScheduler disk(DiskOpts(), &rng);
  disk.RegisterClient(1, 900);
  disk.RegisterClient(2, 100);
  for (int i = 0; i < 2000; ++i) {
    disk.Submit(1, 5000, At(0));
    disk.Submit(2, 5000, At(0));
  }
  disk.AdvanceTo(At(60000));
  ASSERT_GT(disk.QueueDelay(1).count(), 100);
  ASSERT_GT(disk.QueueDelay(2).count(), 100);
  EXPECT_LT(disk.QueueDelay(1).mean(), disk.QueueDelay(2).mean());
}

TEST(Disk, CompletionCallbacksFireAtServiceEnd) {
  FastRand rng(2);
  DiskScheduler disk(DiskOpts(), &rng);
  disk.RegisterClient(1, 10);
  std::vector<double> completions;
  // 100 KB at 1 MB/s + 1 ms seek = 101 ms each, served back to back.
  for (int i = 0; i < 3; ++i) {
    disk.Submit(1, 100000, At(0), [&completions](SimTime when) {
      completions.push_back(when.ToSecondsF());
    });
  }
  disk.AdvanceTo(At(1000));
  ASSERT_EQ(completions.size(), 3u);
  EXPECT_NEAR(completions[0], 0.101, 1e-9);
  EXPECT_NEAR(completions[1], 0.202, 1e-9);
  EXPECT_NEAR(completions[2], 0.303, 1e-9);
}

TEST(Disk, RequestsSpanAdvanceWindows) {
  FastRand rng(1);
  DiskScheduler disk(DiskOpts(), &rng);
  disk.RegisterClient(1, 10);
  disk.Submit(1, 1000000, At(0));  // 1.001 s including seek
  disk.Submit(1, 1000000, At(0));
  disk.AdvanceTo(At(1500));
  // First request done at 1.001 s; second is in flight across the window.
  EXPECT_EQ(disk.RequestsServed(1), 1u);
  EXPECT_EQ(disk.QueueDepth(1), 0u);
  EXPECT_TRUE(disk.busy());
  // A long request also completes even if driven in tiny windows.
  for (int64_t t = 1500; t <= 2600; t += 10) {
    disk.AdvanceTo(At(t));
  }
  EXPECT_EQ(disk.RequestsServed(1), 2u);
  EXPECT_FALSE(disk.busy());
  EXPECT_TRUE(disk.idle());
}

// --- LinkScheduler --------------------------------------------------------------

LinkScheduler::Options LinkOpts() {
  LinkScheduler::Options o;
  o.cell_time = SimDuration::Micros(10);
  o.buffer_cells = 64;
  return o;
}

TEST(Link, RejectsBadConfig) {
  FastRand rng(1);
  LinkScheduler::Options bad;
  bad.cell_time = SimDuration::Nanos(0);
  EXPECT_THROW(LinkScheduler(bad, &rng), std::invalid_argument);
}

TEST(Link, SendsBufferedCells) {
  FastRand rng(1);
  LinkScheduler link(LinkOpts(), &rng);
  link.RegisterCircuit(1, 10);
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(link.Enqueue(1, At(0)));
  }
  link.AdvanceTo(At(10));
  EXPECT_EQ(link.CellsSent(1), 10u);
  EXPECT_EQ(link.Backlog(1), 0u);
}

TEST(Link, DropsWhenBufferFull) {
  FastRand rng(1);
  LinkScheduler link(LinkOpts(), &rng);
  link.RegisterCircuit(1, 10);
  for (size_t i = 0; i < 64; ++i) {
    EXPECT_TRUE(link.Enqueue(1, At(0)));
  }
  EXPECT_FALSE(link.Enqueue(1, At(0)));
  EXPECT_EQ(link.CellsDropped(1), 1u);
}

TEST(Link, CongestedSharesFollowTickets) {
  // Three circuits, 3:2:1, all saturated: throughput splits 3:2:1.
  FastRand rng(31337);
  LinkScheduler::Options lopts = LinkOpts();
  lopts.buffer_cells = 512;
  LinkScheduler link(lopts, &rng);
  link.RegisterCircuit(1, 300);
  link.RegisterCircuit(2, 200);
  link.RegisterCircuit(3, 100);
  SimTime now = At(0);
  // Keep every circuit saturated: the link moves 100 cells/ms, so refill
  // each buffer to 256 every 1 ms step (drain per circuit <= 100).
  for (int step = 0; step < 10000; ++step) {
    for (LinkScheduler::CircuitId c : {1u, 2u, 3u}) {
      while (link.Backlog(c) < 512) {
        link.Enqueue(c, now);
      }
    }
    now = now + SimDuration::Millis(1);
    link.AdvanceTo(now);
  }
  const double total = static_cast<double>(
      link.CellsSent(1) + link.CellsSent(2) + link.CellsSent(3));
  EXPECT_NEAR(static_cast<double>(link.CellsSent(1)) / total, 0.5, 0.03);
  EXPECT_NEAR(static_cast<double>(link.CellsSent(2)) / total, 1.0 / 3, 0.03);
  EXPECT_NEAR(static_cast<double>(link.CellsSent(3)) / total, 1.0 / 6, 0.03);
}

TEST(Link, UncongestedCircuitUnaffectedByOthersTickets) {
  // A lightly loaded circuit gets everything it asks for even with few
  // tickets ("a client will obtain more of a lightly contended resource").
  FastRand rng(5);
  LinkScheduler link(LinkOpts(), &rng);
  link.RegisterCircuit(1, 1);    // light, poor
  link.RegisterCircuit(2, 100);  // heavy, rich
  SimTime now = At(0);
  uint64_t offered1 = 0;
  for (int step = 0; step < 1000; ++step) {
    // Circuit 1 offers 10 cells/ms (10% of link); circuit 2 saturates.
    for (int i = 0; i < 10; ++i) {
      if (link.Enqueue(1, now)) {
        ++offered1;
      }
    }
    while (link.Backlog(2) < 32) {
      link.Enqueue(2, now);
    }
    now = now + SimDuration::Millis(1);
    link.AdvanceTo(now);
  }
  link.AdvanceTo(now + SimDuration::Millis(10));
  EXPECT_GT(static_cast<double>(link.CellsSent(1)),
            0.95 * static_cast<double>(offered1));
}

TEST(Link, DelayTracksTickets) {
  FastRand rng(77);
  LinkScheduler link(LinkOpts(), &rng);
  link.RegisterCircuit(1, 400);
  link.RegisterCircuit(2, 100);
  SimTime now = At(0);
  // Offered load 2 x 64 cells/ms against 100 cells/ms of capacity: the
  // port stays congested and queueing delay differentiates by tickets.
  for (int step = 0; step < 5000; ++step) {
    for (LinkScheduler::CircuitId c : {1u, 2u}) {
      while (link.Backlog(c) < 64) {
        link.Enqueue(c, now);
      }
    }
    now = now + SimDuration::Millis(1);
    link.AdvanceTo(now);
  }
  EXPECT_LT(link.Delay(1).mean(), link.Delay(2).mean());
}

}  // namespace
}  // namespace lottery
