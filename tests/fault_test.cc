// Tests for the deterministic fault-injection subsystem: plan grammar,
// injector trigger semantics, bit-identical reproduction through the chaos
// scenario harness, and the service-level crash recovery paths (mutex
// owner death, currency retirement).

#include "src/sim/fault.h"

#include <gtest/gtest.h>

#include <memory>
#include <stdexcept>
#include <string>

#include "src/core/lottery_scheduler.h"
#include "src/sim/chaos.h"
#include "src/sim/kernel.h"
#include "src/sim/sync.h"

namespace lottery {
namespace {

// --- FaultPlan grammar ------------------------------------------------------

TEST(FaultPlan, ParsesTheDocumentedExample) {
  const FaultPlan plan = FaultPlan::Parse(
      "crash:p=0.001;rpc-drop:every=7;disk-timeout:p=0.2,delay_ms=2,retries=4");
  ASSERT_EQ(plan.specs.size(), 3u);
  EXPECT_EQ(plan.specs[0].fault, FaultClass::kThreadCrash);
  EXPECT_EQ(plan.specs[0].probability_ppm, 1000u);
  EXPECT_EQ(plan.specs[1].fault, FaultClass::kRpcDrop);
  EXPECT_EQ(plan.specs[1].every_nth, 7u);
  EXPECT_EQ(plan.specs[2].fault, FaultClass::kDiskTimeout);
  EXPECT_EQ(plan.specs[2].probability_ppm, 200000u);
  EXPECT_EQ(plan.specs[2].delay, SimDuration::Millis(2));
  EXPECT_EQ(plan.specs[2].max_retries, 4u);
}

TEST(FaultPlan, EmptyStringIsEmptyPlan) {
  EXPECT_TRUE(FaultPlan::Parse("").empty());
}

TEST(FaultPlan, RoundTripsThroughToString) {
  const std::string text =
      "crash:ppm=1500;spurious-wake:every=3;delayed-unblock:p=0.25,"
      "delay_ms=7;rpc-dup:at=0.5;disk-timeout:every=2,retries=2;revoke:ppm=9";
  const FaultPlan plan = FaultPlan::Parse(text);
  const std::string rendered = plan.ToString();
  const FaultPlan reparsed = FaultPlan::Parse(rendered);
  EXPECT_EQ(rendered, reparsed.ToString());
  ASSERT_EQ(plan.specs.size(), reparsed.specs.size());
  for (size_t i = 0; i < plan.specs.size(); ++i) {
    EXPECT_EQ(plan.specs[i].ToString(), reparsed.specs[i].ToString());
  }
}

TEST(FaultPlan, RejectsMalformedInput) {
  EXPECT_THROW(FaultPlan::Parse("warp-core-breach:p=0.5"),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan::Parse("crash:frequency=2"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::Parse("crash:delay_ms=5"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::Parse("crash:p=1.5"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::Parse("crash:ppm=2000000"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::Parse("crash:p=abc"), std::invalid_argument);
  EXPECT_THROW(FaultPlan::Parse("crash"), std::invalid_argument);
}

// --- Injector trigger semantics ---------------------------------------------

TEST(FaultInjector, EveryNthFiresOnExactMultiples) {
  FaultInjector injector(FaultPlan::Parse("rpc-drop:every=3"), 7);
  int fired = 0;
  for (int i = 1; i <= 12; ++i) {
    if (injector.Fire(FaultClass::kRpcDrop, SimTime::FromNanos(i))) {
      ++fired;
      EXPECT_EQ(i % 3, 0) << "fired at opportunity " << i;
    }
  }
  EXPECT_EQ(fired, 4);
  EXPECT_EQ(injector.opportunities(FaultClass::kRpcDrop), 12u);
  EXPECT_EQ(injector.injections(FaultClass::kRpcDrop), 4u);
}

TEST(FaultInjector, OneShotAtFiresExactlyOnce) {
  FaultInjector injector(FaultPlan::Parse("crash:at_ns=5000"), 7);
  EXPECT_FALSE(injector.Fire(FaultClass::kThreadCrash, SimTime::FromNanos(4999)));
  EXPECT_TRUE(injector.Fire(FaultClass::kThreadCrash, SimTime::FromNanos(5000)));
  EXPECT_FALSE(injector.Fire(FaultClass::kThreadCrash, SimTime::FromNanos(9000)));
  EXPECT_EQ(injector.injections(FaultClass::kThreadCrash), 1u);
}

TEST(FaultInjector, ProbabilityOneAlwaysFiresAndZeroClassesAreInactive) {
  FaultInjector injector(FaultPlan::Parse("rpc-dup:p=1.0"), 7);
  EXPECT_TRUE(injector.active(FaultClass::kRpcDuplicate));
  EXPECT_FALSE(injector.active(FaultClass::kRpcDrop));
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(injector.Fire(FaultClass::kRpcDuplicate, SimTime::FromNanos(i)));
  }
  // An inactive class never fires and never counts opportunities.
  EXPECT_FALSE(injector.Fire(FaultClass::kRpcDrop, SimTime::Zero()));
  EXPECT_EQ(injector.opportunities(FaultClass::kRpcDrop), 0u);
}

TEST(FaultInjector, SameSeedSamePlanSameDecisions) {
  const FaultPlan plan = FaultPlan::Parse("rpc-drop:p=0.3;crash:p=0.05");
  FaultInjector a(plan, 99);
  FaultInjector b(plan, 99);
  for (int i = 0; i < 2000; ++i) {
    const SimTime now = SimTime::FromNanos(i * 1000);
    EXPECT_EQ(a.Fire(FaultClass::kRpcDrop, now),
              b.Fire(FaultClass::kRpcDrop, now));
    EXPECT_EQ(a.Fire(FaultClass::kThreadCrash, now),
              b.Fire(FaultClass::kThreadCrash, now));
  }
  EXPECT_EQ(a.total_injections(), b.total_injections());
  EXPECT_GT(a.total_injections(), 0u);
}

TEST(FaultInjector, ProtectedThreadsAreExempt) {
  FaultInjector injector(FaultPlan::Parse("crash:p=1.0"), 7);
  injector.Protect(3);
  EXPECT_TRUE(injector.IsProtected(3));
  EXPECT_FALSE(injector.IsProtected(4));
}

// --- Scenario determinism ---------------------------------------------------

constexpr const char* kRichPlan =
    "crash:p=0.004;spurious-wake:p=0.4;delayed-unblock:p=0.1;"
    "rpc-drop:every=5;rpc-dup:every=7;rpc-reorder:p=0.3;"
    "disk-timeout:p=0.3,retries=3;revoke:p=0.5";

TEST(ChaosScenario, SameSeedAndPlanReproduceBitIdentically) {
  for (const char* backend : {"list", "tree", "stride"}) {
    chaos::Scenario scenario;
    scenario.seed = 4242;
    scenario.backend = backend;
    scenario.plan = kRichPlan;
    scenario.num_threads = 12;
    scenario.horizon = SimDuration::Millis(300);

    const chaos::ScenarioResult first = chaos::RunScenario(scenario);
    const chaos::ScenarioResult second = chaos::RunScenario(scenario);
    EXPECT_EQ(first.trace_hash, second.trace_hash) << backend;
    EXPECT_EQ(first.dispatches, second.dispatches) << backend;
    EXPECT_EQ(first.injections, second.injections) << backend;
    EXPECT_EQ(first.live_threads, second.live_threads) << backend;
    for (const std::string& violation : first.violations) {
      ADD_FAILURE() << backend << ": " << violation;
    }
  }
}

TEST(ChaosScenario, DifferentSeedsDiverge) {
  chaos::Scenario scenario;
  scenario.plan = kRichPlan;
  scenario.num_threads = 12;
  scenario.horizon = SimDuration::Millis(200);
  scenario.seed = 1;
  const uint64_t hash1 = chaos::RunScenario(scenario).trace_hash;
  scenario.seed = 2;
  const uint64_t hash2 = chaos::RunScenario(scenario).trace_hash;
  EXPECT_NE(hash1, hash2);
}

TEST(ChaosScenario, EmptyPlanInjectsNothingAndHoldsInvariants) {
  for (const char* backend : {"list", "tree", "stride"}) {
    chaos::Scenario scenario;
    scenario.seed = 7;
    scenario.backend = backend;
    scenario.num_threads = 12;
    scenario.horizon = SimDuration::Millis(300);
    const chaos::ScenarioResult result = chaos::RunScenario(scenario);
    EXPECT_EQ(result.injections, 0u) << backend;
    EXPECT_EQ(result.spurious_wakes, 0u) << backend;
    EXPECT_EQ(result.revocations, 0u) << backend;
    for (const std::string& violation : result.violations) {
      ADD_FAILURE() << backend << ": " << violation;
    }
  }
}

TEST(ChaosScenario, EveryFaultClassActuallyInjects) {
  const struct {
    FaultClass fault;
    const char* plan;
  } cases[] = {
      {FaultClass::kThreadCrash, "crash:every=40"},
      {FaultClass::kSpuriousWakeup, "spurious-wake:p=0.9"},
      {FaultClass::kDelayedUnblock, "delayed-unblock:p=0.3"},
      {FaultClass::kRpcDrop, "rpc-drop:every=3"},
      {FaultClass::kRpcDuplicate, "rpc-dup:every=3"},
      {FaultClass::kRpcReorder, "rpc-reorder:p=0.9"},
      {FaultClass::kDiskTimeout, "disk-timeout:p=0.5"},
      {FaultClass::kCurrencyRevoke, "revoke:p=0.9"},
  };
  for (const auto& test_case : cases) {
    chaos::Scenario scenario;
    scenario.seed = 11;
    scenario.num_threads = 12;
    scenario.horizon = SimDuration::Millis(400);
    scenario.plan = test_case.plan;
    const chaos::ScenarioResult result = chaos::RunScenario(scenario);
    EXPECT_GT(result.injected_by_class[static_cast<size_t>(test_case.fault)],
              0u)
        << test_case.plan;
    for (const std::string& violation : result.violations) {
      ADD_FAILURE() << test_case.plan << ": " << violation;
    }
  }
}

TEST(ChaosScenario, SmpRunsHoldInvariants) {
  chaos::Scenario scenario;
  scenario.seed = 5;
  scenario.num_cpus = 2;
  scenario.num_threads = 10;
  scenario.plan = kRichPlan;
  scenario.horizon = SimDuration::Millis(250);
  const chaos::ScenarioResult first = chaos::RunScenario(scenario);
  const chaos::ScenarioResult second = chaos::RunScenario(scenario);
  EXPECT_EQ(first.trace_hash, second.trace_hash);
  for (const std::string& violation : first.violations) {
    ADD_FAILURE() << violation;
  }
}

// --- Mutex owner death (the stranded-waiter-funding regression) -------------

// Holds the mutex forever once acquired (until crashed or told to exit).
class GreedyHolder : public ThreadBody {
 public:
  explicit GreedyHolder(SimMutex* mutex) : mutex_(mutex) {}
  // Holds across slices (and may die holding, by injected crash); the
  // cross-slice session is not statically analyzable.
  NO_THREAD_SAFETY_ANALYSIS void Run(RunContext& ctx) override {
    if (!holding_ && !waiting_) {
      ctx.Consume(SimDuration::Millis(1));
      if (mutex_->Acquire(ctx)) {
        holding_ = true;
      } else {
        waiting_ = true;
        ctx.Block();
        return;
      }
    }
    if (waiting_) {
      waiting_ = false;
      holding_ = true;
    }
    ctx.Consume(ctx.remaining());
  }
  bool holding() const { return holding_; }

 private:
  SimMutex* mutex_;
  bool holding_ = false;
  bool waiting_ = false;
};

// Waits for the mutex, then releases it and exits — the thread that would
// starve forever if a dead owner stranded the waiters.
class WaitThenRelease : public ThreadBody {
 public:
  explicit WaitThenRelease(SimMutex* mutex) : mutex_(mutex) {}
  // Ownership arrives via a wake from a dying owner — a cross-slice grant
  // the static analysis cannot see.
  NO_THREAD_SAFETY_ANALYSIS void Run(RunContext& ctx) override {
    ctx.Consume(SimDuration::Millis(1));
    if (woken_ || mutex_->Acquire(ctx)) {
      got_lock_ = true;
      mutex_->Release(ctx);
      ctx.ExitThread();
      return;
    }
    woken_ = true;
    ctx.Block();
  }
  bool got_lock() const { return got_lock_; }

 private:
  SimMutex* mutex_;
  bool woken_ = false;
  bool got_lock_ = false;
};

TEST(MutexOwnerExit, InjectedCrashOfOwnerPassesLockAndFundingToWaiter) {
  LotteryScheduler::Options sopts;
  sopts.seed = 21;
  LotteryScheduler scheduler(sopts);
  // One-shot crash at 350 ms: by then the greedy holder owns the mutex and
  // the waiter's transfer funds the mutex currency. The crash hits the only
  // dispatchable thread — the owner.
  FaultInjector injector(FaultPlan::Parse("crash:at=0.35"), 21);
  Kernel::Options kopts;
  kopts.quantum = SimDuration::Millis(100);
  kopts.faults = &injector;
  Kernel kernel(&scheduler, kopts);
  SimMutex mutex(&kernel, "m");

  auto holder_body = std::make_unique<GreedyHolder>(&mutex);
  auto waiter_body = std::make_unique<WaitThenRelease>(&mutex);
  GreedyHolder* holder = holder_body.get();
  WaitThenRelease* waiter = waiter_body.get();
  const ThreadId holder_tid = kernel.Spawn("holder", std::move(holder_body));
  const ThreadId waiter_tid = kernel.Spawn("waiter", std::move(waiter_body));
  injector.Protect(waiter_tid);
  scheduler.FundThread(holder_tid, scheduler.table().base(), 400);
  scheduler.FundThread(waiter_tid, scheduler.table().base(), 600);

  kernel.RunFor(SimDuration::Seconds(2));

  EXPECT_TRUE(holder->holding());
  EXPECT_FALSE(kernel.Alive(holder_tid));
  EXPECT_TRUE(waiter->got_lock())
      << "waiter never inherited the crashed owner's lock";
  EXPECT_FALSE(kernel.Alive(waiter_tid));  // released and exited
  EXPECT_EQ(mutex.owner(), kInvalidThreadId);
  EXPECT_EQ(mutex.num_waiters(), 0u);
  EXPECT_EQ(injector.injections(FaultClass::kThreadCrash), 1u);
  // Both thread currencies are fully reclaimed: only the base and the mutex
  // currency survive, and the mutex inheritance ticket is parked.
  EXPECT_EQ(scheduler.table().FindCurrency("thread:1"), nullptr);
  EXPECT_EQ(scheduler.table().FindCurrency("thread:2"), nullptr);
}

TEST(MutexOwnerExit, VoluntaryExitWhileHoldingAlsoReleases) {
  // The same protocol violation without fault injection: a body that exits
  // while holding the lock.
  class ExitHolding : public ThreadBody {
   public:
    explicit ExitHolding(SimMutex* mutex) : mutex_(mutex) {}
    // Deliberately exits while holding (the regression under test).
    NO_THREAD_SAFETY_ANALYSIS void Run(RunContext& ctx) override {
      ctx.Consume(SimDuration::Millis(1));
      ASSERT_TRUE(mutex_->Acquire(ctx));
      ctx.ExitThread();
    }
    SimMutex* mutex_;
  };

  LotteryScheduler scheduler;
  Kernel kernel(&scheduler, Kernel::Options{});
  SimMutex mutex(&kernel, "m");
  auto waiter_body = std::make_unique<WaitThenRelease>(&mutex);
  WaitThenRelease* waiter = waiter_body.get();
  const ThreadId t1 =
      kernel.Spawn("exit-holding", std::make_unique<ExitHolding>(&mutex));
  const ThreadId t2 = kernel.Spawn("waiter", std::move(waiter_body));
  scheduler.FundThread(t1, scheduler.table().base(), 500);
  scheduler.FundThread(t2, scheduler.table().base(), 500);

  EXPECT_TRUE(kernel.RunUntilQuiescent(SimDuration::Seconds(10)));
  EXPECT_TRUE(waiter->got_lock());
  EXPECT_EQ(mutex.owner(), kInvalidThreadId);
}

// --- RetireCurrency ---------------------------------------------------------

TEST(RetireCurrency, LingersUntilLastIssuedTicketDies) {
  CurrencyTable table;
  Currency* currency = table.CreateCurrency("victim");
  Ticket* backing = table.CreateTicket(table.base(), 100);
  table.Fund(currency, backing);
  Ticket* issued_a = table.CreateTicket(currency, 50);
  Ticket* issued_b = table.CreateTicket(currency, 30);

  table.RetireCurrency(currency);
  EXPECT_TRUE(currency->retired());
  EXPECT_TRUE(currency->backing().empty());  // dead owner's funding withdrawn
  EXPECT_NE(table.FindCurrency("victim"), nullptr);
  // A retired currency accepts no new tickets or funding.
  EXPECT_THROW(table.CreateTicket(currency, 10), std::logic_error);
  Ticket* stray = table.CreateTicket(table.base(), 5);
  EXPECT_THROW(table.Fund(currency, stray), std::logic_error);
  table.DestroyTicket(stray);

  table.DestroyTicket(issued_a);
  EXPECT_NE(table.FindCurrency("victim"), nullptr);
  table.DestroyTicket(issued_b);
  // Last issued ticket gone: the currency is reaped with it.
  EXPECT_EQ(table.FindCurrency("victim"), nullptr);
}

TEST(RetireCurrency, EquivalentToDestroyWhenNothingIssued) {
  CurrencyTable table;
  Currency* currency = table.CreateCurrency("empty");
  table.RetireCurrency(currency);
  EXPECT_EQ(table.FindCurrency("empty"), nullptr);
}

TEST(RetireCurrency, RefusesTheBase) {
  CurrencyTable table;
  EXPECT_THROW(table.RetireCurrency(table.base()), std::invalid_argument);
}

}  // namespace
}  // namespace lottery
