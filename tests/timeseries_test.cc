// Tests for the deterministic timeseries substrate (src/obs/timeseries/):
// Series ring compaction, the Sampler's online fairness-lag audit against
// ground truth, edge-triggered anomalies, same-seed byte-identical JSON,
// and the zero-allocation steady-state contract of the sample path.

#include <atomic>
#include <cstdlib>
#include <memory>
#include <new>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/lottery_scheduler.h"
#include "src/obs/registry.h"
#include "src/obs/timeseries/sampler.h"
#include "src/obs/timeseries/series.h"
#include "src/sim/kernel.h"
#include "src/workloads/compute.h"

// ---------------------------------------------------------------------------
// Allocation counting: global operator new/delete overrides (binary-wide)
// that count while g_count_allocs is set. Used to prove Sample() performs
// no heap allocation in the steady state.
// ---------------------------------------------------------------------------

namespace {
std::atomic<uint64_t> g_alloc_count{0};
std::atomic<bool> g_count_allocs{false};
}  // namespace

// The replacement new/delete pair both route through malloc/free; GCC's
// mismatch heuristic cannot see that pairing across the overrides.
#if defined(__GNUC__) && !defined(__clang__)
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"
#endif

void* operator new(std::size_t size) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace lottery {
namespace {

// ---------------------------------------------------------------------------
// Series
// ---------------------------------------------------------------------------

TEST(Series, FillsThenCompactsWithinCapacity) {
  ts::Series series(8);
  for (int64_t i = 0; i < 1000; ++i) {
    series.Record(i * 1000, static_cast<double>(i));
  }
  EXPECT_LE(series.size(), 8u);
  EXPECT_EQ(series.total_points(), 1000u);
  EXPECT_GT(series.compactions(), 0u);
  // Stride doubles per compaction; with capacity 8 and 1000 points the
  // stride must cover at least 1000/8 = 125 samples per bucket.
  EXPECT_GE(series.stride(), 128u);
  // Full history retained: bucket counts sum to every recorded point and
  // time spans tile the run in order.
  uint64_t total = 0;
  for (size_t i = 0; i < series.size(); ++i) {
    const ts::Series::Bucket& b = series.bucket(i);
    total += b.stats.count();
    if (i > 0) {
      EXPECT_GT(b.t_first_ns, series.bucket(i - 1).t_last_ns);
    }
    EXPECT_LE(b.t_first_ns, b.t_last_ns);
  }
  EXPECT_EQ(total, 1000u);
  EXPECT_EQ(series.bucket(0).t_first_ns, 0);
  EXPECT_EQ(series.bucket(series.size() - 1).t_last_ns, 999 * 1000);
}

TEST(Series, CompactionPreservesMoments) {
  // The compacted series must agree with a flat accumulator over the same
  // samples: compaction reorganizes, it must not lose or distort.
  ts::Series series(4);
  obs::StreamingStats flat;
  for (int64_t i = 0; i < 333; ++i) {
    const double v = static_cast<double>((i * 37) % 101);
    series.Record(i, v);
    flat.Add(v);
  }
  obs::StreamingStats merged;
  for (size_t i = 0; i < series.size(); ++i) {
    merged.Merge(series.bucket(i).stats);
  }
  EXPECT_EQ(merged.count(), flat.count());
  EXPECT_NEAR(merged.mean(), flat.mean(), 1e-9);
  EXPECT_NEAR(merged.variance(), flat.variance(), 1e-6);
  EXPECT_EQ(merged.min(), flat.min());
  EXPECT_EQ(merged.max(), flat.max());
}

TEST(Series, DegenerateCapacityThrows) {
  EXPECT_THROW(ts::Series series(1), std::invalid_argument);
  EXPECT_THROW(ts::Series series(0), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Sampler: shared world helpers
// ---------------------------------------------------------------------------

class SpinBody : public ThreadBody {
 public:
  void Run(RunContext& ctx) override { ctx.Consume(ctx.remaining()); }
};

struct World {
  obs::Registry registry;
  std::unique_ptr<LotteryScheduler> sched;
  std::unique_ptr<Kernel> kernel;
  std::unique_ptr<ts::Sampler> sampler;

  explicit World(uint32_t seed, bool compensate = true,
                 ts::Sampler::Options topts = {}) {
    LotteryScheduler::Options sopts;
    sopts.seed = seed;
    sopts.metrics = &registry;
    sopts.compensation.enabled = compensate;
    sched = std::make_unique<LotteryScheduler>(sopts);
    Kernel::Options kopts;
    kopts.metrics = &registry;
    kernel = std::make_unique<Kernel>(sched.get(), kopts);
    sampler = std::make_unique<ts::Sampler>(kernel.get(), topts);
    sampler->AttachScheduler(sched.get());
    kernel->SetSampler(sampler.get());
  }

  ThreadId AddClient(const std::string& label, int64_t tickets,
               std::unique_ptr<ThreadBody> body) {
    const ThreadId tid = kernel->Spawn(label, std::move(body));
    sched->FundThread(tid, sched->table().base(), tickets);
    sampler->Track(tid, label);
    return tid;
  }
};

const ts::Sampler::ClientState* FindClient(const ts::Sampler& sampler,
                                           const std::string& label) {
  for (size_t i = 0; i < sampler.num_clients(); ++i) {
    if (sampler.client_state(i).label == label) {
      return &sampler.client_state(i);
    }
  }
  return nullptr;
}

// ---------------------------------------------------------------------------
// Fairness-lag audit ground truth
// ---------------------------------------------------------------------------

TEST(SamplerAudit, FairMixSharesAndLagMatchEntitlement) {
  World world(42);
  world.AddClient("a", 300, std::make_unique<SpinBody>());
  world.AddClient("b", 100, std::make_unique<SpinBody>());
  world.kernel->RunFor(SimDuration::Seconds(120));

  ASSERT_GT(world.sampler->samples(), 100u);
  const ts::Sampler::ClientState* a = FindClient(*world.sampler, "a");
  const ts::Sampler::ClientState* b = FindClient(*world.sampler, "b");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);

  // Entitled shares come straight from base tickets.
  EXPECT_NEAR(a->entitled_share, 0.75, 1e-9);
  EXPECT_NEAR(b->entitled_share, 0.25, 1e-9);

  // Group-service entitlement basis: the entitled amounts partition the
  // delivered service exactly (up to one quantum of rounding per client).
  const int64_t received = a->received_ns + b->received_ns;
  const int64_t entitled = a->entitled_ns + b->entitled_ns;
  EXPECT_NEAR(static_cast<double>(entitled), static_cast<double>(received),
              2e8);

  // lag = received − entitled, by definition, and a fair mix stays inside
  // the binomial envelope with no anomalies.
  EXPECT_EQ(a->lag_ns, a->received_ns - a->entitled_ns);
  EXPECT_EQ(b->lag_ns, b->received_ns - b->entitled_ns);
  EXPECT_LT(std::abs(a->lag_ns), a->lag_bound_ns);
  EXPECT_LT(std::abs(b->lag_ns), b->lag_bound_ns);
  EXPECT_TRUE(world.sampler->anomalies().empty());

  // Delivered shares track 3:1 over a two-minute run.
  const double share_a = static_cast<double>(a->received_ns) /
                         static_cast<double>(received);
  EXPECT_NEAR(share_a, 0.75, 0.05);
}

TEST(SamplerAudit, MonopolyWithoutCompensationTripsLag) {
  // Section 4.5's motivating failure: a fractional-quantum consumer with
  // compensation disabled receives far less than its 8:1:1 entitlement.
  // The auditor must cross the lag bound within one fig5 window (8 s).
  World world(42, /*compensate=*/false);
  world.AddClient("victim", 800,
            std::make_unique<YieldingTask>(SimDuration::Millis(2)));
  world.AddClient("hog1", 100, std::make_unique<SpinBody>());
  world.AddClient("hog2", 100, std::make_unique<SpinBody>());
  world.kernel->RunFor(SimDuration::Seconds(30));

  const std::vector<ts::Anomaly>& anomalies = world.sampler->anomalies();
  ASSERT_FALSE(anomalies.empty());
  int64_t first_lag_ns = -1;
  for (const ts::Anomaly& a : anomalies) {
    if (a.kind == ts::AnomalyKind::kLag) {
      first_lag_ns = a.t_ns;
      break;
    }
  }
  ASSERT_GE(first_lag_ns, 0) << "no lag anomaly in 30 s";
  EXPECT_LE(first_lag_ns, SimDuration::Seconds(8).nanos());
  const ts::Sampler::ClientState* victim = FindClient(*world.sampler,
                                                      "victim");
  ASSERT_NE(victim, nullptr);
  EXPECT_LT(victim->lag_ns, 0);  // received far less than entitled
  EXPECT_TRUE(victim->in_lag_anomaly || victim->in_share_anomaly);
}

TEST(SamplerAudit, StarvationIsEdgeTriggered) {
  // 1 : 5000 : 5000 — the 1-ticket client is runnable but essentially
  // never wins. The starvation watermark must fire once when the bound is
  // first crossed and then stay quiet while the condition persists, not
  // re-emit every sample (edge-triggered contract).
  World world(7);
  const ThreadId starved = world.AddClient("starved", 1,
                                     std::make_unique<SpinBody>());
  world.AddClient("hog1", 5000, std::make_unique<SpinBody>());
  world.AddClient("hog2", 5000, std::make_unique<SpinBody>());
  world.kernel->RunFor(SimDuration::Seconds(40));

  int starvation_count = 0;
  for (const ts::Anomaly& a : world.sampler->anomalies()) {
    if (a.kind == ts::AnomalyKind::kStarvation) {
      ++starvation_count;
      EXPECT_EQ(a.tid, starved);
      // Crossed within one sample of the 10 s bound.
      EXPECT_GE(a.t_ns, SimDuration::Seconds(10).nanos());
    }
  }
  // Dozens of samples happen while starving; at most a couple of distinct
  // starvation episodes are possible in 40 s, and at least one must fire.
  EXPECT_GE(starvation_count, 1);
  EXPECT_LE(starvation_count, 3);
  const ts::Sampler::ClientState* client = FindClient(*world.sampler,
                                                      "starved");
  ASSERT_NE(client, nullptr);
  EXPECT_TRUE(client->in_starvation);
}

// ---------------------------------------------------------------------------
// Tracking, labels, watched counters
// ---------------------------------------------------------------------------

TEST(Sampler, LabelsAreSanitizedAndUnique) {
  World world(1);
  const ThreadId tid = world.kernel->Spawn("x", std::make_unique<SpinBody>());
  world.sched->FundThread(tid, world.sched->table().base(), 100);
  world.sampler->Track(tid, "Mixed Case-Label!");
  EXPECT_EQ(world.sampler->client_state(0).label, "mixed_case_label_");
  EXPECT_NE(world.sampler->FindSeries("client.mixed_case_label_.lag_ms"),
            nullptr);
  const ThreadId other = world.kernel->Spawn("y",
                                             std::make_unique<SpinBody>());
  world.sched->FundThread(other, world.sched->table().base(), 100);
  EXPECT_THROW(world.sampler->Track(other, "mixed case label?"),
               std::invalid_argument);  // sanitizes to a duplicate
  EXPECT_THROW(world.sampler->Track(static_cast<ThreadId>(999), "ghost"),
               std::invalid_argument);
}

TEST(Sampler, WatchCounterRecordsRates) {
  World world(3);
  world.AddClient("a", 100, std::make_unique<SpinBody>());
  world.sampler->WatchCounter("kernel.dispatches");
  world.kernel->RunFor(SimDuration::Seconds(20));
  const ts::Series* rate = world.sampler->FindSeries("rate.kernel.dispatches");
  ASSERT_NE(rate, nullptr);
  ASSERT_GT(rate->size(), 0u);
  // One spin thread, 100 ms quantum: 10 dispatches/s.
  EXPECT_NEAR(rate->last_value(), 10.0, 1.0);
}

// ---------------------------------------------------------------------------
// Determinism and export
// ---------------------------------------------------------------------------

std::string RunWorldToJson(uint32_t seed) {
  World world(seed);
  world.AddClient("a", 300, std::make_unique<SpinBody>());
  world.AddClient("b", 200, std::make_unique<SpinBody>());
  world.AddClient("c", 100, std::make_unique<YieldingTask>(SimDuration::Millis(7)));
  world.kernel->RunFor(SimDuration::Seconds(60));
  return world.sampler->ToJson("timeseries_test", seed);
}

TEST(Sampler, SameSeedJsonIsByteIdentical) {
  const std::string first = RunWorldToJson(42);
  const std::string second = RunWorldToJson(42);
  EXPECT_EQ(first, second);
  const std::string other = RunWorldToJson(43);
  EXPECT_NE(first, other);
  // Envelope sanity; full schema validation lives in
  // .github/check_bench_json.py and the lottop parser tests.
  EXPECT_NE(first.find("\"kind\":\"timeseries\""), std::string::npos);
  EXPECT_NE(first.find("\"schema_version\":1"), std::string::npos);
  EXPECT_NE(first.find("\"client.a.lag_ms\""), std::string::npos);
}

TEST(Sampler, SamplingIsRngNeutral) {
  // Attaching a sampler must not touch the scheduler's RNG stream: the
  // dispatch sequence (total service per client) is identical with and
  // without one.
  auto run = [](bool with_sampler) {
    LotteryScheduler::Options sopts;
    sopts.seed = 99;
    LotteryScheduler sched(sopts);
    Kernel kernel(&sched, Kernel::Options{});
    std::unique_ptr<ts::Sampler> sampler;
    if (with_sampler) {
      sampler = std::make_unique<ts::Sampler>(&kernel, ts::Sampler::Options{});
      sampler->AttachScheduler(&sched);
      kernel.SetSampler(sampler.get());
    }
    std::vector<ThreadId> tids;
    for (int i = 0; i < 3; ++i) {
      const ThreadId tid = kernel.Spawn("t" + std::to_string(i),
                                        std::make_unique<SpinBody>());
      sched.FundThread(tid, sched.table().base(), 100 * (i + 1));
      if (sampler != nullptr) {
        sampler->Track(tid, "t" + std::to_string(i));
      }
      tids.push_back(tid);
    }
    kernel.RunFor(SimDuration::Seconds(60));
    std::vector<int64_t> service;
    for (const ThreadId tid : tids) {
      service.push_back(kernel.CpuTime(tid).nanos());
    }
    return service;
  };
  EXPECT_EQ(run(false), run(true));
}

// ---------------------------------------------------------------------------
// Zero allocation in the steady state
// ---------------------------------------------------------------------------

TEST(Sampler, SamplePathDoesNotAllocateInSteadyState) {
  ts::Sampler::Options topts;
  topts.series_capacity = 32;  // force compactions inside the window
  World world(11, /*compensate=*/true, topts);
  world.AddClient("a", 300, std::make_unique<SpinBody>());
  world.AddClient("b", 100, std::make_unique<SpinBody>());
  world.sampler->WatchCounter("kernel.dispatches");
  // Warm-up: first samples resolve lazy state; compaction is in-place so
  // even it must not allocate afterwards.
  world.kernel->RunFor(SimDuration::Seconds(10));
  const uint64_t samples_before = world.sampler->samples();

  g_alloc_count.store(0, std::memory_order_relaxed);
  g_count_allocs.store(true, std::memory_order_relaxed);
  // Drive Sample() directly at the dispatch cadence: kernel state is live
  // and times advance monotonically past many compaction boundaries.
  int64_t now_ns = world.kernel->now().nanos();
  for (int i = 0; i < 20000; ++i) {
    now_ns += 500 * 1000 * 1000;
    world.sampler->Sample(SimTime::FromNanos(now_ns));
  }
  g_count_allocs.store(false, std::memory_order_relaxed);

  EXPECT_EQ(g_alloc_count.load(std::memory_order_relaxed), 0u);
  EXPECT_EQ(world.sampler->samples(), samples_before + 20000);
}

}  // namespace
}  // namespace lottery
