#include "src/core/inverse_lottery.h"

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "src/util/stats.h"

namespace lottery {
namespace {

TEST(InverseLottery, EmptyIsNullopt) {
  FastRand rng(1);
  EXPECT_FALSE(DrawInverse({}, rng).has_value());
}

TEST(InverseLottery, SingleClientAlwaysLoses) {
  FastRand rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(DrawInverse({42}, rng).value(), 0u);
  }
  EXPECT_DOUBLE_EQ(InverseLossProbability({42}, 0), 1.0);
}

TEST(InverseLottery, MonopolistNeverLoses) {
  // A client holding all tickets has loss probability exactly zero.
  FastRand rng(2);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_NE(DrawInverse({100, 0, 0}, rng).value(), 0u);
  }
  EXPECT_DOUBLE_EQ(InverseLossProbability({100, 0, 0}, 0), 0.0);
}

TEST(InverseLottery, ProbabilitiesSumToOne) {
  const std::vector<uint64_t> weights = {5, 3, 2, 7, 1};
  double sum = 0.0;
  for (size_t i = 0; i < weights.size(); ++i) {
    sum += InverseLossProbability(weights, i);
  }
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(InverseLottery, FormulaMatchesPaper) {
  // p_i = (1/(n-1)) (1 - t_i/T); n = 3, T = 10, t = {5, 3, 2}.
  const std::vector<uint64_t> w = {5, 3, 2};
  EXPECT_NEAR(InverseLossProbability(w, 0), 0.5 * (1 - 0.5), 1e-12);
  EXPECT_NEAR(InverseLossProbability(w, 1), 0.5 * (1 - 0.3), 1e-12);
  EXPECT_NEAR(InverseLossProbability(w, 2), 0.5 * (1 - 0.2), 1e-12);
}

TEST(InverseLottery, EqualWeightsAreUniform) {
  const std::vector<uint64_t> w = {4, 4, 4, 4};
  for (size_t i = 0; i < w.size(); ++i) {
    EXPECT_NEAR(InverseLossProbability(w, i), 0.25, 1e-12);
  }
}

TEST(InverseLottery, AllZeroWeightsAreUniform) {
  const std::vector<uint64_t> w = {0, 0, 0};
  FastRand rng(3);
  std::map<size_t, int> losses;
  for (int i = 0; i < 30000; ++i) {
    ++losses[DrawInverse(w, rng).value()];
  }
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_NEAR(losses[i] / 30000.0, 1.0 / 3.0, 0.02);
  }
}

TEST(InverseLottery, EmpiricalFrequenciesMatchFormula) {
  const std::vector<uint64_t> weights = {10, 5, 3, 2};
  FastRand rng(20250101);
  constexpr int kDraws = 200000;
  std::vector<int64_t> losses(weights.size(), 0);
  for (int i = 0; i < kDraws; ++i) {
    ++losses[DrawInverse(weights, rng).value()];
  }
  std::vector<double> expected;
  for (size_t i = 0; i < weights.size(); ++i) {
    expected.push_back(kDraws * InverseLossProbability(weights, i));
  }
  EXPECT_LT(ChiSquareStatistic(losses, expected),
            ChiSquareCritical(static_cast<int>(weights.size()) - 1, 0.001));
}

TEST(InverseLottery, MoreTicketsMeansFewerLosses) {
  const std::vector<uint64_t> weights = {20, 10};
  FastRand rng(7);
  int64_t rich_losses = 0;
  constexpr int kDraws = 100000;
  for (int i = 0; i < kDraws; ++i) {
    if (DrawInverse(weights, rng).value() == 0) {
      ++rich_losses;
    }
  }
  // p_rich = 1 - 20/30 = 1/3; p_poor = 2/3.
  EXPECT_NEAR(static_cast<double>(rich_losses) / kDraws, 1.0 / 3.0, 0.01);
}

TEST(InverseLottery, IndexOutOfRangeThrows) {
  EXPECT_THROW(InverseLossProbability({1, 2}, 2), std::out_of_range);
}

}  // namespace
}  // namespace lottery
