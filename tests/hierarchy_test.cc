// Tests for the Figure 2/3 currency-hierarchy builders.

#include "src/core/hierarchy.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/sim/kernel.h"
#include "src/workloads/compute.h"

namespace lottery {
namespace {

const SimTime kT0 = SimTime::Zero();

TEST(Hierarchy, UserCreatesOwnedFundedCurrency) {
  LotteryScheduler sched;
  UserAccount alice(&sched, "alice", 2000);
  EXPECT_EQ(alice.currency()->owner(), "alice");
  EXPECT_EQ(alice.base_amount(), 2000);
  ASSERT_EQ(alice.currency()->backing().size(), 1u);
  EXPECT_EQ(alice.currency()->backing()[0]->amount(), 2000);
}

TEST(Hierarchy, UserDestructorRetiresCurrency) {
  LotteryScheduler sched;
  {
    UserAccount alice(&sched, "alice", 1000);
  }
  EXPECT_EQ(sched.table().FindCurrency("alice"), nullptr);
  EXPECT_EQ(sched.table().num_tickets(), 0u);
}

TEST(Hierarchy, Figure3ObjectGraph) {
  // Reproduces Figure 3 exactly through the builder API and checks the
  // same thread values the paper lists.
  LotteryScheduler sched;
  UserAccount alice(&sched, "alice", 2000);
  UserAccount bob(&sched, "bob", 1000);
  TaskAccount* task1 = alice.CreateTask("task1", 100);
  TaskAccount* task2 = alice.CreateTask("task2", 200);
  TaskAccount* task3 = bob.CreateTask("task3", 100);

  sched.AddThread(1, kT0);  // thread1 in task1 (inactive)
  sched.AddThread(2, kT0);  // thread2: 300.task2
  sched.AddThread(3, kT0);  // thread3: 200.task2
  sched.AddThread(4, kT0);  // thread4: 100.task3
  task1->FundThread(1, 100);
  task2->FundThread(2, 300);
  task2->FundThread(3, 200);
  task3->FundThread(4, 100);

  sched.OnReady(2, kT0);
  sched.OnReady(3, kT0);
  sched.OnReady(4, kT0);
  // Figure 3's stated values with thread1 inactive:
  EXPECT_EQ(sched.ThreadValue(2).base_units(), 1200);
  EXPECT_EQ(sched.ThreadValue(3).base_units(), 800);
  EXPECT_EQ(sched.ThreadValue(4).base_units(), 1000);
  // thread2 + thread3 carry all of alice; thread4 all of bob.
  EXPECT_DOUBLE_EQ(sched.table().ExchangeRate(task2->currency()), 4.0);
}

TEST(Hierarchy, TaskInflationInsulatedWithinUser) {
  LotteryScheduler sched;
  UserAccount alice(&sched, "alice", 1000);
  UserAccount bob(&sched, "bob", 1000);
  TaskAccount* a_task = alice.CreateTask("work", 100);
  TaskAccount* b_task = bob.CreateTask("work", 100);
  sched.AddThread(1, kT0);
  sched.AddThread(2, kT0);
  a_task->FundThread(1, 100);
  b_task->FundThread(2, 100);
  sched.OnReady(1, kT0);
  sched.OnReady(2, kT0);
  EXPECT_EQ(sched.ThreadValue(1).base_units(), 1000);
  // Alice quadruples her task's share of... herself: no effect on bob.
  a_task->SetAmount(400);
  EXPECT_EQ(sched.ThreadValue(1).base_units(), 1000);
  EXPECT_EQ(sched.ThreadValue(2).base_units(), 1000);
  // But a second alice task dilutes only alice's first task.
  TaskAccount* a_task2 = alice.CreateTask("more", 400);
  sched.AddThread(3, kT0);
  a_task2->FundThread(3, 100);
  sched.OnReady(3, kT0);
  EXPECT_EQ(sched.ThreadValue(1).base_units(), 500);
  EXPECT_EQ(sched.ThreadValue(3).base_units(), 500);
  EXPECT_EQ(sched.ThreadValue(2).base_units(), 1000);
}

TEST(Hierarchy, DestroyTaskReturnsShareToSiblings) {
  LotteryScheduler sched;
  UserAccount alice(&sched, "alice", 900);
  TaskAccount* keep = alice.CreateTask("keep", 100);
  TaskAccount* drop = alice.CreateTask("drop", 200);
  sched.AddThread(1, kT0);
  keep->FundThread(1, 50);
  sched.OnReady(1, kT0);
  // "drop" has no active threads yet, so it does not dilute (Section 4.4's
  // inactive-sibling rule): thread1 carries all of alice.
  EXPECT_EQ(sched.ThreadValue(1).base_units(), 900);
  sched.AddThread(2, kT0);
  drop->FundThread(2, 50);
  sched.OnReady(2, kT0);
  EXPECT_EQ(sched.ThreadValue(1).base_units(), 300);  // 100/300 of 900
  EXPECT_EQ(sched.ThreadValue(2).base_units(), 600);
  // Retire the second task's thread, then the task; the survivor's value
  // grows back to the whole user.
  sched.OnBlocked(2, kT0);
  sched.RemoveThread(2, kT0);
  alice.DestroyTask(drop);
  EXPECT_EQ(sched.ThreadValue(1).base_units(), 900);
}

TEST(Hierarchy, AclStopsForeignFunding) {
  LotteryScheduler sched;
  UserAccount alice(&sched, "alice", 1000);
  // Direct table access as another principal is refused.
  EXPECT_THROW(sched.table().CreateTicket(alice.currency(), 10, "mallory"),
               std::invalid_argument);
  // The account's own API threads the right principal through.
  sched.AddThread(1, kT0);
  EXPECT_NO_THROW(alice.FundThread(1, 10));
}

TEST(Hierarchy, EndToEndSimulationSharesFollowHierarchy) {
  LotteryScheduler::Options lopts;
  lopts.seed = 23;
  LotteryScheduler sched(lopts);
  Tracer tracer(SimDuration::Seconds(1));
  Kernel::Options kopts;
  kopts.quantum = SimDuration::Millis(100);
  Kernel kernel(&sched, kopts, &tracer);

  UserAccount alice(&sched, "alice", 3000);
  UserAccount bob(&sched, "bob", 1000);
  TaskAccount* sim = alice.CreateTask("sim", 100);
  const ThreadId a1 = kernel.Spawn("a1", std::make_unique<ComputeTask>());
  sim->FundThread(a1, 100);
  const ThreadId b1 = kernel.Spawn("b1", std::make_unique<ComputeTask>());
  bob.FundThread(b1, 100);
  kernel.RunFor(SimDuration::Seconds(120));
  const double ratio = static_cast<double>(tracer.TotalProgress(a1)) /
                       static_cast<double>(tracer.TotalProgress(b1));
  EXPECT_NEAR(ratio, 3.0, 0.4);
}

}  // namespace
}  // namespace lottery
