// Tests for synchronous RPC with ticket transfers (Section 4.6).

#include "src/sim/rpc.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/sched/round_robin.h"
#include "src/sim/fault.h"
#include "src/workloads/compute.h"
#include "src/workloads/query_server.h"

namespace lottery {
namespace {

Kernel::Options KOpts() {
  Kernel::Options o;
  o.quantum = SimDuration::Millis(100);
  return o;
}

TEST(RpcRoundRobin, CallReceiveReplyCycle) {
  RoundRobinScheduler sched;
  Tracer tracer(SimDuration::Seconds(1));
  Kernel kernel(&sched, KOpts(), &tracer);
  RpcPort port(&kernel, "svc");

  QueryClient::Options copts;
  copts.num_queries = 5;
  copts.query_cost = SimDuration::Millis(50);
  auto client = std::make_unique<QueryClient>(&port, copts);
  QueryClient* rc = client.get();
  auto worker = std::make_unique<QueryWorker>(&port);
  QueryWorker* rw = worker.get();
  kernel.Spawn("client", std::move(client));
  kernel.Spawn("worker", std::move(worker));
  kernel.RunFor(SimDuration::Seconds(5));
  EXPECT_EQ(rc->completed(), 5);
  EXPECT_EQ(rw->served(), 5);
  EXPECT_EQ(port.total_calls(), 5u);
  EXPECT_EQ(port.pending_requests(), 0u);
  // Latency samples recorded for the client.
  EXPECT_EQ(tracer.Samples("rpc_latency:client").size(), 5u);
}

TEST(RpcRoundRobin, MultipleClientsOneWorkerAllServed) {
  RoundRobinScheduler sched;
  Kernel kernel(&sched, KOpts());
  RpcPort port(&kernel, "svc");
  QueryClient::Options copts;
  copts.num_queries = 3;
  copts.query_cost = SimDuration::Millis(30);
  std::vector<QueryClient*> clients;
  for (int i = 0; i < 4; ++i) {
    auto c = std::make_unique<QueryClient>(&port, copts);
    clients.push_back(c.get());
    kernel.Spawn("c" + std::to_string(i), std::move(c));
  }
  kernel.Spawn("worker", std::make_unique<QueryWorker>(&port));
  kernel.RunFor(SimDuration::Seconds(10));
  for (const auto* c : clients) {
    EXPECT_EQ(c->completed(), 3);
  }
}

class RpcLotteryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    LotteryScheduler::Options opts;
    opts.seed = 99;
    sched_ = std::make_unique<LotteryScheduler>(opts);
    tracer_ = std::make_unique<Tracer>(SimDuration::Seconds(1));
    kernel_ = std::make_unique<Kernel>(sched_.get(), KOpts(), tracer_.get());
    port_ = std::make_unique<RpcPort>(kernel_.get(), "db");
  }

  ThreadId SpawnFunded(const std::string& name, int64_t tickets,
                       std::unique_ptr<ThreadBody> body) {
    const ThreadId tid = kernel_->Spawn(name, std::move(body));
    if (tickets > 0) {
      sched_->FundThread(tid, sched_->table().base(), tickets);
    }
    return tid;
  }

  std::unique_ptr<LotteryScheduler> sched_;
  std::unique_ptr<Tracer> tracer_;
  std::unique_ptr<Kernel> kernel_;
  std::unique_ptr<RpcPort> port_;
};

TEST_F(RpcLotteryTest, TransferFundsWorkerWhileProcessing) {
  // One client with 800 tickets calls an unfunded worker. While the worker
  // processes the request it must carry the client's funding.
  QueryClient::Options copts;
  copts.num_queries = 1;
  copts.query_cost = SimDuration::Millis(500);
  SpawnFunded("client", 800, std::make_unique<QueryClient>(port_.get(), copts));
  const ThreadId worker =
      SpawnFunded("worker", 0, std::make_unique<QueryWorker>(port_.get()));
  port_->RegisterServer(worker);
  // Also a competitor so the run queue is never empty.
  SpawnFunded("spin", 200, std::make_unique<ComputeTask>());

  // Run a little: client sends, worker picks up.
  kernel_->RunFor(SimDuration::Millis(300));
  // Worker mid-query: its value should be the client's 800 base (the
  // worker's own currency has zero native funding).
  EXPECT_EQ(sched_->ThreadValue(worker).base_units(), 800);
  kernel_->RunFor(SimDuration::Seconds(5));
  // After the reply the transfer is destroyed.
  EXPECT_EQ(port_->pending_requests(), 0u);
}

TEST_F(RpcLotteryTest, UnfundedWorkerRunsOnlyOnTransfers) {
  QueryClient::Options copts;
  copts.num_queries = 4;
  copts.query_cost = SimDuration::Millis(200);
  auto client = std::make_unique<QueryClient>(port_.get(), copts);
  QueryClient* rc = client.get();
  SpawnFunded("client", 500, std::move(client));
  port_->RegisterServer(
      SpawnFunded("worker", 0, std::make_unique<QueryWorker>(port_.get())));
  SpawnFunded("spin", 500, std::make_unique<ComputeTask>());
  kernel_->RunFor(SimDuration::Seconds(10));
  EXPECT_EQ(rc->completed(), 4);  // the server made progress without tickets
}

TEST_F(RpcLotteryTest, ThroughputFollowsClientFunding) {
  // Two clients, 4:1 funding, one worker each; query throughput ratio
  // should approach 4:1 because workers run at their clients' rights.
  QueryClient::Options copts;
  copts.num_queries = -1;
  copts.query_cost = SimDuration::Millis(430);  // not quantum-aligned: a worker that
  // replies mid-slice dequeues the next parked message in the same slice
  copts.prepare_cost = SimDuration::Millis(1);
  auto rich = std::make_unique<QueryClient>(port_.get(), copts);
  auto poor = std::make_unique<QueryClient>(port_.get(), copts);
  QueryClient* rr = rich.get();
  QueryClient* rp = poor.get();
  SpawnFunded("rich", 800, std::move(rich));
  SpawnFunded("poor", 200, std::move(poor));
  port_->RegisterServer(
      SpawnFunded("w1", 0, std::make_unique<QueryWorker>(port_.get())));
  port_->RegisterServer(
      SpawnFunded("w2", 0, std::make_unique<QueryWorker>(port_.get())));
  kernel_->RunFor(SimDuration::Seconds(400));
  ASSERT_GT(rp->completed(), 10);
  const double ratio = static_cast<double>(rr->completed()) /
                       static_cast<double>(rp->completed());
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 5.0);
}

TEST_F(RpcLotteryTest, SplitTransfersAcrossTwoServers) {
  // Section 3.1: "clients also have the ability to divide ticket transfers
  // across multiple servers on which they may be waiting." A scatter call
  // to two ports parks two transfer tickets in the client's currency;
  // since both are denominated there, the blocked client's funding splits
  // evenly between the two servers.
  auto port2 = std::make_unique<RpcPort>(kernel_.get(), "db2");

  class ScatterClient : public ThreadBody {
   public:
    ScatterClient(RpcPort* a, RpcPort* b) : a_(a), b_(b) {}
    void Run(RunContext& ctx) override {
      if (!sent_) {
        sent_ = true;
        ctx.Consume(SimDuration::Millis(1));
        a_->Call(ctx, 500000);  // 500 ms of server CPU each
        b_->Call(ctx, 500000);
        ctx.Block();
        return;
      }
      // Woken once per reply; wait for both.
      if (++replies_ < 2) {
        ctx.Block();
        return;
      }
      done_ = true;
      ctx.ExitThread();
    }
    RpcPort* a_;
    RpcPort* b_;
    bool sent_ = false;
    int replies_ = 0;
    bool done_ = false;
  };

  auto client =
      std::make_unique<ScatterClient>(port_.get(), port2.get());
  ScatterClient* rc = client.get();
  SpawnFunded("scatter", 800, std::move(client));
  const ThreadId w1 =
      SpawnFunded("w1", 0, std::make_unique<QueryWorker>(port_.get()));
  port_->RegisterServer(w1);
  const ThreadId w2 =
      SpawnFunded("w2", 0, std::make_unique<QueryWorker>(port2.get()));
  port2->RegisterServer(w2);
  SpawnFunded("spin", 200, std::make_unique<ComputeTask>());

  kernel_->RunFor(SimDuration::Millis(400));
  // Both workers mid-query, each carrying half the scatter client's 800.
  EXPECT_EQ(sched_->ThreadValue(w1).base_units(), 400);
  EXPECT_EQ(sched_->ThreadValue(w2).base_units(), 400);
  kernel_->RunFor(SimDuration::Seconds(10));
  EXPECT_TRUE(rc->done_ || !kernel_->Alive(1));
}

// --- Injected message loss (rpc-drop) --------------------------------------

class RpcDropTest : public ::testing::Test {
 protected:
  // Builds the lottery stack with an injector installed; `plan` decides
  // which calls get lost.
  void Build(const std::string& plan) {
    LotteryScheduler::Options opts;
    opts.seed = 7;
    sched_ = std::make_unique<LotteryScheduler>(opts);
    faults_ = std::make_unique<FaultInjector>(FaultPlan::Parse(plan), 7);
    Kernel::Options ko = KOpts();
    ko.faults = faults_.get();
    kernel_ = std::make_unique<Kernel>(sched_.get(), ko);
    port_ = std::make_unique<RpcPort>(kernel_.get(), "db");

    QueryClient::Options copts;
    copts.num_queries = -1;  // run forever so no currency is torn down
    copts.query_cost = SimDuration::Millis(20);
    auto client = std::make_unique<QueryClient>(port_.get(), copts);
    client_ = client.get();
    client_tid_ = kernel_->Spawn("client", std::move(client));
    sched_->FundThread(client_tid_, sched_->table().base(), 800);
    auto worker = std::make_unique<QueryWorker>(port_.get());
    worker_ = worker.get();
    worker_tid_ = kernel_->Spawn("worker", std::move(worker));
    port_->RegisterServer(worker_tid_);
    const ThreadId spin = kernel_->Spawn("spin",
                                         std::make_unique<ComputeTask>());
    sched_->FundThread(spin, sched_->table().base(), 200);
    baseline_tickets_ = sched_->table().num_tickets();
  }

  std::unique_ptr<LotteryScheduler> sched_;
  std::unique_ptr<FaultInjector> faults_;
  std::unique_ptr<Kernel> kernel_;
  std::unique_ptr<RpcPort> port_;
  QueryClient* client_ = nullptr;
  QueryWorker* worker_ = nullptr;
  ThreadId client_tid_ = kInvalidThreadId;
  ThreadId worker_tid_ = kInvalidThreadId;
  size_t baseline_tickets_ = 0;
};

TEST_F(RpcDropTest, EveryCallDroppedRollsBackAndWakesExactlyOnce) {
  Build("rpc-drop:every=1");
  kernel_->RunFor(SimDuration::Seconds(5));

  EXPECT_GT(port_->total_calls(), 10u);
  // Every call was lost before reaching the server.
  EXPECT_EQ(port_->dropped_calls(), port_->total_calls());
  EXPECT_EQ(worker_->served(), 0);
  EXPECT_EQ(port_->pending_requests(), 0u);
  // Exactly-once loss notice: the client progressed to the next query for
  // each drop — a missed wake would wedge it, a double wake would let it
  // complete more queries than calls it made. The final drop's notice may
  // still be pending at the horizon, hence the one-call slack.
  EXPECT_LE(static_cast<uint64_t>(client_->completed()),
            port_->dropped_calls());
  EXPECT_GE(static_cast<uint64_t>(client_->completed()) + 1,
            port_->dropped_calls());
  // The transfer rolled back by RAII: no leaked tickets, and the worker
  // carries none of the client's funding. The client's own value is its 800
  // base tickets, possibly scaled up by compensation (it runs only slivers
  // of its quanta).
  EXPECT_EQ(sched_->table().num_tickets(), baseline_tickets_);
  EXPECT_EQ(sched_->ThreadValue(worker_tid_).base_units(), 0);
  EXPECT_GE(sched_->ThreadValue(client_tid_).base_units(), 800);
}

TEST_F(RpcDropTest, MixedDropsServeTheSurvivorsExactlyOnce) {
  Build("rpc-drop:every=2");
  kernel_->RunFor(SimDuration::Seconds(5));

  EXPECT_GT(port_->dropped_calls(), 5u);
  EXPECT_GT(static_cast<uint64_t>(worker_->served()), 5u);
  // Delivered + dropped partition the calls; nothing is double-counted,
  // nothing is lost twice. (One call may be in flight at the horizon.)
  EXPECT_GE(port_->total_calls(),
            port_->dropped_calls() + static_cast<uint64_t>(worker_->served()));
  EXPECT_LE(port_->total_calls(), port_->dropped_calls() +
                                      static_cast<uint64_t>(worker_->served()) +
                                      1u);
  // The client saw exactly one wake per finished call, dropped or served
  // (the last notice may still be in flight at the horizon).
  EXPECT_LE(static_cast<uint64_t>(client_->completed()),
            port_->dropped_calls() + static_cast<uint64_t>(worker_->served()));
  EXPECT_GE(static_cast<uint64_t>(client_->completed()) + 1,
            port_->dropped_calls() + static_cast<uint64_t>(worker_->served()));
  // No leaked transfer tickets beyond the possible in-flight call.
  EXPECT_LE(sched_->table().num_tickets(), baseline_tickets_ + 1);
}

TEST_F(RpcLotteryTest, ReplyWithoutClientThrows) {
  class BadReply : public ThreadBody {
   public:
    explicit BadReply(RpcPort* port) : port_(port) {}
    void Run(RunContext& ctx) override {
      RpcMessage msg;  // client unset
      EXPECT_THROW(port_->Reply(ctx, std::move(msg)), std::invalid_argument);
      ctx.ExitThread();
    }
    RpcPort* port_;
  };
  SpawnFunded("bad", 100, std::make_unique<BadReply>(port_.get()));
  kernel_->RunFor(SimDuration::Seconds(1));
}

}  // namespace
}  // namespace lottery
