// Tests for inverse-lottery page replacement (Section 6.2).

#include "src/sim/page_cache.h"

#include <gtest/gtest.h>

namespace lottery {
namespace {

TEST(PageCache, RejectsZeroFrames) {
  FastRand rng(1);
  EXPECT_THROW(PageCache(0, &rng), std::invalid_argument);
}

TEST(PageCache, HitAndMissAccounting) {
  FastRand rng(1);
  PageCache cache(4, &rng);
  cache.RegisterClient(1, 10);
  EXPECT_FALSE(cache.Access(1, 100).hit);
  EXPECT_TRUE(cache.Access(1, 100).hit);
  EXPECT_EQ(cache.Hits(1), 1u);
  EXPECT_EQ(cache.Faults(1), 1u);
  EXPECT_EQ(cache.FramesHeld(1), 1u);
  EXPECT_EQ(cache.frames_in_use(), 1u);
}

TEST(PageCache, DuplicateClientThrows) {
  FastRand rng(1);
  PageCache cache(4, &rng);
  cache.RegisterClient(1, 10);
  EXPECT_THROW(cache.RegisterClient(1, 5), std::invalid_argument);
  EXPECT_THROW(cache.Access(2, 1), std::invalid_argument);
}

TEST(PageCache, NoEvictionUntilFull) {
  FastRand rng(1);
  PageCache cache(3, &rng);
  cache.RegisterClient(1, 10);
  EXPECT_FALSE(cache.Access(1, 1).evicted);
  EXPECT_FALSE(cache.Access(1, 2).evicted);
  EXPECT_FALSE(cache.Access(1, 3).evicted);
  const auto r = cache.Access(1, 4);
  EXPECT_TRUE(r.evicted);
  EXPECT_EQ(cache.frames_in_use(), 3u);
}

TEST(PageCache, SoleClientEvictsItsOwnLruPage) {
  FastRand rng(1);
  PageCache cache(2, &rng);
  cache.RegisterClient(1, 10);
  cache.Access(1, 1);
  cache.Access(1, 2);
  cache.Access(1, 1);  // page 1 now MRU, page 2 LRU
  const auto r = cache.Access(1, 3);
  ASSERT_TRUE(r.evicted);
  EXPECT_EQ(r.victim_client, 1u);
  EXPECT_EQ(r.victim_page, 2u);
  // Page 1 must still be resident.
  EXPECT_TRUE(cache.Access(1, 1).hit);
}

TEST(PageCache, FirstVictimProbabilityMatchesSectionSixTwo) {
  // Instantaneous victim choice at equal frame counts (50/50), tickets
  // 30:10: weights (40-30)*50 : (40-10)*50 = 1:3, so the poor client loses
  // the first eviction with probability 3/4. (Long-run eviction *rates*
  // converge to the fault rates by flow conservation, so the instantaneous
  // probability is the right observable.)
  int poor_losses = 0;
  constexpr int kTrials = 4000;
  for (int trial = 0; trial < kTrials; ++trial) {
    FastRand rng(static_cast<uint32_t>(1000 + trial));
    PageCache cache(100, &rng);
    cache.RegisterClient(1, 30);
    cache.RegisterClient(2, 10);
    for (uint64_t p = 0; p < 50; ++p) {
      cache.Access(1, p);
      cache.Access(2, 1000 + p);
    }
    const auto r = cache.Access(1, 999999);  // first eviction
    ASSERT_TRUE(r.evicted);
    if (r.victim_client == 2) {
      ++poor_losses;
    }
  }
  EXPECT_NEAR(static_cast<double>(poor_losses) / kTrials, 0.75, 0.03);
}

TEST(PageCache, MemoryShareEquilibriumFavorsFunding) {
  // With continuous fresh faults from both clients, the steady-state frame
  // split balances loss rates; the rich client ends with more frames.
  FastRand rng(7);
  PageCache cache(200, &rng);
  cache.RegisterClient(1, 75);
  cache.RegisterClient(2, 25);
  for (uint64_t p = 0; p < 60000; ++p) {
    cache.Access(1, 1000000 + p);
    cache.Access(2, 5000000 + p);
  }
  EXPECT_GT(cache.FramesHeld(1), cache.FramesHeld(2));
  EXPECT_EQ(cache.FramesHeld(1) + cache.FramesHeld(2), 200u);
}

TEST(PageCache, SetTicketsShiftsMemoryEquilibrium) {
  FastRand rng(9);
  PageCache cache(50, &rng);
  cache.RegisterClient(1, 10);
  cache.RegisterClient(2, 10);
  for (uint64_t p = 0; p < 10000; ++p) {
    cache.Access(1, 10000 + p);
    cache.Access(2, 20000 + p);
  }
  // Equal tickets, equal fault rates: frames split evenly.
  EXPECT_NEAR(static_cast<double>(cache.FramesHeld(1)), 25.0, 10.0);
  // Boost client 1 and keep faulting: its equilibrium frame share should
  // rise to (nearly) the whole cache, since client 2's complementary
  // weight dwarfs client 1's.
  cache.SetTickets(1, 1000);
  for (uint64_t p = 0; p < 10000; ++p) {
    cache.Access(1, 50000 + p);
    cache.Access(2, 70000 + p);
  }
  EXPECT_GT(cache.FramesHeld(1), 40u);
}

}  // namespace
}  // namespace lottery
