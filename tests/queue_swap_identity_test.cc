// Locks the scheduler substrate to a byte-exact golden trace across event-
// queue implementations.
//
// The timing-wheel EventQueue replaced the original binary-heap queue; both
// must drive the kernel through the *identical* sequence of decisions for a
// fixed seed. The golden hash below was recorded from the heap
// implementation on a fig5-style scenario (lottery kernel, 3 compute
// threads at 3:2:1 plus two timed sleepers, 30 simulated seconds, full
// etrace). Any queue change that reorders even one event — a lost FIFO
// tiebreak, a quantization error in the wheel, a cancel delivered late —
// shifts a wake or slice event and changes the hash.

#include <cstdint>
#include <memory>
#include <string>

#include <gtest/gtest.h>

#include "src/core/lottery_scheduler.h"
#include "src/obs/etrace/trace_buffer.h"
#include "src/obs/registry.h"
#include "src/sim/kernel.h"
#include "src/workloads/compute.h"

namespace lottery {
namespace {

// FNV-1a over the serialized trace: stable, dependency-free, and any
// single-byte difference flips it.
uint64_t Fnv1a(const std::string& bytes) {
  uint64_t hash = 1469598103934665603ull;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ull;
  }
  return hash;
}

// Consumes a slice then sleeps, so every period schedules (and later
// delivers) a timer through the event queue.
class SleeperBody : public ThreadBody {
 public:
  explicit SleeperBody(SimDuration busy, SimDuration nap)
      : busy_(busy), nap_(nap) {}

  void Run(RunContext& ctx) override {
    ctx.Consume(busy_);
    ctx.SleepFor(nap_);
  }

 private:
  SimDuration busy_;
  SimDuration nap_;
};

TEST(QueueSwapIdentity, Fig5StyleTraceBytesMatchHeapGolden) {
  obs::Registry registry;
  etrace::TraceBuffer trace;
  trace.set_seed(42);

  LotteryScheduler::Options sopts;
  sopts.seed = 42;
  sopts.metrics = &registry;
  sopts.trace = &trace;
  LotteryScheduler scheduler(sopts);

  Kernel::Options kopts;
  kopts.quantum = SimDuration::Millis(100);
  kopts.metrics = &registry;
  kopts.trace = &trace;
  Kernel kernel(&scheduler, kopts);

  const int64_t shares[] = {300, 200, 100};
  for (int i = 0; i < 3; ++i) {
    const ThreadId tid = kernel.Spawn("compute" + std::to_string(i),
                                      std::make_unique<ComputeTask>());
    scheduler.FundThread(tid, scheduler.table().base(), shares[i]);
  }
  const ThreadId s1 = kernel.Spawn(
      "sleeper1", std::make_unique<SleeperBody>(SimDuration::Millis(20),
                                                SimDuration::Millis(130)));
  scheduler.FundThread(s1, scheduler.table().base(), 150);
  const ThreadId s2 = kernel.Spawn(
      "sleeper2", std::make_unique<SleeperBody>(SimDuration::Millis(35),
                                                SimDuration::Millis(470)));
  scheduler.FundThread(s2, scheduler.table().base(), 250);

  kernel.RunFor(SimDuration::Seconds(30));

  const std::string bytes = trace.Serialize();
  // Recorded from the pre-wheel binary-heap EventQueue at seed 42. If this
  // fails after an intentional *scheduling* change, re-derive it; if it
  // fails after an event-queue change, the queue broke determinism.
  // (Re-derived when kCatTimeseries joined the category mask: the serialized
  // header embeds kDefaultCategories, and the event stream itself was
  // verified unchanged — same 1159 events.)
  const uint64_t kHeapGoldenHash = 0x5dd2d12814016d95ull;
  EXPECT_EQ(Fnv1a(bytes), kHeapGoldenHash)
      << "trace hash 0x" << std::hex << Fnv1a(bytes) << " (" << std::dec
      << trace.size() << " events)";
}

}  // namespace
}  // namespace lottery
