// Tests for the workload bodies against the simulated kernel.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "src/sched/round_robin.h"
#include "src/workloads/compute.h"
#include "src/workloads/deadline.h"
#include "src/workloads/montecarlo.h"
#include "src/workloads/video.h"

namespace lottery {
namespace {

Kernel::Options KOpts() {
  Kernel::Options o;
  o.quantum = SimDuration::Millis(100);
  return o;
}

TEST(ComputeTask, IterationsProportionalToCpu) {
  RoundRobinScheduler sched;
  Tracer tracer(SimDuration::Seconds(1));
  Kernel kernel(&sched, KOpts(), &tracer);
  ComputeTask::Options opts;
  opts.iteration_cost = SimDuration::Micros(40);
  auto task = std::make_unique<ComputeTask>(opts);
  ComputeTask* raw = task.get();
  kernel.Spawn("dhrystone", std::move(task));
  kernel.RunFor(SimDuration::Seconds(4));
  // 25k iterations per CPU second, sole thread.
  EXPECT_EQ(raw->units_done(), 100000);
}

TEST(ComputeTask, TwoTasksSplitEvenlyUnderRoundRobin) {
  RoundRobinScheduler sched;
  Tracer tracer(SimDuration::Seconds(1));
  Kernel kernel(&sched, KOpts(), &tracer);
  const ThreadId a = kernel.Spawn("a", std::make_unique<ComputeTask>());
  const ThreadId b = kernel.Spawn("b", std::make_unique<ComputeTask>());
  kernel.RunFor(SimDuration::Seconds(10));
  EXPECT_EQ(tracer.TotalProgress(a), tracer.TotalProgress(b));
}

TEST(ComputeTask, RejectsNonPositiveCost) {
  ComputeTask::Options opts;
  opts.iteration_cost = SimDuration::Nanos(0);
  EXPECT_THROW(ComputeTask{opts}, std::invalid_argument);
}

TEST(YieldingTask, UsesOnlyItsBurstPerQuantum) {
  RoundRobinScheduler sched;
  Kernel kernel(&sched, KOpts());
  auto y = std::make_unique<YieldingTask>(SimDuration::Millis(20));
  YieldingTask* ry = y.get();
  const ThreadId yt = kernel.Spawn("yield", std::move(y));
  const ThreadId spin = kernel.Spawn("spin", std::make_unique<ComputeTask>());
  kernel.RunFor(SimDuration::Seconds(12));
  // Round-robin alternation: each "round" is 20 ms (yield) + 100 ms (spin);
  // the yielding task gets 1/6 of the CPU.
  EXPECT_NEAR(kernel.CpuTime(yt).ToSecondsF(), 2.0, 0.1);
  EXPECT_NEAR(kernel.CpuTime(spin).ToSecondsF(), 10.0, 0.1);
  EXPECT_GT(ry->bursts_done(), 90);
}

TEST(InteractiveTask, SleepsBetweenBursts) {
  RoundRobinScheduler sched;
  Kernel kernel(&sched, KOpts());
  auto t = std::make_unique<InteractiveTask>(SimDuration::Millis(10),
                                             SimDuration::Millis(90));
  InteractiveTask* rt = t.get();
  kernel.Spawn("interactive", std::move(t));
  kernel.RunFor(SimDuration::Seconds(10));
  // One 10 ms burst per 100 ms cycle.
  EXPECT_NEAR(static_cast<double>(rt->interactions()), 100.0, 2.0);
  EXPECT_NEAR(kernel.idle_time().ToSecondsF(), 9.0, 0.2);
}

TEST(VideoViewer, FrameRateMatchesCpuShare) {
  RoundRobinScheduler sched;
  Kernel kernel(&sched, KOpts());
  VideoViewer::Options opts;
  opts.frame_cost = SimDuration::Millis(50);
  auto v = std::make_unique<VideoViewer>(opts);
  VideoViewer* rv = v.get();
  kernel.Spawn("viewer", std::move(v));
  kernel.Spawn("competitor", std::make_unique<ComputeTask>());
  kernel.RunFor(SimDuration::Seconds(10));
  // Half the CPU at 20 fps full speed -> ~10 fps.
  EXPECT_NEAR(static_cast<double>(rv->frames()), 100.0, 3.0);
}

TEST(MonteCarloTask, RunsWithoutInflationWhenUnfunded) {
  RoundRobinScheduler sched;
  Kernel kernel(&sched, KOpts());
  MonteCarloTask::Options opts;
  opts.trial_cost = SimDuration::Millis(1);
  auto mc = std::make_unique<MonteCarloTask>(nullptr, nullptr, opts);
  MonteCarloTask* raw = mc.get();
  kernel.Spawn("mc", std::move(mc));
  kernel.RunFor(SimDuration::Seconds(2));
  EXPECT_EQ(raw->trials(), 2000);
  EXPECT_NEAR(raw->relative_error(), 1.0 / std::sqrt(2000.0), 1e-9);
  EXPECT_EQ(raw->current_amount(), 0);
}

// Spawns a MonteCarloTask funded by a fresh inflatable ticket. The initial
// amount reflects the task's starting relative error of 1.0 — i.e. the
// clamped maximum — exactly what the task's own policy would set.
MonteCarloTask* SpawnMonteCarlo(Kernel& kernel, LotteryScheduler& sched,
                                const std::string& name,
                                const MonteCarloTask::Options& opts,
                                bool start_ready, ThreadId* tid_out) {
  auto body = std::make_unique<MonteCarloTask>(nullptr, nullptr, opts);
  MonteCarloTask* raw = body.get();
  const ThreadId tid = kernel.Spawn(name, std::move(body), start_ready);
  const int64_t initial =
      std::clamp(opts.inflation_scale, opts.min_amount, opts.max_amount);
  Ticket* ticket = sched.FundThread(tid, sched.table().base(), initial);
  raw->AttachFunding(&sched.table(), ticket);
  if (tid_out != nullptr) {
    *tid_out = tid;
  }
  return raw;
}

TEST(MonteCarloTask, InflationDecaysAsTrialsAccumulate) {
  LotteryScheduler lsched;
  Kernel kernel(&lsched, KOpts());
  MonteCarloTask::Options opts;
  opts.trial_cost = SimDuration::Millis(1);
  opts.inflation_scale = 1000000;
  opts.max_amount = 100000;
  ThreadId tid = kInvalidThreadId;
  MonteCarloTask* raw =
      SpawnMonteCarlo(kernel, lsched, "mc", opts, /*start_ready=*/true, &tid);
  kernel.RunFor(SimDuration::Seconds(5));
  EXPECT_EQ(raw->trials(), 5000);
  // amount == scale / trials, clamped.
  EXPECT_EQ(raw->current_amount(), 1000000 / 5000);
  EXPECT_NEAR(raw->relative_error(), 1.0 / std::sqrt(5000.0), 1e-9);
}

TEST(MonteCarloTask, EstimateConvergesToPi) {
  RoundRobinScheduler sched;
  Kernel kernel(&sched, KOpts());
  MonteCarloTask::Options opts;
  opts.trial_cost = SimDuration::Micros(10);
  auto mc = std::make_unique<MonteCarloTask>(nullptr, nullptr, opts);
  MonteCarloTask* raw = mc.get();
  kernel.Spawn("mc", std::move(mc));
  kernel.RunFor(SimDuration::Seconds(10));  // 1M trials
  EXPECT_EQ(raw->trials(), 1000000);
  EXPECT_NEAR(raw->estimate(), 3.14159265, 0.005);
  // The true stderr of 4/(1+x^2) sampling is ~0.00064 at n = 1e6.
  EXPECT_GT(raw->standard_error(), 0.0001);
  EXPECT_LT(raw->standard_error(), 0.002);
  // The estimate should be within a few standard errors of pi.
  EXPECT_LT(std::abs(raw->estimate() - 3.14159265),
            5.0 * raw->standard_error());
}

TEST(MonteCarloTask, MeasuredErrorModelTracksStandardError) {
  RoundRobinScheduler sched;
  Kernel kernel(&sched, KOpts());
  MonteCarloTask::Options opts;
  opts.trial_cost = SimDuration::Micros(100);
  opts.error_model = MonteCarloTask::ErrorModel::kMeasured;
  auto mc = std::make_unique<MonteCarloTask>(nullptr, nullptr, opts);
  MonteCarloTask* raw = mc.get();
  kernel.Spawn("mc", std::move(mc));
  kernel.RunFor(SimDuration::Seconds(2));
  EXPECT_NEAR(raw->relative_error(),
              raw->standard_error() / raw->estimate(), 1e-12);
}

TEST(MonteCarloTask, MeasuredErrorInflationDrivesCatchUp) {
  LotteryScheduler::Options lopts;
  lopts.seed = 17;
  LotteryScheduler lsched(lopts);
  Kernel kernel(&lsched, KOpts());
  MonteCarloTask::Options opts;
  opts.trial_cost = SimDuration::Millis(1);
  opts.error_model = MonteCarloTask::ErrorModel::kMeasured;
  opts.inflation_scale = 1000000000000;  // measured rel-err^2 is tiny
  // Keep the clamp far above the working range so it does not flatten the
  // fresh task's error^2 advantage.
  opts.max_amount = 1000000000;

  ThreadId ta = kInvalidThreadId, tb = kInvalidThreadId;
  MonteCarloTask* a =
      SpawnMonteCarlo(kernel, lsched, "A", opts, /*start_ready=*/true, &ta);
  MonteCarloTask* b =
      SpawnMonteCarlo(kernel, lsched, "B", opts, /*start_ready=*/false, &tb);
  kernel.RunFor(SimDuration::Seconds(60));
  const int64_t a_before = a->trials();
  kernel.Wake(tb, kernel.now());
  kernel.RunFor(SimDuration::Seconds(30));
  // B (fresh, high measured error) must outpace A while catching up.
  EXPECT_GT(b->trials(), (a->trials() - a_before) * 2);
}

TEST(MonteCarloTask, FreshTaskCatchesUpThenConverges) {
  // The Figure 6 dynamic in miniature: task B starts after task A has
  // accumulated trials; B's inflated tickets let it catch up, and the gap
  // between their trial counts shrinks over time.
  LotteryScheduler::Options lopts;
  lopts.seed = 5;
  LotteryScheduler lsched(lopts);
  Kernel kernel(&lsched, KOpts());
  MonteCarloTask::Options opts;
  opts.trial_cost = SimDuration::Millis(1);
  opts.inflation_scale = 100000000;

  ThreadId ta = kInvalidThreadId, tb = kInvalidThreadId;
  MonteCarloTask* a =
      SpawnMonteCarlo(kernel, lsched, "A", opts, /*start_ready=*/true, &ta);
  MonteCarloTask* b =
      SpawnMonteCarlo(kernel, lsched, "B", opts, /*start_ready=*/false, &tb);

  kernel.RunFor(SimDuration::Seconds(60));
  const int64_t a_at_b_start = a->trials();
  EXPECT_EQ(b->trials(), 0);
  kernel.Wake(tb, kernel.now());

  kernel.RunFor(SimDuration::Seconds(20));
  // B received the lion's share while behind.
  EXPECT_GT(b->trials(), (a->trials() - a_at_b_start) * 2);

  kernel.RunFor(SimDuration::Seconds(300));
  // Long-run convergence: equal errors => near-equal totals.
  const double gap = std::abs(static_cast<double>(a->trials() - b->trials()));
  EXPECT_LT(gap / static_cast<double>(a->trials()), 0.15);
}

TEST(DeadlineTask, AllOnTimeWhenAlone) {
  RoundRobinScheduler sched;
  Kernel kernel(&sched, KOpts());
  DeadlineTask::Options opts;
  opts.period = SimDuration::Millis(100);
  opts.budget = SimDuration::Millis(25);
  auto body = std::make_unique<DeadlineTask>(opts);
  DeadlineTask* raw = body.get();
  kernel.Spawn("rt", std::move(body));
  kernel.RunFor(SimDuration::Seconds(10));
  EXPECT_EQ(raw->completed(), 100);
  EXPECT_EQ(raw->on_time(), 100);
  // The task sleeps 75% of the time.
  EXPECT_NEAR(kernel.idle_time().ToSecondsF(), 7.5, 0.2);
}

TEST(DeadlineTask, MissesWhenShareTooSmall) {
  // Round-robin with 4 background tasks gives the deadline task 1/5 of the
  // CPU — below its 25% requirement — so jobs fall behind.
  RoundRobinScheduler sched;
  Kernel::Options kopts;
  kopts.quantum = SimDuration::Millis(10);
  Kernel kernel(&sched, kopts);
  DeadlineTask::Options opts;
  opts.period = SimDuration::Millis(100);
  opts.budget = SimDuration::Millis(25);
  auto body = std::make_unique<DeadlineTask>(opts);
  DeadlineTask* raw = body.get();
  kernel.Spawn("rt", std::move(body));
  for (int i = 0; i < 4; ++i) {
    kernel.Spawn("bg" + std::to_string(i), std::make_unique<ComputeTask>());
  }
  kernel.RunFor(SimDuration::Seconds(60));
  EXPECT_LT(raw->on_time_fraction(), 0.2);
  // Throughput itself is limited to its CPU share: ~20% of demand... the
  // task still completes jobs (late), roughly share/budget per second.
  EXPECT_GT(raw->completed(), 300);
}

TEST(DeadlineTask, LotteryContractHoldsUnderLoad) {
  LotteryScheduler::Options lopts;
  lopts.seed = 77;
  LotteryScheduler sched(lopts);
  Kernel::Options kopts;
  kopts.quantum = SimDuration::Millis(10);
  Kernel kernel(&sched, kopts);
  DeadlineTask::Options opts;
  opts.period = SimDuration::Millis(100);
  opts.budget = SimDuration::Millis(25);
  auto body = std::make_unique<DeadlineTask>(opts);
  DeadlineTask* raw = body.get();
  const ThreadId rt = kernel.Spawn("rt", std::move(body));
  sched.FundThread(rt, sched.table().base(), 500);
  for (int i = 0; i < 6; ++i) {
    const ThreadId tid =
        kernel.Spawn("bg" + std::to_string(i), std::make_unique<ComputeTask>());
    sched.FundThread(tid, sched.table().base(), 100);
  }
  kernel.RunFor(SimDuration::Seconds(60));
  // 50% funding against a 25% requirement: misses are rare.
  EXPECT_GT(raw->on_time_fraction(), 0.9);
}

}  // namespace
}  // namespace lottery
