// Tests for the tree-backed (O(lg n)) lottery run queue — Section 4.2's
// "tree of partial ticket sums" as a scheduler backend.

#include <gtest/gtest.h>

#include <map>
#include <memory>

#include "src/core/lottery_scheduler.h"
#include "src/sim/kernel.h"
#include "src/workloads/compute.h"

namespace lottery {
namespace {

const SimTime kT0 = SimTime::Zero();

LotteryScheduler::Options TreeOpts(uint32_t seed) {
  LotteryScheduler::Options o;
  o.seed = seed;
  o.backend = RunQueueBackend::kTree;
  return o;
}

TEST(TreeBackend, EmptyPicksInvalid) {
  LotteryScheduler sched(TreeOpts(1));
  EXPECT_EQ(sched.PickNext(kT0), kInvalidThreadId);
}

TEST(TreeBackend, SingleThreadPickedAndDequeued) {
  LotteryScheduler sched(TreeOpts(2));
  sched.AddThread(1, kT0);
  sched.FundThread(1, sched.table().base(), 100);
  sched.OnReady(1, kT0);
  EXPECT_EQ(sched.PickNext(kT0), 1u);
  EXPECT_EQ(sched.PickNext(kT0), kInvalidThreadId);
}

TEST(TreeBackend, ProportionsFollowFunding) {
  LotteryScheduler sched(TreeOpts(777));
  sched.AddThread(1, kT0);
  sched.AddThread(2, kT0);
  sched.FundThread(1, sched.table().base(), 300);
  sched.FundThread(2, sched.table().base(), 100);
  int wins1 = 0;
  constexpr int kRounds = 20000;
  for (int i = 0; i < kRounds; ++i) {
    sched.OnReady(1, kT0);
    sched.OnReady(2, kT0);
    if (sched.PickNext(kT0) == 1u) {
      ++wins1;
    }
    sched.OnBlocked(1, kT0);
    sched.OnBlocked(2, kT0);
  }
  EXPECT_NEAR(static_cast<double>(wins1) / kRounds, 0.75, 0.02);
}

TEST(TreeBackend, ReactsToDynamicInflation) {
  LotteryScheduler sched(TreeOpts(5));
  sched.AddThread(1, kT0);
  sched.AddThread(2, kT0);
  Ticket* t1 = sched.FundThread(1, sched.table().base(), 100);
  sched.FundThread(2, sched.table().base(), 100);
  auto share1 = [&](int rounds) {
    int wins = 0;
    for (int i = 0; i < rounds; ++i) {
      sched.OnReady(1, kT0);
      sched.OnReady(2, kT0);
      if (sched.PickNext(kT0) == 1u) {
        ++wins;
      }
      sched.OnBlocked(1, kT0);
      sched.OnBlocked(2, kT0);
    }
    return static_cast<double>(wins) / rounds;
  };
  EXPECT_NEAR(share1(10000), 0.5, 0.03);
  sched.table().SetAmount(t1, 900);  // inflate mid-flight
  EXPECT_NEAR(share1(10000), 0.9, 0.02);
}

TEST(TreeBackend, ZeroFundingFallbackAvoidsStarvation) {
  LotteryScheduler sched(TreeOpts(6));
  sched.AddThread(1, kT0);
  sched.AddThread(2, kT0);
  std::map<ThreadId, int> picks;
  for (int i = 0; i < 200; ++i) {
    sched.OnReady(1, kT0);
    sched.OnReady(2, kT0);
    ++picks[sched.PickNext(kT0)];
    sched.OnBlocked(1, kT0);
    sched.OnBlocked(2, kT0);
  }
  EXPECT_GT(picks[1], 0);
  EXPECT_GT(picks[2], 0);
  EXPECT_GE(sched.num_zero_fallbacks(), 200u);
}

TEST(TreeBackend, RemoveThreadWhileQueued) {
  LotteryScheduler sched(TreeOpts(7));
  sched.AddThread(1, kT0);
  sched.AddThread(2, kT0);
  sched.FundThread(1, sched.table().base(), 100);
  sched.FundThread(2, sched.table().base(), 100);
  sched.OnReady(1, kT0);
  sched.OnReady(2, kT0);
  sched.RemoveThread(1, kT0);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(sched.PickNext(kT0), 2u);
    sched.OnReady(2, kT0);
  }
}

TEST(TreeBackend, MatchesListBackendDistribution) {
  // Same funding, both backends: win shares agree to within noise.
  auto share = [](RunQueueBackend backend, uint32_t seed) {
    LotteryScheduler::Options o;
    o.seed = seed;
    o.backend = backend;
    LotteryScheduler sched(o);
    sched.AddThread(1, SimTime::Zero());
    sched.AddThread(2, SimTime::Zero());
    sched.AddThread(3, SimTime::Zero());
    sched.FundThread(1, sched.table().base(), 500);
    sched.FundThread(2, sched.table().base(), 300);
    sched.FundThread(3, sched.table().base(), 200);
    int wins1 = 0;
    constexpr int kRounds = 30000;
    for (int i = 0; i < kRounds; ++i) {
      for (ThreadId id : {1u, 2u, 3u}) {
        sched.OnReady(id, SimTime::Zero());
      }
      if (sched.PickNext(SimTime::Zero()) == 1u) {
        ++wins1;
      }
      for (ThreadId id : {1u, 2u, 3u}) {
        sched.OnBlocked(id, SimTime::Zero());
      }
    }
    return static_cast<double>(wins1) / kRounds;
  };
  EXPECT_NEAR(share(RunQueueBackend::kList, 11), 0.5, 0.02);
  EXPECT_NEAR(share(RunQueueBackend::kTree, 11), 0.5, 0.02);
}

TEST(TreeBackend, EndToEndSimulationMatchesAllocation) {
  LotteryScheduler sched(TreeOpts(8));
  Tracer tracer(SimDuration::Seconds(1));
  Kernel::Options kopts;
  kopts.quantum = SimDuration::Millis(100);
  Kernel kernel(&sched, kopts, &tracer);
  const ThreadId a = kernel.Spawn("a", std::make_unique<ComputeTask>());
  sched.FundThread(a, sched.table().base(), 300);
  const ThreadId b = kernel.Spawn("b", std::make_unique<ComputeTask>());
  sched.FundThread(b, sched.table().base(), 100);
  kernel.RunFor(SimDuration::Seconds(120));
  const double ratio = static_cast<double>(tracer.TotalProgress(a)) /
                       static_cast<double>(tracer.TotalProgress(b));
  EXPECT_NEAR(ratio, 3.0, 0.4);
}

TEST(TreeBackend, CompensationStillApplies) {
  LotteryScheduler sched(TreeOpts(9));
  Kernel::Options kopts;
  kopts.quantum = SimDuration::Millis(100);
  Kernel kernel(&sched, kopts);
  const ThreadId a = kernel.Spawn("full", std::make_unique<ComputeTask>());
  sched.FundThread(a, sched.table().base(), 100);
  const ThreadId b = kernel.Spawn(
      "frac", std::make_unique<YieldingTask>(SimDuration::Millis(20)));
  sched.FundThread(b, sched.table().base(), 100);
  kernel.RunFor(SimDuration::Seconds(200));
  EXPECT_NEAR(kernel.CpuTime(a).ToSecondsF() / kernel.CpuTime(b).ToSecondsF(),
              1.0, 0.2);
}

}  // namespace
}  // namespace lottery
