// Tests for the runtime half of the determinism contract: the LOT_ASSERT
// invariant layer (src/util/invariant.h, src/core/invariants.h).
//
// Death tests corrupt private state through InvariantTestPeer — bypassing
// the CurrencyTable API, which refuses to create these states — and prove
// the conservation / acyclicity / compensation-bound sweeps abort with a
// precise message. A pass-through test then runs a fig4-style workload and
// proves the same sweeps stay silent on legal mutations (while actually
// executing: InvariantChecksRun() must advance).
//
// All of it is compiled against whatever LOTTERY_INVARIANTS resolved to:
// in Release (checks compiled out) the death tests skip and the
// pass-through asserts that zero checks ran.

#include <gtest/gtest.h>

#include <map>

#include "src/core/client.h"
#include "src/core/currency.h"
#include "src/core/invariants.h"
#include "src/core/lottery_scheduler.h"
#include "src/core/ticket.h"
#include "src/util/invariant.h"

namespace lottery {

// Friend of Currency and Ticket; forges states the public API rejects.
class InvariantTestPeer {
 public:
  static void InflateIssuedAmount(Currency* c, int64_t delta) {
    c->issued_amount_ += delta;
  }
  // Adds a backing edge directly, skipping CurrencyTable::Fund and its
  // cycle check.
  static void SpliceBackingEdge(Currency* target, Ticket* t) {
    t->funds_ = target;
    target->backing_.push_back(t);
  }
};

namespace {

const SimTime kT0 = SimTime::Zero();

TEST(InvariantDeath, TicketConservationViolationAborts) {
#if !LOT_INVARIANTS_ENABLED
  GTEST_SKIP() << "LOTTERY_INVARIANTS off in this build";
#else
  CurrencyTable table;
  Currency* team = table.CreateCurrency("team");
  table.CreateTicket(team, 100);
  EXPECT_DEATH(
      {
        InvariantTestPeer::InflateIssuedAmount(team, 7);
        invariants::CheckTicketConservation(table);
      },
      "ticket conservation: issued_amount");
#endif
}

TEST(InvariantDeath, CurrencyCycleAborts) {
#if !LOT_INVARIANTS_ENABLED
  GTEST_SKIP() << "LOTTERY_INVARIANTS off in this build";
#else
  CurrencyTable table;
  Currency* a = table.CreateCurrency("a");
  Currency* b = table.CreateCurrency("b");
  Ticket* a_to_b = table.CreateTicket(a, 100);
  table.Fund(b, a_to_b);  // legal: b backed by a-denominated ticket
  Ticket* b_to_a = table.CreateTicket(b, 100);
  // Fund(a, b_to_a) would throw; the peer splices the edge behind the
  // API's back, closing the cycle a -> b -> a.
  EXPECT_DEATH(
      {
        InvariantTestPeer::SpliceBackingEdge(a, b_to_a);
        invariants::CheckAcyclicity(table);
      },
      "currency graph cycle");
#endif
}

TEST(InvariantDeath, CompensationAboveCapAborts) {
#if !LOT_INVARIANTS_ENABLED
  GTEST_SKIP() << "LOTTERY_INVARIANTS off in this build";
#else
  CurrencyTable table;
  Client client(&table, "victim");
  client.SetCompensation(50, 10);  // factor 5
  EXPECT_DEATH(invariants::CheckCompensationBound(client, 4),
               "exceeds q/f cap");
#endif
}

TEST(InvariantDeath, LegalStatePassesAllSweeps) {
  // The same sweeps the death tests use must accept API-built state, in
  // any build mode (the functions exist either way; only LOT_ASSERT
  // changes meaning).
  CurrencyTable table;
  Currency* team = table.CreateCurrency("team");
  Ticket* backing = table.CreateTicket(table.base(), 200);
  table.Fund(team, backing);
  table.CreateTicket(team, 100);
  Client client(&table, "ok");
  client.SetCompensation(20, 10);
  invariants::CheckTable(table);
  invariants::CheckCompensationBound(client, 10);
}

// Fig4-style pass-through: a 3:2:1 funded lottery with blocking and a
// remove, on both run-queue backends. No invariant may trip, and in
// invariant-enabled builds the checks must demonstrably execute.
TEST(InvariantPassThrough, Fig4StyleWorkloadTripsNothing) {
  const uint64_t checks_before = internal::InvariantChecksRun();
  for (const RunQueueBackend backend :
       {RunQueueBackend::kList, RunQueueBackend::kTree}) {
    LotteryScheduler::Options opts;
    opts.seed = 42;
    opts.backend = backend;
    LotteryScheduler sched(opts);
    for (ThreadId id = 1; id <= 3; ++id) {
      sched.AddThread(id, kT0);
    }
    sched.FundThread(1, sched.table().base(), 300);
    sched.FundThread(2, sched.table().base(), 200);
    sched.FundThread(3, sched.table().base(), 100);
    const SimDuration quantum = SimDuration::Millis(100);
    std::map<ThreadId, int> wins;
    for (int round = 0; round < 300; ++round) {
      for (ThreadId id = 1; id <= 3; ++id) {
        sched.OnReady(id, kT0);
      }
      const ThreadId w = sched.PickNext(kT0);
      ASSERT_NE(w, kInvalidThreadId);
      ++wins[w];
      // Every 7th quantum is under-consumed, exercising compensation.
      const SimDuration used =
          (round % 7 == 0) ? SimDuration::Millis(25) : quantum;
      sched.OnQuantumEnd(w, used, quantum, kT0);
      for (ThreadId id = 1; id <= 3; ++id) {
        if (id != w) {
          sched.OnBlocked(id, kT0);
        }
      }
    }
    EXPECT_GT(wins[1], wins[3]);  // 3:1 funding must show through
    sched.RemoveThread(2, kT0);
    sched.OnReady(1, kT0);
    EXPECT_NE(sched.PickNext(kT0), kInvalidThreadId);
  }
  const uint64_t checks_after = internal::InvariantChecksRun();
  if (LOT_INVARIANTS_ENABLED) {
    EXPECT_GT(checks_after, checks_before)
        << "invariant build ran no LOT_ASSERT conditions";
  } else {
    EXPECT_EQ(checks_after, checks_before);
    EXPECT_EQ(checks_after, 0u);
  }
}

}  // namespace
}  // namespace lottery
