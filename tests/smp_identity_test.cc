// Differential proof that the SMP facade is the single-queue scheduler when
// partitioned for one CPU: same winner stream, same RNG state, same
// structured trace, byte for byte — and that with several CPUs, stealing
// over a perfectly balanced system is a draw-free no-op. Together these pin
// the determinism contract of src/sched/smp/: balance decisions live on
// their own RNG stream and never perturb per-CPU dispatch.

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/core/lottery_scheduler.h"
#include "src/obs/etrace/trace_buffer.h"
#include "src/obs/registry.h"
#include "src/sched/smp/smp_scheduler.h"
#include "src/sim/kernel.h"
#include "src/workloads/compute.h"

namespace lottery {
namespace {

constexpr int kThreads = 6;
constexpr uint32_t kSeed = 20817;

struct RunResult {
  std::string trace_bytes;
  uint32_t rng_state = 0;
  std::vector<int64_t> cpu_time_ns;
  uint64_t context_switches = 0;
};

Kernel::Options KernelOpts(int cpus, obs::Registry* reg,
                           etrace::TraceBuffer* trace) {
  Kernel::Options o;
  o.quantum = SimDuration::Millis(10);
  o.num_cpus = cpus;
  o.metrics = reg;
  o.trace = trace;
  return o;
}

template <typename Sched, typename Fund>
RunResult Drive(Sched& sched, Kernel& kernel, Fund fund) {
  std::vector<ThreadId> tids;
  for (int i = 0; i < kThreads; ++i) {
    tids.push_back(kernel.Spawn("worker" + std::to_string(i),
                                std::make_unique<ComputeTask>()));
  }
  for (int i = 0; i < kThreads; ++i) {
    fund(sched, tids[static_cast<size_t>(i)], 100 + 50 * i);
  }
  kernel.RunFor(SimDuration::Seconds(30));
  RunResult r;
  for (const ThreadId tid : tids) {
    r.cpu_time_ns.push_back(kernel.CpuTime(tid).nanos());
  }
  r.context_switches = kernel.context_switches();
  return r;
}

RunResult RunPlain(RunQueueBackend backend) {
  obs::Registry reg;
  etrace::TraceBuffer trace;
  LotteryScheduler::Options o;
  o.seed = kSeed;
  o.backend = backend;
  o.metrics = &reg;
  o.trace = &trace;
  LotteryScheduler sched(o);
  Kernel kernel(&sched, KernelOpts(1, &reg, &trace));
  RunResult r = Drive(sched, kernel,
                      [](LotteryScheduler& s, ThreadId tid, int64_t amount) {
                        s.FundThread(tid, s.table().base(), amount);
                      });
  r.trace_bytes = trace.Serialize();
  r.rng_state = sched.rng().state();
  return r;
}

RunResult RunSmp(RunQueueBackend backend, bool steal_enabled) {
  obs::Registry reg;
  etrace::TraceBuffer trace;
  smp::SmpScheduler::Options o;
  o.num_cpus = 1;
  o.seed = kSeed;
  o.cpu.backend = backend;
  o.steal_enabled = steal_enabled;
  o.metrics = &reg;
  o.trace = &trace;
  smp::SmpScheduler sched(o);
  Kernel kernel(&sched, KernelOpts(1, &reg, &trace));
  RunResult r = Drive(sched, kernel,
                      [](smp::SmpScheduler& s, ThreadId tid, int64_t amount) {
                        s.FundThread(tid, amount);
                      });
  r.trace_bytes = trace.Serialize();
  r.rng_state = sched.cpu(0).rng().state();
  EXPECT_EQ(sched.steals(), 0u);
  EXPECT_EQ(sched.migrations(), 0u);
  sched.CheckIntegrity();
  return r;
}

class SmpIdentity : public testing::TestWithParam<RunQueueBackend> {};

// The tentpole contract: SmpScheduler partitioned for one CPU IS the plain
// LotteryScheduler — winner stream (via the trace's decision events), final
// RNG state, per-thread CPU time, and the full structured trace all match
// bit-exactly, for every run-queue backend.
TEST_P(SmpIdentity, OneCpuFacadeIsBitIdenticalToPlainScheduler) {
  const RunResult plain = RunPlain(GetParam());
  const RunResult smp = RunSmp(GetParam(), /*steal_enabled=*/true);
  EXPECT_EQ(plain.rng_state, smp.rng_state);
  EXPECT_EQ(plain.cpu_time_ns, smp.cpu_time_ns);
  EXPECT_EQ(plain.context_switches, smp.context_switches);
  ASSERT_EQ(plain.trace_bytes.size(), smp.trace_bytes.size());
  EXPECT_TRUE(plain.trace_bytes == smp.trace_bytes)
      << "structured traces diverge";
}

// steal_enabled must be unobservable at one CPU (the guard short-circuits
// before any balance logic, so not even RNG construction order differs).
TEST_P(SmpIdentity, StealSwitchUnobservableAtOneCpu) {
  const RunResult on = RunSmp(GetParam(), /*steal_enabled=*/true);
  const RunResult off = RunSmp(GetParam(), /*steal_enabled=*/false);
  EXPECT_EQ(on.rng_state, off.rng_state);
  EXPECT_TRUE(on.trace_bytes == off.trace_bytes);
}

INSTANTIATE_TEST_SUITE_P(AllBackends, SmpIdentity,
                         testing::Values(RunQueueBackend::kList,
                                         RunQueueBackend::kTree,
                                         RunQueueBackend::kAlias),
                         [](const auto& param_info) {
                           switch (param_info.param) {
                             case RunQueueBackend::kList: return "list";
                             case RunQueueBackend::kTree: return "tree";
                             case RunQueueBackend::kAlias: return "alias";
                           }
                           return "unknown";
                         });

// Zero imbalance => zero draws: with equal funding and equal thread counts
// per CPU, every balance check bails before touching stream(balance), so
// enabling stealing changes nothing — not the trace, not the dispatch RNGs,
// not the balance RNG itself.
TEST(SmpZeroImbalance, StealingIsANoOp) {
  auto run = [](bool steal_enabled) {
    obs::Registry reg;
    etrace::TraceBuffer trace;
    smp::SmpScheduler::Options o;
    o.num_cpus = 4;
    o.seed = kSeed;
    o.cpu.backend = RunQueueBackend::kTree;
    o.steal_enabled = steal_enabled;
    o.metrics = &reg;
    o.trace = &trace;
    smp::SmpScheduler sched(o);
    const uint32_t balance_state_before = sched.balance_rng().state();
    Kernel kernel(&sched, KernelOpts(4, &reg, &trace));
    std::vector<ThreadId> tids;
    for (int i = 0; i < 8; ++i) {
      tids.push_back(kernel.Spawn("eq" + std::to_string(i),
                                  std::make_unique<ComputeTask>()));
    }
    for (const ThreadId tid : tids) {
      sched.FundThread(tid, 250);
    }
    kernel.RunFor(SimDuration::Seconds(30));
    EXPECT_EQ(sched.steals(), 0u);
    EXPECT_EQ(sched.migrations(), 0u);
    EXPECT_EQ(sched.balance_rng().state(), balance_state_before)
        << "a balanced system must never draw from stream(balance)";
    sched.CheckIntegrity();
    return trace.Serialize();
  };
  const std::string with_steal = run(true);
  const std::string without_steal = run(false);
  EXPECT_TRUE(with_steal == without_steal);
}

// The kernel refuses a partitioned scheduler whose CPU count mismatches its
// own (a dispatch would otherwise target a nonexistent queue).
TEST(SmpPartitioning, KernelValidatesCpuCount) {
  smp::SmpScheduler::Options o;
  o.num_cpus = 4;
  obs::Registry reg;
  o.metrics = &reg;
  smp::SmpScheduler sched(o);
  Kernel::Options ko;
  ko.num_cpus = 2;
  ko.metrics = &reg;
  EXPECT_THROW(Kernel(&sched, ko), std::invalid_argument);
  Kernel::Options ok;
  ok.num_cpus = 4;
  ok.metrics = &reg;
  EXPECT_NO_THROW(Kernel(&sched, ok));
}

}  // namespace
}  // namespace lottery
