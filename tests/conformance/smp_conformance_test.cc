// SMP statistical conformance sweep: the partitioned per-CPU lotteries plus
// ticket-weighted stealing must still deliver *global* proportional share.
//
// Each cell runs {1, 4, 16, 64} CPUs x {list, tree, alias} backends x 32
// seeds. Every CPU starts with two compute-bound threads (round-robin
// placement) funded from a cyclic weight ladder, so per-CPU ticket totals
// begin skewed and the balancer has real work to do. After a fixed horizon:
//
//  1. Per-seed Pearson chi-square (df = n-1) of per-thread dispatch counts
//     against the global ticket shares at alpha = 0.01; at most 3 of 32
//     seeds may reject (expected false rejections: 0.32).
//  2. The per-seed statistics summed against the critical value with
//     df = 32*(n-1) at alpha = 0.001 — catches a small systematic bias
//     (e.g. a persistently rich CPU) that no single seed rejects.
//  3. Per-CPU load spread: every CPU must stay at least 95% busy, and the
//     machine-wide idle fraction under 2% — partitioning may not break
//     work conservation.
//
// Everything is seeded, so a passing sweep passes forever.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/obs/registry.h"
#include "src/sched/smp/smp_scheduler.h"
#include "src/sim/kernel.h"
#include "src/util/stats.h"
#include "src/workloads/compute.h"

namespace lottery {
namespace {

constexpr int kNumSeeds = 32;
constexpr int kMaxPerSeedFailures = 3;
constexpr int kThreadsPerCpu = 8;

struct SeedOutcome {
  double chi2 = 0.0;
  bool load_ok = true;
  std::string load_detail;
};

SeedOutcome RunOne(int cpus, RunQueueBackend backend, uint32_t seed) {
  obs::Registry reg;
  smp::SmpScheduler::Options so;
  so.num_cpus = cpus;
  so.seed = seed;
  so.cpu.backend = backend;
  so.balance_period = 4;  // brisk rebalance cadence for a short sweep
  so.metrics = &reg;
  smp::SmpScheduler sched(so);

  Kernel::Options ko;
  ko.num_cpus = cpus;
  ko.quantum = SimDuration::Millis(1);
  ko.metrics = &reg;
  Kernel kernel(&sched, ko);

  const int n = cpus * kThreadsPerCpu;
  std::vector<ThreadId> tids;
  std::vector<int64_t> weights;
  int64_t total_weight = 0;
  for (int i = 0; i < n; ++i) {
    const ThreadId tid = kernel.Spawn("smpconf" + std::to_string(i),
                                      std::make_unique<ComputeTask>());
    // Cyclic ladder 50..400: adjacent spawns (which round-robin onto
    // adjacent CPUs) get different weights, so initial per-CPU totals are
    // skewed and only stealing can equalize them. The smallest rung keeps
    // migrant granularity fine relative to per-CPU totals, so the balancer
    // can converge to within the imbalance floor.
    const int64_t w = 50 + 50 * (i % 8);
    sched.FundThread(tid, w);
    tids.push_back(tid);
    weights.push_back(w);
    total_weight += w;
  }

  // Warm up past the rebalance transient (the ladder placement starts the
  // per-CPU totals far apart on purpose), then measure dispatch deltas
  // over the steady-state window — global proportional share is a property
  // of the balanced partition, not of the convergence path.
  const SimDuration warmup = SimDuration::Millis(500);
  const SimDuration window = SimDuration::Millis(500);
  kernel.RunFor(warmup);
  std::vector<uint64_t> at_warmup;
  for (int i = 0; i < n; ++i) {
    at_warmup.push_back(kernel.Dispatches(tids[static_cast<size_t>(i)]));
  }
  kernel.RunFor(window);
  sched.CheckIntegrity();

  SeedOutcome out;
  std::vector<int64_t> observed;
  std::vector<double> expected;
  uint64_t total_dispatches = 0;
  for (int i = 0; i < n; ++i) {
    total_dispatches += kernel.Dispatches(tids[static_cast<size_t>(i)]) -
                        at_warmup[static_cast<size_t>(i)];
  }
  for (int i = 0; i < n; ++i) {
    observed.push_back(
        static_cast<int64_t>(kernel.Dispatches(tids[static_cast<size_t>(i)]) -
                             at_warmup[static_cast<size_t>(i)]));
    expected.push_back(static_cast<double>(weights[static_cast<size_t>(i)]) /
                       static_cast<double>(total_weight) *
                       static_cast<double>(total_dispatches));
  }
  out.chi2 = ChiSquareStatistic(observed, expected);

  // Work conservation: no CPU may coast while others queue.
  const SimDuration horizon = warmup + window;
  const int64_t busy_floor = horizon.nanos() * 95 / 100;
  for (int c = 0; c < cpus; ++c) {
    if (kernel.CpuBusy(c).nanos() < busy_floor) {
      out.load_ok = false;
      out.load_detail = "cpu " + std::to_string(c) + " busy only " +
                        std::to_string(kernel.CpuBusy(c).nanos()) + " ns";
      break;
    }
  }
  const int64_t idle_cap = horizon.nanos() * cpus * 2 / 100;
  if (kernel.idle_time().nanos() > idle_cap) {
    out.load_ok = false;
    out.load_detail = "machine idle " +
                      std::to_string(kernel.idle_time().nanos()) + " ns";
  }
  return out;
}

void RunSweep(int cpus, RunQueueBackend backend, const std::string& label) {
  const int df = cpus * kThreadsPerCpu - 1;
  const double chi2_cutoff = ChiSquareCritical(df, 0.01);
  const double chi2_sum_cutoff = ChiSquareCritical(kNumSeeds * df, 0.001);

  int chi2_failures = 0;
  int load_failures = 0;
  double chi2_sum = 0.0;
  for (int s = 0; s < kNumSeeds; ++s) {
    const SeedOutcome out =
        RunOne(cpus, backend, 2000 + static_cast<uint32_t>(s));
    chi2_sum += out.chi2;
    if (out.chi2 > chi2_cutoff) {
      ++chi2_failures;
    }
    if (!out.load_ok) {
      ++load_failures;
      ADD_FAILURE() << label << " seed " << 2000 + s
                    << " load spread: " << out.load_detail;
    }
  }
  EXPECT_LE(chi2_failures, kMaxPerSeedFailures)
      << label << ": too many per-seed chi-square rejections of the global "
      << "ticket shares";
  EXPECT_LE(chi2_sum, chi2_sum_cutoff)
      << label << ": systematic global share bias across seeds";
  EXPECT_EQ(load_failures, 0) << label << ": work conservation violated";
}

class SmpConformance
    : public testing::TestWithParam<std::pair<int, RunQueueBackend>> {};

TEST_P(SmpConformance, GlobalSharesAndLoadSpread) {
  const auto [cpus, backend] = GetParam();
  std::string label = std::to_string(cpus) + "cpu/";
  switch (backend) {
    case RunQueueBackend::kList: label += "list"; break;
    case RunQueueBackend::kTree: label += "tree"; break;
    case RunQueueBackend::kAlias: label += "alias"; break;
  }
  RunSweep(cpus, backend, label);
}

std::vector<std::pair<int, RunQueueBackend>> AllCells() {
  std::vector<std::pair<int, RunQueueBackend>> cells;
  for (const int cpus : {1, 4, 16, 64}) {
    for (const RunQueueBackend backend :
         {RunQueueBackend::kList, RunQueueBackend::kTree,
          RunQueueBackend::kAlias}) {
      cells.emplace_back(cpus, backend);
    }
  }
  return cells;
}

INSTANTIATE_TEST_SUITE_P(
    Cells, SmpConformance, testing::ValuesIn(AllCells()),
    [](const auto& param_info) {
      std::string name = "c" + std::to_string(param_info.param.first);
      switch (param_info.param.second) {
        case RunQueueBackend::kList: return name + "_list";
        case RunQueueBackend::kTree: return name + "_tree";
        case RunQueueBackend::kAlias: return name + "_alias";
      }
      return name + "_unknown";
    });

}  // namespace
}  // namespace lottery
