// Statistical conformance sweep: ticket share must equal win share, for
// every run-queue backend, fault-free and under each fault class.
//
// Each cell of the sweep runs 32 seeds of the chaos scenario harness with a
// protected measured pair funded 700:300 on top of a sacrificial workload
// that absorbs the injected faults. Because the pair is measured
// *conditionally* — P(A wins | A or B wins) = 0.7 — the check is invariant
// to how much CPU the churning workload takes or how many of its threads
// the fault plan kills.
//
// Three statistics per cell:
//  1. Per-seed Pearson chi-square (df=1) of [wins_a, wins_b] against
//     [0.7, 0.3] * total at alpha = 0.01; at most 3 of 32 seeds may fail
//     (the expected number of false rejections is 0.32).
//  2. The 32 per-seed statistics summed, compared against the chi-square
//     critical value with df=32 at alpha = 0.001 — catches a small
//     systematic bias that no single seed rejects.
//  3. Per-seed Kolmogorov-Smirnov of A's win *positions* within the
//     measured-pair win sequence against uniform, alpha = 0.01, at most
//     3 of 32 failing — wins must be well mixed across the run, not
//     front- or back-loaded (a rate-invariant mixing check).
//
// Everything is seeded, so a passing sweep passes forever.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/chaos.h"
#include "src/util/stats.h"

namespace lottery {
namespace {

constexpr double kShareA = 0.7;  // 700 : 300
constexpr int kNumSeeds = 32;
constexpr int kMaxPerSeedFailures = 3;

// One plan per fault class, plus the fault-free baseline. Rates are high
// enough that every class actually fires during a 250 ms run (asserted in
// fault_test.cc's per-class smoke test).
const char* const kPlans[] = {
    "",
    "crash:p=0.01",
    "spurious-wake:p=0.5",
    "delayed-unblock:p=0.2",
    "rpc-drop:every=4",
    "rpc-dup:every=4",
    "rpc-reorder:p=0.5",
    "disk-timeout:p=0.4,retries=2",
    "revoke:p=0.7",
};

void RunSweep(const std::string& backend) {
  const double chi2_cutoff = ChiSquareCritical(1, 0.01);
  const double chi2_sum_cutoff = ChiSquareCritical(kNumSeeds, 0.001);

  for (const char* plan : kPlans) {
    int chi2_failures = 0;
    int ks_failures = 0;
    double chi2_sum = 0.0;
    uint64_t pooled_a = 0;
    uint64_t pooled_total = 0;

    for (int s = 0; s < kNumSeeds; ++s) {
      chaos::Scenario scenario;
      scenario.seed = 1000 + static_cast<uint64_t>(s);
      scenario.backend = backend;
      scenario.plan = plan;
      scenario.num_threads = 6;
      scenario.horizon = SimDuration::Millis(250);
      scenario.quantum = SimDuration::Millis(1);
      scenario.measured_a = 700;
      scenario.measured_b = 300;

      const chaos::ScenarioResult result = chaos::RunScenario(scenario);
      for (const std::string& violation : result.violations) {
        ADD_FAILURE() << backend << " plan='" << plan << "' seed "
                      << scenario.seed << ": " << violation;
      }

      const uint64_t total = result.wins_a + result.wins_b;
      ASSERT_GE(total, 20u) << backend << " plan='" << plan
                            << "': measured pair barely ran";
      pooled_a += result.wins_a;
      pooled_total += total;

      const double chi2 = ChiSquareStatistic(
          {static_cast<int64_t>(result.wins_a),
           static_cast<int64_t>(result.wins_b)},
          {kShareA * static_cast<double>(total),
           (1.0 - kShareA) * static_cast<double>(total)});
      chi2_sum += chi2;
      if (chi2 > chi2_cutoff) {
        ++chi2_failures;
      }

      // Positions of A's wins within the measured win sequence, mapped to
      // (0, 1): bucket i of m maps to its midpoint (i + 0.5) / m.
      std::vector<double> positions;
      const double m = static_cast<double>(result.measured_sequence.size());
      for (size_t i = 0; i < result.measured_sequence.size(); ++i) {
        if (result.measured_sequence[i] != 0) {
          positions.push_back((static_cast<double>(i) + 0.5) / m);
        }
      }
      ASSERT_FALSE(positions.empty());
      const double ks = KsStatisticUniform(positions, 0.0, 1.0);
      if (ks > KsCritical(positions.size(), 0.01)) {
        ++ks_failures;
      }
    }

    EXPECT_LE(chi2_failures, kMaxPerSeedFailures)
        << backend << " plan='" << plan
        << "': too many per-seed chi-square rejections";
    EXPECT_LE(chi2_sum, chi2_sum_cutoff)
        << backend << " plan='" << plan << "': systematic share bias, pooled "
        << pooled_a << "/" << pooled_total << " vs expected " << kShareA;
    EXPECT_LE(ks_failures, kMaxPerSeedFailures)
        << backend << " plan='" << plan
        << "': too many per-seed KS rejections (wins poorly mixed)";

    // Sanity on the pooled proportion too: its 99.9% Wilson interval must
    // bracket the funded share.
    const ProportionInterval interval = BinomialConfidence(
        static_cast<int64_t>(pooled_a), static_cast<int64_t>(pooled_total),
        0.999);
    EXPECT_LE(interval.lo, kShareA)
        << backend << " plan='" << plan << "' pooled " << pooled_a << "/"
        << pooled_total;
    EXPECT_GE(interval.hi, kShareA)
        << backend << " plan='" << plan << "' pooled " << pooled_a << "/"
        << pooled_total;
  }
}

TEST(Conformance, ListBackend) { RunSweep("list"); }
TEST(Conformance, TreeBackend) { RunSweep("tree"); }
TEST(Conformance, AliasBackend) { RunSweep("alias"); }
TEST(Conformance, StrideBackend) { RunSweep("stride"); }

}  // namespace
}  // namespace lottery
