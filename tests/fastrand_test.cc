// Tests for the Park-Miller generator (Appendix A of the paper).

#include "src/util/fastrand.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "src/util/stats.h"

namespace lottery {
namespace {

TEST(FastRand, FirstValueFromSeedOne) {
  // S' = 16807 * 1 mod (2^31 - 1).
  FastRand rng(1);
  EXPECT_EQ(rng.Next(), 16807u);
}

TEST(FastRand, SecondValueFromSeedOne) {
  FastRand rng(1);
  rng.Next();
  EXPECT_EQ(rng.Next(), 282475249u);  // 16807^2 mod (2^31 - 1)
}

TEST(FastRand, TenThousandthValueMatchesParkMillerCanonicalCheck) {
  // Park & Miller's published self-check: starting from seed 1, the
  // 10,000th value of the minimal standard generator is 1043618065.
  FastRand rng(1);
  uint32_t value = 0;
  for (int i = 0; i < 10000; ++i) {
    value = rng.Next();
  }
  EXPECT_EQ(value, 1043618065u);
}

TEST(FastRand, MatchesDirectModularRecurrence) {
  // The Carta-trick implementation must equal the plain 64-bit mod form.
  FastRand rng(42);
  uint64_t s = 42;
  for (int i = 0; i < 100000; ++i) {
    s = (s * 16807u) % 0x7FFFFFFFull;
    ASSERT_EQ(rng.Next(), s) << "diverged at step " << i;
  }
}

TEST(FastRand, OutputAlwaysInValidRange) {
  FastRand rng(987654321);
  for (int i = 0; i < 100000; ++i) {
    const uint32_t v = rng.Next();
    ASSERT_GE(v, 1u);
    ASSERT_LE(v, FastRand::kModulus - 1);
  }
}

TEST(FastRand, ZeroSeedIsCoercedToValidState) {
  FastRand rng(0);
  EXPECT_EQ(rng.Next(), 16807u);  // behaves as seed 1
}

TEST(FastRand, ModulusSeedIsCoercedToValidState) {
  FastRand rng(FastRand::kModulus);
  EXPECT_EQ(rng.Next(), 16807u);  // kModulus folds to 0 folds to 1
}

TEST(FastRand, SeedAboveModulusIsFolded) {
  FastRand a(FastRand::kModulus + 5u);
  FastRand b(5u);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(a.Next(), b.Next());
  }
}

TEST(FastRand, SameSeedSameSequence) {
  FastRand a(777);
  FastRand b(777);
  for (int i = 0; i < 1000; ++i) {
    ASSERT_EQ(a.Next(), b.Next());
  }
}

TEST(FastRand, DifferentSeedsDiverge) {
  FastRand a(777);
  FastRand b(778);
  int differing = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() != b.Next()) {
      ++differing;
    }
  }
  EXPECT_GT(differing, 90);
}

TEST(FastRand, NextBelowStaysInBound) {
  FastRand rng(3);
  for (uint32_t bound : {1u, 2u, 3u, 7u, 100u, 1000000u}) {
    for (int i = 0; i < 1000; ++i) {
      ASSERT_LT(rng.NextBelow(bound), bound);
    }
  }
}

TEST(FastRand, NextBelowOneAlwaysZero) {
  FastRand rng(5);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(rng.NextBelow(1), 0u);
  }
}

TEST(FastRand, NextBelowIsUniformChiSquare) {
  FastRand rng(20260706);
  constexpr uint32_t kBuckets = 10;
  constexpr int kDraws = 100000;
  std::vector<int64_t> observed(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++observed[rng.NextBelow(kBuckets)];
  }
  const std::vector<double> expected(kBuckets,
                                     static_cast<double>(kDraws) / kBuckets);
  const double chi2 = ChiSquareStatistic(observed, expected);
  EXPECT_LT(chi2, ChiSquareCritical(kBuckets - 1, 0.001));
}

TEST(FastRand, Next62CoversWideRange) {
  FastRand rng(11);
  uint64_t max_seen = 0;
  for (int i = 0; i < 100000; ++i) {
    max_seen = std::max(max_seen, rng.Next62());
  }
  // With 100k draws over ~4.6e18 the max should land in the top few percent.
  EXPECT_GT(max_seen, uint64_t{4} * 1000 * 1000 * 1000 * 1000 * 1000 * 1000);
}

TEST(FastRand, NextBelow64StaysInBound) {
  FastRand rng(13);
  const uint64_t bound = uint64_t{3} * 1000 * 1000 * 1000 * 1000;
  for (int i = 0; i < 10000; ++i) {
    ASSERT_LT(rng.NextBelow64(bound), bound);
  }
}

TEST(FastRand, NextBelow64UniformOverSmallBound) {
  FastRand rng(17);
  constexpr uint64_t kBuckets = 7;
  constexpr int kDraws = 70000;
  std::vector<int64_t> observed(kBuckets, 0);
  for (int i = 0; i < kDraws; ++i) {
    ++observed[rng.NextBelow64(kBuckets)];
  }
  const std::vector<double> expected(kBuckets,
                                     static_cast<double>(kDraws) / kBuckets);
  EXPECT_LT(ChiSquareStatistic(observed, expected),
            ChiSquareCritical(static_cast<int>(kBuckets) - 1, 0.001));
}

TEST(FastRand, NextUnitInHalfOpenUnitInterval) {
  FastRand rng(19);
  for (int i = 0; i < 100000; ++i) {
    const double u = rng.NextUnit();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
  }
}

TEST(FastRand, NextUnitMeanNearHalf) {
  FastRand rng(23);
  RunningStat stat;
  for (int i = 0; i < 200000; ++i) {
    stat.Add(rng.NextUnit());
  }
  EXPECT_NEAR(stat.mean(), 0.5, 0.005);
}

TEST(FastRand, SplitProducesDecorrelatedStream) {
  FastRand parent(29);
  FastRand child = parent.Split();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (parent.Next() == child.Next()) {
      ++equal;
    }
  }
  EXPECT_LT(equal, 5);
}

TEST(FastRand, StateRoundTripsThroughSeed) {
  FastRand rng(31);
  rng.Next();
  rng.Next();
  const uint32_t snapshot = rng.state();
  FastRand resumed(snapshot);
  FastRand original = rng;
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(resumed.Next(), original.Next());
  }
}

TEST(FastRand, NoShortCycleInFirstMillionDraws) {
  FastRand rng(37);
  const uint32_t first = rng.Next();
  for (int i = 0; i < 1000000; ++i) {
    ASSERT_NE(rng.Next(), first) << "cycle after " << i + 1 << " draws";
    if (i % 100000 == 0 && ::testing::Test::HasFatalFailure()) {
      break;
    }
  }
  SUCCEED();
}

TEST(SplitMix64, KnownFirstOutputs) {
  // Reference values for seed 0 from the public-domain splitmix64.
  SplitMix64 rng(0);
  EXPECT_EQ(rng.Next(), 0xE220A8397B1DCDAFull);
  EXPECT_EQ(rng.Next(), 0x6E789E6AA1B965F4ull);
  EXPECT_EQ(rng.Next(), 0x06C45D188009454Full);
}

TEST(SplitMix64, FastRandSeedsAreValid) {
  SplitMix64 rng(123456);
  for (int i = 0; i < 10000; ++i) {
    const uint32_t seed = rng.NextFastRandSeed();
    ASSERT_GE(seed, 1u);
    ASSERT_LT(seed, FastRand::kModulus);
  }
}

// Property sweep: NextBelow is unbiased for bounds that do not divide the
// raw range (the rejection path must fire).
class FastRandBoundSweep : public ::testing::TestWithParam<uint32_t> {};

TEST_P(FastRandBoundSweep, NextBelowUnbiased) {
  const uint32_t bound = GetParam();
  FastRand rng(1000 + bound);
  const int draws = static_cast<int>(bound) * 2000;
  std::vector<int64_t> observed(bound, 0);
  for (int i = 0; i < draws; ++i) {
    ++observed[rng.NextBelow(bound)];
  }
  const std::vector<double> expected(bound,
                                     static_cast<double>(draws) / bound);
  EXPECT_LT(ChiSquareStatistic(observed, expected),
            ChiSquareCritical(static_cast<int>(bound) - 1, 0.001));
}

INSTANTIATE_TEST_SUITE_P(Bounds, FastRandBoundSweep,
                         ::testing::Values(2u, 3u, 5u, 6u, 9u, 11u, 17u, 33u));

}  // namespace
}  // namespace lottery
