// Tests for compensation tickets (Section 4.5) and ticket transfers
// (Sections 3.1, 4.6).

#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "src/core/client.h"
#include "src/core/compensation.h"
#include "src/core/currency.h"
#include "src/core/lottery_scheduler.h"
#include "src/core/transfer.h"
#include "src/sim/chaos.h"
#include "src/sim/fault.h"
#include "src/sim/kernel.h"

namespace lottery {
namespace {

class CompensationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    client_ = std::make_unique<Client>(&table_, "c");
    client_->HoldTicket(table_.CreateTicket(table_.base(), 400));
    client_->SetActive(true);
  }
  CurrencyTable table_;
  std::unique_ptr<Client> client_;
};

TEST_F(CompensationTest, PaperExampleOneFifthQuantum) {
  // Thread B uses 20 ms of a 100 ms quantum: value inflates 5x (400->2000).
  CompensationPolicy policy;
  policy.OnQuantumEnd(client_.get(), SimDuration::Millis(20),
                      SimDuration::Millis(100));
  EXPECT_EQ(client_->Value().base_units(), 2000);
}

TEST_F(CompensationTest, FullQuantumClearsCompensation) {
  CompensationPolicy policy;
  policy.OnQuantumEnd(client_.get(), SimDuration::Millis(20),
                      SimDuration::Millis(100));
  policy.OnQuantumEnd(client_.get(), SimDuration::Millis(100),
                      SimDuration::Millis(100));
  EXPECT_EQ(client_->Value().base_units(), 400);
}

TEST_F(CompensationTest, QuantumStartClearsCompensation) {
  // "...until the thread starts its next quantum."
  CompensationPolicy policy;
  policy.OnQuantumEnd(client_.get(), SimDuration::Millis(50),
                      SimDuration::Millis(100));
  EXPECT_EQ(client_->Value().base_units(), 800);
  policy.OnQuantumStart(client_.get());
  EXPECT_EQ(client_->Value().base_units(), 400);
}

TEST_F(CompensationTest, ZeroUsageIsCapped) {
  CompensationPolicy policy(CompensationPolicy::Options{true, 1000});
  policy.OnQuantumEnd(client_.get(), SimDuration::Nanos(0),
                      SimDuration::Millis(100));
  EXPECT_EQ(client_->Value().base_units(), 400 * 1000);
}

TEST_F(CompensationTest, FactorCapApplies) {
  CompensationPolicy policy(CompensationPolicy::Options{true, 10});
  policy.OnQuantumEnd(client_.get(), SimDuration::Nanos(1),
                      SimDuration::Millis(100));
  EXPECT_EQ(client_->Value().base_units(), 4000);  // capped at 10x
}

TEST_F(CompensationTest, DisabledPolicyIsANoOp) {
  CompensationPolicy policy(CompensationPolicy::Options{false, 1000});
  policy.OnQuantumEnd(client_.get(), SimDuration::Millis(20),
                      SimDuration::Millis(100));
  EXPECT_EQ(client_->Value().base_units(), 400);
}

TEST_F(CompensationTest, OverfullUsageClears) {
  CompensationPolicy policy;
  client_->SetCompensation(3, 1);
  policy.OnQuantumEnd(client_.get(), SimDuration::Millis(110),
                      SimDuration::Millis(100));
  EXPECT_FALSE(client_->has_compensation());
}

TEST_F(CompensationTest, CapHoldsUnderInjectedFaults) {
  // Low-consumption sleepers under heavy spurious wakeups and delayed
  // unblocks: every slice uses a sliver of its quantum, so uncapped
  // compensation would inflate 100x. The factor must stay within the
  // configured cap at every point of the run, not just at the end.
  class Sliver : public ThreadBody {
   public:
    void Run(RunContext& ctx) override {
      ctx.Consume(SimDuration::Micros(100));
      ctx.SleepFor(SimDuration::Millis(2));
    }
  };

  constexpr int64_t kCap = 50;
  LotteryScheduler::Options sopts;
  sopts.seed = 31;
  sopts.compensation = CompensationPolicy::Options{true, kCap};
  LotteryScheduler sched(sopts);
  FaultInjector faults(
      FaultPlan::Parse("spurious-wake:p=1.0;delayed-unblock:p=0.6"), 31);
  Kernel::Options kopts;
  kopts.quantum = SimDuration::Millis(10);
  kopts.faults = &faults;
  Kernel kernel(&sched, kopts);
  chaos::ChaosController::Options copts;
  copts.period = SimDuration::Millis(1);
  chaos::ChaosController controller(&kernel, &faults, copts);

  std::vector<ThreadId> tids;
  for (int i = 0; i < 4; ++i) {
    const ThreadId tid =
        kernel.Spawn("sliver" + std::to_string(i), std::make_unique<Sliver>());
    sched.FundThread(tid, sched.table().base(), 100 * (i + 1));
    tids.push_back(tid);
  }
  controller.Start();

  // Sample the compensation state of every live thread throughout the run.
  int64_t max_num_per_den = 0;
  bool saw_compensation = false;
  std::function<void(SimTime)> sample = [&](SimTime at) {
    for (const ThreadId tid : tids) {
      if (!kernel.Alive(tid)) {
        continue;
      }
      const Client* client = sched.client(tid);
      ASSERT_NE(client, nullptr);
      ASSERT_GT(client->compensation_den(), 0);
      ASSERT_GE(client->compensation_num(), client->compensation_den());
      ASSERT_LE(client->compensation_num(),
                client->compensation_den() * kCap)
          << "thread " << tid << " over the cap at " << at.nanos() << "ns";
      max_num_per_den =
          std::max(max_num_per_den, client->compensation_num() /
                                        client->compensation_den());
      saw_compensation |= client->has_compensation();
    }
    if (at < SimTime::Zero() + SimDuration::Millis(495)) {
      kernel.events().Schedule(at + SimDuration::Millis(1), sample);
    }
  };
  kernel.events().Schedule(SimTime::Zero() + SimDuration::Millis(1), sample);
  kernel.RunFor(SimDuration::Millis(500));

  EXPECT_TRUE(saw_compensation);
  // The workload's 100us-of-10ms slices should drive factors all the way to
  // the cap — proving the bound was the binding constraint, not the load.
  EXPECT_EQ(max_num_per_den, kCap);
  EXPECT_GT(controller.spurious_wakes(), 0u);
  EXPECT_GT(faults.injections(FaultClass::kDelayedUnblock), 0u);
}

// --- Transfers ---------------------------------------------------------------

class TransferTest : public ::testing::Test {
 protected:
  // client (holds 100% of client_cur, funded 800 base)
  // server (holds 100% of server_cur, funded 200 base)
  void SetUp() override {
    client_cur_ = table_.CreateCurrency("client");
    server_cur_ = table_.CreateCurrency("server");
    table_.Fund(client_cur_, table_.CreateTicket(table_.base(), 800));
    table_.Fund(server_cur_, table_.CreateTicket(table_.base(), 200));
    client_ = std::make_unique<Client>(&table_, "client");
    server_ = std::make_unique<Client>(&table_, "server");
    client_->HoldTicket(table_.CreateTicket(client_cur_, 1000));
    server_->HoldTicket(table_.CreateTicket(server_cur_, 1000));
    client_->SetActive(true);
    server_->SetActive(true);
  }

  CurrencyTable table_;
  Currency* client_cur_ = nullptr;
  Currency* server_cur_ = nullptr;
  std::unique_ptr<Client> client_;
  std::unique_ptr<Client> server_;
};

TEST_F(TransferTest, BaselineValues) {
  EXPECT_EQ(client_->Value().base_units(), 800);
  EXPECT_EQ(server_->Value().base_units(), 200);
}

TEST_F(TransferTest, BlockedClientFundsServerFully) {
  // The RPC pattern: client blocks, its funding flows to the server.
  TicketTransfer transfer(&table_, client_cur_, server_cur_, 1000);
  client_->SetActive(false);  // client blocks awaiting the reply
  // Transfer ticket is now 1000/1000 of client_cur's active amount, so the
  // server currency gains the client's full 800 base.
  EXPECT_EQ(server_->Value().base_units(), 1000);
  EXPECT_EQ(client_->Value().base_units(), 0);
}

TEST_F(TransferTest, ActiveClientSplitsWithTransfer) {
  // If the client keeps running (asynchronous case), the transfer only
  // carries half the funding (1000 of 2000 active in client_cur).
  TicketTransfer transfer(&table_, client_cur_, server_cur_, 1000);
  EXPECT_EQ(server_->Value().base_units(), 600);  // 200 + 400
  EXPECT_EQ(client_->Value().base_units(), 400);
}

TEST_F(TransferTest, DestroyingTransferRestoresFunding) {
  {
    TicketTransfer transfer(&table_, client_cur_, server_cur_, 1000);
    client_->SetActive(false);
    EXPECT_EQ(server_->Value().base_units(), 1000);
  }
  client_->SetActive(true);
  EXPECT_EQ(server_->Value().base_units(), 200);
  EXPECT_EQ(client_->Value().base_units(), 800);
}

TEST_F(TransferTest, ParkedTransferCarriesNothingUntilFunded) {
  TicketTransfer transfer(&table_, client_cur_, nullptr, 1000);
  EXPECT_FALSE(transfer.funded());
  client_->SetActive(false);
  EXPECT_EQ(server_->Value().base_units(), 200);
  transfer.FundTarget(server_cur_);
  EXPECT_TRUE(transfer.funded());
  EXPECT_EQ(transfer.target(), server_cur_);
  EXPECT_EQ(server_->Value().base_units(), 1000);
}

TEST_F(TransferTest, RetargetMovesFunding) {
  Currency* other_cur = table_.CreateCurrency("other");
  Client other(&table_, "other");
  other.HoldTicket(table_.CreateTicket(other_cur, 1000));
  other.SetActive(true);

  TicketTransfer transfer(&table_, client_cur_, server_cur_, 1000);
  client_->SetActive(false);
  EXPECT_EQ(server_->Value().base_units(), 1000);
  transfer.Retarget(other_cur);
  EXPECT_EQ(server_->Value().base_units(), 200);
  EXPECT_EQ(other.Value().base_units(), 800);
}

TEST_F(TransferTest, MoveSemanticsTransferOwnership) {
  TicketTransfer a(&table_, client_cur_, server_cur_, 1000);
  Ticket* raw = a.ticket();
  TicketTransfer b = std::move(a);
  EXPECT_EQ(b.ticket(), raw);
  EXPECT_EQ(a.ticket(), nullptr);
  b.Release();
  EXPECT_EQ(b.ticket(), nullptr);
}

TEST_F(TransferTest, SplitTransfersAcrossTwoServers) {
  // Section 3.1: "clients also have the ability to divide ticket transfers
  // across multiple servers on which they may be waiting."
  Currency* server2 = table_.CreateCurrency("server2");
  Client worker2(&table_, "w2");
  worker2.HoldTicket(table_.CreateTicket(server2, 1000));
  worker2.SetActive(true);

  TicketTransfer half1(&table_, client_cur_, server_cur_, 500);
  TicketTransfer half2(&table_, client_cur_, server2, 500);
  client_->SetActive(false);
  EXPECT_EQ(server_->Value().base_units(), 200 + 400);
  EXPECT_EQ(worker2.Value().base_units(), 400);
}

}  // namespace
}  // namespace lottery
