file(REMOVE_RECURSE
  "CMakeFiles/ls_util.dir/flags.cc.o"
  "CMakeFiles/ls_util.dir/flags.cc.o.d"
  "CMakeFiles/ls_util.dir/sim_time.cc.o"
  "CMakeFiles/ls_util.dir/sim_time.cc.o.d"
  "CMakeFiles/ls_util.dir/stats.cc.o"
  "CMakeFiles/ls_util.dir/stats.cc.o.d"
  "CMakeFiles/ls_util.dir/table.cc.o"
  "CMakeFiles/ls_util.dir/table.cc.o.d"
  "libls_util.a"
  "libls_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ls_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
