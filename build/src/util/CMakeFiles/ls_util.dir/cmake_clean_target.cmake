file(REMOVE_RECURSE
  "libls_util.a"
)
