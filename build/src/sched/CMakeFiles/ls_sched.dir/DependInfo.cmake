
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/decay_usage.cc" "src/sched/CMakeFiles/ls_sched.dir/decay_usage.cc.o" "gcc" "src/sched/CMakeFiles/ls_sched.dir/decay_usage.cc.o.d"
  "/root/repo/src/sched/hybrid.cc" "src/sched/CMakeFiles/ls_sched.dir/hybrid.cc.o" "gcc" "src/sched/CMakeFiles/ls_sched.dir/hybrid.cc.o.d"
  "/root/repo/src/sched/priority.cc" "src/sched/CMakeFiles/ls_sched.dir/priority.cc.o" "gcc" "src/sched/CMakeFiles/ls_sched.dir/priority.cc.o.d"
  "/root/repo/src/sched/round_robin.cc" "src/sched/CMakeFiles/ls_sched.dir/round_robin.cc.o" "gcc" "src/sched/CMakeFiles/ls_sched.dir/round_robin.cc.o.d"
  "/root/repo/src/sched/stride.cc" "src/sched/CMakeFiles/ls_sched.dir/stride.cc.o" "gcc" "src/sched/CMakeFiles/ls_sched.dir/stride.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ls_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ls_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
