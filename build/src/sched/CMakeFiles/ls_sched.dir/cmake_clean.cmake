file(REMOVE_RECURSE
  "CMakeFiles/ls_sched.dir/decay_usage.cc.o"
  "CMakeFiles/ls_sched.dir/decay_usage.cc.o.d"
  "CMakeFiles/ls_sched.dir/hybrid.cc.o"
  "CMakeFiles/ls_sched.dir/hybrid.cc.o.d"
  "CMakeFiles/ls_sched.dir/priority.cc.o"
  "CMakeFiles/ls_sched.dir/priority.cc.o.d"
  "CMakeFiles/ls_sched.dir/round_robin.cc.o"
  "CMakeFiles/ls_sched.dir/round_robin.cc.o.d"
  "CMakeFiles/ls_sched.dir/stride.cc.o"
  "CMakeFiles/ls_sched.dir/stride.cc.o.d"
  "libls_sched.a"
  "libls_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ls_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
