# Empty dependencies file for ls_ctl.
# This may be replaced when dependencies are built.
