file(REMOVE_RECURSE
  "CMakeFiles/ls_ctl.dir/interpreter.cc.o"
  "CMakeFiles/ls_ctl.dir/interpreter.cc.o.d"
  "libls_ctl.a"
  "libls_ctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ls_ctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
