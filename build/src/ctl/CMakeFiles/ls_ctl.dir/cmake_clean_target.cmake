file(REMOVE_RECURSE
  "libls_ctl.a"
)
