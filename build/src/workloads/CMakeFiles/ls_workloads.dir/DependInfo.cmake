
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/compute.cc" "src/workloads/CMakeFiles/ls_workloads.dir/compute.cc.o" "gcc" "src/workloads/CMakeFiles/ls_workloads.dir/compute.cc.o.d"
  "/root/repo/src/workloads/deadline.cc" "src/workloads/CMakeFiles/ls_workloads.dir/deadline.cc.o" "gcc" "src/workloads/CMakeFiles/ls_workloads.dir/deadline.cc.o.d"
  "/root/repo/src/workloads/montecarlo.cc" "src/workloads/CMakeFiles/ls_workloads.dir/montecarlo.cc.o" "gcc" "src/workloads/CMakeFiles/ls_workloads.dir/montecarlo.cc.o.d"
  "/root/repo/src/workloads/mutex_workload.cc" "src/workloads/CMakeFiles/ls_workloads.dir/mutex_workload.cc.o" "gcc" "src/workloads/CMakeFiles/ls_workloads.dir/mutex_workload.cc.o.d"
  "/root/repo/src/workloads/query_server.cc" "src/workloads/CMakeFiles/ls_workloads.dir/query_server.cc.o" "gcc" "src/workloads/CMakeFiles/ls_workloads.dir/query_server.cc.o.d"
  "/root/repo/src/workloads/replay.cc" "src/workloads/CMakeFiles/ls_workloads.dir/replay.cc.o" "gcc" "src/workloads/CMakeFiles/ls_workloads.dir/replay.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/ls_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ls_core.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ls_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/ls_sched.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
