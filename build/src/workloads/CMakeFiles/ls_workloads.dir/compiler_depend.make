# Empty compiler generated dependencies file for ls_workloads.
# This may be replaced when dependencies are built.
