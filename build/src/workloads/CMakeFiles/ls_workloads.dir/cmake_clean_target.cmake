file(REMOVE_RECURSE
  "libls_workloads.a"
)
