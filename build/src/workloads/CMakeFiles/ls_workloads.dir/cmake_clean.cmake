file(REMOVE_RECURSE
  "CMakeFiles/ls_workloads.dir/compute.cc.o"
  "CMakeFiles/ls_workloads.dir/compute.cc.o.d"
  "CMakeFiles/ls_workloads.dir/deadline.cc.o"
  "CMakeFiles/ls_workloads.dir/deadline.cc.o.d"
  "CMakeFiles/ls_workloads.dir/montecarlo.cc.o"
  "CMakeFiles/ls_workloads.dir/montecarlo.cc.o.d"
  "CMakeFiles/ls_workloads.dir/mutex_workload.cc.o"
  "CMakeFiles/ls_workloads.dir/mutex_workload.cc.o.d"
  "CMakeFiles/ls_workloads.dir/query_server.cc.o"
  "CMakeFiles/ls_workloads.dir/query_server.cc.o.d"
  "CMakeFiles/ls_workloads.dir/replay.cc.o"
  "CMakeFiles/ls_workloads.dir/replay.cc.o.d"
  "libls_workloads.a"
  "libls_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ls_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
