# Empty compiler generated dependencies file for ls_sim.
# This may be replaced when dependencies are built.
