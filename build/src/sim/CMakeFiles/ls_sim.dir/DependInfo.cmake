
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/crossbar.cc" "src/sim/CMakeFiles/ls_sim.dir/crossbar.cc.o" "gcc" "src/sim/CMakeFiles/ls_sim.dir/crossbar.cc.o.d"
  "/root/repo/src/sim/disk.cc" "src/sim/CMakeFiles/ls_sim.dir/disk.cc.o" "gcc" "src/sim/CMakeFiles/ls_sim.dir/disk.cc.o.d"
  "/root/repo/src/sim/event_queue.cc" "src/sim/CMakeFiles/ls_sim.dir/event_queue.cc.o" "gcc" "src/sim/CMakeFiles/ls_sim.dir/event_queue.cc.o.d"
  "/root/repo/src/sim/kernel.cc" "src/sim/CMakeFiles/ls_sim.dir/kernel.cc.o" "gcc" "src/sim/CMakeFiles/ls_sim.dir/kernel.cc.o.d"
  "/root/repo/src/sim/link.cc" "src/sim/CMakeFiles/ls_sim.dir/link.cc.o" "gcc" "src/sim/CMakeFiles/ls_sim.dir/link.cc.o.d"
  "/root/repo/src/sim/page_cache.cc" "src/sim/CMakeFiles/ls_sim.dir/page_cache.cc.o" "gcc" "src/sim/CMakeFiles/ls_sim.dir/page_cache.cc.o.d"
  "/root/repo/src/sim/rpc.cc" "src/sim/CMakeFiles/ls_sim.dir/rpc.cc.o" "gcc" "src/sim/CMakeFiles/ls_sim.dir/rpc.cc.o.d"
  "/root/repo/src/sim/rwlock.cc" "src/sim/CMakeFiles/ls_sim.dir/rwlock.cc.o" "gcc" "src/sim/CMakeFiles/ls_sim.dir/rwlock.cc.o.d"
  "/root/repo/src/sim/semaphore.cc" "src/sim/CMakeFiles/ls_sim.dir/semaphore.cc.o" "gcc" "src/sim/CMakeFiles/ls_sim.dir/semaphore.cc.o.d"
  "/root/repo/src/sim/sync.cc" "src/sim/CMakeFiles/ls_sim.dir/sync.cc.o" "gcc" "src/sim/CMakeFiles/ls_sim.dir/sync.cc.o.d"
  "/root/repo/src/sim/trace.cc" "src/sim/CMakeFiles/ls_sim.dir/trace.cc.o" "gcc" "src/sim/CMakeFiles/ls_sim.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ls_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/ls_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ls_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
