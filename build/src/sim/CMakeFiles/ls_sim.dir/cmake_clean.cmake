file(REMOVE_RECURSE
  "CMakeFiles/ls_sim.dir/crossbar.cc.o"
  "CMakeFiles/ls_sim.dir/crossbar.cc.o.d"
  "CMakeFiles/ls_sim.dir/disk.cc.o"
  "CMakeFiles/ls_sim.dir/disk.cc.o.d"
  "CMakeFiles/ls_sim.dir/event_queue.cc.o"
  "CMakeFiles/ls_sim.dir/event_queue.cc.o.d"
  "CMakeFiles/ls_sim.dir/kernel.cc.o"
  "CMakeFiles/ls_sim.dir/kernel.cc.o.d"
  "CMakeFiles/ls_sim.dir/link.cc.o"
  "CMakeFiles/ls_sim.dir/link.cc.o.d"
  "CMakeFiles/ls_sim.dir/page_cache.cc.o"
  "CMakeFiles/ls_sim.dir/page_cache.cc.o.d"
  "CMakeFiles/ls_sim.dir/rpc.cc.o"
  "CMakeFiles/ls_sim.dir/rpc.cc.o.d"
  "CMakeFiles/ls_sim.dir/rwlock.cc.o"
  "CMakeFiles/ls_sim.dir/rwlock.cc.o.d"
  "CMakeFiles/ls_sim.dir/semaphore.cc.o"
  "CMakeFiles/ls_sim.dir/semaphore.cc.o.d"
  "CMakeFiles/ls_sim.dir/sync.cc.o"
  "CMakeFiles/ls_sim.dir/sync.cc.o.d"
  "CMakeFiles/ls_sim.dir/trace.cc.o"
  "CMakeFiles/ls_sim.dir/trace.cc.o.d"
  "libls_sim.a"
  "libls_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ls_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
