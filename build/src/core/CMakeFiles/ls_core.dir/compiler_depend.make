# Empty compiler generated dependencies file for ls_core.
# This may be replaced when dependencies are built.
