file(REMOVE_RECURSE
  "CMakeFiles/ls_core.dir/client.cc.o"
  "CMakeFiles/ls_core.dir/client.cc.o.d"
  "CMakeFiles/ls_core.dir/compensation.cc.o"
  "CMakeFiles/ls_core.dir/compensation.cc.o.d"
  "CMakeFiles/ls_core.dir/currency.cc.o"
  "CMakeFiles/ls_core.dir/currency.cc.o.d"
  "CMakeFiles/ls_core.dir/funding.cc.o"
  "CMakeFiles/ls_core.dir/funding.cc.o.d"
  "CMakeFiles/ls_core.dir/hierarchy.cc.o"
  "CMakeFiles/ls_core.dir/hierarchy.cc.o.d"
  "CMakeFiles/ls_core.dir/inverse_lottery.cc.o"
  "CMakeFiles/ls_core.dir/inverse_lottery.cc.o.d"
  "CMakeFiles/ls_core.dir/list_lottery.cc.o"
  "CMakeFiles/ls_core.dir/list_lottery.cc.o.d"
  "CMakeFiles/ls_core.dir/lottery_scheduler.cc.o"
  "CMakeFiles/ls_core.dir/lottery_scheduler.cc.o.d"
  "CMakeFiles/ls_core.dir/transfer.cc.o"
  "CMakeFiles/ls_core.dir/transfer.cc.o.d"
  "CMakeFiles/ls_core.dir/tree_lottery.cc.o"
  "CMakeFiles/ls_core.dir/tree_lottery.cc.o.d"
  "libls_core.a"
  "libls_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ls_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
