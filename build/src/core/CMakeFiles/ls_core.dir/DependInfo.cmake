
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/client.cc" "src/core/CMakeFiles/ls_core.dir/client.cc.o" "gcc" "src/core/CMakeFiles/ls_core.dir/client.cc.o.d"
  "/root/repo/src/core/compensation.cc" "src/core/CMakeFiles/ls_core.dir/compensation.cc.o" "gcc" "src/core/CMakeFiles/ls_core.dir/compensation.cc.o.d"
  "/root/repo/src/core/currency.cc" "src/core/CMakeFiles/ls_core.dir/currency.cc.o" "gcc" "src/core/CMakeFiles/ls_core.dir/currency.cc.o.d"
  "/root/repo/src/core/funding.cc" "src/core/CMakeFiles/ls_core.dir/funding.cc.o" "gcc" "src/core/CMakeFiles/ls_core.dir/funding.cc.o.d"
  "/root/repo/src/core/hierarchy.cc" "src/core/CMakeFiles/ls_core.dir/hierarchy.cc.o" "gcc" "src/core/CMakeFiles/ls_core.dir/hierarchy.cc.o.d"
  "/root/repo/src/core/inverse_lottery.cc" "src/core/CMakeFiles/ls_core.dir/inverse_lottery.cc.o" "gcc" "src/core/CMakeFiles/ls_core.dir/inverse_lottery.cc.o.d"
  "/root/repo/src/core/list_lottery.cc" "src/core/CMakeFiles/ls_core.dir/list_lottery.cc.o" "gcc" "src/core/CMakeFiles/ls_core.dir/list_lottery.cc.o.d"
  "/root/repo/src/core/lottery_scheduler.cc" "src/core/CMakeFiles/ls_core.dir/lottery_scheduler.cc.o" "gcc" "src/core/CMakeFiles/ls_core.dir/lottery_scheduler.cc.o.d"
  "/root/repo/src/core/transfer.cc" "src/core/CMakeFiles/ls_core.dir/transfer.cc.o" "gcc" "src/core/CMakeFiles/ls_core.dir/transfer.cc.o.d"
  "/root/repo/src/core/tree_lottery.cc" "src/core/CMakeFiles/ls_core.dir/tree_lottery.cc.o" "gcc" "src/core/CMakeFiles/ls_core.dir/tree_lottery.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ls_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
