file(REMOVE_RECURSE
  "CMakeFiles/bench_responsiveness.dir/bench_responsiveness.cc.o"
  "CMakeFiles/bench_responsiveness.dir/bench_responsiveness.cc.o.d"
  "bench_responsiveness"
  "bench_responsiveness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_responsiveness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
