# Empty dependencies file for bench_responsiveness.
# This may be replaced when dependencies are built.
