file(REMOVE_RECURSE
  "CMakeFiles/fig_inverse_lottery.dir/fig_inverse_lottery.cc.o"
  "CMakeFiles/fig_inverse_lottery.dir/fig_inverse_lottery.cc.o.d"
  "fig_inverse_lottery"
  "fig_inverse_lottery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_inverse_lottery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
