# Empty dependencies file for fig_inverse_lottery.
# This may be replaced when dependencies are built.
