file(REMOVE_RECURSE
  "CMakeFiles/fig_qos.dir/fig_qos.cc.o"
  "CMakeFiles/fig_qos.dir/fig_qos.cc.o.d"
  "fig_qos"
  "fig_qos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_qos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
