# Empty compiler generated dependencies file for fig_qos.
# This may be replaced when dependencies are built.
