# Empty dependencies file for fig9_load_insulation.
# This may be replaced when dependencies are built.
