file(REMOVE_RECURSE
  "CMakeFiles/fig9_load_insulation.dir/fig9_load_insulation.cc.o"
  "CMakeFiles/fig9_load_insulation.dir/fig9_load_insulation.cc.o.d"
  "fig9_load_insulation"
  "fig9_load_insulation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_load_insulation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
