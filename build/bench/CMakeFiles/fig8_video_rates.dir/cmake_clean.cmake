file(REMOVE_RECURSE
  "CMakeFiles/fig8_video_rates.dir/fig8_video_rates.cc.o"
  "CMakeFiles/fig8_video_rates.dir/fig8_video_rates.cc.o.d"
  "fig8_video_rates"
  "fig8_video_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_video_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
