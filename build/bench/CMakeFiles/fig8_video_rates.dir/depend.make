# Empty dependencies file for fig8_video_rates.
# This may be replaced when dependencies are built.
