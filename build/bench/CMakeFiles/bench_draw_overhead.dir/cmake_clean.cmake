file(REMOVE_RECURSE
  "CMakeFiles/bench_draw_overhead.dir/bench_draw_overhead.cc.o"
  "CMakeFiles/bench_draw_overhead.dir/bench_draw_overhead.cc.o.d"
  "bench_draw_overhead"
  "bench_draw_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_draw_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
