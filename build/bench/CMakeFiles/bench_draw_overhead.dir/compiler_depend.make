# Empty compiler generated dependencies file for bench_draw_overhead.
# This may be replaced when dependencies are built.
