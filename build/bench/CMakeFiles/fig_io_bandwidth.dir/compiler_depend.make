# Empty compiler generated dependencies file for fig_io_bandwidth.
# This may be replaced when dependencies are built.
