file(REMOVE_RECURSE
  "CMakeFiles/fig_io_bandwidth.dir/fig_io_bandwidth.cc.o"
  "CMakeFiles/fig_io_bandwidth.dir/fig_io_bandwidth.cc.o.d"
  "fig_io_bandwidth"
  "fig_io_bandwidth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_io_bandwidth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
