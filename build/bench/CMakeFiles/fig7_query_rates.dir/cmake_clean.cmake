file(REMOVE_RECURSE
  "CMakeFiles/fig7_query_rates.dir/fig7_query_rates.cc.o"
  "CMakeFiles/fig7_query_rates.dir/fig7_query_rates.cc.o.d"
  "fig7_query_rates"
  "fig7_query_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_query_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
