# Empty compiler generated dependencies file for fig7_query_rates.
# This may be replaced when dependencies are built.
