
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig7_query_rates.cc" "bench/CMakeFiles/fig7_query_rates.dir/fig7_query_rates.cc.o" "gcc" "bench/CMakeFiles/fig7_query_rates.dir/fig7_query_rates.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/ls_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ls_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/ls_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/ls_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/ls_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
