file(REMOVE_RECURSE
  "CMakeFiles/fig6_montecarlo.dir/fig6_montecarlo.cc.o"
  "CMakeFiles/fig6_montecarlo.dir/fig6_montecarlo.cc.o.d"
  "fig6_montecarlo"
  "fig6_montecarlo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_montecarlo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
