# Empty dependencies file for fig6_montecarlo.
# This may be replaced when dependencies are built.
