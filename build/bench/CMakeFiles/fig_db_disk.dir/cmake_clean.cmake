file(REMOVE_RECURSE
  "CMakeFiles/fig_db_disk.dir/fig_db_disk.cc.o"
  "CMakeFiles/fig_db_disk.dir/fig_db_disk.cc.o.d"
  "fig_db_disk"
  "fig_db_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_db_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
