# Empty dependencies file for fig_db_disk.
# This may be replaced when dependencies are built.
