# Empty dependencies file for fig5_fairness_over_time.
# This may be replaced when dependencies are built.
