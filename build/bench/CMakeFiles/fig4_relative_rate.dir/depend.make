# Empty dependencies file for fig4_relative_rate.
# This may be replaced when dependencies are built.
