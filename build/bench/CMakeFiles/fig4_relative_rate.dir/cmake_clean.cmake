file(REMOVE_RECURSE
  "CMakeFiles/fig4_relative_rate.dir/fig4_relative_rate.cc.o"
  "CMakeFiles/fig4_relative_rate.dir/fig4_relative_rate.cc.o.d"
  "fig4_relative_rate"
  "fig4_relative_rate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_relative_rate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
