# Empty dependencies file for fig_compensation.
# This may be replaced when dependencies are built.
