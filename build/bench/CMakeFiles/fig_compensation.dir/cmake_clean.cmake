file(REMOVE_RECURSE
  "CMakeFiles/fig_compensation.dir/fig_compensation.cc.o"
  "CMakeFiles/fig_compensation.dir/fig_compensation.cc.o.d"
  "fig_compensation"
  "fig_compensation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_compensation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
