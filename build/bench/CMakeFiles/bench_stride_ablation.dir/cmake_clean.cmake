file(REMOVE_RECURSE
  "CMakeFiles/bench_stride_ablation.dir/bench_stride_ablation.cc.o"
  "CMakeFiles/bench_stride_ablation.dir/bench_stride_ablation.cc.o.d"
  "bench_stride_ablation"
  "bench_stride_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stride_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
