# Empty compiler generated dependencies file for fig11_mutex_waiting.
# This may be replaced when dependencies are built.
