file(REMOVE_RECURSE
  "CMakeFiles/fig11_mutex_waiting.dir/fig11_mutex_waiting.cc.o"
  "CMakeFiles/fig11_mutex_waiting.dir/fig11_mutex_waiting.cc.o.d"
  "fig11_mutex_waiting"
  "fig11_mutex_waiting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_mutex_waiting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
