file(REMOVE_RECURSE
  "CMakeFiles/lottery_test.dir/lottery_test.cc.o"
  "CMakeFiles/lottery_test.dir/lottery_test.cc.o.d"
  "lottery_test"
  "lottery_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lottery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
