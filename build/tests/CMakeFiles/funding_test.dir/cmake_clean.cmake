file(REMOVE_RECURSE
  "CMakeFiles/funding_test.dir/funding_test.cc.o"
  "CMakeFiles/funding_test.dir/funding_test.cc.o.d"
  "funding_test"
  "funding_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/funding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
