# Empty dependencies file for funding_test.
# This may be replaced when dependencies are built.
