file(REMOVE_RECURSE
  "CMakeFiles/smp_test.dir/smp_test.cc.o"
  "CMakeFiles/smp_test.dir/smp_test.cc.o.d"
  "smp_test"
  "smp_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
