# Empty compiler generated dependencies file for currency_fuzz_test.
# This may be replaced when dependencies are built.
