file(REMOVE_RECURSE
  "CMakeFiles/currency_fuzz_test.dir/currency_fuzz_test.cc.o"
  "CMakeFiles/currency_fuzz_test.dir/currency_fuzz_test.cc.o.d"
  "currency_fuzz_test"
  "currency_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/currency_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
