# Empty compiler generated dependencies file for compensation_transfer_test.
# This may be replaced when dependencies are built.
