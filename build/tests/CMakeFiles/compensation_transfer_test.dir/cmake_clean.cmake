file(REMOVE_RECURSE
  "CMakeFiles/compensation_transfer_test.dir/compensation_transfer_test.cc.o"
  "CMakeFiles/compensation_transfer_test.dir/compensation_transfer_test.cc.o.d"
  "compensation_transfer_test"
  "compensation_transfer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compensation_transfer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
