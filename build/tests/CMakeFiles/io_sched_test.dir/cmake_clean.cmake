file(REMOVE_RECURSE
  "CMakeFiles/io_sched_test.dir/io_sched_test.cc.o"
  "CMakeFiles/io_sched_test.dir/io_sched_test.cc.o.d"
  "io_sched_test"
  "io_sched_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_sched_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
