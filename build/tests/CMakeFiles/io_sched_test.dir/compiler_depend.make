# Empty compiler generated dependencies file for io_sched_test.
# This may be replaced when dependencies are built.
