# Empty dependencies file for inverse_lottery_test.
# This may be replaced when dependencies are built.
