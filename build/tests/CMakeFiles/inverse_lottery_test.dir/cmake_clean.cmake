file(REMOVE_RECURSE
  "CMakeFiles/inverse_lottery_test.dir/inverse_lottery_test.cc.o"
  "CMakeFiles/inverse_lottery_test.dir/inverse_lottery_test.cc.o.d"
  "inverse_lottery_test"
  "inverse_lottery_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/inverse_lottery_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
