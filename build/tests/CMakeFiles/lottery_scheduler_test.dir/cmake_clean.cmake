file(REMOVE_RECURSE
  "CMakeFiles/lottery_scheduler_test.dir/lottery_scheduler_test.cc.o"
  "CMakeFiles/lottery_scheduler_test.dir/lottery_scheduler_test.cc.o.d"
  "lottery_scheduler_test"
  "lottery_scheduler_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lottery_scheduler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
