# Empty compiler generated dependencies file for lottery_scheduler_test.
# This may be replaced when dependencies are built.
