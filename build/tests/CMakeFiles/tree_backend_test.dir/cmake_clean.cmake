file(REMOVE_RECURSE
  "CMakeFiles/tree_backend_test.dir/tree_backend_test.cc.o"
  "CMakeFiles/tree_backend_test.dir/tree_backend_test.cc.o.d"
  "tree_backend_test"
  "tree_backend_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tree_backend_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
