file(REMOVE_RECURSE
  "CMakeFiles/baseline_sched_test.dir/baseline_sched_test.cc.o"
  "CMakeFiles/baseline_sched_test.dir/baseline_sched_test.cc.o.d"
  "baseline_sched_test"
  "baseline_sched_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_sched_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
