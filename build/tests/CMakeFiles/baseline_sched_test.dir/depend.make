# Empty dependencies file for baseline_sched_test.
# This may be replaced when dependencies are built.
