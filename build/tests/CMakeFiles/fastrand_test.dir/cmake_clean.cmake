file(REMOVE_RECURSE
  "CMakeFiles/fastrand_test.dir/fastrand_test.cc.o"
  "CMakeFiles/fastrand_test.dir/fastrand_test.cc.o.d"
  "fastrand_test"
  "fastrand_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fastrand_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
