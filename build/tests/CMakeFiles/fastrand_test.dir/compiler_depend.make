# Empty compiler generated dependencies file for fastrand_test.
# This may be replaced when dependencies are built.
