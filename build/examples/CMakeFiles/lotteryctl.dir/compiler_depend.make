# Empty compiler generated dependencies file for lotteryctl.
# This may be replaced when dependencies are built.
