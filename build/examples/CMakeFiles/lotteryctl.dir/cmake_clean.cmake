file(REMOVE_RECURSE
  "CMakeFiles/lotteryctl.dir/lotteryctl.cpp.o"
  "CMakeFiles/lotteryctl.dir/lotteryctl.cpp.o.d"
  "lotteryctl"
  "lotteryctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lotteryctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
