# Empty dependencies file for priority_inversion.
# This may be replaced when dependencies are built.
