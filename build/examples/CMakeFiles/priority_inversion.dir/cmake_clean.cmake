file(REMOVE_RECURSE
  "CMakeFiles/priority_inversion.dir/priority_inversion.cpp.o"
  "CMakeFiles/priority_inversion.dir/priority_inversion.cpp.o.d"
  "priority_inversion"
  "priority_inversion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/priority_inversion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
