# Empty compiler generated dependencies file for priority_inversion.
# This may be replaced when dependencies are built.
