file(REMOVE_RECURSE
  "CMakeFiles/currency_isolation.dir/currency_isolation.cpp.o"
  "CMakeFiles/currency_isolation.dir/currency_isolation.cpp.o.d"
  "currency_isolation"
  "currency_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/currency_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
