# Empty compiler generated dependencies file for currency_isolation.
# This may be replaced when dependencies are built.
