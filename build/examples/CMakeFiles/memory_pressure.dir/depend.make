# Empty dependencies file for memory_pressure.
# This may be replaced when dependencies are built.
