file(REMOVE_RECURSE
  "CMakeFiles/adaptive_rendering.dir/adaptive_rendering.cpp.o"
  "CMakeFiles/adaptive_rendering.dir/adaptive_rendering.cpp.o.d"
  "adaptive_rendering"
  "adaptive_rendering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/adaptive_rendering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
