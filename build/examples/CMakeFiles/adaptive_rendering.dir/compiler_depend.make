# Empty compiler generated dependencies file for adaptive_rendering.
# This may be replaced when dependencies are built.
