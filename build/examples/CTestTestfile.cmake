# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;10;ls_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_currency_isolation "/root/repo/build/examples/currency_isolation")
set_tests_properties(example_currency_isolation PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;11;ls_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_client_server "/root/repo/build/examples/client_server")
set_tests_properties(example_client_server PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;12;ls_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_priority_inversion "/root/repo/build/examples/priority_inversion")
set_tests_properties(example_priority_inversion PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;13;ls_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_adaptive_rendering "/root/repo/build/examples/adaptive_rendering")
set_tests_properties(example_adaptive_rendering PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;14;ls_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_lotteryctl "/root/repo/build/examples/lotteryctl")
set_tests_properties(example_lotteryctl PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;15;ls_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_multi_resource "/root/repo/build/examples/multi_resource")
set_tests_properties(example_multi_resource PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;16;ls_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_memory_pressure "/root/repo/build/examples/memory_pressure")
set_tests_properties(example_memory_pressure PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;17;ls_add_example;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_scheduler_shootout "/root/repo/build/examples/scheduler_shootout")
set_tests_properties(example_scheduler_shootout PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;7;add_test;/root/repo/examples/CMakeLists.txt;18;ls_add_example;/root/repo/examples/CMakeLists.txt;0;")
