#!/usr/bin/env python3
"""Schema check for BENCH_<name>.json reports emitted by bench/--json.

Every report must carry the stable five-key envelope:

    {
      "schema_version": 1,
      "bench": "<name>",
      "metadata": {"seed": <int>, ...},
      "metrics": {"<key>": <finite number>, ...},   # non-empty
      "percentiles": {"<hist>": {count, mean, p50, p90, p99, max}, ...}
    }

Nulls are rejected everywhere: the JSON writer turns NaN/Inf into null, so
a null metric means a bench computed garbage and that should fail CI, not
upload quietly. Usage: check_bench_json.py FILE [FILE...]; exits nonzero
and prints one line per violation if any file fails.
"""

import json
import sys

PERCENTILE_KEYS = ("count", "mean", "p50", "p90", "p99", "max")


def is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def check_file(path):
    errors = []
    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as exc:
        return [f"{path}: unreadable or invalid JSON: {exc}"]

    if not isinstance(doc, dict):
        return [f"{path}: top level is not an object"]

    for key in ("schema_version", "bench", "metadata", "metrics",
                "percentiles"):
        if key not in doc:
            errors.append(f"{path}: missing required key '{key}'")
    if errors:
        return errors

    if doc["schema_version"] != 1:
        errors.append(
            f"{path}: schema_version is {doc['schema_version']!r}, expected 1")
    if not isinstance(doc["bench"], str) or not doc["bench"]:
        errors.append(f"{path}: 'bench' must be a non-empty string")

    metadata = doc["metadata"]
    if not isinstance(metadata, dict):
        errors.append(f"{path}: 'metadata' must be an object")
    elif "seed" not in metadata:
        errors.append(f"{path}: metadata.seed is missing")
    elif not is_number(metadata["seed"]):
        errors.append(f"{path}: metadata.seed must be a number")

    metrics = doc["metrics"]
    if not isinstance(metrics, dict) or not metrics:
        errors.append(f"{path}: 'metrics' must be a non-empty object")
    else:
        for name, value in metrics.items():
            if not is_number(value):
                errors.append(
                    f"{path}: metrics['{name}'] is {value!r}, not a finite "
                    "number (null means the bench emitted NaN/Inf)")

    percentiles = doc["percentiles"]
    if not isinstance(percentiles, dict):
        errors.append(f"{path}: 'percentiles' must be an object")
    else:
        for hist, summary in percentiles.items():
            if not isinstance(summary, dict):
                errors.append(
                    f"{path}: percentiles['{hist}'] is not an object")
                continue
            for key in PERCENTILE_KEYS:
                if key not in summary:
                    errors.append(
                        f"{path}: percentiles['{hist}'] missing '{key}'")
                elif not is_number(summary[key]):
                    errors.append(
                        f"{path}: percentiles['{hist}']['{key}'] is "
                        f"{summary[key]!r}, not a finite number")

    return errors


def main(argv):
    if len(argv) < 2:
        print("usage: check_bench_json.py BENCH_*.json", file=sys.stderr)
        return 2
    failures = []
    for path in argv[1:]:
        errors = check_file(path)
        if errors:
            failures.extend(errors)
        else:
            print(f"OK {path}")
    for line in failures:
        print(f"FAIL {line}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
