#!/usr/bin/env python3
"""Schema check for bench JSON artifacts (--json reports and --timeseries).

Bench reports must carry the stable five-key envelope:

    {
      "schema_version": 1,
      "bench": "<name>",
      "metadata": {"seed": <int>, ...},
      "metrics": {"<key>": <finite number>, ...},   # non-empty
      "percentiles": {"<hist>": {count, mean, p50, p90, p99, max}, ...}
    }

Timeseries files (detected by '"kind": "timeseries"') instead carry:

    {
      "schema_version": 1, "kind": "timeseries", "source": "<bench>",
      "metadata": {...}, "clients": [...], "anomalies": [...],
      "anomalies_dropped": <int>,
      "series": {"<name>": {stride, t_ns[], count[], mean[], min[], max[]}}
    }

with every t_ns axis strictly increasing integers, all five per-series
arrays the same length, object keys emitted in sorted order (so same-seed
runs are byte-comparable), and no NaN/Inf anywhere. Nulls are rejected
everywhere: the JSON writer turns NaN/Inf into null, so a null value means
the producer computed garbage and that should fail CI, not upload quietly.
Usage: check_bench_json.py FILE [FILE...]; exits nonzero and prints one
line per violation if any file fails.
"""

import json
import sys

PERCENTILE_KEYS = ("count", "mean", "p50", "p90", "p99", "max")


def is_number(value):
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def check_timeseries(path, doc, key_order_errors):
    """Validate a '"kind": "timeseries"' document (Sampler::ToJson)."""
    errors = list(key_order_errors)
    for key in ("schema_version", "kind", "source", "metadata", "clients",
                "anomalies", "anomalies_dropped", "series"):
        if key not in doc:
            errors.append(f"{path}: missing required key '{key}'")
    if errors:
        return errors

    if doc["schema_version"] != 1:
        errors.append(
            f"{path}: schema_version is {doc['schema_version']!r}, expected 1")
    if not isinstance(doc["source"], str) or not doc["source"]:
        errors.append(f"{path}: 'source' must be a non-empty string")

    metadata = doc["metadata"]
    if not isinstance(metadata, dict):
        errors.append(f"{path}: 'metadata' must be an object")
    else:
        for key in ("interval_ns", "quantum_ns", "samples", "seed"):
            if not isinstance(metadata.get(key), int):
                errors.append(
                    f"{path}: metadata.{key} must be an integer, got "
                    f"{metadata.get(key)!r}")

    if not isinstance(doc["anomalies_dropped"], int):
        errors.append(f"{path}: 'anomalies_dropped' must be an integer")

    if not isinstance(doc["clients"], list):
        errors.append(f"{path}: 'clients' must be an array")
    else:
        for i, client in enumerate(doc["clients"]):
            if (not isinstance(client, dict)
                    or not isinstance(client.get("label"), str)
                    or not isinstance(client.get("tid"), int)):
                errors.append(
                    f"{path}: clients[{i}] must be {{label: str, tid: int}}")

    if not isinstance(doc["anomalies"], list):
        errors.append(f"{path}: 'anomalies' must be an array")
    else:
        for i, anomaly in enumerate(doc["anomalies"]):
            if not isinstance(anomaly, dict):
                errors.append(f"{path}: anomalies[{i}] is not an object")
                continue
            if not isinstance(anomaly.get("t_ns"), int):
                errors.append(f"{path}: anomalies[{i}].t_ns must be int")
            if anomaly.get("kind") not in ("lag", "starvation", "share_error"):
                errors.append(
                    f"{path}: anomalies[{i}].kind is "
                    f"{anomaly.get('kind')!r}")
            for key in ("value", "bound"):
                if not is_number(anomaly.get(key)):
                    errors.append(
                        f"{path}: anomalies[{i}].{key} must be a finite "
                        "number")

    series = doc["series"]
    if not isinstance(series, dict) or not series:
        errors.append(f"{path}: 'series' must be a non-empty object")
        return errors
    for name, body in series.items():
        if not isinstance(body, dict):
            errors.append(f"{path}: series['{name}'] is not an object")
            continue
        if not isinstance(body.get("stride"), int) or body["stride"] < 1:
            errors.append(
                f"{path}: series['{name}'].stride must be a positive int")
        axis = body.get("t_ns")
        if not isinstance(axis, list) or not all(
                isinstance(t, int) for t in axis):
            errors.append(
                f"{path}: series['{name}'].t_ns must be an integer array")
            continue
        for i in range(1, len(axis)):
            if axis[i] <= axis[i - 1]:
                errors.append(
                    f"{path}: series['{name}'].t_ns not strictly increasing "
                    f"at index {i} ({axis[i - 1]} -> {axis[i]})")
                break
        for key in ("count", "mean", "min", "max"):
            values = body.get(key)
            if not isinstance(values, list):
                errors.append(f"{path}: series['{name}'].{key} missing")
                continue
            if len(values) != len(axis):
                errors.append(
                    f"{path}: series['{name}'].{key} has {len(values)} "
                    f"entries, t_ns has {len(axis)}")
            for i, value in enumerate(values):
                if not is_number(value):
                    errors.append(
                        f"{path}: series['{name}'].{key}[{i}] is "
                        f"{value!r}, not a finite number")
                    break
    return errors


def check_file(path):
    errors = []
    # Deterministic output contract: keys must be emitted in sorted order so
    # that same-seed runs are byte-comparable. The pairs hook sees every
    # object before it collapses to a dict.
    key_order_errors = []

    def pairs_hook(pairs):
        keys = [k for k, _ in pairs]
        if keys != sorted(keys) and len(key_order_errors) < 5:
            key_order_errors.append(
                f"{path}: object keys not in sorted order: {keys}")
        return dict(pairs)

    def reject_constant(token):
        raise ValueError(f"non-finite constant {token}")

    try:
        with open(path, "r", encoding="utf-8") as f:
            doc = json.load(f, object_pairs_hook=pairs_hook,
                            parse_constant=reject_constant)
    except (OSError, ValueError) as exc:
        return [f"{path}: unreadable or invalid JSON: {exc}"]

    if not isinstance(doc, dict):
        return [f"{path}: top level is not an object"]

    if doc.get("kind") == "timeseries":
        return check_timeseries(path, doc, key_order_errors)
    # Bench reports write their envelope in fixed (not sorted) order; the
    # sorted-keys contract applies to timeseries files only.
    del key_order_errors[:]

    for key in ("schema_version", "bench", "metadata", "metrics",
                "percentiles"):
        if key not in doc:
            errors.append(f"{path}: missing required key '{key}'")
    if errors:
        return errors

    if doc["schema_version"] != 1:
        errors.append(
            f"{path}: schema_version is {doc['schema_version']!r}, expected 1")
    if not isinstance(doc["bench"], str) or not doc["bench"]:
        errors.append(f"{path}: 'bench' must be a non-empty string")

    metadata = doc["metadata"]
    if not isinstance(metadata, dict):
        errors.append(f"{path}: 'metadata' must be an object")
    elif "seed" not in metadata:
        errors.append(f"{path}: metadata.seed is missing")
    elif not is_number(metadata["seed"]):
        errors.append(f"{path}: metadata.seed must be a number")

    metrics = doc["metrics"]
    if not isinstance(metrics, dict) or not metrics:
        errors.append(f"{path}: 'metrics' must be a non-empty object")
    else:
        for name, value in metrics.items():
            if not is_number(value):
                errors.append(
                    f"{path}: metrics['{name}'] is {value!r}, not a finite "
                    "number (null means the bench emitted NaN/Inf)")

    percentiles = doc["percentiles"]
    if not isinstance(percentiles, dict):
        errors.append(f"{path}: 'percentiles' must be an object")
    else:
        for hist, summary in percentiles.items():
            if not isinstance(summary, dict):
                errors.append(
                    f"{path}: percentiles['{hist}'] is not an object")
                continue
            for key in PERCENTILE_KEYS:
                if key not in summary:
                    errors.append(
                        f"{path}: percentiles['{hist}'] missing '{key}'")
                elif not is_number(summary[key]):
                    errors.append(
                        f"{path}: percentiles['{hist}']['{key}'] is "
                        f"{summary[key]!r}, not a finite number")

    return errors


def main(argv):
    if len(argv) < 2:
        print("usage: check_bench_json.py BENCH_*.json", file=sys.stderr)
        return 2
    failures = []
    for path in argv[1:]:
        errors = check_file(path)
        if errors:
            failures.extend(errors)
        else:
            print(f"OK {path}")
    for line in failures:
        print(f"FAIL {line}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
