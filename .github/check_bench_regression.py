#!/usr/bin/env python3
"""Perf-regression gate: compare BENCH_<name>.json metrics to baselines.

Usage: check_bench_regression.py --baseline-dir bench/baselines \
           [--tolerance 0.15] CURRENT.json [CURRENT.json...]

Each current report is matched to a baseline by basename. Only the
*deterministic* metrics are gated: every key whose name contains "_ns" is
wall-clock (host-dependent, unstable across runners) and is skipped; what
remains — obs counters, draw-cost percentiles in scan/depth units, and
sim-derived results — is reproducible for a fixed seed, so any drift beyond
the tolerance is a behavioural change, not noise.

Rules, per baseline metric:
  * missing from the current report ............................ FAIL
  * baseline == 0 (e.g. tree full_syncs) ....... current must be 0 exactly
  * otherwise .......... |current - baseline| / baseline > tolerance FAILs
Metrics present only in the current report are ignored (new metrics land
first, baselines follow in the same change).
"""

import argparse
import json
import os
import sys


def load_metrics(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    metrics = doc.get("metrics")
    if not isinstance(metrics, dict):
        raise ValueError(f"{path}: no 'metrics' object")
    return metrics


def gated(name):
    return "_ns" not in name


def compare(current_path, baseline_path, tolerance):
    failures = []
    current = load_metrics(current_path)
    baseline = load_metrics(baseline_path)
    checked = 0
    for name, base_value in sorted(baseline.items()):
        if not gated(name):
            continue
        checked += 1
        if name not in current:
            failures.append(f"{current_path}: metric '{name}' present in "
                            f"baseline but missing from the report")
            continue
        cur_value = current[name]
        if not isinstance(cur_value, (int, float)) or isinstance(
                cur_value, bool):
            failures.append(
                f"{current_path}: metric '{name}' is {cur_value!r}, "
                "not a number")
            continue
        if base_value == 0:
            if cur_value != 0:
                failures.append(
                    f"{current_path}: '{name}' = {cur_value} but the "
                    "baseline is exactly 0 (zero-baselines are strict: "
                    "e.g. steady-state full resyncs must stay impossible)")
            continue
        rel = abs(cur_value - base_value) / abs(base_value)
        if rel > tolerance:
            failures.append(
                f"{current_path}: '{name}' = {cur_value:g} vs baseline "
                f"{base_value:g} ({100.0 * rel:.1f}% drift, tolerance "
                f"{100.0 * tolerance:.0f}%)")
    return checked, failures


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline-dir", required=True,
                        help="directory holding baseline BENCH_*.json files")
    parser.add_argument("--tolerance", type=float, default=0.15,
                        help="max relative drift for nonzero baselines "
                             "(default 0.15)")
    parser.add_argument("reports", nargs="+", metavar="CURRENT.json")
    args = parser.parse_args(argv[1:])

    failures = []
    for path in args.reports:
        baseline_path = os.path.join(args.baseline_dir, os.path.basename(path))
        if not os.path.exists(baseline_path):
            failures.append(f"{path}: no baseline at {baseline_path} "
                            "(commit one to bench/baselines/)")
            continue
        try:
            checked, file_failures = compare(path, baseline_path,
                                             args.tolerance)
        except (OSError, ValueError, json.JSONDecodeError) as exc:
            failures.append(f"{path}: {exc}")
            continue
        if file_failures:
            failures.extend(file_failures)
        else:
            print(f"OK {path}: {checked} gated metrics within "
                  f"{100.0 * args.tolerance:.0f}% of baseline")
    for line in failures:
        print(f"FAIL {line}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
