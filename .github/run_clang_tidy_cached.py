#!/usr/bin/env python3
"""clang-tidy over compile_commands.json, with a content-hash cache.

CI calls this from the static-analysis job. A full clang-tidy pass over the
tree costs minutes; almost all of it is re-analyzing files that did not
change. Each translation unit is keyed by a hash of (clang-tidy version,
.clang-tidy config, compile command, source text, every repo header it can
include); a cache hit skips the invocation entirely. The cache directory is
persisted across CI runs with actions/cache, so a typical PR re-analyzes
only the files it touches.

Usage:
  run_clang_tidy_cached.py --build-dir BUILD [--cache-dir DIR] [--jobs N]

Exits non-zero if any analyzed file produced diagnostics (WarningsAsErrors
is '*' in .clang-tidy, so warnings fail too).
"""

import argparse
import concurrent.futures
import hashlib
import json
import os
import re
import subprocess
import sys

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

# Only analyze first-party code; gtest/benchmark system headers are not ours.
SOURCE_RE = re.compile(r"^(src|tools|tests|bench)/.*\.(cc|cpp)$")


def file_digest(path):
    h = hashlib.sha256()
    try:
        with open(path, "rb") as f:
            h.update(f.read())
    except OSError:
        h.update(b"<unreadable>")
    return h.hexdigest()


def repo_header_digest():
    """One digest over every repo header: any header edit invalidates all
    TUs. Coarser than per-TU include tracking but safe, simple, and still
    a full cache hit on the common touch-nothing rebuild."""
    h = hashlib.sha256()
    for top in ("src", "tools", "tests", "bench"):
        for root, dirs, files in os.walk(os.path.join(REPO_ROOT, top)):
            dirs.sort()
            for name in sorted(files):
                if name.endswith((".h", ".hpp")):
                    path = os.path.join(root, name)
                    rel = os.path.relpath(path, REPO_ROOT)
                    h.update(rel.encode())
                    h.update(file_digest(path).encode())
    return h.hexdigest()


def tidy_version(tidy):
    try:
        return subprocess.run([tidy, "--version"], capture_output=True,
                              text=True, check=True).stdout
    except (OSError, subprocess.CalledProcessError):
        return None


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--build-dir", required=True)
    ap.add_argument("--cache-dir",
                    default=os.path.join(REPO_ROOT, ".tidy-cache"))
    ap.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    ap.add_argument("--clang-tidy", default="clang-tidy")
    args = ap.parse_args()

    version = tidy_version(args.clang_tidy)
    if version is None:
        print(f"error: {args.clang_tidy} not found or not runnable",
              file=sys.stderr)
        return 2

    cc_path = os.path.join(args.build_dir, "compile_commands.json")
    with open(cc_path) as f:
        commands = json.load(f)

    os.makedirs(args.cache_dir, exist_ok=True)
    base = hashlib.sha256()
    base.update(version.encode())
    base.update(file_digest(os.path.join(REPO_ROOT, ".clang-tidy")).encode())
    base.update(repo_header_digest().encode())
    base_digest = base.hexdigest()

    entries = []
    for entry in commands:
        rel = os.path.relpath(os.path.abspath(
            os.path.join(entry["directory"], entry["file"])), REPO_ROOT)
        if SOURCE_RE.match(rel.replace(os.sep, "/")):
            entries.append((rel, entry))

    def analyze(item):
        rel, entry = item
        key = hashlib.sha256()
        key.update(base_digest.encode())
        key.update(entry.get("command", " ".join(
            entry.get("arguments", []))).encode())
        key.update(file_digest(os.path.join(REPO_ROOT, rel)).encode())
        stamp = os.path.join(args.cache_dir, key.hexdigest())
        if os.path.exists(stamp):
            return rel, True, ""
        proc = subprocess.run(
            [args.clang_tidy, "-p", args.build_dir, "--quiet", rel],
            capture_output=True, text=True, cwd=REPO_ROOT)
        if proc.returncode == 0:
            with open(stamp, "w") as f:
                f.write("ok\n")
            return rel, False, ""
        return rel, False, proc.stdout + proc.stderr

    failures = []
    hits = 0
    with concurrent.futures.ThreadPoolExecutor(args.jobs) as pool:
        for rel, cached, output in pool.map(analyze, entries):
            if cached:
                hits += 1
            elif output:
                failures.append((rel, output))

    print(f"clang-tidy: {len(entries)} TUs, {hits} cache hits, "
          f"{len(failures)} with diagnostics")
    for rel, output in failures:
        print(f"\n=== {rel} ===\n{output}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
