// Clang thread-safety capability annotations + the Seq serialization domain.
//
// The simulator is single-real-threaded today, but the ROADMAP's next open
// item — per-CPU partitioned lotteries with ticket-weighted work stealing —
// turns several of its structures (run queues, per-CPU dispatch state,
// service waiter lists) into genuinely shared state. This header wires the
// lock discipline *before* the SMP refactor lands, in two layers:
//
//  1. The standard clang `-Wthread-safety` attribute macros (CAPABILITY,
//     GUARDED_BY, REQUIRES, ACQUIRE/RELEASE, TRY_ACQUIRE, ...), expanding
//     to nothing on compilers without the attributes. SimMutex/SimRwLock
//     are annotated as capabilities so clang statically checks every
//     caller's acquire/release balance; lotlint rule L2 checks the
//     annotations themselves stay present.
//
//  2. `util::Seq` — a *serialization domain*: a compiler-checked capability
//     marking state that today is serialized by construction (the single
//     dispatch loop) and tomorrow must be protected by a real per-CPU lock.
//     Entering is free in Release; Debug builds assert non-reentrance, so
//     the "this state is only touched from one domain at a time" claim is
//     executable, not aspirational. When the SMP rebalancer lands, each Seq
//     becomes a real lock and every GUARDED_BY/REQUIRES already names the
//     state it must cover.
//
// Cross-slice ownership protocol (cooperative services): a SimMutex is held
// across scheduling slices — Acquire in one ThreadBody::Run call, Release
// several slices later — which no intraprocedural analysis can follow. The
// protocol makes the handoff explicit and runtime-checked:
//
//   if (!mutex->Acquire(ctx)) { ctx.Block(); return; }   // TRY_ACQUIRE
//   ...critical work this slice...
//   mutex->NoteHeldAcrossSlice(ctx.self());  // ends the static session;
//                                            // runtime-checks ownership
//   --- next slice ---
//   mutex->AssertHeld(ctx.self());           // re-establishes it (checked)
//   ...
//   mutex->Release(ctx);
//
// See DESIGN.md "Determinism contract v2" for the rule table.

#ifndef SRC_UTIL_THREAD_SAFETY_H_
#define SRC_UTIL_THREAD_SAFETY_H_

#include "src/util/invariant.h"

// ---------------------------------------------------------------------------
// Attribute macros (clang Thread Safety Analysis; no-ops elsewhere).
// Names follow the canonical mutex.h from the clang documentation so the
// annotations read the same here as in any other annotated codebase.
// ---------------------------------------------------------------------------

#if defined(__clang__) && defined(__has_attribute)
#define LOT_TS_ATTRIBUTE(x) __attribute__((x))
#else
#define LOT_TS_ATTRIBUTE(x)  // no-op outside clang
#endif

#define CAPABILITY(x) LOT_TS_ATTRIBUTE(capability(x))
#define SCOPED_CAPABILITY LOT_TS_ATTRIBUTE(scoped_lockable)
#define GUARDED_BY(x) LOT_TS_ATTRIBUTE(guarded_by(x))
#define PT_GUARDED_BY(x) LOT_TS_ATTRIBUTE(pt_guarded_by(x))
#define ACQUIRED_BEFORE(...) LOT_TS_ATTRIBUTE(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) LOT_TS_ATTRIBUTE(acquired_after(__VA_ARGS__))
#define REQUIRES(...) LOT_TS_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  LOT_TS_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))
#define ACQUIRE(...) LOT_TS_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  LOT_TS_ATTRIBUTE(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) LOT_TS_ATTRIBUTE(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  LOT_TS_ATTRIBUTE(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  LOT_TS_ATTRIBUTE(release_generic_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) LOT_TS_ATTRIBUTE(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  LOT_TS_ATTRIBUTE(try_acquire_shared_capability(__VA_ARGS__))
#define EXCLUDES(...) LOT_TS_ATTRIBUTE(locks_excluded(__VA_ARGS__))
#define ASSERT_CAPABILITY(x) LOT_TS_ATTRIBUTE(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  LOT_TS_ATTRIBUTE(assert_shared_capability(x))
#define RETURN_CAPABILITY(x) LOT_TS_ATTRIBUTE(lock_returned(x))
#define NO_THREAD_SAFETY_ANALYSIS LOT_TS_ATTRIBUTE(no_thread_safety_analysis)

namespace lottery {
namespace util {

// ---------------------------------------------------------------------------
// Seq: a serialization domain (see the file comment). Enter/Exit are the
// capability's acquire/release; SeqGuard is the RAII form every in-tree use
// goes through. Release builds carry no state and compile to nothing;
// Debug builds assert the domain is never entered twice — which is exactly
// the property the SMP refactor will replace with a real lock.
// ---------------------------------------------------------------------------

class CAPABILITY("seq") Seq {
 public:
  Seq() = default;
  Seq(const Seq&) = delete;
  Seq& operator=(const Seq&) = delete;

  void Enter() ACQUIRE() {
#if LOT_INVARIANTS_ENABLED
    LOT_ASSERT(!entered_,
               "Seq: serialization domain entered twice (reentrant path "
               "that the SMP refactor would deadlock or race on)");
    entered_ = true;
#endif
  }

  void Exit() RELEASE() {
#if LOT_INVARIANTS_ENABLED
    entered_ = false;
#endif
  }

 private:
#if LOT_INVARIANTS_ENABLED
  bool entered_ = false;
#endif
};

class SCOPED_CAPABILITY SeqGuard {
 public:
  explicit SeqGuard(Seq& seq) ACQUIRE(seq) : seq_(seq) { seq_.Enter(); }
  ~SeqGuard() RELEASE() { seq_.Exit(); }
  SeqGuard(const SeqGuard&) = delete;
  SeqGuard& operator=(const SeqGuard&) = delete;

 private:
  Seq& seq_;
};

}  // namespace util
}  // namespace lottery

#endif  // SRC_UTIL_THREAD_SAFETY_H_
