// Park-Miller "minimal standard" pseudo-random number generator.
//
// This is a portable C++ reimplementation of the MIPS assembly routine in
// Appendix A of the lottery-scheduling paper (Waldspurger & Weihl, OSDI '94).
// It computes the multiplicative linear congruential generator
//
//     S' = (A * S) mod M,   A = 16807,  M = 2^31 - 1
//
// using Carta's trick [Car90]: split the 46-bit product A*S into the low 31
// bits P and the high 15 bits Q; then S' = P + Q, folding any overflow out of
// bit 31 back into the low bits. The paper reports ~10 RISC instructions per
// draw; the C++ version compiles to a comparably tiny sequence.
//
// References: [Par88] Park & Miller, CACM 31(10); [Car90] Carta, CACM 33(1).

#ifndef SRC_UTIL_FASTRAND_H_
#define SRC_UTIL_FASTRAND_H_

#include <cstdint>

namespace lottery {

// Multiplicative LCG with full period 2^31 - 2 over [1, 2^31 - 2].
//
// The generator is deliberately the same one the paper's prototype used so
// that lottery draws have the same statistical quality and cost profile.
// It is deterministic and copyable; simulations derive all randomness from a
// single seeded instance to stay reproducible.
class FastRand {
 public:
  static constexpr uint32_t kModulus = 0x7FFFFFFFu;  // 2^31 - 1 (prime)
  static constexpr uint32_t kMultiplier = 16807u;    // 7^5

  // Seeds the generator. Any seed is accepted: values are folded into the
  // valid range [1, kModulus - 1] (0 and kModulus are fixed points of the
  // recurrence and must be avoided).
  explicit FastRand(uint32_t seed = 1u) { Seed(seed); }

  void Seed(uint32_t seed) {
    seed %= kModulus;
    state_ = (seed == 0) ? 1u : seed;
  }

  // Returns the next raw value in [1, 2^31 - 2]. This mirrors the paper's
  // `fastrand(s)` exactly: same recurrence, same sequence for equal seeds.
  uint32_t Next() {
    const uint64_t product = static_cast<uint64_t>(state_) * kMultiplier;
    // P = low 31 bits, Q = high bits (the paper's R10 and R9).
    uint32_t s = static_cast<uint32_t>(product & kModulus) +
                 static_cast<uint32_t>(product >> 31);
    // Handle (rare) overflow out of bit 31, as in the appendix's
    // `overflow:` branch: clear bit 31 and add one.
    if (s & 0x80000000u) {
      s = (s & kModulus) + 1u;
    }
    state_ = s;
    return s;
  }

  // Returns a uniformly distributed value in [0, bound). Uses rejection
  // sampling so every residue is exactly equally likely (a plain modulo
  // would bias small values; lotteries are fairness-sensitive).
  // Precondition: 0 < bound <= 2^31 - 2.
  uint32_t NextBelow(uint32_t bound) {
    // Largest multiple of `bound` not exceeding the raw range size.
    // Raw outputs are in [1, kModulus - 1]; shift to [0, kModulus - 2].
    const uint32_t range = kModulus - 1u;  // number of distinct raw outputs
    const uint32_t limit = range - range % bound;
    uint32_t value = Next() - 1u;
    while (value >= limit) {
      value = Next() - 1u;
    }
    return value % bound;
  }

  // Returns a uniformly distributed 62-bit value in [0, (M-1)^2) by
  // combining two consecutive 31-bit draws. Lottery totals are expressed in
  // fixed-point base units that can exceed 32 bits, so winning-ticket
  // selection needs a wide uniform draw.
  uint64_t Next62() {
    const uint64_t hi = Next() - 1u;  // in [0, M-2]
    const uint64_t lo = Next() - 1u;
    return hi * (kModulus - 1u) + lo;
  }

  // Returns a uniformly distributed value in [0, bound) for 64-bit bounds.
  // Precondition: 0 < bound <= (M-1)^2 (~4.6e18), ample for any ticket total.
  uint64_t NextBelow64(uint64_t bound) {
    constexpr uint64_t kRange =
        static_cast<uint64_t>(kModulus - 1u) * (kModulus - 1u);
    const uint64_t limit = kRange - kRange % bound;
    uint64_t value = Next62();
    while (value >= limit) {
      value = Next62();
    }
    return value % bound;
  }

  // Returns a uniform double in [0, 1).
  double NextUnit() {
    return static_cast<double>(Next() - 1u) /
           static_cast<double>(kModulus - 1u);
  }

  // Current internal state (useful for checkpointing simulations).
  uint32_t state() const { return state_; }

  // Restores a state previously captured with state(). Unlike Seed(), this
  // is an exact inverse: SetState(s.state()) makes this generator continue
  // the captured stream bit-for-bit (speculative draw batches rely on it).
  void SetState(uint32_t state) {
    state %= kModulus;
    state_ = (state == 0) ? 1u : state;
  }

  // Convenience: splits off an independent-ish child generator. The child's
  // seed is derived from this stream through a 64-bit mix (seeding the child
  // directly with Next() would leave parent and child in identical states);
  // adequate for decorrelating workload jitter from lottery draws.
  FastRand Split();

 private:
  uint32_t state_;
};

// 64-bit splittable generator used only for seeding experiments from a
// single user-supplied `--seed` (SplitMix64, public domain constants).
// Lottery draws themselves always use FastRand to match the paper.
class SplitMix64 {
 public:
  explicit SplitMix64(uint64_t seed) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  // A nonzero 31-bit seed suitable for FastRand.
  uint32_t NextFastRandSeed() {
    return static_cast<uint32_t>(Next() % (FastRand::kModulus - 1u)) + 1u;
  }

 private:
  uint64_t state_;
};

inline FastRand FastRand::Split() {
  SplitMix64 mixer(Next());
  return FastRand(mixer.NextFastRandSeed());
}

}  // namespace lottery

#endif  // SRC_UTIL_FASTRAND_H_
