#include "src/util/flags.h"

#include <cstdlib>
#include <stdexcept>

namespace lottery {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      positional_.push_back(arg);
      continue;
    }
    const std::string body = arg.substr(2);
    const size_t eq = body.find('=');
    if (eq != std::string::npos) {
      values_[body.substr(0, eq)] = body.substr(eq + 1);
    } else {
      // Bare --name is a boolean; values always use --name=value so that
      // positional arguments after a boolean flag are unambiguous.
      values_[body] = "true";
    }
  }
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& default_value) const {
  const auto it = values_.find(name);
  return it != values_.end() ? it->second : default_value;
}

int64_t Flags::GetInt(const std::string& name, int64_t default_value) const {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return default_value;
  }
  return std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& name, double default_value) const {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return default_value;
  }
  return std::strtod(it->second.c_str(), nullptr);
}

bool Flags::GetBool(const std::string& name, bool default_value) const {
  const auto it = values_.find(name);
  if (it == values_.end()) {
    return default_value;
  }
  return it->second != "false" && it->second != "0";
}

}  // namespace lottery
