// SmallFn: a fixed-capacity, allocation-free std::function replacement.
//
// The event queue stores one callable per pending event. std::function
// heap-allocates any capture larger than its tiny internal buffer (16
// bytes in libstdc++), which at a million pending timers means a million
// extra allocations plus pointer-chasing on every dispatch. SmallFn stores
// the callable inline — always — and refuses at compile time anything that
// does not fit, so event records stay flat and pool-allocated.
//
// Move-only (event handlers run once and are never copied), invocable
// exactly like std::function, empty-testable via operator bool. Invoking
// an empty SmallFn is undefined (the queue never does).

#ifndef SRC_UTIL_SMALL_FN_H_
#define SRC_UTIL_SMALL_FN_H_

#include <cstddef>
#include <new>
#include <type_traits>
#include <utility>

namespace lottery {
namespace util {

template <typename Signature, size_t kInlineBytes = 56>
class SmallFn;  // primary template intentionally undefined

template <typename R, typename... Args, size_t kInlineBytes>
class SmallFn<R(Args...), kInlineBytes> {
 public:
  SmallFn() = default;

  template <typename F,
            typename = std::enable_if_t<!std::is_same_v<
                std::decay_t<F>, SmallFn>>>
  SmallFn(F&& f) {  // NOLINT(google-explicit-constructor): mirrors std::function
    using Fn = std::decay_t<F>;
    static_assert(sizeof(Fn) <= kInlineBytes,
                  "callable too large for SmallFn's inline buffer; shrink "
                  "the capture or raise kInlineBytes");
    static_assert(alignof(Fn) <= alignof(std::max_align_t),
                  "over-aligned callables are not supported");
    static_assert(std::is_nothrow_move_constructible_v<Fn>,
                  "SmallFn requires nothrow-movable callables");
    ::new (static_cast<void*>(buf_)) Fn(std::forward<F>(f));
    invoke_ = [](void* self, Args&&... args) -> R {
      return (*std::launder(reinterpret_cast<Fn*>(self)))(
          std::forward<Args>(args)...);
    };
    manage_ = [](void* self, void* other, Op op) {
      Fn* fn = std::launder(reinterpret_cast<Fn*>(self));
      if (op == Op::kMoveTo) {
        ::new (other) Fn(std::move(*fn));
      }
      fn->~Fn();
    };
  }

  SmallFn(SmallFn&& other) noexcept { MoveFrom(other); }
  SmallFn& operator=(SmallFn&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(other);
    }
    return *this;
  }
  SmallFn(const SmallFn&) = delete;
  SmallFn& operator=(const SmallFn&) = delete;

  ~SmallFn() { Reset(); }

  explicit operator bool() const { return invoke_ != nullptr; }

  R operator()(Args... args) {
    return invoke_(buf_, std::forward<Args>(args)...);
  }

 private:
  enum class Op { kMoveTo, kDestroy };
  using Invoke = R (*)(void*, Args&&...);
  using Manage = void (*)(void* self, void* other, Op);

  void MoveFrom(SmallFn& other) {
    if (other.invoke_ != nullptr) {
      other.manage_(other.buf_, buf_, Op::kMoveTo);
      invoke_ = other.invoke_;
      manage_ = other.manage_;
      other.invoke_ = nullptr;
      other.manage_ = nullptr;
    }
  }

  void Reset() {
    if (manage_ != nullptr) {
      manage_(buf_, nullptr, Op::kDestroy);
      invoke_ = nullptr;
      manage_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineBytes];
  Invoke invoke_ = nullptr;
  Manage manage_ = nullptr;
};

}  // namespace util
}  // namespace lottery

#endif  // SRC_UTIL_SMALL_FN_H_
