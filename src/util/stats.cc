// lotlint: file float-ok (descriptive statistics are float by design; results
// feed reports and telemetry, never ticket or pass state)
#include "src/util/stats.h"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace lottery {

void RunningStat::Add(double x) {
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStat::Merge(const RunningStat& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void RunningStat::Reset() { *this = RunningStat(); }

double RunningStat::variance() const {
  return count_ > 0 ? m2_ / static_cast<double>(count_) : 0.0;
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double RunningStat::sample_variance() const {
  return count_ > 1 ? m2_ / static_cast<double>(count_ - 1) : 0.0;
}

double RunningStat::sample_stddev() const {
  return std::sqrt(sample_variance());
}

double RunningStat::cv() const {
  const double m = mean();
  return m != 0.0 ? stddev() / m : 0.0;
}

Histogram::Histogram(double lo, double hi, size_t num_buckets)
    : lo_(lo),
      width_((hi - lo) / static_cast<double>(num_buckets)),
      counts_(num_buckets, 0) {
  if (num_buckets == 0 || !(hi > lo)) {
    throw std::invalid_argument("Histogram: empty range");
  }
}

void Histogram::Add(double x) {
  stat_.Add(x);
  if (x < lo_) {
    ++underflow_;
    return;
  }
  const double offset = (x - lo_) / width_;
  if (offset >= static_cast<double>(counts_.size())) {
    ++overflow_;
    return;
  }
  ++counts_[static_cast<size_t>(offset)];
}

double Histogram::bucket_lo(size_t i) const {
  return lo_ + width_ * static_cast<double>(i);
}

double Histogram::bucket_hi(size_t i) const {
  return lo_ + width_ * static_cast<double>(i + 1);
}

double Histogram::Percentile(double fraction) const {
  fraction = std::clamp(fraction, 0.0, 1.0);
  const int64_t in_range = total() - underflow_ - overflow_;
  if (in_range <= 0) {
    return lo_;
  }
  const double target =
      fraction * static_cast<double>(in_range);
  double cumulative = 0.0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    const double next = cumulative + static_cast<double>(counts_[i]);
    if (next >= target) {
      const double within =
          counts_[i] > 0
              ? (target - cumulative) / static_cast<double>(counts_[i])
              : 0.0;
      return bucket_lo(i) + within * width_;
    }
    cumulative = next;
  }
  return bucket_hi(counts_.size() - 1);
}

std::string Histogram::ToAscii(size_t max_width) const {
  int64_t peak = 1;
  for (const int64_t c : counts_) {
    peak = std::max(peak, c);
  }
  std::ostringstream out;
  for (size_t i = 0; i < counts_.size(); ++i) {
    const size_t bar = static_cast<size_t>(
        static_cast<double>(counts_[i]) / static_cast<double>(peak) *
        static_cast<double>(max_width));
    out << "[" << bucket_lo(i) << ", " << bucket_hi(i) << ") "
        << std::string(bar, '#') << " " << counts_[i] << "\n";
  }
  return out.str();
}

BinomialMoments BinomialStats(double n, double p) {
  BinomialMoments m{};
  m.mean = n * p;
  m.variance = n * p * (1.0 - p);
  m.stddev = std::sqrt(m.variance);
  m.cv = m.mean > 0.0 ? std::sqrt((1.0 - p) / (n * p)) : 0.0;
  return m;
}

GeometricMoments GeometricStats(double p) {
  GeometricMoments m{};
  if (p <= 0.0) {
    m.mean = std::numeric_limits<double>::infinity();
    m.variance = std::numeric_limits<double>::infinity();
    m.stddev = std::numeric_limits<double>::infinity();
    return m;
  }
  m.mean = 1.0 / p;
  m.variance = (1.0 - p) / (p * p);
  m.stddev = std::sqrt(m.variance);
  return m;
}

double ChiSquareStatistic(const std::vector<int64_t>& observed,
                          const std::vector<double>& expected) {
  if (observed.size() != expected.size()) {
    throw std::invalid_argument("ChiSquareStatistic: size mismatch");
  }
  double chi2 = 0.0;
  for (size_t i = 0; i < observed.size(); ++i) {
    if (expected[i] <= 0.0) {
      throw std::invalid_argument("ChiSquareStatistic: expected <= 0");
    }
    const double d = static_cast<double>(observed[i]) - expected[i];
    chi2 += d * d / expected[i];
  }
  return chi2;
}

namespace {

// Inverse standard-normal CDF via Acklam-style rational approximation
// (Beasley-Springer-Moro coefficients; sufficient accuracy for test
// thresholds).
double InverseNormal(double p) {
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  const double plow = 0.02425;
  if (p < plow) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= 1.0 - plow) {
    const double q = p - 0.5;
    const double r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
            a[5]) *
           q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  const double q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
           c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

}  // namespace

double ChiSquareCritical(int df, double alpha) {
  if (df < 1) {
    throw std::invalid_argument("ChiSquareCritical: df < 1");
  }
  const double z = InverseNormal(1.0 - alpha);
  // Wilson-Hilferty: chi2 ~ df * (1 - 2/(9 df) + z sqrt(2/(9 df)))^3.
  const double k = static_cast<double>(df);
  const double t = 1.0 - 2.0 / (9.0 * k) + z * std::sqrt(2.0 / (9.0 * k));
  return k * t * t * t;
}

double KsStatisticUniform(const std::vector<double>& samples, double lo,
                          double hi) {
  if (samples.empty()) {
    throw std::invalid_argument("KsStatisticUniform: no samples");
  }
  if (!(hi > lo)) {
    throw std::invalid_argument("KsStatisticUniform: empty range");
  }
  std::vector<double> sorted = samples;
  std::sort(sorted.begin(), sorted.end());
  const double n = static_cast<double>(sorted.size());
  double sup = 0.0;
  for (size_t i = 0; i < sorted.size(); ++i) {
    const double f =
        std::clamp((sorted[i] - lo) / (hi - lo), 0.0, 1.0);
    // Both one-sided gaps around the step at sample i.
    const double above = static_cast<double>(i + 1) / n - f;
    const double below = f - static_cast<double>(i) / n;
    sup = std::max({sup, above, below});
  }
  return sup;
}

double KsCritical(size_t n, double alpha) {
  if (n == 0) {
    throw std::invalid_argument("KsCritical: n == 0");
  }
  if (!(alpha > 0.0 && alpha < 1.0)) {
    throw std::invalid_argument("KsCritical: alpha outside (0,1)");
  }
  const double c = std::sqrt(-std::log(alpha / 2.0) / 2.0);
  return c / std::sqrt(static_cast<double>(n));
}

ProportionInterval BinomialConfidence(int64_t successes, int64_t trials,
                                      double confidence) {
  if (trials <= 0 || successes < 0 || successes > trials) {
    throw std::invalid_argument("BinomialConfidence: bad counts");
  }
  if (!(confidence > 0.0 && confidence < 1.0)) {
    throw std::invalid_argument("BinomialConfidence: confidence outside (0,1)");
  }
  const double z = InverseNormal(0.5 + confidence / 2.0);
  const double n = static_cast<double>(trials);
  const double phat = static_cast<double>(successes) / n;
  const double z2 = z * z;
  const double denom = 1.0 + z2 / n;
  const double center = (phat + z2 / (2.0 * n)) / denom;
  const double margin =
      z * std::sqrt(phat * (1.0 - phat) / n + z2 / (4.0 * n * n)) / denom;
  return ProportionInterval{std::max(0.0, center - margin),
                            std::min(1.0, center + margin)};
}

LinearFit FitLine(const std::vector<double>& xs,
                  const std::vector<double>& ys) {
  if (xs.size() != ys.size() || xs.size() < 2) {
    throw std::invalid_argument("FitLine: need >= 2 paired points");
  }
  const double n = static_cast<double>(xs.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0, syy = 0.0;
  for (size_t i = 0; i < xs.size(); ++i) {
    sx += xs[i];
    sy += ys[i];
    sxx += xs[i] * xs[i];
    sxy += xs[i] * ys[i];
    syy += ys[i] * ys[i];
  }
  const double denom = n * sxx - sx * sx;
  if (denom == 0.0) {
    throw std::invalid_argument("FitLine: degenerate x values");
  }
  LinearFit fit{};
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  const double sst = syy - sy * sy / n;
  if (sst > 0.0) {
    double sse = 0.0;
    for (size_t i = 0; i < xs.size(); ++i) {
      const double e = ys[i] - (fit.intercept + fit.slope * xs[i]);
      sse += e * e;
    }
    fit.r2 = 1.0 - sse / sst;
  } else {
    fit.r2 = 1.0;
  }
  return fit;
}

}  // namespace lottery
