#include "src/util/invariant.h"

#include <cstdio>
#include <cstdlib>

namespace lottery {
namespace internal {

namespace {
uint64_t g_checks_run = 0;
}  // namespace

void InvariantFailure(const char* expr, const char* file, int line,
                      const std::string& message) {
  std::fprintf(stderr, "LOT_ASSERT failed: %s @ %s:%d: %s\n", expr, file,
               line, message.c_str());
  std::fflush(stderr);
  std::abort();
}

uint64_t InvariantChecksRun() { return g_checks_run; }

void NoteInvariantCheck() { ++g_checks_run; }

}  // namespace internal
}  // namespace lottery
