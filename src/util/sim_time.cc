#include "src/util/sim_time.h"

#include <cstdio>

namespace lottery {

std::string SimDuration::ToString() const {
  char buf[32];
  if (ns_ % 1000000000 == 0) {
    std::snprintf(buf, sizeof(buf), "%llds",
                  static_cast<long long>(ns_ / 1000000000));
  } else if (ns_ % 1000000 == 0) {
    std::snprintf(buf, sizeof(buf), "%lldms",
                  static_cast<long long>(ns_ / 1000000));
  } else if (ns_ % 1000 == 0) {
    std::snprintf(buf, sizeof(buf), "%lldus",
                  static_cast<long long>(ns_ / 1000));
  } else {
    std::snprintf(buf, sizeof(buf), "%lldns", static_cast<long long>(ns_));
  }
  return buf;
}

std::string SimTime::ToString() const {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "t=%.3fs", ToSecondsF());
  return buf;
}

}  // namespace lottery
