// Simulated-time types shared by the scheduler core and the simulator.
//
// The whole reproduction runs on a virtual clock: SimDuration is a signed
// nanosecond count and SimTime is a point on that clock. Strong types keep
// points and deltas from being mixed up, and nanoseconds give headroom for
// hour-long simulated experiments (|range| ~ 292 years) while representing
// the paper's 100 ms and 10 ms quanta exactly.

#ifndef SRC_UTIL_SIM_TIME_H_
#define SRC_UTIL_SIM_TIME_H_

#include <compare>
#include <cstdint>
#include <string>

namespace lottery {

class SimDuration {
 public:
  constexpr SimDuration() : ns_(0) {}
  static constexpr SimDuration Nanos(int64_t n) { return SimDuration(n); }
  static constexpr SimDuration Micros(int64_t n) {
    return SimDuration(n * 1000);
  }
  static constexpr SimDuration Millis(int64_t n) {
    return SimDuration(n * 1000000);
  }
  static constexpr SimDuration Seconds(int64_t n) {
    return SimDuration(n * 1000000000);
  }
  static constexpr SimDuration SecondsF(double s) {
    return SimDuration(static_cast<int64_t>(s * 1e9));
  }

  constexpr int64_t nanos() const { return ns_; }
  constexpr double ToSecondsF() const { return static_cast<double>(ns_) / 1e9; }
  constexpr double ToMillisF() const { return static_cast<double>(ns_) / 1e6; }

  constexpr auto operator<=>(const SimDuration&) const = default;
  constexpr SimDuration operator+(SimDuration o) const {
    return SimDuration(ns_ + o.ns_);
  }
  constexpr SimDuration operator-(SimDuration o) const {
    return SimDuration(ns_ - o.ns_);
  }
  constexpr SimDuration operator-() const { return SimDuration(-ns_); }
  constexpr SimDuration operator*(int64_t k) const {
    return SimDuration(ns_ * k);
  }
  constexpr SimDuration operator/(int64_t k) const {
    return SimDuration(ns_ / k);
  }
  // Ratio of two durations (e.g. fraction of quantum consumed).
  constexpr double Ratio(SimDuration denom) const {
    return static_cast<double>(ns_) / static_cast<double>(denom.ns_);
  }
  SimDuration& operator+=(SimDuration o) {
    ns_ += o.ns_;
    return *this;
  }
  SimDuration& operator-=(SimDuration o) {
    ns_ -= o.ns_;
    return *this;
  }

  std::string ToString() const;

 private:
  explicit constexpr SimDuration(int64_t ns) : ns_(ns) {}
  int64_t ns_;
};

class SimTime {
 public:
  constexpr SimTime() : ns_(0) {}
  static constexpr SimTime FromNanos(int64_t n) { return SimTime(n); }
  static constexpr SimTime Zero() { return SimTime(0); }

  constexpr int64_t nanos() const { return ns_; }
  constexpr double ToSecondsF() const { return static_cast<double>(ns_) / 1e9; }

  constexpr auto operator<=>(const SimTime&) const = default;
  constexpr SimTime operator+(SimDuration d) const {
    return SimTime(ns_ + d.nanos());
  }
  constexpr SimTime operator-(SimDuration d) const {
    return SimTime(ns_ - d.nanos());
  }
  constexpr SimDuration operator-(SimTime o) const {
    return SimDuration::Nanos(ns_ - o.ns_);
  }
  SimTime& operator+=(SimDuration d) {
    ns_ += d.nanos();
    return *this;
  }

  std::string ToString() const;

 private:
  explicit constexpr SimTime(int64_t ns) : ns_(ns) {}
  int64_t ns_;
};

}  // namespace lottery

#endif  // SRC_UTIL_SIM_TIME_H_
