#include "src/util/table.h"

#include <algorithm>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace lottery {

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  if (header_.empty()) {
    throw std::invalid_argument("TextTable: empty header");
  }
}

void TextTable::AddRow(std::vector<std::string> cells) {
  if (cells.size() != header_.size()) {
    throw std::invalid_argument("TextTable: row width mismatch");
  }
  rows_.push_back(std::move(cells));
}

void TextTable::Print(std::ostream& out) const { out << ToString(); }

std::string TextTable::ToString() const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) {
    widths[c] = header_[c].size();
  }
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : "  ") << std::left
          << std::setw(static_cast<int>(widths[c])) << row[c];
    }
    out << "\n";
  };
  emit_row(header_);
  size_t total = header_.size() - 1;
  for (const size_t w : widths) {
    total += w + 1;
  }
  out << std::string(total, '-') << "\n";
  for (const auto& row : rows_) {
    emit_row(row);
  }
  return out.str();
}

std::string TextTable::ToCsv() const {
  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      out << (c == 0 ? "" : ",") << row[c];
    }
    out << "\n";
  };
  emit(header_);
  for (const auto& row : rows_) {
    emit(row);
  }
  return out.str();
}

std::string FormatDouble(double value, int digits) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(digits) << value;
  return out.str();
}

std::string FormatRatio(const std::vector<double>& parts, int digits) {
  if (parts.empty()) {
    return "";
  }
  const double base = parts.back() != 0.0 ? parts.back() : 1.0;
  std::ostringstream out;
  for (size_t i = 0; i < parts.size(); ++i) {
    out << (i == 0 ? "" : " : ") << FormatDouble(parts[i] / base, digits);
  }
  return out.str();
}

namespace table_internal {
std::string Stringify(const std::string& v) { return v; }
std::string Stringify(const char* v) { return v; }
std::string Stringify(double v) { return FormatDouble(v, 3); }
std::string Stringify(float v) { return FormatDouble(v, 3); }
}  // namespace table_internal

}  // namespace lottery
