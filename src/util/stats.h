// Statistics helpers used by tests and by the experiment harnesses.
//
// The paper reasons about lottery fairness through the binomial distribution
// (number of lotteries won) and the geometric distribution (lotteries until
// first win); see Section 2. The helpers here provide those moments plus the
// generic accumulators (running mean/variance, histograms, least squares)
// that the figure-reproduction benches need.

#ifndef SRC_UTIL_STATS_H_
#define SRC_UTIL_STATS_H_

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace lottery {

// Numerically stable single-pass accumulator (Welford's algorithm).
class RunningStat {
 public:
  void Add(double x);
  void Merge(const RunningStat& other);
  void Reset();

  int64_t count() const { return count_; }
  double mean() const { return count_ > 0 ? mean_ : 0.0; }
  // Population variance / stddev (divide by n).
  double variance() const;
  double stddev() const;
  // Sample variance / stddev (divide by n-1).
  double sample_variance() const;
  double sample_stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return sum_; }
  // Coefficient of variation: stddev / mean (0 when mean == 0).
  double cv() const;

 private:
  int64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

// Fixed-width bucket histogram over [lo, hi); values outside the range are
// counted in saturating under/overflow buckets. Used for the Figure 11
// mutex-waiting-time histograms.
class Histogram {
 public:
  Histogram(double lo, double hi, size_t num_buckets);

  void Add(double x);

  size_t num_buckets() const { return counts_.size(); }
  double bucket_lo(size_t i) const;
  double bucket_hi(size_t i) const;
  int64_t bucket_count(size_t i) const { return counts_[i]; }
  int64_t underflow() const { return underflow_; }
  int64_t overflow() const { return overflow_; }
  int64_t total() const { return stat_.count(); }
  const RunningStat& stat() const { return stat_; }

  // Value below which `fraction` (in [0,1]) of observations fall, estimated
  // by linear interpolation within buckets.
  double Percentile(double fraction) const;

  // Renders an ASCII bar chart, one line per bucket, for bench output.
  std::string ToAscii(size_t max_width = 50) const;

 private:
  double lo_;
  double width_;
  std::vector<int64_t> counts_;
  int64_t underflow_ = 0;
  int64_t overflow_ = 0;
  RunningStat stat_;
};

// Moments the paper quotes for n identical lotteries with win probability p
// (Section 2): wins are binomial, waits are geometric.
struct BinomialMoments {
  double mean;      // n * p
  double variance;  // n * p * (1 - p)
  double stddev;
  double cv;        // sqrt((1-p)/(n*p)) — the paper's sqrt((1-p)/np)
};
BinomialMoments BinomialStats(double n, double p);

struct GeometricMoments {
  double mean;      // 1 / p  (expected lotteries until first win)
  double variance;  // (1 - p) / p^2
  double stddev;
};
GeometricMoments GeometricStats(double p);

// Pearson chi-square statistic for observed vs. expected counts.
// `expected[i]` must be > 0 for all i.
double ChiSquareStatistic(const std::vector<int64_t>& observed,
                          const std::vector<double>& expected);

// Approximate upper critical value of the chi-square distribution with `df`
// degrees of freedom at upper-tail probability `alpha` (e.g. 0.01), using
// the Wilson-Hilferty cube approximation. Accurate to a few percent for
// df >= 3, which is ample for pass/fail property tests.
double ChiSquareCritical(int df, double alpha);

// One-sample Kolmogorov-Smirnov statistic of `samples` against the uniform
// distribution on [lo, hi]: sup |F_empirical - F_uniform|. `samples` need
// not be sorted (a sorted copy is made). Requires hi > lo and at least one
// sample. The conformance suite uses it to test that a thread's dispatch
// times are spread evenly across a run rather than bunched.
double KsStatisticUniform(const std::vector<double>& samples, double lo,
                          double hi);

// Critical value for the one-sample KS test at significance `alpha`:
// c(alpha) / sqrt(n) with c(alpha) = sqrt(-ln(alpha/2) / 2), the standard
// large-n approximation (accurate to a few percent for n >= 35).
double KsCritical(size_t n, double alpha);

// Wilson score interval for a binomial proportion: observing `successes` in
// `trials`, the returned [lo, hi] covers the true probability with
// approximately `confidence` (e.g. 0.99). Well-behaved near 0 and 1, unlike
// the normal approximation.
struct ProportionInterval {
  double lo;
  double hi;
};
ProportionInterval BinomialConfidence(int64_t successes, int64_t trials,
                                      double confidence);

// Least-squares slope/intercept of y on x. Requires xs.size() == ys.size()
// and at least two distinct x values.
struct LinearFit {
  double slope;
  double intercept;
  double r2;  // coefficient of determination
};
LinearFit FitLine(const std::vector<double>& xs, const std::vector<double>& ys);

}  // namespace lottery

#endif  // SRC_UTIL_STATS_H_
