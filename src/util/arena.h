// Slab/arena allocation for the simulation hot substrate.
//
// Million-thread runs die on per-object malloc: a heap allocation per
// event, thread record, currency and ticket costs a lock-free-list walk,
// 16+ bytes of allocator metadata, and — worse — scatters hot records
// across the address space. The two containers here fix that with the
// classic `entry_pool` idiom (a fixed slab carved into records threaded on
// an intrusive free list):
//
//   * SlabPool<T>      — typed object pool. New/Delete run constructors and
//     destructors in place inside large slabs; freed records go on an
//     intrusive free list and are reused LIFO (hot in cache). Addresses are
//     stable for the object's lifetime; memory is returned to the OS only
//     when the pool dies.
//   * ChunkedVector<T> — an index-addressed arena: a vector that grows in
//     fixed-size chunks so elements never move (unlike std::vector) and
//     growth never copies. Records addressed by dense integer ids (thread
//     ids, event-node indices) live here.
//
// Neither container is thread-safe; the simulator is single-threaded by
// design (determinism contract, DESIGN.md). Neither uses unordered
// containers, wall clocks, or floats, so both are safe in scheduling paths.

#ifndef SRC_UTIL_ARENA_H_
#define SRC_UTIL_ARENA_H_

#include <cstddef>
#include <memory>
#include <new>
#include <utility>
#include <vector>

namespace lottery {
namespace util {

// Typed slab pool. kSlabObjects is the number of records per slab; slabs
// are allocated on demand and never freed until the pool is destroyed.
// The caller owns object lifetimes: every New must be matched by a Delete
// (or the pool must outlive any need to run destructors — the pool itself
// only releases raw storage).
template <typename T, size_t kSlabObjects = 1024>
class SlabPool {
  static_assert(kSlabObjects > 0, "slab must hold at least one object");

 public:
  SlabPool() = default;
  SlabPool(const SlabPool&) = delete;
  SlabPool& operator=(const SlabPool&) = delete;

  template <typename... Args>
  T* New(Args&&... args) {
    if (free_ == nullptr) {
      Grow();
    }
    Node* node = free_;
    free_ = node->next;
    T* object = ::new (static_cast<void*>(node->storage))
        T(std::forward<Args>(args)...);
    ++live_;
    return object;
  }

  void Delete(T* object) {
    object->~T();
    Node* node = std::launder(reinterpret_cast<Node*>(object));
    node->next = free_;
    free_ = node;
    --live_;
  }

  size_t live() const { return live_; }
  size_t capacity() const { return slabs_.size() * kSlabObjects; }
  size_t slabs() const { return slabs_.size(); }

 private:
  union Node {
    Node* next;
    alignas(T) unsigned char storage[sizeof(T)];
  };

  void Grow() {
    slabs_.push_back(std::make_unique<Node[]>(kSlabObjects));
    Node* slab = slabs_.back().get();
    // Thread the fresh slab onto the free list in reverse so allocation
    // order walks the slab front to back (friendly to the prefetcher).
    for (size_t i = kSlabObjects; i > 0; --i) {
      slab[i - 1].next = free_;
      free_ = &slab[i - 1];
    }
  }

  std::vector<std::unique_ptr<Node[]>> slabs_;
  Node* free_ = nullptr;
  size_t live_ = 0;
};

// Chunked growable array with stable addresses: operator[] is two loads
// (chunk pointer, then element), EmplaceBack never moves existing elements.
// Elements are destroyed only when the container is destroyed or cleared.
template <typename T, size_t kChunkSize = 4096>
class ChunkedVector {
  static_assert(kChunkSize > 0, "chunk must hold at least one element");

 public:
  ChunkedVector() = default;
  ChunkedVector(const ChunkedVector&) = delete;
  ChunkedVector& operator=(const ChunkedVector&) = delete;
  ~ChunkedVector() { clear(); }

  template <typename... Args>
  T& EmplaceBack(Args&&... args) {
    const size_t chunk = size_ / kChunkSize;
    const size_t offset = size_ % kChunkSize;
    if (chunk == chunks_.size()) {
      chunks_.push_back(std::make_unique<Chunk>());
    }
    T* slot = ::new (static_cast<void*>(Slot(chunk, offset)))
        T(std::forward<Args>(args)...);
    ++size_;
    return *slot;
  }

  T& operator[](size_t i) {
    return *std::launder(
        reinterpret_cast<T*>(Slot(i / kChunkSize, i % kChunkSize)));
  }
  const T& operator[](size_t i) const {
    return *std::launder(
        reinterpret_cast<const T*>(Slot(i / kChunkSize, i % kChunkSize)));
  }

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  void clear() {
    for (size_t i = size_; i > 0; --i) {
      (*this)[i - 1].~T();
    }
    size_ = 0;
    chunks_.clear();
  }

 private:
  struct Chunk {
    alignas(T) unsigned char bytes[sizeof(T) * kChunkSize];
  };

  unsigned char* Slot(size_t chunk, size_t offset) {
    return chunks_[chunk]->bytes + offset * sizeof(T);
  }
  const unsigned char* Slot(size_t chunk, size_t offset) const {
    return chunks_[chunk]->bytes + offset * sizeof(T);
  }

  std::vector<std::unique_ptr<Chunk>> chunks_;
  size_t size_ = 0;
};

}  // namespace util
}  // namespace lottery

#endif  // SRC_UTIL_ARENA_H_
