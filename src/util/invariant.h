// LOT_ASSERT family: runtime invariant checks, compiled out in Release.
//
// The lottery's fairness guarantees rest on invariants — ticket conservation
// under transfers, currency-graph acyclicity, compensation factors bounded
// by q/f — that no unit test can police at every mutation site. LOT_ASSERT
// turns them into executable documentation: Debug builds (or any build
// configured with -DLOTTERY_INVARIANTS=ON) check them on the hot paths and
// abort with a precise message on the first violation; Release builds
// compile every check down to nothing, so the fig4–fig11 reproductions pay
// zero cost.
//
// Conventions:
//   * LOT_ASSERT(cond, msg)  — fundamental invariant; msg is any expression
//     convertible to std::string, evaluated only on failure.
//   * LOT_DCHECK_* macros (see src/core/invariants.h) — whole-structure
//     sweeps (conservation, acyclicity) placed at mutator exits.
//   * Failure calls std::abort() after printing to stderr, so gtest death
//     tests can match the message.
//
// The static half of the contract lives in tools/lotlint (rule S1 requires
// every public CurrencyTable/LotteryScheduler mutator to carry a
// LOT_-family check); see DESIGN.md "Determinism contract".

#ifndef SRC_UTIL_INVARIANT_H_
#define SRC_UTIL_INVARIANT_H_

#include <cstdint>
#include <string>

namespace lottery {
namespace internal {

// Prints "LOT_ASSERT failed ..." to stderr and aborts. Never returns.
[[noreturn]] void InvariantFailure(const char* expr, const char* file,
                                   int line, const std::string& message);

// Count of LOT_ASSERT conditions evaluated so far in this process. Lets
// pass-through tests prove the checks were actually exercised (a Release
// binary reports 0).
uint64_t InvariantChecksRun();
void NoteInvariantCheck();

}  // namespace internal
}  // namespace lottery

#if defined(LOTTERY_INVARIANTS)
#define LOT_INVARIANTS_ENABLED 1
#define LOT_ASSERT(cond, msg)                                            \
  do {                                                                   \
    ::lottery::internal::NoteInvariantCheck();                           \
    if (!(cond)) {                                                       \
      ::lottery::internal::InvariantFailure(#cond, __FILE__, __LINE__,   \
                                            (msg));                      \
    }                                                                    \
  } while (false)
#else
#define LOT_INVARIANTS_ENABLED 0
// Arguments stay in a dead branch so they still typecheck (and their
// variables count as used) but fold away entirely.
#define LOT_ASSERT(cond, msg)     \
  do {                            \
    if (false) {                  \
      static_cast<void>(cond);    \
      static_cast<void>(msg);     \
    }                             \
  } while (false)
#endif

#endif  // SRC_UTIL_INVARIANT_H_
