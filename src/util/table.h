// Plain-text table and CSV rendering for the experiment harnesses.
//
// Every bench binary prints the rows/series of the paper figure or table it
// regenerates; TextTable keeps that output aligned and diffable, and the CSV
// form makes it easy to re-plot.

#ifndef SRC_UTIL_TABLE_H_
#define SRC_UTIL_TABLE_H_

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

namespace lottery {

// Column-aligned text table. Usage:
//   TextTable t({"ratio", "observed", "error"});
//   t.AddRow({"2:1", "2.03", "1.5%"});
//   t.Print(std::cout);
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);
  // Convenience: formats arbitrary streamable values into a row.
  template <typename... Ts>
  void AddValues(const Ts&... values);

  size_t num_rows() const { return rows_.size(); }
  void Print(std::ostream& out) const;
  std::string ToString() const;
  // Same data, comma-separated with header.
  std::string ToCsv() const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats a double with `digits` places after the decimal point.
std::string FormatDouble(double value, int digits = 2);

// Formats a ratio like "2.97 : 1" from parts normalized by the last part.
std::string FormatRatio(const std::vector<double>& parts, int digits = 2);

namespace table_internal {
std::string Stringify(const std::string& v);
std::string Stringify(const char* v);
std::string Stringify(double v);
std::string Stringify(float v);
template <typename T>
std::string Stringify(const T& v) {
  return std::to_string(v);
}
}  // namespace table_internal

template <typename... Ts>
void TextTable::AddValues(const Ts&... values) {
  AddRow({table_internal::Stringify(values)...});
}

}  // namespace lottery

#endif  // SRC_UTIL_TABLE_H_
