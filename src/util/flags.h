// Minimal command-line flag parsing for bench and example binaries.
//
// Syntax: --name=value; bare --name sets a bool flag true. Non-flag
// arguments are collected positionally.

#ifndef SRC_UTIL_FLAGS_H_
#define SRC_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace lottery {

class Flags {
 public:
  Flags() = default;
  // Parses argv; does not take ownership. Positional (non --) arguments are
  // kept in order and available via positional().
  Flags(int argc, char** argv);

  bool Has(const std::string& name) const;
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  int64_t GetInt(const std::string& name, int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

  const std::vector<std::string>& positional() const { return positional_; }

 private:
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace lottery

#endif  // SRC_UTIL_FLAGS_H_
