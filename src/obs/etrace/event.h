// Compact typed events for the structured trace (src/obs/etrace/).
//
// An Event is a 48-byte POD: a sim timestamp, three 64-bit payload words,
// two 32-bit ids, an interned-string id, a type tag, and a flags word. The
// meaning of the payload fields depends on the type (documented per
// enumerator below). Events never carry owned strings — names are interned
// into the TraceBuffer's string table at registration time, so recording
// stays allocation-free.
//
// The schema is append-only: enumerator values are stable across versions
// because trace files written by one build must load in another (that is
// what makes `tracectl diff` across a refactor meaningful).

#ifndef SRC_OBS_ETRACE_EVENT_H_
#define SRC_OBS_ETRACE_EVENT_H_

#include <cstdint>

namespace lottery {
namespace etrace {

// Per-category runtime enable bits (TraceBuffer::mask()). A category that
// is masked off costs one load+test per hook; see On() in trace_buffer.h.
enum Category : uint32_t {
  kCatSched = 1u << 0,            // slices, wakes, thread names
  kCatLottery = 1u << 1,          // decision events
  kCatLotterySnapshot = 1u << 2,  // per-decision candidate dumps (verbose)
  kCatCurrency = 1u << 3,         // currency create/destroy/fund/reprice
  kCatTransfer = 1u << 4,         // ticket-transfer lifecycle
  kCatRpc = 1u << 5,              // send/receive/reply with span ids
  kCatMutex = 1u << 6,            // acquire/contend/grant/release
  kCatDisk = 1u << 7,             // request submit/complete
  kCatFault = 1u << 8,            // fault-injector firings
  kCatTimeseries = 1u << 9,       // fairness-lag auditor anomalies
};

inline constexpr uint32_t kAllCategories = (1u << 10) - 1u;
// kCatLotterySnapshot emits one event per runnable client per decision;
// it is opt-in (tracectl record --snapshots) rather than default.
inline constexpr uint32_t kDefaultCategories =
    kAllCategories & ~static_cast<uint32_t>(kCatLotterySnapshot);

// Stable type tags. Field conventions: `a`/`b` are small ids (thread id,
// cpu, slot); `name` is an interned-string id (0 = none); `v1..v3` are
// type-specific 64-bit payloads.
enum class EventType : uint16_t {
  kNone = 0,
  // a=tid, name=thread name. Emitted once at Spawn.
  kThreadName = 1,
  // a=tid, b=cpu, t_ns=slice start, v1=cpu used (ns), flags=disposition
  // (kSlice* constants below).
  kSlice = 2,
  // a=tid, t_ns=wake time. Unblock/timer wake entering the run queue.
  kWake = 3,
  // a=winner tid, v1=drawn random value, v2=total tickets (base units),
  // v3=winner's ticket value, flags=kDecision* bits.
  kDecision = 4,
  // a=tid, b=draw-order index, v1=client ticket value. Snapshot of one
  // runnable client, recorded immediately before its kDecision.
  kCandidate = 5,
  // name=currency name. v1=initial amount for kFund/kUnfund.
  kCurrencyCreate = 6,
  kCurrencyDestroy = 7,
  kCurrencyRetire = 8,
  // name=funded currency, a=ticket id, v1=amount.
  kFund = 9,
  kUnfund = 10,
  // name=currency, v1=new value (base units), v2=amount denominated.
  kReprice = 11,
  // a=ticket id, name=target currency, v1=amount.
  kTransferStart = 12,
  kTransferRetarget = 13,
  kTransferEnd = 14,
  // a=client tid, v1=span id, v2=payload, name=port.
  kRpcSend = 15,
  // a=server tid, v1=span id, name=port.
  kRpcRecv = 16,
  // a=server tid, b=client tid, v1=span id, v2=latency (ns), name=port.
  kRpcReply = 17,
  // a=tid, name=mutex. Uncontended acquisition.
  kMutexAcquire = 18,
  // a=tid, name=mutex. Caller joined the wait queue.
  kMutexContend = 19,
  // a=tid, v1=waited (ns), name=mutex. Waiter won the release lottery.
  kMutexGrant = 20,
  // a=tid, name=mutex.
  kMutexRelease = 21,
  // a=client tid, v1=bytes, name=disk.
  kDiskSubmit = 22,
  // a=client tid, v1=bytes, v2=queue+service delay (ns), flags=1 if the
  // request timed out and was retried at least once, name=disk.
  kDiskComplete = 23,
  // a=fault class (FaultClass enumerator), name=class name.
  kFault = 24,
  // SMP work stealing (src/sched/smp/). a=tid, b=destination cpu,
  // v1=source cpu, v2=stolen ticket value (raw Funding units).
  // kSteal: idle CPU pulled work; kMigrate: periodic rebalance moved it
  // (v3=ticket imbalance that triggered the move).
  kSteal = 25,
  kMigrate = 26,
  // Fairness-lag auditor (src/obs/timeseries/). a=tid, v1=|observed| value,
  // v2=the bound it crossed (both in the unit the kind implies: ns for lag
  // and starvation, share-error permille for kShareError). Emitted on the
  // rising edge of each anomaly only; recovery is not an event.
  kLagAnomaly = 27,
  kStarvation = 28,
  kShareError = 29,
};

inline constexpr uint16_t kNumEventTypes = 30;

// kSlice disposition values (flags field).
inline constexpr uint16_t kSlicePreempt = 0;
inline constexpr uint16_t kSliceYield = 1;
inline constexpr uint16_t kSliceSleep = 2;
inline constexpr uint16_t kSliceBlock = 3;
inline constexpr uint16_t kSliceExit = 4;

// kDecision flag bits.
inline constexpr uint16_t kDecisionTree = 1u << 0;      // tree backend
inline constexpr uint16_t kDecisionFallback = 1u << 1;  // zero-funding RR
// Winner came from a Walker alias table (O(1) draw). v1 is the scaled
// alias draw, not a prefix-sum value: replay-by-prefix-sum does not apply.
inline constexpr uint16_t kDecisionAlias = 1u << 2;
// Winner was served from a speculative draw batch formed k quanta ago
// (bit-identical to an unbatched draw; flag is informational).
inline constexpr uint16_t kDecisionBatched = 1u << 3;

struct Event {
  int64_t t_ns = 0;
  uint64_t v1 = 0;
  uint64_t v2 = 0;
  uint64_t v3 = 0;
  uint32_t a = 0;
  uint32_t b = 0;
  uint32_t name = 0;
  uint16_t type = 0;
  uint16_t flags = 0;
};
static_assert(sizeof(Event) == 48, "Event must stay compact and padding-free");

constexpr uint32_t CategoryOf(EventType type) {
  switch (type) {
    case EventType::kThreadName:
    case EventType::kSlice:
    case EventType::kWake:
    case EventType::kSteal:
    case EventType::kMigrate:
      return kCatSched;
    case EventType::kDecision:
      return kCatLottery;
    case EventType::kCandidate:
      return kCatLotterySnapshot;
    case EventType::kCurrencyCreate:
    case EventType::kCurrencyDestroy:
    case EventType::kCurrencyRetire:
    case EventType::kFund:
    case EventType::kUnfund:
    case EventType::kReprice:
      return kCatCurrency;
    case EventType::kTransferStart:
    case EventType::kTransferRetarget:
    case EventType::kTransferEnd:
      return kCatTransfer;
    case EventType::kRpcSend:
    case EventType::kRpcRecv:
    case EventType::kRpcReply:
      return kCatRpc;
    case EventType::kMutexAcquire:
    case EventType::kMutexContend:
    case EventType::kMutexGrant:
    case EventType::kMutexRelease:
      return kCatMutex;
    case EventType::kDiskSubmit:
    case EventType::kDiskComplete:
      return kCatDisk;
    case EventType::kFault:
      return kCatFault;
    case EventType::kLagAnomaly:
    case EventType::kStarvation:
    case EventType::kShareError:
      return kCatTimeseries;
    case EventType::kNone:
      return 0;
  }
  return 0;
}

constexpr const char* EventTypeName(uint16_t type) {
  switch (static_cast<EventType>(type)) {
    case EventType::kNone: return "none";
    case EventType::kThreadName: return "thread_name";
    case EventType::kSlice: return "slice";
    case EventType::kWake: return "wake";
    case EventType::kDecision: return "decision";
    case EventType::kCandidate: return "candidate";
    case EventType::kCurrencyCreate: return "currency_create";
    case EventType::kCurrencyDestroy: return "currency_destroy";
    case EventType::kCurrencyRetire: return "currency_retire";
    case EventType::kFund: return "fund";
    case EventType::kUnfund: return "unfund";
    case EventType::kReprice: return "reprice";
    case EventType::kTransferStart: return "transfer_start";
    case EventType::kTransferRetarget: return "transfer_retarget";
    case EventType::kTransferEnd: return "transfer_end";
    case EventType::kRpcSend: return "rpc_send";
    case EventType::kRpcRecv: return "rpc_recv";
    case EventType::kRpcReply: return "rpc_reply";
    case EventType::kMutexAcquire: return "mutex_acquire";
    case EventType::kMutexContend: return "mutex_contend";
    case EventType::kMutexGrant: return "mutex_grant";
    case EventType::kMutexRelease: return "mutex_release";
    case EventType::kDiskSubmit: return "disk_submit";
    case EventType::kDiskComplete: return "disk_complete";
    case EventType::kFault: return "fault";
    case EventType::kSteal: return "steal";
    case EventType::kMigrate: return "migrate";
    case EventType::kLagAnomaly: return "lag_anomaly";
    case EventType::kStarvation: return "starvation";
    case EventType::kShareError: return "share_error";
  }
  return "unknown";
}

constexpr const char* SliceDispositionName(uint16_t flags) {
  switch (flags) {
    case kSlicePreempt: return "preempt";
    case kSliceYield: return "yield";
    case kSliceSleep: return "sleep";
    case kSliceBlock: return "block";
    case kSliceExit: return "exit";
    default: return "slice";
  }
}

}  // namespace etrace
}  // namespace lottery

#endif  // SRC_OBS_ETRACE_EVENT_H_
