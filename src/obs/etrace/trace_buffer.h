// Deterministic bounded event trace.
//
// TraceBuffer is a fixed-capacity ring of Events plus a string-intern
// table. Recording (Append) is allocation-free: the ring is sized at
// construction and overwrites the oldest event once full, counting every
// overwrite explicitly — there is no silent truncation. Interning allocates
// and is meant for registration-time paths only (Spawn, CreateCurrency,
// port/mutex construction), never per-event.
//
// Hot paths gate on On(trace, category): with the LOTTERY_OBS CMake option
// OFF the helper is a compile-time `false` and every hook folds away
// (exact-zero residual, enforced by bench_obs_overhead --check); with obs
// compiled in, a masked-off category costs a null check plus one bit test.
//
// Time: the simulator's components do not all carry a clock (CurrencyTable
// mutators have no SimTime), so the buffer keeps a "current sim time"
// cursor advanced by the Kernel and the scheduler; hooks that know a better
// timestamp stamp events explicitly, the rest use now().
//
// Everything recorded is a pure function of the seed and configuration, so
// a serialized trace is byte-identical across runs — `tracectl diff` relies
// on this to localize the first divergence between two runs.

#ifndef SRC_OBS_ETRACE_TRACE_BUFFER_H_
#define SRC_OBS_ETRACE_TRACE_BUFFER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/obs/counter.h"
#include "src/obs/etrace/event.h"

namespace lottery {
namespace etrace {

class TraceBuffer {
 public:
  static constexpr size_t kDefaultCapacity = size_t{1} << 20;

  explicit TraceBuffer(size_t capacity = kDefaultCapacity,
                       uint32_t mask = kDefaultCategories);
  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  uint32_t mask() const { return mask_; }
  void set_mask(uint32_t mask) { mask_ = mask; }

  // Recorded into the file header; tracectl summarize reports it.
  uint64_t seed() const { return seed_; }
  void set_seed(uint64_t seed) { seed_ = seed; }

  // Sim-time cursor for hooks without their own clock.
  int64_t now() const { return now_ns_; }
  void set_now(int64_t t_ns) {
    if constexpr (obs::kObsEnabled) {
      now_ns_ = t_ns;
    } else {
      (void)t_ns;
    }
  }

  // Monotonic causal span ids (RPC send→receive→reply flows). Never 0.
  uint64_t NextSpanId() { return ++last_span_; }

  // Returns a stable id for `s`, adding it to the table on first use.
  // Allocates; registration-time only. Id 0 is reserved for "no name".
  uint32_t Intern(const std::string& s);

  // Records one event. Allocation-free; overwrites the oldest event when
  // the ring is full. Callers must stamp e.t_ns (use now() when no better
  // timestamp exists) and are expected to gate with On() first.
  void Append(const Event& e) {
    if constexpr (obs::kObsEnabled) {
      events_[head_] = e;
      ++head_;
      if (head_ == events_.size()) head_ = 0;
      if (count_ < events_.size()) {
        ++count_;
      } else {
        ++overwritten_;
      }
    } else {
      (void)e;
    }
  }

  size_t size() const { return count_; }
  size_t capacity() const { return events_.size(); }
  uint64_t overwritten() const { return overwritten_; }

  // i-th surviving event in chronological order (0 = oldest retained).
  const Event& At(size_t i) const;
  std::vector<Event> Events() const;

  const std::vector<std::string>& strings() const { return strings_; }
  // Name for an interned id; "" for id 0 or out of range.
  const std::string& Name(uint32_t id) const;

  void Clear();

  // Binary serialization (format documented in trace_buffer.cc).
  std::string Serialize() const;
  // Throws std::runtime_error on I/O failure.
  void WriteToFile(const std::string& path) const;

 private:
  std::vector<Event> events_;
  size_t head_ = 0;  // next write slot
  size_t count_ = 0;
  uint64_t overwritten_ = 0;
  uint32_t mask_;
  int64_t now_ns_ = 0;
  uint64_t seed_ = 0;
  uint64_t last_span_ = 0;
  std::vector<std::string> strings_;        // id -> name; [0] == ""
  std::map<std::string, uint32_t> intern_;  // ordered: deterministic (D2)
};

// Null-safe sim-time cursor advance; folds to nothing when obs is off.
inline void SetNow(TraceBuffer* trace, int64_t t_ns) {
  if constexpr (obs::kObsEnabled) {
    if (trace != nullptr) trace->set_now(t_ns);
  } else {
    (void)trace;
    (void)t_ns;
  }
}

// The hot-path gate. Compile-time false when obs is disabled, so the
// enclosing `if` — including event construction — folds to nothing.
inline bool On(const TraceBuffer* trace, uint32_t category) {
  if constexpr (!obs::kObsEnabled) {
    (void)trace;
    (void)category;
    return false;
  } else {
    return trace != nullptr && (trace->mask() & category) != 0;
  }
}

// A loaded trace file: header fields plus flat event/string vectors.
struct TraceFile {
  uint32_t version = 0;
  uint32_t mask = 0;
  uint64_t seed = 0;
  uint64_t overwritten = 0;
  std::vector<std::string> strings;
  std::vector<Event> events;

  const std::string& Name(uint32_t id) const;

  // Both throw std::runtime_error on malformed input / I/O failure.
  static TraceFile Parse(const std::string& bytes);
  static TraceFile Load(const std::string& path);
};

}  // namespace etrace
}  // namespace lottery

#endif  // SRC_OBS_ETRACE_TRACE_BUFFER_H_
