#include "src/obs/etrace/trace_buffer.h"

#include <fstream>
#include <sstream>
#include <stdexcept>

#include "src/obs/json_writer.h"

namespace lottery {
namespace etrace {
namespace {

// Binary trace format, all integers little-endian:
//
//   magic    8 bytes  "LOTETRC1"
//   version  u32      1
//   mask     u32      category mask the buffer recorded with
//   seed     u64
//   overwritten u64   events lost to ring wrap (oldest-first)
//   nstrings u32      string table size (entry 0 is always "")
//     per string: u32 length + raw bytes
//   nevents  u64
//     per event: t_ns i64, v1 u64, v2 u64, v3 u64, a u32, b u32,
//                name u32, type u16, flags u16   (44 bytes packed)
constexpr char kMagic[8] = {'L', 'O', 'T', 'E', 'T', 'R', 'C', '1'};
constexpr uint32_t kVersion = 1;

void PutU16(std::string* out, uint16_t v) {
  out->push_back(static_cast<char>(v & 0xff));
  out->push_back(static_cast<char>((v >> 8) & 0xff));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutI64(std::string* out, int64_t v) { PutU64(out, static_cast<uint64_t>(v)); }

class Reader {
 public:
  explicit Reader(const std::string& bytes) : bytes_(bytes) {}

  uint16_t U16() {
    const uint32_t lo = Byte();
    const uint32_t hi = Byte();
    return static_cast<uint16_t>(lo | (hi << 8));
  }

  uint32_t U32() {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(Byte()) << (8 * i);
    return v;
  }

  uint64_t U64() {
    uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(Byte()) << (8 * i);
    return v;
  }

  int64_t I64() { return static_cast<int64_t>(U64()); }

  std::string Bytes(size_t n) {
    if (pos_ + n > bytes_.size()) Fail();
    std::string s = bytes_.substr(pos_, n);
    pos_ += n;
    return s;
  }

  size_t remaining() const { return bytes_.size() - pos_; }

 private:
  uint32_t Byte() {
    if (pos_ >= bytes_.size()) Fail();
    return static_cast<unsigned char>(bytes_[pos_++]);
  }

  [[noreturn]] void Fail() {
    throw std::runtime_error("etrace: truncated trace file");
  }

  const std::string& bytes_;
  size_t pos_ = 0;
};

void PutEvent(std::string* out, const Event& e) {
  PutI64(out, e.t_ns);
  PutU64(out, e.v1);
  PutU64(out, e.v2);
  PutU64(out, e.v3);
  PutU32(out, e.a);
  PutU32(out, e.b);
  PutU32(out, e.name);
  PutU16(out, e.type);
  PutU16(out, e.flags);
}

Event ReadEvent(Reader* r) {
  Event e;
  e.t_ns = r->I64();
  e.v1 = r->U64();
  e.v2 = r->U64();
  e.v3 = r->U64();
  e.a = r->U32();
  e.b = r->U32();
  e.name = r->U32();
  e.type = r->U16();
  e.flags = r->U16();
  return e;
}

const std::string kEmptyName;

}  // namespace

TraceBuffer::TraceBuffer(size_t capacity, uint32_t mask)
    : events_(capacity == 0 ? 1 : capacity), mask_(mask) {
  strings_.push_back("");  // id 0 reserved for "no name"
}

uint32_t TraceBuffer::Intern(const std::string& s) {
  if (s.empty()) return 0;
  const auto it = intern_.find(s);
  if (it != intern_.end()) return it->second;
  const auto id = static_cast<uint32_t>(strings_.size());
  strings_.push_back(s);
  intern_.emplace(s, id);
  return id;
}

const Event& TraceBuffer::At(size_t i) const {
  // Oldest retained event sits at head_ once the ring has wrapped.
  const size_t start = count_ == events_.size() ? head_ : 0;
  return events_[(start + i) % events_.size()];
}

std::vector<Event> TraceBuffer::Events() const {
  std::vector<Event> out;
  out.reserve(count_);
  for (size_t i = 0; i < count_; ++i) out.push_back(At(i));
  return out;
}

const std::string& TraceBuffer::Name(uint32_t id) const {
  if (id >= strings_.size()) return kEmptyName;
  return strings_[id];
}

void TraceBuffer::Clear() {
  head_ = 0;
  count_ = 0;
  overwritten_ = 0;
  now_ns_ = 0;
  last_span_ = 0;
}

std::string TraceBuffer::Serialize() const {
  std::string out;
  out.reserve(64 + count_ * 44 + strings_.size() * 16);
  out.append(kMagic, sizeof(kMagic));
  PutU32(&out, kVersion);
  PutU32(&out, mask_);
  PutU64(&out, seed_);
  PutU64(&out, overwritten_);
  PutU32(&out, static_cast<uint32_t>(strings_.size()));
  for (const std::string& s : strings_) {
    PutU32(&out, static_cast<uint32_t>(s.size()));
    out.append(s);
  }
  PutU64(&out, static_cast<uint64_t>(count_));
  for (size_t i = 0; i < count_; ++i) PutEvent(&out, At(i));
  return out;
}

void TraceBuffer::WriteToFile(const std::string& path) const {
  obs::WriteFile(path, Serialize());
}

const std::string& TraceFile::Name(uint32_t id) const {
  if (id >= strings.size()) return kEmptyName;
  return strings[id];
}

TraceFile TraceFile::Parse(const std::string& bytes) {
  Reader r(bytes);
  if (r.Bytes(sizeof(kMagic)) != std::string(kMagic, sizeof(kMagic))) {
    throw std::runtime_error("etrace: bad magic (not a LOTETRC1 trace)");
  }
  TraceFile trace;
  trace.version = r.U32();
  if (trace.version != kVersion) {
    throw std::runtime_error("etrace: unsupported trace version " +
                             std::to_string(trace.version));
  }
  trace.mask = r.U32();
  trace.seed = r.U64();
  trace.overwritten = r.U64();
  const uint32_t nstrings = r.U32();
  trace.strings.reserve(nstrings);
  for (uint32_t i = 0; i < nstrings; ++i) {
    const uint32_t len = r.U32();
    trace.strings.push_back(r.Bytes(len));
  }
  const uint64_t nevents = r.U64();
  // 44 packed bytes per event; reject counts the payload cannot hold.
  if (nevents > r.remaining() / 44) {
    throw std::runtime_error("etrace: event count exceeds file size");
  }
  trace.events.reserve(static_cast<size_t>(nevents));
  for (uint64_t i = 0; i < nevents; ++i) {
    trace.events.push_back(ReadEvent(&r));
  }
  return trace;
}

TraceFile TraceFile::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("etrace: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  if (!in.good() && !in.eof()) {
    throw std::runtime_error("etrace: read failure on " + path);
  }
  return Parse(buf.str());
}

}  // namespace etrace
}  // namespace lottery
