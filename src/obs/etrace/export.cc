#include "src/obs/etrace/export.h"

#include "src/obs/json_writer.h"

namespace lottery {
namespace etrace {
namespace {

// All tracks share one synthetic process; tid 0 is a virtual "scheduler"
// track carrying decisions, currency/transfer activity, and fault firings
// (none of which belong to a single simulated thread).
constexpr int kPid = 1;
constexpr uint32_t kSchedulerTid = 0;

double ToUs(int64_t t_ns) { return static_cast<double>(t_ns) / 1000.0; }
double ToUs(uint64_t t_ns) { return static_cast<double>(t_ns) / 1000.0; }

// Opens one trace-event object and writes the common fields; the caller
// adds args (or more fields) and closes the object.
obs::JsonWriter& Begin(obs::JsonWriter& w, const char* name, const char* ph,
                       uint32_t tid, int64_t t_ns) {
  w.BeginObject()
      .Key("name").String(name)
      .Key("ph").String(ph)
      .Key("pid").Int(kPid)
      .Key("tid").Uint(tid)
      .Key("ts").Double(ToUs(t_ns));
  return w;
}

obs::JsonWriter& BeginInstant(obs::JsonWriter& w, const char* name,
                              uint32_t tid, int64_t t_ns) {
  Begin(w, name, "i", tid, t_ns).Key("s").String("t");
  return w;
}

void ThreadNameMeta(obs::JsonWriter& w, uint32_t tid,
                    const std::string& name) {
  w.BeginObject()
      .Key("name").String("thread_name")
      .Key("ph").String("M")
      .Key("pid").Int(kPid)
      .Key("tid").Uint(tid)
      .Key("args").BeginObject().Key("name").String(name).EndObject()
      .EndObject();
}

}  // namespace

std::string ToChromeTraceJson(const TraceFile& trace) {
  obs::JsonWriter w;
  w.BeginObject().Key("traceEvents").BeginArray();

  w.BeginObject()
      .Key("name").String("process_name")
      .Key("ph").String("M")
      .Key("pid").Int(kPid)
      .Key("args").BeginObject()
      .Key("name").String("lottery-sim").EndObject()
      .EndObject();
  ThreadNameMeta(w, kSchedulerTid, "scheduler");

  for (const Event& e : trace.events) {
    switch (static_cast<EventType>(e.type)) {
      case EventType::kThreadName:
        ThreadNameMeta(w, e.a, trace.Name(e.name));
        break;
      case EventType::kSlice:
        Begin(w, SliceDispositionName(e.flags), "X", e.a, e.t_ns)
            .Key("cat").String("sched")
            .Key("dur").Double(ToUs(e.v1))
            .Key("args").BeginObject()
            .Key("cpu").Uint(e.b).EndObject()
            .EndObject();
        break;
      case EventType::kWake:
        BeginInstant(w, "wake", e.a, e.t_ns).EndObject();
        break;
      case EventType::kDecision:
        BeginInstant(w, "decision", kSchedulerTid, e.t_ns)
            .Key("args").BeginObject()
            .Key("winner").Uint(e.a)
            .Key("random").Uint(e.v1)
            .Key("total").Uint(e.v2)
            .Key("winner_tickets").Uint(e.v3)
            .Key("backend")
            .String((e.flags & kDecisionTree) != 0 ? "tree" : "list")
            .Key("fallback").Bool((e.flags & kDecisionFallback) != 0)
            .EndObject()
            .EndObject();
        break;
      case EventType::kCandidate:
        BeginInstant(w, "candidate", kSchedulerTid, e.t_ns)
            .Key("args").BeginObject()
            .Key("tid").Uint(e.a)
            .Key("index").Uint(e.b)
            .Key("tickets").Uint(e.v1)
            .EndObject()
            .EndObject();
        break;
      case EventType::kCurrencyCreate:
      case EventType::kCurrencyDestroy:
      case EventType::kCurrencyRetire:
      case EventType::kReprice:
        BeginInstant(w, EventTypeName(e.type), kSchedulerTid, e.t_ns)
            .Key("args").BeginObject()
            .Key("currency").String(trace.Name(e.name))
            .Key("value").Uint(e.v1)
            .EndObject()
            .EndObject();
        break;
      case EventType::kFund:
      case EventType::kUnfund:
        BeginInstant(w, EventTypeName(e.type), kSchedulerTid, e.t_ns)
            .Key("args").BeginObject()
            .Key("currency").String(trace.Name(e.name))
            .Key("ticket").Uint(e.a)
            .Key("amount").Uint(e.v1)
            .EndObject()
            .EndObject();
        break;
      case EventType::kTransferStart:
      case EventType::kTransferRetarget:
      case EventType::kTransferEnd:
        BeginInstant(w, EventTypeName(e.type), kSchedulerTid, e.t_ns)
            .Key("args").BeginObject()
            .Key("ticket").Uint(e.a)
            .Key("target").String(trace.Name(e.name))
            .Key("amount").Uint(e.v1)
            .EndObject()
            .EndObject();
        break;
      case EventType::kRpcSend:
        // Flow start; the arrow binds to the enclosing CPU slice of the
        // sending thread and terminates at the reply ("f") below.
        Begin(w, "rpc", "s", e.a, e.t_ns)
            .Key("cat").String("rpc")
            .Key("id").Uint(e.v1)
            .Key("args").BeginObject()
            .Key("port").String(trace.Name(e.name))
            .Key("payload").Uint(e.v2)
            .EndObject()
            .EndObject();
        break;
      case EventType::kRpcRecv:
        Begin(w, "rpc", "t", e.a, e.t_ns)
            .Key("cat").String("rpc")
            .Key("id").Uint(e.v1)
            .EndObject();
        break;
      case EventType::kRpcReply:
        Begin(w, "rpc", "f", e.a, e.t_ns)
            .Key("cat").String("rpc")
            .Key("id").Uint(e.v1)
            .Key("bp").String("e")
            .Key("args").BeginObject()
            .Key("client").Uint(e.b)
            .Key("latency_us").Double(ToUs(e.v2))
            .EndObject()
            .EndObject();
        break;
      case EventType::kMutexAcquire:
      case EventType::kMutexContend:
      case EventType::kMutexRelease:
        BeginInstant(w, EventTypeName(e.type), e.a, e.t_ns)
            .Key("args").BeginObject()
            .Key("mutex").String(trace.Name(e.name))
            .EndObject()
            .EndObject();
        break;
      case EventType::kMutexGrant:
        BeginInstant(w, "mutex_grant", e.a, e.t_ns)
            .Key("args").BeginObject()
            .Key("mutex").String(trace.Name(e.name))
            .Key("waited_us").Double(ToUs(e.v1))
            .EndObject()
            .EndObject();
        break;
      case EventType::kDiskSubmit:
        BeginInstant(w, "disk_submit", e.a, e.t_ns)
            .Key("args").BeginObject()
            .Key("disk").String(trace.Name(e.name))
            .Key("bytes").Uint(e.v1)
            .EndObject()
            .EndObject();
        break;
      case EventType::kDiskComplete:
        BeginInstant(w, "disk_complete", e.a, e.t_ns)
            .Key("args").BeginObject()
            .Key("disk").String(trace.Name(e.name))
            .Key("bytes").Uint(e.v1)
            .Key("delay_us").Double(ToUs(e.v2))
            .Key("retried").Bool(e.flags != 0)
            .EndObject()
            .EndObject();
        break;
      case EventType::kFault:
        BeginInstant(w, "fault", kSchedulerTid, e.t_ns)
            .Key("args").BeginObject()
            .Key("class").String(trace.Name(e.name))
            .EndObject()
            .EndObject();
        break;
      case EventType::kSteal:
      case EventType::kMigrate:
        BeginInstant(w, EventTypeName(e.type), e.a, e.t_ns)
            .Key("args").BeginObject()
            .Key("from_cpu").Uint(e.v1)
            .Key("to_cpu").Uint(e.b)
            .Key("value").Uint(e.v2)
            .EndObject()
            .EndObject();
        break;
      case EventType::kNone:
        break;
    }
  }

  w.EndArray()
      .Key("displayTimeUnit").String("ms")
      .Key("otherData").BeginObject()
      .Key("seed").Uint(trace.seed)
      .Key("category_mask").Uint(trace.mask)
      .Key("overwritten").Uint(trace.overwritten)
      .Key("events").Uint(trace.events.size())
      .EndObject()
      .EndObject();
  return w.str();
}

}  // namespace etrace
}  // namespace lottery
