// Chrome trace-event JSON exporter (Perfetto-loadable).
//
// Maps a loaded TraceFile onto the legacy Chrome trace-event format that
// ui.perfetto.dev imports: one thread track per simulated thread (named via
// "M"/thread_name metadata), "X" complete events for CPU slices, "i"
// instants for wakes/decisions/mutex/disk/fault events, and "s"/"t"/"f"
// flow events keyed by the RPC span id so send→receive→reply renders as
// arrows across thread tracks. Timestamps are sim-time microseconds.
//
// Output is a pure function of the trace bytes, so two same-seed runs
// convert to bit-identical JSON (exercised by tests/tracectl_test.cc).

#ifndef SRC_OBS_ETRACE_EXPORT_H_
#define SRC_OBS_ETRACE_EXPORT_H_

#include <string>

#include "src/obs/etrace/trace_buffer.h"

namespace lottery {
namespace etrace {

std::string ToChromeTraceJson(const TraceFile& trace);

}  // namespace etrace
}  // namespace lottery

#endif  // SRC_OBS_ETRACE_EXPORT_H_
