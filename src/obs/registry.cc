#include "src/obs/registry.h"

#include "src/obs/json_writer.h"

namespace lottery {
namespace obs {

Counter* Registry::counter(const std::string& name) {
  return &counters_[name];
}

LatencyHistogram* Registry::histogram(const std::string& name) {
  return &histograms_[name];
}

const Counter* Registry::FindCounter(const std::string& name) const {
  const auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const LatencyHistogram* Registry::FindHistogram(
    const std::string& name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

std::vector<std::pair<std::string, uint64_t>> Registry::CounterValues()
    const {
  std::vector<std::pair<std::string, uint64_t>> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.emplace_back(name, counter.value());
  }
  return out;
}

std::vector<std::pair<std::string, const LatencyHistogram*>>
Registry::Histograms() const {
  std::vector<std::pair<std::string, const LatencyHistogram*>> out;
  out.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    out.emplace_back(name, &histogram);
  }
  return out;
}

void Registry::Reset() {
  for (auto& [name, counter] : counters_) {
    counter.Reset();
  }
  for (auto& [name, histogram] : histograms_) {
    histogram.Reset();
  }
}

std::string Registry::ToJson() const {
  JsonWriter json;
  json.BeginObject();
  json.Key("counters").BeginObject();
  for (const auto& [name, counter] : counters_) {
    json.Key(name).Uint(counter.value());
  }
  json.EndObject();
  json.Key("histograms").BeginObject();
  for (const auto& [name, histogram] : histograms_) {
    json.Key(name).BeginObject();
    json.Key("count").Uint(histogram.count());
    json.Key("mean").Double(histogram.mean());
    json.Key("p50").Double(histogram.Percentile(0.50));
    json.Key("p90").Double(histogram.Percentile(0.90));
    json.Key("p99").Double(histogram.Percentile(0.99));
    json.Key("max").Uint(histogram.max());
    json.EndObject();
  }
  json.EndObject();
  json.EndObject();
  return json.str();
}

Registry& Registry::Default() {
  static Registry* const kDefault = new Registry();
  return *kDefault;
}

}  // namespace obs
}  // namespace lottery
