// Low-overhead event counters for the observability layer.
//
// A Counter is a named monotonic uint64 owned by a Registry. Hot paths hold
// a raw Counter* and call Inc(); the body is guarded by the compile-time
// switch kObsEnabled (set via the LOTTERY_OBS CMake option), so a disabled
// build inlines every hook to nothing — the scheduling fast paths measured
// by tab_overhead and bench_obs_overhead carry no residual cost.

#ifndef SRC_OBS_COUNTER_H_
#define SRC_OBS_COUNTER_H_

#include <cstdint>
#include <string>

namespace lottery {
namespace obs {

// Compile-time master switch. Defined by the build (-DLOTTERY_OBS_DISABLED
// when the LOTTERY_OBS CMake option is OFF); must be consistent across all
// translation units of a binary.
#ifdef LOTTERY_OBS_DISABLED
inline constexpr bool kObsEnabled = false;
#else
inline constexpr bool kObsEnabled = true;
#endif

class Counter {
 public:
  void Inc(uint64_t delta = 1) {
    if constexpr (kObsEnabled) {
      value_ += delta;
    } else {
      (void)delta;
    }
  }

  uint64_t value() const { return value_; }
  void Reset() { value_ = 0; }

  // "name=value", for debug dumps and error messages.
  std::string DebugString(const std::string& name) const;

 private:
  uint64_t value_ = 0;
};

}  // namespace obs
}  // namespace lottery

#endif  // SRC_OBS_COUNTER_H_
