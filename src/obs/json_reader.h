// Minimal strict JSON reader — the read-side twin of json_writer.h.
//
// lottop replays recorded timeseries documents and tests round-trip the
// bench JSON; neither wants a third-party dependency. This is a recursive-
// descent RFC 8259 parser into a small tree value. It is strict on purpose:
// NaN/Infinity literals, trailing commas, comments, and duplicate-key
// objects are errors, because the documents we read are schema-checked CI
// artifacts where leniency only hides producer bugs. Integers that fit
// int64 keep exact integer identity (is_int) so nanosecond time axes
// round-trip without double rounding. Object member order is preserved as
// written, letting consumers verify the writer's sorted-key contract.

#ifndef SRC_OBS_JSON_READER_H_
#define SRC_OBS_JSON_READER_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace lottery {
namespace obs {

struct JsonValue {
  enum class Kind : uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  int64_t integer = 0;  // exact when is_int
  bool is_int = false;
  std::string str;
  std::vector<JsonValue> items;                            // kArray
  std::vector<std::pair<std::string, JsonValue>> members;  // kObject, ordered

  bool IsNull() const { return kind == Kind::kNull; }
  bool IsNumber() const { return kind == Kind::kNumber; }
  bool IsString() const { return kind == Kind::kString; }
  bool IsArray() const { return kind == Kind::kArray; }
  bool IsObject() const { return kind == Kind::kObject; }

  // First member with this key, nullptr when absent (or not an object).
  const JsonValue* Find(const std::string& key) const;
  // Find + type/shape accessors that throw std::runtime_error with the key
  // name on absence or kind mismatch — loaders stay one-liners.
  const JsonValue& At(const std::string& key) const;
  int64_t IntAt(const std::string& key) const;
  double NumberAt(const std::string& key) const;
  const std::string& StringAt(const std::string& key) const;
};

// Parses exactly one JSON document (trailing non-whitespace is an error).
// Throws std::runtime_error with a byte offset on malformed input.
JsonValue ParseJson(const std::string& text);

// Reads a whole file; throws std::runtime_error on I/O failure.
std::string ReadFile(const std::string& path);

}  // namespace obs
}  // namespace lottery

#endif  // SRC_OBS_JSON_READER_H_
