#include "src/obs/counter.h"

namespace lottery {
namespace obs {

std::string Counter::DebugString(const std::string& name) const {
  return name + "=" + std::to_string(value_);
}

}  // namespace obs
}  // namespace lottery
