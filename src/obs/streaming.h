// Streaming moment accumulators for population-scale statistics.
//
// At a million threads, keeping a per-thread sample vector (or even one
// histogram per thread) to report "how far is each thread's CPU share from
// its ticket-implied entitlement?" costs gigabytes. StreamingStats keeps the
// running count/mean/M2 of a distribution in 32 bytes using Welford's
// online update, so per-population share-error statistics stay O(1) memory
// regardless of how many threads contribute one sample each.
//
// Accumulators are mergeable (Chan et al.'s pairwise-combination formula),
// so shards filled independently — per chunk of the thread table, per run —
// combine into the same result as one big accumulator, up to floating-point
// rounding. Merging is what lets the scale bench walk a ChunkedVector of a
// million thread records chunk-by-chunk and still report one mean/stddev.
//
// Everything is deterministic: no allocation, no global state, results are
// a pure fold over the Add/Merge call sequence.

#ifndef SRC_OBS_STREAMING_H_
#define SRC_OBS_STREAMING_H_

#include <cstdint>
#include <string>

namespace lottery {
namespace obs {

class StreamingStats {
 public:
  // Folds one observation into the running moments (Welford's update).
  void Add(double value);

  // Combines another accumulator into this one as if its observations had
  // been Add()ed here. Order-insensitive up to floating-point rounding.
  void Merge(const StreamingStats& other);

  void Reset();

  uint64_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  // Population variance (divide by n). 0 with fewer than two observations.
  double variance() const;
  double stddev() const;

  // "count=... mean=... stddev=... min=... max=..." for text output.
  std::string Summary() const;

 private:
  uint64_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;  // sum of squared deviations from the running mean
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace obs
}  // namespace lottery

#endif  // SRC_OBS_STREAMING_H_
