#include "src/obs/histogram.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace lottery {
namespace obs {

size_t LatencyHistogram::BucketIndex(uint64_t value) {
  const size_t width = static_cast<size_t>(std::bit_width(value));
  return std::min(width, kNumBuckets - 1);
}

uint64_t LatencyHistogram::BucketLo(size_t bucket) {
  return bucket == 0 ? 0 : uint64_t{1} << (bucket - 1);
}

uint64_t LatencyHistogram::BucketHi(size_t bucket) {
  if (bucket == 0) {
    return 0;
  }
  if (bucket == kNumBuckets - 1) {
    return UINT64_MAX;  // saturating overflow bucket
  }
  return (uint64_t{1} << bucket) - 1;
}

void LatencyHistogram::RecordAlways(uint64_t value) {
  ++counts_[BucketIndex(value)];
  ++count_;
  sum_ += value;
  min_ = std::min(min_, value);
  max_ = std::max(max_, value);
}

void LatencyHistogram::Merge(const LatencyHistogram& other) {
  for (size_t i = 0; i < kNumBuckets; ++i) {
    counts_[i] += other.counts_[i];
  }
  count_ += other.count_;
  events_ += other.events_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void LatencyHistogram::Reset() {
  counts_.fill(0);
  count_ = 0;
  events_ = 0;
  sum_ = 0;
  min_ = UINT64_MAX;
  max_ = 0;
}

double LatencyHistogram::mean() const {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) / static_cast<double>(count_);
}

double LatencyHistogram::Percentile(double fraction) const {
  if (count_ == 0) {
    return 0.0;
  }
  fraction = std::clamp(fraction, 0.0, 1.0);
  const double rank = fraction * static_cast<double>(count_);
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (counts_[i] == 0) {
      continue;
    }
    const double lo_rank = static_cast<double>(cumulative);
    cumulative += counts_[i];
    if (static_cast<double>(cumulative) >= rank) {
      // Interpolate inside [lo, hi] by the rank's position in the bucket.
      const double lo = static_cast<double>(BucketLo(i));
      const double hi =
          static_cast<double>(std::min(BucketHi(i), max_));
      const double span = static_cast<double>(counts_[i]);
      const double within = std::clamp((rank - lo_rank) / span, 0.0, 1.0);
      const double value = lo + (hi - lo) * within;
      return std::clamp(value, static_cast<double>(min_),
                        static_cast<double>(max_));
    }
  }
  return static_cast<double>(max_);
}

std::string LatencyHistogram::Summary() const {
  char buffer[160];
  std::snprintf(buffer, sizeof(buffer),
                "count=%llu mean=%.1f p50=%.1f p90=%.1f p99=%.1f max=%llu",
                static_cast<unsigned long long>(count_), mean(),
                Percentile(0.50), Percentile(0.90), Percentile(0.99),
                static_cast<unsigned long long>(max_));
  return std::string(buffer);
}

}  // namespace obs
}  // namespace lottery
