// Fixed log-bucket latency histogram.
//
// 64 buckets over the full uint64 domain: bucket 0 holds the value 0, and
// bucket i (1 <= i <= 63) holds values in [2^(i-1), 2^i - 1]; values whose
// bit width exceeds 63 saturate into the last bucket, which therefore acts
// as the overflow bucket. Recording is an increment into a fixed array —
// no allocation, no floating point — so it is safe in scheduling hot paths,
// and the whole body compiles away when kObsEnabled is false. The hottest
// call sites (one histogram update per scheduling decision) use
// RecordSampled, which pays the bucket update only once per kSamplePeriod
// events while still counting every event.
//
// Percentiles (p50/p90/p99) are extracted by walking the cumulative counts
// and interpolating linearly inside the crossing bucket, clamped to the
// observed min/max. That matches how the paper's latency claims are stated
// (response-time distributions, Figure 11) while keeping the data structure
// mergeable across runs.

#ifndef SRC_OBS_HISTOGRAM_H_
#define SRC_OBS_HISTOGRAM_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>

#include "src/obs/counter.h"

namespace lottery {
namespace obs {

class LatencyHistogram {
 public:
  static constexpr size_t kNumBuckets = 64;
  // Sampling period for RecordSampled: hot paths keep full event counts but
  // only pay the bucket update once per kSamplePeriod events.
  static constexpr uint64_t kSamplePeriod = 16;
  static constexpr uint64_t kSampleMask = kSamplePeriod - 1;

  void Record(uint64_t value) {
    if constexpr (kObsEnabled) {
      RecordAlways(value);
    } else {
      (void)value;
    }
  }

  // Hot-path variant: records every kSamplePeriod-th value (the first call
  // always records, so count() == ceil(events() / kSamplePeriod)). The
  // percentile shape is preserved statistically while the common case costs
  // one increment and a predictable branch. Deterministic given call order.
  void RecordSampled(uint64_t value) {
    if constexpr (kObsEnabled) {
      if ((events_++ & kSampleMask) == 0) {
        RecordAlways(value);
      }
    } else {
      (void)value;
    }
  }

  // Unconditional variant, for callers that feed histograms from cold paths
  // (bench result aggregation) regardless of the hook switch.
  void RecordAlways(uint64_t value);

  void Merge(const LatencyHistogram& other);
  void Reset();

  uint64_t count() const { return count_; }
  // Total RecordSampled calls (recorded or skipped). Record/RecordAlways do
  // not advance this; it exists so exact event counts survive sampling.
  uint64_t events() const { return events_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ == 0 ? 0 : min_; }
  uint64_t max() const { return max_; }
  double mean() const;

  // Inclusive bucket bounds; BucketIndex is the placement function.
  static size_t BucketIndex(uint64_t value);
  static uint64_t BucketLo(size_t bucket);
  static uint64_t BucketHi(size_t bucket);
  uint64_t bucket_count(size_t bucket) const { return counts_[bucket]; }
  // Count landed in the saturating last bucket (values >= 2^62).
  uint64_t overflow() const { return counts_[kNumBuckets - 1]; }

  // Value below which `fraction` (in [0, 1]) of recordings fall, estimated
  // by linear interpolation within the crossing bucket. 0 when empty.
  double Percentile(double fraction) const;

  // "count=... mean=... p50=... p90=... p99=... max=..." for text output.
  std::string Summary() const;

 private:
  std::array<uint64_t, kNumBuckets> counts_{};
  uint64_t count_ = 0;
  uint64_t events_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = UINT64_MAX;
  uint64_t max_ = 0;
};

}  // namespace obs
}  // namespace lottery

#endif  // SRC_OBS_HISTOGRAM_H_
