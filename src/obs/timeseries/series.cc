#include "src/obs/timeseries/series.h"

#include <stdexcept>

namespace lottery {
namespace ts {

Series::Series(size_t capacity) : capacity_(capacity) {
  if (capacity < 2) {
    throw std::invalid_argument("Series: capacity must be at least 2");
  }
  buckets_.reserve(capacity);
}

void Series::Record(int64_t t_ns, double value) {
  ++total_points_;
  if (buckets_.empty() || buckets_.back().stats.count() >= stride_) {
    if (buckets_.size() == capacity_) {
      Compact();
    }
    // After a compaction the trailing bucket may still be below the doubled
    // stride; keep filling it instead of opening a new one.
    if (buckets_.empty() || buckets_.back().stats.count() >= stride_) {
      buckets_.emplace_back();
      buckets_.back().t_first_ns = t_ns;
    }
  }
  Bucket& bucket = buckets_.back();
  if (bucket.stats.count() == 0) {
    bucket.t_first_ns = t_ns;
  }
  bucket.t_last_ns = t_ns;
  bucket.stats.Add(value);
}

void Series::Compact() {
  const size_t n = buckets_.size();
  const size_t pairs = n / 2;
  for (size_t i = 0; i < pairs; ++i) {
    Bucket& dst = buckets_[i];
    dst = buckets_[2 * i];
    const Bucket& right = buckets_[2 * i + 1];
    dst.stats.Merge(right.stats);
    dst.t_last_ns = right.t_last_ns;
  }
  if (n % 2 != 0) {
    buckets_[pairs] = buckets_[n - 1];
  }
  buckets_.resize(pairs + n % 2);
  stride_ *= 2;
  ++compactions_;
}

double Series::last_value() const {
  return buckets_.empty() ? 0.0 : buckets_.back().stats.mean();
}

void Series::AppendJson(obs::JsonWriter& w) const {
  w.BeginObject();
  w.Key("count").BeginArray();
  for (const Bucket& b : buckets_) {
    w.Uint(b.stats.count());
  }
  w.EndArray();
  w.Key("max").BeginArray();
  for (const Bucket& b : buckets_) {
    w.Double(b.stats.max());
  }
  w.EndArray();
  w.Key("mean").BeginArray();
  for (const Bucket& b : buckets_) {
    w.Double(b.stats.mean());
  }
  w.EndArray();
  w.Key("min").BeginArray();
  for (const Bucket& b : buckets_) {
    w.Double(b.stats.min());
  }
  w.EndArray();
  w.Key("stride").Uint(stride_);
  w.Key("t_ns").BeginArray();
  for (const Bucket& b : buckets_) {
    w.Int(b.t_last_ns);
  }
  w.EndArray();
  w.EndObject();
}

}  // namespace ts
}  // namespace lottery
