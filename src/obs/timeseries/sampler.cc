// lotlint: file float-ok (the sampler is observation-only: shares, rates and
// lag bounds are float reports derived from integer service counters, and
// nothing here feeds back into ticket or pass state)
#include "src/obs/timeseries/sampler.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "src/obs/etrace/event.h"
#include "src/obs/json_writer.h"

namespace lottery {
namespace ts {

namespace {

// Labels become series-name segments; keep them inside the registry's
// metric-name alphabet so the hygiene gate covers recorded series too.
std::string SanitizeLabel(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char ch : raw) {
    if (ch >= 'A' && ch <= 'Z') {
      out.push_back(static_cast<char>(ch - 'A' + 'a'));
    } else if ((ch >= 'a' && ch <= 'z') || (ch >= '0' && ch <= '9') ||
               ch == '_' || ch == '.') {
      out.push_back(ch);
    } else {
      out.push_back('_');
    }
  }
  return out;
}

}  // namespace

const char* AnomalyKindName(AnomalyKind kind) {
  switch (kind) {
    case AnomalyKind::kLag:
      return "lag";
    case AnomalyKind::kStarvation:
      return "starvation";
    case AnomalyKind::kShareError:
      return "share_error";
  }
  return "unknown";
}

Sampler::Sampler(Kernel* kernel, Options options)
    : kernel_(kernel),
      options_(options),
      metrics_(options.metrics != nullptr ? options.metrics
                                          : &kernel->metrics()),
      m_samples_(metrics_->counter("ts.samples")),
      m_lag_anomalies_(metrics_->counter("ts.lag_anomalies")),
      m_starvation_anomalies_(metrics_->counter("ts.starvation_anomalies")),
      m_share_anomalies_(metrics_->counter("ts.share_anomalies")) {
  if (options_.interval.nanos() <= 0) {
    throw std::invalid_argument("Sampler: interval must be positive");
  }
  if (options_.share_window_samples == 0) {
    throw std::invalid_argument("Sampler: share window must be non-empty");
  }
  anomalies_.reserve(options_.max_anomalies);
  win_group_.assign(options_.share_window_samples, 0);
  s_runnable_ = AddSeries("kernel.runnable");
  s_util_ = AddSeries("kernel.util");
  s_dispatch_hz_ = AddSeries("kernel.dispatch_rate_hz");
  s_total_tickets_ = AddSeries("lottery.total_tickets");
  s_starve_max_ = AddSeries("sched.starve_max_ms");
  if (kernel_->num_cpus() > 1) {
    for (int c = 0; c < kernel_->num_cpus(); ++c) {
      CpuState state;
      state.index = c;
      state.s_util = AddSeries("cpu" + std::to_string(c) + ".util");
      cpus_.push_back(state);
    }
  }
}

Sampler::~Sampler() {
  if (kernel_->sampler() == this) {
    kernel_->SetSampler(nullptr);
  }
}

size_t Sampler::AddSeries(const std::string& name) {
  for (const NamedSeries& existing : series_) {
    if (existing.name == name) {
      throw std::invalid_argument("Sampler: duplicate series " + name);
    }
  }
  series_.push_back(NamedSeries{name, Series(options_.series_capacity)});
  return series_.size() - 1;
}

void Sampler::AttachScheduler(LotteryScheduler* sched) {
  sched_ = sched;
  smp_ = nullptr;
}

void Sampler::AttachSmp(smp::SmpScheduler* smp) {
  smp_ = smp;
  sched_ = nullptr;
  if (cpus_.empty()) {
    for (int c = 0; c < kernel_->num_cpus(); ++c) {
      CpuState state;
      state.index = c;
      state.s_util = AddSeries("cpu" + std::to_string(c) + ".util");
      cpus_.push_back(state);
    }
  }
  for (CpuState& state : cpus_) {
    const std::string prefix = "cpu" + std::to_string(state.index);
    state.s_queued = AddSeries(prefix + ".queued");
    state.s_steals = AddSeries(prefix + ".steals_in");
    // The SMP scheduler publishes per-CPU steal counts only through its
    // registry; resolve the same create-or-get slots it writes (pass the
    // sampler and the SmpScheduler the same registry).
    state.steals_in =
        metrics_->counter("smp.cpu" + std::to_string(state.index) +
                          ".steals_in");
  }
  s_steal_hz_ = AddSeries("smp.steal_rate_hz");
  s_migration_hz_ = AddSeries("smp.migration_rate_hz");
  last_steals_ = smp_->steals();
  last_migrations_ = smp_->migrations();
}

void Sampler::Track(ThreadId tid, const std::string& label) {
  const std::string clean = SanitizeLabel(label);
  if (clean.empty()) {
    throw std::invalid_argument("Sampler::Track: empty label");
  }
  for (const ClientState& existing : clients_) {
    if (existing.label == clean) {
      throw std::invalid_argument("Sampler::Track: duplicate label " + clean);
    }
    if (existing.tid == tid) {
      throw std::invalid_argument("Sampler::Track: thread tracked twice");
    }
  }
  ClientState state;
  state.tid = tid;
  state.label = clean;
  state.last_cpu_ns = kernel_->CpuTime(tid).nanos();  // throws on unknown tid
  state.win_recv.assign(options_.share_window_samples, 0);
  state.win_ent.assign(options_.share_window_samples, 0);
  const std::string prefix = "client." + clean;
  state.s_lag = AddSeries(prefix + ".lag_ms");
  state.s_share = AddSeries(prefix + ".share");
  state.s_entitled = AddSeries(prefix + ".entitled_share");
  state.s_since = AddSeries(prefix + ".since_dispatch_ms");
  clients_.push_back(std::move(state));
  weights_.assign(clients_.size(), 0);
}

void Sampler::WatchCounter(const std::string& name) {
  WatchedCounter watched;
  watched.counter = metrics_->counter(name);
  watched.last = watched.counter->value();
  watched.series = AddSeries("rate." + name);
  watched_.push_back(watched);
}

uint64_t Sampler::BaseValueRaw(ThreadId tid, double* base_units) {
  Funding value = Funding::Zero();
  if (smp_ != nullptr) {
    value = smp_->ThreadBaseValue(tid);
  } else if (sched_ != nullptr) {
    value = sched_->ThreadBaseValue(tid);
  }
  *base_units += value.ToBaseF();
  return value.raw_unsigned();
}

void Sampler::UpdateAnomaly(bool active, bool* flag, AnomalyKind kind,
                            ThreadId tid, double value, double bound,
                            int64_t t_ns, obs::Counter* counter,
                            etrace::TraceBuffer* trace) {
  if (!active) {
    *flag = false;
    return;
  }
  if (*flag) {
    return;  // level persists; only the rising edge reports
  }
  *flag = true;
  counter->Inc();
  if (anomalies_.size() < options_.max_anomalies) {
    Anomaly a;
    a.t_ns = t_ns;
    a.tid = tid;
    a.kind = kind;
    a.value = value;
    a.bound = bound;
    anomalies_.push_back(a);
  } else {
    ++anomalies_dropped_;
  }
  if (etrace::On(trace, etrace::kCatTimeseries)) {
    etrace::Event e;
    e.t_ns = t_ns;
    e.a = tid;
    // Integer payloads: ns for lag/starvation, permille for share error.
    const double scale = kind == AnomalyKind::kShareError ? 1000.0 : 1.0;
    e.v1 = static_cast<uint64_t>(value * scale);
    e.v2 = static_cast<uint64_t>(bound * scale);
    switch (kind) {
      case AnomalyKind::kLag:
        e.type = static_cast<uint16_t>(etrace::EventType::kLagAnomaly);
        break;
      case AnomalyKind::kStarvation:
        e.type = static_cast<uint16_t>(etrace::EventType::kStarvation);
        break;
      case AnomalyKind::kShareError:
        e.type = static_cast<uint16_t>(etrace::EventType::kShareError);
        break;
    }
    trace->Append(e);
  }
}

int64_t Sampler::Sample(SimTime now) {
  const int64_t t = now.nanos();
  const int64_t interval = options_.interval.nanos();
  if (!baselined_) {
    // First firing (at SetSampler's next loop step): take deltas' baselines
    // without emitting a sample — rates need a nonzero interval.
    baselined_ = true;
    last_t_ns_ = t;
    last_idle_ns_ = kernel_->idle_time().nanos();
    last_total_dispatches_ = kernel_->total_dispatches();
    base_total_dispatches_ = last_total_dispatches_;
    for (CpuState& cpu : cpus_) {
      cpu.last_busy_ns = kernel_->CpuBusySampled(cpu.index).nanos();
    }
    if (smp_ != nullptr) {
      last_steals_ = smp_->steals();
      last_migrations_ = smp_->migrations();
    }
    for (ClientState& client : clients_) {
      client.last_cpu_ns = kernel_->CpuTime(client.tid).nanos();
    }
    for (WatchedCounter& watched : watched_) {
      watched.last = watched.counter->value();
    }
    return t + interval;
  }
  const int64_t dt = t - last_t_ns_;
  if (dt <= 0) {
    return t + interval;
  }
  last_t_ns_ = t;
  ++samples_;
  m_samples_->Inc();
  const double dt_s = static_cast<double>(dt) * 1e-9;
  const int num_cpus = kernel_->num_cpus();
  const int64_t quantum_ns = kernel_->options().quantum.nanos();
  etrace::TraceBuffer* trace =
      options_.trace != nullptr ? options_.trace : kernel_->etrace();

  // Pass 1: base ticket weights of the competing (runnable) tracked set.
  uint64_t total_weight = 0;
  double total_base = 0.0;
  for (size_t i = 0; i < clients_.size(); ++i) {
    const ClientState& client = clients_[i];
    uint64_t weight = 0;
    if (kernel_->Alive(client.tid) && kernel_->ThreadRunnable(client.tid)) {
      weight = BaseValueRaw(client.tid, &total_base);
    }
    weights_[i] = weight;
    total_weight += weight;
  }

  // Machine quanta delivered since attach — the N of the binomial lag bound.
  const uint64_t machine_quanta =
      kernel_->total_dispatches() - base_total_dispatches_;
  const double n_quanta =
      static_cast<double>(machine_quanta > 0 ? machine_quanta : 1);

  // Group service delivered this interval — the entitlement base. Each
  // client deserves its ticket fraction of what the tracked set received,
  // which equals machine capacity when the set is the whole competing
  // population and stays honest when it is a sampled slice of one.
  int64_t total_drecv = 0;
  for (ClientState& client : clients_) {
    const int64_t cpu_ns = kernel_->CpuTime(client.tid).nanos();
    total_drecv += cpu_ns - client.last_cpu_ns;
  }

  // Trailing share-error window: retire the sample falling out of the ring
  // before pushing this one (late-tracked clients hold zeros there).
  const size_t window = options_.share_window_samples;
  const size_t slot = static_cast<size_t>((samples_ - 1) % window);
  const bool window_full = samples_ > window;
  if (window_full) {
    win_group_sum_ -= win_group_[slot];
    for (ClientState& client : clients_) {
      client.win_recv_sum -= client.win_recv[slot];
      client.win_ent_sum -= client.win_ent[slot];
    }
  }
  win_group_[slot] = total_drecv;
  win_group_sum_ += total_drecv;

  // Pass 2: per-client service deltas, entitlement accrual, lag, anomalies.
  int64_t starve_max_ns = 0;
  for (size_t i = 0; i < clients_.size(); ++i) {
    ClientState& client = clients_[i];
    const int64_t cpu_ns = kernel_->CpuTime(client.tid).nanos();
    const int64_t drecv = cpu_ns - client.last_cpu_ns;
    client.last_cpu_ns = cpu_ns;
    client.received_ns += drecv;
    int64_t dent = 0;
    if (total_weight > 0 && weights_[i] > 0) {
      // Entitled share of the group's delivered service this interval,
      // capped at one CPU (a single thread cannot consume more). 128-bit
      // exact; the truncation loses under 1 ns per client per sample.
      const __int128 wide = static_cast<__int128>(total_drecv) *
                            static_cast<__int128>(weights_[i]) /
                            static_cast<__int128>(total_weight);
      dent = wide > dt ? dt : static_cast<int64_t>(wide);
    }
    client.entitled_ns += dent;
    client.lag_ns = client.received_ns - client.entitled_ns;

    client.win_recv[slot] = drecv;
    client.win_ent[slot] = dent;
    client.win_recv_sum += drecv;
    client.win_ent_sum += dent;

    client.share = total_drecv > 0 ? static_cast<double>(drecv) /
                                         static_cast<double>(total_drecv)
                                   : 0.0;
    client.entitled_share =
        total_weight > 0 ? static_cast<double>(weights_[i]) /
                               static_cast<double>(total_weight)
                         : 0.0;
    client.share_err =
        win_group_sum_ > 0
            ? std::abs(static_cast<double>(client.win_recv_sum -
                                           client.win_ent_sum)) /
                  static_cast<double>(win_group_sum_)
            : 0.0;

    const bool runnable =
        kernel_->Alive(client.tid) && kernel_->ThreadRunnable(client.tid);
    client.since_dispatch_ns =
        runnable ? t - kernel_->LastDispatched(client.tid).nanos() : 0;
    if (client.since_dispatch_ns > starve_max_ns) {
      starve_max_ns = client.since_dispatch_ns;
    }

    series_[client.s_lag].series.Record(
        t, static_cast<double>(client.lag_ns) * 1e-6);
    series_[client.s_share].series.Record(t, client.share);
    series_[client.s_entitled].series.Record(t, client.entitled_share);
    series_[client.s_since].series.Record(
        t, static_cast<double>(client.since_dispatch_ns) * 1e-6);

    // Anomaly 1: |lag| outside the compensation-derived binomial envelope.
    bool lag_active = false;
    client.lag_bound_ns = 0;
    if (client.entitled_share > 0.0) {
      const double p = client.entitled_share;
      const double bound =
          static_cast<double>(quantum_ns) *
          (1.0 + options_.lag_sigma * std::sqrt(n_quanta * p * (1.0 - p)));
      client.lag_bound_ns = static_cast<int64_t>(bound);
      lag_active = std::abs(static_cast<double>(client.lag_ns)) > bound;
    }
    UpdateAnomaly(lag_active, &client.in_lag_anomaly, AnomalyKind::kLag,
                  client.tid, std::abs(static_cast<double>(client.lag_ns)),
                  static_cast<double>(client.lag_bound_ns), t,
                  m_lag_anomalies_, trace);

    // Anomaly 2: a runnable client starving past the watermark.
    const bool starving =
        runnable && client.since_dispatch_ns > options_.starvation_bound.nanos();
    UpdateAnomaly(starving, &client.in_starvation, AnomalyKind::kStarvation,
                  client.tid, static_cast<double>(client.since_dispatch_ns),
                  static_cast<double>(options_.starvation_bound.nanos()), t,
                  m_starvation_anomalies_, trace);

    // Anomaly 3: windowed share error (quiet until the window fills).
    const bool share_bad =
        window_full && client.share_err > options_.share_err_bound;
    UpdateAnomaly(share_bad, &client.in_share_anomaly,
                  AnomalyKind::kShareError, client.tid, client.share_err,
                  options_.share_err_bound, t, m_share_anomalies_, trace);
  }

  // Machine-level series.
  series_[s_runnable_].series.Record(
      t, static_cast<double>(kernel_->num_runnable()));
  const int64_t idle_ns = kernel_->idle_time().nanos();
  const double capacity_ns = static_cast<double>(dt) * num_cpus;
  const double util =
      1.0 - static_cast<double>(idle_ns - last_idle_ns_) / capacity_ns;
  last_idle_ns_ = idle_ns;
  series_[s_util_].series.Record(t, util);
  const uint64_t dispatches = kernel_->total_dispatches();
  series_[s_dispatch_hz_].series.Record(
      t, static_cast<double>(dispatches - last_total_dispatches_) / dt_s);
  last_total_dispatches_ = dispatches;
  series_[s_total_tickets_].series.Record(t, total_base);
  series_[s_starve_max_].series.Record(
      t, static_cast<double>(starve_max_ns) * 1e-6);

  for (CpuState& cpu : cpus_) {
    const int64_t busy_ns = kernel_->CpuBusySampled(cpu.index).nanos();
    series_[cpu.s_util].series.Record(
        t, static_cast<double>(busy_ns - cpu.last_busy_ns) /
               static_cast<double>(dt));
    cpu.last_busy_ns = busy_ns;
    if (smp_ != nullptr) {
      series_[cpu.s_queued].series.Record(
          t, static_cast<double>(smp_->cpu(cpu.index).QueuedCount()));
      series_[cpu.s_steals].series.Record(
          t, static_cast<double>(cpu.steals_in->value()));
    }
  }
  if (smp_ != nullptr) {
    const uint64_t steals = smp_->steals();
    const uint64_t migrations = smp_->migrations();
    series_[s_steal_hz_].series.Record(
        t, static_cast<double>(steals - last_steals_) / dt_s);
    series_[s_migration_hz_].series.Record(
        t, static_cast<double>(migrations - last_migrations_) / dt_s);
    last_steals_ = steals;
    last_migrations_ = migrations;
  }
  for (WatchedCounter& watched : watched_) {
    const uint64_t value = watched.counter->value();
    series_[watched.series].series.Record(
        t, static_cast<double>(value - watched.last) / dt_s);
    watched.last = value;
  }

  if (snapshot_) {
    snapshot_(*this, now);
  }
  return t + interval;
}

std::vector<std::string> Sampler::SeriesNames() const {
  std::vector<std::string> names;
  names.reserve(series_.size());
  for (const NamedSeries& entry : series_) {
    names.push_back(entry.name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

const Series* Sampler::FindSeries(const std::string& name) const {
  for (const NamedSeries& entry : series_) {
    if (entry.name == name) {
      return &entry.series;
    }
  }
  return nullptr;
}

std::string Sampler::ToJson(const std::string& source, uint64_t seed) const {
  std::vector<size_t> order(series_.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::sort(order.begin(), order.end(), [this](size_t a, size_t b) {
    return series_[a].name < series_[b].name;
  });

  obs::JsonWriter w;
  w.BeginObject();
  w.Key("anomalies").BeginArray();
  for (const Anomaly& a : anomalies_) {
    w.BeginObject();
    w.Key("bound").Double(a.bound);
    w.Key("kind").String(AnomalyKindName(a.kind));
    w.Key("t_ns").Int(a.t_ns);
    w.Key("tid").Uint(a.tid);
    w.Key("value").Double(a.value);
    w.EndObject();
  }
  w.EndArray();
  w.Key("anomalies_dropped").Uint(anomalies_dropped_);
  w.Key("clients").BeginArray();
  for (const ClientState& client : clients_) {
    w.BeginObject();
    w.Key("label").String(client.label);
    w.Key("tid").Uint(client.tid);
    w.EndObject();
  }
  w.EndArray();
  w.Key("kind").String("timeseries");
  w.Key("metadata").BeginObject();
  w.Key("interval_ns").Int(options_.interval.nanos());
  w.Key("lag_sigma").Double(options_.lag_sigma);
  w.Key("num_cpus").Int(kernel_->num_cpus());
  w.Key("quantum_ns").Int(kernel_->options().quantum.nanos());
  w.Key("samples").Uint(samples_);
  w.Key("seed").Uint(seed);
  w.Key("share_err_bound").Double(options_.share_err_bound);
  w.Key("share_window_samples").Uint(options_.share_window_samples);
  w.Key("starvation_bound_ns").Int(options_.starvation_bound.nanos());
  w.EndObject();
  w.Key("schema_version").Uint(1);
  w.Key("series").BeginObject();
  for (const size_t i : order) {
    w.Key(series_[i].name);
    series_[i].series.AppendJson(w);
  }
  w.EndObject();
  w.Key("source").String(source);
  w.EndObject();
  return w.str();
}

void Sampler::WriteJson(const std::string& path, const std::string& source,
                        uint64_t seed) const {
  obs::WriteFile(path, ToJson(source, seed));
}

}  // namespace ts
}  // namespace lottery
