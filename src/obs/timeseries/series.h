// Fixed-footprint time series with deterministic full-history downsampling.
//
// A Series is a bounded vector of buckets, each summarising `stride`
// consecutive samples with an obs::StreamingStats (count/mean/min/max) plus
// the sim-time span they cover. When the vector fills, adjacent buckets are
// pairwise-merged in place (Chan's formula, via StreamingStats::Merge) and
// the stride doubles — so a series never forgets its beginning, never
// exceeds its construction-time capacity, and never allocates after
// construction. Resolution degrades geometrically instead of the window
// sliding: a 200 s run recorded at 0.5 s lands in the same few hundred
// buckets as a 20 s run, just coarser.
//
// Everything is a pure fold over the Record() call sequence: same samples
// in, same buckets out, byte-identical JSON across same-seed runs.

#ifndef SRC_OBS_TIMESERIES_SERIES_H_
#define SRC_OBS_TIMESERIES_SERIES_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/obs/json_writer.h"
#include "src/obs/streaming.h"

namespace lottery {
namespace ts {

class Series {
 public:
  struct Bucket {
    int64_t t_first_ns = 0;
    int64_t t_last_ns = 0;
    obs::StreamingStats stats;
  };

  // `capacity` is the maximum bucket count (>= 2); memory is reserved here
  // and never grows. Throws std::invalid_argument on a degenerate capacity.
  explicit Series(size_t capacity);

  // Folds one (t, value) sample into the current bucket, opening a new
  // bucket — compacting first if at capacity — when the current one holds
  // `stride` samples. Timestamps must be fed in non-decreasing order (the
  // Sampler's dispatch-loop cadence guarantees strictly increasing).
  void Record(int64_t t_ns, double value);

  size_t size() const { return buckets_.size(); }
  size_t capacity() const { return capacity_; }
  const Bucket& bucket(size_t i) const { return buckets_[i]; }
  // Samples per full bucket at the current resolution (doubles on compact).
  uint64_t stride() const { return stride_; }
  uint64_t total_points() const { return total_points_; }
  // Times the series halved its resolution to stay within capacity.
  uint32_t compactions() const { return compactions_; }

  // Mean of the most recent bucket (0 when empty) — the dashboard's "now".
  double last_value() const;

  // Appends this series as a JSON object with lexicographically ordered
  // keys: {"count": [...], "max": [...], "mean": [...], "min": [...],
  // "stride": k, "t_ns": [...]}. The t axis is each bucket's last sample
  // time, strictly increasing.
  void AppendJson(obs::JsonWriter& w) const;

 private:
  // Pairwise in-place merge: [2i] absorbs [2i+1], an odd trailing bucket
  // shifts down and keeps filling at the doubled stride.
  void Compact();

  std::vector<Bucket> buckets_;
  size_t capacity_;
  uint64_t stride_ = 1;
  uint64_t total_points_ = 0;
  uint32_t compactions_ = 0;
};

}  // namespace ts
}  // namespace lottery

#endif  // SRC_OBS_TIMESERIES_SERIES_H_
