// Deterministic sim-time sampling with an online fairness-lag auditor.
//
// The Sampler implements lottery::SampleHook: the kernel's dispatch loop
// invokes Sample() at a fixed virtual-time cadence (quantized to dispatch
// steps), and each sample folds the machine's state into bounded Series
// (series.h). Per tracked client it maintains the paper's central temporal
// quantity online:
//
//   lag(t) = received(t) − entitled(t)
//
// where received is cumulative CPU actually delivered (Kernel::CpuTime) and
// entitled accrues at the client's base ticket share of the service the
// tracked group received that interval — ThreadBaseValue divides any
// compensation boost back out, so entitlement tracks what the client
// *deserves* while compensation is the mechanism that keeps received near
// it. Basing entitlement on group service (not raw machine capacity) makes
// the audit exact whether the tracked set is the whole competing population
// (fig5: group service == machine capacity) or a sampled slice of a much
// larger one (bench_scale tracks 8 of n threads): either way, lag measures
// proportionality among the audited clients, never idle time or untracked
// competitors. Track the full competing set when you want the machine-level
// entitlement story. Figure 5 plots exactly this drift over 8 s
// windows; the auditor watches it continuously and emits edge-triggered
// anomalies into etrace (kCatTimeseries) when:
//
//   - |lag| exceeds the compensation-derived bound
//       quantum · (1 + lag_sigma · sqrt(N·p·(1−p)))
//     (N machine quanta since attach, p the entitled share): the lottery's
//     binomial win process keeps a fair client's lag inside this envelope
//     with overwhelming probability, so a crossing means entitlement is not
//     being honoured — e.g. a fractional-quantum consumer with compensation
//     disabled (Section 4.5's motivating failure).
//   - a runnable client goes undispatched longer than starvation_bound.
//   - the windowed share error — |received − entitled| over the trailing
//     share_window_samples, as a fraction of the group service delivered in
//     that window — exceeds share_err_bound.
//
// Determinism and cost: the sample path reads only sim-state (no wall
// clocks), never touches an RNG stream, iterates only vectors and ordered
// containers, and performs no heap allocation in the steady state — series
// buckets are reserved at construction and compact in place, anomaly
// storage is reserved up front and counts drops past the cap. Everything
// upstream compiles out under LOTTERY_OBS=OFF (the kernel's poll is
// `if constexpr` on obs::kObsEnabled).

#ifndef SRC_OBS_TIMESERIES_SAMPLER_H_
#define SRC_OBS_TIMESERIES_SAMPLER_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/core/lottery_scheduler.h"
#include "src/obs/counter.h"
#include "src/obs/etrace/trace_buffer.h"
#include "src/obs/registry.h"
#include "src/obs/timeseries/series.h"
#include "src/sched/smp/smp_scheduler.h"
#include "src/sim/kernel.h"
#include "src/util/sim_time.h"

namespace lottery {
namespace ts {

enum class AnomalyKind : uint8_t {
  kLag = 0,
  kStarvation = 1,
  kShareError = 2,
};

const char* AnomalyKindName(AnomalyKind kind);

struct Anomaly {
  int64_t t_ns = 0;
  ThreadId tid = 0;
  AnomalyKind kind = AnomalyKind::kLag;
  double value = 0.0;  // ns for lag/starvation, service fraction for share
  double bound = 0.0;  // the threshold that was crossed, same unit
};

class Sampler : public SampleHook {
 public:
  struct Options {
    // Virtual-time sampling cadence (must be positive). Samples land on the
    // first dispatch-loop step at or past each due time, so the t axis is
    // strictly increasing and a pure function of the seed.
    SimDuration interval = SimDuration::Millis(500);
    // Buckets per series; memory per series is fixed at construction and
    // resolution halves in place when a run outgrows it.
    size_t series_capacity = 256;
    // Lag envelope width in binomial standard deviations. 6 keeps a fair
    // client's random walk inside the bound for any realistic run length
    // while a genuine entitlement failure (lag growing linearly in t)
    // crosses it within a few windows.
    double lag_sigma = 6.0;
    // A runnable client undispatched this long is starving. At 10 s and a
    // 100 ms quantum even a 1-in-6 share misses all 100 lotteries with
    // probability (5/6)^100 ≈ 1e-8 — a crossing is a scheduling failure,
    // not noise.
    SimDuration starvation_bound = SimDuration::Seconds(10);
    // Windowed |received − entitled| as a fraction of the service the
    // tracked group received over the window.
    double share_err_bound = 0.35;
    // Trailing window length, in samples, for the share-error check (the
    // check stays quiet until the window has filled once).
    size_t share_window_samples = 16;
    // Recorded anomalies are capped (storage is pre-reserved); further
    // ones still count and trace, but only anomalies_dropped() grows.
    size_t max_anomalies = 256;
    // Counter sink for ts.* counters; nullptr uses the kernel's registry.
    obs::Registry* metrics = nullptr;
    // Anomaly event sink; nullptr follows the kernel's current trace.
    etrace::TraceBuffer* trace = nullptr;
  };

  // Per-client audit state. Cumulative fields are measured from Track()
  // time; instantaneous fields describe the most recent sample.
  struct ClientState {
    ThreadId tid = 0;
    std::string label;
    int64_t received_ns = 0;
    int64_t entitled_ns = 0;
    int64_t lag_ns = 0;
    int64_t lag_bound_ns = 0;
    int64_t since_dispatch_ns = 0;
    double share = 0.0;           // of group service this interval
    double entitled_share = 0.0;  // base ticket share of tracked runnables
    double share_err = 0.0;       // trailing-window group-service fraction
    bool in_lag_anomaly = false;
    bool in_starvation = false;
    bool in_share_anomaly = false;

   private:
    friend class Sampler;
    int64_t last_cpu_ns = 0;
    std::vector<int64_t> win_recv;  // per-sample deltas, ring of window size
    std::vector<int64_t> win_ent;
    int64_t win_recv_sum = 0;
    int64_t win_ent_sum = 0;
    size_t s_lag = 0;  // series indices
    size_t s_share = 0;
    size_t s_entitled = 0;
    size_t s_since = 0;
  };

  // `kernel` must outlive the sampler. Nothing fires until the caller also
  // does kernel->SetSampler(&sampler); the destructor detaches itself if
  // still installed.
  Sampler(Kernel* kernel, Options options);
  ~Sampler() override;
  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  // --- Setup (allocates; call before the steady state) ----------------------

  // Entitlement source: exactly one of these, matching the kernel's policy
  // scheduler. Without one, lag/share auditing is disabled (weights are
  // unknown) and only kernel-level series record.
  void AttachScheduler(LotteryScheduler* sched);
  void AttachSmp(smp::SmpScheduler* smp);

  // Audits thread `tid` under `label` (lowercased; characters outside
  // [a-z0-9_.] become '_'; must be unique). Cumulative service is measured
  // from this call. Throws on duplicate labels or unknown threads.
  void Track(ThreadId tid, const std::string& label);

  // Adds a rate series "rate.<name>" (Hz) over a registry counter.
  void WatchCounter(const std::string& name);

  // Called at the end of every completed sample — the live dashboard's
  // attach point. The hook may allocate/render; it runs outside the
  // zero-allocation contract, which covers only the sampler's own work.
  using SnapshotFn = std::function<void(const Sampler&, SimTime)>;
  void SetSnapshotHook(SnapshotFn fn) { snapshot_ = std::move(fn); }

  // --- SampleHook -----------------------------------------------------------

  int64_t Sample(SimTime now) override;

  // --- Introspection (dashboard, tests) -------------------------------------

  uint64_t samples() const { return samples_; }
  size_t num_clients() const { return clients_.size(); }
  const ClientState& client_state(size_t i) const { return clients_[i]; }
  const std::vector<Anomaly>& anomalies() const { return anomalies_; }
  uint64_t anomalies_dropped() const { return anomalies_dropped_; }
  const Options& options() const { return options_; }
  Kernel* kernel() const { return kernel_; }

  // Sorted series names / lookup by exact name (nullptr when absent).
  std::vector<std::string> SeriesNames() const;
  const Series* FindSeries(const std::string& name) const;

  // --- Export ---------------------------------------------------------------

  // Schema-stable document: {"anomalies": [...], "anomalies_dropped": n,
  // "clients": [...], "kind": "timeseries", "metadata": {...},
  // "schema_version": 1, "series": {...}, "source": "..."} — keys
  // lexicographically ordered at every level, t axes strictly increasing,
  // all values finite. Byte-identical across same-seed runs.
  std::string ToJson(const std::string& source, uint64_t seed) const;
  void WriteJson(const std::string& path, const std::string& source,
                 uint64_t seed) const;

 private:
  struct CpuState {
    int index = 0;
    int64_t last_busy_ns = 0;
    obs::Counter* steals_in = nullptr;  // null outside SMP
    size_t s_util = 0;
    size_t s_queued = 0;  // unused (0) outside SMP
    size_t s_steals = 0;
  };
  struct WatchedCounter {
    obs::Counter* counter = nullptr;
    uint64_t last = 0;
    size_t series = 0;
  };
  struct NamedSeries {
    std::string name;
    Series series;
  };

  size_t AddSeries(const std::string& name);
  uint64_t BaseValueRaw(ThreadId tid, double* base_units);
  // Rising-edge anomaly bookkeeping: count, record (bounded), trace.
  void UpdateAnomaly(bool active, bool* flag, AnomalyKind kind, ThreadId tid,
                     double value, double bound, int64_t t_ns,
                     obs::Counter* counter, etrace::TraceBuffer* trace);

  Kernel* kernel_;
  Options options_;
  LotteryScheduler* sched_ = nullptr;
  smp::SmpScheduler* smp_ = nullptr;
  obs::Registry* metrics_;
  SnapshotFn snapshot_;

  std::vector<NamedSeries> series_;
  std::vector<ClientState> clients_;
  std::vector<CpuState> cpus_;
  std::vector<WatchedCounter> watched_;
  std::vector<uint64_t> weights_;  // per-client scratch, sized by Track
  std::vector<Anomaly> anomalies_;  // reserved to max_anomalies
  uint64_t anomalies_dropped_ = 0;

  bool baselined_ = false;
  int64_t last_t_ns_ = 0;
  int64_t last_idle_ns_ = 0;
  uint64_t last_total_dispatches_ = 0;
  uint64_t base_total_dispatches_ = 0;
  uint64_t last_steals_ = 0;
  uint64_t last_migrations_ = 0;
  uint64_t samples_ = 0;

  // Shared trailing-window ring of per-sample group service (the share-
  // error denominator); per-client rings hold the matching service deltas.
  std::vector<int64_t> win_group_;
  int64_t win_group_sum_ = 0;

  // Global series indices.
  size_t s_runnable_ = 0;
  size_t s_util_ = 0;
  size_t s_dispatch_hz_ = 0;
  size_t s_total_tickets_ = 0;
  size_t s_starve_max_ = 0;
  size_t s_steal_hz_ = 0;      // SMP only
  size_t s_migration_hz_ = 0;  // SMP only

  // Obs hooks (resolved once; raw pointers into metrics_).
  obs::Counter* m_samples_;
  obs::Counter* m_lag_anomalies_;
  obs::Counter* m_starvation_anomalies_;
  obs::Counter* m_share_anomalies_;
};

}  // namespace ts
}  // namespace lottery

#endif  // SRC_OBS_TIMESERIES_SAMPLER_H_
