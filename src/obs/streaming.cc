// lotlint: file float-ok (streaming moment accumulation is float by design;
// results feed telemetry downsampling, never ticket or pass state)
#include "src/obs/streaming.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace lottery {
namespace obs {

void StreamingStats::Add(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  const double delta = value - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (value - mean_);
}

void StreamingStats::Merge(const StreamingStats& other) {
  if (other.count_ == 0) {
    return;
  }
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(count_);
  const double nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * (nb / total);
  m2_ += other.m2_ + delta * delta * (na * nb / total);
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

void StreamingStats::Reset() { *this = StreamingStats(); }

double StreamingStats::variance() const {
  if (count_ < 2) {
    return 0.0;
  }
  // m2_ can drift a hair below zero from cancellation; clamp.
  return std::max(0.0, m2_ / static_cast<double>(count_));
}

double StreamingStats::stddev() const { return std::sqrt(variance()); }

std::string StreamingStats::Summary() const {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "count=%llu mean=%.6g stddev=%.6g min=%.6g max=%.6g",
                static_cast<unsigned long long>(count_), mean(), stddev(),
                min(), max());
  return buf;
}

}  // namespace obs
}  // namespace lottery
