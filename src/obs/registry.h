// Named metric registry.
//
// Components resolve their metrics once at construction (create-or-get by
// name) and keep raw pointers; std::map nodes are stable, so the pointers
// stay valid for the registry's lifetime. Benches and tests either share
// the process-wide Default() registry (the bench JSON path dumps it) or
// pass their own instance for isolation.
//
// Naming convention: dotted lowercase, "<component>.<event>", e.g.
// "lottery.draws", "kernel.dispatches", "mutex.wait_us". Histograms carry
// their unit as the final suffix.

#ifndef SRC_OBS_REGISTRY_H_
#define SRC_OBS_REGISTRY_H_

#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "src/obs/counter.h"
#include "src/obs/histogram.h"

namespace lottery {
namespace obs {

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  // Create-or-get: repeated lookups of one name return the same object, so
  // independent components contributing to one logical metric merge freely.
  Counter* counter(const std::string& name);
  LatencyHistogram* histogram(const std::string& name);

  // Lookup without creation; nullptr when the name is unknown.
  const Counter* FindCounter(const std::string& name) const;
  const LatencyHistogram* FindHistogram(const std::string& name) const;

  // Snapshots in name order (deterministic output).
  std::vector<std::pair<std::string, uint64_t>> CounterValues() const;
  std::vector<std::pair<std::string, const LatencyHistogram*>> Histograms()
      const;

  size_t num_counters() const { return counters_.size(); }
  size_t num_histograms() const { return histograms_.size(); }

  // Zeroes every metric but keeps registrations (component pointers stay
  // valid). Used by multi-phase benches between runs.
  void Reset();

  // {"counters": {name: value, ...},
  //  "histograms": {name: {count, mean, p50, p90, p99, max}, ...}}
  std::string ToJson() const;

  // Process-wide registry used whenever a component is not handed an
  // explicit one. Never destroyed during static teardown races.
  static Registry& Default();

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, LatencyHistogram> histograms_;
};

}  // namespace obs
}  // namespace lottery

#endif  // SRC_OBS_REGISTRY_H_
