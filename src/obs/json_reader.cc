#include "src/obs/json_reader.h"

#include <cerrno>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace lottery {
namespace obs {

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  JsonValue Parse() {
    JsonValue value = ParseValue();
    SkipWs();
    if (pos_ != text_.size()) {
      Fail("trailing characters after document");
    }
    return value;
  }

 private:
  [[noreturn]] void Fail(const std::string& what) const {
    throw std::runtime_error("json: " + what + " at offset " +
                             std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') {
        break;
      }
      ++pos_;
    }
  }

  char Peek() {
    if (pos_ >= text_.size()) {
      Fail("unexpected end of input");
    }
    return text_[pos_];
  }

  void Expect(char c) {
    if (Peek() != c) {
      Fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool Literal(const char* word) {
    size_t n = 0;
    while (word[n] != '\0') {
      ++n;
    }
    if (text_.compare(pos_, n, word) != 0) {
      return false;
    }
    pos_ += n;
    return true;
  }

  JsonValue ParseValue() {
    SkipWs();
    const char c = Peek();
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.str = ParseString();
        return v;
      }
      case 't': {
        if (!Literal("true")) {
          Fail("bad literal");
        }
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        v.boolean = true;
        return v;
      }
      case 'f': {
        if (!Literal("false")) {
          Fail("bad literal");
        }
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        v.boolean = false;
        return v;
      }
      case 'n': {
        if (!Literal("null")) {
          Fail("bad literal");
        }
        return JsonValue{};
      }
      default:
        if (c == '-' || (c >= '0' && c <= '9')) {
          return ParseNumber();
        }
        // Explicitly reject the common non-finite spellings with a clear
        // message; they are the schema violation the CI check hunts for.
        if (c == 'N' || c == 'I') {
          Fail("NaN/Infinity are not valid JSON");
        }
        Fail("unexpected character");
    }
  }

  JsonValue ParseObject() {
    Expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    SkipWs();
    if (Peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      SkipWs();
      std::string key = ParseString();
      for (const auto& member : v.members) {
        if (member.first == key) {
          Fail("duplicate object key \"" + key + "\"");
        }
      }
      SkipWs();
      Expect(':');
      v.members.emplace_back(std::move(key), ParseValue());
      SkipWs();
      const char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        return v;
      }
      Fail("expected ',' or '}'");
    }
  }

  JsonValue ParseArray() {
    Expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    SkipWs();
    if (Peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.items.push_back(ParseValue());
      SkipWs();
      const char c = Peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        return v;
      }
      Fail("expected ',' or ']'");
    }
  }

  std::string ParseString() {
    Expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) {
        Fail("unterminated string");
      }
      const char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        Fail("raw control character in string");
      }
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) {
        Fail("unterminated escape");
      }
      const char e = text_[pos_++];
      switch (e) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) {
            Fail("truncated \\u escape");
          }
          uint32_t code = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<uint32_t>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<uint32_t>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<uint32_t>(h - 'A' + 10);
            } else {
              Fail("bad hex digit in \\u escape");
            }
          }
          // UTF-8 encode the BMP code point (surrogate pairs are not used
          // by our writer; reject them rather than mis-encode).
          if (code >= 0xD800 && code <= 0xDFFF) {
            Fail("surrogate \\u escapes unsupported");
          }
          if (code < 0x80) {
            out.push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out.push_back(static_cast<char>(0xC0 | (code >> 6)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out.push_back(static_cast<char>(0xE0 | (code >> 12)));
            out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default:
          Fail("bad escape character");
      }
    }
  }

  JsonValue ParseNumber() {
    const size_t start = pos_;
    if (Peek() == '-') {
      ++pos_;
    }
    bool integral = true;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c >= '0' && c <= '9') {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        integral = false;
        ++pos_;
      } else {
        break;
      }
    }
    const std::string token = text_.substr(start, pos_ - start);
    if (token.empty() || token == "-") {
      Fail("bad number");
    }
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    errno = 0;
    char* end = nullptr;
    v.number = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0' || errno == ERANGE) {
      Fail("unparseable number \"" + token + "\"");
    }
    if (integral) {
      errno = 0;
      const long long ll = std::strtoll(token.c_str(), &end, 10);
      if (end != nullptr && *end == '\0' && errno != ERANGE) {
        v.integer = static_cast<int64_t>(ll);
        v.is_int = true;
      }
    }
    return v;
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

const JsonValue* JsonValue::Find(const std::string& key) const {
  for (const auto& member : members) {
    if (member.first == key) {
      return &member.second;
    }
  }
  return nullptr;
}

const JsonValue& JsonValue::At(const std::string& key) const {
  const JsonValue* v = Find(key);
  if (v == nullptr) {
    throw std::runtime_error("json: missing key \"" + key + "\"");
  }
  return *v;
}

int64_t JsonValue::IntAt(const std::string& key) const {
  const JsonValue& v = At(key);
  if (!v.IsNumber() || !v.is_int) {
    throw std::runtime_error("json: key \"" + key + "\" is not an integer");
  }
  return v.integer;
}

double JsonValue::NumberAt(const std::string& key) const {
  const JsonValue& v = At(key);
  if (!v.IsNumber()) {
    throw std::runtime_error("json: key \"" + key + "\" is not a number");
  }
  return v.number;
}

const std::string& JsonValue::StringAt(const std::string& key) const {
  const JsonValue& v = At(key);
  if (!v.IsString()) {
    throw std::runtime_error("json: key \"" + key + "\" is not a string");
  }
  return v.str;
}

JsonValue ParseJson(const std::string& text) { return Parser(text).Parse(); }

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (!in.good() && !in.eof()) {
    throw std::runtime_error("read failed: " + path);
  }
  return buffer.str();
}

}  // namespace obs
}  // namespace lottery
