// Minimal streaming JSON writer.
//
// Emits schema-stable, machine-readable output for the bench harnesses
// (BENCH_<name>.json) and the metric registry without pulling in a JSON
// dependency. The writer keeps a nesting stack and inserts commas
// automatically; keys and string values are escaped per RFC 8259. Doubles
// are emitted with enough precision to round-trip metric values and are
// sanitised (NaN/Inf become null, which the CI schema check rejects —
// a bench emitting non-finite metrics is a bug worth failing on).

#ifndef SRC_OBS_JSON_WRITER_H_
#define SRC_OBS_JSON_WRITER_H_

#include <cstdint>
#include <string>
#include <vector>

namespace lottery {
namespace obs {

class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();

  // Writes a key inside an object; must be followed by a value or Begin*.
  JsonWriter& Key(const std::string& name);

  JsonWriter& String(const std::string& value);
  JsonWriter& Int(int64_t value);
  JsonWriter& Uint(uint64_t value);
  JsonWriter& Double(double value);
  JsonWriter& Bool(bool value);
  JsonWriter& Null();

  // The document so far. Valid JSON once all scopes are closed.
  const std::string& str() const { return out_; }

  static std::string Escape(const std::string& raw);

 private:
  enum class Scope { kObject, kArray };
  void BeforeValue();

  std::string out_;
  std::vector<Scope> stack_;
  std::vector<bool> has_items_;
  bool pending_key_ = false;
};

// Writes `contents` to `path` atomically enough for bench use (truncate +
// write + flush). Throws std::runtime_error on I/O failure so benches fail
// loudly instead of silently dropping their JSON in CI.
void WriteFile(const std::string& path, const std::string& contents);

}  // namespace obs
}  // namespace lottery

#endif  // SRC_OBS_JSON_WRITER_H_
