#include "src/obs/json_writer.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <stdexcept>

namespace lottery {
namespace obs {

std::string JsonWriter::Escape(const std::string& raw) {
  std::string out;
  out.reserve(raw.size() + 2);
  for (const char c : raw) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buffer[8];
          std::snprintf(buffer, sizeof(buffer), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buffer;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::BeforeValue() {
  if (pending_key_) {
    pending_key_ = false;
    return;
  }
  if (!stack_.empty()) {
    if (stack_.back() == Scope::kObject) {
      throw std::logic_error("JsonWriter: value in object without a key");
    }
    if (has_items_.back()) {
      out_ += ',';
    }
    has_items_.back() = true;
  }
}

JsonWriter& JsonWriter::BeginObject() {
  BeforeValue();
  out_ += '{';
  stack_.push_back(Scope::kObject);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  if (stack_.empty() || stack_.back() != Scope::kObject || pending_key_) {
    throw std::logic_error("JsonWriter: mismatched EndObject");
  }
  out_ += '}';
  stack_.pop_back();
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  BeforeValue();
  out_ += '[';
  stack_.push_back(Scope::kArray);
  has_items_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  if (stack_.empty() || stack_.back() != Scope::kArray) {
    throw std::logic_error("JsonWriter: mismatched EndArray");
  }
  out_ += ']';
  stack_.pop_back();
  has_items_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& name) {
  if (stack_.empty() || stack_.back() != Scope::kObject || pending_key_) {
    throw std::logic_error("JsonWriter: Key outside object");
  }
  if (has_items_.back()) {
    out_ += ',';
  }
  has_items_.back() = true;
  out_ += '"';
  out_ += Escape(name);
  out_ += "\":";
  pending_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& value) {
  BeforeValue();
  out_ += '"';
  out_ += Escape(value);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::Int(int64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Uint(uint64_t value) {
  BeforeValue();
  out_ += std::to_string(value);
  return *this;
}

JsonWriter& JsonWriter::Double(double value) {
  BeforeValue();
  if (!std::isfinite(value)) {
    out_ += "null";
    return *this;
  }
  char buffer[40];
  std::snprintf(buffer, sizeof(buffer), "%.12g", value);
  std::string text(buffer);
  // Bare integers like "42" are valid JSON numbers already; keep them.
  out_ += text;
  return *this;
}

JsonWriter& JsonWriter::Bool(bool value) {
  BeforeValue();
  out_ += value ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Null() {
  BeforeValue();
  out_ += "null";
  return *this;
}

void WriteFile(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::trunc | std::ios::binary);
  if (!out) {
    throw std::runtime_error("obs::WriteFile: cannot open " + path);
  }
  out << contents << '\n';
  out.flush();
  if (!out) {
    throw std::runtime_error("obs::WriteFile: write failed for " + path);
  }
}

}  // namespace obs
}  // namespace lottery
