// User-level command interface (Section 4.7).
//
// The prototype exposed currencies and tickets through setuid commands:
// "mktkt, rmtkt, mkcur, rmcur" to create and destroy tickets and
// currencies, "fund, unfund" to move funding, "lstkt, lscur" to inspect,
// and "fundx" to execute a command with specified funding. This module is
// that interface as an embeddable interpreter: each command line mutates a
// LotteryScheduler's currency table on behalf of a principal (checked
// against currency ACLs), and listings render the same information the
// paper's tools printed. The REPL example `examples/lotteryctl` wires it to
// stdin.
//
// Grammar (one command per line, whitespace separated; '#' comments):
//   mkcur <name> [owner]          create a currency
//   rmcur <name>                  destroy a currency (retires its backing)
//   mktkt <currency> <amount>     issue a ticket; prints "ticket <id>"
//   rmtkt <id>                    destroy a ticket
//   fund <currency> <id>          use ticket <id> to back <currency>
//   unfund <id>                   detach ticket <id> from what it backs
//   setamt <id> <amount>          inflate/deflate a ticket
//   fundthread <tid> <currency> <amount>   issue + fund a thread's currency
//   lscur [name]                  list currencies (value, amounts, backing)
//   lstkt [currency]              list tickets (id, attachment, value)
//   help                          this text

#ifndef SRC_CTL_INTERPRETER_H_
#define SRC_CTL_INTERPRETER_H_

#include <stdexcept>
#include <string>
#include <vector>

#include "src/core/lottery_scheduler.h"

namespace lottery {

// Raised on malformed commands or rejected operations; the message is the
// user-facing error text.
class CommandError : public std::runtime_error {
 public:
  explicit CommandError(const std::string& what) : std::runtime_error(what) {}
};

class CommandInterpreter {
 public:
  // The scheduler must outlive the interpreter.
  explicit CommandInterpreter(LotteryScheduler* scheduler)
      : scheduler_(scheduler) {}

  // Executes one command line on behalf of `principal` and returns its
  // output (possibly empty). Throws CommandError on failure; the table is
  // left unchanged by failed commands.
  std::string Execute(const std::string& line,
                      const std::string& principal = "root");

  // Convenience: executes a whole script, stopping at the first error.
  // Returns concatenated non-empty outputs.
  std::string ExecuteScript(const std::string& script,
                            const std::string& principal = "root");

 private:
  std::string Mkcur(const std::vector<std::string>& args);
  std::string Rmcur(const std::vector<std::string>& args);
  std::string Mktkt(const std::vector<std::string>& args,
                    const std::string& principal);
  std::string Rmtkt(const std::vector<std::string>& args);
  std::string Fund(const std::vector<std::string>& args);
  std::string Unfund(const std::vector<std::string>& args);
  std::string Setamt(const std::vector<std::string>& args);
  std::string FundThreadCmd(const std::vector<std::string>& args,
                            const std::string& principal);
  std::string Lscur(const std::vector<std::string>& args);
  std::string Lstkt(const std::vector<std::string>& args);

  Currency* CurrencyOrThrow(const std::string& name);
  Ticket* TicketOrThrow(const std::string& id_text);
  static int64_t AmountOrThrow(const std::string& text);

  LotteryScheduler* scheduler_;
};

}  // namespace lottery

#endif  // SRC_CTL_INTERPRETER_H_
