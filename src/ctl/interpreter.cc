#include "src/ctl/interpreter.h"

#include <cstdlib>
#include <sstream>

#include "src/util/table.h"

namespace lottery {

namespace {

constexpr char kHelp[] =
    "mkcur <name> [owner]    create a currency\n"
    "rmcur <name>            destroy a currency\n"
    "mktkt <currency> <amt>  issue a ticket (prints its id)\n"
    "rmtkt <id>              destroy a ticket\n"
    "fund <currency> <id>    back <currency> with ticket <id>\n"
    "unfund <id>             detach ticket <id>\n"
    "setamt <id> <amt>       change a ticket's amount\n"
    "fundthread <tid> <currency> <amt>  fund a thread\n"
    "lscur [name]            list currencies\n"
    "lstkt [currency]        list tickets\n"
    "dot                     dump the funding graph as graphviz\n"
    "help                    show this text\n";

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) {
    if (token[0] == '#') {
      break;  // comment to end of line
    }
    tokens.push_back(token);
  }
  return tokens;
}

std::string AttachmentOf(const Ticket* t) {
  if (t->holder() != nullptr) {
    return "held by " + t->holder()->name();
  }
  if (t->funds() != nullptr) {
    return "funds " + t->funds()->name();
  }
  return "unattached";
}

}  // namespace

std::string CommandInterpreter::Execute(const std::string& line,
                                        const std::string& principal) {
  const std::vector<std::string> tokens = Tokenize(line);
  if (tokens.empty()) {
    return "";
  }
  const std::string& cmd = tokens[0];
  const std::vector<std::string> args(tokens.begin() + 1, tokens.end());
  try {
    if (cmd == "mkcur") {
      return Mkcur(args);
    }
    if (cmd == "rmcur") {
      return Rmcur(args);
    }
    if (cmd == "mktkt") {
      return Mktkt(args, principal);
    }
    if (cmd == "rmtkt") {
      return Rmtkt(args);
    }
    if (cmd == "fund") {
      return Fund(args);
    }
    if (cmd == "unfund") {
      return Unfund(args);
    }
    if (cmd == "setamt") {
      return Setamt(args);
    }
    if (cmd == "fundthread") {
      return FundThreadCmd(args, principal);
    }
    if (cmd == "lscur") {
      return Lscur(args);
    }
    if (cmd == "lstkt") {
      return Lstkt(args);
    }
    if (cmd == "dot") {
      return scheduler_->table().ToDot();
    }
    if (cmd == "help") {
      return kHelp;
    }
  } catch (const CommandError&) {
    throw;
  } catch (const std::exception& e) {
    // Table-level rejections (cycles, ACLs, misuse) become user errors.
    throw CommandError(cmd + ": " + e.what());
  }
  throw CommandError("unknown command '" + cmd + "' (try 'help')");
}

std::string CommandInterpreter::ExecuteScript(const std::string& script,
                                              const std::string& principal) {
  std::istringstream in(script);
  std::string line;
  std::ostringstream out;
  while (std::getline(in, line)) {
    const std::string result = Execute(line, principal);
    if (!result.empty()) {
      out << result;
      if (result.back() != '\n') {
        out << "\n";
      }
    }
  }
  return out.str();
}

Currency* CommandInterpreter::CurrencyOrThrow(const std::string& name) {
  Currency* currency = scheduler_->table().FindCurrency(name);
  if (currency == nullptr) {
    throw CommandError("no such currency '" + name + "'");
  }
  return currency;
}

Ticket* CommandInterpreter::TicketOrThrow(const std::string& id_text) {
  char* end = nullptr;
  const uint64_t id = std::strtoull(id_text.c_str(), &end, 10);
  if (end == id_text.c_str() || *end != '\0') {
    throw CommandError("bad ticket id '" + id_text + "'");
  }
  Ticket* ticket = scheduler_->table().FindTicket(id);
  if (ticket == nullptr) {
    throw CommandError("no such ticket " + id_text);
  }
  return ticket;
}

int64_t CommandInterpreter::AmountOrThrow(const std::string& text) {
  char* end = nullptr;
  const long long value = std::strtoll(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || value <= 0) {
    throw CommandError("bad amount '" + text + "' (must be a positive int)");
  }
  return value;
}

std::string CommandInterpreter::Mkcur(const std::vector<std::string>& args) {
  if (args.empty() || args.size() > 2) {
    throw CommandError("usage: mkcur <name> [owner]");
  }
  scheduler_->table().CreateCurrency(args[0],
                                     args.size() == 2 ? args[1] : "");
  return "";
}

std::string CommandInterpreter::Rmcur(const std::vector<std::string>& args) {
  if (args.size() != 1) {
    throw CommandError("usage: rmcur <name>");
  }
  scheduler_->table().DestroyCurrency(CurrencyOrThrow(args[0]));
  return "";
}

std::string CommandInterpreter::Mktkt(const std::vector<std::string>& args,
                                      const std::string& principal) {
  if (args.size() != 2) {
    throw CommandError("usage: mktkt <currency> <amount>");
  }
  Ticket* ticket = scheduler_->table().CreateTicket(
      CurrencyOrThrow(args[0]), AmountOrThrow(args[1]), principal);
  return "ticket " + std::to_string(ticket->id()) + "\n";
}

std::string CommandInterpreter::Rmtkt(const std::vector<std::string>& args) {
  if (args.size() != 1) {
    throw CommandError("usage: rmtkt <id>");
  }
  scheduler_->table().DestroyTicket(TicketOrThrow(args[0]));
  return "";
}

std::string CommandInterpreter::Fund(const std::vector<std::string>& args) {
  if (args.size() != 2) {
    throw CommandError("usage: fund <currency> <ticket-id>");
  }
  scheduler_->table().Fund(CurrencyOrThrow(args[0]), TicketOrThrow(args[1]));
  return "";
}

std::string CommandInterpreter::Unfund(const std::vector<std::string>& args) {
  if (args.size() != 1) {
    throw CommandError("usage: unfund <ticket-id>");
  }
  scheduler_->table().Unfund(TicketOrThrow(args[0]));
  return "";
}

std::string CommandInterpreter::Setamt(const std::vector<std::string>& args) {
  if (args.size() != 2) {
    throw CommandError("usage: setamt <ticket-id> <amount>");
  }
  scheduler_->table().SetAmount(TicketOrThrow(args[0]),
                                AmountOrThrow(args[1]));
  return "";
}

std::string CommandInterpreter::FundThreadCmd(
    const std::vector<std::string>& args, const std::string& principal) {
  if (args.size() != 3) {
    throw CommandError("usage: fundthread <tid> <currency> <amount>");
  }
  char* end = nullptr;
  const unsigned long tid = std::strtoul(args[0].c_str(), &end, 10);
  if (end == args[0].c_str() || *end != '\0') {
    throw CommandError("bad thread id '" + args[0] + "'");
  }
  Ticket* ticket = scheduler_->FundThread(static_cast<ThreadId>(tid),
                                          CurrencyOrThrow(args[1]),
                                          AmountOrThrow(args[2]), principal);
  return "ticket " + std::to_string(ticket->id()) + "\n";
}

std::string CommandInterpreter::Lscur(const std::vector<std::string>& args) {
  if (args.size() > 1) {
    throw CommandError("usage: lscur [name]");
  }
  TextTable table({"currency", "owner", "value", "rate", "active", "issued",
                   "backing"});
  for (Currency* c : scheduler_->table().Currencies()) {
    if (!args.empty() && c->name() != args[0]) {
      continue;
    }
    std::ostringstream backing;
    for (size_t i = 0; i < c->backing().size(); ++i) {
      const Ticket* t = c->backing()[i];
      backing << (i == 0 ? "" : ", ") << t->amount() << "."
              << t->denomination()->name();
    }
    table.AddRow({c->name(), c->owner().empty() ? "-" : c->owner(),
                  c->is_base() ? "-"
                               : FormatDouble(
                                     scheduler_->table()
                                         .CurrencyValue(c)
                                         .ToBaseF(),
                                     1),
                  FormatDouble(scheduler_->table().ExchangeRate(c), 3),
                  std::to_string(c->active_amount()),
                  std::to_string(c->issued_amount()), backing.str()});
  }
  if (!args.empty() && table.num_rows() == 0) {
    throw CommandError("no such currency '" + args[0] + "'");
  }
  return table.ToString();
}

std::string CommandInterpreter::Lstkt(const std::vector<std::string>& args) {
  if (args.size() > 1) {
    throw CommandError("usage: lstkt [currency]");
  }
  if (!args.empty()) {
    CurrencyOrThrow(args[0]);  // validate the filter
  }
  TextTable table({"id", "amount", "currency", "state", "attachment",
                   "value"});
  for (Ticket* t : scheduler_->table().Tickets()) {
    if (!args.empty() && t->denomination()->name() != args[0]) {
      continue;
    }
    table.AddRow({std::to_string(t->id()), std::to_string(t->amount()),
                  t->denomination()->name(),
                  t->active() ? "active" : "inactive", AttachmentOf(t),
                  FormatDouble(scheduler_->table().TicketValue(t).ToBaseF(),
                               1)});
  }
  return table.ToString();
}

}  // namespace lottery
