#include "src/sched/stride.h"

#include <stdexcept>

namespace lottery {

void StrideScheduler::AddThread(ThreadId id, SimTime /*now*/) {
  util::SeqGuard guard(queue_seq_);
  if (!threads_.emplace(id, ThreadState{}).second) {
    throw std::invalid_argument("Stride::AddThread: duplicate id");
  }
}

void StrideScheduler::RemoveThread(ThreadId id, SimTime /*now*/) {
  util::SeqGuard guard(queue_seq_);
  auto& state = threads_.at(id);
  if (state.ready) {
    global_tickets_ -= state.tickets;
  }
  if (running_ == id) {
    running_ = kInvalidThreadId;
  }
  threads_.erase(id);
}

void StrideScheduler::OnReady(ThreadId id, SimTime /*now*/) {
  util::SeqGuard guard(queue_seq_);
  auto& state = threads_.at(id);
  if (state.ready) {
    return;
  }
  state.ready = true;
  state.enqueue_seq = next_seq_++;
  // Rejoin at the global pass plus whatever credit offset the thread had
  // when it left (0 for a fresh thread: join at the back of the rotation).
  state.pass = global_pass_ + state.remain;
  state.remain = 0;
  global_tickets_ += state.tickets;
}

void StrideScheduler::OnBlocked(ThreadId id, SimTime /*now*/) {
  util::SeqGuard guard(queue_seq_);
  auto& state = threads_.at(id);
  if (!state.ready) {
    if (running_ == id) {
      // Blocking straight from the CPU: remember credit for the rejoin.
      state.remain = state.pass - global_pass_;
      if (state.remain < 0) {
        state.remain = 0;
      }
      running_ = kInvalidThreadId;
    }
    return;
  }
  state.ready = false;
  state.remain = state.pass - global_pass_;
  if (state.remain < 0) {
    state.remain = 0;
  }
  global_tickets_ -= state.tickets;
}

ThreadId StrideScheduler::PickNext(SimTime /*now*/) {
  util::SeqGuard guard(queue_seq_);
  ThreadId best = kInvalidThreadId;
  int64_t best_pass = 0;
  uint64_t best_seq = 0;
  for (auto& [id, state] : threads_) {
    if (!state.ready) {
      continue;
    }
    if (best == kInvalidThreadId || state.pass < best_pass ||
        (state.pass == best_pass && state.enqueue_seq < best_seq)) {
      best = id;
      best_pass = state.pass;
      best_seq = state.enqueue_seq;
    }
  }
  if (best != kInvalidThreadId) {
    auto& state = threads_.at(best);
    state.ready = false;
    global_tickets_ -= state.tickets;
    global_pass_ = state.pass;
    running_ = best;
    picks_->Inc();
  }
  return best;
}

void StrideScheduler::OnQuantumEnd(ThreadId id, SimDuration used,
                                   SimDuration quantum, SimTime /*now*/) {
  util::SeqGuard guard(queue_seq_);
  auto& state = threads_.at(id);
  // Advance pass in proportion to the CPU actually consumed; a thread that
  // yields early is charged less — stride's counterpart of compensation.
  const __int128 advance = static_cast<__int128>(state.stride) * used.nanos() /
                           quantum.nanos();
  state.pass += static_cast<int64_t>(advance);
  // Record the advance as an offset from the global pass so the follow-up
  // OnReady/OnBlocked reinsertion preserves it (without this, requeueing
  // would re-base the thread at global_pass and erase the charge).
  state.remain = state.pass - global_pass_;
  if (state.remain < 0) {
    state.remain = 0;
  }
  if (running_ == id) {
    running_ = kInvalidThreadId;
  }
}

void StrideScheduler::SetTickets(ThreadId id, int64_t tickets) {
  util::SeqGuard guard(queue_seq_);
  if (tickets <= 0) {
    throw std::invalid_argument("Stride::SetTickets: tickets must be > 0");
  }
  auto& state = threads_.at(id);
  if (state.ready) {
    global_tickets_ -= state.tickets;
  }
  // Rescale remaining credit so a change in tickets applies to future CPU
  // only (the stride paper's ticket-change rule, simplified: scale the
  // outstanding pass offset by old_stride/new_stride).
  const int64_t new_stride = kStride1 / tickets;
  if (state.ready) {
    const int64_t offset = state.pass - global_pass_;
    const __int128 scaled =
        state.stride > 0
            ? static_cast<__int128>(offset) * new_stride / state.stride
            : 0;
    state.pass = global_pass_ + static_cast<int64_t>(scaled);
    global_tickets_ += tickets;
  } else {
    const __int128 scaled =
        state.stride > 0
            ? static_cast<__int128>(state.remain) * new_stride / state.stride
            : 0;
    state.remain = static_cast<int64_t>(scaled);
  }
  state.tickets = tickets;
  state.stride = new_stride;
}

int64_t StrideScheduler::GetTickets(ThreadId id) const {
  util::SeqGuard guard(queue_seq_);
  return threads_.at(id).tickets;
}

void StrideScheduler::UpdateGlobalPass() {
  // Reserved for a time-weighted global pass; the min-pass assignment in
  // PickNext is sufficient for the single-CPU simulator.
}

}  // namespace lottery
