// Hybrid fixed-priority + lottery scheduler.
//
// Section 4: "Our lottery scheduling policy co-exists with the standard
// timesharing and fixed-priority policies. A few high-priority threads
// (such as the Ethernet driver) created by the Unix server remain at their
// original fixed priorities." This composite reproduces that arrangement:
// threads promoted to a fixed priority band take absolute precedence (among
// themselves: priority order, FIFO within a level); everything else is
// scheduled by an embedded LotteryScheduler. The intended use is exactly
// the paper's: a handful of short-running system threads above a
// proportional-share world.

#ifndef SRC_SCHED_HYBRID_H_
#define SRC_SCHED_HYBRID_H_

#include <memory>
#include <unordered_set>

#include "src/core/lottery_scheduler.h"
#include "src/sched/priority.h"
#include "src/sched/scheduler.h"

namespace lottery {

class HybridScheduler : public Scheduler {
 public:
  HybridScheduler() : HybridScheduler(LotteryScheduler::Options{}) {}
  explicit HybridScheduler(LotteryScheduler::Options lottery_options)
      : lottery_(lottery_options),
        fixed_(&lottery_.metrics()),
        picks_(lottery_.metrics().counter("sched.hybrid.picks")) {}

  // Moves a thread into the fixed-priority band (larger = higher). It keeps
  // its currency/client but stops competing in lotteries. May be called
  // while the thread is ready; takes effect immediately.
  void SetFixedPriority(ThreadId id, int priority);
  // Returns the thread to lottery scheduling.
  void ClearFixedPriority(ThreadId id);
  bool IsFixedPriority(ThreadId id) const;

  // Funding API is forwarded to the embedded lottery scheduler.
  LotteryScheduler& lottery() { return lottery_; }

  // --- Scheduler interface -------------------------------------------------
  void AddThread(ThreadId id, SimTime now) override;
  void RemoveThread(ThreadId id, SimTime now) override;
  void OnReady(ThreadId id, SimTime now) override;
  void OnBlocked(ThreadId id, SimTime now) override;
  ThreadId PickNext(SimTime now) override;
  void OnQuantumEnd(ThreadId id, SimDuration used, SimDuration quantum,
                    SimTime now) override;
  void Tick(SimTime now) override { lottery_.Tick(now); }
  std::string name() const override { return "hybrid"; }

 private:
  LotteryScheduler lottery_;
  PriorityScheduler fixed_;
  std::unordered_set<ThreadId> fixed_members_;
  std::unordered_set<ThreadId> ready_;
  obs::Counter* picks_;
};

}  // namespace lottery

#endif  // SRC_SCHED_HYBRID_H_
