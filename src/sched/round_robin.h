// Round-robin scheduler: the simplest baseline. Equal time slices in FIFO
// order, no notion of shares. Under identical workloads it pins every
// proportional-share experiment's "no control" end of the spectrum.

#ifndef SRC_SCHED_ROUND_ROBIN_H_
#define SRC_SCHED_ROUND_ROBIN_H_

#include <deque>
#include <unordered_set>

#include "src/obs/registry.h"
#include "src/sched/scheduler.h"

namespace lottery {

class RoundRobinScheduler : public Scheduler {
 public:
  explicit RoundRobinScheduler(obs::Registry* metrics = nullptr)
      : picks_((metrics != nullptr ? metrics : &obs::Registry::Default())
                   ->counter("sched.round_robin.picks")) {}

  void AddThread(ThreadId id, SimTime now) override;
  void RemoveThread(ThreadId id, SimTime now) override;
  void OnReady(ThreadId id, SimTime now) override;
  void OnBlocked(ThreadId id, SimTime now) override;
  ThreadId PickNext(SimTime now) override;
  void OnQuantumEnd(ThreadId id, SimDuration used, SimDuration quantum,
                    SimTime now) override;
  std::string name() const override { return "round-robin"; }

 private:
  std::deque<ThreadId> queue_;
  std::unordered_set<ThreadId> known_;
  std::unordered_set<ThreadId> queued_;
  obs::Counter* picks_;
};

}  // namespace lottery

#endif  // SRC_SCHED_ROUND_ROBIN_H_
