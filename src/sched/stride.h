// Stride scheduling: the deterministic proportional-share algorithm
// Waldspurger & Weihl published as the follow-up to lottery scheduling.
// Included as the natural ablation baseline: identical ticket semantics,
// zero allocation variance.
//
// Each thread has stride = kStride1 / tickets and a pass value. The
// dispatcher always runs the thread with the minimum pass, then advances its
// pass by stride * (fraction of quantum used). Blocked threads remember
// their offset from the global pass so they rejoin without gaining or
// losing credit.

#ifndef SRC_SCHED_STRIDE_H_
#define SRC_SCHED_STRIDE_H_

#include <cstdint>
#include <map>

#include "src/obs/registry.h"
#include "src/sched/scheduler.h"
#include "src/util/thread_safety.h"

namespace lottery {

class StrideScheduler : public Scheduler {
 public:
  static constexpr int64_t kStride1 = int64_t{1} << 20;

  explicit StrideScheduler(obs::Registry* metrics = nullptr)
      : picks_((metrics != nullptr ? metrics : &obs::Registry::Default())
                   ->counter("sched.stride.picks")) {}

  void AddThread(ThreadId id, SimTime now) override;
  void RemoveThread(ThreadId id, SimTime now) override;
  void OnReady(ThreadId id, SimTime now) override;
  void OnBlocked(ThreadId id, SimTime now) override;
  ThreadId PickNext(SimTime now) override;
  void OnQuantumEnd(ThreadId id, SimDuration used, SimDuration quantum,
                    SimTime now) override;
  std::string name() const override { return "stride"; }

  // Tickets default to 1; changing them rescales the thread's stride.
  void SetTickets(ThreadId id, int64_t tickets);
  int64_t GetTickets(ThreadId id) const;

 private:
  struct ThreadState {
    int64_t tickets = 1;
    int64_t stride = kStride1;
    int64_t pass = 0;
    // Pass remaining relative to global_pass_ while blocked.
    int64_t remain = 0;
    bool ready = false;
    uint64_t enqueue_seq = 0;
  };

  void UpdateGlobalPass() REQUIRES(queue_seq_);

  // Serialization domain for the pass/ticket bookkeeping — per-CPU stride
  // queues under the SMP partitioning will guard exactly this state.
  mutable util::Seq queue_seq_;
  // Ordered by ThreadId: PickNext scans this to choose the minimum-pass
  // thread, and an unordered map would make the scan order (and thus any
  // latent tie-break) depend on the standard library's hashing. (lotlint
  // rule D2 flags unordered iteration in scheduling paths.)
  std::map<ThreadId, ThreadState> threads_ GUARDED_BY(queue_seq_);
  int64_t global_pass_ GUARDED_BY(queue_seq_) = 0;
  int64_t global_tickets_ GUARDED_BY(queue_seq_) = 0;  // ready tickets
  ThreadId running_ GUARDED_BY(queue_seq_) = kInvalidThreadId;
  uint64_t next_seq_ GUARDED_BY(queue_seq_) = 0;
  obs::Counter* picks_;
};

}  // namespace lottery

#endif  // SRC_SCHED_STRIDE_H_
