#include "src/sched/priority.h"

#include <algorithm>
#include <stdexcept>

namespace lottery {

void PriorityScheduler::AddThread(ThreadId id, SimTime /*now*/) {
  if (!priority_.emplace(id, kDefaultPriority).second) {
    throw std::invalid_argument("Priority::AddThread: duplicate id");
  }
  queued_[id] = false;
}

void PriorityScheduler::RemoveThread(ThreadId id, SimTime /*now*/) {
  Unqueue(id);
  priority_.erase(id);
  queued_.erase(id);
}

void PriorityScheduler::Unqueue(ThreadId id) {
  const auto q = queued_.find(id);
  if (q == queued_.end() || !q->second) {
    return;
  }
  auto& dq = ready_[priority_.at(id)];
  dq.erase(std::find(dq.begin(), dq.end(), id));
  q->second = false;
}

void PriorityScheduler::OnReady(ThreadId id, SimTime /*now*/) {
  const auto it = priority_.find(id);
  if (it == priority_.end()) {
    throw std::invalid_argument("Priority::OnReady: unknown id");
  }
  if (!queued_[id]) {
    ready_[it->second].push_back(id);
    queued_[id] = true;
  }
}

void PriorityScheduler::OnBlocked(ThreadId id, SimTime /*now*/) {
  Unqueue(id);
}

ThreadId PriorityScheduler::PickNext(SimTime /*now*/) {
  for (auto it = ready_.rbegin(); it != ready_.rend(); ++it) {
    if (!it->second.empty()) {
      const ThreadId id = it->second.front();
      it->second.pop_front();
      queued_[id] = false;
      picks_->Inc();
      return id;
    }
  }
  return kInvalidThreadId;
}

void PriorityScheduler::OnQuantumEnd(ThreadId /*id*/, SimDuration /*used*/,
                                     SimDuration /*quantum*/,
                                     SimTime /*now*/) {}

void PriorityScheduler::SetPriority(ThreadId id, int priority) {
  const auto it = priority_.find(id);
  if (it == priority_.end()) {
    throw std::invalid_argument("Priority::SetPriority: unknown id");
  }
  const bool was_queued = queued_[id];
  if (was_queued) {
    Unqueue(id);
  }
  it->second = priority;
  if (was_queued) {
    ready_[priority].push_back(id);
    queued_[id] = true;
  }
}

int PriorityScheduler::GetPriority(ThreadId id) const {
  const auto it = priority_.find(id);
  if (it == priority_.end()) {
    throw std::invalid_argument("Priority::GetPriority: unknown id");
  }
  return it->second;
}

}  // namespace lottery
