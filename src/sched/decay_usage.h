// Decay-usage timesharing scheduler, modeled on 4.3BSD-style Unix and the
// standard Mach timesharing policy the paper compares against (Sections 1,
// 5.6, 7; see [Hel93]).
//
// Each thread has an `estcpu` load estimate incremented as it consumes CPU.
// Effective priority = base + estcpu / 4 + 2 * nice; lower is better. Once
// per simulated second every estcpu decays by the classic factor
// (2*load)/(2*load + 1) where load is the number of runnable threads. The
// dispatcher picks the numerically lowest effective priority, breaking ties
// round-robin.
//
// This is the paper's "conventional scheduler" foil: it delivers rough
// long-term fairness among equal-nice threads but gives no direct handle on
// *relative* rates — the property the lottery experiments demonstrate.

#ifndef SRC_SCHED_DECAY_USAGE_H_
#define SRC_SCHED_DECAY_USAGE_H_

#include <cstdint>
#include <deque>
#include <map>

#include "src/obs/registry.h"
#include "src/sched/scheduler.h"

namespace lottery {

class DecayUsageScheduler : public Scheduler {
 public:
  struct Options {
    int base_priority = 0;
    // Weight of the usage term (BSD used estcpu/4).
    int usage_divisor = 4;
    // Metric registry; nullptr selects obs::Registry::Default().
    obs::Registry* metrics = nullptr;
  };

  DecayUsageScheduler() : DecayUsageScheduler(Options{}) {}
  explicit DecayUsageScheduler(Options options)
      : options_(options),
        picks_((options.metrics != nullptr ? options.metrics
                                           : &obs::Registry::Default())
                   ->counter("sched.decay_usage.picks")) {}

  void AddThread(ThreadId id, SimTime now) override;
  void RemoveThread(ThreadId id, SimTime now) override;
  void OnReady(ThreadId id, SimTime now) override;
  void OnBlocked(ThreadId id, SimTime now) override;
  ThreadId PickNext(SimTime now) override;
  void OnQuantumEnd(ThreadId id, SimDuration used, SimDuration quantum,
                    SimTime now) override;
  void Tick(SimTime now) override;
  std::string name() const override { return "decay-usage"; }

  // Unix nice in [-20, 20]; the only rate control the policy offers.
  void SetNice(ThreadId id, int nice);
  double EstCpu(ThreadId id) const;

 private:
  struct ThreadState {
    double estcpu = 0.0;
    int nice = 0;
    bool ready = false;
    uint64_t enqueue_seq = 0;  // FIFO tiebreak among equal priorities
  };

  double EffectivePriority(const ThreadState& state) const;

  Options options_;
  // Ordered by ThreadId: PickNext and the decay Tick iterate this, and the
  // winner scan must visit threads in an implementation-independent order
  // (lotlint rule D2 flags unordered iteration in scheduling paths).
  std::map<ThreadId, ThreadState> threads_;
  uint64_t next_seq_ = 0;
  obs::Counter* picks_;
};

}  // namespace lottery

#endif  // SRC_SCHED_DECAY_USAGE_H_
