// Fixed-priority scheduler: the conventional mechanism the paper argues
// against (Section 7). Higher priority takes absolute precedence; equal
// priorities run round-robin (matching the unmodified Mach behaviour noted
// in the paper's footnote 9). Exhibits starvation and priority inversion,
// which the experiments use as a foil.

#ifndef SRC_SCHED_PRIORITY_H_
#define SRC_SCHED_PRIORITY_H_

#include <deque>
#include <map>
#include <unordered_map>

#include "src/obs/registry.h"
#include "src/sched/scheduler.h"

namespace lottery {

class PriorityScheduler : public Scheduler {
 public:
  // Larger value means higher priority.
  static constexpr int kDefaultPriority = 0;

  explicit PriorityScheduler(obs::Registry* metrics = nullptr)
      : picks_((metrics != nullptr ? metrics : &obs::Registry::Default())
                   ->counter("sched.fixed_priority.picks")) {}

  void AddThread(ThreadId id, SimTime now) override;
  void RemoveThread(ThreadId id, SimTime now) override;
  void OnReady(ThreadId id, SimTime now) override;
  void OnBlocked(ThreadId id, SimTime now) override;
  ThreadId PickNext(SimTime now) override;
  void OnQuantumEnd(ThreadId id, SimDuration used, SimDuration quantum,
                    SimTime now) override;
  std::string name() const override { return "fixed-priority"; }

  void SetPriority(ThreadId id, int priority);
  int GetPriority(ThreadId id) const;

 private:
  void Unqueue(ThreadId id);

  std::unordered_map<ThreadId, int> priority_;
  std::unordered_map<ThreadId, bool> queued_;
  // Ready queues ordered by priority (descending via reverse iteration).
  std::map<int, std::deque<ThreadId>> ready_;
  obs::Counter* picks_;
};

}  // namespace lottery

#endif  // SRC_SCHED_PRIORITY_H_
