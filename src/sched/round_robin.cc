#include "src/sched/round_robin.h"

#include <algorithm>
#include <stdexcept>

namespace lottery {

void RoundRobinScheduler::AddThread(ThreadId id, SimTime /*now*/) {
  if (!known_.insert(id).second) {
    throw std::invalid_argument("RoundRobin::AddThread: duplicate id");
  }
}

void RoundRobinScheduler::RemoveThread(ThreadId id, SimTime /*now*/) {
  known_.erase(id);
  if (queued_.erase(id) > 0) {
    queue_.erase(std::find(queue_.begin(), queue_.end(), id));
  }
}

void RoundRobinScheduler::OnReady(ThreadId id, SimTime /*now*/) {
  if (known_.count(id) == 0) {
    throw std::invalid_argument("RoundRobin::OnReady: unknown id");
  }
  if (queued_.insert(id).second) {
    queue_.push_back(id);
  }
}

void RoundRobinScheduler::OnBlocked(ThreadId id, SimTime /*now*/) {
  if (queued_.erase(id) > 0) {
    queue_.erase(std::find(queue_.begin(), queue_.end(), id));
  }
}

ThreadId RoundRobinScheduler::PickNext(SimTime /*now*/) {
  if (queue_.empty()) {
    return kInvalidThreadId;
  }
  const ThreadId id = queue_.front();
  queue_.pop_front();
  queued_.erase(id);
  picks_->Inc();
  return id;
}

void RoundRobinScheduler::OnQuantumEnd(ThreadId /*id*/, SimDuration /*used*/,
                                       SimDuration /*quantum*/,
                                       SimTime /*now*/) {}

}  // namespace lottery
