#include "src/sched/decay_usage.h"

#include <stdexcept>

namespace lottery {

void DecayUsageScheduler::AddThread(ThreadId id, SimTime /*now*/) {
  if (!threads_.emplace(id, ThreadState{}).second) {
    throw std::invalid_argument("DecayUsage::AddThread: duplicate id");
  }
}

void DecayUsageScheduler::RemoveThread(ThreadId id, SimTime /*now*/) {
  threads_.erase(id);
}

void DecayUsageScheduler::OnReady(ThreadId id, SimTime /*now*/) {
  auto& state = threads_.at(id);
  if (!state.ready) {
    state.ready = true;
    state.enqueue_seq = next_seq_++;
  }
}

void DecayUsageScheduler::OnBlocked(ThreadId id, SimTime /*now*/) {
  threads_.at(id).ready = false;
}

double DecayUsageScheduler::EffectivePriority(const ThreadState& s) const {
  return static_cast<double>(options_.base_priority) +
         s.estcpu / static_cast<double>(options_.usage_divisor) +
         2.0 * static_cast<double>(s.nice);
}

ThreadId DecayUsageScheduler::PickNext(SimTime /*now*/) {
  ThreadId best = kInvalidThreadId;
  double best_priority = 0.0;
  uint64_t best_seq = 0;
  for (auto& [id, state] : threads_) {
    if (!state.ready) {
      continue;
    }
    const double priority = EffectivePriority(state);
    if (best == kInvalidThreadId || priority < best_priority ||
        (priority == best_priority && state.enqueue_seq < best_seq)) {
      best = id;
      best_priority = priority;
      best_seq = state.enqueue_seq;
    }
  }
  if (best != kInvalidThreadId) {
    threads_.at(best).ready = false;
    picks_->Inc();
  }
  return best;
}

void DecayUsageScheduler::OnQuantumEnd(ThreadId id, SimDuration used,
                                       SimDuration quantum, SimTime /*now*/) {
  // Charge usage in 10 ms clock ticks of CPU consumed, as 4.3BSD's hardclock
  // did (charging whole quanta makes the usage term so coarse that a modest
  // nice starves a thread outright, which real decay-usage does not do).
  auto& state = threads_.at(id);
  (void)quantum;
  state.estcpu += used.ToMillisF() / 10.0;
}

void DecayUsageScheduler::Tick(SimTime /*now*/) {
  // Count runnable threads as the load average proxy.
  int load = 0;
  for (const auto& [id, state] : threads_) {
    if (state.ready) {
      ++load;
    }
  }
  const double l = static_cast<double>(load);
  const double decay = (2.0 * l) / (2.0 * l + 1.0);
  for (auto& [id, state] : threads_) {
    state.estcpu = state.estcpu * decay + static_cast<double>(state.nice);
    if (state.estcpu < 0.0) {
      state.estcpu = 0.0;
    }
  }
}

void DecayUsageScheduler::SetNice(ThreadId id, int nice) {
  threads_.at(id).nice = nice;
}

double DecayUsageScheduler::EstCpu(ThreadId id) const {
  return threads_.at(id).estcpu;
}

}  // namespace lottery
