#include "src/sched/smp/balance_domains.h"

#include <stdexcept>

namespace lottery {
namespace smp {

DomainMap::DomainMap(int num_cpus, int pair_size, int package_size)
    : num_cpus_(num_cpus) {
  if (num_cpus < 1) {
    throw std::invalid_argument("DomainMap: need at least one CPU");
  }
  if (pair_size < 2 || package_size < pair_size) {
    throw std::invalid_argument("DomainMap: need 2 <= pair_size <= package_size");
  }
  for (const int size : {pair_size, package_size}) {
    if (size >= num_cpus) {
      break;  // the system-wide level already covers it
    }
    if (!sizes_.empty() && size <= sizes_.back()) {
      continue;  // would not widen the previous level
    }
    sizes_.push_back(size);
  }
  if (num_cpus >= 2) {
    sizes_.push_back(num_cpus);
  }
}

Domain DomainMap::At(int cpu, int level) const {
  if (cpu < 0 || cpu >= num_cpus_) {
    throw std::out_of_range("DomainMap::At: cpu out of range");
  }
  if (level < 0 || level >= num_levels()) {
    throw std::out_of_range("DomainMap::At: level out of range");
  }
  const int size = sizes_[static_cast<size_t>(level)];
  Domain d;
  d.first = (cpu / size) * size;
  // The trailing domain of an uneven topology is simply smaller.
  d.count = (d.first + size <= num_cpus_) ? size : num_cpus_ - d.first;
  return d;
}

}  // namespace smp
}  // namespace lottery
