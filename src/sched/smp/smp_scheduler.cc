#include "src/sched/smp/smp_scheduler.h"

#include <stdexcept>
#include <string>

#include "src/core/client.h"
#include "src/obs/etrace/trace_buffer.h"
#include "src/util/invariant.h"

namespace lottery {
namespace smp {

namespace {

// Independent child seed: salt the user seed through SplitMix64 so the
// facade's derived streams (balance lottery, crossbar matching, per-CPU
// dispatch for CPUs > 0) never collide with each other or with CPU 0,
// which runs on the user seed verbatim (the 1-CPU identity contract).
uint32_t DeriveSeed(uint32_t seed, uint32_t salt) {
  SplitMix64 mixer((static_cast<uint64_t>(salt) << 32) | seed);
  return mixer.NextFastRandSeed();
}

CrossbarSwitch::Options XbarOptions(const SmpScheduler::Options& options) {
  CrossbarSwitch::Options x = options.xbar;
  x.num_ports = options.num_cpus;
  return x;
}

}  // namespace

SmpScheduler::SmpScheduler(Options options)
    : options_(options),
      domains_(options.num_cpus),
      balance_rng_(DeriveSeed(options.seed, 0xba1a6ceu)),
      xbar_rng_(DeriveSeed(options.seed, 0xc6055bau)),
      xbar_(XbarOptions(options), &xbar_rng_),
      metrics_(options.metrics != nullptr ? options.metrics
                                          : &obs::Registry::Default()),
      m_steals_(metrics_->counter("smp.steals")),
      m_migrations_(metrics_->counter("smp.migrations")),
      m_balance_checks_(metrics_->counter("smp.balance_checks")),
      m_cost_vetoes_(metrics_->counter("smp.cost_vetoes")),
      m_xbar_cells_(metrics_->counter("smp.xbar_cells")) {
  if (options_.num_cpus < 1) {
    throw std::invalid_argument("SmpScheduler: need at least one CPU");
  }
  if (options_.balance_period < 1) {
    throw std::invalid_argument("SmpScheduler: balance_period must be >= 1");
  }
  cpus_.reserve(static_cast<size_t>(options_.num_cpus));
  m_cpu_dispatches_.reserve(static_cast<size_t>(options_.num_cpus));
  for (int i = 0; i < options_.num_cpus; ++i) {
    LotteryScheduler::Options o = options_.cpu;
    o.seed = (i == 0) ? options_.seed
                      : DeriveSeed(options_.seed,
                                   0x09000000u + static_cast<uint32_t>(i));
    o.metrics = metrics_;
    o.trace = options_.trace;
    cpus_.push_back(std::make_unique<LotteryScheduler>(o));
    const std::string prefix = "smp.cpu" + std::to_string(i) + ".";
    m_cpu_dispatches_.push_back(metrics_->counter(prefix + "dispatches"));
    m_cpu_steals_in_.push_back(metrics_->counter(prefix + "steals_in"));
    m_cpu_steals_out_.push_back(metrics_->counter(prefix + "steals_out"));
  }
  running_tid_.assign(static_cast<size_t>(options_.num_cpus),
                      kInvalidThreadId);
  since_balance_.assign(static_cast<size_t>(options_.num_cpus), 0);
}

SmpScheduler::~SmpScheduler() = default;

SmpScheduler::ThreadRec& SmpScheduler::RecOf(ThreadId id) {
  const auto it = recs_.find(id);
  if (it == recs_.end()) {
    throw std::invalid_argument("SmpScheduler: unknown thread " +
                                std::to_string(id));
  }
  return it->second;
}

const SmpScheduler::ThreadRec& SmpScheduler::RecOf(ThreadId id) const {
  const auto it = recs_.find(id);
  if (it == recs_.end()) {
    throw std::invalid_argument("SmpScheduler: unknown thread " +
                                std::to_string(id));
  }
  return it->second;
}

void SmpScheduler::AddThread(ThreadId id, SimTime now) {
  if (recs_.count(id) > 0) {
    throw std::invalid_argument("SmpScheduler::AddThread: duplicate id");
  }
  // Round-robin spawn placement: deterministic and already value-balanced
  // for homogeneous spawns; the balancer corrects everything else.
  const int home = next_home_;
  next_home_ = (next_home_ + 1) % options_.num_cpus;
  cpus_[static_cast<size_t>(home)]->AddThread(id, now);
  ThreadRec rec;
  rec.home = home;
  recs_.emplace(id, std::move(rec));
}

void SmpScheduler::ClearRunning(ThreadRec& rec) {
  if (rec.running && rec.running_cpu >= 0) {
    running_tid_[static_cast<size_t>(rec.running_cpu)] = kInvalidThreadId;
  }
  rec.running = false;
  rec.running_cpu = -1;
}

void SmpScheduler::RemoveThread(ThreadId id, SimTime now) {
  ThreadRec& rec = RecOf(id);
  cpus_[static_cast<size_t>(rec.home)]->RemoveThread(id, now);
  ClearRunning(rec);
  recs_.erase(id);
}

void SmpScheduler::OnReady(ThreadId id, SimTime now) {
  ThreadRec& rec = RecOf(id);
  ClearRunning(rec);
  cpus_[static_cast<size_t>(rec.home)]->OnReady(id, now);
}

void SmpScheduler::OnBlocked(ThreadId id, SimTime now) {
  ThreadRec& rec = RecOf(id);
  ClearRunning(rec);
  cpus_[static_cast<size_t>(rec.home)]->OnBlocked(id, now);
}

ThreadId SmpScheduler::PickNextOnCpu(int cpu, SimTime now) {
  if (cpu < 0 || cpu >= options_.num_cpus) {
    throw std::out_of_range("SmpScheduler::PickNextOnCpu: bad cpu");
  }
  const size_t c = static_cast<size_t>(cpu);
  if (options_.steal_enabled && options_.num_cpus > 1) {
    if (cpus_[c]->QueuedCount() == 0) {
      TryIdleSteal(cpu, now);
    } else if (++since_balance_[c] >= options_.balance_period) {
      since_balance_[c] = 0;
      TryBalanceSteal(cpu, now);
    }
  }
  const ThreadId tid = cpus_[c]->PickNext(now);
  if (tid != kInvalidThreadId) {
    ThreadRec& rec = RecOf(tid);
    rec.running = true;
    rec.running_cpu = cpu;
    running_tid_[c] = tid;
    m_cpu_dispatches_[c]->Inc();
  }
  return tid;
}

void SmpScheduler::OnQuantumEnd(ThreadId id, SimDuration used,
                                SimDuration quantum, SimTime now) {
  last_quantum_ = quantum;
  // The thread stays "running" (its value assigned to its CPU) until the
  // requeue/block that follows: on a multi-CPU kernel the slice is still in
  // flight when OnQuantumEnd arrives, and the balancer should keep seeing
  // the CPU as loaded for that window.
  cpus_[static_cast<size_t>(RecOf(id).home)]->OnQuantumEnd(id, used, quantum,
                                                           now);
}

void SmpScheduler::Tick(SimTime now) {
  for (const auto& cpu : cpus_) {
    cpu->Tick(now);
  }
}

void SmpScheduler::FundThread(ThreadId id, int64_t amount) {
  ThreadRec& rec = RecOf(id);
  LotteryScheduler& home = *cpus_[static_cast<size_t>(rec.home)];
  home.FundThread(id, home.table().base(), amount);
  rec.funding.push_back(amount);
}

int64_t SmpScheduler::FundedAmount(ThreadId id) const {
  int64_t total = 0;
  for (const int64_t amount : RecOf(id).funding) {
    total += amount;
  }
  return total;
}

int SmpScheduler::HomeCpu(ThreadId id) const { return RecOf(id).home; }

Funding SmpScheduler::ThreadBaseValue(ThreadId id) {
  const auto it = recs_.find(id);
  if (it == recs_.end()) {
    return Funding::Zero();
  }
  return cpus_[static_cast<size_t>(it->second.home)]->ThreadBaseValue(id);
}

uint64_t SmpScheduler::ThreadMigrations(ThreadId id) const {
  return RecOf(id).migrations;
}

uint64_t SmpScheduler::AssignedValue(int c) {
  const size_t i = static_cast<size_t>(c);
  uint64_t total = cpus_[i]->RunnableTickets();
  const ThreadId running = running_tid_[i];
  if (running != kInvalidThreadId) {
    total += cpus_[i]->ThreadValue(running).raw_unsigned();
  }
  return total;
}

void SmpScheduler::TryIdleSteal(int cpu, SimTime now) {
  // Inside-out: the nearest domain with queued work wins, so affinity is
  // encoded in the search order even though an idle CPU never refuses work.
  for (int level = 0; level < domains_.num_levels(); ++level) {
    const Domain d = domains_.At(cpu, level);
    int victim = -1;
    uint64_t best_value = 0;
    size_t best_queued = 0;
    for (int c = d.first; c < d.first + d.count; ++c) {
      if (c == cpu) {
        continue;
      }
      const size_t queued = cpus_[static_cast<size_t>(c)]->QueuedCount();
      if (queued == 0) {
        continue;
      }
      const uint64_t value =
          cpus_[static_cast<size_t>(c)]->RunnableTickets();
      // Busiest by ticket value; more queued threads break ties, then the
      // lowest index (the ascending scan with strict > keeps the first).
      if (victim < 0 || value > best_value ||
          (value == best_value && queued > best_queued)) {
        victim = c;
        best_value = value;
        best_queued = queued;
      }
    }
    if (victim < 0) {
      continue;
    }
    const ThreadId migrant = PickMigrant(
        cpus_[static_cast<size_t>(victim)]->QueuedSnapshot(), 0);
    if (migrant == kInvalidThreadId) {
      return;
    }
    DoMigrate(migrant, victim, cpu, now, level,
              static_cast<uint16_t>(etrace::EventType::kSteal), best_value);
    return;
  }
}

void SmpScheduler::TryBalanceSteal(int cpu, SimTime now) {
  m_balance_checks_->Inc();
  const uint64_t mine = AssignedValue(cpu);
  for (int level = 0; level < domains_.num_levels(); ++level) {
    const Domain d = domains_.At(cpu, level);
    int victim = -1;
    uint64_t best = 0;
    for (int c = d.first; c < d.first + d.count; ++c) {
      if (c == cpu || cpus_[static_cast<size_t>(c)]->QueuedCount() == 0) {
        continue;
      }
      const uint64_t value = AssignedValue(c);
      if (victim < 0 || value > best) {
        victim = c;
        best = value;
      }
    }
    if (victim < 0 || best <= mine) {
      continue;  // balanced (or empty) here; try the wider domain
    }
    const uint64_t imbalance = best - mine;
    const uint64_t sum = best + mine;
    // The imbalance floor doubles per level: crossing the package boundary
    // must be worth more than shuffling within a core pair. Returning
    // before this point never touches the RNG, so a balanced system is a
    // draw-free no-op (smp_identity_test pins that down).
    const uint64_t floor_permille =
        static_cast<uint64_t>(options_.imbalance_min_permille) << level;
    if (imbalance * 1000 <= sum * floor_permille) {
      continue;
    }
    // Lottery-weighted stealing: steal with probability imbalance / sum,
    // one draw per level per periodic check, on the dedicated balance
    // stream. A failed draw only forfeits this level — the wider domain
    // may hold a larger imbalance with better odds.
    if (balance_rng_.NextBelow64(sum) >= imbalance) {
      continue;
    }
    // Cap the migrant strictly below the gap: moving value w changes the
    // pairwise difference by 2w, so |diff - 2w| < diff exactly when
    // 0 < w < diff — any qualifying migrant converges, worst case halving
    // the gap's magnitude, and ping-pong is impossible.
    if (imbalance < 2) {
      continue;  // no migrant below a gap of 1 can exist
    }
    const ThreadId migrant = PickMigrant(
        cpus_[static_cast<size_t>(victim)]->QueuedSnapshot(), imbalance - 1);
    if (migrant == kInvalidThreadId) {
      continue;  // granularity floor here; a wider victim may divide finer
    }
    // Affinity veto: predicted transfer time vs the imbalance's worth of
    // CPU time until the next balance check (the window the imbalance
    // would otherwise persist for). Backlog from recent migrations raises
    // the prediction, so storms throttle themselves.
    const int64_t cost_ns = PredictCostNs(victim, cpu, level);
    const uint64_t ratio = imbalance * 1024 / sum;  // <= 1024
    const int64_t gain_ns = static_cast<int64_t>(
        ratio * static_cast<uint64_t>(last_quantum_.nanos()) *
        options_.balance_period / 1024);
    if (cost_ns > gain_ns) {
      ++cost_vetoes_;
      m_cost_vetoes_->Inc();
      return;
    }
    DoMigrate(migrant, victim, cpu, now, level,
              static_cast<uint16_t>(etrace::EventType::kMigrate), imbalance);
    return;
  }
}

ThreadId SmpScheduler::PickMigrant(
    const std::vector<std::pair<ThreadId, uint64_t>>& snap,
    uint64_t max_value) {
  uint64_t total = 0;
  uint32_t eligible = 0;
  for (const auto& [tid, value] : snap) {
    if (max_value != 0 && value > max_value) {
      continue;
    }
    ++eligible;
    total += value;
  }
  if (eligible == 0) {
    return kInvalidThreadId;
  }
  if (total == 0) {
    // Every eligible thread is worth zero right now (funding revoked or
    // inactive): fall back to a uniform pick, mirroring the scheduler's
    // own zero-funding round-robin spirit.
    uint32_t index = balance_rng_.NextBelow(eligible);
    for (const auto& [tid, value] : snap) {
      if (max_value != 0 && value > max_value) {
        continue;
      }
      if (index == 0) {
        return tid;
      }
      --index;
    }
    return kInvalidThreadId;
  }
  uint64_t draw = balance_rng_.NextBelow64(total);
  for (const auto& [tid, value] : snap) {
    if (max_value != 0 && value > max_value) {
      continue;
    }
    if (draw < value) {
      return tid;
    }
    draw -= value;
  }
  return kInvalidThreadId;
}

CrossbarSwitch::CircuitId SmpScheduler::CircuitFor(int src, int dst) {
  const auto key = std::make_pair(src, dst);
  const auto it = circuits_.find(key);
  if (it != circuits_.end()) {
    return it->second;
  }
  const CrossbarSwitch::CircuitId id = xbar_.AddCircuit(src, dst, 1);
  circuits_.emplace(key, id);
  return id;
}

int64_t SmpScheduler::PredictCostNs(int src, int dst, int level) {
  const CrossbarSwitch::CircuitId circuit = CircuitFor(src, dst);
  const uint64_t cells = static_cast<uint64_t>(xbar_.Backlog(circuit)) +
                         options_.footprint_cells;
  return static_cast<int64_t>(cells) * options_.xbar.cell_time.nanos() *
         (level + 1);
}

void SmpScheduler::DoMigrate(ThreadId id, int src, int dst, SimTime now,
                             int level, uint16_t type, uint64_t imbalance) {
  (void)level;
  ThreadRec& rec = RecOf(id);
  LOT_ASSERT(rec.home == src, "SmpScheduler: migrant not homed on source");
  LotteryScheduler& from = *cpus_[static_cast<size_t>(src)];
  LotteryScheduler& to = *cpus_[static_cast<size_t>(dst)];
  if (!from.IsQueued(id)) {
    throw std::logic_error(
        "SmpScheduler: migrating a thread not in the source queue");
  }
  const uint64_t value = from.ThreadValue(id).raw_unsigned();
  // Compensation must survive the move (the paper's guarantee is about the
  // thread, not the queue it happens to sit in): capture the ratio before
  // the source client is destroyed, re-apply on the destination client.
  const Client* old_client = from.client(id);
  const int64_t comp_num = old_client->compensation_num();
  const int64_t comp_den = old_client->compensation_den();
  // RemoveThread retires the source-side currency and every ticket funding
  // it, so each table stays conserved; the facade's funding record is the
  // cross-table invariant (FundedAmount never changes here).
  from.RemoveThread(id, now);
  rec.home = dst;
  ++rec.migrations;
  to.AddThread(id, now);
  for (const int64_t amount : rec.funding) {
    to.FundThread(id, to.table().base(), amount);
  }
  if (comp_num != comp_den) {
    to.client(id)->SetCompensation(comp_num, comp_den);
  }
  to.OnReady(id, now);

  // Price the cache-footprint transfer on the victim->thief circuit. The
  // cells drain as simulated time advances past future migrations.
  xbar_.AdvanceTo(now);
  const CrossbarSwitch::CircuitId circuit = CircuitFor(src, dst);
  xbar_.SetTickets(circuit, imbalance == 0 ? 1 : imbalance);
  for (uint32_t i = 0; i < options_.footprint_cells; ++i) {
    xbar_.Enqueue(circuit, now);
  }
  m_xbar_cells_->Inc(options_.footprint_cells);

  if (type == static_cast<uint16_t>(etrace::EventType::kSteal)) {
    ++steals_;
    m_steals_->Inc();
  } else {
    ++migrations_;
    m_migrations_->Inc();
  }
  m_cpu_steals_in_[static_cast<size_t>(dst)]->Inc();
  m_cpu_steals_out_[static_cast<size_t>(src)]->Inc();
  if (etrace::On(options_.trace, etrace::kCatSched)) {
    etrace::Event e;
    e.t_ns = now.nanos();
    e.a = id;
    e.b = static_cast<uint32_t>(dst);
    e.v1 = static_cast<uint64_t>(src);
    e.v2 = value;
    e.v3 = imbalance;
    e.type = type;
    options_.trace->Append(e);
  }
}

void SmpScheduler::Migrate(ThreadId id, int dst, SimTime now) {
  if (dst < 0 || dst >= options_.num_cpus) {
    throw std::out_of_range("SmpScheduler::Migrate: bad cpu");
  }
  ThreadRec& rec = RecOf(id);
  if (rec.home == dst) {
    throw std::invalid_argument("SmpScheduler::Migrate: already on cpu");
  }
  if (rec.running) {
    throw std::invalid_argument("SmpScheduler::Migrate: thread is running");
  }
  if (!cpus_[static_cast<size_t>(rec.home)]->IsQueued(id)) {
    throw std::invalid_argument("SmpScheduler::Migrate: thread not queued");
  }
  DoMigrate(id, rec.home, dst, now, 0,
            static_cast<uint16_t>(etrace::EventType::kMigrate), 0);
}

void SmpScheduler::CheckIntegrity() const {
  for (const auto& [tid, rec] : recs_) {
    if (rec.home < 0 || rec.home >= options_.num_cpus) {
      throw std::logic_error("SmpScheduler: thread homed out of range");
    }
    int present = 0;
    for (int c = 0; c < options_.num_cpus; ++c) {
      if (cpus_[static_cast<size_t>(c)]->HasThread(tid)) {
        ++present;
        if (c != rec.home) {
          throw std::logic_error(
              "SmpScheduler: thread present on a non-home CPU");
        }
      }
    }
    if (present != 1) {
      throw std::logic_error(
          "SmpScheduler: thread present on " + std::to_string(present) +
          " CPU tables (lost or duplicated)");
    }
    if (rec.running &&
        cpus_[static_cast<size_t>(rec.home)]->IsQueued(tid)) {
      throw std::logic_error("SmpScheduler: thread both queued and running");
    }
  }
  for (int c = 0; c < options_.num_cpus; ++c) {
    const ThreadId tid = running_tid_[static_cast<size_t>(c)];
    if (tid == kInvalidThreadId) {
      continue;
    }
    const auto it = recs_.find(tid);
    if (it == recs_.end() || !it->second.running ||
        it->second.running_cpu != c) {
      throw std::logic_error("SmpScheduler: running-thread map out of sync");
    }
  }
}

}  // namespace smp
}  // namespace lottery
