// Partitioned SMP lottery scheduling: one LotteryScheduler per CPU behind
// the generic Scheduler interface, with deterministic ticket-weighted work
// stealing across hierarchical balancing domains.
//
// Section 4.2 of the paper sketches "a distributed lottery scheduler" for
// multiprocessors; this module builds it. Each CPU owns a private currency
// table and run queue, so dispatch is entirely local — the global lottery's
// proportional-share guarantee is recovered by keeping the per-CPU runnable
// ticket totals equal: if every CPU holds T/P of the ticket value, a thread
// with t tickets wins t/(T/P) of one CPU, i.e. exactly t/T of the machine.
// The balancer therefore migrates ticket *value*, never thread counts.
//
// Balancing walks the DomainMap inside-out (core pair -> package -> system):
// an idle CPU pulls work from the nearest domain that has any, and every
// `balance_period` local dispatches a CPU compares itself against the
// busiest CPU of each widening domain, stealing with probability
// proportional to the ticket imbalance and selecting the migrant by a
// value-weighted lottery over the victim's queue. All balance draws come
// from a dedicated RNG stream (`stream(balance)`), so the per-CPU dispatch
// streams stay bit-identical under rebalance churn — lotlint R2 enforces
// the separation, and tests/smp_identity_test.cc proves the 1-CPU facade
// is bit-identical to a plain LotteryScheduler.
//
// Migration is not free: the affinity cost model prices each candidate move
// through a sim::CrossbarSwitch (one port per CPU). A migration enqueues
// `footprint_cells` cells on the victim->thief virtual circuit — the cache
// footprint being re-fetched — and a balance steal is vetoed when the
// predicted transfer time (backlog + footprint, scaled by domain distance)
// exceeds the imbalance's worth of CPU time per quantum. Migration storms
// thus throttle themselves: backlog raises the predicted cost until the
// crossbar drains.

#ifndef SRC_SCHED_SMP_SMP_SCHEDULER_H_
#define SRC_SCHED_SMP_SMP_SCHEDULER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/core/lottery_scheduler.h"
#include "src/obs/registry.h"
#include "src/sched/scheduler.h"
#include "src/sched/smp/balance_domains.h"
#include "src/sim/crossbar.h"
#include "src/util/fastrand.h"

namespace lottery {
namespace smp {

class SmpScheduler : public Scheduler {
 public:
  struct Options {
    int num_cpus = 1;
    uint32_t seed = 12345;
    // Per-CPU scheduler template. seed/metrics/trace are managed by the
    // facade: CPU 0 runs on exactly `seed` (the 1-CPU identity contract),
    // CPU i > 0 on an independent SplitMix64-derived stream.
    LotteryScheduler::Options cpu;
    // Master switch for cross-CPU stealing (identity tests turn it off).
    bool steal_enabled = true;
    // Local dispatches between periodic balance checks on a CPU.
    uint32_t balance_period = 16;
    // Innermost-level imbalance floor, in per-mille of the victim+thief
    // ticket sum; doubles per domain level, so long-haul moves need a
    // proportionally bigger gap. The steady-state pairwise imbalance stays
    // within max(floor at the widest level, smallest migratable thread),
    // which bounds the global share error the partition can accumulate.
    uint32_t imbalance_min_permille = 10;
    // Affinity cost model: cells re-fetched per migration.
    uint32_t footprint_cells = 32;
    CrossbarSwitch::Options xbar;
    obs::Registry* metrics = nullptr;
    etrace::TraceBuffer* trace = nullptr;
  };

  explicit SmpScheduler(Options options);
  ~SmpScheduler() override;

  // --- Scheduler interface -------------------------------------------------
  void AddThread(ThreadId id, SimTime now) override;
  void RemoveThread(ThreadId id, SimTime now) override;
  void OnReady(ThreadId id, SimTime now) override;
  void OnBlocked(ThreadId id, SimTime now) override;
  ThreadId PickNext(SimTime now) override { return PickNextOnCpu(0, now); }
  ThreadId PickNextOnCpu(int cpu, SimTime now) override;
  void OnQuantumEnd(ThreadId id, SimDuration used, SimDuration quantum,
                    SimTime now) override;
  void Tick(SimTime now) override;
  int partitioned_cpus() const override { return options_.num_cpus; }
  std::string name() const override { return "smp-lottery"; }

  // --- Funding -------------------------------------------------------------
  // Issues `amount` base-currency tickets to the thread on its home CPU and
  // records the grant, so migration can re-issue it on the destination's
  // table. (Cross-CPU tables are disjoint; base-denominated funding is the
  // shape every SMP workload here uses.)
  void FundThread(ThreadId id, int64_t amount);
  // Sum of this thread's recorded base funding (migration-invariant).
  int64_t FundedAmount(ThreadId id) const;
  // Base entitlement on the thread's current home table, compensation
  // divided out (the timeseries sampler's weight; see LotteryScheduler::
  // ThreadBaseValue). Zero for unknown threads; survives migration because
  // it reads whichever per-CPU table currently homes the thread.
  Funding ThreadBaseValue(ThreadId id);

  // --- Introspection (tests, benches) --------------------------------------
  int num_cpus() const { return options_.num_cpus; }
  LotteryScheduler& cpu(int i) { return *cpus_[static_cast<size_t>(i)]; }
  int HomeCpu(ThreadId id) const;
  const DomainMap& domains() const { return domains_; }
  CrossbarSwitch& crossbar() { return xbar_; }
  FastRand& balance_rng() { return balance_rng_; }  // lotlint: stream(balance)
  uint64_t steals() const { return steals_; }
  uint64_t migrations() const { return migrations_; }
  // Times a balance steal was vetoed by the crossbar cost model.
  uint64_t cost_vetoes() const { return cost_vetoes_; }
  // Migrations a single thread has survived (property tests).
  uint64_t ThreadMigrations(ThreadId id) const;
  // Structural invariants: every thread homed on exactly one CPU, queued on
  // at most its home, never queued while running. Throws on violation.
  void CheckIntegrity() const;

  // Forcible migration hook for tests: moves a queued thread to `dst`,
  // preserving funding and compensation. Throws if the thread is running,
  // blocked-out of the queue, or already on `dst`.
  void Migrate(ThreadId id, int dst, SimTime now);

 private:
  struct ThreadRec {
    int home = 0;
    bool running = false;
    int running_cpu = -1;
    // Base-currency grants recorded by FundThread, re-issued on migration.
    std::vector<int64_t> funding;
    uint64_t migrations = 0;
  };

  ThreadRec& RecOf(ThreadId id);
  const ThreadRec& RecOf(ThreadId id) const;
  // Drops a thread's running claim on its CPU (requeue/block/removal).
  void ClearRunning(ThreadRec& rec);

  // Runnable ticket value assigned to a CPU: its queue total plus the value
  // of the thread it is currently running. Both terms are maintained
  // incrementally by the per-CPU currency table's dirty propagation.
  uint64_t AssignedValue(int c);

  // Idle pull: nearest-domain victim with queued work, migrant chosen by a
  // value-weighted lottery on stream(balance). Always steals if anyone has
  // work (work conservation beats affinity for an idle CPU).
  void TryIdleSteal(int cpu, SimTime now);
  // Periodic rebalance: busiest-CPU-of-domain selection, probabilistic
  // steal proportional to ticket imbalance, crossbar cost veto.
  void TryBalanceSteal(int cpu, SimTime now);

  // Weighted pick over a victim queue snapshot; uniform when all zero.
  // `max_value` (0 = unbounded) filters out migrants bigger than the gap
  // they are meant to close. Returns kInvalidThreadId if nothing qualifies.
  ThreadId PickMigrant(const std::vector<std::pair<ThreadId, uint64_t>>& snap,
                       uint64_t max_value);

  // Crossbar bookkeeping: the victim->thief circuit, created on first use.
  CrossbarSwitch::CircuitId CircuitFor(int src, int dst);
  // Predicted transfer time for one migration over `level` domain hops.
  int64_t PredictCostNs(int src, int dst, int level);

  // Moves `id` (queued on `src`) to `dst`, re-issuing funding and carrying
  // compensation; emits etrace/counters with `type` (kSteal or kMigrate).
  void DoMigrate(ThreadId id, int src, int dst, SimTime now, int level,
                 uint16_t type, uint64_t imbalance);

  Options options_;
  std::vector<std::unique_ptr<LotteryScheduler>> cpus_;
  DomainMap domains_;
  // Balance draws live on their own stream so per-CPU dispatch sequences
  // are invariant under steal_enabled and rebalance churn.
  FastRand balance_rng_;  // lotlint: stream(balance)
  FastRand xbar_rng_;     // lotlint: stream(device)
  CrossbarSwitch xbar_;
  std::map<std::pair<int, int>, CrossbarSwitch::CircuitId> circuits_;
  // ThreadId -> record. std::map: scheduler-path iteration must be ordered
  // (lotlint D2) and CheckIntegrity walks it.
  std::map<ThreadId, ThreadRec> recs_;
  std::vector<ThreadId> running_tid_;        // per CPU, kInvalid when none
  std::vector<uint32_t> since_balance_;      // dispatches since last check
  int next_home_ = 0;                        // round-robin spawn placement
  SimDuration last_quantum_ = SimDuration::Millis(100);
  uint64_t steals_ = 0;
  uint64_t migrations_ = 0;
  uint64_t cost_vetoes_ = 0;

  // Obs hooks (resolved once; raw pointers into metrics_).
  obs::Registry* metrics_;
  obs::Counter* m_steals_;
  obs::Counter* m_migrations_;
  obs::Counter* m_balance_checks_;
  obs::Counter* m_cost_vetoes_;
  obs::Counter* m_xbar_cells_;
  std::vector<obs::Counter*> m_cpu_dispatches_;
  std::vector<obs::Counter*> m_cpu_steals_in_;
  std::vector<obs::Counter*> m_cpu_steals_out_;
};

}  // namespace smp
}  // namespace lottery

#endif  // SRC_SCHED_SMP_SMP_SCHEDULER_H_
