// Hierarchical balancing domains for the partitioned SMP scheduler.
//
// CPUs are grouped the way hardware is: a CPU shares an L2 with its core
// pair, a last-level cache with its package, and memory with everything
// else. The rebalancer in smp_scheduler.cc walks these levels inside-out —
// prefer stealing from a sibling before crossing the package boundary —
// and scales both its imbalance threshold and its crossbar-priced
// migration cost with the level it had to widen to.
//
// The map is pure topology: fixed at construction, no per-dispatch state,
// so domain iteration is a deterministic function of (num_cpus, cpu, level).

#ifndef SRC_SCHED_SMP_BALANCE_DOMAINS_H_
#define SRC_SCHED_SMP_BALANCE_DOMAINS_H_

#include <vector>

namespace lottery {
namespace smp {

// A contiguous CPU range [first, first + count).
struct Domain {
  int first = 0;
  int count = 0;
};

class DomainMap {
 public:
  // Groups `num_cpus` CPUs into pairs of `pair_size`, packages of
  // `package_size`, and one system-wide domain. Levels that would not widen
  // the previous one (e.g. the package level on a 2-CPU machine) collapse
  // away, so every level strictly grows the candidate set.
  explicit DomainMap(int num_cpus, int pair_size = 2, int package_size = 8);

  int num_cpus() const { return num_cpus_; }
  // Number of widening levels; 0 on a uniprocessor (nothing to balance).
  int num_levels() const { return static_cast<int>(sizes_.size()); }
  // The domain containing `cpu` at `level` (0 = innermost).
  Domain At(int cpu, int level) const;

 private:
  int num_cpus_;
  // Strictly increasing domain sizes, last == num_cpus_.
  std::vector<int> sizes_;
};

}  // namespace smp
}  // namespace lottery

#endif  // SRC_SCHED_SMP_BALANCE_DOMAINS_H_
