#include "src/sched/hybrid.h"

#include <stdexcept>

namespace lottery {

void HybridScheduler::SetFixedPriority(ThreadId id, int priority) {
  const bool was_ready = ready_.count(id) > 0;
  if (fixed_members_.count(id) == 0) {
    if (was_ready) {
      lottery_.OnBlocked(id, SimTime::Zero());
    }
    fixed_.AddThread(id, SimTime::Zero());
    fixed_members_.insert(id);
    if (was_ready) {
      fixed_.OnReady(id, SimTime::Zero());
    }
  }
  fixed_.SetPriority(id, priority);
}

void HybridScheduler::ClearFixedPriority(ThreadId id) {
  if (fixed_members_.erase(id) == 0) {
    return;
  }
  const bool was_ready = ready_.count(id) > 0;
  fixed_.RemoveThread(id, SimTime::Zero());
  if (was_ready) {
    lottery_.OnReady(id, SimTime::Zero());
  }
}

bool HybridScheduler::IsFixedPriority(ThreadId id) const {
  return fixed_members_.count(id) > 0;
}

void HybridScheduler::AddThread(ThreadId id, SimTime now) {
  lottery_.AddThread(id, now);
}

void HybridScheduler::RemoveThread(ThreadId id, SimTime now) {
  if (fixed_members_.erase(id) > 0) {
    fixed_.RemoveThread(id, now);
  }
  lottery_.RemoveThread(id, now);
  ready_.erase(id);
}

void HybridScheduler::OnReady(ThreadId id, SimTime now) {
  ready_.insert(id);
  if (fixed_members_.count(id) > 0) {
    fixed_.OnReady(id, now);
  } else {
    lottery_.OnReady(id, now);
  }
}

void HybridScheduler::OnBlocked(ThreadId id, SimTime now) {
  ready_.erase(id);
  if (fixed_members_.count(id) > 0) {
    fixed_.OnBlocked(id, now);
  } else {
    lottery_.OnBlocked(id, now);
  }
}

ThreadId HybridScheduler::PickNext(SimTime now) {
  // Fixed-priority threads take absolute precedence, as in the prototype.
  const ThreadId fixed_pick = fixed_.PickNext(now);
  if (fixed_pick != kInvalidThreadId) {
    ready_.erase(fixed_pick);
    picks_->Inc();
    return fixed_pick;
  }
  const ThreadId pick = lottery_.PickNext(now);
  if (pick != kInvalidThreadId) {
    ready_.erase(pick);
    picks_->Inc();
  }
  return pick;
}

void HybridScheduler::OnQuantumEnd(ThreadId id, SimDuration used,
                                   SimDuration quantum, SimTime now) {
  if (fixed_members_.count(id) > 0) {
    fixed_.OnQuantumEnd(id, used, quantum, now);
  } else {
    lottery_.OnQuantumEnd(id, used, quantum, now);
  }
}

}  // namespace lottery
