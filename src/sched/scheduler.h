// Policy-agnostic CPU scheduler interface.
//
// The simulation kernel (src/sim/kernel.h) drives any Scheduler through this
// interface, so the lottery scheduler and every baseline (round-robin, fixed
// priority, decay-usage timesharing, stride) run the identical workloads.
//
// Protocol, from the kernel's point of view:
//   AddThread(id)            thread exists (not yet ready)
//   OnReady(id)              thread enters the run queue
//   PickNext() -> id         removes one ready thread and dispatches it
//   ... thread runs for `used` <= quantum ...
//   OnQuantumEnd(id, used, quantum)
//   then exactly one of:
//     OnReady(id)            still runnable: requeue
//     OnBlocked(id)          blocked/sleeping: leaves the competition
//   RemoveThread(id)         thread exited
// OnBlocked may also target a thread that is sitting in the run queue (e.g.
// a remote actor revoked it); implementations must handle both cases.

#ifndef SRC_SCHED_SCHEDULER_H_
#define SRC_SCHED_SCHEDULER_H_

#include <cstdint>
#include <string>

#include "src/util/sim_time.h"

namespace lottery {

using ThreadId = uint32_t;
inline constexpr ThreadId kInvalidThreadId = 0xFFFFFFFFu;

class Scheduler {
 public:
  virtual ~Scheduler() = default;

  virtual void AddThread(ThreadId id, SimTime now) = 0;
  virtual void RemoveThread(ThreadId id, SimTime now) = 0;

  // Thread becomes runnable (enters the run queue).
  virtual void OnReady(ThreadId id, SimTime now) = 0;
  // Thread leaves the runnable set (may or may not be in the run queue).
  virtual void OnBlocked(ThreadId id, SimTime now) = 0;

  // Picks and dequeues the next thread to run, or kInvalidThreadId if the
  // run queue is empty. The picked thread is considered running until the
  // next OnQuantumEnd for it.
  virtual ThreadId PickNext(SimTime now) = 0;

  // SMP dispatch hook: pick the next thread to run on `cpu`. Single-queue
  // schedulers ignore the CPU index; partitioned schedulers (SmpScheduler)
  // route the pick to that CPU's local run queue. The kernel always
  // dispatches through this entry point.
  virtual ThreadId PickNextOnCpu(int /*cpu*/, SimTime now) {
    return PickNext(now);
  }

  // Number of CPUs this scheduler is partitioned for, or 0 when any kernel
  // num_cpus works (single-queue schedulers). The kernel rejects a mismatch
  // at construction, before any dispatch can target a nonexistent queue.
  virtual int partitioned_cpus() const { return 0; }

  // The dispatched thread ran for `used` out of an allotted `quantum`.
  virtual void OnQuantumEnd(ThreadId id, SimDuration used, SimDuration quantum,
                            SimTime now) = 0;

  // Periodic housekeeping; the kernel calls this once per simulated second
  // (decay-usage scheduling needs it; others ignore it).
  virtual void Tick(SimTime /*now*/) {}

  virtual std::string name() const = 0;
};

}  // namespace lottery

#endif  // SRC_SCHED_SCHEDULER_H_
