// Tree-based lottery: O(lg n) winner selection over partial ticket sums.
//
// Section 4.2: "for large n, a more efficient implementation is to use a
// tree of partial ticket sums, with clients at the leaves... requiring only
// lg n operations." The tree is stored as an implicit complete binary tree
// in breadth-first (Eytzinger) order over a power-of-two leaf count: node 1
// is the root (== total), node i has children 2i and 2i+1, and slot s lives
// at leaf capacity + s. Two properties make a draw cheap on real hardware:
//
//  * The descent is a fixed-trip, branchless loop — lg(capacity)
//    iterations, each a compare turned into an arithmetic mask (no
//    data-dependent branch for the predictor to miss on random values).
//  * The layout is cache-compact for descents: the first three levels
//    (seven nodes) share one 64-byte line — the array is 64-byte aligned —
//    and both grandchildren pairs of any node are contiguous, so each
//    level's candidates are prefetched one line at a time.
//
// Unlike ListLottery, which prices clients through the currency graph on
// every draw (as the Mach prototype did), TreeLottery manages flat weights
// pushed by its owner. The LotteryScheduler can run on either backend; the
// bench bench_draw_overhead compares their costs.

#ifndef SRC_CORE_TREE_LOTTERY_H_
#define SRC_CORE_TREE_LOTTERY_H_

#include <bit>
#include <cstdint>
#include <optional>
#include <vector>

#include "src/util/fastrand.h"

namespace lottery {

class TreeLottery {
 public:
  // `initial_capacity` is a hint; the tree grows on demand.
  explicit TreeLottery(size_t initial_capacity = 16);

  // Registers a competitor with the given weight; returns its slot handle.
  size_t Add(uint64_t weight);
  // Removes the competitor; its slot is recycled by later Add calls.
  void Remove(size_t slot);
  void SetWeight(size_t slot, uint64_t weight);
  uint64_t Weight(size_t slot) const;

  uint64_t total() const { return total_; }
  size_t size() const { return live_count_; }
  bool empty() const { return live_count_ == 0; }
  // Leaf count (power of two). Slots are always < capacity().
  size_t capacity() const { return weights_.size(); }

  // Picks a slot with probability weight/total in O(lg capacity);
  // std::nullopt if the total weight is zero. A non-null `drawn_value`
  // receives the random value in [0, total()) behind the pick (for the
  // etrace decision stream; the RNG sequence is unchanged either way).
  std::optional<size_t> Draw(FastRand& rng,
                             uint64_t* drawn_value = nullptr) const;
  // Deterministic variant used by tests: returns the slot owning the
  // `value`-th weight unit, value in [0, total).
  size_t SlotForValue(uint64_t value) const;

  // Batched multi-winner draw: exactly equivalent to k successive Draw()
  // calls — same RNG consumption, same winners in the same order — but the
  // k descents are resolved over one value-sorted sweep so they share the
  // upper tree levels in cache. Returns the number of winners written
  // (k, or 0 when the total weight is zero). `values` and `slots` must
  // each have room for k entries; `values` receives the drawn randoms.
  size_t DrawBatch(FastRand& rng, size_t k, uint64_t* values,
                   size_t* slots) const;
  // Resolves values[i] in [0, total) to slots[i] for i < k, descending in
  // ascending value order (one near-sequential sweep over the tree).
  void ResolveValues(size_t k, const uint64_t* values, size_t* slots) const;

  // Fenwick levels visited by one Draw descent: the tree analogue of the
  // list lottery's scan length (both feed the lottery.draw_cost histogram).
  size_t draw_depth() const {
    return static_cast<size_t>(std::bit_width(weights_.size()));
  }

 private:
  void Grow(size_t min_capacity);

  // Implicit binary tree, 64-byte aligned inside nodes_storage_:
  // nodes_[1] is the root, leaves at nodes_[capacity + slot].
  std::vector<uint64_t> nodes_storage_;
  uint64_t* nodes_ = nullptr;
  int levels_ = 0;                 // log2(capacity)
  std::vector<uint64_t> weights_;  // current weight per slot
  std::vector<size_t> free_slots_;
  size_t next_fresh_ = 0;
  size_t live_count_ = 0;
  uint64_t total_ = 0;
};

}  // namespace lottery

#endif  // SRC_CORE_TREE_LOTTERY_H_
