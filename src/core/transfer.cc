#include "src/core/transfer.h"

#include "src/core/invariants.h"
#include "src/obs/etrace/trace_buffer.h"

namespace lottery {

namespace {

// Transfer-lifecycle trace event: a=ticket id, name=target currency,
// v1=amount. Uses the table's buffer so transfers interleave with the
// currency events they cause.
void TraceTransfer(CurrencyTable* table, etrace::EventType type,
                   const Ticket* ticket, const Currency* target) {
  etrace::TraceBuffer* trace = table->trace();
  if (etrace::On(trace, etrace::kCatTransfer)) {
    etrace::Event e;
    e.t_ns = trace->now();
    e.v1 = static_cast<uint64_t>(ticket->amount());
    e.a = static_cast<uint32_t>(ticket->id());
    e.name = target != nullptr ? target->trace_name() : 0;
    e.type = static_cast<uint16_t>(type);
    trace->Append(e);
  }
}

}  // namespace

TicketTransfer::TicketTransfer(CurrencyTable* table, Currency* source,
                               Currency* target, int64_t amount)
    : table_(table), ticket_(table->CreateTicket(source, amount)) {
  if (target != nullptr) {
    table_->Fund(target, ticket_);
  }
  TraceTransfer(table_, etrace::EventType::kTransferStart, ticket_, target);
  // A transfer moves claim on `source`'s value; it must not mint amount.
  LOT_DCHECK_TICKET_CONSERVATION(*table_);
}

TicketTransfer::~TicketTransfer() { Release(); }

TicketTransfer::TicketTransfer(TicketTransfer&& other) noexcept
    : table_(other.table_), ticket_(other.ticket_) {
  other.ticket_ = nullptr;
}

TicketTransfer& TicketTransfer::operator=(TicketTransfer&& other) noexcept {
  if (this != &other) {
    Release();
    table_ = other.table_;
    ticket_ = other.ticket_;
    other.ticket_ = nullptr;
  }
  return *this;
}

void TicketTransfer::FundTarget(Currency* target) {
  table_->Fund(target, ticket_);
  TraceTransfer(table_, etrace::EventType::kTransferRetarget, ticket_, target);
}

void TicketTransfer::Retarget(Currency* new_target) {
  if (ticket_->funds() != nullptr) {
    table_->Unfund(ticket_);
  }
  table_->Fund(new_target, ticket_);
  TraceTransfer(table_, etrace::EventType::kTransferRetarget, ticket_,
                new_target);
  LOT_DCHECK_TICKET_CONSERVATION(*table_);
}

void TicketTransfer::Release() {
  if (ticket_ != nullptr) {
    TraceTransfer(table_, etrace::EventType::kTransferEnd, ticket_,
                  ticket_->funds());
    table_->DestroyTicket(ticket_);
    ticket_ = nullptr;
    LOT_DCHECK_TICKET_CONSERVATION(*table_);
  }
}

Currency* TicketTransfer::target() const {
  return ticket_ != nullptr ? ticket_->funds() : nullptr;
}

bool TicketTransfer::funded() const {
  return ticket_ != nullptr && ticket_->funds() != nullptr;
}

}  // namespace lottery
