#include "src/core/transfer.h"

#include "src/core/invariants.h"

namespace lottery {

TicketTransfer::TicketTransfer(CurrencyTable* table, Currency* source,
                               Currency* target, int64_t amount)
    : table_(table), ticket_(table->CreateTicket(source, amount)) {
  if (target != nullptr) {
    table_->Fund(target, ticket_);
  }
  // A transfer moves claim on `source`'s value; it must not mint amount.
  LOT_DCHECK_TICKET_CONSERVATION(*table_);
}

TicketTransfer::~TicketTransfer() { Release(); }

TicketTransfer::TicketTransfer(TicketTransfer&& other) noexcept
    : table_(other.table_), ticket_(other.ticket_) {
  other.ticket_ = nullptr;
}

TicketTransfer& TicketTransfer::operator=(TicketTransfer&& other) noexcept {
  if (this != &other) {
    Release();
    table_ = other.table_;
    ticket_ = other.ticket_;
    other.ticket_ = nullptr;
  }
  return *this;
}

void TicketTransfer::FundTarget(Currency* target) {
  table_->Fund(target, ticket_);
}

void TicketTransfer::Retarget(Currency* new_target) {
  if (ticket_->funds() != nullptr) {
    table_->Unfund(ticket_);
  }
  table_->Fund(new_target, ticket_);
  LOT_DCHECK_TICKET_CONSERVATION(*table_);
}

void TicketTransfer::Release() {
  if (ticket_ != nullptr) {
    table_->DestroyTicket(ticket_);
    ticket_ = nullptr;
    LOT_DCHECK_TICKET_CONSERVATION(*table_);
  }
}

Currency* TicketTransfer::target() const {
  return ticket_ != nullptr ? ticket_->funds() : nullptr;
}

bool TicketTransfer::funded() const {
  return ticket_ != nullptr && ticket_->funds() != nullptr;
}

}  // namespace lottery
