// Currencies and the CurrencyTable registry.
//
// Currencies implement the paper's modular resource management (Sections 3.3
// and 4.4): tickets are denominated in a currency; a currency is backed by
// tickets denominated in more primitive currencies; relationships form an
// acyclic graph rooted at the base currency. A currency's value is the sum
// of its active backing tickets' values; a ticket's value is its
// denomination's value times its share of the denomination's *active*
// issued amount. Activating or deactivating issued amount propagates along
// backing edges exactly as described in Section 4.4.
//
// CurrencyTable owns every Currency and Ticket, provides the kernel-style
// operations the paper's Mach interface exported (create/destroy ticket and
// currency, fund/unfund, compute values), enforces graph acyclicity, and
// optionally enforces per-currency access control (Section 4.7 notes that a
// complete system should protect currencies with ACLs).
//
// Value caching is incremental: each currency carries a dirty bit, and every
// mutation walks *forward* from the touched node along issued-ticket edges,
// marking only the currencies and clients whose value can actually change
// (see DESIGN.md "Incremental pricing"). Registered ValueObservers hear
// about every client whose value may have changed, which is how the
// scheduler's tree backend and ListLottery's cached total stay in sync
// without repricing the whole graph.

#ifndef SRC_CORE_CURRENCY_H_
#define SRC_CORE_CURRENCY_H_

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/funding.h"
#include "src/core/ticket.h"
#include "src/util/arena.h"

namespace lottery {

namespace obs {
class Counter;
class Registry;
}  // namespace obs

namespace etrace {
class TraceBuffer;
}  // namespace etrace

class Client;

// Hook for components that cache values derived from client values (run
// queues, schedulers). OnClientValueDirty fires for every client whose value
// may have changed, possibly more than once per mutation — observers must
// deduplicate and must not mutate the CurrencyTable reentrantly. Refreshing
// the value (Client::Value) is deferred to the observer's convenience.
class ValueObserver {
 public:
  virtual ~ValueObserver() = default;
  virtual void OnClientValueDirty(Client* client) = 0;
};

class Currency {
 public:
  Currency(const Currency&) = delete;
  Currency& operator=(const Currency&) = delete;

  const std::string& name() const { return name_; }
  bool is_base() const { return is_base_; }
  // A retired currency is awaiting destruction: its owner died while other
  // parties still held tickets issued in it (e.g. an in-flight RPC transfer
  // from a crashed client). Its backing is gone — issued tickets are worth
  // zero — and the table reclaims it when the last issued ticket dies.
  bool retired() const { return retired_; }
  // Sum of the amounts of currently active tickets issued in this currency.
  int64_t active_amount() const { return active_amount_; }
  // Sum of the amounts of all tickets issued in this currency.
  int64_t issued_amount() const { return issued_amount_; }

  const std::vector<Ticket*>& backing() const { return backing_; }
  const std::vector<Ticket*>& issued() const { return issued_; }

  // Interned name id in the owning table's TraceBuffer (0 when the table
  // is not tracing); stable for the currency's lifetime.
  uint32_t trace_name() const { return trace_name_; }

  // Access control (empty owner means unrestricted).
  const std::string& owner() const { return owner_; }
  bool MayInflate(const std::string& principal) const;
  void AllowInflator(const std::string& principal);

 private:
  friend class CurrencyTable;
  // The table's allocator must reach the private constructor/destructor.
  template <typename T, size_t kSlabObjects>
  friend class util::SlabPool;
  // Corrupts private state to prove the invariant checks catch it
  // (tests/invariant_test.cc); never used outside death tests.
  friend class InvariantTestPeer;

  Currency(std::string name, bool is_base, std::string owner)
      : name_(std::move(name)), is_base_(is_base), owner_(std::move(owner)) {}

  std::string name_;
  bool is_base_;
  bool retired_ = false;
  std::string owner_;
  std::set<std::string> inflators_;

  std::vector<Ticket*> backing_;
  std::vector<Ticket*> issued_;
  int64_t active_amount_ = 0;
  int64_t issued_amount_ = 0;

  // Value memoization, invalidated by dirty propagation: the bit is set when
  // a mutation can change this currency's value (CurrencyTable::
  // MarkCurrencyDirty) and cleared when CurrencyValue recomputes.
  mutable bool value_dirty_ = true;
  mutable Funding cached_value_{};

  // Interned name id in the table's TraceBuffer (0 when not tracing), so
  // reprice events on the draw path never touch the intern map.
  uint32_t trace_name_ = 0;

  // Intrusive creation-order list maintained by CurrencyTable (slab-pool
  // allocation; O(1) unlink on destroy; base stays at the head).
  Currency* list_prev_ = nullptr;
  Currency* list_next_ = nullptr;
};

class CurrencyTable {
 public:
  // Creates the table with its base currency (named "base"). `metrics`
  // (nullptr selects obs::Registry::Default()) receives the invalidation
  // counters: currency.dirty_marks / currency.reprices and
  // client.dirty_marks / client.reprices. `trace` (optional) receives
  // structured kCatCurrency events for every currency mutation/reprice;
  // currency names are interned at creation so recording is lookup-free.
  explicit CurrencyTable(obs::Registry* metrics = nullptr,
                         etrace::TraceBuffer* trace = nullptr);
  ~CurrencyTable();
  CurrencyTable(const CurrencyTable&) = delete;
  CurrencyTable& operator=(const CurrencyTable&) = delete;

  Currency* base() { return base_; }
  const Currency* base() const { return base_; }

  // Attaches (or detaches, with nullptr) the structured-event trace at
  // runtime. On attach, every currency's name is (re-)interned so later
  // events never carry name id 0 even for currencies created while
  // detached. Re-attaching the buffer the table was constructed with is a
  // pointer swap plus idempotent intern lookups.
  void SetTrace(etrace::TraceBuffer* trace);

  // --- Currency lifecycle -------------------------------------------------

  // Creates a currency. `owner` (optional) restricts who may issue tickets
  // in it; see Currency::MayInflate.
  Currency* CreateCurrency(const std::string& name,
                           const std::string& owner = "");
  Currency* FindCurrency(const std::string& name) const;
  // Destroys a currency. Its backing tickets are destroyed with it. It must
  // have no issued tickets (they represent value held by others).
  void DestroyCurrency(Currency* currency);
  // Destroys a currency whose owner is gone but whose issued tickets may
  // still be held by others (in-flight transfers from a crashed thread).
  // The backing tickets are destroyed immediately — the dead owner's
  // funding is withdrawn, so outstanding issued tickets are worth zero —
  // and the currency itself lingers, retired, until DestroyTicket reclaims
  // it with its last issued ticket. Equivalent to DestroyCurrency when no
  // issued tickets remain.
  void RetireCurrency(Currency* currency);

  // --- Ticket lifecycle ---------------------------------------------------

  // Issues a ticket of `amount` (> 0) denominated in `denomination`.
  // If `principal` is given, the denomination's ACL is checked; the
  // superuser (default "root", matching the paper's setuid commands)
  // always passes.
  Ticket* CreateTicket(Currency* denomination, int64_t amount,
                       const std::string& principal = "");

  // Principal that bypasses currency ACLs. Set empty to disable.
  void set_superuser(const std::string& name) { superuser_ = name; }
  const std::string& superuser() const { return superuser_; }
  // Destroys a ticket, detaching it from any currency or client first.
  void DestroyTicket(Ticket* ticket);
  // Changes a ticket's amount (ticket inflation/deflation, Section 3.2).
  void SetAmount(Ticket* ticket, int64_t amount);

  // --- Funding edges ------------------------------------------------------

  // Makes `ticket` back `target` ("fund" in the paper's interface). The
  // ticket must be unattached. Rejects edges that would create a cycle.
  void Fund(Currency* target, Ticket* ticket);
  // Removes `ticket` from the currency it backs; it becomes unattached.
  void Unfund(Ticket* ticket);

  // --- Values (Section 4.4) -----------------------------------------------

  // Value of a currency in base units: the sum of its active backing
  // tickets' values. The base currency has no meaningful own value; callers
  // should use TicketValue on base-denominated tickets.
  Funding CurrencyValue(const Currency* currency) const;
  // Value of a ticket in base units; zero if the ticket is inactive.
  Funding TicketValue(const Ticket* ticket) const;
  // Value the ticket would have if it were active (used to price transfers
  // and for introspection; does not require the ticket to be active).
  Funding PotentialTicketValue(const Ticket* ticket) const;

  // Exchange rate of a currency: base units per unit of active amount
  // (Section 3.3: "the effects of inflation can be locally contained by
  // maintaining an exchange rate between each local currency and a base
  // currency"). The base currency's rate is 1 by definition; a currency
  // with no active issued amount has rate 0.
  double ExchangeRate(const Currency* currency) const;  // lotlint: float-ok

  // Mutation epoch; bumps on any change that can affect values. Purely
  // informational (tests and introspection); caching is driven by the
  // per-node dirty bits, not by this counter.
  uint64_t epoch() const { return epoch_; }

  // --- Change notification --------------------------------------------------

  // Registers/unregisters an observer notified whenever a client's value may
  // have changed. Observers must outlive neither the table nor the clients
  // they are told about; RemoveObserver on an unregistered observer is a
  // no-op.
  void AddObserver(ValueObserver* observer);
  void RemoveObserver(ValueObserver* observer);

  size_t num_currencies() const { return num_currencies_; }
  size_t num_tickets() const { return num_tickets_; }

  // Structured-event trace attached at construction (may be null). Exposed
  // so ticket-transfer RAII (transfer.cc) can record into the same buffer.
  etrace::TraceBuffer* trace() const { return trace_; }

  // Looks up a ticket by its stable id (used by the user-level command
  // interface, which names tickets by id as the paper's lstkt/rmtkt did).
  Ticket* FindTicket(uint64_t id) const;
  // All currencies, base first (stable iteration for listings).
  std::vector<Currency*> Currencies() const;
  // All live tickets in creation order.
  std::vector<Ticket*> Tickets() const;

  // Renders the currency graph for debugging/examples, one line per
  // currency: name, value, active/issued amounts, backing summary.
  std::string DebugString() const;

  // Graphviz rendering of the full funding graph (Figures 2/3 style):
  // currencies as boxes (with value and active/issued amounts), clients as
  // ellipses, tickets as labelled edges from funder to funded.
  std::string ToDot() const;

 private:
  friend class Client;

  // Activation propagation (Section 4.4). Activate/Deactivate flip one
  // ticket and cascade along backing edges through AddActiveAmount.
  void ActivateTicket(Ticket* ticket);
  void DeactivateTicket(Ticket* ticket);
  void AddActiveAmount(Currency* currency, int64_t delta);

  void BumpEpoch() { ++epoch_; }

  // --- Dirty propagation (see DESIGN.md "Incremental pricing") -------------
  //
  // Invalidation walks forward along issued-ticket edges: a change inside
  // currency C can only affect the values of currencies funded by tickets
  // issued in C and of clients holding such tickets. Base-denominated
  // tickets are worth their face value regardless of the base currency's
  // active amount, so propagation never descends through the base — which
  // is what keeps a block/unblock cascade O(depth) instead of O(graph).

  // Marks `currency` dirty and propagates to everything its value feeds.
  // Early-exits if already dirty: the downstream was marked when the bit was
  // first set and cannot have revalidated without clearing this bit too.
  void MarkCurrencyDirty(Currency* currency);
  // Propagates a change of `denom`'s value or active amount to the
  // currencies/clients funded by tickets issued in `denom`.
  void PropagateDenominationChange(Currency* denom);
  // Marks whatever `ticket` directly feeds (the currency it funds or the
  // client holding it).
  void MarkTicketDirty(Ticket* ticket);
  // Invalidates a client's cached value and notifies observers. Called by
  // propagation and by Client for its local mutations (hold/release,
  // activation, compensation).
  void MarkClientDirty(Client* client);
  void NoteClientReprice() const;

  // True if `from` can reach `to` following backing edges (from's backing
  // tickets' denominations, transitively). Iterative with a visited set so
  // diamond-shaped graphs stay linear in edges, not exponential in depth.
  bool Reaches(const Currency* from, const Currency* to) const;

  Funding CurrencyValueUncached(const Currency* currency) const;

  // Appends to / unlinks from the intrusive creation-order lists.
  void LinkCurrency(Currency* currency);
  void UnlinkCurrency(Currency* currency);
  void LinkTicket(Ticket* ticket);
  void UnlinkTicket(Ticket* ticket);

  // Currencies and tickets are slab-pool allocated (a million threads mean
  // a million currencies and two million tickets — per-object new/delete
  // and O(n) registry scans would dominate) and threaded on intrusive
  // creation-order lists, with a name index for O(1) currency lookup. The
  // index is lookup-only: every iteration walks the deterministic lists.
  util::SlabPool<Currency> currency_pool_;
  util::SlabPool<Ticket> ticket_pool_;
  Currency* currencies_head_ = nullptr;
  Currency* currencies_tail_ = nullptr;
  Ticket* tickets_head_ = nullptr;
  Ticket* tickets_tail_ = nullptr;
  size_t num_currencies_ = 0;
  size_t num_tickets_ = 0;
  std::unordered_map<std::string, Currency*> currency_by_name_;
  Currency* base_;
  std::string superuser_ = "root";
  uint64_t epoch_ = 1;
  uint64_t next_ticket_id_ = 1;
  std::vector<ValueObserver*> observers_;

  etrace::TraceBuffer* trace_;

  // Obs hooks (resolved once at construction; raw pointers into metrics_).
  obs::Registry* metrics_;
  obs::Counter* currency_dirty_marks_;
  obs::Counter* currency_reprices_;
  obs::Counter* client_dirty_marks_;
  obs::Counter* client_reprices_;
};

}  // namespace lottery

#endif  // SRC_CORE_CURRENCY_H_
