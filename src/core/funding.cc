#include "src/core/funding.h"

#include <cstdio>

namespace lottery {

std::string Funding::ToString() const {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.3f base", ToBaseF());
  return buf;
}

}  // namespace lottery
