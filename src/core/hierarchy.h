// Convenience builders for the paper's standard currency hierarchy.
//
// Figures 2 and 3 organize resource rights as base -> user currencies ->
// task currencies -> per-thread funding. All of that is expressible with
// raw CurrencyTable calls; these helpers make experiments and applications
// read like the figures: create a user with base funding, create tasks
// under the user, fund threads from tasks. Each handle owns its backing
// ticket, so destroying a task returns its share to the user's pool.

#ifndef SRC_CORE_HIERARCHY_H_
#define SRC_CORE_HIERARCHY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/lottery_scheduler.h"

namespace lottery {

class UserAccount;

// A task currency funded from a user currency (Figure 3's task1..task3).
class TaskAccount {
 public:
  ~TaskAccount();
  TaskAccount(const TaskAccount&) = delete;
  TaskAccount& operator=(const TaskAccount&) = delete;

  Currency* currency() const { return currency_; }
  const std::string& name() const { return currency_->name(); }
  // The task's share of its user, in user-currency units.
  int64_t amount() const { return backing_->amount(); }
  void SetAmount(int64_t amount);

  // Issues `amount` of this task's currency to the scheduler thread `tid`.
  Ticket* FundThread(ThreadId tid, int64_t amount);

 private:
  friend class UserAccount;
  TaskAccount(LotteryScheduler* scheduler, Currency* currency,
              Ticket* backing)
      : scheduler_(scheduler), currency_(currency), backing_(backing) {}

  LotteryScheduler* scheduler_;
  Currency* currency_;
  Ticket* backing_;  // issued in the user currency, funds currency_
};

// A user currency funded from the base (Figure 3's alice/bob).
class UserAccount {
 public:
  // Creates currency `name` owned by `name`, funded with `base_amount`
  // base tickets. The scheduler must outlive the account.
  UserAccount(LotteryScheduler* scheduler, const std::string& name,
              int64_t base_amount);
  ~UserAccount();
  UserAccount(const UserAccount&) = delete;
  UserAccount& operator=(const UserAccount&) = delete;

  Currency* currency() const { return currency_; }
  const std::string& name() const { return currency_->name(); }
  int64_t base_amount() const { return backing_->amount(); }
  // Adjusts the user's machine share (administrative operation).
  void SetBaseAmount(int64_t amount);

  // Creates a task currency named "<user>/<task>" with `amount` of this
  // user's currency. The account owns the TaskAccount.
  TaskAccount* CreateTask(const std::string& task, int64_t amount);
  void DestroyTask(TaskAccount* task);

  // Shortcut for single-thread tasks: funds `tid` directly from the user
  // currency (no intermediate task currency).
  Ticket* FundThread(ThreadId tid, int64_t amount);

 private:
  LotteryScheduler* scheduler_;
  Currency* currency_;
  Ticket* backing_;  // issued in base, funds currency_
  std::vector<std::unique_ptr<TaskAccount>> tasks_;
};

}  // namespace lottery

#endif  // SRC_CORE_HIERARCHY_H_
