#include "src/core/invariants.h"

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/client.h"
#include "src/core/currency.h"
#include "src/core/ticket.h"

namespace lottery {
namespace invariants {

void CheckTicketConservation(const CurrencyTable& table) {
  for (const Currency* c : table.Currencies()) {
    int64_t issued_sum = 0;
    int64_t active_sum = 0;
    for (const Ticket* t : c->issued()) {
      LOT_ASSERT(t->amount() > 0,
                 "ticket conservation: non-positive ticket amount in " +
                     c->name());
      LOT_ASSERT(t->denomination() == c,
                 "ticket conservation: ticket issued-list/denomination "
                 "mismatch in " +
                     c->name());
      issued_sum += t->amount();
      if (t->active()) {
        active_sum += t->amount();
      }
    }
    LOT_ASSERT(c->issued_amount() == issued_sum,
               "ticket conservation: issued_amount " +
                   std::to_string(c->issued_amount()) + " != sum " +
                   std::to_string(issued_sum) + " in " + c->name());
    LOT_ASSERT(c->active_amount() == active_sum,
               "ticket conservation: active_amount " +
                   std::to_string(c->active_amount()) + " != sum " +
                   std::to_string(active_sum) + " in " + c->name());
    for (const Ticket* t : c->backing()) {
      LOT_ASSERT(t->funds() == c,
                 "ticket conservation: backing-list/funds mismatch in " +
                     c->name());
      LOT_ASSERT(t->active() == (c->active_amount() > 0),
                 "ticket conservation: backing ticket activation out of "
                 "sync with funded currency " +
                     c->name());
    }
  }
  for (const Ticket* t : table.Tickets()) {
    LOT_ASSERT(!(t->funds() != nullptr && t->holder() != nullptr),
               "ticket conservation: ticket both backs a currency and is "
               "held by a client");
    LOT_ASSERT(!t->active() ||
                   (t->funds() != nullptr || t->holder() != nullptr),
               "ticket conservation: unattached ticket is active");
    if (t->holder() != nullptr) {
      LOT_ASSERT(t->active() == t->holder()->active(),
                 "ticket conservation: held ticket activation out of sync "
                 "with holder " +
                     t->holder()->name());
    }
  }
}

namespace {

enum class Color : uint8_t { kWhite, kGrey, kBlack };

// DFS along backing edges; a grey->grey edge is a cycle.
void VisitAcyclic(const Currency* c,
                  std::vector<std::pair<const Currency*, Color>>* colors) {
  Color* mine = nullptr;
  for (auto& [cur, color] : *colors) {
    if (cur == c) {
      mine = &color;
      break;
    }
  }
  LOT_ASSERT(mine != nullptr, "acyclicity: currency missing from table");
  if (*mine == Color::kBlack) {
    return;
  }
  LOT_ASSERT(*mine != Color::kGrey,
             "acyclicity: currency graph cycle through " + c->name());
  *mine = Color::kGrey;
  for (const Ticket* t : c->backing()) {
    VisitAcyclic(t->denomination(), colors);
  }
  // Re-find: the vector is stable (no growth during the walk), but keep the
  // lookup honest rather than caching a pointer across recursion.
  for (auto& [cur, color] : *colors) {
    if (cur == c) {
      color = Color::kBlack;
      break;
    }
  }
}

}  // namespace

void CheckAcyclicity(const CurrencyTable& table) {
  const std::vector<Currency*> all = table.Currencies();
  std::vector<std::pair<const Currency*, Color>> colors;
  colors.reserve(all.size());
  for (const Currency* c : all) {
    colors.emplace_back(c, Color::kWhite);
  }
  for (const Currency* c : all) {
    VisitAcyclic(c, &colors);
  }
}

void CheckCompensationBound(const Client& client, int64_t max_factor) {
  const int64_t num = client.compensation_num();
  const int64_t den = client.compensation_den();
  LOT_ASSERT(den > 0, "compensation: non-positive denominator for " +
                          client.name());
  LOT_ASSERT(num >= den,
             "compensation: deflationary factor (< 1) for " + client.name());
  LOT_ASSERT(num <= den * max_factor,
             "compensation: factor exceeds q/f cap " +
                 std::to_string(max_factor) + " for " + client.name());
}

void CheckTable(const CurrencyTable& table) {
  CheckTicketConservation(table);
  CheckAcyclicity(table);
}

void CheckTableSampled(const CurrencyTable& table) {
  // Deterministic sampling: small tables (the unit/fig regime) are swept on
  // every mutation; big fuzz tables 1-in-64 so debug runs stay subquadratic.
  static uint64_t tick = 0;
  ++tick;
  if (table.num_tickets() <= 128 || tick % 64 == 0) {
    CheckTable(table);
  }
}

}  // namespace invariants
}  // namespace lottery
