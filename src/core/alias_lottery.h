// Alias-method lottery: O(1) winner selection for near-static ticket
// distributions (Walker 1977 / Vose 1991).
//
// The tree backend pays lg n per draw forever. When ticket values hold
// still for a stretch of quanta — the common steady state for server
// fleets between funding changes — a Walker alias table answers each draw
// with one random number, one division, and one 16-byte column load,
// independent of n. The trade is an O(n) table rebuild whenever any weight
// changes, so this backend is a hybrid:
//
//  * Every mutation (Add/Remove/SetWeight) invalidates the table and is
//    mirrored into an internal TreeLottery, which stays authoritative.
//  * Draws with no valid table come from the tree (correct immediately,
//    lg n cost) while a stability counter runs.
//  * Once draws_since_last_mutation reaches the rebuild threshold —
//    max(min_stable_draws, live/rebuild_cost_divisor), so the rebuild is
//    amortized against at least ~divisor draws of benefit — the table is
//    built and serves O(1) draws until the next mutation.
//
// Under churn (a mutation every draw) the counter never ripens and the
// backend degenerates to exactly the tree, which is the hysteresis the
// scheduler relies on: no rebuild storms, no worse than kTree.
//
// Construction is integer-exact (lotlint rule D3: no floats in ticket
// math). With n positive-weight entries and total T, entry i gets residual
// r_i = w_i * n and each of the n columns has capacity T, so the table
// partitions [0, n*T) and a draw r = NextBelow64(n*T) maps to column r/T,
// offset r%T, winner = offset < cut ? primary : alias. Every weight unit
// is represented exactly; P(win i) = w_i/T with zero rounding.

#ifndef SRC_CORE_ALIAS_LOTTERY_H_
#define SRC_CORE_ALIAS_LOTTERY_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/core/tree_lottery.h"
#include "src/util/fastrand.h"

namespace lottery {

class AliasLottery {
 public:
  struct Options {
    // Mutation-free draws required before a rebuild (floor).
    uint64_t min_stable_draws = 8;
    // Scales the threshold with population: rebuild only after at least
    // live/rebuild_cost_divisor stable draws, so the O(n) build is repaid.
    uint64_t rebuild_cost_divisor = 8;
  };

  AliasLottery();
  explicit AliasLottery(Options options, size_t initial_capacity = 16);

  // Same slot-handle contract as TreeLottery (the scheduler treats the two
  // interchangeably): Add returns a dense recycled slot, Remove frees it.
  size_t Add(uint64_t weight);
  void Remove(size_t slot);
  void SetWeight(size_t slot, uint64_t weight);
  uint64_t Weight(size_t slot) const { return tree_.Weight(slot); }

  uint64_t total() const { return tree_.total(); }
  size_t size() const { return tree_.size(); }
  bool empty() const { return tree_.empty(); }

  // Picks a slot with probability weight/total; std::nullopt when the total
  // is zero. `drawn_value` receives the alias draw in [0, n*total) when the
  // table served it (`used_table` set true) or the tree's prefix-sum value
  // in [0, total) on fallback — callers tagging trace events need the
  // distinction because only the latter replays against a snapshot.
  std::optional<size_t> Draw(FastRand& rng, uint64_t* drawn_value = nullptr,
                             bool* used_table = nullptr);

  // Deterministic prefix-sum resolution against the authoritative tree.
  size_t SlotForValue(uint64_t value) const {
    return tree_.SlotForValue(value);
  }

  // Cost proxy for the lottery.draw_cost histogram: 1 while the table is
  // live (O(1) draw), else the tree descent depth.
  size_t draw_depth() const {
    return table_valid_ ? 1 : tree_.draw_depth();
  }

  bool table_valid() const { return table_valid_; }
  uint64_t rebuilds() const { return rebuilds_; }
  uint64_t table_draws() const { return table_draws_; }
  uint64_t tree_draws() const { return tree_draws_; }

 private:
  struct Column {
    uint64_t cut = 0;      // offsets < cut win primary, rest win alias
    uint32_t primary = 0;  // slot handles (tree slots are dense and small)
    uint32_t alias = 0;
  };

  void Invalidate() {
    table_valid_ = false;
    stable_draws_ = 0;
    cycle_open_ = false;
  }
  uint64_t RebuildThreshold() const;
  // Builds the alias table from the tree's current weights. Returns false
  // (leaving the table invalid) when n*total would overflow the RNG's
  // 62-bit draw range — the tree then keeps serving.
  bool Rebuild();

  Options options_;
  TreeLottery tree_;  // authoritative weights; fallback draw path
  // The scheduler's dispatch cycle removes each winner and re-adds it (at
  // the same recycled slot, with the same weight) before the next draw.
  // That balanced Remove -> Add pair leaves the weight set untouched, so it
  // must be invisible to both the stability counter and a built table —
  // otherwise the table could never outlive a single dispatch. A removal
  // opens the cycle; the matching re-add closes it; anything else while a
  // cycle is open (or a draw taken mid-cycle) is real churn and
  // invalidates.
  bool cycle_open_ = false;
  size_t cycle_slot_ = 0;
  uint64_t cycle_weight_ = 0;
  std::vector<Column> columns_;
  uint64_t column_capacity_ = 0;  // == total at build time
  uint64_t scaled_total_ = 0;     // == n * total at build time
  bool table_valid_ = false;
  uint64_t stable_draws_ = 0;
  uint64_t rebuilds_ = 0;
  uint64_t table_draws_ = 0;
  uint64_t tree_draws_ = 0;
};

}  // namespace lottery

#endif  // SRC_CORE_ALIAS_LOTTERY_H_
