// Lottery tickets: the first-class representation of resource rights.
//
// A ticket is denominated in exactly one currency and has an integer amount.
// At any instant a ticket is in one of three attachments:
//   * unattached      — created but not yet deployed;
//   * held by a client — it funds that client's competition in lotteries;
//   * backing a currency — it is part of that currency's funding
//     (Section 3.3: "each currency is backed, or funded, by tickets that are
//     denominated in more primitive currencies").
//
// A ticket is *active* while the entity it funds is competing: a held ticket
// follows its holder's active state, and a backing ticket follows whether
// the currency it funds has any active issued amount (Section 4.4's
// activation propagation). All mutation goes through CurrencyTable so the
// active-amount sums stay consistent.

#ifndef SRC_CORE_TICKET_H_
#define SRC_CORE_TICKET_H_

#include <cstdint>

#include "src/util/arena.h"

namespace lottery {

class Client;
class Currency;
class CurrencyTable;

class Ticket {
 public:
  Ticket(const Ticket&) = delete;
  Ticket& operator=(const Ticket&) = delete;

  int64_t amount() const { return amount_; }
  // Currency this ticket is denominated (issued) in.
  Currency* denomination() const { return denomination_; }
  // Currency this ticket backs, or nullptr.
  Currency* funds() const { return funds_; }
  // Client holding this ticket, or nullptr.
  Client* holder() const { return holder_; }
  bool active() const { return active_; }
  uint64_t id() const { return id_; }

 private:
  friend class CurrencyTable;
  friend class Client;
  // The table's allocator must reach the private constructor/destructor.
  template <typename T, size_t kSlabObjects>
  friend class util::SlabPool;
  // Corrupts private state in death tests (tests/invariant_test.cc).
  friend class InvariantTestPeer;

  Ticket(uint64_t id, Currency* denomination, int64_t amount)
      : id_(id), denomination_(denomination), amount_(amount) {}

  uint64_t id_;
  Currency* denomination_;
  int64_t amount_;
  Currency* funds_ = nullptr;
  Client* holder_ = nullptr;
  bool active_ = false;

  // Intrusive creation-order list maintained by CurrencyTable, which
  // allocates tickets from a slab pool (no per-ticket heap allocation) and
  // needs O(1) unlink on destroy.
  Ticket* list_prev_ = nullptr;
  Ticket* list_next_ = nullptr;
};

}  // namespace lottery

#endif  // SRC_CORE_TICKET_H_
