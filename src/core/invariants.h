// Whole-structure invariant sweeps for the currency graph and scheduler.
//
// These are the runtime half of the project's determinism & invariant
// contract (DESIGN.md "Determinism contract"; the static half is
// tools/lotlint). Each Check* function walks a structure and LOT_ASSERTs
// the properties the paper's accounting depends on:
//
//   * Ticket conservation — every currency's issued_amount equals the sum
//     of its issued tickets' amounts, and active_amount equals the sum of
//     the active ones; ticket attachment is exclusive (a ticket backs a
//     currency XOR is held by a client XOR is unattached) and activation
//     implies attachment. Transfers move tickets; they must never mint or
//     destroy amount as a side effect.
//   * Acyclicity — the funding graph (backing edges toward more primitive
//     currencies) has no cycle, so value computation terminates and
//     CurrencyTable::Fund's online check can be trusted.
//   * Compensation bound — a client's compensation factor is q/f clamped
//     to [1, max_factor] (Section 4.5): num/den >= 1 and
//     num <= den * max_factor.
//
// The sweeps are O(tickets + currencies); CurrencyTable mutators invoke
// them through LOT_DCHECK_TABLE, which self-samples on large tables so
// debug fuzz runs stay subquadratic. All of this compiles out unless
// LOTTERY_INVARIANTS is defined (Debug builds define it by default).

#ifndef SRC_CORE_INVARIANTS_H_
#define SRC_CORE_INVARIANTS_H_

#include <cstdint>

#include "src/util/invariant.h"

namespace lottery {

class Client;
class CurrencyTable;

namespace invariants {

// Ticket/amount conservation over the whole table (see file comment).
void CheckTicketConservation(const CurrencyTable& table);

// The funding graph has no cycle along backing edges.
void CheckAcyclicity(const CurrencyTable& table);

// comp factor in [1, max_factor]; den > 0.
void CheckCompensationBound(const Client& client, int64_t max_factor);

// Conservation + acyclicity in one sweep.
void CheckTable(const CurrencyTable& table);

// Sampled variant used at mutator exits: checks every call while the table
// is small (the common test regime), then 1 call in 64 so debug fuzz runs
// with thousands of tickets stay fast. Deterministic (counter-based).
void CheckTableSampled(const CurrencyTable& table);

}  // namespace invariants
}  // namespace lottery

#if LOT_INVARIANTS_ENABLED
// Full-table sweep at a CurrencyTable mutator exit (sampled on big tables).
#define LOT_DCHECK_TABLE(table) \
  ::lottery::invariants::CheckTableSampled(table)
// Unsampled conservation sweep, for transfer endpoints and tests.
#define LOT_DCHECK_TICKET_CONSERVATION(table) \
  ::lottery::invariants::CheckTicketConservation(table)
// Compensation factor bound for one client.
#define LOT_DCHECK_COMPENSATION(client, max_factor) \
  ::lottery::invariants::CheckCompensationBound((client), (max_factor))
#else
#define LOT_DCHECK_TABLE(table) \
  do {                          \
  } while (false)
#define LOT_DCHECK_TICKET_CONSERVATION(table) \
  do {                                        \
  } while (false)
#define LOT_DCHECK_COMPENSATION(client, max_factor) \
  do {                                              \
  } while (false)
#endif

#endif  // SRC_CORE_INVARIANTS_H_
