#include "src/core/client.h"

#include <algorithm>
#include <stdexcept>

namespace lottery {

Client::Client(CurrencyTable* table, std::string name)
    : table_(table), name_(std::move(name)) {}

Client::~Client() {
  // Detach without destroying: ticket lifetime belongs to the table and
  // whoever created the ticket.
  while (!tickets_.empty()) {
    ReleaseTicket(tickets_.back());
  }
}

void Client::HoldTicket(Ticket* ticket) {
  if (ticket->holder_ != nullptr || ticket->funds_ != nullptr) {
    throw std::invalid_argument("HoldTicket: ticket already attached");
  }
  ticket->holder_ = this;
  tickets_.push_back(ticket);
  if (active_) {
    table_->ActivateTicket(ticket);
  }
  Invalidate();
}

void Client::ReleaseTicket(Ticket* ticket) {
  if (ticket->holder_ != this) {
    throw std::invalid_argument("ReleaseTicket: not held by this client");
  }
  if (ticket->active()) {
    table_->DeactivateTicket(ticket);
  }
  ticket->holder_ = nullptr;
  const auto it = std::find(tickets_.begin(), tickets_.end(), ticket);
  *it = tickets_.back();
  tickets_.pop_back();
  Invalidate();
}

void Client::SetActive(bool active) {
  if (active == active_) {
    return;
  }
  active_ = active;
  for (Ticket* t : tickets_) {
    if (active) {
      table_->ActivateTicket(t);
    } else {
      table_->DeactivateTicket(t);
    }
  }
  Invalidate();
}

void Client::SetCompensation(int64_t num, int64_t den) {
  if (num <= 0 || den <= 0) {
    throw std::invalid_argument("SetCompensation: factors must be positive");
  }
  if (num == comp_num_ && den == comp_den_) {
    return;
  }
  comp_num_ = num;
  comp_den_ = den;
  Invalidate();
}

void Client::ClearCompensation() {
  // No-op when there is nothing to clear: the scheduler calls this on every
  // quantum start, and steady-state dispatches must not dirty anything.
  if (comp_num_ == 1 && comp_den_ == 1) {
    return;
  }
  comp_num_ = 1;
  comp_den_ = 1;
  Invalidate();
}

void Client::Invalidate() {
  table_->MarkClientDirty(this);
}

Funding Client::Value() const {
  if (!active_) {
    return Funding::Zero();
  }
  if (cache_valid_) {
    return cached_value_;
  }
  Funding sum = Funding::Zero();
  for (const Ticket* t : tickets_) {
    sum += table_->TicketValue(t);
  }
  if (comp_num_ != comp_den_) {
    sum = sum.ScaleBy(comp_num_, comp_den_);
  }
  cached_value_ = sum;
  cache_valid_ = true;
  table_->NoteClientReprice();
  return sum;
}

}  // namespace lottery
