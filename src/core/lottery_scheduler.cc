#include "src/core/lottery_scheduler.h"

#include <iterator>
#include <stdexcept>

namespace lottery {

LotteryScheduler::LotteryScheduler(Options options)
    : options_(options),
      rng_(options.seed),
      compensation_(options.compensation),
      run_queue_(options.move_to_front),
      metrics_(options.metrics != nullptr ? options.metrics
                                          : &obs::Registry::Default()),
      draws_(metrics_->counter("lottery.draws")),
      zero_fallbacks_(metrics_->counter("lottery.zero_fallbacks")),
      compensation_grants_(metrics_->counter("lottery.compensation_grants")),
      transfers_(metrics_->counter("lottery.transfers")),
      draw_cost_(metrics_->histogram("lottery.draw_cost")) {}

LotteryScheduler::~LotteryScheduler() = default;

LotteryScheduler::ThreadState& LotteryScheduler::StateOf(ThreadId id) {
  const auto it = threads_.find(id);
  if (it == threads_.end()) {
    throw std::invalid_argument("LotteryScheduler: unknown thread " +
                                std::to_string(id));
  }
  return it->second;
}

void LotteryScheduler::AddThread(ThreadId id, SimTime /*now*/) {
  if (threads_.count(id) > 0) {
    throw std::invalid_argument("LotteryScheduler::AddThread: duplicate id");
  }
  ThreadState state;
  const std::string tag = "thread:" + std::to_string(id);
  state.currency = table_.CreateCurrency(tag);
  state.client = std::make_unique<Client>(&table_, tag);
  state.self_ticket =
      table_.CreateTicket(state.currency, options_.thread_ticket_amount);
  state.client->HoldTicket(state.self_ticket);
  by_client_[state.client.get()] = id;
  threads_.emplace(id, std::move(state));
}

void LotteryScheduler::RemoveThread(ThreadId id, SimTime /*now*/) {
  ThreadState& state = StateOf(id);
  if (state.in_queue) {
    if (options_.backend == RunQueueBackend::kList) {
      run_queue_.Remove(state.client.get());
    } else {
      tree_queue_.Remove(state.tree_slot);
      tree_slot_owner_.erase(state.tree_slot);
    }
  }
  state.client->SetActive(false);
  by_client_.erase(state.client.get());
  table_.DestroyTicket(state.self_ticket);
  state.client.reset();
  // Destroys the thread currency and all tickets funding it. Outstanding
  // transfer tickets issued in this currency must have been released first
  // (DestroyCurrency throws otherwise).
  table_.DestroyCurrency(state.currency);
  threads_.erase(id);
}

void LotteryScheduler::OnReady(ThreadId id, SimTime /*now*/) {
  ThreadState& state = StateOf(id);
  state.client->SetActive(true);
  if (!state.in_queue) {
    if (options_.backend == RunQueueBackend::kList) {
      run_queue_.Add(state.client.get());
    } else {
      state.tree_slot =
          tree_queue_.Add(state.client->Value().raw_unsigned());
      tree_slot_owner_[state.tree_slot] = id;
    }
    state.in_queue = true;
  }
}

void LotteryScheduler::OnBlocked(ThreadId id, SimTime /*now*/) {
  ThreadState& state = StateOf(id);
  if (state.in_queue) {
    if (options_.backend == RunQueueBackend::kList) {
      run_queue_.Remove(state.client.get());
    } else {
      tree_queue_.Remove(state.tree_slot);
      tree_slot_owner_.erase(state.tree_slot);
    }
    state.in_queue = false;
  }
  state.client->SetActive(false);
}

void LotteryScheduler::SyncTreeWeights() {
  if (tree_sync_epoch_ == table_.epoch()) {
    return;
  }
  for (const auto& [slot, tid] : tree_slot_owner_) {
    tree_queue_.SetWeight(slot, StateOf(tid).client->Value().raw_unsigned());
  }
  tree_sync_epoch_ = table_.epoch();
}

ThreadId LotteryScheduler::PickNextFromTree() {
  if (tree_slot_owner_.empty()) {
    return kInvalidThreadId;
  }
  ++num_lotteries_;
  draws_->Inc();
  draw_cost_->RecordSampled(tree_queue_.draw_depth());
  SyncTreeWeights();
  ThreadId winner_id;
  const auto drawn = tree_queue_.Draw(rng_);
  if (drawn.has_value()) {
    winner_id = tree_slot_owner_.at(*drawn);
  } else {
    // All ready clients have zero funding; pick arbitrarily so no one
    // starves (uniform over the zero-funded set across draws).
    const size_t index = static_cast<size_t>(rng_.NextBelow(
        static_cast<uint32_t>(tree_slot_owner_.size())));
    auto it = tree_slot_owner_.begin();
    std::advance(it, static_cast<ptrdiff_t>(index));
    winner_id = it->second;
    ++num_zero_fallbacks_;
    zero_fallbacks_->Inc();
  }
  ThreadState& state = StateOf(winner_id);
  tree_queue_.Remove(state.tree_slot);
  tree_slot_owner_.erase(state.tree_slot);
  state.in_queue = false;
  compensation_.OnQuantumStart(state.client.get());
  return winner_id;
}

ThreadId LotteryScheduler::PickNext(SimTime /*now*/) {
  if (options_.backend == RunQueueBackend::kTree) {
    return PickNextFromTree();
  }
  if (run_queue_.empty()) {
    return kInvalidThreadId;
  }
  ++num_lotteries_;
  draws_->Inc();
  const uint64_t scanned_before = run_queue_.total_scanned();
  Client* winner = run_queue_.Draw(rng_);
  draw_cost_->RecordSampled(run_queue_.total_scanned() - scanned_before);
  if (winner == nullptr) {
    // Every ready client currently has zero funding (e.g. all their backing
    // is deactivated). Degrade to round-robin so no one starves: take the
    // front; the requeue path appends, rotating the list.
    winner = run_queue_.Front();
    ++num_zero_fallbacks_;
    zero_fallbacks_->Inc();
  }
  run_queue_.Remove(winner);
  const auto it = by_client_.find(winner);
  if (it == by_client_.end()) {
    throw std::logic_error("LotteryScheduler::PickNext: orphan client");
  }
  ThreadState& state = StateOf(it->second);
  state.in_queue = false;
  // The thread starts its next quantum: any compensation ticket expires
  // (Section 4.5). Its tickets stay active while it runs.
  compensation_.OnQuantumStart(winner);
  return it->second;
}

void LotteryScheduler::OnQuantumEnd(ThreadId id, SimDuration used,
                                    SimDuration quantum, SimTime /*now*/) {
  ThreadState& state = StateOf(id);
  if (compensation_.OnQuantumEnd(state.client.get(), used, quantum)) {
    compensation_grants_->Inc();
  }
}

Currency* LotteryScheduler::thread_currency(ThreadId id) {
  return StateOf(id).currency;
}

Client* LotteryScheduler::client(ThreadId id) {
  return StateOf(id).client.get();
}

Ticket* LotteryScheduler::FundThread(ThreadId id, Currency* denomination,
                                     int64_t amount,
                                     const std::string& principal) {
  ThreadState& state = StateOf(id);
  Ticket* ticket = table_.CreateTicket(denomination, amount, principal);
  table_.Fund(state.currency, ticket);
  return ticket;
}

Funding LotteryScheduler::ThreadValue(ThreadId id) {
  return StateOf(id).client->Value();
}

}  // namespace lottery
