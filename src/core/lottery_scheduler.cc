#include "src/core/lottery_scheduler.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <vector>

#include "src/core/invariants.h"
#include "src/obs/etrace/trace_buffer.h"

namespace lottery {

LotteryScheduler::LotteryScheduler(Options options)
    : options_(options),
      rng_(options.seed),
      table_(options.metrics, options.trace),
      compensation_(options.compensation),
      run_queue_(options.move_to_front),
      alias_queue_(options.alias),
      metrics_(options.metrics != nullptr ? options.metrics
                                          : &obs::Registry::Default()),
      draws_(metrics_->counter("lottery.draws")),
      zero_fallbacks_(metrics_->counter("lottery.zero_fallbacks")),
      compensation_grants_(metrics_->counter("lottery.compensation_grants")),
      transfers_(metrics_->counter("lottery.transfers")),
      leaf_updates_(metrics_->counter("tree.leaf_updates")),
      full_syncs_(metrics_->counter("tree.full_syncs")),
      batch_formed_(metrics_->counter("lottery.batch_formed")),
      batch_draws_(metrics_->counter("lottery.batch_draws")),
      batch_flushes_(metrics_->counter("lottery.batch_flushes")),
      alias_rebuilds_(metrics_->counter("alias.rebuilds")),
      alias_table_draws_(metrics_->counter("alias.table_draws")),
      alias_tree_draws_(metrics_->counter("alias.tree_draws")),
      list_upgrades_(metrics_->counter("lottery.list_upgrades")),
      draw_cost_(metrics_->histogram("lottery.draw_cost")),
      sync_ns_(metrics_->histogram("lottery.sync_ns")),
      tree_draw_ns_(metrics_->histogram("lottery.tree_draw_ns")) {
  if (options_.backend != RunQueueBackend::kList) {
    // The list backend needs no scheduler-side tracking: run_queue_ itself
    // observes the table for its cached total.
    table_.AddObserver(this);
  }
}

LotteryScheduler::~LotteryScheduler() {
  table_.RemoveObserver(this);  // no-op under the list backend
}

void LotteryScheduler::OnClientValueDirty(Client* client) {
  dirty_clients_.insert(client);
  NoteDisturbance();
}

// --- Tree/alias queue dispatch ---------------------------------------------

bool LotteryScheduler::QueueEmpty() const {
  return options_.backend == RunQueueBackend::kAlias ? alias_queue_.empty()
                                                     : tree_queue_.empty();
}

size_t LotteryScheduler::QueueSize() const {
  return options_.backend == RunQueueBackend::kAlias ? alias_queue_.size()
                                                     : tree_queue_.size();
}

uint64_t LotteryScheduler::QueueTotal() const {
  return options_.backend == RunQueueBackend::kAlias ? alias_queue_.total()
                                                     : tree_queue_.total();
}

uint64_t LotteryScheduler::QueueWeight(size_t slot) const {
  return options_.backend == RunQueueBackend::kAlias
             ? alias_queue_.Weight(slot)
             : tree_queue_.Weight(slot);
}

size_t LotteryScheduler::QueueAdd(uint64_t weight) {
  return options_.backend == RunQueueBackend::kAlias ? alias_queue_.Add(weight)
                                                     : tree_queue_.Add(weight);
}

void LotteryScheduler::QueueRemove(size_t slot) {
  if (options_.backend == RunQueueBackend::kAlias) {
    alias_queue_.Remove(slot);
  } else {
    tree_queue_.Remove(slot);
  }
}

void LotteryScheduler::QueueSetWeight(size_t slot, uint64_t weight) {
  if (options_.backend == RunQueueBackend::kAlias) {
    alias_queue_.SetWeight(slot, weight);
  } else {
    tree_queue_.SetWeight(slot, weight);
  }
}

// --- Speculative batching ---------------------------------------------------

void LotteryScheduler::FlushBatch() {
  if (HasLiveBatch()) {
    batch_flushes_->Inc();
  }
  batch_.clear();
  batch_next_ = 0;
  restore_pending_ = false;
}

void LotteryScheduler::NoteDisturbance() {
  pick_clean_ = false;
  clean_streak_ = 0;
  if (HasLiveBatch()) {
    FlushBatch();
  }
}

void LotteryScheduler::FormBatch(uint64_t total) {
  const size_t k = options_.batch_window - 1;
  batch_values_.resize(k);
  batch_slots_.resize(k);
  batch_.resize(k);
  // Draw the next k randoms from a copy of the generator: rng_ itself stays
  // untouched until each entry is actually served, so a flushed batch
  // leaves no trace in the stream.
  FastRand spec = rng_;  // lotlint: stream(scheduler)
  for (size_t i = 0; i < k; ++i) {
    batch_[i].pre_state = spec.state();
    batch_values_[i] = spec.NextBelow64(total);
    batch_[i].post_state = spec.state();
  }
  tree_queue_.ResolveValues(k, batch_values_.data(), batch_slots_.data());
  for (size_t i = 0; i < k; ++i) {
    batch_[i].value = batch_values_[i];
    batch_[i].slot = batch_slots_[i];
  }
  batch_next_ = 0;
  batch_formed_->Inc();
}

LotteryScheduler::ThreadState& LotteryScheduler::StateOf(ThreadId id) {
  const auto it = threads_.find(id);
  if (it == threads_.end()) {
    throw std::invalid_argument("LotteryScheduler: unknown thread " +
                                std::to_string(id));
  }
  return it->second;
}

void LotteryScheduler::UpgradeListToTree() {
  table_.AddObserver(this);
  // Migrate every queued client, then switch; QueueAdd below must already
  // see the tree backend so OnReady/PickNext stay consistent.
  std::vector<Client*> queued(run_queue_.raw_order().begin(),
                              run_queue_.raw_order().end());
  options_.backend = RunQueueBackend::kTree;
  for (Client* client : queued) {
    if (client == nullptr) {
      continue;
    }
    run_queue_.Remove(client);
    const auto it = by_client_.find(client);
    if (it == by_client_.end()) {
      continue;
    }
    ThreadState& state = *it->second;
    state.tree_slot = tree_queue_.Add(client->Value().raw_unsigned());
    if (state.tree_slot >= tree_slot_owner_.size()) {
      tree_slot_owner_.resize(state.tree_slot + 1, nullptr);
    }
    tree_slot_owner_[state.tree_slot] = &state;
    dirty_clients_.erase(client);
  }
  list_upgrades_->Inc();
}

void LotteryScheduler::AddThread(ThreadId id, SimTime /*now*/) {
  if (threads_.count(id) > 0) {
    throw std::invalid_argument("LotteryScheduler::AddThread: duplicate id");
  }
  if (options_.backend == RunQueueBackend::kList &&
      options_.list_max_threads != 0 &&
      threads_.size() >= options_.list_max_threads) {
    // The list's O(n) draw is ~280x the tree's at 10k clients
    // (bench_draw_overhead baselines); past the threshold it is a
    // misconfiguration, not a trade-off.
    if (!options_.list_upgrade_to_tree) {
      throw std::length_error(
          "LotteryScheduler: list backend past list_max_threads=" +
          std::to_string(options_.list_max_threads) +
          " clients; use RunQueueBackend::kTree (or set "
          "list_upgrade_to_tree / list_max_threads=0)");
    }
    std::fprintf(stderr,
                 "LotteryScheduler: list backend exceeded %zu threads; "
                 "upgrading to tree backend\n",
                 options_.list_max_threads);
    util::SeqGuard guard(queue_seq_);
    UpgradeListToTree();
  }
  ThreadState state;
  state.id = id;
  const std::string tag = "thread:" + std::to_string(id);
  state.currency = table_.CreateCurrency(tag);
  state.client = std::make_unique<Client>(&table_, tag);
  state.self_ticket =
      table_.CreateTicket(state.currency, options_.thread_ticket_amount);
  state.client->HoldTicket(state.self_ticket);
  ThreadState& stored = threads_.emplace(id, std::move(state)).first->second;
  by_client_[stored.client.get()] = &stored;
  LOT_DCHECK_TABLE(table_);
}

void LotteryScheduler::RemoveThread(ThreadId id, SimTime /*now*/) {
  ThreadState& state = StateOf(id);
  if (state.in_queue) {
    if (options_.backend == RunQueueBackend::kList) {
      run_queue_.Remove(state.client.get());
    } else {
      util::SeqGuard guard(queue_seq_);
      QueueRemove(state.tree_slot);
      tree_slot_owner_[state.tree_slot] = nullptr;
      NoteDisturbance();
    }
  }
  state.client->SetActive(false);
  by_client_.erase(state.client.get());
  table_.DestroyTicket(state.self_ticket);
  Client* dead = state.client.get();
  state.client.reset();
  // After reset: the Client destructor releases any remaining tickets,
  // which re-notifies observers and can re-insert the pointer.
  dirty_clients_.erase(dead);
  // Destroys the thread currency and all tickets funding it. A thread that
  // dies with in-flight transfers (a crashed RPC client whose call is still
  // queued) leaves tickets issued in this currency in others' hands; the
  // currency is then retired — worth zero, reclaimed with its last issued
  // ticket — instead of destroyed outright.
  table_.RetireCurrency(state.currency);
  threads_.erase(id);
  LOT_DCHECK_TABLE(table_);
}

void LotteryScheduler::OnReady(ThreadId id, SimTime /*now*/) {
  ThreadState& state = StateOf(id);
  state.client->SetActive(true);
  if (!state.in_queue) {
    if (options_.backend == RunQueueBackend::kList) {
      run_queue_.Add(state.client.get());
    } else {
      util::SeqGuard guard(queue_seq_);
      const uint64_t weight = state.client->Value().raw_unsigned();
      state.tree_slot = QueueAdd(weight);
      if (state.tree_slot >= tree_slot_owner_.size()) {
        tree_slot_owner_.resize(state.tree_slot + 1, nullptr);
      }
      tree_slot_owner_[state.tree_slot] = &state;
      // The slot was seeded with the current value; any pending dirty mark
      // (e.g. from the unblock activation above) is already folded in.
      dirty_clients_.erase(state.client.get());
      if (restore_pending_ && state.tree_slot == restore_slot_ &&
          weight == restore_weight_) {
        // The previous winner re-entered at its old slot with its old
        // weight: the queue is back to the state any live batch was formed
        // against, and the steady-state cycle stays "clean".
        restore_pending_ = false;
      } else {
        NoteDisturbance();
      }
    }
    state.in_queue = true;
  }
  LOT_ASSERT(state.in_queue && state.client->active(),
             "OnReady left thread " + std::to_string(id) + " not competing");
}

void LotteryScheduler::OnBlocked(ThreadId id, SimTime /*now*/) {
  ThreadState& state = StateOf(id);
  if (state.in_queue) {
    if (options_.backend == RunQueueBackend::kList) {
      run_queue_.Remove(state.client.get());
    } else {
      util::SeqGuard guard(queue_seq_);
      QueueRemove(state.tree_slot);
      tree_slot_owner_[state.tree_slot] = nullptr;
      NoteDisturbance();
    }
    state.in_queue = false;
  }
  state.client->SetActive(false);
  LOT_ASSERT(!state.in_queue && !state.client->active(),
             "OnBlocked left thread " + std::to_string(id) + " competing");
}

void LotteryScheduler::SyncTreeWeights() {
  if (dirty_clients_.empty()) {
    return;
  }
  if (dirty_clients_.size() > QueueSize()) {
    // More dirty clients than queued slots: one bulk pass is cheaper than
    // per-client lookups (and covers the first sync after mass arrivals).
    full_syncs_->Inc();
    for (ThreadState* state : tree_slot_owner_) {
      if (state == nullptr) {
        continue;
      }
      QueueSetWeight(state->tree_slot,
                     state->client->Value().raw_unsigned());
    }
  } else {
    // The weights are an order-independent fold, but client->Value() emits
    // kReprice trace events on cache fills — flushing straight out of the
    // pointer-hashed set would bake heap layout into the trace. Collect the
    // queued survivors and flush in thread-id order so traces stay
    // byte-identical run to run.
    std::vector<ThreadState*> dirty;
    dirty.reserve(dirty_clients_.size());
    // lotlint: ordered-ok (collect only; applied in sorted order below)
    for (Client* client : dirty_clients_) {
      const auto it = by_client_.find(client);
      if (it == by_client_.end()) {
        continue;
      }
      if (!it->second->in_queue) {
        continue;  // not competing; OnReady seeds a fresh weight later
      }
      dirty.push_back(it->second);
    }
    std::sort(dirty.begin(), dirty.end(),
              [](const ThreadState* a, const ThreadState* b) {
                return a->id < b->id;
              });
    for (ThreadState* state : dirty) {
      QueueSetWeight(state->tree_slot, state->client->Value().raw_unsigned());
      leaf_updates_->Inc();
    }
  }
  dirty_clients_.clear();
}

ThreadId LotteryScheduler::PickNextFromTree() {
  util::SeqGuard guard(queue_seq_);
  if (QueueEmpty()) {
    return kInvalidThreadId;
  }
  const bool alias_backend = options_.backend == RunQueueBackend::kAlias;
  ++num_lotteries_;
  draws_->Inc();
  // Advance the clean-streak gate: a pick with no disturbance since the
  // previous one extends the streak that arms speculative batching.
  if (pick_clean_) {
    ++clean_streak_;
  } else {
    clean_streak_ = 0;
    pick_clean_ = true;
  }
  // Sample the wall-clock sync/draw split on the histogram cadence; the
  // clock reads would otherwise dominate a tree dispatch.
  const bool timed = obs::kObsEnabled && (timing_tick_++ % 16 == 0);
  std::chrono::steady_clock::time_point t0;  // lotlint: wallclock-ok
  if (timed) {
    t0 = std::chrono::steady_clock::now();  // lotlint: wallclock-ok
  }
  SyncTreeWeights();
#if LOT_INVARIANTS_ENABLED
  // Sampled O(n) sweep: the partial-sum total must equal the sum of the
  // live slots' weights, or incremental SetWeight updates have drifted.
  if (timing_tick_ % 64 == 1) {
    uint64_t weight_sum = 0;
    for (ThreadState* s : tree_slot_owner_) {
      if (s != nullptr) {
        weight_sum += QueueWeight(s->tree_slot);
      }
    }
    LOT_ASSERT(weight_sum == QueueTotal(),
               "tree lottery: partial sums out of sync with slot weights");
  }
#endif
  std::chrono::steady_clock::time_point t1;  // lotlint: wallclock-ok
  if (timed) {
    t1 = std::chrono::steady_clock::now();  // lotlint: wallclock-ok
    sync_ns_->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count()));
  }
  // Candidate snapshot (verbose, opt-in): weights as the draw below sees
  // them, in slot order — the prefix order SlotForValue resolves against,
  // so each winner is re-derivable from (snapshot, random value). Alias
  // table draws are the exception; their decision events carry
  // kDecisionAlias so auditors skip the replay.
  if (etrace::On(options_.trace, etrace::kCatLotterySnapshot)) {
    uint32_t index = 0;
    for (size_t slot = 0; slot < tree_slot_owner_.size(); ++slot) {
      ThreadState* state = tree_slot_owner_[slot];
      if (state == nullptr) {
        continue;
      }
      etrace::Event e;
      e.t_ns = options_.trace->now();
      e.a = state->id;
      e.b = index++;
      e.v1 = QueueWeight(slot);
      e.type = static_cast<uint16_t>(etrace::EventType::kCandidate);
      options_.trace->Append(e);
    }
  }
  ThreadState* winner = nullptr;
  uint64_t drawn_value = 0;
  std::optional<size_t> drawn;
  bool batched = false;
  bool alias_table_draw = false;
  if (alias_backend) {
    drawn = alias_queue_.Draw(rng_, &drawn_value, &alias_table_draw);
    // Mirror the AliasLottery's internal stats into counters by delta.
    alias_rebuilds_->Inc(alias_queue_.rebuilds() - alias_rebuilds_seen_);
    alias_rebuilds_seen_ = alias_queue_.rebuilds();
    alias_table_draws_->Inc(alias_queue_.table_draws() -
                            alias_table_draws_seen_);
    alias_table_draws_seen_ = alias_queue_.table_draws();
    alias_tree_draws_->Inc(alias_queue_.tree_draws() -
                           alias_tree_draws_seen_);
    alias_tree_draws_seen_ = alias_queue_.tree_draws();
  } else {
    if (HasLiveBatch()) {
      const BatchEntry& entry = batch_[batch_next_];
      if (!restore_pending_ && rng_.state() == entry.pre_state) {
        // Serve the pre-resolved winner: identical value, winner and RNG
        // stream to the descent this replaces.
        drawn_value = entry.value;
        drawn = entry.slot;
        rng_.SetState(entry.post_state);
        batched = true;
        ++batch_next_;
        batch_draws_->Inc();
      } else {
        // The queue never returned to the formation state (winner came
        // back changed) or someone else drew from rng_ in between.
        FlushBatch();
      }
    }
    if (!batched) {
      drawn = tree_queue_.Draw(rng_, &drawn_value);
    }
  }
  const size_t cost = batched || alias_table_draw
                          ? 1
                          : (alias_backend ? alias_queue_.draw_depth()
                                           : tree_queue_.draw_depth());
  draw_cost_->RecordSampled(cost);
  if (drawn.has_value()) {
    winner = tree_slot_owner_[*drawn];
  } else {
    // All ready clients have zero funding; pick arbitrarily so no one
    // starves (uniform over the zero-funded set across draws).
    size_t index = static_cast<size_t>(
        rng_.NextBelow(static_cast<uint32_t>(QueueSize())));
    drawn_value = index;  // decision event: index into live slots
    for (ThreadState* state : tree_slot_owner_) {
      if (state == nullptr) {
        continue;
      }
      if (index-- == 0) {
        winner = state;
        break;
      }
    }
    ++num_zero_fallbacks_;
    zero_fallbacks_->Inc();
  }
  LOT_ASSERT(winner != nullptr, "tree draw returned no winner");
  if (etrace::On(options_.trace, etrace::kCatLottery)) {
    etrace::Event e;
    e.t_ns = options_.trace->now();
    e.a = winner->id;
    e.v1 = drawn_value;
    e.v2 = QueueTotal();
    e.v3 = QueueWeight(winner->tree_slot);
    uint16_t flags = alias_table_draw ? etrace::kDecisionAlias
                                      : etrace::kDecisionTree;
    if (!drawn.has_value()) {
      flags |= etrace::kDecisionFallback;
    }
    if (batched) {
      flags |= etrace::kDecisionBatched;
    }
    e.flags = flags;
    e.type = static_cast<uint16_t>(etrace::EventType::kDecision);
    options_.trace->Append(e);
  }
  // Speculative batch formation happens before the winner's removal: this
  // exact queue state is what future draws see once the winner re-enters
  // unchanged, and any deviation (tracked via restore_pending_ / dirty
  // marks) flushes the entries unserved.
  if (!alias_backend && options_.batch_window >= 2 && !HasLiveBatch() &&
      clean_streak_ >= kBatchStreakMin && drawn.has_value()) {
    FormBatch(tree_queue_.total());
  }
  const uint64_t removed_weight = QueueWeight(winner->tree_slot);
  QueueRemove(winner->tree_slot);
  tree_slot_owner_[winner->tree_slot] = nullptr;
  winner->in_queue = false;
  // Track the winner's expected re-entry whether or not a batch is live:
  // the matching OnReady is the one queue change that keeps the
  // steady-state cycle "clean" (and a live batch valid).
  restore_pending_ = true;
  restore_slot_ = winner->tree_slot;
  restore_weight_ = removed_weight;
  compensation_.OnQuantumStart(winner->client.get());
  if (timed) {
    const auto t2 = std::chrono::steady_clock::now();  // lotlint: wallclock-ok
    tree_draw_ns_->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t2 - t1)
            .count()));
  }
  return winner->id;
}

ThreadId LotteryScheduler::PickNext(SimTime now) {
  // Advance the trace's sim-time cursor: everything recorded from here to
  // the dispatch (decisions, reprices, transfer churn) stamps this instant.
  etrace::SetNow(options_.trace, now.nanos());
  if (options_.backend != RunQueueBackend::kList) {
    return PickNextFromTree();
  }
  if (run_queue_.empty()) {
    return kInvalidThreadId;
  }
  ++num_lotteries_;
  draws_->Inc();
  // Candidate snapshot (verbose, opt-in) in list order, captured before the
  // draw's move-to-front mutates it: the winner is the first candidate
  // whose running value sum exceeds the drawn random value.
  if (etrace::On(options_.trace, etrace::kCatLotterySnapshot)) {
    uint32_t index = 0;
    for (Client* candidate : run_queue_.raw_order()) {
      if (candidate == nullptr) {
        continue;
      }
      const auto cit = by_client_.find(candidate);
      etrace::Event e;
      e.t_ns = options_.trace->now();
      e.a = cit != by_client_.end() ? cit->second->id : kInvalidThreadId;
      e.b = index++;
      e.v1 = candidate->Value().raw_unsigned();
      e.type = static_cast<uint16_t>(etrace::EventType::kCandidate);
      options_.trace->Append(e);
    }
  }
  const uint64_t scanned_before = run_queue_.total_scanned();
  uint64_t drawn_value = 0;
  Client* winner = run_queue_.Draw(rng_, &drawn_value);
  draw_cost_->RecordSampled(run_queue_.total_scanned() - scanned_before);
  bool fallback = false;
  if (winner == nullptr) {
    // Every ready client currently has zero funding (e.g. all their backing
    // is deactivated). Degrade to round-robin so no one starves: take the
    // front; the requeue path appends, rotating the list.
    winner = run_queue_.Front();
    fallback = true;
    ++num_zero_fallbacks_;
    zero_fallbacks_->Inc();
  }
  // Total/value reads below are cache hits (the draw just refreshed them);
  // capture before Remove() deducts the winner from the cached total.
  if (etrace::On(options_.trace, etrace::kCatLottery)) {
    etrace::Event e;
    e.t_ns = options_.trace->now();
    e.v1 = drawn_value;
    e.v2 = run_queue_.Total().raw_unsigned();
    e.v3 = winner->Value().raw_unsigned();
    e.flags = fallback ? etrace::kDecisionFallback : uint16_t{0};
    e.type = static_cast<uint16_t>(etrace::EventType::kDecision);
    const auto wit = by_client_.find(winner);
    e.a = wit != by_client_.end() ? wit->second->id : kInvalidThreadId;
    options_.trace->Append(e);
  }
  run_queue_.Remove(winner);
  const auto it = by_client_.find(winner);
  if (it == by_client_.end()) {
    throw std::logic_error("LotteryScheduler::PickNext: orphan client");
  }
  ThreadState& state = *it->second;
  state.in_queue = false;
  // The thread starts its next quantum: any compensation ticket expires
  // (Section 4.5). Its tickets stay active while it runs.
  compensation_.OnQuantumStart(winner);
  LOT_ASSERT(!winner->has_compensation(),
             "quantum start left a live compensation factor on " +
                 winner->name());
  return state.id;
}

void LotteryScheduler::OnQuantumEnd(ThreadId id, SimDuration used,
                                    SimDuration quantum, SimTime /*now*/) {
  ThreadState& state = StateOf(id);
  if (compensation_.OnQuantumEnd(state.client.get(), used, quantum)) {
    compensation_grants_->Inc();
  }
  LOT_DCHECK_COMPENSATION(*state.client, options_.compensation.max_factor);
}

void LotteryScheduler::SetTrace(etrace::TraceBuffer* trace) {
  options_.trace = trace;
  table_.SetTrace(trace);
}

Currency* LotteryScheduler::thread_currency(ThreadId id) {
  return StateOf(id).currency;
}

Client* LotteryScheduler::client(ThreadId id) {
  return StateOf(id).client.get();
}

Ticket* LotteryScheduler::FundThread(ThreadId id, Currency* denomination,
                                     int64_t amount,
                                     const std::string& principal) {
  ThreadState& state = StateOf(id);
  Ticket* ticket = table_.CreateTicket(denomination, amount, principal);
  table_.Fund(state.currency, ticket);
  LOT_DCHECK_TICKET_CONSERVATION(table_);
  return ticket;
}

Funding LotteryScheduler::ThreadValue(ThreadId id) {
  return StateOf(id).client->Value();
}

Funding LotteryScheduler::ThreadBaseValue(ThreadId id) {
  const auto it = threads_.find(id);
  if (it == threads_.end()) {
    return Funding::Zero();
  }
  const Client& client = *it->second.client;
  Funding value = client.Value();
  if (client.has_compensation()) {
    // Value() carries the compensation boost num/den; divide it back out.
    value = value.ScaleBy(client.compensation_den(), client.compensation_num());
  }
  return value;
}

bool LotteryScheduler::HasThread(ThreadId id) const {
  return threads_.find(id) != threads_.end();
}

bool LotteryScheduler::IsQueued(ThreadId id) const {
  const auto it = threads_.find(id);
  return it != threads_.end() && it->second.in_queue;
}

size_t LotteryScheduler::QueuedCount() const {
  if (options_.backend == RunQueueBackend::kList) {
    return run_queue_.size();
  }
  util::SeqGuard guard(queue_seq_);
  return QueueSize();
}

uint64_t LotteryScheduler::RunnableTickets() {
  if (options_.backend == RunQueueBackend::kList) {
    return run_queue_.Total().raw_unsigned();
  }
  util::SeqGuard guard(queue_seq_);
  SyncTreeWeights();
  return QueueTotal();
}

std::vector<std::pair<ThreadId, uint64_t>> LotteryScheduler::QueuedSnapshot() {
  std::vector<std::pair<ThreadId, uint64_t>> out;
  if (options_.backend == RunQueueBackend::kList) {
    for (Client* client : run_queue_.ClientsInOrder()) {
      const auto it = by_client_.find(client);
      if (it == by_client_.end()) {
        continue;
      }
      out.emplace_back(it->second->id, client->Value().raw_unsigned());
    }
    return out;
  }
  util::SeqGuard guard(queue_seq_);
  SyncTreeWeights();
  out.reserve(QueueSize());
  // Slot order: small dense indices, stable between structural changes.
  for (ThreadState* state : tree_slot_owner_) {
    if (state == nullptr) {
      continue;
    }
    out.emplace_back(state->id, QueueWeight(state->tree_slot));
  }
  return out;
}

}  // namespace lottery
