#include "src/core/lottery_scheduler.h"

#include <chrono>
#include <stdexcept>

#include "src/core/invariants.h"
#include "src/obs/etrace/trace_buffer.h"

namespace lottery {

LotteryScheduler::LotteryScheduler(Options options)
    : options_(options),
      rng_(options.seed),
      table_(options.metrics, options.trace),
      compensation_(options.compensation),
      run_queue_(options.move_to_front),
      metrics_(options.metrics != nullptr ? options.metrics
                                          : &obs::Registry::Default()),
      draws_(metrics_->counter("lottery.draws")),
      zero_fallbacks_(metrics_->counter("lottery.zero_fallbacks")),
      compensation_grants_(metrics_->counter("lottery.compensation_grants")),
      transfers_(metrics_->counter("lottery.transfers")),
      leaf_updates_(metrics_->counter("tree.leaf_updates")),
      full_syncs_(metrics_->counter("tree.full_syncs")),
      draw_cost_(metrics_->histogram("lottery.draw_cost")),
      sync_ns_(metrics_->histogram("lottery.sync_ns")),
      tree_draw_ns_(metrics_->histogram("lottery.tree_draw_ns")) {
  if (options_.backend == RunQueueBackend::kTree) {
    // The list backend needs no scheduler-side tracking: run_queue_ itself
    // observes the table for its cached total.
    table_.AddObserver(this);
  }
}

LotteryScheduler::~LotteryScheduler() {
  table_.RemoveObserver(this);  // no-op under the list backend
}

void LotteryScheduler::OnClientValueDirty(Client* client) {
  dirty_clients_.insert(client);
}

LotteryScheduler::ThreadState& LotteryScheduler::StateOf(ThreadId id) {
  const auto it = threads_.find(id);
  if (it == threads_.end()) {
    throw std::invalid_argument("LotteryScheduler: unknown thread " +
                                std::to_string(id));
  }
  return it->second;
}

void LotteryScheduler::AddThread(ThreadId id, SimTime /*now*/) {
  if (threads_.count(id) > 0) {
    throw std::invalid_argument("LotteryScheduler::AddThread: duplicate id");
  }
  ThreadState state;
  state.id = id;
  const std::string tag = "thread:" + std::to_string(id);
  state.currency = table_.CreateCurrency(tag);
  state.client = std::make_unique<Client>(&table_, tag);
  state.self_ticket =
      table_.CreateTicket(state.currency, options_.thread_ticket_amount);
  state.client->HoldTicket(state.self_ticket);
  ThreadState& stored = threads_.emplace(id, std::move(state)).first->second;
  by_client_[stored.client.get()] = &stored;
  LOT_DCHECK_TABLE(table_);
}

void LotteryScheduler::RemoveThread(ThreadId id, SimTime /*now*/) {
  ThreadState& state = StateOf(id);
  if (state.in_queue) {
    if (options_.backend == RunQueueBackend::kList) {
      run_queue_.Remove(state.client.get());
    } else {
      tree_queue_.Remove(state.tree_slot);
      tree_slot_owner_[state.tree_slot] = nullptr;
    }
  }
  state.client->SetActive(false);
  by_client_.erase(state.client.get());
  table_.DestroyTicket(state.self_ticket);
  Client* dead = state.client.get();
  state.client.reset();
  // After reset: the Client destructor releases any remaining tickets,
  // which re-notifies observers and can re-insert the pointer.
  dirty_clients_.erase(dead);
  // Destroys the thread currency and all tickets funding it. A thread that
  // dies with in-flight transfers (a crashed RPC client whose call is still
  // queued) leaves tickets issued in this currency in others' hands; the
  // currency is then retired — worth zero, reclaimed with its last issued
  // ticket — instead of destroyed outright.
  table_.RetireCurrency(state.currency);
  threads_.erase(id);
  LOT_DCHECK_TABLE(table_);
}

void LotteryScheduler::OnReady(ThreadId id, SimTime /*now*/) {
  ThreadState& state = StateOf(id);
  state.client->SetActive(true);
  if (!state.in_queue) {
    if (options_.backend == RunQueueBackend::kList) {
      run_queue_.Add(state.client.get());
    } else {
      state.tree_slot =
          tree_queue_.Add(state.client->Value().raw_unsigned());
      if (state.tree_slot >= tree_slot_owner_.size()) {
        tree_slot_owner_.resize(state.tree_slot + 1, nullptr);
      }
      tree_slot_owner_[state.tree_slot] = &state;
      // The slot was seeded with the current value; any pending dirty mark
      // (e.g. from the unblock activation above) is already folded in.
      dirty_clients_.erase(state.client.get());
    }
    state.in_queue = true;
  }
  LOT_ASSERT(state.in_queue && state.client->active(),
             "OnReady left thread " + std::to_string(id) + " not competing");
}

void LotteryScheduler::OnBlocked(ThreadId id, SimTime /*now*/) {
  ThreadState& state = StateOf(id);
  if (state.in_queue) {
    if (options_.backend == RunQueueBackend::kList) {
      run_queue_.Remove(state.client.get());
    } else {
      tree_queue_.Remove(state.tree_slot);
      tree_slot_owner_[state.tree_slot] = nullptr;
    }
    state.in_queue = false;
  }
  state.client->SetActive(false);
  LOT_ASSERT(!state.in_queue && !state.client->active(),
             "OnBlocked left thread " + std::to_string(id) + " competing");
}

void LotteryScheduler::SyncTreeWeights() {
  if (dirty_clients_.empty()) {
    return;
  }
  if (dirty_clients_.size() > tree_queue_.size()) {
    // More dirty clients than queued slots: one bulk pass is cheaper than
    // per-client lookups (and covers the first sync after mass arrivals).
    full_syncs_->Inc();
    for (ThreadState* state : tree_slot_owner_) {
      if (state == nullptr) {
        continue;
      }
      tree_queue_.SetWeight(state->tree_slot,
                            state->client->Value().raw_unsigned());
    }
  } else {
    // lotlint: ordered-ok (order-independent fold: one SetWeight per client)
    for (Client* client : dirty_clients_) {
      const auto it = by_client_.find(client);
      if (it == by_client_.end()) {
        continue;
      }
      ThreadState& state = *it->second;
      if (!state.in_queue) {
        continue;  // not competing; OnReady seeds a fresh weight later
      }
      tree_queue_.SetWeight(state.tree_slot, client->Value().raw_unsigned());
      leaf_updates_->Inc();
    }
  }
  dirty_clients_.clear();
}

ThreadId LotteryScheduler::PickNextFromTree() {
  if (tree_queue_.empty()) {
    return kInvalidThreadId;
  }
  ++num_lotteries_;
  draws_->Inc();
  draw_cost_->RecordSampled(tree_queue_.draw_depth());
  // Sample the wall-clock sync/draw split on the histogram cadence; the
  // clock reads would otherwise dominate a tree dispatch.
  const bool timed = obs::kObsEnabled && (timing_tick_++ % 16 == 0);
  std::chrono::steady_clock::time_point t0;  // lotlint: wallclock-ok
  if (timed) {
    t0 = std::chrono::steady_clock::now();  // lotlint: wallclock-ok
  }
  SyncTreeWeights();
#if LOT_INVARIANTS_ENABLED
  // Sampled O(n) sweep: the Fenwick total must equal the sum of the live
  // slots' weights, or incremental SetWeight updates have drifted.
  if (timing_tick_ % 64 == 1) {
    uint64_t weight_sum = 0;
    for (ThreadState* s : tree_slot_owner_) {
      if (s != nullptr) {
        weight_sum += tree_queue_.Weight(s->tree_slot);
      }
    }
    LOT_ASSERT(weight_sum == tree_queue_.total(),
               "tree lottery: partial sums out of sync with slot weights");
  }
#endif
  std::chrono::steady_clock::time_point t1;  // lotlint: wallclock-ok
  if (timed) {
    t1 = std::chrono::steady_clock::now();  // lotlint: wallclock-ok
    sync_ns_->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
            .count()));
  }
  // Candidate snapshot (verbose, opt-in): weights as the draw below sees
  // them, in Fenwick slot order — the prefix order SlotForValue resolves
  // against, so each winner is re-derivable from (snapshot, random value).
  if (etrace::On(options_.trace, etrace::kCatLotterySnapshot)) {
    uint32_t index = 0;
    for (size_t slot = 0; slot < tree_slot_owner_.size(); ++slot) {
      ThreadState* state = tree_slot_owner_[slot];
      if (state == nullptr) {
        continue;
      }
      etrace::Event e;
      e.t_ns = options_.trace->now();
      e.a = state->id;
      e.b = index++;
      e.v1 = tree_queue_.Weight(slot);
      e.type = static_cast<uint16_t>(etrace::EventType::kCandidate);
      options_.trace->Append(e);
    }
  }
  ThreadState* winner = nullptr;
  uint64_t drawn_value = 0;
  const auto drawn = tree_queue_.Draw(rng_, &drawn_value);
  if (drawn.has_value()) {
    winner = tree_slot_owner_[*drawn];
  } else {
    // All ready clients have zero funding; pick arbitrarily so no one
    // starves (uniform over the zero-funded set across draws).
    size_t index = static_cast<size_t>(rng_.NextBelow(
        static_cast<uint32_t>(tree_queue_.size())));
    drawn_value = index;  // decision event: index into live slots
    for (ThreadState* state : tree_slot_owner_) {
      if (state == nullptr) {
        continue;
      }
      if (index-- == 0) {
        winner = state;
        break;
      }
    }
    ++num_zero_fallbacks_;
    zero_fallbacks_->Inc();
  }
  LOT_ASSERT(winner != nullptr, "tree draw returned no winner");
  if (etrace::On(options_.trace, etrace::kCatLottery)) {
    etrace::Event e;
    e.t_ns = options_.trace->now();
    e.a = winner->id;
    e.v1 = drawn_value;
    e.v2 = tree_queue_.total();
    e.v3 = tree_queue_.Weight(winner->tree_slot);
    e.flags = static_cast<uint16_t>(
        etrace::kDecisionTree |
        (drawn.has_value() ? 0 : etrace::kDecisionFallback));
    e.type = static_cast<uint16_t>(etrace::EventType::kDecision);
    options_.trace->Append(e);
  }
  tree_queue_.Remove(winner->tree_slot);
  tree_slot_owner_[winner->tree_slot] = nullptr;
  winner->in_queue = false;
  compensation_.OnQuantumStart(winner->client.get());
  if (timed) {
    const auto t2 = std::chrono::steady_clock::now();  // lotlint: wallclock-ok
    tree_draw_ns_->Record(static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(t2 - t1)
            .count()));
  }
  return winner->id;
}

ThreadId LotteryScheduler::PickNext(SimTime now) {
  // Advance the trace's sim-time cursor: everything recorded from here to
  // the dispatch (decisions, reprices, transfer churn) stamps this instant.
  etrace::SetNow(options_.trace, now.nanos());
  if (options_.backend == RunQueueBackend::kTree) {
    return PickNextFromTree();
  }
  if (run_queue_.empty()) {
    return kInvalidThreadId;
  }
  ++num_lotteries_;
  draws_->Inc();
  // Candidate snapshot (verbose, opt-in) in list order, captured before the
  // draw's move-to-front mutates it: the winner is the first candidate
  // whose running value sum exceeds the drawn random value.
  if (etrace::On(options_.trace, etrace::kCatLotterySnapshot)) {
    uint32_t index = 0;
    for (Client* candidate : run_queue_.raw_order()) {
      if (candidate == nullptr) {
        continue;
      }
      const auto cit = by_client_.find(candidate);
      etrace::Event e;
      e.t_ns = options_.trace->now();
      e.a = cit != by_client_.end() ? cit->second->id : kInvalidThreadId;
      e.b = index++;
      e.v1 = candidate->Value().raw_unsigned();
      e.type = static_cast<uint16_t>(etrace::EventType::kCandidate);
      options_.trace->Append(e);
    }
  }
  const uint64_t scanned_before = run_queue_.total_scanned();
  uint64_t drawn_value = 0;
  Client* winner = run_queue_.Draw(rng_, &drawn_value);
  draw_cost_->RecordSampled(run_queue_.total_scanned() - scanned_before);
  bool fallback = false;
  if (winner == nullptr) {
    // Every ready client currently has zero funding (e.g. all their backing
    // is deactivated). Degrade to round-robin so no one starves: take the
    // front; the requeue path appends, rotating the list.
    winner = run_queue_.Front();
    fallback = true;
    ++num_zero_fallbacks_;
    zero_fallbacks_->Inc();
  }
  // Total/value reads below are cache hits (the draw just refreshed them);
  // capture before Remove() deducts the winner from the cached total.
  if (etrace::On(options_.trace, etrace::kCatLottery)) {
    etrace::Event e;
    e.t_ns = options_.trace->now();
    e.v1 = drawn_value;
    e.v2 = run_queue_.Total().raw_unsigned();
    e.v3 = winner->Value().raw_unsigned();
    e.flags = fallback ? etrace::kDecisionFallback : uint16_t{0};
    e.type = static_cast<uint16_t>(etrace::EventType::kDecision);
    const auto wit = by_client_.find(winner);
    e.a = wit != by_client_.end() ? wit->second->id : kInvalidThreadId;
    options_.trace->Append(e);
  }
  run_queue_.Remove(winner);
  const auto it = by_client_.find(winner);
  if (it == by_client_.end()) {
    throw std::logic_error("LotteryScheduler::PickNext: orphan client");
  }
  ThreadState& state = *it->second;
  state.in_queue = false;
  // The thread starts its next quantum: any compensation ticket expires
  // (Section 4.5). Its tickets stay active while it runs.
  compensation_.OnQuantumStart(winner);
  LOT_ASSERT(!winner->has_compensation(),
             "quantum start left a live compensation factor on " +
                 winner->name());
  return state.id;
}

void LotteryScheduler::OnQuantumEnd(ThreadId id, SimDuration used,
                                    SimDuration quantum, SimTime /*now*/) {
  ThreadState& state = StateOf(id);
  if (compensation_.OnQuantumEnd(state.client.get(), used, quantum)) {
    compensation_grants_->Inc();
  }
  LOT_DCHECK_COMPENSATION(*state.client, options_.compensation.max_factor);
}

void LotteryScheduler::SetTrace(etrace::TraceBuffer* trace) {
  options_.trace = trace;
  table_.SetTrace(trace);
}

Currency* LotteryScheduler::thread_currency(ThreadId id) {
  return StateOf(id).currency;
}

Client* LotteryScheduler::client(ThreadId id) {
  return StateOf(id).client.get();
}

Ticket* LotteryScheduler::FundThread(ThreadId id, Currency* denomination,
                                     int64_t amount,
                                     const std::string& principal) {
  ThreadState& state = StateOf(id);
  Ticket* ticket = table_.CreateTicket(denomination, amount, principal);
  table_.Fund(state.currency, ticket);
  LOT_DCHECK_TICKET_CONSERVATION(table_);
  return ticket;
}

Funding LotteryScheduler::ThreadValue(ThreadId id) {
  return StateOf(id).client->Value();
}

}  // namespace lottery
