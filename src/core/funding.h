// Fixed-point base-unit values for ticket and currency funding.
//
// Currency conversion (Section 4.4 of the paper) multiplies a currency's
// value by the ratio amount/active_amount at every level of the currency
// graph. Doing that in floating point makes lottery totals drift away from
// the sum of the parts; doing it in plain integers loses small shares
// entirely. Funding is a 64-bit fixed-point value (20 fractional bits) with
// exact addition and 128-bit intermediate multiply/divide, so a draw over
// [0, total) always lands inside exactly one client's interval.

#ifndef SRC_CORE_FUNDING_H_
#define SRC_CORE_FUNDING_H_

#include <compare>
#include <cstdint>
#include <string>

namespace lottery {

class Funding {
 public:
  static constexpr int kFractionalBits = 20;
  static constexpr int64_t kOne = int64_t{1} << kFractionalBits;

  constexpr Funding() : raw_(0) {}

  static constexpr Funding FromBase(int64_t base_units) {
    return Funding(base_units << kFractionalBits);
  }
  static constexpr Funding FromRaw(int64_t raw) { return Funding(raw); }
  static constexpr Funding Zero() { return Funding(0); }

  constexpr int64_t raw() const { return raw_; }
  constexpr uint64_t raw_unsigned() const {
    return static_cast<uint64_t>(raw_);
  }
  // Base units, truncated.
  constexpr int64_t base_units() const { return raw_ >> kFractionalBits; }
  // Display/reporting only; never fed back into fixed-point state.
  constexpr double ToBaseF() const {  // lotlint: float-ok
    return static_cast<double>(raw_) / static_cast<double>(kOne);
  }

  constexpr bool IsZero() const { return raw_ == 0; }
  constexpr auto operator<=>(const Funding&) const = default;

  constexpr Funding operator+(Funding o) const {
    return Funding(raw_ + o.raw_);
  }
  constexpr Funding operator-(Funding o) const {
    return Funding(raw_ - o.raw_);
  }
  Funding& operator+=(Funding o) {
    raw_ += o.raw_;
    return *this;
  }
  Funding& operator-=(Funding o) {
    raw_ -= o.raw_;
    return *this;
  }

  // Exact (value * num) / den with 128-bit intermediate, truncating.
  // Used for the per-level share computation and for compensation factors.
  constexpr Funding ScaleBy(int64_t num, int64_t den) const {
    const __int128 wide = static_cast<__int128>(raw_) * num;
    return Funding(static_cast<int64_t>(wide / den));
  }

  std::string ToString() const;

 private:
  explicit constexpr Funding(int64_t raw) : raw_(raw) {}
  int64_t raw_;
};

}  // namespace lottery

#endif  // SRC_CORE_FUNDING_H_
