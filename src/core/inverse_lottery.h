// Inverse lotteries for space-shared resources (Section 6.2).
//
// An inverse lottery chooses a "loser" that must relinquish a unit of a
// resource it holds. With n clients and client i holding t_i of T total
// tickets, the paper specifies loss probability
//
//     p_i = (1 / (n - 1)) * (1 - t_i / T)
//
// so the more tickets a client has, the less likely it is to lose. This is
// implemented with a single uniform draw over the complementary weights
// (T - t_i), whose sum is exactly (n - 1) * T.

// lotlint: file float-ok — loss probabilities are inherently real-valued;
// the draw itself (DrawInverse) is integer-exact over complementary weights.

#ifndef SRC_CORE_INVERSE_LOTTERY_H_
#define SRC_CORE_INVERSE_LOTTERY_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/util/fastrand.h"

namespace lottery {

// Selects the losing index among `weights` (ticket counts). Returns
// std::nullopt if `weights` is empty. With a single client, that client is
// the loser by definition. Clients with zero weight are legal; a client
// holding all tickets can never lose (probability exactly zero) unless it
// is alone.
std::optional<size_t> DrawInverse(const std::vector<uint64_t>& weights,
                                  FastRand& rng);

// Probability that index i loses, per the formula above; exposed so tests
// and the page-replacement experiment can check empirical frequencies.
double InverseLossProbability(const std::vector<uint64_t>& weights, size_t i);

}  // namespace lottery

#endif  // SRC_CORE_INVERSE_LOTTERY_H_
