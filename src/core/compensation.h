// Compensation tickets (Sections 3.4 and 4.5).
//
// A client that consumes only a fraction f of its allotted quantum would,
// without correction, receive less than its entitled share: it enters the
// next lottery with the same value but has used less CPU per win. The paper
// compensates by inflating the client's value by 1/f until it next starts a
// quantum, so its win *rate* rises to keep its consumption rate matched to
// its allocation (the paper's 400-base-unit thread that uses 1/5 of its
// quantum gets a 2000-base-unit compensation value).
//
// Implemented here as a rational multiplier (quantum/used) applied to the
// client's value, with a configurable cap so a thread that runs for a few
// nanoseconds cannot acquire an unbounded multiplier.

#ifndef SRC_CORE_COMPENSATION_H_
#define SRC_CORE_COMPENSATION_H_

#include <cstdint>

#include "src/core/client.h"
#include "src/util/sim_time.h"

namespace lottery {

class CompensationPolicy {
 public:
  struct Options {
    bool enabled = true;
    // Maximum value multiplier a compensation ticket may confer.
    int64_t max_factor = 1000;
  };

  CompensationPolicy() : CompensationPolicy(Options{}) {}
  explicit CompensationPolicy(Options options) : options_(options) {}

  // Called when `client`'s thread ends a quantum having consumed `used` of
  // `quantum`. Grants (or clears) the compensation multiplier; returns true
  // iff a compensation ticket was granted (for the obs counters).
  bool OnQuantumEnd(Client* client, SimDuration used,
                    SimDuration quantum) const;

  // Called when `client`'s thread is dispatched: "until the client starts
  // its next quantum" — the multiplier ends here.
  void OnQuantumStart(Client* client) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace lottery

#endif  // SRC_CORE_COMPENSATION_H_
