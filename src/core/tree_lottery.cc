#include "src/core/tree_lottery.h"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <stdexcept>

namespace lottery {

namespace {

// Both grandchildren pairs of `node` live at nodes_[4*node .. 4*node+3];
// pulling their line while the current level's compare resolves hides most
// of the descent's memory latency.
inline void PrefetchGrandchildren(const uint64_t* nodes, size_t node) {
#if defined(__GNUC__) || defined(__clang__)
  __builtin_prefetch(nodes + 4 * node, /*rw=*/0, /*locality=*/1);
#else
  (void)nodes;
  (void)node;
#endif
}

}  // namespace

TreeLottery::TreeLottery(size_t initial_capacity) {
  Grow(initial_capacity == 0 ? 1 : initial_capacity);
}

void TreeLottery::Grow(size_t min_capacity) {
  size_t capacity = std::bit_ceil(min_capacity);
  if (capacity <= weights_.size() && nodes_ != nullptr) {
    return;
  }
  weights_.resize(capacity, 0);
  levels_ = static_cast<int>(std::countr_zero(capacity));
  // 2*capacity nodes (index 0 unused), plus slack to 64-byte-align nodes_[0]
  // so the seven nodes of the first three levels share one cache line.
  nodes_storage_.assign(2 * capacity + 7, 0);
  auto addr = reinterpret_cast<uintptr_t>(nodes_storage_.data());
  nodes_ = nodes_storage_.data() + ((64 - addr % 64) % 64) / sizeof(uint64_t);
  for (size_t i = 0; i < capacity; ++i) {
    nodes_[capacity + i] = weights_[i];
  }
  for (size_t i = capacity - 1; i >= 1; --i) {
    nodes_[i] = nodes_[2 * i] + nodes_[2 * i + 1];
  }
}

size_t TreeLottery::Add(uint64_t weight) {
  size_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = next_fresh_++;
    if (slot >= weights_.size()) {
      Grow(slot + 1);
    }
  }
  ++live_count_;
  SetWeight(slot, weight);
  return slot;
}

void TreeLottery::Remove(size_t slot) {
  SetWeight(slot, 0);
  free_slots_.push_back(slot);
  --live_count_;
}

void TreeLottery::SetWeight(size_t slot, uint64_t weight) {
  if (slot >= weights_.size()) {
    throw std::out_of_range("TreeLottery::SetWeight: bad slot");
  }
  const uint64_t delta = weight - weights_[slot];  // wraps; additions re-wrap
  if (delta == 0) {
    return;
  }
  for (size_t i = weights_.size() + slot; i >= 1; i >>= 1) {
    nodes_[i] += delta;
  }
  total_ += delta;
  weights_[slot] = weight;
}

uint64_t TreeLottery::Weight(size_t slot) const {
  if (slot >= weights_.size()) {
    throw std::out_of_range("TreeLottery::Weight: bad slot");
  }
  return weights_[slot];
}

std::optional<size_t> TreeLottery::Draw(FastRand& rng,  // lotlint: stream(scheduler)
                                        uint64_t* drawn_value) const {
  if (total_ == 0) {
    return std::nullopt;
  }
  const uint64_t value = rng.NextBelow64(total_);
  if (drawn_value != nullptr) {
    *drawn_value = value;
  }
  return SlotForValue(value);
}

size_t TreeLottery::SlotForValue(uint64_t value) const {
  if (value >= total_) {
    throw std::out_of_range("TreeLottery::SlotForValue: value >= total");
  }
  // Branchless descent: at each level step right iff the left subtree's
  // weight is <= the remaining value, folding the compare into an arithmetic
  // mask so the loop has no data-dependent branch. Fixed trip count: exactly
  // levels_ iterations from root to leaf.
  size_t node = 1;
  uint64_t v = value;
  for (int level = 0; level < levels_; ++level) {
    PrefetchGrandchildren(nodes_, node);
    const uint64_t left = nodes_[2 * node];
    const uint64_t take_right = static_cast<uint64_t>(left <= v);
    v -= left & (0 - take_right);
    node = 2 * node + static_cast<size_t>(take_right);
  }
  return node - weights_.size();  // leaf index -> 0-indexed slot
}

size_t TreeLottery::DrawBatch(FastRand& rng, size_t k,  // lotlint: stream(scheduler)
                              uint64_t* values,
                              size_t* slots) const {
  if (total_ == 0 || k == 0) {
    return 0;
  }
  // Identical RNG consumption to k successive Draw() calls against an
  // unchanged tree: total_ is constant, so the bound of every NextBelow64
  // matches what the unbatched sequence would have used.
  for (size_t i = 0; i < k; ++i) {
    values[i] = rng.NextBelow64(total_);
  }
  ResolveValues(k, values, slots);
  return k;
}

void TreeLottery::ResolveValues(size_t k, const uint64_t* values,
                                size_t* slots) const {
  // Descend in ascending value order so consecutive descents walk adjacent
  // root-to-leaf paths and share upper-level cache lines. The emitted
  // slots[i] still pairs with values[i] (argsort, not a sort of the output).
  constexpr size_t kStack = 32;
  uint32_t stack_order[kStack];
  std::vector<uint32_t> heap_order;
  uint32_t* order = stack_order;
  if (k > kStack) {
    heap_order.resize(k);
    order = heap_order.data();
  }
  for (size_t i = 0; i < k; ++i) {
    order[i] = static_cast<uint32_t>(i);
  }
  std::sort(order, order + k, [values](uint32_t a, uint32_t b) {
    return values[a] < values[b];
  });
  for (size_t i = 0; i < k; ++i) {
    slots[order[i]] = SlotForValue(values[order[i]]);
  }
}

}  // namespace lottery
