#include "src/core/tree_lottery.h"

#include <bit>
#include <stdexcept>

namespace lottery {

TreeLottery::TreeLottery(size_t initial_capacity) {
  Grow(initial_capacity == 0 ? 1 : initial_capacity);
}

void TreeLottery::Grow(size_t min_capacity) {
  size_t capacity = std::bit_ceil(min_capacity);
  if (capacity <= weights_.size()) {
    return;
  }
  // Rebuild: Fenwick trees do not grow in place cheaply; amortized O(1).
  std::vector<uint64_t> old_weights = std::move(weights_);
  weights_.assign(capacity, 0);
  tree_.assign(capacity + 1, 0);
  total_ = 0;
  for (size_t i = 0; i < old_weights.size(); ++i) {
    if (old_weights[i] > 0) {
      weights_[i] = 0;  // re-add below
      AddDelta(i, static_cast<int64_t>(old_weights[i]));
      weights_[i] = old_weights[i];
      total_ += old_weights[i];
    }
  }
}

size_t TreeLottery::Add(uint64_t weight) {
  size_t slot;
  if (!free_slots_.empty()) {
    slot = free_slots_.back();
    free_slots_.pop_back();
  } else {
    slot = next_fresh_++;
    if (slot >= weights_.size()) {
      Grow(slot + 1);
    }
  }
  ++live_count_;
  SetWeight(slot, weight);
  return slot;
}

void TreeLottery::Remove(size_t slot) {
  SetWeight(slot, 0);
  free_slots_.push_back(slot);
  --live_count_;
}

void TreeLottery::SetWeight(size_t slot, uint64_t weight) {
  if (slot >= weights_.size()) {
    throw std::out_of_range("TreeLottery::SetWeight: bad slot");
  }
  const int64_t delta =
      static_cast<int64_t>(weight) - static_cast<int64_t>(weights_[slot]);
  if (delta == 0) {
    return;
  }
  AddDelta(slot, delta);
  total_ = static_cast<uint64_t>(static_cast<int64_t>(total_) + delta);
  weights_[slot] = weight;
}

uint64_t TreeLottery::Weight(size_t slot) const {
  if (slot >= weights_.size()) {
    throw std::out_of_range("TreeLottery::Weight: bad slot");
  }
  return weights_[slot];
}

void TreeLottery::AddDelta(size_t slot, int64_t delta) {
  for (size_t i = slot + 1; i <= weights_.size(); i += i & (~i + 1)) {
    tree_[i] = static_cast<uint64_t>(static_cast<int64_t>(tree_[i]) + delta);
  }
}

std::optional<size_t> TreeLottery::Draw(FastRand& rng,
                                        uint64_t* drawn_value) const {
  if (total_ == 0) {
    return std::nullopt;
  }
  const uint64_t value = rng.NextBelow64(total_);
  if (drawn_value != nullptr) {
    *drawn_value = value;
  }
  return SlotForValue(value);
}

size_t TreeLottery::SlotForValue(uint64_t value) const {
  if (value >= total_) {
    throw std::out_of_range("TreeLottery::SlotForValue: value >= total");
  }
  // Standard Fenwick descend: find smallest index with prefix sum > value.
  size_t pos = 0;
  size_t mask = std::bit_floor(weights_.size());
  while (mask != 0) {
    const size_t next = pos + mask;
    if (next <= weights_.size() && tree_[next] <= value) {
      value -= tree_[next];
      pos = next;
    }
    mask >>= 1;
  }
  return pos;  // 0-indexed slot
}

}  // namespace lottery
