// List-based lottery with the paper's "move to front" heuristic.
//
// This mirrors Section 4.2 and Figure 1 and the prototype's actual run-queue
// implementation: a winning value is drawn uniformly over [0, total funding),
// then the client list is traversed accumulating each client's value in base
// units until the running sum exceeds the winning value. Clients that win
// often migrate to the front, shortening the average traversal.
//
// Storage is an index-mapped vector rather than a linked list: Draw walks a
// contiguous Client* array (cache-friendly), Remove tombstones in O(1) and
// compacts lazily, and move-to-front is std::rotate over the winner's prefix
// — the resulting client order is identical to the paper's list semantics,
// so fixed-seed draw sequences are unchanged.
//
// The total is cached and maintained by CurrencyTable dirty notifications
// (the lottery registers itself as a ValueObserver of its members' table),
// so a draw costs O(scan) instead of O(n + scan).

#ifndef SRC_CORE_LIST_LOTTERY_H_
#define SRC_CORE_LIST_LOTTERY_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/core/client.h"
#include "src/core/currency.h"
#include "src/core/funding.h"
#include "src/util/fastrand.h"

namespace lottery {

class ListLottery final : public ValueObserver {
 public:
  explicit ListLottery(bool move_to_front = true)
      : move_to_front_(move_to_front) {}
  ~ListLottery() override;
  ListLottery(const ListLottery&) = delete;
  ListLottery& operator=(const ListLottery&) = delete;

  // Members must all belong to one CurrencyTable, and that table must
  // outlive this lottery (the lottery observes it for value changes).
  void Add(Client* client);
  void Remove(Client* client);
  bool Contains(const Client* client) const;
  size_t size() const { return members_.size(); }
  bool empty() const { return members_.empty(); }

  // Sum of all member clients' current values. Cached: refreshed lazily
  // from the members the table reported dirty since the last call.
  Funding Total() const;

  // Holds one lottery: picks a winner with probability proportional to its
  // value. Returns nullptr if the list is empty or the total is zero.
  // Does not remove the winner. When `drawn_value` is non-null and a winner
  // is picked, it receives the random value in [0, Total()) that selected
  // the winner (recorded by the etrace decision stream; the RNG sequence is
  // identical whether or not it is requested).
  Client* Draw(FastRand& rng, uint64_t* drawn_value = nullptr);

  // Clients in current list order (front first); exposed for tests and for
  // deterministic zero-funding fallbacks.
  std::vector<Client*> ClientsInOrder() const;
  Client* Front() const;

  // Raw draw order including nullptr tombstones; allocation-free access for
  // trace snapshots. Mutated by Draw (move-to-front) — snapshot before.
  const std::vector<Client*>& raw_order() const { return order_; }

  // Instrumentation: cumulative clients examined by Draw traversals and the
  // number of draws, for reproducing the move-to-front search-length claim.
  uint64_t total_scanned() const { return total_scanned_; }
  uint64_t num_draws() const { return num_draws_; }

  // ValueObserver: a member's value may have changed; fold it into the
  // cached total at the next Total() call.
  void OnClientValueDirty(Client* client) override;

 private:
  struct Entry {
    size_t index;        // position in order_ (order_[index] == client)
    Funding last;        // value last folded into total_
    bool dirty = false;  // queued in dirty_members_
  };

  void Compact();

  bool move_to_front_;
  CurrencyTable* table_ = nullptr;  // set on first Add
  std::vector<Client*> order_;      // draw order; nullptr = tombstone
  size_t tombstones_ = 0;
  // Value-cache state is logically const: Total() refreshes it on demand.
  mutable std::unordered_map<Client*, Entry> members_;
  mutable std::vector<Client*> dirty_members_;
  mutable Funding total_{};
  uint64_t total_scanned_ = 0;
  uint64_t num_draws_ = 0;
};

}  // namespace lottery

#endif  // SRC_CORE_LIST_LOTTERY_H_
