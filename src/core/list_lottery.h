// List-based lottery with the paper's "move to front" heuristic.
//
// This mirrors Section 4.2 and Figure 1 and the prototype's actual run-queue
// implementation: a winning value is drawn uniformly over [0, total funding),
// then the client list is traversed accumulating each client's value in base
// units until the running sum exceeds the winning value. Clients that win
// often migrate to the front, shortening the average traversal.

#ifndef SRC_CORE_LIST_LOTTERY_H_
#define SRC_CORE_LIST_LOTTERY_H_

#include <cstdint>
#include <list>
#include <vector>

#include "src/core/client.h"
#include "src/core/funding.h"
#include "src/util/fastrand.h"

namespace lottery {

class ListLottery {
 public:
  explicit ListLottery(bool move_to_front = true)
      : move_to_front_(move_to_front) {}

  void Add(Client* client);
  void Remove(Client* client);
  bool Contains(const Client* client) const;
  size_t size() const { return clients_.size(); }
  bool empty() const { return clients_.empty(); }

  // Sum of all member clients' current values.
  Funding Total() const;

  // Holds one lottery: picks a winner with probability proportional to its
  // value. Returns nullptr if the list is empty or the total is zero.
  // Does not remove the winner.
  Client* Draw(FastRand& rng);

  // Clients in current list order (front first); exposed for tests and for
  // deterministic zero-funding fallbacks.
  std::vector<Client*> ClientsInOrder() const;
  Client* Front() const { return clients_.empty() ? nullptr : clients_.front(); }

  // Instrumentation: cumulative clients examined by Draw traversals and the
  // number of draws, for reproducing the move-to-front search-length claim.
  uint64_t total_scanned() const { return total_scanned_; }
  uint64_t num_draws() const { return num_draws_; }

 private:
  bool move_to_front_;
  std::list<Client*> clients_;
  uint64_t total_scanned_ = 0;
  uint64_t num_draws_ = 0;
};

}  // namespace lottery

#endif  // SRC_CORE_LIST_LOTTERY_H_
