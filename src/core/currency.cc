#include "src/core/currency.h"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <unordered_set>

#include "src/core/client.h"
#include "src/core/invariants.h"
#include "src/obs/etrace/trace_buffer.h"
#include "src/obs/registry.h"

namespace lottery {

namespace {

// Removes one occurrence of `value` from `vec` (order not preserved).
void EraseOne(std::vector<Ticket*>& vec, Ticket* value) {
  const auto it = std::find(vec.begin(), vec.end(), value);
  if (it != vec.end()) {
    *it = vec.back();
    vec.pop_back();
  }
}

// Currency-category trace event; name ids are interned at currency creation
// so this never touches the intern map.
void TraceCurrency(etrace::TraceBuffer* trace, etrace::EventType type,
                   uint32_t name_id, uint64_t v1 = 0, uint64_t v2 = 0,
                   uint32_t a = 0) {
  if (etrace::On(trace, etrace::kCatCurrency)) {
    etrace::Event e;
    e.t_ns = trace->now();
    e.v1 = v1;
    e.v2 = v2;
    e.a = a;
    e.name = name_id;
    e.type = static_cast<uint16_t>(type);
    trace->Append(e);
  }
}

}  // namespace

bool Currency::MayInflate(const std::string& principal) const {
  if (owner_.empty()) {
    return true;
  }
  return principal == owner_ || inflators_.count(principal) > 0;
}

void Currency::AllowInflator(const std::string& principal) {
  inflators_.insert(principal);
}

CurrencyTable::CurrencyTable(obs::Registry* metrics,
                             etrace::TraceBuffer* trace)
    : trace_(trace),
      metrics_(metrics != nullptr ? metrics : &obs::Registry::Default()),
      currency_dirty_marks_(metrics_->counter("currency.dirty_marks")),
      currency_reprices_(metrics_->counter("currency.reprices")),
      client_dirty_marks_(metrics_->counter("client.dirty_marks")),
      client_reprices_(metrics_->counter("client.reprices")) {
  base_ = currency_pool_.New("base", /*is_base=*/true, std::string());
  LinkCurrency(base_);
  if (trace_ != nullptr) {
    base_->trace_name_ = trace_->Intern(base_->name());
  }
  TraceCurrency(trace_, etrace::EventType::kCurrencyCreate,
                base_->trace_name_);
}

CurrencyTable::~CurrencyTable() {
  // Pool storage outlives the objects; run the destructors explicitly.
  for (Ticket* t = tickets_head_; t != nullptr;) {
    Ticket* next = t->list_next_;
    ticket_pool_.Delete(t);
    t = next;
  }
  for (Currency* c = currencies_head_; c != nullptr;) {
    Currency* next = c->list_next_;
    currency_pool_.Delete(c);
    c = next;
  }
}

void CurrencyTable::LinkCurrency(Currency* currency) {
  currency->list_prev_ = currencies_tail_;
  currency->list_next_ = nullptr;
  (currencies_tail_ != nullptr ? currencies_tail_->list_next_
                               : currencies_head_) = currency;
  currencies_tail_ = currency;
  ++num_currencies_;
  currency_by_name_.emplace(currency->name(), currency);
}

void CurrencyTable::UnlinkCurrency(Currency* currency) {
  (currency->list_prev_ != nullptr ? currency->list_prev_->list_next_
                                   : currencies_head_) = currency->list_next_;
  (currency->list_next_ != nullptr ? currency->list_next_->list_prev_
                                   : currencies_tail_) = currency->list_prev_;
  --num_currencies_;
  currency_by_name_.erase(currency->name());
}

void CurrencyTable::LinkTicket(Ticket* ticket) {
  ticket->list_prev_ = tickets_tail_;
  ticket->list_next_ = nullptr;
  (tickets_tail_ != nullptr ? tickets_tail_->list_next_ : tickets_head_) =
      ticket;
  tickets_tail_ = ticket;
  ++num_tickets_;
}

void CurrencyTable::UnlinkTicket(Ticket* ticket) {
  (ticket->list_prev_ != nullptr ? ticket->list_prev_->list_next_
                                 : tickets_head_) = ticket->list_next_;
  (ticket->list_next_ != nullptr ? ticket->list_next_->list_prev_
                                 : tickets_tail_) = ticket->list_prev_;
  --num_tickets_;
}

void CurrencyTable::SetTrace(etrace::TraceBuffer* trace) {
  trace_ = trace;
  if (trace_ == nullptr) {
    return;
  }
  for (Currency* c = currencies_head_; c != nullptr; c = c->list_next_) {
    c->trace_name_ = trace_->Intern(c->name());
  }
}

void CurrencyTable::AddObserver(ValueObserver* observer) {
  if (std::find(observers_.begin(), observers_.end(), observer) !=
      observers_.end()) {
    throw std::invalid_argument("AddObserver: observer already registered");
  }
  observers_.push_back(observer);
}

void CurrencyTable::RemoveObserver(ValueObserver* observer) {
  const auto it = std::find(observers_.begin(), observers_.end(), observer);
  if (it != observers_.end()) {
    observers_.erase(it);
  }
}

void CurrencyTable::MarkCurrencyDirty(Currency* currency) {
  // The base currency is the unit of account; it has no cached value, and
  // base-denominated tickets are worth their face value no matter what
  // happens to the base's active amount, so nothing downstream can change.
  if (currency->is_base() || currency->value_dirty_) {
    return;
  }
  currency->value_dirty_ = true;
  currency_dirty_marks_->Inc();
  PropagateDenominationChange(currency);
}

void CurrencyTable::PropagateDenominationChange(Currency* denom) {
  if (denom->is_base()) {
    return;  // base tickets are face value: active-amount changes are inert
  }
  for (Ticket* t : denom->issued_) {
    if (t->funds_ != nullptr) {
      MarkCurrencyDirty(t->funds_);
    } else if (t->holder_ != nullptr) {
      MarkClientDirty(t->holder_);
    }
  }
}

void CurrencyTable::MarkTicketDirty(Ticket* ticket) {
  if (ticket->funds_ != nullptr) {
    MarkCurrencyDirty(ticket->funds_);
  } else if (ticket->holder_ != nullptr) {
    MarkClientDirty(ticket->holder_);
  }
}

void CurrencyTable::MarkClientDirty(Client* client) {
  if (client->cache_valid_) {
    client->cache_valid_ = false;
    client_dirty_marks_->Inc();
  }
  // Notify unconditionally: observers may have refreshed their copy of the
  // client's value (rearming nothing on the client itself), so the dirty
  // flag alone cannot gate notifications.
  for (ValueObserver* observer : observers_) {
    observer->OnClientValueDirty(client);
  }
}

void CurrencyTable::NoteClientReprice() const {
  client_reprices_->Inc();
}

Currency* CurrencyTable::CreateCurrency(const std::string& name,
                                        const std::string& owner) {
  if (FindCurrency(name) != nullptr) {
    throw std::invalid_argument("CreateCurrency: duplicate name " + name);
  }
  Currency* currency = currency_pool_.New(name, /*is_base=*/false, owner);
  LinkCurrency(currency);
  if (trace_ != nullptr) {
    currency->trace_name_ = trace_->Intern(currency->name());
  }
  TraceCurrency(trace_, etrace::EventType::kCurrencyCreate,
                currency->trace_name_);
  BumpEpoch();
  LOT_DCHECK_TABLE(*this);
  return currency;
}

Currency* CurrencyTable::FindCurrency(const std::string& name) const {
  const auto it = currency_by_name_.find(name);
  return it != currency_by_name_.end() ? it->second : nullptr;
}

void CurrencyTable::DestroyCurrency(Currency* currency) {
  if (currency == base_) {
    throw std::invalid_argument("DestroyCurrency: cannot destroy base");
  }
  if (!currency->issued_.empty()) {
    throw std::logic_error("DestroyCurrency: currency " + currency->name() +
                           " still has issued tickets");
  }
  // Backing tickets exist solely to fund this currency; retire them.
  while (!currency->backing_.empty()) {
    DestroyTicket(currency->backing_.back());
  }
  if (FindCurrency(currency->name()) != currency) {
    throw std::logic_error("DestroyCurrency: unknown currency");
  }
  TraceCurrency(trace_, etrace::EventType::kCurrencyDestroy,
                currency->trace_name_);
  UnlinkCurrency(currency);
  currency_pool_.Delete(currency);
  BumpEpoch();
  LOT_DCHECK_TABLE(*this);
}

void CurrencyTable::RetireCurrency(Currency* currency) {
  if (currency == base_) {
    throw std::invalid_argument("RetireCurrency: cannot retire base");
  }
  if (currency->issued_.empty()) {
    DestroyCurrency(currency);
    return;
  }
  // The owner is gone: withdraw its funding now. The surviving issued
  // tickets (in-flight transfers) stay structurally valid but are worth
  // zero — exactly the paper's semantics for a backrupt currency — and the
  // last of them to be destroyed reclaims the currency itself.
  while (!currency->backing_.empty()) {
    DestroyTicket(currency->backing_.back());
  }
  currency->retired_ = true;
  TraceCurrency(trace_, etrace::EventType::kCurrencyRetire,
                currency->trace_name_);
  BumpEpoch();
  LOT_DCHECK_TABLE(*this);
}

Ticket* CurrencyTable::CreateTicket(Currency* denomination, int64_t amount,
                                    const std::string& principal) {
  if (amount <= 0) {
    throw std::invalid_argument("CreateTicket: amount must be positive");
  }
  if (denomination->retired_) {
    throw std::logic_error("CreateTicket: denomination " +
                           denomination->name() + " is retired");
  }
  const bool is_superuser = !superuser_.empty() && principal == superuser_;
  if (!is_superuser && !denomination->MayInflate(principal)) {
    throw std::invalid_argument("CreateTicket: principal '" + principal +
                                "' may not issue tickets in " +
                                denomination->name());
  }
  Ticket* ticket = ticket_pool_.New(next_ticket_id_++, denomination, amount);
  LinkTicket(ticket);
  denomination->issued_.push_back(ticket);
  denomination->issued_amount_ += amount;
  BumpEpoch();
  LOT_DCHECK_TABLE(*this);
  return ticket;
}

void CurrencyTable::DestroyTicket(Ticket* ticket) {
  if (ticket->holder_ != nullptr) {
    ticket->holder_->ReleaseTicket(ticket);
  }
  if (ticket->funds_ != nullptr) {
    Unfund(ticket);
  }
  if (ticket->active_) {
    // Unattached tickets are never active; Unfund/ReleaseTicket deactivate.
    throw std::logic_error("DestroyTicket: detached ticket still active");
  }
  Currency* denom = ticket->denomination_;
  EraseOne(denom->issued_, ticket);
  denom->issued_amount_ -= ticket->amount_;
  UnlinkTicket(ticket);
  ticket_pool_.Delete(ticket);
  if (denom->retired_ && denom->issued_.empty()) {
    // Last issued ticket of a retired currency: reclaim it (backing is
    // already empty, so this is a plain erase).
    DestroyCurrency(denom);
  }
  BumpEpoch();
  LOT_DCHECK_TABLE(*this);
}

void CurrencyTable::SetAmount(Ticket* ticket, int64_t amount) {
  if (amount <= 0) {
    throw std::invalid_argument("SetAmount: amount must be positive");
  }
  if (amount == ticket->amount_) {
    return;
  }
  const int64_t delta = amount - ticket->amount_;
  ticket->denomination_->issued_amount_ += delta;
  ticket->amount_ = amount;
  if (ticket->active_) {
    // Amounts are strictly positive, so this cannot cross zero and no
    // activation cascade is needed — only the sum changes. AddActiveAmount
    // still propagates the denomination change (every sibling ticket's
    // share shifts); the ticket's own target must be marked explicitly
    // because propagation skips the base currency.
    AddActiveAmount(ticket->denomination_, delta);
    MarkTicketDirty(ticket);
  }
  BumpEpoch();
  LOT_DCHECK_TABLE(*this);
}

void CurrencyTable::Fund(Currency* target, Ticket* ticket) {
  if (ticket->funds_ != nullptr || ticket->holder_ != nullptr) {
    throw std::invalid_argument("Fund: ticket already attached");
  }
  if (target->is_base()) {
    throw std::invalid_argument("Fund: the base currency cannot be funded");
  }
  if (target->retired_) {
    throw std::logic_error("Fund: currency " + target->name() +
                           " is retired");
  }
  // Adding edge target -> denomination(ticket); reject if the denomination
  // already (transitively) depends on target.
  if (Reaches(ticket->denomination_, target)) {
    throw std::invalid_argument("Fund: would create a currency cycle (" +
                                target->name() + " <- " +
                                ticket->denomination_->name() + ")");
  }
  ticket->funds_ = target;
  target->backing_.push_back(ticket);
  // A backing ticket is active iff the funded currency is active.
  if (target->active_amount_ > 0) {
    ActivateTicket(ticket);
  }
  MarkCurrencyDirty(target);
  TraceCurrency(trace_, etrace::EventType::kFund, target->trace_name_,
                static_cast<uint64_t>(ticket->amount_), 0,
                static_cast<uint32_t>(ticket->id_));
  BumpEpoch();
  LOT_DCHECK_TABLE(*this);
}

void CurrencyTable::Unfund(Ticket* ticket) {
  Currency* target = ticket->funds_;
  if (target == nullptr) {
    throw std::invalid_argument("Unfund: ticket does not back a currency");
  }
  if (ticket->active_) {
    DeactivateTicket(ticket);
  }
  EraseOne(target->backing_, ticket);
  ticket->funds_ = nullptr;
  MarkCurrencyDirty(target);
  TraceCurrency(trace_, etrace::EventType::kUnfund, target->trace_name_,
                static_cast<uint64_t>(ticket->amount_), 0,
                static_cast<uint32_t>(ticket->id_));
  BumpEpoch();
  LOT_DCHECK_TABLE(*this);
}

Funding CurrencyTable::CurrencyValue(const Currency* currency) const {
  if (currency->is_base()) {
    // The base currency is the unit of account; per-ticket values are
    // defined directly by TicketValue.
    return Funding::Zero();
  }
  if (!currency->value_dirty_) {
    return currency->cached_value_;
  }
  const Funding value = CurrencyValueUncached(currency);
  currency->cached_value_ = value;
  currency->value_dirty_ = false;
  currency_reprices_->Inc();
  TraceCurrency(trace_, etrace::EventType::kReprice, currency->trace_name_,
                value.raw_unsigned(),
                static_cast<uint64_t>(currency->active_amount_));
  return value;
}

Funding CurrencyTable::CurrencyValueUncached(const Currency* currency) const {
  Funding sum = Funding::Zero();
  for (const Ticket* t : currency->backing_) {
    sum += TicketValue(t);
  }
  return sum;
}

Funding CurrencyTable::TicketValue(const Ticket* ticket) const {
  if (!ticket->active_) {
    return Funding::Zero();
  }
  const Currency* denom = ticket->denomination_;
  if (denom->is_base()) {
    return Funding::FromBase(ticket->amount_);
  }
  if (denom->active_amount_ <= 0) {
    return Funding::Zero();
  }
  return CurrencyValue(denom).ScaleBy(ticket->amount_, denom->active_amount_);
}

Funding CurrencyTable::PotentialTicketValue(const Ticket* ticket) const {
  const Currency* denom = ticket->denomination_;
  if (denom->is_base()) {
    return Funding::FromBase(ticket->amount_);
  }
  // Share the ticket would take if it were active alongside the currently
  // active amount.
  const int64_t active = denom->active_amount_ +
                         (ticket->active_ ? 0 : ticket->amount_);
  if (active <= 0) {
    return Funding::Zero();
  }
  return CurrencyValue(denom).ScaleBy(ticket->amount_, active);
}

// lotlint: float-ok (introspection only; result never feeds ticket state)
double CurrencyTable::ExchangeRate(const Currency* currency) const {
  if (currency->is_base()) {
    return 1.0;
  }
  if (currency->active_amount() <= 0) {
    return 0.0;
  }
  return CurrencyValue(currency).ToBaseF() /  // lotlint: float-ok
         static_cast<double>(currency->active_amount());
}

void CurrencyTable::ActivateTicket(Ticket* ticket) {
  if (ticket->active_) {
    return;
  }
  ticket->active_ = true;
  AddActiveAmount(ticket->denomination_, ticket->amount_);
  // Propagation skips the base currency, so the ticket's own target needs
  // an explicit mark (a base ticket flipping active changes its value from
  // zero to face value even though the base itself never reprices).
  MarkTicketDirty(ticket);
  BumpEpoch();
}

void CurrencyTable::DeactivateTicket(Ticket* ticket) {
  if (!ticket->active_) {
    return;
  }
  ticket->active_ = false;
  AddActiveAmount(ticket->denomination_, -ticket->amount_);
  MarkTicketDirty(ticket);
  BumpEpoch();
}

void CurrencyTable::AddActiveAmount(Currency* currency, int64_t delta) {
  const bool was_active = currency->active_amount_ > 0;
  currency->active_amount_ += delta;
  if (currency->active_amount_ < 0) {
    throw std::logic_error("AddActiveAmount: negative active amount in " +
                           currency->name());
  }
  const bool now_active = currency->active_amount_ > 0;
  if (was_active != now_active && !currency->is_base()) {
    // Section 4.4: "if a ticket activation changes a currency's active
    // amount from zero, the activation propagates to each of its backing
    // tickets", and symmetrically for deactivation.
    for (Ticket* b : currency->backing_) {
      if (now_active) {
        ActivateTicket(b);
      } else {
        DeactivateTicket(b);
      }
    }
  }
  // The denominator of every ticket issued in this currency changed, so
  // everything those tickets feed must reprice. (No-op for the base: base
  // tickets are worth face value independent of the base's active amount.)
  PropagateDenominationChange(currency);
}

bool CurrencyTable::Reaches(const Currency* from, const Currency* to) const {
  if (from == to) {
    return true;
  }
  // Iterative DFS with a visited set: diamond-shaped graphs have
  // exponentially many paths but only linearly many nodes.
  std::unordered_set<const Currency*> visited;
  std::vector<const Currency*> stack{from};
  visited.insert(from);
  while (!stack.empty()) {
    const Currency* cur = stack.back();
    stack.pop_back();
    for (const Ticket* t : cur->backing_) {
      const Currency* next = t->denomination_;
      if (next == to) {
        return true;
      }
      if (visited.insert(next).second) {
        stack.push_back(next);
      }
    }
  }
  return false;
}

Ticket* CurrencyTable::FindTicket(uint64_t id) const {
  for (Ticket* t = tickets_head_; t != nullptr; t = t->list_next_) {
    if (t->id() == id) {
      return t;
    }
  }
  return nullptr;
}

std::vector<Currency*> CurrencyTable::Currencies() const {
  std::vector<Currency*> out;
  out.reserve(num_currencies_);
  for (Currency* c = currencies_head_; c != nullptr; c = c->list_next_) {
    out.push_back(c);
  }
  return out;
}

std::vector<Ticket*> CurrencyTable::Tickets() const {
  std::vector<Ticket*> out;
  out.reserve(num_tickets_);
  for (Ticket* t = tickets_head_; t != nullptr; t = t->list_next_) {
    out.push_back(t);
  }
  return out;
}

std::string CurrencyTable::DebugString() const {
  std::ostringstream out;
  for (const Currency* c = currencies_head_; c != nullptr;
       c = c->list_next_) {
    out << c->name() << ": value=" << CurrencyValue(c).ToBaseF()
        << " active=" << c->active_amount() << "/" << c->issued_amount()
        << " backing=[";
    for (size_t i = 0; i < c->backing().size(); ++i) {
      const Ticket* t = c->backing()[i];
      out << (i == 0 ? "" : ", ") << t->amount() << "."
          << t->denomination()->name() << (t->active() ? "" : " (inactive)");
    }
    out << "]\n";
  }
  return out.str();
}

std::string CurrencyTable::ToDot() const {
  std::ostringstream out;
  out << "digraph currencies {\n  rankdir=BT;\n";
  for (const Currency* c = currencies_head_; c != nullptr;
       c = c->list_next_) {
    out << "  \"" << c->name() << "\" [shape=box,label=\"" << c->name();
    if (!c->is_base()) {
      out << "\\nvalue=" << CurrencyValue(c).ToBaseF();
    }
    out << "\\nactive " << c->active_amount() << "/" << c->issued_amount()
        << "\"];\n";
  }
  for (const Ticket* t = tickets_head_; t != nullptr; t = t->list_next_) {
    // Edge from the entity the ticket funds toward its denomination (the
    // direction value flows from).
    std::string from;
    if (t->funds() != nullptr) {
      from = t->funds()->name();
    } else if (t->holder() != nullptr) {
      from = t->holder()->name();
      out << "  \"" << from << "\" [shape=ellipse];\n";
    } else {
      continue;  // unattached tickets have no edge
    }
    out << "  \"" << from << "\" -> \"" << t->denomination()->name()
        << "\" [label=\"" << t->amount() << "\""
        << (t->active() ? "" : ",style=dashed") << "];\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace lottery
