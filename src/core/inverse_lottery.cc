// lotlint: file float-ok — loss probabilities are inherently real-valued;
// the draw itself (DrawInverse) is integer-exact over complementary weights.

#include "src/core/inverse_lottery.h"

#include <numeric>
#include <stdexcept>

namespace lottery {

std::optional<size_t> DrawInverse(const std::vector<uint64_t>& weights,
                                  FastRand& rng) {  // lotlint: stream(scheduler)
  const size_t n = weights.size();
  if (n == 0) {
    return std::nullopt;
  }
  if (n == 1) {
    return 0;
  }
  const uint64_t total =
      std::accumulate(weights.begin(), weights.end(), uint64_t{0});
  if (total == 0) {
    // Degenerate: no tickets anywhere; choose uniformly.
    return static_cast<size_t>(rng.NextBelow(static_cast<uint32_t>(n)));
  }
  // Complementary weights sum to (n - 1) * total.
  const uint64_t comp_total = (static_cast<uint64_t>(n) - 1) * total;
  uint64_t value = rng.NextBelow64(comp_total);
  for (size_t i = 0; i < n; ++i) {
    const uint64_t comp = total - weights[i];
    if (value < comp) {
      return i;
    }
    value -= comp;
  }
  throw std::logic_error("DrawInverse: ran past complementary weights");
}

double InverseLossProbability(const std::vector<uint64_t>& weights, size_t i) {
  const size_t n = weights.size();
  if (i >= n) {
    throw std::out_of_range("InverseLossProbability: bad index");
  }
  if (n == 1) {
    return 1.0;
  }
  const uint64_t total =
      std::accumulate(weights.begin(), weights.end(), uint64_t{0});
  if (total == 0) {
    return 1.0 / static_cast<double>(n);
  }
  const double share =
      static_cast<double>(weights[i]) / static_cast<double>(total);
  return (1.0 - share) / (static_cast<double>(n) - 1.0);
}

}  // namespace lottery
