// Client: a schedulable competitor in lotteries.
//
// A client (a thread, in the CPU case) holds tickets and competes for a
// resource with value equal to the sum of its held tickets' base-unit values
// (Section 4.4), optionally inflated by a compensation factor (Section 4.5).
// Activating a client (it joins the run queue or is dispatched) activates
// its held tickets, which cascades through the currency graph; deactivation
// (it blocks) is symmetric — this is what makes ticket transfers and
// mutex/RPC funding work without special cases.

#ifndef SRC_CORE_CLIENT_H_
#define SRC_CORE_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/core/currency.h"
#include "src/core/funding.h"
#include "src/core/ticket.h"

namespace lottery {

class Client {
 public:
  Client(CurrencyTable* table, std::string name);
  // Detaches (but does not destroy) any still-held tickets.
  ~Client();
  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  const std::string& name() const { return name_; }
  CurrencyTable* table() const { return table_; }

  // --- Ticket holding -----------------------------------------------------

  // Takes possession of an unattached ticket. If the client is active the
  // ticket is activated immediately.
  void HoldTicket(Ticket* ticket);
  // Detaches a held ticket; it becomes unattached (and inactive).
  void ReleaseTicket(Ticket* ticket);
  const std::vector<Ticket*>& tickets() const { return tickets_; }

  // --- Activation ---------------------------------------------------------

  // Active means competing: held tickets count toward currency active
  // amounts and this client's value is nonzero.
  void SetActive(bool active);
  bool active() const { return active_; }

  // --- Compensation (Section 4.5) ------------------------------------------

  // Multiplies this client's value by num/den until cleared. The scheduler
  // sets num/den = quantum/used when a quantum is under-consumed, and clears
  // it when the client next starts a quantum.
  void SetCompensation(int64_t num, int64_t den);
  void ClearCompensation();
  bool has_compensation() const { return comp_num_ != comp_den_; }
  // Reporting only; value arithmetic uses the exact num/den terms.
  double compensation_factor() const {  // lotlint: float-ok
    return static_cast<double>(comp_num_) / static_cast<double>(comp_den_);
  }
  // Exact factor terms, for ground-truth value recomputation in tests.
  int64_t compensation_num() const { return comp_num_; }
  int64_t compensation_den() const { return comp_den_; }

  // --- Value ----------------------------------------------------------------

  // Current value in base units: sum of held (active) ticket values times
  // the compensation factor. Zero while inactive. Cached; invalidated by
  // the table's dirty propagation and by local mutations.
  Funding Value() const;

 private:
  friend class CurrencyTable;  // flips cache_valid_ from MarkClientDirty

  // Routes a local mutation through the table so registered ValueObservers
  // hear about it too.
  void Invalidate();

  CurrencyTable* table_;
  std::string name_;
  std::vector<Ticket*> tickets_;
  bool active_ = false;
  int64_t comp_num_ = 1;
  int64_t comp_den_ = 1;

  mutable Funding cached_value_{};
  mutable bool cache_valid_ = false;
};

}  // namespace lottery

#endif  // SRC_CORE_CLIENT_H_
