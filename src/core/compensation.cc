#include "src/core/compensation.h"

#include "src/util/invariant.h"

namespace lottery {

bool CompensationPolicy::OnQuantumEnd(Client* client, SimDuration used,
                                      SimDuration quantum) const {
  if (!options_.enabled) {
    return false;
  }
  if (used >= quantum) {
    // Full quantum consumed: entitled share already delivered.
    client->ClearCompensation();
    return false;
  }
  int64_t used_ns = used.nanos();
  const int64_t quantum_ns = quantum.nanos();
  if (used_ns <= 0) {
    // Zero-length run (e.g. immediate block): treat as the cap.
    used_ns = 1;
  }
  int64_t num = quantum_ns;
  int64_t den = used_ns;
  if (num > den * options_.max_factor) {
    num = options_.max_factor;
    den = 1;
  }
  // Section 4.5's bound: the multiplier is q/f, at least 1 (the quantum was
  // under-consumed) and never beyond the configured cap.
  LOT_ASSERT(num >= den && num <= den * options_.max_factor,
             "compensation grant outside [1, max_factor] for " +
                 client->name());
  client->SetCompensation(num, den);
  return true;
}

void CompensationPolicy::OnQuantumStart(Client* client) const {
  client->ClearCompensation();
}

}  // namespace lottery
