// Ticket transfers (Sections 3.1 and 4.6).
//
// When a client blocks on a dependency (an RPC, a lock), it temporarily
// transfers its resource rights to the party it is waiting on. The paper's
// implementation: "a transfer is implemented by creating a new ticket
// denominated in the client's currency, and using it to fund the server's
// currency"; on reply the ticket is destroyed.
//
// TicketTransfer is the RAII form of that protocol. The transfer ticket is
// issued in the source currency, so when the blocked client's own tickets
// deactivate, the transfer ticket becomes the only active claim on the
// source currency and therefore carries the client's *entire* funding —
// the deactivation semantics of Section 4.4 do all the work. A transfer may
// start unfunded (no server thread waiting yet) and be attached later, and
// may be retargeted (a worker thread dequeues the message).

#ifndef SRC_CORE_TRANSFER_H_
#define SRC_CORE_TRANSFER_H_

#include <cstdint>

#include "src/core/currency.h"

namespace lottery {

class TicketTransfer {
 public:
  // Issues a transfer ticket of `amount` in `source`. If `target` is null
  // the ticket is parked (inactive) until FundTarget is called.
  TicketTransfer(CurrencyTable* table, Currency* source, Currency* target,
                 int64_t amount);
  // Destroys the transfer ticket (the reply path).
  ~TicketTransfer();

  TicketTransfer(TicketTransfer&& other) noexcept;
  TicketTransfer& operator=(TicketTransfer&& other) noexcept;
  TicketTransfer(const TicketTransfer&) = delete;
  TicketTransfer& operator=(const TicketTransfer&) = delete;

  // Funds `target` with the transfer ticket (server picked up the message).
  void FundTarget(Currency* target);
  // Moves the funding to a different currency (message handed to a worker).
  void Retarget(Currency* new_target);
  // Explicitly ends the transfer before destruction.
  void Release();

  Ticket* ticket() const { return ticket_; }
  Currency* target() const;
  bool funded() const;

 private:
  CurrencyTable* table_;
  Ticket* ticket_;
};

}  // namespace lottery

#endif  // SRC_CORE_TRANSFER_H_
