#include "src/core/alias_lottery.h"

#include <algorithm>

namespace lottery {

AliasLottery::AliasLottery() : AliasLottery(Options()) {}

AliasLottery::AliasLottery(Options options, size_t initial_capacity)
    : options_(options), tree_(initial_capacity) {}

size_t AliasLottery::Add(uint64_t weight) {
  const size_t slot = tree_.Add(weight);
  if (cycle_open_ && slot == cycle_slot_ && weight == cycle_weight_) {
    cycle_open_ = false;  // balanced dispatch cycle: weight set unchanged
  } else {
    Invalidate();
  }
  return slot;
}

void AliasLottery::Remove(size_t slot) {
  if (cycle_open_) {
    Invalidate();  // second removal before the restore: real churn
  } else {
    cycle_open_ = true;
    cycle_slot_ = slot;
    cycle_weight_ = tree_.Weight(slot);
  }
  tree_.Remove(slot);
}

void AliasLottery::SetWeight(size_t slot, uint64_t weight) {
  if (tree_.Weight(slot) == weight) {
    return;  // no-op writes (repriced to the same value) keep the table
  }
  Invalidate();
  tree_.SetWeight(slot, weight);
}

uint64_t AliasLottery::RebuildThreshold() const {
  const uint64_t scaled = tree_.size() / options_.rebuild_cost_divisor;
  return std::max(options_.min_stable_draws, scaled);
}

bool AliasLottery::Rebuild() {
  const uint64_t total = tree_.total();
  // Count positive-weight entries; zero-weight slots must never win
  // (TreeLottery guarantees the same), so they get no column.
  const size_t capacity = tree_.capacity();
  size_t n = 0;
  for (size_t slot = 0; slot < capacity; ++slot) {
    n += static_cast<size_t>(tree_.Weight(slot) > 0);
  }
  if (n == 0) {
    return false;
  }
  // The draw below is NextBelow64(n * total); its range tops out at
  // (2^31-2)^2. Overflow or out-of-range scaled totals keep the tree
  // serving — correctness never depends on the table existing.
  constexpr uint64_t kDrawRange =
      static_cast<uint64_t>(FastRand::kModulus - 1u) *
      (FastRand::kModulus - 1u);
  if (total > kDrawRange / n) {
    return false;
  }

  // Integer Vose: residual r_i = w_i * n against column capacity `total`.
  // Residual sums are conserved: sum r_i == n * total == n columns exactly
  // filled, so the final leftovers (whichever stack they sit on) hold
  // r == total and become self-aliased columns. Stacks are seeded in slot
  // order and processed LIFO — fully deterministic for a given weight set.
  struct Entry {
    uint32_t slot;
    uint64_t residual;
  };
  std::vector<Entry> small;
  std::vector<Entry> large;
  small.reserve(n);
  large.reserve(n);
  for (size_t slot = 0; slot < capacity; ++slot) {
    const uint64_t w = tree_.Weight(slot);
    if (w == 0) {
      continue;
    }
    const Entry e{static_cast<uint32_t>(slot), w * n};
    if (e.residual < total) {
      small.push_back(e);
    } else {
      large.push_back(e);
    }
  }
  columns_.clear();
  columns_.reserve(n);
  while (!small.empty() && !large.empty()) {
    const Entry s = small.back();
    small.pop_back();
    Entry& l = large.back();
    Column col;
    col.cut = s.residual;
    col.primary = s.slot;
    col.alias = l.slot;
    columns_.push_back(col);
    l.residual -= total - s.residual;
    if (l.residual < total) {
      small.push_back(l);
      large.pop_back();
    }
  }
  for (const auto& stack : {small, large}) {
    for (const Entry& e : stack) {
      Column col;
      col.cut = e.residual;  // == total: the alias arm is unreachable
      col.primary = e.slot;
      col.alias = e.slot;
      columns_.push_back(col);
    }
  }
  column_capacity_ = total;
  scaled_total_ = static_cast<uint64_t>(n) * total;
  table_valid_ = true;
  ++rebuilds_;
  return true;
}

std::optional<size_t> AliasLottery::Draw(  // lotlint: stream(scheduler)
    FastRand& rng, uint64_t* drawn_value,
                                         bool* used_table) {
  if (used_table != nullptr) {
    *used_table = false;
  }
  if (tree_.total() == 0) {
    return std::nullopt;
  }
  if (cycle_open_) {
    // Drawing while a removal awaits its restore: the competitor set really
    // is smaller right now (a blocked thread, not a dispatch cycle), so any
    // table is stale and the stretch does not count as stable.
    Invalidate();
  }
  if (!table_valid_) {
    ++stable_draws_;
    if (stable_draws_ >= RebuildThreshold()) {
      Rebuild();
      // On failure the counter keeps running; the overflow guard is O(1)
      // per retry while the O(n) scan only happens at the threshold edge,
      // so push the next attempt out by another threshold's worth.
      if (!table_valid_) {
        stable_draws_ = 0;
      }
    }
  }
  if (table_valid_) {
    ++table_draws_;
    const uint64_t r = rng.NextBelow64(scaled_total_);
    if (drawn_value != nullptr) {
      *drawn_value = r;
    }
    if (used_table != nullptr) {
      *used_table = true;
    }
    const Column& col = columns_[r / column_capacity_];
    const uint64_t offset = r % column_capacity_;
    return static_cast<size_t>(offset < col.cut ? col.primary : col.alias);
  }
  ++tree_draws_;
  return tree_.Draw(rng, drawn_value);
}

}  // namespace lottery
