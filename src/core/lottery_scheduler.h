// LotteryScheduler: the paper's CPU scheduler, behind the generic
// sched::Scheduler interface.
//
// Structure mirrors the Mach prototype (Section 4): every thread gets its
// own currency plus a self ticket issued in it; experiments fund thread
// currencies with tickets denominated in user/task currencies, forming the
// currency graph of Figure 3. The run queue is the paper's list-based
// lottery with move-to-front; compensation tickets are granted on
// under-consumed quanta and cleared when the thread next starts a quantum;
// blocked threads deactivate, which is what gives ticket transfers their
// semantics.

#ifndef SRC_CORE_LOTTERY_SCHEDULER_H_
#define SRC_CORE_LOTTERY_SCHEDULER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/core/client.h"
#include "src/core/compensation.h"
#include "src/core/currency.h"
#include "src/core/list_lottery.h"
#include "src/core/tree_lottery.h"
#include "src/obs/registry.h"
#include "src/sched/scheduler.h"
#include "src/util/fastrand.h"

namespace lottery {

// How the run queue picks winners. kList is the prototype's list with
// move-to-front (Section 4.2, Figure 1); kTree is the same section's "tree
// of partial ticket sums", O(lg n) per draw once client values are synced.
enum class RunQueueBackend { kList, kTree };

class LotteryScheduler : public Scheduler, private ValueObserver {
 public:
  struct Options {
    uint32_t seed = 12345;
    RunQueueBackend backend = RunQueueBackend::kList;
    bool move_to_front = true;
    CompensationPolicy::Options compensation;
    // Face amount of each thread's self ticket (its claim on its own
    // currency). Any positive value works — shares are relative.
    int64_t thread_ticket_amount = 1000;
    // Metric sink; nullptr selects obs::Registry::Default(). Tests pass
    // their own registry for isolated counter assertions.
    obs::Registry* metrics = nullptr;
    // Structured-event trace (optional). The scheduler records kCatLottery
    // decision events (drawn random value, total tickets, winner) and — when
    // kCatLotterySnapshot is enabled — a per-candidate ticket snapshot ahead
    // of each decision, enough to re-derive every winner offline (tracectl
    // summarize / tests). The currency table shares the same buffer. The
    // RNG sequence is identical with or without tracing.
    etrace::TraceBuffer* trace = nullptr;
  };

  LotteryScheduler() : LotteryScheduler(Options{}) {}
  explicit LotteryScheduler(Options options);
  ~LotteryScheduler() override;

  // --- Scheduler interface -------------------------------------------------
  void AddThread(ThreadId id, SimTime now) override;
  void RemoveThread(ThreadId id, SimTime now) override;
  void OnReady(ThreadId id, SimTime now) override;
  void OnBlocked(ThreadId id, SimTime now) override;
  ThreadId PickNext(SimTime now) override;
  void OnQuantumEnd(ThreadId id, SimDuration used, SimDuration quantum,
                    SimTime now) override;
  std::string name() const override { return "lottery"; }

  // --- Funding API (the paper's user-level commands) -----------------------

  CurrencyTable& table() { return table_; }
  // The per-thread currency that transfers and funding tickets target.
  Currency* thread_currency(ThreadId id);
  Client* client(ThreadId id);

  // Issues a ticket of `amount` in `denomination` and funds the thread's
  // currency with it (the `fund` command). `principal` is checked against
  // the denomination's ACL. Returned ticket stays owned by the table; use
  // table().SetAmount for dynamic inflation, or table().DestroyTicket to
  // withdraw it.
  Ticket* FundThread(ThreadId id, Currency* denomination, int64_t amount,
                     const std::string& principal = "");

  // Current value of the thread in base units (0 if blocked).
  Funding ThreadValue(ThreadId id);

  FastRand& rng() { return rng_; }
  const CompensationPolicy& compensation() const { return compensation_; }

  // Attaches (or detaches, with nullptr) the structured-event trace at
  // runtime — both the scheduler's own decision hooks and the currency
  // table's. Never perturbs the RNG sequence, so toggling between runs of
  // the same seed keeps the schedule identical (bench_obs_overhead A/Bs
  // tracing on one world this way).
  void SetTrace(etrace::TraceBuffer* trace);

  // --- Instrumentation ------------------------------------------------------
  uint64_t num_lotteries() const { return num_lotteries_; }
  // Draws decided by the zero-funding round-robin fallback.
  uint64_t num_zero_fallbacks() const { return num_zero_fallbacks_; }
  const ListLottery& run_queue() const { return run_queue_; }
  // The registry this scheduler's obs hooks write into.
  obs::Registry& metrics() { return *metrics_; }
  // Counts one ticket transfer against this scheduler (lottery.transfers).
  // Called by the kernel services (mutex, rwlock, semaphore, RPC) at each
  // TicketTransfer they create on behalf of a blocking thread.
  void NoteTransfer() { transfers_->Inc(); }

 private:
  struct ThreadState {
    ThreadId id = kInvalidThreadId;
    std::unique_ptr<Client> client;
    Currency* currency = nullptr;
    Ticket* self_ticket = nullptr;
    bool in_queue = false;
    size_t tree_slot = 0;  // valid while in_queue under the tree backend
  };

  ThreadState& StateOf(ThreadId id);
  // Tree backend: re-push into the Fenwick weights the values of exactly
  // the clients the currency table reported dirty since the last sync —
  // O(dirty · lg n) instead of O(n · lg n) per dispatch. Falls back to one
  // full resync (tree.full_syncs) when more clients are dirty than queued.
  void SyncTreeWeights();
  ThreadId PickNextFromTree();

  // ValueObserver (registered with table_ under the tree backend only; the
  // list backend's run_queue_ observes the table itself).
  void OnClientValueDirty(Client* client) override;

  Options options_;
  FastRand rng_;
  CurrencyTable table_;
  CompensationPolicy compensation_;
  ListLottery run_queue_;
  TreeLottery tree_queue_;
  // Slot -> owning thread state, nullptr for free slots. Slots are small
  // dense indices recycled by TreeLottery, and unordered_map nodes give
  // ThreadState a stable address, so a flat vector of pointers makes winner
  // resolution a single indexed load (a hash map here shows up at 10k
  // clients in bench_draw_overhead's churn rig).
  std::vector<ThreadState*> tree_slot_owner_;
  std::unordered_set<Client*> dirty_clients_;
  std::unordered_map<ThreadId, ThreadState> threads_;
  std::unordered_map<const Client*, ThreadState*> by_client_;
  uint64_t num_lotteries_ = 0;
  uint64_t num_zero_fallbacks_ = 0;
  uint64_t timing_tick_ = 0;

  // Obs hooks (resolved once; raw pointers into metrics_).
  obs::Registry* metrics_;
  obs::Counter* draws_;
  obs::Counter* zero_fallbacks_;
  obs::Counter* compensation_grants_;
  obs::Counter* transfers_;
  obs::Counter* leaf_updates_;
  obs::Counter* full_syncs_;
  obs::LatencyHistogram* draw_cost_;
  // Wall-clock split of a tree dispatch: weight sync vs the draw itself
  // (sampled 1-in-16 dispatches; see bench_smp / bench_draw_overhead).
  obs::LatencyHistogram* sync_ns_;
  obs::LatencyHistogram* tree_draw_ns_;
};

}  // namespace lottery

#endif  // SRC_CORE_LOTTERY_SCHEDULER_H_
