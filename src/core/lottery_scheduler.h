// LotteryScheduler: the paper's CPU scheduler, behind the generic
// sched::Scheduler interface.
//
// Structure mirrors the Mach prototype (Section 4): every thread gets its
// own currency plus a self ticket issued in it; experiments fund thread
// currencies with tickets denominated in user/task currencies, forming the
// currency graph of Figure 3. The run queue is the paper's list-based
// lottery with move-to-front; compensation tickets are granted on
// under-consumed quanta and cleared when the thread next starts a quantum;
// blocked threads deactivate, which is what gives ticket transfers their
// semantics.

#ifndef SRC_CORE_LOTTERY_SCHEDULER_H_
#define SRC_CORE_LOTTERY_SCHEDULER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/core/alias_lottery.h"
#include "src/core/client.h"
#include "src/core/compensation.h"
#include "src/core/currency.h"
#include "src/core/list_lottery.h"
#include "src/core/tree_lottery.h"
#include "src/obs/registry.h"
#include "src/sched/scheduler.h"
#include "src/util/fastrand.h"
#include "src/util/thread_safety.h"

namespace lottery {

// How the run queue picks winners. kList is the prototype's list with
// move-to-front (Section 4.2, Figure 1); kTree is the same section's "tree
// of partial ticket sums", O(lg n) per draw once client values are synced;
// kAlias layers a Walker alias table over the tree for O(1) draws while
// ticket values hold still, falling back to the tree under churn (see
// alias_lottery.h for the rebuild hysteresis).
enum class RunQueueBackend { kList, kTree, kAlias };

class LotteryScheduler : public Scheduler, private ValueObserver {
 public:
  struct Options {
    uint32_t seed = 12345;
    RunQueueBackend backend = RunQueueBackend::kList;
    bool move_to_front = true;
    CompensationPolicy::Options compensation;
    // Face amount of each thread's self ticket (its claim on its own
    // currency). Any positive value works — shares are relative.
    int64_t thread_ticket_amount = 1000;
    // Tree backend: when >= 2 and the run queue has seen no ticket
    // mutations for a stretch of quanta, the scheduler speculatively draws
    // the next (batch_window - 1) winners in one value-sorted sweep and
    // serves them without a descent, flushing the batch the moment any
    // dirty bit or structural change lands. Winner sequence and RNG stream
    // are bit-identical to unbatched draws (draw_identity_test proves it);
    // 0 or 1 disables batching.
    uint32_t batch_window = 8;
    // List backend demotion: the list's O(n) draw is ~280x the tree's at
    // 10k clients, so past this many threads AddThread either throws or —
    // with list_upgrade_to_tree — migrates the scheduler to the tree
    // backend and counts lottery.list_upgrades. 0 disables the limit
    // (benches that measure the list's scaling curve opt out).
    size_t list_max_threads = 1024;
    bool list_upgrade_to_tree = false;
    // Alias backend tuning (rebuild hysteresis); ignored otherwise.
    AliasLottery::Options alias;
    // Metric sink; nullptr selects obs::Registry::Default(). Tests pass
    // their own registry for isolated counter assertions.
    obs::Registry* metrics = nullptr;
    // Structured-event trace (optional). The scheduler records kCatLottery
    // decision events (drawn random value, total tickets, winner) and — when
    // kCatLotterySnapshot is enabled — a per-candidate ticket snapshot ahead
    // of each decision, enough to re-derive every winner offline (tracectl
    // summarize / tests). The currency table shares the same buffer. The
    // RNG sequence is identical with or without tracing.
    etrace::TraceBuffer* trace = nullptr;
  };

  LotteryScheduler() : LotteryScheduler(Options{}) {}
  explicit LotteryScheduler(Options options);
  ~LotteryScheduler() override;

  // --- Scheduler interface -------------------------------------------------
  void AddThread(ThreadId id, SimTime now) override;
  void RemoveThread(ThreadId id, SimTime now) override;
  void OnReady(ThreadId id, SimTime now) override;
  void OnBlocked(ThreadId id, SimTime now) override;
  ThreadId PickNext(SimTime now) override;
  void OnQuantumEnd(ThreadId id, SimDuration used, SimDuration quantum,
                    SimTime now) override;
  std::string name() const override { return "lottery"; }

  // --- Funding API (the paper's user-level commands) -----------------------

  CurrencyTable& table() { return table_; }
  // The per-thread currency that transfers and funding tickets target.
  Currency* thread_currency(ThreadId id);
  Client* client(ThreadId id);

  // Issues a ticket of `amount` in `denomination` and funds the thread's
  // currency with it (the `fund` command). `principal` is checked against
  // the denomination's ACL. Returned ticket stays owned by the table; use
  // table().SetAmount for dynamic inflation, or table().DestroyTicket to
  // withdraw it.
  Ticket* FundThread(ThreadId id, Currency* denomination, int64_t amount,
                     const std::string& principal = "");

  // Current value of the thread in base units (0 if blocked).
  Funding ThreadValue(ThreadId id);

  // --- Timeseries sampling support (src/obs/timeseries/) -------------------

  // The thread's value with any compensation multiplier divided back out —
  // the base entitlement the fairness-lag auditor accrues against. Defined
  // whether or not the thread is queued (the sampler decides inclusion from
  // the kernel's runnable bit, which also covers the currently-running
  // thread the queue no longer holds). Zero for threads not in this table.
  // Read-only: exact integer rescale, never touches the RNG or the queue.
  Funding ThreadBaseValue(ThreadId id);

  // --- SMP partitioning support (src/sched/smp/) ---------------------------
  // Read-only views the SmpScheduler's balancer consults between dispatches.

  // True iff `id` has been AddThread'ed here and not removed.
  bool HasThread(ThreadId id) const;
  // True iff the thread is sitting in the run queue (ready, not dispatched).
  bool IsQueued(ThreadId id) const;
  // Number of queued (ready, undispatched) threads.
  size_t QueuedCount() const;
  // Total runnable ticket value across the run queue, in raw Funding units.
  // Incremental: the list backend returns its cached Total(); the tree/alias
  // backends flush only the clients the currency table marked dirty since
  // the last sync (the same dirty-propagation pass a dispatch would run).
  uint64_t RunnableTickets();
  // (thread, raw value) of every queued thread, in deterministic queue
  // order — the candidate set for the balancer's steal lottery.
  std::vector<std::pair<ThreadId, uint64_t>> QueuedSnapshot();

  FastRand& rng() { return rng_; }  // lotlint: stream(scheduler)
  const CompensationPolicy& compensation() const { return compensation_; }

  // Attaches (or detaches, with nullptr) the structured-event trace at
  // runtime — both the scheduler's own decision hooks and the currency
  // table's. Never perturbs the RNG sequence, so toggling between runs of
  // the same seed keeps the schedule identical (bench_obs_overhead A/Bs
  // tracing on one world this way).
  void SetTrace(etrace::TraceBuffer* trace);

  // --- Instrumentation ------------------------------------------------------
  uint64_t num_lotteries() const { return num_lotteries_; }
  // Draws decided by the zero-funding round-robin fallback.
  uint64_t num_zero_fallbacks() const { return num_zero_fallbacks_; }
  const ListLottery& run_queue() const { return run_queue_; }
  // Effective backend right now (list_upgrade_to_tree can change it).
  RunQueueBackend backend() const { return options_.backend; }
  // Escapes the queue_seq_ domain: hands out a reference tests/benches
  // inspect between dispatches, when no pick is in flight.
  const AliasLottery& alias_queue() const NO_THREAD_SAFETY_ANALYSIS {
    return alias_queue_;
  }
  // The registry this scheduler's obs hooks write into.
  obs::Registry& metrics() { return *metrics_; }
  // Counts one ticket transfer against this scheduler (lottery.transfers).
  // Called by the kernel services (mutex, rwlock, semaphore, RPC) at each
  // TicketTransfer they create on behalf of a blocking thread.
  void NoteTransfer() { transfers_->Inc(); }

 private:
  struct ThreadState {
    ThreadId id = kInvalidThreadId;
    std::unique_ptr<Client> client;
    Currency* currency = nullptr;
    Ticket* self_ticket = nullptr;
    bool in_queue = false;
    size_t tree_slot = 0;  // valid while in_queue under tree/alias backends
  };

  // One speculatively pre-drawn winner. pre_state/post_state bracket the
  // RNG stream the equivalent unbatched draw would have consumed: an entry
  // is served only when rng_ sits exactly at pre_state, and serving it
  // advances rng_ to post_state — so external rng() consumers (the kernel
  // services draw jitter from the same stream) simply invalidate the batch
  // instead of observing a perturbed generator.
  struct BatchEntry {
    uint64_t value = 0;  // drawn random in [0, total)
    size_t slot = 0;     // pre-resolved winner slot
    uint32_t pre_state = 0;
    uint32_t post_state = 0;
  };

  // Consecutive mutation-free picks required before forming a batch, so
  // churn-heavy phases never pay speculative descents they'd just flush.
  static constexpr uint32_t kBatchStreakMin = 4;

  ThreadState& StateOf(ThreadId id);
  // Tree/alias backends: re-push into the partial-sum weights the values of
  // exactly the clients the currency table reported dirty since the last
  // sync — O(dirty · lg n) instead of O(n · lg n) per dispatch. Falls back
  // to one full resync (tree.full_syncs) when more clients are dirty than
  // queued.
  void SyncTreeWeights() REQUIRES(queue_seq_);
  ThreadId PickNextFromTree();

  // Thin dispatch over the tree/alias queue (kList never reaches these).
  bool QueueEmpty() const REQUIRES(queue_seq_);
  size_t QueueSize() const REQUIRES(queue_seq_);
  uint64_t QueueTotal() const REQUIRES(queue_seq_);
  uint64_t QueueWeight(size_t slot) const REQUIRES(queue_seq_);
  size_t QueueAdd(uint64_t weight) REQUIRES(queue_seq_);
  void QueueRemove(size_t slot) REQUIRES(queue_seq_);
  void QueueSetWeight(size_t slot, uint64_t weight) REQUIRES(queue_seq_);

  // Speculative batching (tree backend only).
  bool HasLiveBatch() const { return batch_next_ < batch_.size(); }
  void FlushBatch();
  // Any run-queue perturbation: flush the batch and break the clean streak.
  // Fires reentrantly (via OnClientValueDirty) from inside guarded scopes,
  // so the batch/streak state is deliberately outside queue_seq_.
  void NoteDisturbance();
  void FormBatch(uint64_t total) REQUIRES(queue_seq_);

  // List demotion: migrate every queued client into the tree and switch
  // options_.backend to kTree (one-way; counts lottery.list_upgrades).
  void UpgradeListToTree() REQUIRES(queue_seq_);

  // ValueObserver (registered with table_ under the tree/alias backends
  // only; the list backend's run_queue_ observes the table itself).
  void OnClientValueDirty(Client* client) override;

  Options options_;
  FastRand rng_;  // lotlint: stream(scheduler)
  CurrencyTable table_;
  CompensationPolicy compensation_;
  ListLottery run_queue_;
  // Serialization domain for the tree/alias run queue and its slot-to-owner
  // map: the state the SMP per-CPU partitioning must put behind a per-queue
  // lock. PickNextFromTree holds it for the whole pick; OnReady/OnBlocked/
  // RemoveThread enter it around their queue mutations.
  mutable util::Seq queue_seq_;
  TreeLottery tree_queue_ GUARDED_BY(queue_seq_);
  AliasLottery alias_queue_ GUARDED_BY(queue_seq_);
  // Slot -> owning thread state, nullptr for free slots. Slots are small
  // dense indices recycled by TreeLottery, and unordered_map nodes give
  // ThreadState a stable address, so a flat vector of pointers makes winner
  // resolution a single indexed load (a hash map here shows up at 10k
  // clients in bench_draw_overhead's churn rig).
  std::vector<ThreadState*> tree_slot_owner_ GUARDED_BY(queue_seq_);
  std::unordered_set<Client*> dirty_clients_;
  std::unordered_map<ThreadId, ThreadState> threads_;
  std::unordered_map<const Client*, ThreadState*> by_client_;
  uint64_t num_lotteries_ = 0;
  uint64_t num_zero_fallbacks_ = 0;
  uint64_t timing_tick_ = 0;

  // Batching state. The steady-state dispatch cycle is pick (winner leaves
  // the queue) -> quantum -> OnReady (winner re-enters at the same recycled
  // slot with the same weight); restore_* tracks whether the queue has
  // returned to the exact state a live batch was formed against, and
  // pick_clean_ whether anything else moved between picks.
  std::vector<BatchEntry> batch_;
  size_t batch_next_ = 0;
  uint32_t clean_streak_ = 0;
  bool pick_clean_ = true;
  bool restore_pending_ = false;
  size_t restore_slot_ = 0;
  uint64_t restore_weight_ = 0;
  // Scratch for FormBatch (avoids per-batch allocations).
  std::vector<uint64_t> batch_values_;
  std::vector<size_t> batch_slots_;
  // Alias stats are kept by AliasLottery; deltas are mirrored into
  // counters after each draw.
  uint64_t alias_rebuilds_seen_ = 0;
  uint64_t alias_table_draws_seen_ = 0;
  uint64_t alias_tree_draws_seen_ = 0;

  // Obs hooks (resolved once; raw pointers into metrics_).
  obs::Registry* metrics_;
  obs::Counter* draws_;
  obs::Counter* zero_fallbacks_;
  obs::Counter* compensation_grants_;
  obs::Counter* transfers_;
  obs::Counter* leaf_updates_;
  obs::Counter* full_syncs_;
  obs::Counter* batch_formed_;
  obs::Counter* batch_draws_;
  obs::Counter* batch_flushes_;
  obs::Counter* alias_rebuilds_;
  obs::Counter* alias_table_draws_;
  obs::Counter* alias_tree_draws_;
  obs::Counter* list_upgrades_;
  obs::LatencyHistogram* draw_cost_;
  // Wall-clock split of a tree dispatch: weight sync vs the draw itself
  // (sampled 1-in-16 dispatches; see bench_smp / bench_draw_overhead).
  obs::LatencyHistogram* sync_ns_;
  obs::LatencyHistogram* tree_draw_ns_;
};

}  // namespace lottery

#endif  // SRC_CORE_LOTTERY_SCHEDULER_H_
