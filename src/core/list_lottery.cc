#include "src/core/list_lottery.h"

#include <algorithm>
#include <stdexcept>

namespace lottery {

void ListLottery::Add(Client* client) {
  if (Contains(client)) {
    throw std::invalid_argument("ListLottery::Add: duplicate client");
  }
  clients_.push_back(client);
}

void ListLottery::Remove(Client* client) {
  const auto it = std::find(clients_.begin(), clients_.end(), client);
  if (it == clients_.end()) {
    throw std::invalid_argument("ListLottery::Remove: unknown client");
  }
  clients_.erase(it);
}

bool ListLottery::Contains(const Client* client) const {
  return std::find(clients_.begin(), clients_.end(), client) !=
         clients_.end();
}

Funding ListLottery::Total() const {
  Funding total = Funding::Zero();
  for (const Client* c : clients_) {
    total += c->Value();
  }
  return total;
}

Client* ListLottery::Draw(FastRand& rng) {
  if (clients_.empty()) {
    return nullptr;
  }
  // First pass: total active funding. (The Mach prototype maintained this
  // incrementally as the base currency's active amount; recomputing keeps
  // the sum exactly consistent with the per-client values below.)
  const Funding total = Total();
  if (total.IsZero()) {
    return nullptr;
  }
  const uint64_t winner_value = rng.NextBelow64(total.raw_unsigned());

  // Second pass: accumulate until the winning value is covered (Figure 1).
  uint64_t sum = 0;
  ++num_draws_;
  for (auto it = clients_.begin(); it != clients_.end(); ++it) {
    ++total_scanned_;
    sum += (*it)->Value().raw_unsigned();
    if (sum > winner_value) {
      Client* winner = *it;
      if (move_to_front_ && it != clients_.begin()) {
        clients_.erase(it);
        clients_.push_front(winner);
      }
      return winner;
    }
  }
  throw std::logic_error("ListLottery::Draw: ran past end of list");
}

std::vector<Client*> ListLottery::ClientsInOrder() const {
  return std::vector<Client*>(clients_.begin(), clients_.end());
}

}  // namespace lottery
