#include "src/core/list_lottery.h"

#include <algorithm>
#include <stdexcept>

namespace lottery {

ListLottery::~ListLottery() {
  if (table_ != nullptr) {
    table_->RemoveObserver(this);
  }
}

void ListLottery::Add(Client* client) {
  if (members_.count(client) > 0) {
    throw std::invalid_argument("ListLottery::Add: duplicate client");
  }
  if (table_ == nullptr) {
    table_ = client->table();
    table_->AddObserver(this);
  } else if (client->table() != table_) {
    throw std::invalid_argument(
        "ListLottery::Add: client belongs to a different CurrencyTable");
  }
  order_.push_back(client);
  const Funding value = client->Value();
  members_.emplace(client, Entry{order_.size() - 1, value, false});
  total_ += value;
}

void ListLottery::Remove(Client* client) {
  const auto it = members_.find(client);
  if (it == members_.end()) {
    throw std::invalid_argument("ListLottery::Remove: unknown client");
  }
  order_[it->second.index] = nullptr;
  ++tombstones_;
  total_ -= it->second.last;
  // A pending dirty_members_ entry (if any) is skipped at refresh time.
  members_.erase(it);
  if (tombstones_ >= 8 && tombstones_ > members_.size()) {
    Compact();
  }
}

void ListLottery::Compact() {
  size_t out = 0;
  for (Client* c : order_) {
    if (c != nullptr) {
      members_[c].index = out;
      order_[out++] = c;
    }
  }
  order_.resize(out);
  tombstones_ = 0;
}

bool ListLottery::Contains(const Client* client) const {
  // The map is keyed by Client*; lookup does not mutate the client.
  return members_.count(const_cast<Client*>(client)) > 0;
}

Funding ListLottery::Total() const {
  for (Client* c : dirty_members_) {
    const auto it = members_.find(c);
    if (it == members_.end()) {
      continue;  // removed (or removed and re-added as a clean entry)
    }
    Entry& entry = it->second;
    if (!entry.dirty) {
      continue;
    }
    entry.dirty = false;
    const Funding value = c->Value();
    total_ += value - entry.last;
    entry.last = value;
  }
  dirty_members_.clear();
  return total_;
}

void ListLottery::OnClientValueDirty(Client* client) {
  const auto it = members_.find(client);
  if (it == members_.end() || it->second.dirty) {
    return;
  }
  it->second.dirty = true;
  dirty_members_.push_back(client);
}

Client* ListLottery::Draw(FastRand& rng,  // lotlint: stream(scheduler)
                          uint64_t* drawn_value) {
  if (members_.empty()) {
    return nullptr;
  }
  // The total is maintained incrementally from dirty notifications, and the
  // per-client values below come from the same caches, so the draw interval
  // partition stays exact.
  const Funding total = Total();
  if (total.IsZero()) {
    return nullptr;
  }
  const uint64_t winner_value = rng.NextBelow64(total.raw_unsigned());
  if (drawn_value != nullptr) {
    *drawn_value = winner_value;
  }

  // Accumulate until the winning value is covered (Figure 1).
  uint64_t sum = 0;
  ++num_draws_;
  for (size_t i = 0; i < order_.size(); ++i) {
    Client* candidate = order_[i];
    if (candidate == nullptr) {
      continue;
    }
    ++total_scanned_;
    sum += candidate->Value().raw_unsigned();
    if (sum > winner_value) {
      if (move_to_front_ && i > 0) {
        // Identical semantics to list erase + push_front: the winner moves
        // to the front, everything before it shifts back one slot.
        std::rotate(order_.begin(),
                    order_.begin() + static_cast<ptrdiff_t>(i),
                    order_.begin() + static_cast<ptrdiff_t>(i) + 1);
        for (size_t j = 0; j <= i; ++j) {
          if (order_[j] != nullptr) {
            members_[order_[j]].index = j;
          }
        }
      }
      return candidate;
    }
  }
  throw std::logic_error("ListLottery::Draw: ran past end of list");
}

std::vector<Client*> ListLottery::ClientsInOrder() const {
  std::vector<Client*> out;
  out.reserve(members_.size());
  for (Client* c : order_) {
    if (c != nullptr) {
      out.push_back(c);
    }
  }
  return out;
}

Client* ListLottery::Front() const {
  for (Client* c : order_) {
    if (c != nullptr) {
      return c;
    }
  }
  return nullptr;
}

}  // namespace lottery
