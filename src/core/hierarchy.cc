#include "src/core/hierarchy.h"

#include <algorithm>
#include <stdexcept>

namespace lottery {

UserAccount::UserAccount(LotteryScheduler* scheduler, const std::string& name,
                         int64_t base_amount)
    : scheduler_(scheduler) {
  CurrencyTable& table = scheduler_->table();
  currency_ = table.CreateCurrency(name, /*owner=*/name);
  backing_ = table.CreateTicket(table.base(), base_amount);
  table.Fund(currency_, backing_);
}

UserAccount::~UserAccount() {
  // Tasks first (their backing tickets are issued in currency_).
  tasks_.clear();
  CurrencyTable& table = scheduler_->table();
  table.DestroyTicket(backing_);
  // The currency may still have issued tickets if threads funded directly
  // from it are alive; in that case leave it for the scheduler teardown.
  if (currency_->issued().empty()) {
    table.DestroyCurrency(currency_);
  }
}

void UserAccount::SetBaseAmount(int64_t amount) {
  scheduler_->table().SetAmount(backing_, amount);
}

TaskAccount* UserAccount::CreateTask(const std::string& task, int64_t amount) {
  CurrencyTable& table = scheduler_->table();
  Currency* task_currency =
      table.CreateCurrency(name() + "/" + task, /*owner=*/name());
  Ticket* backing = table.CreateTicket(currency_, amount, name());
  table.Fund(task_currency, backing);
  tasks_.push_back(std::unique_ptr<TaskAccount>(
      new TaskAccount(scheduler_, task_currency, backing)));
  return tasks_.back().get();
}

void UserAccount::DestroyTask(TaskAccount* task) {
  const auto it = std::find_if(
      tasks_.begin(), tasks_.end(),
      [task](const std::unique_ptr<TaskAccount>& t) { return t.get() == task; });
  if (it == tasks_.end()) {
    throw std::invalid_argument("DestroyTask: not a task of " + name());
  }
  tasks_.erase(it);
}

Ticket* UserAccount::FundThread(ThreadId tid, int64_t amount) {
  return scheduler_->FundThread(tid, currency_, amount, name());
}

TaskAccount::~TaskAccount() {
  CurrencyTable& table = scheduler_->table();
  // Threads funded from this task hold tickets issued in currency_ through
  // their thread currencies; those are destroyed when the threads exit.
  // The task itself can be retired once nothing is issued in it.
  if (currency_->issued().empty()) {
    table.DestroyTicket(backing_);
    table.DestroyCurrency(currency_);
  } else {
    // Withdraw the user's funding; the currency lingers (worthless) until
    // its last issued ticket is destroyed by thread teardown.
    table.DestroyTicket(backing_);
  }
}

void TaskAccount::SetAmount(int64_t amount) {
  scheduler_->table().SetAmount(backing_, amount);
}

Ticket* TaskAccount::FundThread(ThreadId tid, int64_t amount) {
  return scheduler_->FundThread(tid, currency_, amount,
                                currency_->owner());
}

}  // namespace lottery
