// Lottery-scheduled mutex (Section 6.1, Figure 10).
//
// The mutex has its own currency and an inheritance ticket issued in that
// currency. Threads blocked on the mutex transfer their funding into the
// mutex currency; the inheritance ticket funds the current owner's thread
// currency, so the owner runs with its own funding *plus* all waiters'
// funding — solving priority inversion the same way the paper does. On
// release, a lottery among the waiters (weighted by their transferred
// funding) picks the next owner.
//
// Under a non-lottery scheduler the same object degrades to a plain FIFO
// mutex (no transfers), so every baseline can run the identical workload.

#ifndef SRC_SIM_SYNC_H_
#define SRC_SIM_SYNC_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/core/transfer.h"
#include "src/obs/registry.h"
#include "src/sim/kernel.h"
#include "src/util/thread_safety.h"

namespace lottery {

// Observes thread exits so that an owner dying while holding the lock —
// voluntarily or through an injected crash — releases the inheritance
// ticket and passes ownership on instead of stranding the waiters' funding
// in a currency about to be destroyed.
//
// The class is a clang thread-safety *capability*: Acquire/Release carry
// TRY_ACQUIRE/RELEASE attributes, so straight-line critical sections are
// checked statically. Bodies that hold the mutex across scheduling slices
// (the normal cooperative pattern) end each slice's static session with
// NoteHeldAcrossSlice and re-establish it with AssertHeld on resume — both
// runtime-check real ownership. See thread_safety.h for the protocol.
class CAPABILITY("mutex") SimMutex : public ThreadExitObserver {
 public:
  // `kernel` must outlive the mutex. Transfer amounts are the face value of
  // waiter transfer tickets; any positive constant works (shares are
  // relative within each waiter's thread currency).
  SimMutex(Kernel* kernel, const std::string& name,
           int64_t transfer_amount = 1000);
  ~SimMutex();
  SimMutex(const SimMutex&) = delete;
  SimMutex& operator=(const SimMutex&) = delete;

  // Attempts to acquire for ctx.self(). Returns true if the mutex was free
  // (caller now owns it). Otherwise registers the caller as a waiter with a
  // ticket transfer and returns false; the body must then ctx.Block().
  // When the thread is next woken it owns the mutex.
  bool Acquire(RunContext& ctx) TRY_ACQUIRE(true);

  // Releases the mutex; if waiters exist, holds a lottery among them,
  // hands ownership (and the inheritance ticket) to the winner, and wakes
  // it at ctx.now().
  void Release(RunContext& ctx) RELEASE();

  // Cross-slice protocol (see the class comment). AssertHeld tells the
  // static analysis the capability is held and runtime-checks that `tid`
  // really owns the mutex; NoteHeldAcrossSlice ends the static session at a
  // slice boundary (no runtime state changes — the mutex stays owned).
  void AssertHeld(ThreadId tid) const ASSERT_CAPABILITY(this);
  void NoteHeldAcrossSlice(ThreadId tid) const RELEASE();

  ThreadId owner() const;
  size_t num_waiters() const;
  const std::string& name() const { return name_; }

  // Total acquisitions granted so far (for the Figure 11 counts).
  uint64_t acquisitions() const;

  // ThreadExitObserver: purges the dead thread from the waiter list (its
  // transfer rolls back) and, if it owned the mutex, releases and re-grants
  // at `when` so the lock currency never funds a destroyed currency.
  void OnThreadExit(ThreadId tid, SimTime when) override;

 private:
  struct Waiter {
    ThreadId tid;
    std::unique_ptr<TicketTransfer> transfer;  // null under non-lottery
    SimTime since;
  };

  void GrantTo(ThreadId tid) REQUIRES(seq_);
  // The release path shared by Release and OnThreadExit: drops or re-grants
  // the inheritance ticket and wakes the lottery-picked next owner.
  void ReleaseAndGrant(SimTime now) REQUIRES(seq_);

  Kernel* kernel_;
  std::string name_;
  int64_t transfer_amount_;
  // Serialization domain for the waiter list and ownership word: the state
  // an SMP kernel would protect with a spinlock. Every public entry point
  // enters it; Debug builds assert the domain is never re-entered.
  mutable util::Seq seq_;
  ThreadId owner_ GUARDED_BY(seq_) = kInvalidThreadId;
  std::vector<Waiter> waiters_ GUARDED_BY(seq_);
  uint64_t acquisitions_ GUARDED_BY(seq_) = 0;

  // Lottery-mode machinery (null when the policy scheduler is not lottery).
  Currency* currency_ = nullptr;
  Ticket* inheritance_ticket_ = nullptr;
  // Interned mutex name for trace events (0 when tracing is off).
  uint32_t trace_name_ = 0;

  // Obs hooks (from the kernel's registry): grants, contended acquires, and
  // the Figure 11 waiting-time histogram in microseconds of simulated time.
  obs::Counter* m_acquisitions_;
  obs::Counter* m_contended_;
  obs::LatencyHistogram* m_wait_us_;
};

}  // namespace lottery

#endif  // SRC_SIM_SYNC_H_
