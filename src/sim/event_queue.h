// Discrete-event queue driving the simulated kernel's virtual clock.
//
// Events are (time, handler) pairs executed in time order with FIFO
// tiebreak, so runs are fully deterministic. Cancellation is supported for
// timers that are raced by other wakeups (e.g. a sleep cut short).
//
// The core is a hierarchical timing wheel (Varghese & Lauer): kLevels
// levels of 256 slots over 65.5 µs ticks, so Schedule and Cancel are O(1)
// and RunUntil pays O(1) amortized re-bucketing per event instead of the
// O(lg n) heap churn that capped the old binary-heap queue near 10k
// threads. Exact ns ordering is preserved by a small "due" heap holding
// only events whose slot the wheel cursor has already passed — the wheel
// buckets the far future cheaply, the due heap orders the immediate
// present precisely, and the (when, seq) execution order is bit-identical
// to the old heap's (tests/event_queue_diff_test.cc checks this
// differentially; tests/queue_swap_identity_test.cc pins a golden trace).
// Events beyond the wheel horizon (~78 simulated hours out) overflow into
// a plain heap and migrate into the wheel as the cursor approaches.
//
// Event records live in a chunked arena and are addressed by dense index;
// handlers are stored inline (SmallFn), so a pending event costs zero
// heap allocations. Event ids encode {generation, index}: Cancel after
// the event ran sees a stale generation and is a true O(1) no-op — the
// old implementation's tombstone set grew without bound on exactly that
// pattern.

#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/util/arena.h"
#include "src/util/sim_time.h"
#include "src/util/small_fn.h"

namespace lottery {

class EventQueue {
 public:
  using Handler = util::SmallFn<void(SimTime), 56>;
  using EventId = uint64_t;

  EventQueue();
  EventQueue(const EventQueue&) = delete;
  EventQueue& operator=(const EventQueue&) = delete;

  // Schedules `handler` to run at `when`; returns an id usable with Cancel.
  EventId Schedule(SimTime when, Handler handler);
  // Cancels a pending event; no-op if it already ran or was cancelled.
  void Cancel(EventId id);

  bool empty() const;
  // Time of the earliest pending event; undefined when empty.
  SimTime next_time() const;

  // Runs every event with time <= limit in order; returns how many ran.
  // Handlers may schedule further events (also run if they fall within
  // the limit).
  size_t RunUntil(SimTime limit);

  size_t pending() const;

  // Introspection for tests/benches: arena capacity in event records.
  size_t capacity() const { return nodes_.size(); }

 private:
  // Wheel geometry. Ticks are 2^kTickBits ns (≈65.5 µs); each level holds
  // 2^kLevelBits slots and covers 256× the span of the one below. Four
  // levels cover 2^48 ns ≈ 78 simulated hours ahead of the cursor.
  static constexpr uint64_t kTickBits = 16;
  static constexpr uint64_t kLevelBits = 8;
  static constexpr size_t kSlots = size_t{1} << kLevelBits;
  static constexpr uint64_t kSlotMask = kSlots - 1;
  static constexpr size_t kLevels = 4;
  static constexpr uint32_t kNil = 0xFFFFFFFFu;

  // kWheel nodes live in a doubly-linked slot chain and are unlinked and
  // freed eagerly on Cancel (the cancel-heavy timeout pattern would
  // otherwise balloon the arena with tombstones awaiting their slot's
  // decant). kHeap nodes sit in due_/overflow_, where O(1) removal is
  // impossible; those cancel lazily via the kCancelled tombstone state.
  enum class NodeState : uint8_t { kFree, kWheel, kHeap, kCancelled };

  // Hot per-event metadata, kept exactly 32 bytes (two per cache line) and
  // in a separate array from the 56-byte handlers: placement, cancellation
  // and decanting walk only this array, so the wheel's working set stays a
  // fraction of what interleaved node+handler records would touch.
  struct Node {
    int64_t when_ns = 0;
    uint64_t seq = 0;
    uint32_t next = kNil;  // slot chain / free list link
    uint32_t prev = kNil;  // slot chain back-link (kWheel only)
    uint32_t gen = 1;      // bumped on free; stale ids mismatch
    NodeState state = NodeState::kFree;
    uint8_t level = 0;  // wheel position (kWheel only), for unlink
    uint8_t slot = 0;
  };
  static_assert(sizeof(Node) == 32, "keep the hot event metadata compact");

  static uint64_t TickOf(int64_t when_ns) {
    return when_ns <= 0 ? 0 : static_cast<uint64_t>(when_ns) >> kTickBits;
  }

  // Heap entries copy the node's ordering key so sift comparisons stay
  // inside the contiguous heap vector instead of chasing pointers into the
  // (much larger, cache-cold) node arena.
  struct HeapEntry {
    int64_t when_ns;
    uint64_t seq;
    uint32_t index;
  };
  static bool Earlier(const HeapEntry& a, const HeapEntry& b) {
    return a.when_ns < b.when_ns ||
           (a.when_ns == b.when_ns && a.seq < b.seq);
  }

  uint32_t AllocNode(SimTime when, Handler&& handler);
  void FreeNode(uint32_t index);
  // Places a pending node into due heap / wheel slot / overflow heap
  // according to its tick relative to cursor_.
  void Place(uint32_t index);
  // Heap helpers over (when, seq)-ordered entry vectors.
  static void HeapPush(std::vector<HeapEntry>& heap, HeapEntry entry);
  static HeapEntry HeapPop(std::vector<HeapEntry>& heap);
  // Advances the wheel (cascading slots downward, draining overflow) until
  // the due set (ready_ run + due_ heap) holds the globally earliest
  // pending event, or returns with it empty when nothing is pending.
  void EnsureDue();
  // Drops cancelled corpses off the front of the ready run and due heap.
  void SkipCancelledDue();
  // Earliest due entry, or nullptr when the due set is empty. Valid only
  // after EnsureDue(); fronts are live (SkipCancelledDue ran).
  const HeapEntry* PeekDue() const {
    const bool ready = ready_pos_ < ready_.size();
    if (due_.empty()) {
      return ready ? &ready_[ready_pos_] : nullptr;
    }
    if (!ready || Earlier(due_.front(), ready_[ready_pos_])) {
      return &due_.front();
    }
    return &ready_[ready_pos_];
  }
  // Removes the entry PeekDue() points at.
  HeapEntry PopDue();
  // First busy slot index >= from at `level`, or -1.
  int FindBusySlot(size_t level, size_t from) const;

  util::ChunkedVector<Node> nodes_;
  // handlers_[i] belongs to nodes_[i]. A cancelled or fired handler is
  // released lazily — moved from on fire, overwritten on slot reuse — the
  // same lifetime the original heap queue gave cancelled std::functions.
  util::ChunkedVector<Handler> handlers_;
  uint32_t free_head_ = kNil;

  // cursor_ is the decant horizon in ticks: every pending event with
  // tick <= cursor_ is in due_; every wheel event has tick > cursor_.
  uint64_t cursor_ = 0;
  uint32_t slot_head_[kLevels][kSlots];
  uint64_t slot_bitmap_[kLevels][kSlots / 64];
  size_t wheel_count_ = 0;

  // The due set is split in two. A decanted slot's due events are sorted
  // once into ready_ and consumed by advancing ready_pos_ — O(1) per event
  // versus the O(lg n) sift a heap pays twice per event. The due_ heap
  // holds only stragglers that join while ready_ drains (events scheduled
  // at or before the cursor's tick, overflow spills); the earliest pending
  // event is the min of the two fronts, so exact (when, seq) order is kept.
  std::vector<HeapEntry> ready_;  // sorted ascending; ready_pos_ is the front
  size_t ready_pos_ = 0;
  std::vector<HeapEntry> scratch_;   // decant staging, reused across slots
  std::vector<HeapEntry> due_;       // min-heap by (when, seq)
  std::vector<HeapEntry> overflow_;  // min-heap; events beyond the horizon

  uint64_t next_seq_ = 0;
  size_t live_ = 0;  // pending and not cancelled
};

}  // namespace lottery

#endif  // SRC_SIM_EVENT_QUEUE_H_
