// Discrete-event queue driving the simulated kernel's virtual clock.
//
// Events are (time, handler) pairs executed in time order with FIFO
// tiebreak, so runs are fully deterministic. Cancellation is supported for
// timers that are raced by other wakeups (e.g. a sleep cut short).

#ifndef SRC_SIM_EVENT_QUEUE_H_
#define SRC_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/util/sim_time.h"

namespace lottery {

class EventQueue {
 public:
  using Handler = std::function<void(SimTime)>;
  using EventId = uint64_t;

  // Schedules `handler` to run at `when`; returns an id usable with Cancel.
  EventId Schedule(SimTime when, Handler handler);
  // Cancels a pending event; no-op if it already ran or was cancelled.
  void Cancel(EventId id);

  bool empty() const;
  // Time of the earliest pending event; undefined when empty.
  SimTime next_time() const;

  // Runs every event with time <= limit in order; returns how many ran.
  // Handlers may schedule further events (also run if they fall within
  // the limit).
  size_t RunUntil(SimTime limit);

  size_t pending() const;

 private:
  struct Event {
    SimTime when;
    uint64_t seq;
    EventId id;
    Handler handler;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  void DropCancelledHead();

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::unordered_set<EventId> cancelled_;
  uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
};

}  // namespace lottery

#endif  // SRC_SIM_EVENT_QUEUE_H_
