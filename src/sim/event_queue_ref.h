// ReferenceEventQueue: the original binary-heap event queue, preserved
// verbatim (std::function handlers and all) as the oracle for the
// timing-wheel EventQueue.
//
// tests/event_queue_diff_test.cc replays randomized schedule/cancel/run
// traces through both queues and requires identical execution order;
// bench/bench_scale.cc uses it as the O(lg n) baseline the wheel is gated
// against. Keep its semantics frozen — including the lazy drop-at-head
// cancellation — so it stays a faithful model of the pre-wheel behaviour.

#ifndef SRC_SIM_EVENT_QUEUE_REF_H_
#define SRC_SIM_EVENT_QUEUE_REF_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "src/sim/event_queue.h"
#include "src/util/sim_time.h"

namespace lottery {

class ReferenceEventQueue {
 public:
  // The original queue stored std::function handlers (heap-allocating any
  // capture beyond the small-object buffer); kept so baseline measurements
  // include that cost.
  using Handler = std::function<void(SimTime)>;
  using EventId = EventQueue::EventId;

  EventId Schedule(SimTime when, Handler handler) {
    const EventId id = next_id_++;
    heap_.push(Event{when, next_seq_++, id, std::move(handler)});
    return id;
  }

  void Cancel(EventId id) { cancelled_.insert(id); }

  bool empty() const {
    const_cast<ReferenceEventQueue*>(this)->DropCancelledHead();
    return heap_.empty();
  }

  SimTime next_time() const {
    const_cast<ReferenceEventQueue*>(this)->DropCancelledHead();
    return heap_.top().when;
  }

  size_t RunUntil(SimTime limit) {
    size_t ran = 0;
    for (;;) {
      DropCancelledHead();
      if (heap_.empty() || heap_.top().when > limit) {
        return ran;
      }
      // Pop-by-copy exactly as the original implementation did: copying the
      // Event copies its std::function, re-allocating any out-of-line
      // capture block. Baseline measurements must include that cost.
      Event event = heap_.top();
      heap_.pop();
      event.handler(event.when);
      ++ran;
    }
  }

  size_t pending() const { return heap_.size(); }

 private:
  struct Event {
    SimTime when;
    uint64_t seq;
    EventId id;
    Handler handler;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  void DropCancelledHead() {
    while (!heap_.empty() && cancelled_.count(heap_.top().id) > 0) {
      cancelled_.erase(heap_.top().id);
      heap_.pop();
    }
  }

  std::priority_queue<Event, std::vector<Event>, Later> heap_;
  std::unordered_set<EventId> cancelled_;
  uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
};

}  // namespace lottery

#endif  // SRC_SIM_EVENT_QUEUE_REF_H_
