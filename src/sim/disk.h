// Lottery-scheduled disk bandwidth (Section 6's generalization; the paper's
// footnote 7 suggests "a disk-based database could use lotteries to
// schedule disk bandwidth").
//
// A single device serves one request at a time. Whenever the device becomes
// free and several clients have queued requests, a lottery over the ticket
// holdings of *backlogged* clients picks whose request is served next
// (FIFO within a client). Service time is seek overhead plus size over
// bandwidth. The simulation is self-contained (its own virtual clock) so it
// can also run inside kernel-driven experiments via Submit/AdvanceTo.

#ifndef SRC_SIM_DISK_H_
#define SRC_SIM_DISK_H_

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <vector>

#include "src/util/fastrand.h"
#include "src/util/sim_time.h"
#include "src/util/stats.h"

namespace lottery {

class FaultInjector;
namespace etrace {
class TraceBuffer;
}

class DiskScheduler {
 public:
  using ClientId = uint32_t;

  struct Options {
    int64_t bytes_per_second = 10 * 1000 * 1000;
    SimDuration seek_overhead = SimDuration::Millis(5);
  };

  DiskScheduler(Options options, FastRand* rng);

  void RegisterClient(ClientId client, uint64_t tickets);
  void SetTickets(ClientId client, uint64_t tickets);

  // Arms disk-timeout injection (kDiskTimeout opportunities fire at each
  // would-be completion). nullptr disables. The injector must outlive the
  // disk scheduler.
  void SetFaultInjector(FaultInjector* faults) { faults_ = faults; }
  // Completions that timed out and were re-queued for retry.
  uint64_t timeouts() const { return timeouts_; }

  // Records kCatDisk submit/complete events into `trace` (nullptr
  // disables). The buffer must outlive the disk scheduler.
  void SetTrace(etrace::TraceBuffer* trace);

  using Completion = std::function<void(SimTime)>;

  // Enqueues a request of `bytes` for `client`, submitted at `when`
  // (>= current clock). `on_complete`, if given, runs during AdvanceTo at
  // the request's completion time — the hook kernel threads use to block
  // on I/O and be woken by the device.
  void Submit(ClientId client, int64_t bytes, SimTime when,
              Completion on_complete = {});

  // Advances the device clock, completing requests until `deadline`.
  // A request may start in one AdvanceTo window and complete in a later
  // one (it stays "in flight" across calls).
  void AdvanceTo(SimTime deadline);

  SimTime now() const { return now_; }
  // True while a request is being serviced (possibly across AdvanceTo
  // windows).
  bool busy() const { return in_flight_.active; }
  bool idle() const;

  int64_t BytesServed(ClientId client) const;
  uint64_t RequestsServed(ClientId client) const;
  // Queueing delay (submit -> service start) statistics per client.
  const RunningStat& QueueDelay(ClientId client) const;
  size_t QueueDepth(ClientId client) const;

 private:
  struct Request {
    int64_t bytes;
    SimTime submitted;
    Completion on_complete;
    // Injected-timeout retries already spent on this request.
    uint32_t attempts = 0;
  };
  struct ClientState {
    uint64_t tickets = 1;
    std::deque<Request> queue;
    int64_t bytes_served = 0;
    uint64_t requests_served = 0;
    RunningStat queue_delay;
  };

  ClientState& StateOf(ClientId client);
  const ClientState& StateOf(ClientId client) const;
  // Picks the next backlogged client by lottery; nullopt if all idle.
  std::optional<ClientId> PickClient();
  SimDuration ServiceTime(const Request& request) const;

  struct InFlight {
    bool active = false;
    ClientId client = 0;
    Request request;
    SimTime done;
  };

  Options options_;
  FastRand* rng_;  // lotlint: stream(device)
  FaultInjector* faults_ = nullptr;
  etrace::TraceBuffer* trace_ = nullptr;
  uint32_t trace_name_ = 0;  // interned "disk"
  uint64_t timeouts_ = 0;
  std::map<ClientId, ClientState> clients_;
  SimTime now_;
  InFlight in_flight_;
};

}  // namespace lottery

#endif  // SRC_SIM_DISK_H_
