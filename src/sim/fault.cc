#include "src/sim/fault.h"

#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "src/obs/etrace/trace_buffer.h"

namespace lottery {

namespace {

constexpr const char* kClassNames[kNumFaultClasses] = {
    "crash",        "spurious-wake", "delayed-unblock", "rpc-drop",
    "rpc-dup",      "rpc-reorder",   "disk-timeout",    "revoke",
};

// Class defaults when a spec leaves the magnitude fields zero.
SimDuration DefaultDelay(FaultClass fault) {
  switch (fault) {
    case FaultClass::kDelayedUnblock:
      return SimDuration::Millis(10);
    case FaultClass::kRpcDrop:
      return SimDuration::Millis(1);  // loss-notice delay for the caller
    case FaultClass::kDiskTimeout:
      return SimDuration::Millis(1);  // backoff base
    default:
      return SimDuration{};
  }
}

bool ParseClassName(const std::string& name, FaultClass* out) {
  for (size_t i = 0; i < kNumFaultClasses; ++i) {
    if (name == kClassNames[i]) {
      *out = static_cast<FaultClass>(i);
      return true;
    }
  }
  return false;
}

uint64_t ParseUint(const std::string& text, const std::string& context) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0') {
    throw std::invalid_argument("FaultPlan: bad integer '" + text + "' in " +
                                context);
  }
  return static_cast<uint64_t>(value);
}

double ParseDouble(const std::string& text, const std::string& context) {
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str() || *end != '\0') {
    throw std::invalid_argument("FaultPlan: bad number '" + text + "' in " +
                                context);
  }
  return value;
}

}  // namespace

const char* FaultClassName(FaultClass fault) {
  return kClassNames[static_cast<size_t>(fault)];
}

std::string FaultSpec::ToString() const {
  std::ostringstream out;
  out << FaultClassName(fault);
  char sep = ':';
  if (probability_ppm > 0) {
    // Render as ppm to round-trip exactly (decimal p= is accepted on input).
    out << sep << "ppm=" << probability_ppm;
    sep = ',';
  }
  if (every_nth > 0) {
    out << sep << "every=" << every_nth;
    sep = ',';
  }
  if (at_nanos >= 0) {
    out << sep << "at_ns=" << at_nanos;
    sep = ',';
  }
  if (delay.nanos() > 0) {
    out << sep << "delay_us=" << delay.nanos() / 1000;
    sep = ',';
  }
  if (fault == FaultClass::kDiskTimeout) {
    out << sep << "retries=" << max_retries;
  }
  return out.str();
}

std::string FaultPlan::ToString() const {
  std::string out;
  for (const FaultSpec& spec : specs) {
    if (!out.empty()) {
      out += ';';
    }
    out += spec.ToString();
  }
  return out;
}

FaultPlan FaultPlan::Parse(const std::string& text) {
  FaultPlan plan;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t end = text.find(';', pos);
    if (end == std::string::npos) {
      end = text.size();
    }
    const std::string item = text.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) {
      continue;
    }

    const size_t colon = item.find(':');
    const std::string name = item.substr(0, colon);
    FaultSpec spec;
    if (!ParseClassName(name, &spec.fault)) {
      throw std::invalid_argument("FaultPlan: unknown fault class '" + name +
                                  "'");
    }
    bool armed = false;
    if (colon != std::string::npos) {
      size_t kpos = colon + 1;
      while (kpos < item.size()) {
        size_t kend = item.find(',', kpos);
        if (kend == std::string::npos) {
          kend = item.size();
        }
        const std::string kv = item.substr(kpos, kend - kpos);
        kpos = kend + 1;
        const size_t eq = kv.find('=');
        if (eq == std::string::npos) {
          throw std::invalid_argument("FaultPlan: expected key=value, got '" +
                                      kv + "'");
        }
        const std::string key = kv.substr(0, eq);
        const std::string value = kv.substr(eq + 1);
        if (key == "p") {
          const double p = ParseDouble(value, item);
          if (p < 0.0 || p > 1.0) {
            throw std::invalid_argument("FaultPlan: p out of [0,1] in " +
                                        item);
          }
          spec.probability_ppm = static_cast<uint32_t>(p * 1e6 + 0.5);
          armed = true;
        } else if (key == "ppm") {
          const uint64_t ppm = ParseUint(value, item);
          if (ppm > 1000000) {
            throw std::invalid_argument("FaultPlan: ppm > 1e6 in " + item);
          }
          spec.probability_ppm = static_cast<uint32_t>(ppm);
          armed = true;
        } else if (key == "every") {
          spec.every_nth = ParseUint(value, item);
          armed = true;
        } else if (key == "at") {
          spec.at_nanos =
              static_cast<int64_t>(ParseDouble(value, item) * 1e9);
          armed = true;
        } else if (key == "at_ns") {
          spec.at_nanos = static_cast<int64_t>(ParseUint(value, item));
          armed = true;
        } else if (key == "delay_ms") {
          spec.delay =
              SimDuration::Millis(static_cast<int64_t>(ParseUint(value, item)));
        } else if (key == "delay_us") {
          spec.delay =
              SimDuration::Micros(static_cast<int64_t>(ParseUint(value, item)));
        } else if (key == "retries") {
          spec.max_retries = static_cast<uint32_t>(ParseUint(value, item));
        } else {
          throw std::invalid_argument("FaultPlan: unknown key '" + key +
                                      "' in " + item);
        }
      }
    }
    if (!armed) {
      throw std::invalid_argument(
          "FaultPlan: spec '" + item +
          "' has no trigger (need p=, ppm=, every=, or at=)");
    }
    plan.specs.push_back(spec);
  }
  return plan;
}

FaultInjector::FaultInjector(FaultPlan plan, uint64_t seed)
    : plan_(std::move(plan)),
      // Offset the mixer so an injector and a SplitMix64-derived scheduler
      // seeded from the same user value land on unrelated streams.
      rng_(SplitMix64(seed ^ 0xFA01'7C0D'ECAF'F00Dull).NextFastRandSeed()) {
  for (const FaultSpec& spec : plan_.specs) {
    PerClass& pc = classes_[static_cast<size_t>(spec.fault)];
    pc.armed = true;
    // Later specs override magnitudes; triggers accumulate conservatively
    // (any armed trigger can fire).
    if (spec.probability_ppm > 0) {
      pc.probability_ppm = spec.probability_ppm;
    }
    if (spec.every_nth > 0) {
      pc.every_nth = spec.every_nth;
    }
    if (spec.at_nanos >= 0) {
      pc.at_nanos = spec.at_nanos;
    }
    if (spec.delay.nanos() > 0) {
      pc.delay = spec.delay;
    }
    if (spec.max_retries > 0) {
      pc.max_retries = spec.max_retries;
    }
  }
}

bool FaultInjector::Fire(FaultClass fault, SimTime now) {
  PerClass& pc = classes_[static_cast<size_t>(fault)];
  if (!pc.armed) {
    return false;
  }
  ++pc.opportunities;
  bool fired = false;
  if (pc.every_nth > 0 && pc.opportunities % pc.every_nth == 0) {
    fired = true;
  }
  if (pc.at_nanos >= 0 && !pc.at_fired && now.nanos() >= pc.at_nanos) {
    pc.at_fired = true;
    fired = true;
  }
  // Draw unconditionally when the probability trigger is armed, so the
  // stream consumed per opportunity is independent of the outcome.
  if (pc.probability_ppm > 0 &&
      rng_.NextBelow(1000000u) < pc.probability_ppm) {
    fired = true;
  }
  if (fired) {
    ++pc.injected;
    if (etrace::On(trace_, etrace::kCatFault)) {
      etrace::Event e;
      e.t_ns = now.nanos();
      e.a = static_cast<uint32_t>(fault);
      e.name = trace_names_[static_cast<size_t>(fault)];
      e.type = static_cast<uint16_t>(etrace::EventType::kFault);
      trace_->Append(e);
    }
  }
  return fired;
}

void FaultInjector::SetTrace(etrace::TraceBuffer* trace) {
  trace_ = trace;
  for (size_t i = 0; i < kNumFaultClasses; ++i) {
    trace_names_[i] =
        trace != nullptr ? trace->Intern(kClassNames[i]) : 0;
  }
}

SimDuration FaultInjector::DelayOf(FaultClass fault) const {
  const PerClass& pc = PerClassOf(fault);
  return pc.delay.nanos() > 0 ? pc.delay : DefaultDelay(fault);
}

uint32_t FaultInjector::MaxRetriesOf(FaultClass fault) const {
  const PerClass& pc = PerClassOf(fault);
  return pc.max_retries > 0 ? pc.max_retries : 3;
}

uint64_t FaultInjector::total_injections() const {
  uint64_t total = 0;
  for (const PerClass& pc : classes_) {
    total += pc.injected;
  }
  return total;
}

}  // namespace lottery
