// Lottery-scheduled N x N crossbar switch (statistical matching).
//
// Section 7 points at the AN2 network's statistical matching — "exploits
// randomness to support frequent changes of bandwidth allocation" — as
// kindred work, and Section 6.3 proposes lotteries for "virtual circuits
// competing for congested channels". This module combines them: an
// input-queued crossbar where, each cell slot, a randomized matching is
// built between inputs and outputs, with every random choice made by a
// lottery over virtual-circuit tickets:
//
//   round:  1. every unmatched output holds a lottery among the backlogged
//              circuits (from unmatched inputs) destined to it;
//           2. an input proposed to by several outputs grants one of them
//              by a second lottery (weighted by the proposing circuits);
//           3. repeat with the still-unmatched ports (`matching_rounds`).
//
// One round reproduces the classic ~(1 - 1/e) saturation throughput of
// single-iteration randomized matching; a few rounds approach a maximal
// matching. Ticket allocations set each circuit's share of its contended
// output, exactly like the single-link LinkScheduler.

#ifndef SRC_SIM_CROSSBAR_H_
#define SRC_SIM_CROSSBAR_H_

#include <cstdint>
#include <deque>
#include <map>
#include <vector>

#include "src/util/fastrand.h"
#include "src/util/sim_time.h"
#include "src/util/stats.h"

namespace lottery {

class CrossbarSwitch {
 public:
  using CircuitId = uint32_t;

  struct Options {
    int num_ports = 4;
    SimDuration cell_time = SimDuration::Micros(3);
    size_t buffer_cells = 1024;  // per circuit
    int matching_rounds = 1;
  };

  CrossbarSwitch(Options options, FastRand* rng);

  // Declares a virtual circuit from `input` to `output` with `tickets`.
  CircuitId AddCircuit(int input, int output, uint64_t tickets);
  void SetTickets(CircuitId circuit, uint64_t tickets);

  // Enqueues one cell on `circuit` at `when`; false if its buffer is full.
  bool Enqueue(CircuitId circuit, SimTime when);

  // Advances the switch, running one matching per cell slot.
  void AdvanceTo(SimTime deadline);

  SimTime now() const { return now_; }
  int num_ports() const { return options_.num_ports; }

  uint64_t CellsSent(CircuitId circuit) const;
  uint64_t CellsDropped(CircuitId circuit) const;
  size_t Backlog(CircuitId circuit) const;
  const RunningStat& Delay(CircuitId circuit) const;
  // Total cells forwarded across all circuits (for throughput measures).
  uint64_t total_cells_sent() const { return total_sent_; }
  // Cell slots elapsed since construction.
  uint64_t slots_elapsed() const { return slots_; }

 private:
  struct Circuit {
    int input;
    int output;
    uint64_t tickets;
    std::deque<SimTime> cells;
    uint64_t sent = 0;
    uint64_t dropped = 0;
    RunningStat delay;
  };

  // Runs one slot's matching and transmits the matched cells.
  void RunSlot();

  Options options_;
  FastRand* rng_;  // lotlint: stream(device)
  std::vector<Circuit> circuits_;
  SimTime now_;
  uint64_t total_sent_ = 0;
  uint64_t slots_ = 0;
};

}  // namespace lottery

#endif  // SRC_SIM_CROSSBAR_H_
