#include "src/sim/page_cache.h"

#include <stdexcept>
#include <vector>

namespace lottery {

PageCache::PageCache(size_t frames, FastRand* rng)
    : frames_(frames), rng_(rng) {
  if (frames == 0) {
    throw std::invalid_argument("PageCache: need at least one frame");
  }
}

void PageCache::RegisterClient(ClientId client, uint64_t tickets) {
  if (!clients_.emplace(client, ClientState{}).second) {
    throw std::invalid_argument("PageCache: duplicate client");
  }
  clients_[client].tickets = tickets;
}

void PageCache::SetTickets(ClientId client, uint64_t tickets) {
  StateOf(client).tickets = tickets;
}

PageCache::ClientState& PageCache::StateOf(ClientId client) {
  const auto it = clients_.find(client);
  if (it == clients_.end()) {
    throw std::invalid_argument("PageCache: unknown client");
  }
  return it->second;
}

PageCache::AccessResult PageCache::Access(ClientId client, PageId page) {
  ClientState& state = StateOf(client);
  AccessResult result;

  const auto hit = state.where.find(page);
  if (hit != state.where.end()) {
    state.lru.erase(hit->second);
    state.lru.push_front(page);
    hit->second = state.lru.begin();
    ++state.hits;
    result.hit = true;
    return result;
  }

  ++state.faults;
  if (frames_in_use_ == frames_) {
    const ClientId victim = PickVictim();
    ClientState& vs = clients_.at(victim);
    const PageId victim_page = vs.lru.back();
    vs.lru.pop_back();
    vs.where.erase(victim_page);
    ++vs.evictions;
    --frames_in_use_;
    result.evicted = true;
    result.victim_client = victim;
    result.victim_page = victim_page;
  }

  state.lru.push_front(page);
  state.where[page] = state.lru.begin();
  ++frames_in_use_;
  return result;
}

PageCache::ClientId PageCache::PickVictim() {
  // Weight_i = (T - t_i) * frames_i over clients holding frames; the
  // combined Section 6.2 criterion. If only one client holds frames it
  // must lose; if the weights vanish (e.g. a lone ticket-holder owns all
  // frames held by others == 0), fall back to frames-proportional.
  std::vector<ClientId> ids;
  std::vector<uint64_t> weights;
  uint64_t total_tickets = 0;
  for (const auto& [id, state] : clients_) {
    if (!state.lru.empty()) {
      total_tickets += state.tickets;
    }
  }
  uint64_t total_weight = 0;
  for (const auto& [id, state] : clients_) {
    if (state.lru.empty()) {
      continue;
    }
    const uint64_t w = (total_tickets - state.tickets) * state.lru.size();
    ids.push_back(id);
    weights.push_back(w);
    total_weight += w;
  }
  if (ids.empty()) {
    throw std::logic_error("PageCache::PickVictim: no frames held");
  }
  if (ids.size() == 1 || total_weight == 0) {
    // Single holder, or every holder has all the tickets: pick the one
    // holding the most frames.
    size_t best = 0;
    for (size_t i = 1; i < ids.size(); ++i) {
      if (clients_.at(ids[i]).lru.size() > clients_.at(ids[best]).lru.size()) {
        best = i;
      }
    }
    return ids[best];
  }
  uint64_t value = rng_->NextBelow64(total_weight);
  for (size_t i = 0; i < ids.size(); ++i) {
    if (value < weights[i]) {
      return ids[i];
    }
    value -= weights[i];
  }
  throw std::logic_error("PageCache::PickVictim: ran past weights");
}

size_t PageCache::FramesHeld(ClientId client) const {
  return const_cast<PageCache*>(this)->StateOf(client).lru.size();
}

uint64_t PageCache::Evictions(ClientId client) const {
  return const_cast<PageCache*>(this)->StateOf(client).evictions;
}

uint64_t PageCache::Hits(ClientId client) const {
  return const_cast<PageCache*>(this)->StateOf(client).hits;
}

uint64_t PageCache::Faults(ClientId client) const {
  return const_cast<PageCache*>(this)->StateOf(client).faults;
}

}  // namespace lottery
