#include "src/sim/trace.h"

#include <sstream>
#include <stdexcept>

namespace lottery {

Tracer::Tracer(SimDuration window) : window_(window) {
  if (window.nanos() <= 0) {
    throw std::invalid_argument("Tracer: window must be positive");
  }
}

void Tracer::AddProgress(ThreadId tid, SimTime now, int64_t delta) {
  const size_t w = static_cast<size_t>(now.nanos() / window_.nanos());
  auto& vec = progress_[tid];
  if (vec.size() <= w) {
    vec.resize(w + 1, 0);
  }
  vec[w] += delta;
  totals_[tid] += delta;
  if (w + 1 > num_windows_) {
    num_windows_ = w + 1;
  }
}

int64_t Tracer::TotalProgress(ThreadId tid) const {
  const auto it = totals_.find(tid);
  return it != totals_.end() ? it->second : 0;
}

int64_t Tracer::WindowProgress(ThreadId tid, size_t w) const {
  const auto it = progress_.find(tid);
  if (it == progress_.end() || w >= it->second.size()) {
    return 0;
  }
  return it->second[w];
}

int64_t Tracer::CumulativeThrough(ThreadId tid, size_t w) const {
  const auto it = progress_.find(tid);
  if (it == progress_.end()) {
    return 0;
  }
  int64_t sum = 0;
  for (size_t i = 0; i <= w && i < it->second.size(); ++i) {
    sum += it->second[i];
  }
  return sum;
}

void Tracer::RecordSample(const std::string& series, SimTime now,
                          double value) {
  samples_[series].push_back(Sample{now.ToSecondsF(), value});
}

const std::vector<Tracer::Sample>& Tracer::Samples(
    const std::string& series) const {
  static const std::vector<Sample> kEmpty;
  const auto it = samples_.find(series);
  return it != samples_.end() ? it->second : kEmpty;
}

RunningStat Tracer::SampleStats(const std::string& series) const {
  RunningStat stat;
  for (const Sample& s : Samples(series)) {
    stat.Add(s.value);
  }
  return stat;
}

bool Tracer::HasSeries(const std::string& series) const {
  return samples_.count(series) > 0;
}

void Tracer::EnableDispatchLog(size_t cap) {
  dispatch_log_enabled_ = true;
  dispatch_cap_ = cap;
  dispatches_.reserve(std::min<size_t>(cap, 4096));
}

void Tracer::RecordDispatch(ThreadId tid, int cpu, SimTime start,
                            SimDuration used) {
  if (!dispatch_log_enabled_) {
    return;
  }
  if (dispatches_.size() >= dispatch_cap_) {
    ++dispatch_dropped_;
    return;
  }
  dispatches_.push_back(
      Dispatch{tid, cpu, start.ToSecondsF(), used.ToSecondsF()});
}

std::string Tracer::DispatchesCsv() const {
  std::ostringstream out;
  if (dispatch_dropped_ > 0) {
    out << "# dropped=" << dispatch_dropped_
        << " dispatches past the log cap of " << dispatch_cap_ << "\n";
  }
  out << "tid,cpu,start_sec,duration_sec\n";
  for (const Dispatch& d : dispatches_) {
    out << d.tid << "," << d.cpu << "," << d.start_sec << ","
        << d.duration_sec << "\n";
  }
  return out.str();
}

std::string Tracer::WindowsCsv(const std::vector<ThreadId>& tids,
                               const std::vector<std::string>& labels) const {
  if (tids.size() != labels.size()) {
    throw std::invalid_argument("WindowsCsv: tids/labels size mismatch");
  }
  std::ostringstream out;
  out << "window_start_sec";
  for (const std::string& label : labels) {
    out << "," << label;
  }
  out << "\n";
  for (size_t w = 0; w < num_windows_; ++w) {
    out << static_cast<double>(w) * window_.ToSecondsF();
    for (const ThreadId tid : tids) {
      out << "," << WindowProgress(tid, w);
    }
    out << "\n";
  }
  return out.str();
}

std::string Tracer::SeriesCsv(const std::string& series) const {
  std::ostringstream out;
  out << "time_sec,value\n";
  for (const Sample& sample : Samples(series)) {
    out << sample.time_sec << "," << sample.value << "\n";
  }
  return out.str();
}

}  // namespace lottery
