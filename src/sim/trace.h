// Metric collection for experiments.
//
// Workload bodies report abstract progress units (iterations, frames,
// queries) and latencies; the Tracer buckets them into fixed windows of
// simulated time so benches can print the same time series the paper's
// figures plot (e.g. Figure 5's 8-second iteration-rate windows).

#ifndef SRC_SIM_TRACE_H_
#define SRC_SIM_TRACE_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/sched/scheduler.h"
#include "src/util/sim_time.h"
#include "src/util/stats.h"

namespace lottery {

class Tracer {
 public:
  explicit Tracer(SimDuration window = SimDuration::Seconds(1));

  // --- Progress counters ----------------------------------------------------

  void AddProgress(ThreadId tid, SimTime now, int64_t delta);
  int64_t TotalProgress(ThreadId tid) const;
  // Progress of `tid` during window `w` (w = floor(time/window)).
  int64_t WindowProgress(ThreadId tid, size_t w) const;
  size_t num_windows() const { return num_windows_; }
  SimDuration window() const { return window_; }
  // Cumulative progress of `tid` up to and including window `w`.
  int64_t CumulativeThrough(ThreadId tid, size_t w) const;

  // --- Named scalar samples (latencies, rates, errors) ----------------------

  void RecordSample(const std::string& series, SimTime now, double value);
  struct Sample {
    double time_sec;
    double value;
  };
  const std::vector<Sample>& Samples(const std::string& series) const;
  RunningStat SampleStats(const std::string& series) const;
  bool HasSeries(const std::string& series) const;

  // --- Dispatch timeline ------------------------------------------------------

  struct Dispatch {
    ThreadId tid;
    int cpu;
    double start_sec;
    double duration_sec;
  };

  // Enables per-dispatch recording (off by default; a long run generates
  // millions of slices). Recording stops at `cap` entries; every dispatch
  // past the cap is counted in dropped() — never silently discarded.
  void EnableDispatchLog(size_t cap = 1000000);
  bool dispatch_log_enabled() const { return dispatch_log_enabled_; }
  void RecordDispatch(ThreadId tid, int cpu, SimTime start, SimDuration used);
  const std::vector<Dispatch>& dispatches() const { return dispatches_; }
  // Dispatches that arrived after the log hit its cap. Benches print this
  // to stderr so a truncated Gantt chart is never mistaken for a full one.
  uint64_t dropped() const { return dispatch_dropped_; }
  // Gantt-style CSV: tid,cpu,start_sec,duration_sec. When the cap was hit,
  // the first line is a `# dropped=N ...` comment.
  std::string DispatchesCsv() const;

  // --- Export ----------------------------------------------------------------

  // Windowed progress as CSV: one row per window, one column per thread
  // (labelled by `labels`, aligned with `tids`). For re-plotting figures.
  std::string WindowsCsv(const std::vector<ThreadId>& tids,
                         const std::vector<std::string>& labels) const;
  // One series as CSV rows of (time_sec, value).
  std::string SeriesCsv(const std::string& series) const;

 private:
  SimDuration window_;
  size_t num_windows_ = 0;
  std::map<ThreadId, std::vector<int64_t>> progress_;  // per-window deltas
  std::map<ThreadId, int64_t> totals_;
  std::map<std::string, std::vector<Sample>> samples_;
  bool dispatch_log_enabled_ = false;
  size_t dispatch_cap_ = 0;
  uint64_t dispatch_dropped_ = 0;
  std::vector<Dispatch> dispatches_;
};

}  // namespace lottery

#endif  // SRC_SIM_TRACE_H_
