#include "src/sim/crossbar.h"

#include <stdexcept>

namespace lottery {

CrossbarSwitch::CrossbarSwitch(Options options, FastRand* rng)
    : options_(options), rng_(rng), now_(SimTime::Zero()) {
  if (options.num_ports < 1) {
    throw std::invalid_argument("CrossbarSwitch: need at least one port");
  }
  if (options.cell_time.nanos() <= 0) {
    throw std::invalid_argument("CrossbarSwitch: cell_time must be positive");
  }
  if (options.matching_rounds < 1) {
    throw std::invalid_argument("CrossbarSwitch: need >= 1 matching round");
  }
}

CrossbarSwitch::CircuitId CrossbarSwitch::AddCircuit(int input, int output,
                                                     uint64_t tickets) {
  if (input < 0 || input >= options_.num_ports || output < 0 ||
      output >= options_.num_ports) {
    throw std::invalid_argument("AddCircuit: port out of range");
  }
  Circuit circuit;
  circuit.input = input;
  circuit.output = output;
  circuit.tickets = tickets;
  circuits_.push_back(std::move(circuit));
  return static_cast<CircuitId>(circuits_.size() - 1);
}

void CrossbarSwitch::SetTickets(CircuitId circuit, uint64_t tickets) {
  circuits_.at(circuit).tickets = tickets;
}

bool CrossbarSwitch::Enqueue(CircuitId circuit, SimTime when) {
  Circuit& c = circuits_.at(circuit);
  if (c.cells.size() >= options_.buffer_cells) {
    ++c.dropped;
    return false;
  }
  c.cells.push_back(when);
  return true;
}

void CrossbarSwitch::RunSlot() {
  const int ports = options_.num_ports;
  std::vector<bool> input_matched(static_cast<size_t>(ports), false);
  std::vector<bool> output_matched(static_cast<size_t>(ports), false);
  std::vector<size_t> granted;  // circuit indices transmitting this slot

  for (int round = 0; round < options_.matching_rounds; ++round) {
    // Step 1: each unmatched output draws a proposer among backlogged
    // circuits from unmatched inputs.
    // proposals[input] collects the circuits that won an output lottery.
    std::map<int, std::vector<size_t>> proposals;
    for (int out = 0; out < ports; ++out) {
      if (output_matched[static_cast<size_t>(out)]) {
        continue;
      }
      uint64_t total = 0;
      std::vector<size_t> eligible;
      for (size_t i = 0; i < circuits_.size(); ++i) {
        const Circuit& c = circuits_[i];
        if (c.output == out && !c.cells.empty() &&
            c.cells.front() <= now_ &&
            !input_matched[static_cast<size_t>(c.input)]) {
          eligible.push_back(i);
          total += c.tickets;
        }
      }
      if (eligible.empty()) {
        continue;
      }
      size_t winner = eligible.front();
      if (total > 0) {
        uint64_t value = rng_->NextBelow64(total);
        for (const size_t i : eligible) {
          if (value < circuits_[i].tickets) {
            winner = i;
            break;
          }
          value -= circuits_[i].tickets;
        }
      }
      proposals[circuits_[winner].input].push_back(winner);
    }

    if (proposals.empty()) {
      break;  // no progress possible
    }

    // Step 2: each input grants one proposing circuit by lottery.
    for (auto& [input, candidates] : proposals) {
      size_t winner = candidates.front();
      if (candidates.size() > 1) {
        uint64_t total = 0;
        for (const size_t i : candidates) {
          total += circuits_[i].tickets;
        }
        if (total > 0) {
          uint64_t value = rng_->NextBelow64(total);
          for (const size_t i : candidates) {
            if (value < circuits_[i].tickets) {
              winner = i;
              break;
            }
            value -= circuits_[i].tickets;
          }
        }
      }
      input_matched[static_cast<size_t>(input)] = true;
      output_matched[static_cast<size_t>(circuits_[winner].output)] = true;
      granted.push_back(winner);
    }
  }

  // Transmit the matched cells.
  const SimTime slot_end = now_ + options_.cell_time;
  for (const size_t i : granted) {
    Circuit& c = circuits_[i];
    const SimTime arrival = c.cells.front();
    c.cells.pop_front();
    c.delay.Add((slot_end - arrival).ToSecondsF());
    ++c.sent;
    ++total_sent_;
  }
}

void CrossbarSwitch::AdvanceTo(SimTime deadline) {
  while (now_ + options_.cell_time <= deadline) {
    bool backlog = false;
    for (const Circuit& c : circuits_) {
      if (!c.cells.empty()) {
        backlog = true;
        break;
      }
    }
    if (!backlog) {
      // Idle fast path: an empty slot matches nothing and draws nothing, so
      // batch-advance the clock instead of simulating each one. Keeps
      // sparse users (the SMP balancer advances only at migrations) O(cells)
      // instead of O(elapsed / cell_time).
      const int64_t cell = options_.cell_time.nanos();
      const int64_t whole = (deadline - now_).nanos() / cell;
      now_ += SimDuration::Nanos(whole * cell);
      slots_ += static_cast<uint64_t>(whole);
      break;
    }
    RunSlot();
    now_ += options_.cell_time;
    ++slots_;
  }
  if (now_ < deadline) {
    now_ = deadline;  // partial final slot: nothing transmits
  }
}

uint64_t CrossbarSwitch::CellsSent(CircuitId circuit) const {
  return circuits_.at(circuit).sent;
}

uint64_t CrossbarSwitch::CellsDropped(CircuitId circuit) const {
  return circuits_.at(circuit).dropped;
}

size_t CrossbarSwitch::Backlog(CircuitId circuit) const {
  return circuits_.at(circuit).cells.size();
}

const RunningStat& CrossbarSwitch::Delay(CircuitId circuit) const {
  return circuits_.at(circuit).delay;
}

}  // namespace lottery
