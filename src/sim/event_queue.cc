#include "src/sim/event_queue.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <utility>

#include "src/util/invariant.h"

namespace lottery {
namespace {

// Ids pack {generation, arena index} so a stale id can be rejected in O(1).
constexpr uint64_t kIndexBits = 32;
constexpr uint64_t kIndexMask = (uint64_t{1} << kIndexBits) - 1;

}  // namespace

EventQueue::EventQueue() {
  for (size_t level = 0; level < kLevels; ++level) {
    for (size_t slot = 0; slot < kSlots; ++slot) {
      slot_head_[level][slot] = kNil;
    }
  }
  std::memset(slot_bitmap_, 0, sizeof(slot_bitmap_));
}

uint32_t EventQueue::AllocNode(SimTime when, Handler&& handler) {
  uint32_t index;
  if (free_head_ != kNil) {
    index = free_head_;
    free_head_ = nodes_[index].next;
  } else {
    index = static_cast<uint32_t>(nodes_.size());
    nodes_.EmplaceBack();
    handlers_.EmplaceBack();
  }
  Node& node = nodes_[index];
  node.when_ns = when.nanos();
  node.seq = next_seq_++;
  node.next = kNil;
  node.prev = kNil;
  handlers_[index] = std::move(handler);  // destroys any stale predecessor
  return index;
}

void EventQueue::FreeNode(uint32_t index) {
  Node& node = nodes_[index];
  node.state = NodeState::kFree;
  ++node.gen;  // outstanding ids for this slot become stale
  node.next = free_head_;
  free_head_ = index;
}

void EventQueue::Place(uint32_t index) {
  Node& node = nodes_[index];
  const uint64_t tick = TickOf(node.when_ns);
  if (tick <= cursor_) {
    node.state = NodeState::kHeap;
    HeapPush(due_, HeapEntry{node.when_ns, node.seq, index});
    return;
  }
  // Highest byte in which the tick differs from the cursor picks the level;
  // that byte of the tick picks the slot. Because tick > cursor_, the
  // differing byte is strictly greater than the cursor's, so slot scans
  // never wrap and a decanted slot's events all lie ahead of the cursor.
  const uint64_t diff = tick ^ cursor_;
  const size_t level =
      static_cast<size_t>(std::bit_width(diff) - 1) / kLevelBits;
  if (level >= kLevels) {
    node.state = NodeState::kHeap;
    HeapPush(overflow_, HeapEntry{node.when_ns, node.seq, index});
    return;
  }
  const size_t slot = (tick >> (level * kLevelBits)) & kSlotMask;
  node.state = NodeState::kWheel;
  node.level = static_cast<uint8_t>(level);
  node.slot = static_cast<uint8_t>(slot);
  node.prev = kNil;
  node.next = slot_head_[level][slot];
  if (node.next != kNil) {
    nodes_[node.next].prev = index;
  }
  slot_head_[level][slot] = index;
  slot_bitmap_[level][slot / 64] |= uint64_t{1} << (slot % 64);
  ++wheel_count_;
}

void EventQueue::HeapPush(std::vector<HeapEntry>& heap, HeapEntry entry) {
  heap.push_back(entry);
  size_t child = heap.size() - 1;
  while (child > 0) {
    const size_t parent = (child - 1) / 2;
    if (Earlier(heap[parent], heap[child])) {
      break;
    }
    std::swap(heap[child], heap[parent]);
    child = parent;
  }
}

EventQueue::HeapEntry EventQueue::HeapPop(std::vector<HeapEntry>& heap) {
  const HeapEntry top = heap.front();
  heap.front() = heap.back();
  heap.pop_back();
  const size_t n = heap.size();
  size_t parent = 0;
  for (;;) {
    size_t best = parent;
    const size_t first_child = 2 * parent + 1;
    for (size_t child = first_child; child < first_child + 2 && child < n;
         ++child) {
      if (Earlier(heap[child], heap[best])) {
        best = child;
      }
    }
    if (best == parent) {
      break;
    }
    std::swap(heap[parent], heap[best]);
    parent = best;
  }
  return top;
}

void EventQueue::SkipCancelledDue() {
  while (ready_pos_ < ready_.size() &&
         nodes_[ready_[ready_pos_].index].state == NodeState::kCancelled) {
    FreeNode(ready_[ready_pos_++].index);
  }
  while (!due_.empty() &&
         nodes_[due_.front().index].state == NodeState::kCancelled) {
    FreeNode(HeapPop(due_).index);
  }
}

EventQueue::HeapEntry EventQueue::PopDue() {
  const bool ready = ready_pos_ < ready_.size();
  if (due_.empty() ||
      (ready && Earlier(ready_[ready_pos_], due_.front()))) {
    return ready_[ready_pos_++];
  }
  return HeapPop(due_);
}

int EventQueue::FindBusySlot(size_t level, size_t from) const {
  if (from >= kSlots) {
    return -1;
  }
  size_t word = from / 64;
  uint64_t bits = slot_bitmap_[level][word] & (~uint64_t{0} << (from % 64));
  for (;;) {
    if (bits != 0) {
      return static_cast<int>(word * 64 +
                              static_cast<size_t>(std::countr_zero(bits)));
    }
    if (++word == kSlots / 64) {
      return -1;
    }
    bits = slot_bitmap_[level][word];
  }
}

void EventQueue::EnsureDue() {
  for (;;) {
    SkipCancelledDue();
    // Wheel and overflow events always have tick > cursor_ while due events
    // have tick <= cursor_, so a non-empty due set fronts with the global
    // minimum and we are done.
    if (!due_.empty() || ready_pos_ < ready_.size()) {
      return;
    }
    if (wheel_count_ == 0 && overflow_.empty()) {
      return;
    }

    // Earliest wheel event: level-k events all precede level-(k+1) events
    // (their bytes above k still match the cursor's), so the first busy slot
    // at the lowest busy level bounds the whole wheel from below.
    uint64_t wheel_start = ~uint64_t{0};
    size_t wheel_level = 0;
    int wheel_slot = -1;
    for (size_t level = 0; level < kLevels; ++level) {
      const size_t from =
          static_cast<size_t>((cursor_ >> (level * kLevelBits)) & kSlotMask) +
          1;
      const int slot = FindBusySlot(level, from);
      if (slot >= 0) {
        const uint64_t high_mask = ~uint64_t{0} << ((level + 1) * kLevelBits);
        wheel_start = (cursor_ & high_mask) |
                      (static_cast<uint64_t>(slot) << (level * kLevelBits));
        wheel_level = level;
        wheel_slot = slot;
        break;
      }
    }

    // An overflow event can drop to (or below) the cursor's tick as the
    // cursor advances past it without being re-bucketed; it must then be
    // drained before any wheel decant at a later tick is trusted.
    const uint64_t overflow_tick =
        overflow_.empty() ? ~uint64_t{0} : TickOf(overflow_.front().when_ns);

    if (wheel_slot >= 0 && wheel_start <= overflow_tick &&
        overflow_tick > cursor_) {
      // Decant the earliest busy slot: advance the cursor to its start and
      // re-place every event — exact slot-start hits drop into the due heap,
      // the rest re-bucket at a lower level. Each event moves down at most
      // kLevels times over its lifetime, so re-bucketing is O(1) amortized.
      cursor_ = wheel_start;
      uint32_t head = slot_head_[wheel_level][wheel_slot];
      slot_head_[wheel_level][wheel_slot] = kNil;
      slot_bitmap_[wheel_level][static_cast<size_t>(wheel_slot) / 64] &=
          ~(uint64_t{1} << (static_cast<size_t>(wheel_slot) % 64));
      // Cancelled wheel nodes were unlinked eagerly, so every chain entry is
      // live; prefetch the successor while re-placing the current node.
      // Events now due (the whole chain, for a level-0 slot) are staged in
      // scratch_ and sorted once instead of sifted through the due heap.
      scratch_.clear();
      while (head != kNil) {
        const uint32_t next = nodes_[head].next;
        if (next != kNil) {
          __builtin_prefetch(&nodes_[next]);
        }
        LOT_ASSERT(nodes_[head].state == NodeState::kWheel,
                   "event wheel slot chain holds a non-wheel node");
        --wheel_count_;
        Node& node = nodes_[head];
        if (TickOf(node.when_ns) <= cursor_) {
          node.state = NodeState::kHeap;
          scratch_.push_back(HeapEntry{node.when_ns, node.seq, head});
        } else {
          Place(head);
        }
        head = next;
      }
      if (!scratch_.empty()) {
        std::sort(scratch_.begin(), scratch_.end(), Earlier);
        // The due set was empty (loop guard above), so the consumed ready
        // run can be discarded wholesale.
        ready_.swap(scratch_);
        ready_pos_ = 0;
      }
    } else if (overflow_tick > cursor_) {
      // Nothing in the wheel before the overflow top: jump the cursor
      // straight to it. The cursor only ever advances — moving it backward
      // would break the byte-placement invariant the slot scans rely on.
      LOT_ASSERT(!overflow_.empty(),
                 "event wheel claims events but no slot or overflow holds one");
      cursor_ = overflow_tick;
    }
    // Pull every overflow event at or behind the cursor into the due heap so
    // within-tick ordering is decided there. This also catches events a past
    // cursor advance left stranded (including ties with a just-decanted
    // slot), which is why it runs after both branches.
    while (!overflow_.empty() && TickOf(overflow_.front().when_ns) <= cursor_) {
      const HeapEntry entry = HeapPop(overflow_);
      if (nodes_[entry.index].state == NodeState::kCancelled) {
        FreeNode(entry.index);
      } else {
        HeapPush(due_, entry);
      }
    }
  }
}

EventQueue::EventId EventQueue::Schedule(SimTime when, Handler handler) {
  const uint32_t index = AllocNode(when, std::move(handler));
  ++live_;
  Place(index);
  return (static_cast<uint64_t>(nodes_[index].gen) << kIndexBits) |
         static_cast<uint64_t>(index);
}

void EventQueue::Cancel(EventId id) {
  const uint64_t index = id & kIndexMask;
  if (index >= nodes_.size()) {
    return;
  }
  Node& node = nodes_[static_cast<size_t>(index)];
  if (node.gen != static_cast<uint32_t>(id >> kIndexBits)) {
    return;
  }
  if (node.state == NodeState::kWheel) {
    // O(1) unlink from the doubly-linked slot chain and free immediately:
    // cancel-heavy workloads (RPC/disk timeouts that almost never fire)
    // would otherwise fill the arena with corpses awaiting their slot's
    // decant, bloating the working set ~10x.
    if (node.prev != kNil) {
      nodes_[node.prev].next = node.next;
    } else {
      slot_head_[node.level][node.slot] = node.next;
      if (node.next == kNil) {
        slot_bitmap_[node.level][node.slot / 64] &=
            ~(uint64_t{1} << (node.slot % 64));
      }
    }
    if (node.next != kNil) {
      nodes_[node.next].prev = node.prev;
    }
    --wheel_count_;
    FreeNode(static_cast<uint32_t>(index));
    --live_;
  } else if (node.state == NodeState::kHeap) {
    // In due_/overflow_, where mid-heap removal is not O(1): flip to a
    // tombstone; the heap frees it when it surfaces. The handler is
    // released lazily (on slot reuse), as the original queue did.
    node.state = NodeState::kCancelled;
    --live_;
  }
}

bool EventQueue::empty() const { return live_ == 0; }

SimTime EventQueue::next_time() const {
  // Logically const: advances the decant horizon, which has no observable
  // effect on event order (same const_cast pattern the heap queue used for
  // dropping cancelled heads).
  EventQueue* self = const_cast<EventQueue*>(this);
  self->EnsureDue();
  return SimTime::FromNanos(PeekDue()->when_ns);
}

size_t EventQueue::RunUntil(SimTime limit) {
  const int64_t limit_ns = limit.nanos();
  size_t ran = 0;
  for (;;) {
    EnsureDue();
    const HeapEntry* front = PeekDue();
    if (front == nullptr || front->when_ns > limit_ns) {
      return ran;
    }
    const uint32_t index = front->index;
    const SimTime when = SimTime::FromNanos(front->when_ns);
    PopDue();
    // Overlap the next event's (likely cold) handler fetch with this
    // handler's execution.
    if (const HeapEntry* next = PeekDue()) {
      __builtin_prefetch(&handlers_[next->index]);
    }
    // Invoke the handler in place: its slot is address-stable (chunked
    // arena) and cannot be reused until FreeNode below, so no defensive
    // move-out is needed. Flipping the state first makes a self-Cancel
    // from inside the handler a no-op, as it always was.
    nodes_[index].state = NodeState::kFree;
    --live_;
    handlers_[index](when);
    FreeNode(index);
    ++ran;
  }
}

size_t EventQueue::pending() const { return live_; }

}  // namespace lottery
