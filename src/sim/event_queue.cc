#include "src/sim/event_queue.h"

namespace lottery {

EventQueue::EventId EventQueue::Schedule(SimTime when, Handler handler) {
  const EventId id = next_id_++;
  heap_.push(Event{when, next_seq_++, id, std::move(handler)});
  return id;
}

void EventQueue::Cancel(EventId id) { cancelled_.insert(id); }

void EventQueue::DropCancelledHead() {
  while (!heap_.empty() && cancelled_.count(heap_.top().id) > 0) {
    cancelled_.erase(heap_.top().id);
    heap_.pop();
  }
}

bool EventQueue::empty() const {
  const_cast<EventQueue*>(this)->DropCancelledHead();
  return heap_.empty();
}

SimTime EventQueue::next_time() const {
  const_cast<EventQueue*>(this)->DropCancelledHead();
  return heap_.top().when;
}

size_t EventQueue::RunUntil(SimTime limit) {
  size_t ran = 0;
  for (;;) {
    DropCancelledHead();
    if (heap_.empty() || heap_.top().when > limit) {
      return ran;
    }
    Event event = heap_.top();
    heap_.pop();
    event.handler(event.when);
    ++ran;
  }
}

size_t EventQueue::pending() const {
  return heap_.size();
}

}  // namespace lottery
