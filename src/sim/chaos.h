// Chaos machinery on top of the fault injector.
//
// Two pieces live here. ChaosController drives the fault classes that need
// an external agent acting on global state: spurious wakeups (pick a
// sleeping thread and wake it early) and currency revocation (unfund a
// random thread-funding ticket mid-run, restore it later). It runs as a
// periodic event on the kernel's queue, drawing targets from the injector's
// private RNG stream so runs stay bit-reproducible.
//
// The scenario harness is the shared entry point of the simulation fuzzer,
// the statistical conformance suite, the determinism test, and
// tools/faultctl: it builds a kernel + scheduler backend from a compact
// description, runs a mixed workload (burners, sleepers, mutex users, an
// RPC pair, disk users, self-exiting threads) under a fault plan, and
// returns a trace hash plus the list of violated oracles — work
// conservation, ticket conservation, currency-graph acyclicity, and the
// compensation-factor bound.

#ifndef SRC_SIM_CHAOS_H_
#define SRC_SIM_CHAOS_H_

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/fault.h"
#include "src/sim/kernel.h"
#include "src/util/fastrand.h"
#include "src/util/sim_time.h"

namespace lottery {
namespace chaos {

class ChaosController {
 public:
  struct Options {
    // Opportunity cadence for the controller-driven fault classes.
    SimDuration period = SimDuration::Millis(10);
    // How long a revoked funding ticket stays withdrawn.
    SimDuration revoke_duration = SimDuration::Millis(50);
    // Last time at which the controller reschedules itself; keeps the event
    // queue drainable after the experiment horizon.
    SimTime stop_after = SimTime::FromNanos(int64_t{1} << 62);
  };

  // `kernel` and `faults` must outlive the controller.
  ChaosController(Kernel* kernel, FaultInjector* faults, Options options);
  ChaosController(const ChaosController&) = delete;
  ChaosController& operator=(const ChaosController&) = delete;

  // Schedules the first opportunity tick. Without an armed spurious-wake or
  // revoke class this is a no-op (no events, no overhead).
  void Start();

  uint64_t spurious_wakes() const { return spurious_wakes_; }
  uint64_t revocations() const { return revocations_; }

 private:
  void Tick(SimTime now);
  void TrySpuriousWake(SimTime now);
  void TryRevoke(SimTime now);

  Kernel* kernel_;
  FaultInjector* faults_;
  Options options_;
  uint64_t spurious_wakes_ = 0;
  uint64_t revocations_ = 0;
};

// A compact, fully deterministic experiment description. Everything the run
// does — workload shape, scheduler draws, fault decisions — derives from
// `seed`, so (seed, backend, plan, shape) reproduces bit-identically.
struct Scenario {
  uint64_t seed = 1;
  std::string backend = "list";  // "list" | "tree" | "stride"
  std::string plan;              // FaultPlan grammar; empty = fault-free
  int num_cpus = 1;
  int num_threads = 8;
  SimDuration horizon = SimDuration::Millis(500);
  SimDuration quantum = SimDuration::Millis(1);
  // When both are positive, two always-runnable burner threads funded with
  // these ticket amounts are added on top of the workload and *protected*
  // from thread-targeted faults. The conformance suite measures their
  // dispatch shares (reported as wins_a/wins_b) while the unprotected
  // workload absorbs the injected chaos.
  int64_t measured_a = 0;
  int64_t measured_b = 0;

  // The faultctl command line reproducing this scenario.
  std::string ReproCommand() const;
};

struct ScenarioResult {
  // FNV-1a fingerprint of the dispatch log and final accounting; equal
  // runs produce equal hashes.
  uint64_t trace_hash = 0;
  uint64_t dispatches = 0;
  uint64_t context_switches = 0;
  uint64_t injections = 0;
  std::array<uint64_t, kNumFaultClasses> injected_by_class{};
  uint64_t spurious_wakes = 0;
  uint64_t revocations = 0;
  SimTime end_time;
  size_t live_threads = 0;
  // Measured-pair results (zero unless Scenario::measured_a/b were set).
  uint64_t wins_a = 0;
  uint64_t wins_b = 0;
  SimDuration cpu_a{};
  SimDuration cpu_b{};
  // Chronological win sequence over the measured pair only: 1 = A won the
  // dispatch, 0 = B. The conformance suite KS-tests A's win positions
  // against uniform — a rate-invariant check that wins are well mixed.
  std::vector<uint8_t> measured_sequence;
  // Dispatches the harness's Gantt log could not retain (its cap is one
  // mebi-entry). Callers surface this so truncation is never silent.
  uint64_t dispatch_log_dropped = 0;
  // Violated oracles, empty when the run is clean. Each entry is a
  // human-readable description of one failed check.
  std::vector<std::string> violations;

  bool ok() const { return violations.empty(); }
};

// Builds and runs the scenario, sweeping every oracle at the end. When
// `trace` is non-null the whole run records into it (scheduler decisions,
// slices, services, fault firings) and the buffer's seed is stamped from
// the scenario — tools/faultctl's --trace path.
ScenarioResult RunScenario(const Scenario& scenario,
                           etrace::TraceBuffer* trace = nullptr);

// Swarm-fuzzing generators: a random plan (each class independently armed
// with a random trigger) and a random scenario around it.
FaultPlan RandomFaultPlan(FastRand& rng);
Scenario RandomScenario(FastRand& rng, uint64_t seed);

}  // namespace chaos
}  // namespace lottery

#endif  // SRC_SIM_CHAOS_H_
